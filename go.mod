module logrec

go 1.22
