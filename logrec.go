// Package logrec is a from-scratch Go reproduction of
//
//	David Lomet, Kostas Tzoumas, Michael Zwilling.
//	"Implementing Performance Competitive Logical Recovery."
//	PVLDB 4(7), 2011 (VLDB 2011).
//
// It provides a Deuteronomy-style storage engine split into a
// transactional component (TC: transactions, logical locking, logical
// logging — no page IDs on the log) and a data component (DC: B-tree,
// buffer pool, page storage), five crash-recovery implementations for
// side-by-side comparison over one shared log, and the paper's full
// experiment harness.
//
// # Quick start
//
//	cfg := logrec.DefaultConfig()
//	eng, err := logrec.New(cfg)           // empty database
//	err = eng.Load(100_000, valueFn)      // bulk load + first checkpoint
//
//	txn := eng.TC.Begin()
//	err = eng.TC.Update(txn, cfg.TableID, key, newValue)
//	err = eng.TC.Commit(txn)
//	err = eng.TC.Checkpoint()
//
//	crash := eng.Crash()                  // freeze stable state
//	recovered, metrics, err := logrec.Recover(crash, logrec.Log2, logrec.DefaultOptions(cfg))
//
// # Recovery methods (§5.2 of the paper)
//
//	Log0 — basic logical redo (Algorithm 2)
//	Log1 — logical redo + DPT from ∆-log records (Algorithms 4, 5)
//	Log2 — Log1 + index preload and PF-list prefetch (Appendix A)
//	SQL1 — physiological (ARIES/SQL Server) redo + analysis DPT (Algorithms 3, 1)
//	SQL2 — SQL1 + log-driven read-ahead
//
// By default engines run over a deterministic virtual clock and a
// simulated disk, so recovery times are reproducible; see DESIGN.md for
// the substitution rationale and EXPERIMENTS.md for paper-vs-measured
// results. Set Config.Device = DeviceFile (plus Config.Dir) to back the
// engine with real files instead — real page IO, fsync-backed log
// forces and process-kill-shaped crashes (see README "Running on a
// real disk"). Set Config.Shards = N to range-partition the data
// across N data components behind the one TC and WAL; recovery then
// replays all shards concurrently from the single log (see README
// "Scaling out").
package logrec

import (
	"logrec/internal/core"
	"logrec/internal/engine"
	"logrec/internal/exec"
	"logrec/internal/harness"
	"logrec/internal/tc"
	"logrec/internal/tracker"
	"logrec/internal/wal"
	"logrec/internal/workload"
)

// Engine is a running TC+DC database over a virtual clock.
type Engine = engine.Engine

// Config parameterises an engine.
type Config = engine.Config

// CrashState is the stable state surviving a crash; fork it with
// Recover as many times as you like.
type CrashState = engine.CrashState

// DeviceKind selects the storage backend implementation.
type DeviceKind = engine.DeviceKind

// Device modes for Config.Device.
const (
	// DeviceSim is the default simulated disk (deterministic virtual
	// time).
	DeviceSim = engine.DeviceSim
	// DeviceFile backs the engine with real files under Config.Dir.
	DeviceFile = engine.DeviceFile
)

// New creates an engine over an empty database.
func New(cfg Config) (*Engine, error) { return engine.New(cfg) }

// DefaultConfig returns the paper-proportional defaults.
func DefaultConfig() Config { return engine.DefaultConfig() }

// Method selects a recovery algorithm.
type Method = core.Method

// The five recovery methods of the paper's §5.2.
const (
	Log0 = core.Log0
	Log1 = core.Log1
	Log2 = core.Log2
	SQL1 = core.SQL1
	SQL2 = core.SQL2
)

// Methods returns all five methods in the paper's presentation order.
func Methods() []Method { return core.Methods() }

// Options tunes a recovery run.
type Options = core.Options

// Metrics reports a recovery run's phase times and IO behaviour.
type Metrics = core.Metrics

// DefaultOptions derives recovery options from an engine config.
func DefaultOptions(cfg Config) Options { return core.DefaultOptions(cfg) }

// Recover replays a crash under the chosen method and returns a fully
// recovered, usable engine plus metrics.
func Recover(cs *CrashState, m Method, opt Options) (*Engine, *Metrics, error) {
	return core.Recover(cs, m, opt)
}

// DeltaVariant selects ∆-log record fidelity (Appendix D).
type DeltaVariant = tracker.Variant

// ∆-record variants (Appendix D).
const (
	DeltaStandard = tracker.DeltaStandard
	DeltaPerfect  = tracker.DeltaPerfect
	DeltaReduced  = tracker.DeltaReduced
)

// ExperimentConfig parameterises a crash-recovery experiment.
type ExperimentConfig = harness.Config

// CrashResult is a built crash plus its verification oracle.
type CrashResult = harness.CrashResult

// DefaultExperimentConfig returns the paper's experiment setup at the
// repository's default scale.
func DefaultExperimentConfig() ExperimentConfig { return harness.DefaultConfig() }

// BuildCrash drives the paper's workload to its crash condition.
func BuildCrash(cfg ExperimentConfig) (*CrashResult, error) { return harness.BuildCrash(cfg) }

// RunRecovery recovers a crash under one method and verifies the
// recovered state against the oracle.
func RunRecovery(res *CrashResult, m Method, opt Options) (*Metrics, error) {
	return harness.RunRecovery(res, m, opt)
}

// RunAll recovers the same crash under every method.
func RunAll(res *CrashResult, opt Options) (map[Method]*Metrics, error) {
	return harness.RunAll(res, opt)
}

// WorkloadConfig parameterises the paper's update workload.
type WorkloadConfig = workload.Config

// SessionManager multiplexes concurrent client sessions over one TC;
// obtain one with Engine.NewSessionManager.
type SessionManager = tc.SessionManager

// Session is one client's transactional handle (single goroutine per
// session, N sessions in parallel).
type Session = tc.Session

// GroupCommitStats reports group-commit batching (flushes,
// records-per-flush).
type GroupCommitStats = wal.GroupCommitStats

// Typed executor layer (the client API; the raw Session/TC point ops
// above remain the documented low-level plane):
//
//	schema := logrec.MustSchema(
//		logrec.Column{Name: "owner", Type: logrec.TString},
//		logrec.Column{Name: "balance", Type: logrec.TInt64},
//	)
//	ex := logrec.NewExecutor(mgr.NewSession(), cfg.TableID, schema)
//	err = ex.Insert(42, "alice", int64(100))
//	rows, err := ex.Scan(0, 99).Where("balance", logrec.Ge, int64(50)).Rows()

// Executor runs typed operations — point ops, operator-tree queries
// and batched transactions — against one table through a session.
type Executor = exec.Executor

// Schema is an ordered list of typed columns plus the row codec.
type Schema = exec.Schema

// Column is one named, typed column in a Schema.
type Column = exec.Column

// ColType is a column's value type.
type ColType = exec.ColType

// Column value types for Schema definitions.
const (
	TUint64  = exec.TUint64
	TInt64   = exec.TInt64
	TFloat64 = exec.TFloat64
	TBool    = exec.TBool
	TString  = exec.TString
	TBytes   = exec.TBytes
)

// ExecRow is one typed query result row.
type ExecRow = exec.Row

// ExecQuery is a lazily built operator tree (Scan · Where · Filter ·
// Project · Limit) over an executor's table.
type ExecQuery = exec.Query

// ExecBatch groups typed ops into one transaction with a single
// grouped lock-and-plane round trip.
type ExecBatch = exec.Batch

// CmpOp is a Where comparison operator.
type CmpOp = exec.CmpOp

// Where comparison operators.
const (
	Eq = exec.Eq
	Ne = exec.Ne
	Lt = exec.Lt
	Le = exec.Le
	Gt = exec.Gt
	Ge = exec.Ge
)

// TableID names a table (Config.TableID is the engine's single
// clustered table).
type TableID = wal.TableID

// NewExecutor returns a typed executor over sess for table rows shaped
// by schema.
func NewExecutor(sess *Session, table TableID, schema *Schema) *Executor {
	return exec.New(sess, table, schema)
}

// NewSchema builds a schema from cols.
func NewSchema(cols ...Column) (*Schema, error) { return exec.NewSchema(cols...) }

// MustSchema is NewSchema that panics on error (package-level schema
// literals).
func MustSchema(cols ...Column) *Schema { return exec.MustSchema(cols...) }

// Session-layer error sentinels, matchable with errors.Is on any error
// returned by sessions or the typed executor.
var (
	// ErrSessionBusy: Begin on a session whose transaction is active.
	ErrSessionBusy = tc.ErrSessionBusy
	// ErrLockConflict: no-wait lock denial; abort and retry.
	ErrLockConflict = tc.ErrLockConflict
	// ErrTxnNotActive: operation on a finished or unknown transaction.
	ErrTxnNotActive = tc.ErrTxnNotActive
	// ErrKeyNotFound: update or delete of an absent key.
	ErrKeyNotFound = tc.ErrKeyNotFound
)

// Executor-layer error sentinels.
var (
	// ErrSchema: a value, row or reference that does not fit the schema.
	ErrSchema = exec.ErrSchema
	// ErrNoColumn: a reference to an undefined column name.
	ErrNoColumn = exec.ErrNoColumn
)
