// Package dc implements Deuteronomy's data component: it owns data
// placement (the clustered B-tree), the database cache (buffer pool),
// and the normal-operation recovery preparation of §4 — SMO logging,
// ∆-log records and (for the side-by-side SQL-style comparison) BW-log
// records. It exposes only logical operations to the TC.
package dc

import (
	"fmt"

	"logrec/internal/btree"
	"logrec/internal/buffer"
	"logrec/internal/sim"
	"logrec/internal/storage"
	"logrec/internal/tracker"
	"logrec/internal/wal"
)

// Config parameterises a DC.
type Config struct {
	// CPUCosts charges tree computation to the virtual clock.
	CPUCosts btree.CPUCosts
	// Tracker configures ∆/BW recording.
	Tracker tracker.Config
	// CleanerTarget is the lazywriter's dirty-fraction ceiling for the
	// buffer pool (0 disables background cleaning).
	CleanerTarget float64
	// CleanerEvery is the lazywriter's rate term: one background flush
	// per this many page dirtyings (0 disables the rate term).
	CleanerEvery int
	// PoolPolicy selects the buffer pool's eviction policy: "" or
	// "clock" for the second-chance clock, "2q" for the scan-resistant
	// two-segment policy.
	PoolPolicy string
	// PoolLatchShards splits the pool's latch into this many PID-hashed
	// sub-pools (0 and 1 both mean the single-latch pool); the pool
	// clamps it so every sub-pool keeps at least 8 frames.
	PoolLatchShards int
}

// DefaultConfig matches the experiment defaults: lazywriter keeping the
// cache at most ~30% dirty, the small-cache equilibrium of the paper's
// Figure 2(b).
func DefaultConfig() Config {
	return Config{
		CPUCosts:      btree.DefaultCPUCosts(),
		Tracker:       tracker.DefaultConfig(),
		CleanerTarget: 0.30,
		CleanerEvery:  3,
	}
}

// DC is the data component.
type DC struct {
	clock *sim.Clock
	disk  storage.Device
	pool  *buffer.Pool
	log   *wal.Log
	tree  *btree.Tree
	rec   *tracker.Recorder

	// shard is this DC's identity on the shared log: every record it
	// originates (SMO, ∆, BW, RSSP) carries it, so recovery can
	// demultiplex the log into per-shard pipelines. A single-DC engine
	// is shard 0.
	shard wal.ShardID

	// rsspLSN is the last redo-scan-start-point received (persisted in
	// the metadata page).
	rsspLSN wal.LSN
}

// smoLogger adapts the shared log for the tree's SMO records, stamping
// each with the originating shard.
type smoLogger struct {
	log   *wal.Log
	shard wal.ShardID
}

func (l smoLogger) NextLSN() wal.LSN { return l.log.EndLSN() }
func (l smoLogger) AppendSMO(r *wal.SMORec) wal.LSN {
	r.ShardID = l.shard
	return l.log.MustAppend(r)
}

// New creates a DC over an empty disk with a freshly created table,
// logging as shard sh. The tree starts unlogged (bulk-load mode); call
// StartLogging once the initial load is flushed.
func New(clock *sim.Clock, disk storage.Device, log *wal.Log, cacheCapacity int, tableID wal.TableID, sh wal.ShardID, cfg Config) (*DC, error) {
	pool, err := buffer.NewWithConfig(disk, cacheCapacity, buffer.Config{
		LatchShards: cfg.PoolLatchShards,
		Policy:      cfg.PoolPolicy,
	})
	if err != nil {
		return nil, err
	}
	pool.SetCleanerTarget(cfg.CleanerTarget)
	pool.SetCleanerRate(cfg.CleanerEvery)
	rec, err := tracker.New(log, sh, cfg.Tracker)
	if err != nil {
		return nil, err
	}
	tree, err := btree.Create(pool, clock, tableID, storage.MetaPageID+1, cfg.CPUCosts)
	if err != nil {
		return nil, err
	}
	d := &DC{clock: clock, disk: disk, pool: pool, log: log, tree: tree, rec: rec, shard: sh}
	d.wire()
	d.rec.SetEnabled(false) // bulk-load mode: no tracking yet
	return d, nil
}

// Open attaches a DC to an existing disk using the boot metadata page
// (the restart path; recovery follows), logging as shard sh.
func Open(clock *sim.Clock, disk storage.Device, log *wal.Log, cacheCapacity int, sh wal.ShardID, cfg Config) (*DC, error) {
	pool, err := buffer.NewWithConfig(disk, cacheCapacity, buffer.Config{
		LatchShards: cfg.PoolLatchShards,
		Policy:      cfg.PoolPolicy,
	})
	if err != nil {
		return nil, err
	}
	pool.SetCleanerTarget(cfg.CleanerTarget)
	pool.SetCleanerRate(cfg.CleanerEvery)
	rec, err := tracker.New(log, sh, cfg.Tracker)
	if err != nil {
		return nil, err
	}
	raw, err := disk.Read(storage.MetaPageID)
	if err != nil {
		return nil, fmt.Errorf("dc: reading boot page: %w", err)
	}
	st, err := decodeMeta(raw)
	if err != nil {
		return nil, err
	}
	tree := btree.Open(pool, clock, st.tree, cfg.CPUCosts)
	d := &DC{clock: clock, disk: disk, pool: pool, log: log, tree: tree, rec: rec, shard: sh, rsspLSN: st.rsspLSN}
	d.wire()
	d.rec.SetEnabled(false) // recovery enables tracking when done
	return d, nil
}

func (d *DC) wire() {
	d.tree.SetDirtyHook(func(pid storage.PageID, lsn wal.LSN) {
		d.rec.NoteUpdate(pid, lsn)
	})
	d.pool.SetFlushHook(func(pid storage.PageID, _ sim.Time) {
		d.rec.NoteFlush(pid)
	})
	d.pool.SetLogForce(func() wal.LSN { return d.log.Flush() })
}

// StartLogging ends bulk-load mode: the tree's SMOs are logged from now
// on and the ∆/BW trackers run.
func (d *DC) StartLogging() {
	d.tree.SetSMOLogger(smoLogger{log: d.log, shard: d.shard})
	d.rec.SetEnabled(true)
}

// ShardID returns this DC's identity on the shared log.
func (d *DC) ShardID() wal.ShardID { return d.shard }

// Pool returns the buffer pool (recovery and harness access).
func (d *DC) Pool() *buffer.Pool { return d.pool }

// Tree returns the clustered index.
func (d *DC) Tree() *btree.Tree { return d.tree }

// Disk returns the stable store.
func (d *DC) Disk() storage.Device { return d.disk }

// Clock returns the virtual clock.
func (d *DC) Clock() *sim.Clock { return d.clock }

// Recorder returns the ∆/BW recorder.
func (d *DC) Recorder() *tracker.Recorder { return d.rec }

// RsspLSN returns the last redo-scan-start-point persisted by RSSP.
func (d *DC) RsspLSN() wal.LSN { return d.rsspLSN }

// Read returns a copy of the value under (table, key).
func (d *DC) Read(table wal.TableID, key uint64) ([]byte, bool, error) {
	if err := d.checkTable(table); err != nil {
		return nil, false, err
	}
	return d.tree.Search(key)
}

// ReadRange invokes fn for every row with lo ≤ key ≤ hi, in key order.
// The value slice is only valid during the call.
func (d *DC) ReadRange(table wal.TableID, lo, hi uint64, fn func(key uint64, val []byte) error) error {
	return d.ReadRangeFiltered(table, lo, hi, nil, fn)
}

// ReadRangeFiltered is ReadRange with a predicate pushed down into the
// B-tree iterator: rows failing pred never leave the data component.
// A nil pred accepts every row.
func (d *DC) ReadRangeFiltered(table wal.TableID, lo, hi uint64, pred func(key uint64, val []byte) bool, fn func(key uint64, val []byte) error) error {
	if err := d.checkTable(table); err != nil {
		return err
	}
	return d.tree.ScanRangeFiltered(lo, hi, pred, fn)
}

// Update applies a logical update; see tc.DataComponent.
func (d *DC) Update(table wal.TableID, key uint64, val []byte, logFn func(pid storage.PageID) wal.LSN) error {
	if err := d.checkTable(table); err != nil {
		return err
	}
	return d.tree.UpdateLogged(key, val, logFn)
}

// Insert applies a logical insert; see tc.DataComponent.
func (d *DC) Insert(table wal.TableID, key uint64, val []byte, logFn func(pid storage.PageID) wal.LSN) error {
	if err := d.checkTable(table); err != nil {
		return err
	}
	return d.tree.InsertLogged(key, val, logFn)
}

// Delete applies a logical delete; see tc.DataComponent.
func (d *DC) Delete(table wal.TableID, key uint64, logFn func(pid storage.PageID) wal.LSN) error {
	if err := d.checkTable(table); err != nil {
		return err
	}
	return d.tree.DeleteLogged(key, logFn)
}

func (d *DC) checkTable(table wal.TableID) error {
	if table != d.tree.Meta().TableID {
		return fmt.Errorf("dc: unknown table %d (have %d)", table, d.tree.Meta().TableID)
	}
	return nil
}

// EOSL receives the TC's end of stable log: it unlocks page flushes up
// to eLSN (write-ahead-log protocol) and updates the TC-LSN the next
// ∆-log record will carry (§4.1).
func (d *DC) EOSL(eLSN wal.LSN) {
	d.pool.SetELSN(eLSN)
	d.rec.NoteEOSL(eLSN)
}

// RSSP performs the DC side of a checkpoint (§4.2):
//
//  1. close the current ∆/BW interval so records straddling the
//     checkpoint carry a TC-LSN greater than rsspLSN;
//  2. flip the checkpoint bit — pages dirtied from here on belong to
//     the next checkpoint (§3.2);
//  3. record the redo-scan-start-point on the log;
//  4. flush every page dirtied before the flip;
//  5. persist the boot metadata page.
//
// On return, no operation with LSN ≤ rsspLSN needs redo.
func (d *DC) RSSP(rsspLSN wal.LSN) error {
	d.rec.ForceEmit()
	d.pool.BeginCheckpointFlip()
	d.log.MustAppend(&wal.RSSPRec{RsspLSN: rsspLSN, ShardID: d.shard})
	if err := d.pool.FlushForCheckpoint(); err != nil {
		return fmt.Errorf("dc: checkpoint flush: %w", err)
	}
	d.rsspLSN = rsspLSN
	if err := d.WriteBootPage(); err != nil {
		return err
	}
	// Durability barrier: the checkpoint's page flushes and boot image
	// must be on stable media before the end-checkpoint record can name
	// this RSSP (a real fsync on a file device; accounting only on the
	// simulated one).
	if err := d.disk.Sync(); err != nil {
		return fmt.Errorf("dc: checkpoint sync: %w", err)
	}
	return nil
}

// StandbyCheckpoint is RSSP's log-silent twin for a warm standby: it
// flushes every applied page and persists applied — the stable-log
// position the replayer has fully applied through — as the boot page's
// redo-scan start point, so a standby restart re-ships only from there.
// Unlike RSSP it appends nothing: a standby's log must remain a byte
// prefix of the primary's, and its ∆/BW trackers are off (no interval
// to close, no checkpoint flip to take). The caller must have EOSL'd
// through applied first so none of these flushes forces the log.
func (d *DC) StandbyCheckpoint(applied wal.LSN) error {
	if err := d.pool.FlushAll(); err != nil {
		return fmt.Errorf("dc: standby checkpoint flush: %w", err)
	}
	d.rsspLSN = applied
	if err := d.WriteBootPage(); err != nil {
		return err
	}
	if err := d.disk.Sync(); err != nil {
		return fmt.Errorf("dc: standby checkpoint sync: %w", err)
	}
	return nil
}

// WriteBootPage persists the metadata page.
func (d *DC) WriteBootPage() error {
	buf := encodeMeta(metaState{tree: d.tree.Meta(), rsspLSN: d.rsspLSN}, d.disk.Config().PageSize)
	if _, err := d.disk.Write(storage.MetaPageID, buf); err != nil {
		return fmt.Errorf("dc: writing boot page: %w", err)
	}
	return nil
}

// BulkLoad inserts n sequential rows (keys 0..n-1) with values produced
// by valFn, unlogged, then flushes everything and persists the boot
// page. It must run before StartLogging.
func (d *DC) BulkLoad(n int, valFn func(key uint64) []byte) error {
	for k := uint64(0); k < uint64(n); k++ {
		if err := d.LoadRow(k, valFn(k)); err != nil {
			return err
		}
	}
	return d.FinishLoad()
}

// LoadRow inserts one row unlogged (bulk-load mode). The sharded engine
// routes rows here key by key; call FinishLoad when every row is in.
func (d *DC) LoadRow(key uint64, val []byte) error {
	if err := d.tree.Insert(key, val, wal.NilLSN); err != nil {
		return fmt.Errorf("dc: bulk load key %d: %w", key, err)
	}
	return nil
}

// FinishLoad completes a bulk load: flush every page, persist the boot
// page and sync the device.
func (d *DC) FinishLoad() error {
	if err := d.pool.FlushAll(); err != nil {
		return err
	}
	if err := d.WriteBootPage(); err != nil {
		return err
	}
	return d.disk.Sync()
}
