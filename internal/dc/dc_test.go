package dc

import (
	"bytes"
	"fmt"
	"testing"

	"logrec/internal/sim"
	"logrec/internal/storage"
	"logrec/internal/wal"
)

func newDC(t *testing.T, rows, cache int) (*DC, *wal.Log, *storage.Disk, *sim.Clock) {
	t.Helper()
	clock := &sim.Clock{}
	disk, err := storage.New(clock, storage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	log := wal.NewLog()
	d, err := New(clock, disk, log, cache, 1, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rows > 0 {
		if err := d.BulkLoad(rows, func(k uint64) []byte {
			return []byte(fmt.Sprintf("row-%08d", k))
		}); err != nil {
			t.Fatal(err)
		}
	}
	d.StartLogging()
	return d, log, disk, clock
}

func fixedLSN(log *wal.Log) func(storage.PageID) wal.LSN {
	return func(storage.PageID) wal.LSN {
		return log.MustAppend(&wal.CommitRec{TxnID: 999})
	}
}

func TestBulkLoadPersistsEverything(t *testing.T) {
	d, _, disk, _ := newDC(t, 1000, 128)
	if got := d.Pool().DirtyCount(); got != 0 {
		t.Fatalf("%d dirty pages after bulk load", got)
	}
	// Boot page readable and consistent.
	raw, err := disk.Read(storage.MetaPageID)
	if err != nil {
		t.Fatal(err)
	}
	st, err := decodeMeta(raw)
	if err != nil {
		t.Fatal(err)
	}
	if st.tree.Root != d.Tree().Meta().Root || st.tree.NextPID != d.Tree().Meta().NextPID {
		t.Fatalf("boot meta %+v != tree meta %+v", st.tree, d.Tree().Meta())
	}
	cnt, err := d.Tree().Count()
	if err != nil || cnt != 1000 {
		t.Fatalf("Count = %d (%v)", cnt, err)
	}
}

func TestOpenAttachesToBootPage(t *testing.T) {
	d, log, disk, _ := newDC(t, 500, 128)
	wantMeta := d.Tree().Meta()
	clock2 := &sim.Clock{}
	fork := disk.Fork(clock2)
	d2, err := Open(clock2, fork, log, 128, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d2.Tree().Meta() != wantMeta {
		t.Fatalf("reopened meta %+v, want %+v", d2.Tree().Meta(), wantMeta)
	}
	v, found, err := d2.Read(1, 123)
	if err != nil || !found || !bytes.Equal(v, []byte("row-00000123")) {
		t.Fatalf("read after reopen: %q %v %v", v, found, err)
	}
}

func TestOpenWithoutBootPageFails(t *testing.T) {
	clock := &sim.Clock{}
	disk, err := storage.New(clock, storage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(clock, disk, wal.NewLog(), 64, 0, DefaultConfig()); err == nil {
		t.Fatal("Open succeeded without a boot page")
	}
}

func TestUpdateStampsPageWithLogFnLSN(t *testing.T) {
	d, log, _, _ := newDC(t, 100, 64)
	var gotPID storage.PageID
	var lsn wal.LSN
	err := d.Update(1, 50, []byte("new-value-xx"), func(pid storage.PageID) wal.LSN {
		gotPID = pid
		lsn = log.MustAppend(&wal.CommitRec{TxnID: 1})
		return lsn
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotPID == storage.InvalidPageID {
		t.Fatal("logFn did not receive a PID")
	}
	f, err := d.Pool().Get(gotPID)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Pool().Unpin(f)
	if f.Page.LSN() != uint64(lsn) {
		t.Fatalf("pLSN = %d, want %d", f.Page.LSN(), lsn)
	}
	if !f.Dirty || f.LastLSN != lsn {
		t.Fatalf("frame not marked dirty at %v", lsn)
	}
}

func TestUnknownTableRejected(t *testing.T) {
	d, log, _, _ := newDC(t, 10, 64)
	if _, _, err := d.Read(99, 1); err == nil {
		t.Fatal("read of unknown table succeeded")
	}
	if err := d.Update(99, 1, []byte("x"), fixedLSN(log)); err == nil {
		t.Fatal("update of unknown table succeeded")
	}
}

func TestEOSLUnlocksFlushes(t *testing.T) {
	d, log, _, _ := newDC(t, 100, 64)
	if err := d.Update(1, 1, []byte("val-after-eosl"), fixedLSN(log)); err != nil {
		t.Fatal(err)
	}
	d.EOSL(log.Flush())
	if d.Pool().ELSN() != log.FlushedLSN() {
		t.Fatal("EOSL not applied to pool")
	}
}

func TestRSSPFlushesAndPersistsBootPage(t *testing.T) {
	d, log, disk, _ := newDC(t, 200, 128)
	for k := uint64(0); k < 50; k++ {
		if err := d.Update(1, k, []byte(fmt.Sprintf("upd-%07d", k)), fixedLSN(log)); err != nil {
			t.Fatal(err)
		}
	}
	d.EOSL(log.Flush())
	if d.Pool().DirtyCount() == 0 {
		t.Fatal("nothing dirty before RSSP")
	}
	rssp := log.MustAppend(&wal.BeginCkptRec{})
	d.EOSL(log.Flush())
	if err := d.RSSP(rssp); err != nil {
		t.Fatal(err)
	}
	if got := d.Pool().DirtyCount(); got != 0 {
		t.Fatalf("%d dirty pages survive RSSP", got)
	}
	if d.RsspLSN() != rssp {
		t.Fatalf("rssp = %v, want %v", d.RsspLSN(), rssp)
	}
	raw, err := disk.Read(storage.MetaPageID)
	if err != nil {
		t.Fatal(err)
	}
	st, err := decodeMeta(raw)
	if err != nil {
		t.Fatal(err)
	}
	if st.rsspLSN != rssp {
		t.Fatalf("boot rssp = %v, want %v", st.rsspLSN, rssp)
	}
	// An RSSP record is on the log for DC recovery.
	if log.AppendCount(wal.TypeRSSP) != 1 {
		t.Fatal("no RSSP record logged")
	}
}

func TestTrackersFeedFromUpdatesAndFlushes(t *testing.T) {
	// 5000 rows ≈ 130 leaf pages at 4 KB (39 rows/page) vs a 64-page
	// cache: updates must evict and flush, driving ∆/BW records.
	d, log, _, _ := newDC(t, 5000, 64)
	for k := uint64(0); k < 4000; k += 7 {
		if err := d.Update(1, k, []byte(fmt.Sprintf("upd-%07d", k)), fixedLSN(log)); err != nil {
			t.Fatal(err)
		}
		d.EOSL(log.Flush())
	}
	d.Recorder().ForceEmit()
	log.Flush()
	if log.AppendCount(wal.TypeDelta) == 0 {
		t.Fatal("no ∆ records despite flush pressure")
	}
	if log.AppendCount(wal.TypeBW) == 0 {
		t.Fatal("no BW records despite flush pressure")
	}
}

func TestMetaRoundTrip(t *testing.T) {
	st := metaState{}
	st.tree.TableID = 7
	st.tree.Root = 1234
	st.tree.Height = 5
	st.tree.NextPID = 99999
	st.rsspLSN = 0xABCDEF
	buf := encodeMeta(st, 4096)
	if len(buf) != 4096 {
		t.Fatalf("encoded size %d", len(buf))
	}
	got, err := decodeMeta(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != st {
		t.Fatalf("round trip %+v != %+v", got, st)
	}
	// Corrupt magic.
	buf[0] ^= 0xFF
	if _, err := decodeMeta(buf); err == nil {
		t.Fatal("decoded page with bad magic")
	}
	if _, err := decodeMeta(buf[:4]); err == nil {
		t.Fatal("decoded truncated meta")
	}
}

func TestBulkLoadLogsNothing(t *testing.T) {
	clock := &sim.Clock{}
	disk, err := storage.New(clock, storage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	log := wal.NewLog()
	d, err := New(clock, disk, log, 128, 1, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.BulkLoad(2000, func(k uint64) []byte {
		return []byte(fmt.Sprintf("row-%08d", k))
	}); err != nil {
		t.Fatal(err)
	}
	if got := log.EndLSN(); got != wal.FirstLSN() {
		t.Fatalf("bulk load appended %d log bytes", got-wal.FirstLSN())
	}
}
