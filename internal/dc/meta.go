package dc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"logrec/internal/btree"
	"logrec/internal/storage"
	"logrec/internal/wal"
)

// The metadata page (storage.MetaPageID) is the DC's boot page: it
// persists the B-tree metadata (root, height, allocator cursor) and the
// last redo-scan-start-point LSN as of the most recent checkpoint. SMO
// records replayed by DC recovery advance the tree metadata past the
// checkpoint image.
//
// Layout: [8B magic][4B tableID][4B root][4B height][4B nextPID]
//         [8B rsspLSN], zero-padded to the page size.

var metaMagic = [8]byte{'L', 'R', 'D', 'C', 'M', 'E', 'T', 'A'}

// ErrBadMeta indicates an unreadable metadata page.
var ErrBadMeta = errors.New("dc: bad metadata page")

const metaEncodedLen = 8 + 4 + 4 + 4 + 4 + 8

// metaState is what the boot page carries.
type metaState struct {
	tree    btree.Meta
	rsspLSN wal.LSN
}

func encodeMeta(st metaState, pageSize int) []byte {
	buf := make([]byte, pageSize)
	copy(buf, metaMagic[:])
	binary.BigEndian.PutUint32(buf[8:], uint32(st.tree.TableID))
	binary.BigEndian.PutUint32(buf[12:], uint32(st.tree.Root))
	binary.BigEndian.PutUint32(buf[16:], st.tree.Height)
	binary.BigEndian.PutUint32(buf[20:], uint32(st.tree.NextPID))
	binary.BigEndian.PutUint64(buf[24:], uint64(st.rsspLSN))
	return buf
}

func decodeMeta(buf []byte) (metaState, error) {
	var st metaState
	if len(buf) < metaEncodedLen {
		return st, fmt.Errorf("%w: %d bytes", ErrBadMeta, len(buf))
	}
	for i, b := range metaMagic {
		if buf[i] != b {
			return st, fmt.Errorf("%w: magic mismatch", ErrBadMeta)
		}
	}
	st.tree.TableID = wal.TableID(binary.BigEndian.Uint32(buf[8:]))
	st.tree.Root = storage.PageID(binary.BigEndian.Uint32(buf[12:]))
	st.tree.Height = binary.BigEndian.Uint32(buf[16:])
	st.tree.NextPID = storage.PageID(binary.BigEndian.Uint32(buf[20:]))
	st.rsspLSN = wal.LSN(binary.BigEndian.Uint64(buf[24:]))
	return st, nil
}
