package storage

import "logrec/internal/sim"

// Device abstracts stable page storage so every layer above — buffer
// pool, DC, engine, recovery — is indifferent to whether pages live in
// the discrete-event simulation (Disk) or in a real file on a real disk
// (FileDisk). The paper's recovery-performance story (Appendix B) is a
// story about devices: seeks, transfers, queue depth and log forces.
// The simulated implementation models those costs on a virtual clock;
// the file implementation pays them for real, which is what turns the
// recovery benchmarks into end-to-end wall-clock measurements.
//
// Method semantics every implementation must honour:
//
//   - Read is synchronous: it returns the page's current stable
//     content, waiting for any covering in-flight prefetch instead of
//     issuing a duplicate IO. The returned slice is owned by the
//     caller.
//   - Write makes data the page's stable content immediately from the
//     caller's perspective (the engine never crashes with data writes
//     in flight — the paper's controlled-crash methodology); the
//     returned time is the modelled completion, used to order
//     flush-completion callbacks.
//   - Prefetch issues asynchronous reads, grouping contiguous pages
//     into block IOs; it never blocks on the IO itself.
//   - Sync is the durability barrier: on a real device it is fsync, on
//     the simulated device it only counts (virtual writes are stable at
//     their completion time by construction). Checkpoints call it after
//     their page flushes and boot-page write.
//   - RealTime reports whether IO waits happen in wall-clock time; the
//     buffer pool releases its lock across miss reads when it does, so
//     concurrent readers overlap their waits.
type Device interface {
	// Read synchronously fetches pid's stable content.
	Read(pid PageID) ([]byte, error)
	// Write stores data as the new stable content of pid and returns
	// the IO's completion time.
	Write(pid PageID, data []byte) (sim.Time, error)
	// Prefetch asynchronously issues reads for the given pages.
	Prefetch(pids []PageID)
	// Sync is the durability barrier (fsync on real devices).
	Sync() error
	// Exists reports whether pid has ever been written.
	Exists(pid PageID) bool
	// NumPages reports the number of distinct pages stored.
	NumPages() int
	// Config returns the device's page-size/latency configuration.
	Config() Config
	// Stats returns a copy of the accumulated IO statistics.
	Stats() Stats
	// ResetStats zeroes the IO statistics.
	ResetStats()
	// SetIOHook subscribes fn to every IO the device performs. The hook
	// may be called with internal locks held: it must be fast and must
	// not call back into the device. nil unsubscribes.
	SetIOHook(fn IOHook)
	// QueueDepth reports how far in the future the device's most-loaded
	// channel is booked (virtual-time pacing; wall-clock devices report
	// 0 and pacing uses InflightCount).
	QueueDepth() sim.Duration
	// InflightCount reports prefetched pages whose IOs have not
	// completed.
	InflightCount() int
	// RealTime reports whether IO waits happen in wall-clock time.
	RealTime() bool
	// Freeze marks the device immutable; subsequent writes fail.
	Freeze()
}

// IOOp classifies a device IO for the stats hook.
type IOOp int

// IO operation kinds reported to IOHook.
const (
	// OpRead is a synchronous page read.
	OpRead IOOp = iota
	// OpWrite is a page write.
	OpWrite
	// OpPrefetch is an asynchronously issued read IO (possibly a block
	// covering several pages).
	OpPrefetch
	// OpSync is a durability barrier (fsync on real devices).
	OpSync
)

func (op IOOp) String() string {
	switch op {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpPrefetch:
		return "prefetch"
	case OpSync:
		return "sync"
	default:
		return "io?"
	}
}

// IOHook observes device IOs: op is the IO kind, pages how many pages
// it moved (0 for OpSync). The WAL's file backend reuses the same hook
// type for its byte-oriented log device, so one observer can account
// data-page IO and log forces together (the fsync-per-batch test does).
type IOHook func(op IOOp, pages int)
