package storage

import (
	"fmt"
	"os"
	"sync"
	"time"
	"unsafe"

	"logrec/internal/sim"
)

// directAlign is the memory/offset alignment O_DIRECT requires. Page
// offsets are naturally aligned when PageSize is a multiple of it; read
// and write buffers are realigned via alignedBuf.
const directAlign = 4096

// FileDisk is the real-device implementation of Device: pages live in a
// single file, reads are pread(2)s, writes are pwrite(2)s, Prefetch
// issues reads on background goroutines bounded by the configured
// channel count (queue depth), and Sync is a genuine fsync — the
// durability barrier the simulated disk only models.
//
// The file is opened with O_DIRECT when Config.DirectIO is set, the
// platform has the flag (see direct_linux.go) and the page size is
// compatible; if the filesystem rejects it (tmpfs does) FileDisk falls
// back to buffered IO and records that in DirectIO().
//
// Layout: page pid lives at byte offset (pid-1)*PageSize; PageID 0 is
// invalid, so the boot page (MetaPageID = 1) is the first page of the
// file. A written page always carries a non-zero header (the slotted
// page's type byte, or the boot page's magic), which is how Reopen
// rebuilds the written-page map after a crash: zero-filled slots belong
// to pages that were allocated but never flushed.
//
// FileDisk always reports RealTime() == true: IO waits are wall-clock,
// so the buffer pool releases its lock across miss reads and parallel
// recovery workers genuinely overlap their IO.
type FileDisk struct {
	clock  *sim.Clock
	cfg    Config
	f      *os.File
	direct bool

	// mu guards written, inflight, frozen, stats and hook. File IO
	// happens outside the lock; *os.File ReadAt/WriteAt are
	// goroutine-safe.
	mu       sync.Mutex
	written  map[PageID]struct{}
	inflight map[PageID]*fileIO
	// slots is a Channels-deep semaphore bounding concurrent prefetch
	// IOs — the device queue depth, exactly like the simulated disk's
	// channel array.
	slots  chan struct{}
	wg     sync.WaitGroup
	frozen bool
	stats  Stats
	hook   IOHook
}

var _ Device = (*FileDisk)(nil)

// fileIO is one in-flight prefetch IO covering one or more contiguous
// pages; done is closed on completion, after data (or err) is set.
type fileIO struct {
	done chan struct{}
	data map[PageID][]byte
	err  error
}

// NewFileDisk creates (or truncates) the page file at path. The clock
// is carried only so Write can report a completion time to the flush
// hooks; FileDisk never advances it.
func NewFileDisk(clock *sim.Clock, cfg Config, path string) (*FileDisk, error) {
	return openFileDisk(clock, cfg, path, true)
}

// OpenFileDisk opens an existing page file (the restart path) and
// rebuilds the written-page map from the pages' headers.
func OpenFileDisk(clock *sim.Clock, cfg Config, path string) (*FileDisk, error) {
	return openFileDisk(clock, cfg, path, false)
}

func openFileDisk(clock *sim.Clock, cfg Config, path string, create bool) (*FileDisk, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if clock == nil {
		return nil, fmt.Errorf("storage: nil clock")
	}
	flags := os.O_RDWR
	if create {
		flags |= os.O_CREATE | os.O_TRUNC
	}
	var f *os.File
	var err error
	direct := cfg.DirectIO && directIOFlag != 0 && cfg.PageSize%directAlign == 0
	if direct {
		f, err = os.OpenFile(path, flags|directIOFlag, 0o644)
		if err != nil {
			// Filesystem without O_DIRECT support (tmpfs, some network
			// mounts): fall back to buffered IO.
			direct = false
		}
	}
	if f == nil {
		f, err = os.OpenFile(path, flags, 0o644)
	}
	if err != nil {
		return nil, fmt.Errorf("storage: opening page file: %w", err)
	}
	d := &FileDisk{
		clock:    clock,
		cfg:      cfg,
		f:        f,
		direct:   direct,
		written:  make(map[PageID]struct{}),
		inflight: make(map[PageID]*fileIO),
		slots:    make(chan struct{}, cfg.Channels),
	}
	if !create {
		if err := d.rebuildWritten(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return d, nil
}

// rebuildWritten scans the file and marks every page slot whose header
// bytes are non-zero as written (see the FileDisk doc comment).
func (d *FileDisk) rebuildWritten() error {
	info, err := d.f.Stat()
	if err != nil {
		return err
	}
	const chunkPages = 64
	buf := alignedBuf(chunkPages*d.cfg.PageSize, d.direct)
	pageSize := int64(d.cfg.PageSize)
	npages := (info.Size() + pageSize - 1) / pageSize
	for first := int64(0); first < npages; first += chunkPages {
		n, err := d.f.ReadAt(buf, first*pageSize)
		if err != nil && n == 0 {
			return fmt.Errorf("storage: scanning page file: %w", err)
		}
		for p := int64(0); p*pageSize < int64(n) && first+p < npages; p++ {
			head := buf[p*pageSize:]
			limit := 32
			if rest := int64(n) - p*pageSize; rest < int64(limit) {
				limit = int(rest)
			}
			for _, b := range head[:limit] {
				if b != 0 {
					d.written[PageID(first+p+1)] = struct{}{}
					break
				}
			}
		}
	}
	return nil
}

// alignedBuf returns an n-byte slice aligned for O_DIRECT when direct
// is set (a plain allocation otherwise).
func alignedBuf(n int, direct bool) []byte {
	if !direct {
		return make([]byte, n)
	}
	raw := make([]byte, n+directAlign)
	off := 0
	if rem := int(uintptr(unsafe.Pointer(&raw[0])) % directAlign); rem != 0 {
		off = directAlign - rem
	}
	return raw[off : off+n : off+n]
}

// DirectIO reports whether the file is actually open with O_DIRECT
// (requested, supported, and not rejected by the filesystem).
func (d *FileDisk) DirectIO() bool { return d.direct }

// Path returns the backing file's name.
func (d *FileDisk) Path() string { return d.f.Name() }

// Close waits for in-flight prefetch IOs and closes the file. A crash
// closes without any flush or sync: whatever the file holds is what
// recovery gets, which is the point.
func (d *FileDisk) Close() error {
	d.wg.Wait()
	return d.f.Close()
}

func (d *FileDisk) off(pid PageID) int64 {
	return int64(pid-1) * int64(d.cfg.PageSize)
}

// Config returns the device configuration.
func (d *FileDisk) Config() Config {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cfg
}

// Clock returns the clock used to stamp write completions.
func (d *FileDisk) Clock() *sim.Clock { return d.clock }

// Stats returns a copy of the accumulated IO statistics. StallTime is
// wall-clock nanoseconds here (the virtual and wall domains coincide on
// a real device).
func (d *FileDisk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the IO statistics.
func (d *FileDisk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// SetIOHook subscribes fn to every IO (see Device.SetIOHook).
func (d *FileDisk) SetIOHook(fn IOHook) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hook = fn
}

// fire reports an IO to the hook. Caller holds d.mu.
func (d *FileDisk) fire(op IOOp, pages int) {
	if d.hook != nil {
		d.hook(op, pages)
	}
}

// Exists reports whether pid has ever been written.
func (d *FileDisk) Exists(pid PageID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.written[pid]
	return ok
}

// NumPages reports the number of written pages.
func (d *FileDisk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.written)
}

// RealTime reports true: FileDisk waits are always wall-clock.
func (d *FileDisk) RealTime() bool { return true }

// QueueDepth reports 0; wall-clock prefetch pacing uses InflightCount.
func (d *FileDisk) QueueDepth() sim.Duration { return 0 }

// InflightCount reports prefetch IOs not yet complete.
func (d *FileDisk) InflightCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, io := range d.inflight {
		select {
		case <-io.done:
		default:
			n++
		}
	}
	return n
}

// Freeze marks the disk immutable; subsequent writes fail.
func (d *FileDisk) Freeze() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.frozen = true
}

// Read synchronously fetches pid: from a covering prefetch IO when one
// is in flight (waiting for it if needed), with a pread otherwise. The
// wait happens outside the disk lock so concurrent readers overlap.
func (d *FileDisk) Read(pid PageID) ([]byte, error) {
	d.mu.Lock()
	if _, ok := d.written[pid]; !ok {
		d.mu.Unlock()
		return nil, fmt.Errorf("storage: read of unwritten page %d", pid)
	}
	if io, ok := d.inflight[pid]; ok {
		delete(d.inflight, pid)
		select {
		case <-io.done:
			d.stats.PrefetchHits++
			d.mu.Unlock()
		default:
			d.stats.Stalls++
			d.mu.Unlock()
			start := time.Now()
			<-io.done
			d.addStall(time.Since(start))
		}
		if io.err != nil {
			return nil, io.err
		}
		return io.data[pid], nil
	}
	d.stats.Reads++
	d.stats.PagesRead++
	d.stats.Stalls++
	d.fire(OpRead, 1)
	d.mu.Unlock()

	buf := alignedBuf(d.cfg.PageSize, d.direct)
	start := time.Now()
	if _, err := d.f.ReadAt(buf, d.off(pid)); err != nil {
		return nil, fmt.Errorf("storage: reading page %d: %w", pid, err)
	}
	d.addStall(time.Since(start))
	return buf, nil
}

func (d *FileDisk) addStall(elapsed time.Duration) {
	d.mu.Lock()
	d.stats.StallTime += sim.Duration(elapsed.Nanoseconds())
	d.mu.Unlock()
}

// Prefetch asynchronously issues reads for the given pages, grouping
// contiguous PIDs into block IOs of at most MaxBlock pages, each on its
// own goroutine bounded by the queue-depth semaphore.
func (d *FileDisk) Prefetch(pids []PageID) {
	if len(pids) == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	want := make([]PageID, 0, len(pids))
	for _, pid := range pids {
		if _, busy := d.inflight[pid]; busy {
			continue
		}
		if _, ok := d.written[pid]; !ok {
			continue // nothing stable to read; caller will create the page
		}
		want = append(want, pid)
	}
	if len(want) == 0 {
		return
	}
	sortPIDs(want)
	runStart := 0
	for i := 1; i <= len(want); i++ {
		endOfRun := i == len(want) ||
			want[i] != want[i-1]+1 ||
			i-runStart >= d.cfg.MaxBlock
		if !endOfRun {
			continue
		}
		run := want[runStart:i]
		n := len(run)
		d.stats.Reads++
		d.stats.PagesRead += int64(n)
		d.stats.PrefetchIOs++
		d.stats.PrefetchPages += int64(n)
		if n > 1 {
			d.stats.BlockReads++
		}
		d.fire(OpPrefetch, n)
		io := &fileIO{done: make(chan struct{})}
		for _, pid := range run {
			d.inflight[pid] = io
		}
		first := run[0]
		d.wg.Add(1)
		go func(run []PageID) {
			defer d.wg.Done()
			defer close(io.done)
			d.slots <- struct{}{}
			defer func() { <-d.slots }()
			buf := alignedBuf(len(run)*d.cfg.PageSize, d.direct)
			if _, err := d.f.ReadAt(buf, d.off(first)); err != nil {
				io.err = fmt.Errorf("storage: prefetch read at page %d: %w", first, err)
				return
			}
			io.data = make(map[PageID][]byte, len(run))
			for j, pid := range run {
				io.data[pid] = buf[j*d.cfg.PageSize : (j+1)*d.cfg.PageSize : (j+1)*d.cfg.PageSize]
			}
		}(run)
		runStart = i
	}
}

// Write stores data as the new stable content of pid via pwrite. The
// write is buffered (or direct); durability comes from the next Sync.
func (d *FileDisk) Write(pid PageID, data []byte) (sim.Time, error) {
	d.mu.Lock()
	if pid == InvalidPageID {
		d.mu.Unlock()
		return 0, fmt.Errorf("storage: write to invalid page 0")
	}
	if len(data) != d.cfg.PageSize {
		d.mu.Unlock()
		return 0, fmt.Errorf("storage: write of %d bytes to page %d, want page size %d", len(data), pid, d.cfg.PageSize)
	}
	if d.frozen {
		d.mu.Unlock()
		return 0, fmt.Errorf("storage: write to frozen disk (page %d)", pid)
	}
	d.stats.Writes++
	d.stats.PagesWritten++
	d.fire(OpWrite, 1)
	d.written[pid] = struct{}{}
	d.mu.Unlock()

	buf := data
	if d.direct {
		buf = alignedBuf(d.cfg.PageSize, true)
		copy(buf, data)
	}
	if _, err := d.f.WriteAt(buf, d.off(pid)); err != nil {
		return 0, fmt.Errorf("storage: writing page %d: %w", pid, err)
	}
	return d.clock.Now(), nil
}

// Sync fsyncs the page file — the durability barrier checkpoints rely
// on.
func (d *FileDisk) Sync() error {
	d.mu.Lock()
	d.stats.Syncs++
	d.fire(OpSync, 0)
	d.mu.Unlock()
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("storage: fsync: %w", err)
	}
	return nil
}

func sortPIDs(pids []PageID) {
	// Insertion sort: prefetch batches are small (≤ pool free frames)
	// and usually nearly sorted already.
	for i := 1; i < len(pids); i++ {
		for j := i; j > 0 && pids[j] < pids[j-1]; j-- {
			pids[j], pids[j-1] = pids[j-1], pids[j]
		}
	}
}
