//go:build !linux

package storage

// directIOFlag is zero on platforms without O_DIRECT support; FileDisk
// then always uses plain buffered IO (see direct_linux.go).
const directIOFlag = 0
