package storage

import (
	"path/filepath"
	"sync"
	"testing"

	"logrec/internal/sim"
)

func newFileDisk(t *testing.T) (*FileDisk, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pages.db")
	cfg := DefaultConfig()
	d, err := NewFileDisk(&sim.Clock{}, cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, path
}

// filePage builds page-size content whose header bytes are non-zero,
// like every real page image (type byte / boot magic).
func filePage(d *FileDisk, fill byte) []byte {
	buf := make([]byte, d.Config().PageSize)
	for i := range buf {
		buf[i] = fill
	}
	return buf
}

func TestFileDiskReadWriteRoundTrip(t *testing.T) {
	d, _ := newFileDisk(t)
	for pid := PageID(1); pid <= 10; pid++ {
		if _, err := d.Write(pid, filePage(d, byte(pid))); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.NumPages(); got != 10 {
		t.Fatalf("NumPages = %d, want 10", got)
	}
	for pid := PageID(1); pid <= 10; pid++ {
		data, err := d.Read(pid)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != byte(pid) || data[len(data)-1] != byte(pid) {
			t.Fatalf("page %d content mismatch", pid)
		}
	}
	if _, err := d.Read(11); err == nil {
		t.Fatal("read of unwritten page succeeded")
	}
	if d.Exists(11) || !d.Exists(7) {
		t.Fatal("Exists wrong")
	}
}

func TestFileDiskReopenRebuildsWrittenMap(t *testing.T) {
	d, path := newFileDisk(t)
	// Sparse writes: pages 1, 3 and 40 written; 2 and 4..39 are holes
	// (allocated-but-never-flushed slots read as zeros).
	for _, pid := range []PageID{1, 3, 40} {
		if _, err := d.Write(pid, filePage(d, byte(pid))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFileDisk(&sim.Clock{}, d.Config(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.NumPages(); got != 3 {
		t.Fatalf("reopened NumPages = %d, want 3", got)
	}
	for _, pid := range []PageID{1, 3, 40} {
		if !re.Exists(pid) {
			t.Fatalf("page %d lost across reopen", pid)
		}
		data, err := re.Read(pid)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != byte(pid) {
			t.Fatalf("page %d content lost across reopen", pid)
		}
	}
	for _, pid := range []PageID{2, 17, 39, 41} {
		if re.Exists(pid) {
			t.Fatalf("hole page %d reported as written", pid)
		}
	}
}

func TestFileDiskPrefetchAndStats(t *testing.T) {
	d, _ := newFileDisk(t)
	var pids []PageID
	for pid := PageID(1); pid <= 16; pid++ {
		if _, err := d.Write(pid, filePage(d, byte(pid))); err != nil {
			t.Fatal(err)
		}
		pids = append(pids, pid)
	}
	d.ResetStats()

	var mu sync.Mutex
	ops := map[IOOp]int{}
	d.SetIOHook(func(op IOOp, pages int) {
		mu.Lock()
		ops[op] += pages
		mu.Unlock()
	})

	d.Prefetch(pids) // 16 contiguous pages → 2 block IOs of MaxBlock=8
	for _, pid := range pids {
		data, err := d.Read(pid)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != byte(pid) {
			t.Fatalf("prefetched page %d content mismatch", pid)
		}
	}
	st := d.Stats()
	if st.PrefetchIOs != 2 || st.PrefetchPages != 16 || st.BlockReads != 2 {
		t.Fatalf("prefetch grouping off: %+v", st)
	}
	if st.PrefetchHits+st.Stalls != 16 {
		t.Fatalf("every read must claim its prefetch (hits %d + stalls %d != 16)", st.PrefetchHits, st.Stalls)
	}
	if st.Reads != 2 {
		t.Fatalf("reads = %d, want the 2 prefetch IOs only", st.Reads)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ops[OpPrefetch] != 16 {
		t.Fatalf("hook saw %d prefetched pages, want 16", ops[OpPrefetch])
	}
	if d.Stats().Syncs != 1 {
		t.Fatalf("Syncs = %d, want 1", d.Stats().Syncs)
	}
}

func TestFileDiskFreeze(t *testing.T) {
	d, _ := newFileDisk(t)
	if _, err := d.Write(1, filePage(d, 1)); err != nil {
		t.Fatal(err)
	}
	d.Freeze()
	if _, err := d.Write(2, filePage(d, 2)); err == nil {
		t.Fatal("write to frozen disk succeeded")
	}
	if _, err := d.Read(1); err != nil {
		t.Fatalf("read after freeze: %v", err)
	}
}

func TestFileDiskConcurrentReaders(t *testing.T) {
	d, _ := newFileDisk(t)
	const pages = 64
	for pid := PageID(1); pid <= pages; pid++ {
		if _, err := d.Write(pid, filePage(d, byte(pid))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pid := PageID(uint32(w*31+i)%pages + 1)
				if i%7 == 0 {
					d.Prefetch([]PageID{pid, pid + 1})
				}
				data, err := d.Read(pid)
				if err != nil {
					t.Error(err)
					return
				}
				if data[0] != byte(pid) {
					t.Errorf("page %d content mismatch", pid)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
