package storage

import (
	"bytes"
	"testing"

	"logrec/internal/sim"
)

func testConfig() Config {
	// Channels: 1 keeps IO strictly serial so expected completion
	// times are easy to state; parallelism has its own test.
	return Config{
		PageSize:        128,
		SeekTime:        4 * sim.Millisecond,
		TransferPerPage: 100 * sim.Microsecond,
		WriteSeekTime:   2 * sim.Millisecond,
		MaxBlock:        8,
		Channels:        1,
	}
}

func newDisk(t *testing.T) (*sim.Clock, *Disk) {
	t.Helper()
	clock := &sim.Clock{}
	d, err := New(clock, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return clock, d
}

func pageData(b byte, size int) []byte {
	return bytes.Repeat([]byte{b}, size)
}

func TestWriteReadRoundTrip(t *testing.T) {
	_, d := newDisk(t)
	want := pageData(7, 128)
	if _, err := d.Write(5, want); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("content mismatch")
	}
	// Read returns a copy: mutating it must not affect the disk.
	got[0] = 99
	again, _ := d.Read(5)
	if again[0] != 7 {
		t.Fatal("Read aliases disk memory")
	}
}

func TestReadUnwritten(t *testing.T) {
	_, d := newDisk(t)
	if _, err := d.Read(9); err == nil {
		t.Fatal("read of unwritten page succeeded")
	}
}

func TestWriteWrongSize(t *testing.T) {
	_, d := newDisk(t)
	if _, err := d.Write(1, pageData(0, 64)); err == nil {
		t.Fatal("short write accepted")
	}
	if _, err := d.Write(InvalidPageID, pageData(0, 128)); err == nil {
		t.Fatal("write to page 0 accepted")
	}
}

func TestSyncReadAdvancesClock(t *testing.T) {
	clock, d := newDisk(t)
	if _, err := d.Write(1, pageData(1, 128)); err != nil {
		t.Fatal(err)
	}
	// The write booked the device; a read queues behind it.
	before := clock.Now()
	if _, err := d.Read(1); err != nil {
		t.Fatal(err)
	}
	writeCost := 2*sim.Millisecond + 100*sim.Microsecond
	readCost := 4*sim.Millisecond + 100*sim.Microsecond
	want := before.Add(writeCost + readCost)
	if clock.Now() != want {
		t.Fatalf("clock = %v, want %v", clock.Now(), want)
	}
	st := d.Stats()
	if st.Reads != 1 || st.PagesRead != 1 || st.Stalls != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPrefetchOverlapsWithCompute(t *testing.T) {
	clock, d := newDisk(t)
	for pid := PageID(10); pid < 14; pid++ {
		if _, err := d.Write(pid, pageData(byte(pid), 128)); err != nil {
			t.Fatal(err)
		}
	}
	writeDone := clock.Now().Add(4 * (2*sim.Millisecond + 100*sim.Microsecond))
	d.Prefetch([]PageID{10, 11, 12, 13})
	if clock.Now() != 0 {
		t.Fatalf("prefetch advanced the clock to %v", clock.Now())
	}
	// One block IO for 4 contiguous pages, queued after the writes.
	st := d.Stats()
	if st.PrefetchIOs != 1 || st.PrefetchPages != 4 || st.BlockReads != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Simulate long CPU work that outlasts the IO...
	blockDone := writeDone.Add(4*sim.Millisecond + 4*100*sim.Microsecond)
	clock.AdvanceTo(blockDone.Add(sim.Millisecond))
	// ...then the read is free (prefetch hit, no stall).
	before := clock.Now()
	if _, err := d.Read(11); err != nil {
		t.Fatal(err)
	}
	if clock.Now() != before {
		t.Fatal("read of completed prefetch advanced the clock")
	}
	if got := d.Stats().PrefetchHits; got != 1 {
		t.Fatalf("PrefetchHits = %d, want 1", got)
	}
}

func TestPrefetchEarlyReadStallsUntilIOCompletes(t *testing.T) {
	clock, d := newDisk(t)
	if _, err := d.Write(3, pageData(3, 128)); err != nil {
		t.Fatal(err)
	}
	writeDone := clock.Now().Add(2*sim.Millisecond + 100*sim.Microsecond)
	d.Prefetch([]PageID{3})
	ioDone := writeDone.Add(4*sim.Millisecond + 100*sim.Microsecond)
	if _, err := d.Read(3); err != nil {
		t.Fatal(err)
	}
	if clock.Now() != ioDone {
		t.Fatalf("clock = %v, want stall until %v", clock.Now(), ioDone)
	}
	st := d.Stats()
	if st.Stalls != 1 || st.StallTime != ioDone.Sub(0) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPrefetchGroupsContiguousRunsAndCapsBlocks(t *testing.T) {
	_, d := newDisk(t)
	var pids []PageID
	// 10 contiguous pages (split into 8+2) plus one isolated page.
	for pid := PageID(20); pid < 30; pid++ {
		pids = append(pids, pid)
		if _, err := d.Write(pid, pageData(0, 128)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Write(50, pageData(0, 128)); err != nil {
		t.Fatal(err)
	}
	pids = append(pids, 50)
	d.Prefetch(pids)
	st := d.Stats()
	if st.PrefetchIOs != 3 {
		t.Fatalf("PrefetchIOs = %d, want 3 (8+2+1)", st.PrefetchIOs)
	}
	if st.PrefetchPages != 11 {
		t.Fatalf("PrefetchPages = %d, want 11", st.PrefetchPages)
	}
}

func TestPrefetchSkipsInflightAndUnwritten(t *testing.T) {
	_, d := newDisk(t)
	if _, err := d.Write(1, pageData(1, 128)); err != nil {
		t.Fatal(err)
	}
	d.Prefetch([]PageID{1, 2}) // 2 unwritten: skipped
	if got := d.Stats().PrefetchPages; got != 1 {
		t.Fatalf("PrefetchPages = %d, want 1", got)
	}
	d.Prefetch([]PageID{1}) // already inflight: skipped
	if got := d.Stats().PrefetchIOs; got != 1 {
		t.Fatalf("PrefetchIOs = %d, want 1", got)
	}
}

func TestForkCopyOnWrite(t *testing.T) {
	_, d := newDisk(t)
	if _, err := d.Write(1, pageData(1, 128)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(2, pageData(2, 128)); err != nil {
		t.Fatal(err)
	}
	d.Freeze()

	c1 := d.Fork(&sim.Clock{})
	c2 := d.Fork(&sim.Clock{})
	// Children see the parent's pages.
	got, err := c1.Read(1)
	if err != nil || got[0] != 1 {
		t.Fatalf("child read: %v %v", got, err)
	}
	// A child write is invisible to the parent and the sibling.
	if _, err := c1.Write(1, pageData(9, 128)); err != nil {
		t.Fatal(err)
	}
	fromC2, _ := c2.Read(1)
	if fromC2[0] != 1 {
		t.Fatal("sibling sees child write")
	}
	// Parent is frozen.
	if _, err := d.Write(3, pageData(3, 128)); err == nil {
		t.Fatal("write to frozen parent succeeded")
	}
	if c1.NumPages() != 2 || c2.NumPages() != 2 {
		t.Fatalf("NumPages: %d %d, want 2 2", c1.NumPages(), c2.NumPages())
	}
}

func TestQueueDepth(t *testing.T) {
	clock, d := newDisk(t)
	if _, err := d.Write(1, pageData(1, 128)); err != nil {
		t.Fatal(err)
	}
	if d.QueueDepth() <= 0 {
		t.Fatal("queue depth zero right after a write IO")
	}
	clock.Advance(sim.Second)
	if d.QueueDepth() != 0 {
		t.Fatal("queue depth nonzero after the device drained")
	}
}

func TestResetStats(t *testing.T) {
	_, d := newDisk(t)
	if _, err := d.Write(1, pageData(1, 128)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(1); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	if st := d.Stats(); st != (Stats{}) {
		t.Fatalf("stats not reset: %+v", st)
	}
}

func TestChannelsParallelizePrefetch(t *testing.T) {
	clock := &sim.Clock{}
	cfg := testConfig()
	cfg.Channels = 4
	d, err := New(clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Four scattered (non-contiguous) pages.
	pids := []PageID{10, 20, 30, 40}
	for _, pid := range pids {
		if _, err := d.Write(pid, pageData(byte(pid), 128)); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(sim.Second) // drain write IOs
	start := clock.Now()
	d.Prefetch(pids)
	// All four IOs run in parallel on separate channels: reading the
	// last page should stall only ~one IO latency, not four.
	for _, pid := range pids {
		if _, err := d.Read(pid); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := clock.Now().Sub(start)
	oneIO := 4*sim.Millisecond + 100*sim.Microsecond
	if elapsed != oneIO {
		t.Fatalf("parallel prefetch of 4 pages took %v, want one IO latency %v", elapsed, oneIO)
	}
}

func TestConfigValidation(t *testing.T) {
	clock := &sim.Clock{}
	bad := testConfig()
	bad.PageSize = 0
	if _, err := New(clock, bad); err == nil {
		t.Fatal("accepted zero page size")
	}
	bad = testConfig()
	bad.MaxBlock = 0
	if _, err := New(clock, bad); err == nil {
		t.Fatal("accepted zero MaxBlock")
	}
	bad = testConfig()
	bad.SeekTime = -1
	if _, err := New(clock, bad); err == nil {
		t.Fatal("accepted negative latency")
	}
	if _, err := New(nil, testConfig()); err == nil {
		t.Fatal("accepted nil clock")
	}
}
