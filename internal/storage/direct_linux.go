//go:build linux

package storage

import "syscall"

// directIOFlag is the open(2) flag that bypasses the OS page cache on
// this platform. Linux spells it O_DIRECT; platforms without an
// equivalent build the !linux sibling, whose zero value makes FileDisk
// fall back to plain buffered IO.
const directIOFlag = syscall.O_DIRECT
