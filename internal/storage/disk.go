// Package storage implements the simulated stable-storage substrate: a
// page-addressed disk with a discrete-event latency model and
// copy-on-write forking for side-by-side recovery experiments.
//
// The model follows Appendix B of the paper: recovery performance is
// gated by (i) how many data pages are requested and (ii) how often and
// how long redo waits for them. The disk therefore models:
//
//   - random reads: one seek plus per-page transfer;
//   - block reads: up to MaxBlock contiguous pages in a single IO
//     (SQL Server reads blocks of eight contiguous pages);
//   - a serial service queue: the device completes one IO at a time, so
//     prefetch that outruns the device queues up and synchronous reads
//     behind a deep queue stall longer;
//   - asynchronous prefetch: IOs are issued without advancing the clock;
//     a later Read of an in-flight page advances the clock only to the
//     IO's completion time.
//
// All latencies are virtual (package sim), so results are deterministic.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"logrec/internal/sim"
)

// PageID identifies a page on stable storage. PageID 0 is invalid; the
// metadata page is PageID 1.
type PageID uint32

// InvalidPageID is the zero PageID; no page ever has it.
const InvalidPageID PageID = 0

// MetaPageID is the well-known location of the database metadata page.
const MetaPageID PageID = 1

// Config parameterises the disk latency model.
type Config struct {
	// PageSize is the size of every data page in bytes.
	PageSize int
	// SeekTime is the fixed cost to position for a random IO.
	SeekTime sim.Duration
	// TransferPerPage is the additional cost per page moved.
	TransferPerPage sim.Duration
	// WriteSeekTime is the positioning cost for a write IO.
	WriteSeekTime sim.Duration
	// MaxBlock is the largest number of contiguous pages a single read
	// IO may cover (the paper's prototype uses 8).
	MaxBlock int
	// Channels is the device queue depth: how many IOs the device
	// services concurrently (command queueing). Synchronous reads
	// cannot exploit it — the caller blocks per IO — but asynchronous
	// prefetch can, which is where read-ahead's benefit comes from
	// (Appendix A).
	Channels int
	// RealIOScale switches the disk into wall-clock mode: every IO
	// sleeps its modelled latency divided by this factor in real time
	// instead of advancing the virtual clock. Parallel redo workers then
	// genuinely overlap their IO waits, so wall-clock speedups are
	// measurable. 0 keeps the pure virtual-time simulation.
	RealIOScale int
	// DirectIO asks FileDisk to open its backing file with O_DIRECT
	// (bypassing the OS page cache) where the platform and filesystem
	// support it; it falls back to buffered IO otherwise — tmpfs, for
	// one, rejects O_DIRECT. Only meaningful when PageSize is a multiple
	// of 4096. The simulated Disk ignores it.
	DirectIO bool
}

// DefaultConfig returns the latency model used by the experiment
// defaults: a 4 KB page, 4 ms seeks, 100 µs per-page transfer, 8-page
// block reads and a queue depth of 4.
func DefaultConfig() Config {
	return Config{
		PageSize:        4096,
		SeekTime:        4 * sim.Millisecond,
		TransferPerPage: 100 * sim.Microsecond,
		WriteSeekTime:   2 * sim.Millisecond,
		MaxBlock:        8,
		Channels:        4,
	}
}

func (c Config) validate() error {
	if c.PageSize <= 0 {
		return fmt.Errorf("storage: PageSize must be positive, got %d", c.PageSize)
	}
	if c.MaxBlock <= 0 {
		return fmt.Errorf("storage: MaxBlock must be positive, got %d", c.MaxBlock)
	}
	if c.SeekTime < 0 || c.TransferPerPage < 0 || c.WriteSeekTime < 0 {
		return fmt.Errorf("storage: latencies must be non-negative")
	}
	if c.Channels <= 0 {
		return fmt.Errorf("storage: Channels must be positive, got %d", c.Channels)
	}
	if c.RealIOScale < 0 {
		return fmt.Errorf("storage: RealIOScale must be non-negative, got %d", c.RealIOScale)
	}
	return nil
}

// Stats counts IO activity. Reads and writes are whole IOs; PagesRead
// and PagesWritten count pages moved (a block read moves several pages
// in one IO).
type Stats struct {
	Reads        int64
	PagesRead    int64
	BlockReads   int64
	Writes       int64
	PagesWritten int64
	// Stalls is the number of synchronous reads that had to wait for
	// the device (IO not already complete when requested).
	Stalls int64
	// StallTime is total virtual time spent waiting on synchronous
	// reads, including waits for previously prefetched pages.
	StallTime sim.Duration
	// PrefetchIOs and PrefetchPages count asynchronously issued IOs.
	PrefetchIOs   int64
	PrefetchPages int64
	// PrefetchHits counts reads satisfied by an already-complete
	// prefetch (no stall).
	PrefetchHits int64
	// Syncs counts durability barriers (Device.Sync calls — fsyncs on a
	// real device).
	Syncs int64
}

// Disk is the simulated stable store. A mutex makes it safe for
// concurrent use, which parallel redo workers rely on; single-threaded
// virtual-time experiments see identical behaviour (the mutex is
// uncontended there).
type Disk struct {
	clock *sim.Clock
	cfg   Config

	// mu guards pages, channels, inflight, realInflight, frozen and
	// stats. Real-mode sleeps happen outside the lock.
	mu sync.Mutex

	// base is the copy-on-write parent. Reads fall through to base when
	// the page is absent locally; writes always land locally. base must
	// be frozen (never written) after forking.
	base  *Disk
	pages map[PageID][]byte

	// channels holds the time each device channel frees up; an IO is
	// assigned to the earliest-free channel.
	channels []sim.Time
	inflight map[PageID]sim.Time

	// realInflight maps prefetched pages to their completion signal in
	// real-IO mode; realSlots is a Channels-sized semaphore bounding
	// concurrent real prefetch IOs (the device queue depth).
	realInflight map[PageID]chan struct{}
	realSlots    chan struct{}

	// frozen marks a forked parent; writes to a frozen disk fail.
	frozen bool

	stats Stats
	hook  IOHook
}

// Disk implements the Device abstraction (device.go); FileDisk is the
// file-backed sibling.
var _ Device = (*Disk)(nil)

// New creates an empty disk governed by clock.
func New(clock *sim.Clock, cfg Config) (*Disk, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if clock == nil {
		return nil, fmt.Errorf("storage: nil clock")
	}
	d := &Disk{
		clock:    clock,
		cfg:      cfg,
		pages:    make(map[PageID][]byte),
		channels: make([]sim.Time, cfg.Channels),
		inflight: make(map[PageID]sim.Time),
	}
	d.initRealMode()
	return d, nil
}

// initRealMode allocates the real-IO bookkeeping if the config asks for
// wall-clock IO. Caller must ensure no IO is concurrently in flight.
func (d *Disk) initRealMode() {
	if d.cfg.RealIOScale > 0 {
		d.realInflight = make(map[PageID]chan struct{})
		d.realSlots = make(chan struct{}, d.cfg.Channels)
	}
}

// SetRealIOScale flips the disk into (or out of) wall-clock mode; see
// Config.RealIOScale. Recovery runs call it on a freshly forked disk
// before any IO is issued.
func (d *Disk) SetRealIOScale(scale int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cfg.RealIOScale = scale
	d.initRealMode()
}

// RealTime reports whether the disk is in wall-clock IO mode.
func (d *Disk) RealTime() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cfg.RealIOScale > 0
}

// realSleep blocks the caller for the modelled cost scaled down by
// RealIOScale, in wall-clock time.
func (d *Disk) realSleep(cost sim.Duration, scale int) {
	time.Sleep(time.Duration(int64(cost) / int64(scale)))
}

// Fork returns a copy-on-write child of d sharing d's current contents.
// The child gets its own clock so forks replay independently. The parent
// must not be written after forking; Freeze enforces this in tests.
func (d *Disk) Fork(clock *sim.Clock) *Disk {
	d.mu.Lock()
	defer d.mu.Unlock()
	child := &Disk{
		clock:    clock,
		cfg:      d.cfg,
		base:     d,
		pages:    make(map[PageID][]byte),
		channels: make([]sim.Time, d.cfg.Channels),
		inflight: make(map[PageID]sim.Time),
	}
	child.initRealMode()
	return child
}

// Config returns the disk's latency configuration.
func (d *Disk) Config() Config {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cfg
}

// Clock returns the virtual clock governing this disk.
func (d *Disk) Clock() *sim.Clock { return d.clock }

// Stats returns a copy of the accumulated IO statistics.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the IO statistics (used between workload and
// recovery phases so recovery IO is measured in isolation).
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// SetIOHook subscribes fn to every IO (see Device.SetIOHook). The hook
// fires with the disk lock held; it must not call back into the disk.
func (d *Disk) SetIOHook(fn IOHook) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hook = fn
}

// fire reports an IO to the hook. Caller holds d.mu.
func (d *Disk) fire(op IOOp, pages int) {
	if d.hook != nil {
		d.hook(op, pages)
	}
}

// Sync is the durability barrier. Simulated writes are stable at their
// completion time by construction, so Sync only counts — it exists so
// checkpoint and log-force call sites are identical across device
// implementations and their barrier cadence is observable.
func (d *Disk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Syncs++
	d.fire(OpSync, 0)
	return nil
}

// lookup finds the current content of pid, following the CoW chain.
// Caller holds d.mu; ancestors are frozen (read-only), so walking them
// without their locks is safe.
func (d *Disk) lookup(pid PageID) ([]byte, bool) {
	for cur := d; cur != nil; cur = cur.base {
		if p, ok := cur.pages[pid]; ok {
			return p, true
		}
	}
	return nil, false
}

// Exists reports whether pid has ever been written.
func (d *Disk) Exists(pid PageID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.lookup(pid)
	return ok
}

// NumPages reports the number of distinct pages stored (CoW-merged).
func (d *Disk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	seen := make(map[PageID]struct{})
	for cur := d; cur != nil; cur = cur.base {
		for pid := range cur.pages {
			seen[pid] = struct{}{}
		}
	}
	return len(seen)
}

// serviceIO assigns an IO of duration dur to the earliest-free device
// channel and returns its completion time. IOs on the same channel
// serialize; the queue depth bounds concurrency.
func (d *Disk) serviceIO(dur sim.Duration) sim.Time {
	best := 0
	for i := 1; i < len(d.channels); i++ {
		if d.channels[i] < d.channels[best] {
			best = i
		}
	}
	start := d.channels[best]
	if now := d.clock.Now(); now > start {
		start = now
	}
	done := start.Add(dur)
	d.channels[best] = done
	return done
}

func (d *Disk) readCost(pages int) sim.Duration {
	return d.cfg.SeekTime + sim.Duration(pages)*d.cfg.TransferPerPage
}

// Read synchronously fetches pid, advancing the clock to the IO's
// completion. If the page was previously prefetched, the clock advances
// only to the prefetch completion (possibly not at all).
//
// In real-IO mode the caller instead sleeps the scaled latency in wall
// time (or waits on the covering prefetch IO), outside the disk lock, so
// concurrent readers overlap their waits.
func (d *Disk) Read(pid PageID) ([]byte, error) {
	d.mu.Lock()
	data, ok := d.lookup(pid)
	if !ok {
		d.mu.Unlock()
		return nil, fmt.Errorf("storage: read of unwritten page %d", pid)
	}
	if scale := d.cfg.RealIOScale; scale > 0 {
		if ch, inflight := d.realInflight[pid]; inflight {
			delete(d.realInflight, pid)
			select {
			case <-ch: // prefetch already complete: free claim
				d.stats.PrefetchHits++
				d.mu.Unlock()
			default:
				d.stats.Stalls++
				d.mu.Unlock()
				start := time.Now()
				<-ch
				d.addStallWall(time.Since(start), scale)
			}
			return cloneBytes(data), nil
		}
		cost := d.readCost(1)
		d.stats.Reads++
		d.stats.PagesRead++
		d.stats.Stalls++
		d.fire(OpRead, 1)
		slots := d.realSlots
		d.mu.Unlock()
		start := time.Now()
		// Synchronous reads contend for the same device channel slots
		// as prefetch and write IOs, so measured parallelism stays
		// bounded by the modeled queue depth, exactly like serviceIO
		// bounds it in virtual mode.
		slots <- struct{}{}
		d.realSleep(cost, scale)
		<-slots
		d.addStallWall(time.Since(start), scale)
		return cloneBytes(data), nil
	}
	defer d.mu.Unlock()
	now := d.clock.Now()
	if done, ok := d.inflight[pid]; ok {
		delete(d.inflight, pid)
		if done > now {
			d.stats.Stalls++
			d.stats.StallTime += done.Sub(now)
			d.clock.AdvanceTo(done)
		} else {
			d.stats.PrefetchHits++
		}
		return cloneBytes(data), nil
	}
	done := d.serviceIO(d.readCost(1))
	d.stats.Reads++
	d.stats.PagesRead++
	d.stats.Stalls++
	d.fire(OpRead, 1)
	d.stats.StallTime += done.Sub(now)
	d.clock.AdvanceTo(done)
	return cloneBytes(data), nil
}

// addStallWall accounts a real-mode wait, scaled back up to the modelled
// latency domain so real and virtual stall times are comparable.
func (d *Disk) addStallWall(elapsed time.Duration, scale int) {
	d.mu.Lock()
	d.stats.StallTime += sim.Duration(elapsed.Nanoseconds() * int64(scale))
	d.mu.Unlock()
}

// Prefetch asynchronously issues reads for the given pages, grouping
// contiguous PIDs into block IOs of at most MaxBlock pages. Pages
// already in flight are skipped. The clock does not advance. The caller
// collects each page later with Read, which waits only if the covering
// IO has not yet completed.
func (d *Disk) Prefetch(pids []PageID) {
	if len(pids) == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	real := d.cfg.RealIOScale > 0
	want := make([]PageID, 0, len(pids))
	for _, pid := range pids {
		if real {
			if _, inflight := d.realInflight[pid]; inflight {
				continue
			}
		} else if _, inflight := d.inflight[pid]; inflight {
			continue
		}
		if _, ok := d.lookup(pid); !ok {
			continue // nothing stable to read; caller will create the page
		}
		want = append(want, pid)
	}
	if len(want) == 0 {
		return
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	// Group into runs of contiguous PIDs, capped at MaxBlock.
	runStart := 0
	for i := 1; i <= len(want); i++ {
		endOfRun := i == len(want) ||
			want[i] != want[i-1]+1 ||
			i-runStart >= d.cfg.MaxBlock
		if !endOfRun {
			continue
		}
		n := i - runStart
		cost := d.readCost(n)
		d.stats.Reads++
		d.stats.PagesRead += int64(n)
		d.stats.PrefetchIOs++
		d.stats.PrefetchPages += int64(n)
		if n > 1 {
			d.stats.BlockReads++
		}
		d.fire(OpPrefetch, n)
		if real {
			// The IO runs on its own goroutine: it takes a device
			// channel slot (queue depth), sleeps the scaled latency and
			// signals every covered page.
			ch := make(chan struct{})
			for _, pid := range want[runStart:i] {
				d.realInflight[pid] = ch
			}
			scale := d.cfg.RealIOScale
			go func() {
				d.realSlots <- struct{}{}
				d.realSleep(cost, scale)
				<-d.realSlots
				close(ch)
			}()
		} else {
			done := d.serviceIO(cost)
			for _, pid := range want[runStart:i] {
				d.inflight[pid] = done
			}
		}
		runStart = i
	}
}

// QueueDepth reports how far in the future the device's most-loaded
// channel is booked, in virtual time from now. Prefetchers use it to
// pace issue rates. Real-IO mode reports 0 (pacing there uses
// InflightCount).
func (d *Disk) QueueDepth() sim.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cfg.RealIOScale > 0 {
		return 0
	}
	now := d.clock.Now()
	var worst sim.Time
	for _, c := range d.channels {
		if c > worst {
			worst = c
		}
	}
	if worst <= now {
		return 0
	}
	return worst.Sub(now)
}

// InflightCount reports the number of prefetched pages whose read IOs
// have not yet completed on the virtual clock. Completed-but-unclaimed
// pages do not count: their data is available and costs nothing to
// claim, so pacing against them would starve the prefetcher.
func (d *Disk) InflightCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cfg.RealIOScale > 0 {
		n := 0
		for _, ch := range d.realInflight {
			select {
			case <-ch: // complete but unclaimed
			default:
				n++
			}
		}
		return n
	}
	now := d.clock.Now()
	n := 0
	for _, done := range d.inflight {
		if done > now {
			n++
		}
	}
	return n
}

// Write stores data as the new stable content of pid. The IO is issued
// asynchronously (the device queue is charged; the clock does not
// advance) and the returned time is when the write completes — callers
// use it to order flush-completion callbacks. The content is considered
// stable at the completion time; the engine never crashes with writes
// in flight (a crash is taken at a quiescent instant, which is the
// paper's controlled-crash methodology).
func (d *Disk) Write(pid PageID, data []byte) (sim.Time, error) {
	d.mu.Lock()
	if pid == InvalidPageID {
		d.mu.Unlock()
		return 0, fmt.Errorf("storage: write to invalid page 0")
	}
	if len(data) != d.cfg.PageSize {
		d.mu.Unlock()
		return 0, fmt.Errorf("storage: write of %d bytes to page %d, want page size %d", len(data), pid, d.cfg.PageSize)
	}
	if d.frozen {
		d.mu.Unlock()
		return 0, fmt.Errorf("storage: write to frozen disk (page %d)", pid)
	}
	d.stats.Writes++
	d.stats.PagesWritten++
	d.fire(OpWrite, 1)
	d.pages[pid] = cloneBytes(data)
	if scale := d.cfg.RealIOScale; scale > 0 {
		// Matching the virtual semantics, the write IO is asynchronous:
		// the content is stable now, and a goroutine occupies a device
		// channel slot for the scaled latency (backpressuring prefetch)
		// without sleeping the caller — who may hold the buffer-pool
		// lock on an eviction flush.
		cost := d.cfg.WriteSeekTime + d.cfg.TransferPerPage
		d.mu.Unlock()
		go func() {
			d.realSlots <- struct{}{}
			d.realSleep(cost, scale)
			<-d.realSlots
		}()
		return d.clock.Now(), nil
	}
	done := d.serviceIO(d.cfg.WriteSeekTime + d.cfg.TransferPerPage)
	d.mu.Unlock()
	return done, nil
}

// Freeze marks the disk immutable; subsequent writes fail. Called after
// Fork so the CoW parent cannot be corrupted.
func (d *Disk) Freeze() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.frozen = true
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
