// Package replica implements log shipping to a warm standby: the
// production form of the paper's §1.1 observation that the TC's
// logical log, carrying table and key but no PIDs, is a replication
// contract — any data component that consumes the same record stream
// converges to the same rows, even on physically different pages.
//
// A Shipper tails the primary WAL's stable prefix in segment-sized
// batches (wal.ShipReader, reading through the log device when one is
// attached); a Standby pumps those segments into a standby engine's
// log (wal.AppendStable validates every frame on ingest) and drives a
// core.Replayer — the recovery redo pipeline running continuously —
// over the newly stable records, checkpointing the standby on a record
// cadence so its own restart is bounded. Lag (bytes and records behind
// the primary's stable log) is observable at any time, and Promote
// performs the crash-promoted failover: drain shipment, roll back
// in-flight losers with recovery's undo sweep, and open the standby
// for sessions.
//
// The shipping channel is allowed to be hostile: segments may arrive
// duplicated, delayed, reordered or torn (Config.Mangle injects
// exactly these faults in tests), and the watermark protocol heals all
// of them — the applier's ingest position is authoritative, and the
// shipper resumes from it whenever they disagree.
package replica

import (
	"fmt"
	"sync"
	"time"

	"logrec/internal/core"
	"logrec/internal/engine"
	"logrec/internal/wal"
)

// Config tunes a Standby.
type Config struct {
	// SegmentBytes is the shipping batch size (default 64 KiB).
	SegmentBytes int
	// PollEvery is how long the pump sleeps when it has caught up with
	// the primary's stable log (default 200µs).
	PollEvery time.Duration
	// MaxLagBytes is the replay-lag bound (default 1 MiB): WaitLagBelow
	// and the harness backpressure loop hold traffic to it, and Lag
	// reports it for gating.
	MaxLagBytes int64
	// CheckpointEveryRecords takes a standby checkpoint every time this
	// many records have been applied since the last one (default 4096;
	// < 0 disables standby checkpoints).
	CheckpointEveryRecords int64
	// Mode selects the replay strategy: core.ReplaySameGeometry
	// (default) for a mirror-image standby, core.ReplayLogical for a
	// standby with its own page size or shard layout.
	Mode core.ReplayMode
	// Mangle, when set, transforms each shipped segment into the slice
	// of segments actually delivered — the fault-injection hook.
	// Returning the segment unchanged ships cleanly; tests return
	// duplicates, delayed reorderings, torn prefixes or appended
	// garbage to exercise the healing protocol.
	Mangle func(seg wal.Segment) []wal.Segment
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 64 << 10
	}
	if c.PollEvery <= 0 {
		c.PollEvery = 200 * time.Microsecond
	}
	if c.MaxLagBytes <= 0 {
		c.MaxLagBytes = 1 << 20
	}
	if c.CheckpointEveryRecords == 0 {
		c.CheckpointEveryRecords = 4096
	}
	return c
}

// Lag is how far the standby trails the primary's stable log.
type Lag struct {
	// Bytes is primary stable bytes not yet applied on the standby.
	Bytes int64
	// Records is primary stable records not yet applied.
	Records int64
}

// Stats is a point-in-time view of a Standby's progress.
type Stats struct {
	// ShippedBytes counts segment payload bytes offered to the standby
	// log (before dedup; a hostile channel re-sends).
	ShippedBytes int64
	// Segments counts shipped segments (after Mangle).
	Segments int64
	// HealEvents counts watermark resyncs — gaps, torn tails or
	// rejected frames the protocol recovered from.
	HealEvents int64
	// Replay is the replayer's counters (records, ops, applied).
	Replay core.ReplayStats
	// Lag is the lag at snapshot time.
	Lag Lag
}

// Standby couples a primary engine's log to a standby engine: a pump
// goroutine ships, ingests and replays continuously until Stop or
// Promote. The primary engine keeps running normally — shipping only
// reads its stable log. Create with New, start with Start.
type Standby struct {
	cfg     Config
	primary *wal.Log
	eng     *engine.Engine
	rp      *core.Replayer
	reader  *wal.ShipReader

	shippedBytes int64
	segments     int64
	healEvents   int64
	sinceCkpt    int64

	mu       sync.Mutex // guards the counters above and err
	err      error
	stop     chan struct{}
	stopOnce sync.Once
	stopped  chan struct{}
	started  bool
}

// New wires a standby engine to a primary's log. The standby engine
// must have been built with engine.Config.Standby and bulk-loaded with
// the same initial rows as the primary (the shipped stream replays
// everything after the load).
func New(primary *wal.Log, standby *engine.Engine, cfg Config) (*Standby, error) {
	cfg = cfg.withDefaults()
	if !standby.Cfg.Standby {
		return nil, fmt.Errorf("replica: standby engine must be built with engine.Config.Standby")
	}
	rp, err := core.NewReplayer(standby, cfg.Mode)
	if err != nil {
		return nil, err
	}
	return &Standby{
		cfg:     cfg,
		primary: primary,
		eng:     standby,
		rp:      rp,
		reader:  primary.NewShipReader(standby.Log.FlushedLSN()),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}, nil
}

// Start launches the pump goroutine. Call Stop or Promote exactly once
// afterwards.
func (s *Standby) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go s.pumpLoop()
}

func (s *Standby) pumpLoop() {
	defer close(s.stopped)
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		progressed, err := s.PumpOnce()
		if err != nil {
			s.fail(err)
			return
		}
		if !progressed {
			select {
			case <-s.stop:
				return
			case <-time.After(s.cfg.PollEvery):
			}
		}
	}
}

// PumpOnce runs one shipping round: read the next stable segment from
// the primary, deliver it (through Mangle, if set) into the standby
// log, replay what became stable, and checkpoint on cadence. Returns
// whether any progress was made. Exposed so tests and the drain path
// can pump synchronously; never call it while the Start pump runs.
func (s *Standby) PumpOnce() (bool, error) {
	seg, ok, err := s.reader.Next(s.cfg.SegmentBytes)
	if err != nil {
		return false, fmt.Errorf("replica: shipping read: %w", err)
	}
	if !ok {
		return false, nil
	}
	delivered := []wal.Segment{seg}
	if s.cfg.Mangle != nil {
		delivered = s.cfg.Mangle(seg)
	}
	for _, d := range delivered {
		mark, err := s.eng.Log.AppendStable(d.From, d.Data)
		s.mu.Lock()
		s.segments++
		s.shippedBytes += int64(len(d.Data))
		s.mu.Unlock()
		if err != nil {
			// Gaps, torn garbage and corrupt frames all heal the same
			// way: trust the applier's watermark and re-ship from it.
			s.mu.Lock()
			s.healEvents++
			s.mu.Unlock()
			s.reader.Resume(mark)
			continue
		}
		if mark < d.End() {
			// Short ingest (torn transfer): resume where it stopped.
			s.mu.Lock()
			s.healEvents++
			s.mu.Unlock()
			s.reader.Resume(mark)
		}
	}
	if err := s.rp.CatchUp(); err != nil {
		return true, err
	}
	if s.cfg.CheckpointEveryRecords > 0 {
		applied := s.rp.Stats().Records
		s.mu.Lock()
		due := applied-s.sinceCkpt >= s.cfg.CheckpointEveryRecords
		if due {
			s.sinceCkpt = applied
		}
		s.mu.Unlock()
		if due {
			if err := s.rp.Checkpoint(); err != nil {
				return true, err
			}
		}
	}
	return true, nil
}

func (s *Standby) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Err returns the pump's sticky error, if it died.
func (s *Standby) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Lag reports how far the standby trails the primary's stable log.
// Safe from any goroutine.
func (s *Standby) Lag() Lag {
	applied := s.rp.Stats().AppliedLSN
	stable := s.primary.FlushedLSN()
	var l Lag
	if stable > applied {
		l.Bytes = int64(stable - applied)
	}
	if d := s.primary.StableRecords() - s.rp.Stats().Records; d > 0 {
		l.Records = d
	}
	return l
}

// Stats snapshots the standby's counters.
func (s *Standby) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		ShippedBytes: s.shippedBytes,
		Segments:     s.segments,
		HealEvents:   s.healEvents,
	}
	s.mu.Unlock()
	st.Replay = s.rp.Stats()
	st.Lag = s.Lag()
	return st
}

// WaitCaughtUp blocks until the standby has applied everything stable
// on the primary, or the timeout expires.
func (s *Standby) WaitCaughtUp(timeout time.Duration) error {
	return s.waitLag(0, timeout)
}

// WaitLagBelow blocks until the lag is at most bytes, or the timeout
// expires. The harness backpressure loop calls it so sustained traffic
// cannot outrun the configured bound.
func (s *Standby) WaitLagBelow(bytes int64, timeout time.Duration) error {
	return s.waitLag(bytes, timeout)
}

func (s *Standby) waitLag(bytes int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if err := s.Err(); err != nil {
			return err
		}
		if s.Lag().Bytes <= bytes {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica: lag %d bytes still above %d after %v", s.Lag().Bytes, bytes, timeout)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// Stop halts the pump without promoting. Idempotent.
func (s *Standby) Stop() {
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	if started {
		<-s.stopped
	}
}

// Promote fails over to the standby: stop the pump, drain every stable
// byte the (possibly dead) primary's log still holds — wal.ReadStable
// serves the stable prefix even after a crash froze the log — replay
// it, and run core.Replayer.Promote, which rolls back in-flight losers
// and opens the engine for sessions. Returns the promoted engine and
// the promotion metrics (LosersUndone, CLRsWritten).
func (s *Standby) Promote() (*engine.Engine, *core.Metrics, error) {
	s.Stop()
	if err := s.Err(); err != nil {
		return nil, nil, fmt.Errorf("replica: promoting a dead standby: %w", err)
	}
	// Final drain: the pump is stopped, so PumpOnce is safe to call
	// synchronously. Mangle stays active — a hostile channel is hostile
	// to the last byte — and the healing protocol still converges
	// because the primary's stable prefix no longer moves.
	for {
		progressed, err := s.PumpOnce()
		if err != nil {
			return nil, nil, err
		}
		if !progressed {
			break
		}
	}
	if lag := s.Lag(); lag.Bytes != 0 {
		return nil, nil, fmt.Errorf("replica: %d bytes undrained at promote", lag.Bytes)
	}
	s.eng.Log.DropPartialTail()
	met, err := s.rp.Promote()
	if err != nil {
		return nil, nil, err
	}
	return s.eng, met, nil
}
