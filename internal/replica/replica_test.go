package replica

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"logrec/internal/core"
	"logrec/internal/engine"
	"logrec/internal/wal"
	"logrec/internal/workload"
)

// NOTE: this package is imported by internal/harness, so these tests
// build their own traffic and digest helpers instead of importing it.

const testRows = 1500

func initVal(k uint64) []byte { return []byte(fmt.Sprintf("init-%06d", k)) }

// newPrimary builds and loads a simulated primary.
func newPrimary(t *testing.T, shards int) *engine.Engine {
	t.Helper()
	cfg := engine.DefaultConfig()
	cfg.Shards = shards
	cfg.KeySpan = 2 * testRows
	cfg.CachePages = 256 * shards
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(testRows, initVal); err != nil {
		t.Fatal(err)
	}
	return eng
}

// newStandby builds and loads a simulated standby mirroring cfg's
// geometry unless mutate changes it.
func newStandby(t *testing.T, primary *engine.Engine, mutate func(*engine.Config)) *engine.Engine {
	t.Helper()
	cfg := primary.Cfg
	cfg.Standby = true
	if mutate != nil {
		mutate(&cfg)
	}
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(testRows, initVal); err != nil {
		t.Fatal(err)
	}
	return eng
}

// attach wires a Standby over the pair.
func attach(t *testing.T, primary, standby *engine.Engine, cfg Config) *Standby {
	t.Helper()
	s, err := New(primary.Log, standby, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// commitTxns runs n committed transactions of 4 updates each over the
// loaded keys, deterministically keyed off base.
func commitTxns(t *testing.T, eng *engine.Engine, n int, base uint64) {
	t.Helper()
	table := eng.Cfg.TableID
	for i := uint64(0); i < uint64(n); i++ {
		txn := eng.TC.Begin()
		for j := uint64(0); j < 4; j++ {
			key := (base*7 + i*13 + j*31) % testRows
			val := []byte(fmt.Sprintf("upd-%d-%d-%d", base, i, j))
			if err := eng.TC.Update(txn, table, key, val); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.TC.Commit(txn); err != nil {
			t.Fatal(err)
		}
	}
}

// digest hashes every row of the engine's table: FNV-1a over
// big-endian key then value, in key order.
func digest(t *testing.T, eng *engine.Engine) uint64 {
	t.Helper()
	h := fnv.New64a()
	err := eng.Set.ScanAll(func(key uint64, val []byte) error {
		var kb [8]byte
		binary.BigEndian.PutUint64(kb[:], key)
		h.Write(kb[:])
		h.Write(val)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return h.Sum64()
}

// promote fails over and asserts the promoted engine matches want.
func promote(t *testing.T, s *Standby, want uint64) (*engine.Engine, *core.Metrics) {
	t.Helper()
	promoted, met, err := s.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if got := digest(t, promoted); got != want {
		t.Fatalf("promoted digest %016x, want %016x", got, want)
	}
	return promoted, met
}

// checkPromotedServes proves the promoted engine is a working primary:
// a fresh transaction commits and reads back.
func checkPromotedServes(t *testing.T, promoted *engine.Engine) {
	t.Helper()
	txn := promoted.TC.Begin()
	if err := promoted.TC.Update(txn, promoted.Cfg.TableID, 1, []byte("post-promote")); err != nil {
		t.Fatal(err)
	}
	if err := promoted.TC.Commit(txn); err != nil {
		t.Fatal(err)
	}
	got, found, err := promoted.Set.Read(promoted.Cfg.TableID, 1)
	if err != nil || !found {
		t.Fatalf("reading post-promote row: found=%v err=%v", found, err)
	}
	if !bytes.Equal(got, []byte("post-promote")) {
		t.Fatalf("post-promote row = %q", got)
	}
}

func TestStandbyConvergesAndPromotes(t *testing.T) {
	primary := newPrimary(t, 2)
	standby := newStandby(t, primary, nil)
	s := attach(t, primary, standby, Config{SegmentBytes: 4 << 10, CheckpointEveryRecords: 200})
	s.Start()

	// Live traffic while the pump runs concurrently.
	commitTxns(t, primary, 150, 1)
	if err := s.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if lag := s.Lag(); lag.Bytes != 0 || lag.Records != 0 {
		t.Fatalf("lag after catch-up: %+v", lag)
	}
	st := s.Stats()
	if st.Replay.Records == 0 || st.Replay.Applied == 0 {
		t.Fatalf("replayer did nothing: %+v", st.Replay)
	}
	if st.Segments == 0 || st.ShippedBytes == 0 {
		t.Fatalf("nothing shipped: %+v", st)
	}

	want := digest(t, primary)
	promoted, met := promote(t, s, want)
	if met.LosersUndone != 0 {
		t.Fatalf("clean promote undid %d losers", met.LosersUndone)
	}
	checkPromotedServes(t, promoted)
}

// tornFrame builds the byte shape wal.TearTail injects: a frame header
// claiming a 16 MiB body, cut short and filled with 0xA5.
func tornFrame(n int) []byte {
	frame := make([]byte, 5+n)
	binary.BigEndian.PutUint32(frame, 1<<24)
	frame[4] = byte(wal.TypeUpdate)
	for i := 5; i < len(frame); i++ {
		frame[i] = 0xA5
	}
	return frame[:n]
}

func TestStandbyFaultInjection(t *testing.T) {
	// Each case mangles the first several segments of the stream and
	// then ships cleanly; the healing protocol must converge to the
	// primary's exact state regardless.
	cases := []struct {
		name      string
		segBytes  int
		mangle    func(faults *int) func(wal.Segment) []wal.Segment
		wantHeals bool
	}{
		{
			// Every early segment delivered twice: ingest must be
			// idempotent. Duplicates are absorbed without a heal.
			name: "duplicated",
			mangle: func(faults *int) func(wal.Segment) []wal.Segment {
				return func(seg wal.Segment) []wal.Segment {
					if *faults >= 6 {
						return []wal.Segment{seg}
					}
					*faults++
					return []wal.Segment{seg, seg}
				}
			},
		},
		{
			// Early segments held back one delivery and re-sent after
			// their successor: the successor hits a gap, the shipper
			// resumes from the watermark.
			name: "delayed-reordered",
			mangle: func(faults *int) func(wal.Segment) []wal.Segment {
				var held []wal.Segment
				return func(seg wal.Segment) []wal.Segment {
					if *faults >= 6 {
						if len(held) > 0 {
							out := append(held, seg)
							held = nil
							return out
						}
						return []wal.Segment{seg}
					}
					*faults++
					if len(held) == 0 {
						held = []wal.Segment{seg}
						return nil
					}
					out := []wal.Segment{seg, held[0]}
					held = nil
					return out
				}
			},
			wantHeals: true,
		},
		{
			// Early segments torn mid-transfer: only the first half
			// arrives. The applier buffers the cut frame and the shipper
			// resumes from the ingest watermark.
			name: "torn",
			mangle: func(faults *int) func(wal.Segment) []wal.Segment {
				return func(seg wal.Segment) []wal.Segment {
					if *faults >= 6 || len(seg.Data) < 2 {
						return []wal.Segment{seg}
					}
					*faults++
					return []wal.Segment{{From: seg.From, Data: seg.Data[:len(seg.Data)/2]}}
				}
			},
			wantHeals: true,
		},
		{
			// Early segments arrive with torn-tail garbage appended — the
			// same byte shape a crashed primary's torn frame has. The
			// applier rejects the garbage, keeps the valid prefix, and
			// the shipper re-ships from the watermark. The segment size
			// is large so segments end at the stable boundary (a frame
			// boundary): trailing garbage lands between frames, where the
			// frame walk can see it — garbage spliced into the middle of
			// a frame body is indistinguishable from data by design (the
			// codec has no per-frame checksum), just as a torn file tail
			// is only detectable at a frame boundary.
			name:     "garbage-appended",
			segBytes: 1 << 20,
			mangle: func(faults *int) func(wal.Segment) []wal.Segment {
				return func(seg wal.Segment) []wal.Segment {
					if *faults >= 4 {
						return []wal.Segment{seg}
					}
					*faults++
					data := append(append([]byte(nil), seg.Data...), tornFrame(40)...)
					return []wal.Segment{{From: seg.From, Data: data}}
				}
			},
			wantHeals: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			primary := newPrimary(t, 2)
			standby := newStandby(t, primary, nil)
			segBytes := tc.segBytes
			if segBytes == 0 {
				segBytes = 512 // many small segments → many fault sites
			}
			var faults int
			s := attach(t, primary, standby, Config{
				SegmentBytes: segBytes,
				Mangle:       tc.mangle(&faults),
			})
			s.Start()
			commitTxns(t, primary, 120, 2)
			if err := s.WaitCaughtUp(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			if faults == 0 {
				t.Fatal("fault injector never fired")
			}
			st := s.Stats()
			if tc.wantHeals && st.HealEvents == 0 {
				t.Fatalf("no heal events despite %d injected faults", faults)
			}
			want := digest(t, primary)
			promoted, _ := promote(t, s, want)
			checkPromotedServes(t, promoted)
			if got, want := promoted.Log.StableRecords(), primary.Log.StableRecords(); got < want {
				t.Fatalf("promoted log has %d stable records, primary %d", got, want)
			}
		})
	}
}

func TestPromoteUndoesInFlightLosers(t *testing.T) {
	primary := newPrimary(t, 2)
	standby := newStandby(t, primary, nil)
	s := attach(t, primary, standby, Config{SegmentBytes: 4 << 10})
	s.Start()

	commitTxns(t, primary, 60, 3)
	// The committed-only state is what a failover must converge to.
	want := digest(t, primary)

	// An in-flight transaction whose updates reach the stable log (the
	// EOSL force ships them) but never commits: the promoted standby
	// must roll it back.
	loser := primary.TC.Begin()
	for _, key := range []uint64{5, 105, 1105} {
		if err := primary.TC.Update(loser, primary.Cfg.TableID, key, []byte("loser")); err != nil {
			t.Fatal(err)
		}
	}
	primary.TC.SendEOSL()

	if err := s.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	promoted, met := promote(t, s, want)
	if met.LosersUndone != 1 {
		t.Fatalf("LosersUndone = %d, want 1", met.LosersUndone)
	}
	if met.CLRsWritten == 0 {
		t.Fatal("promotion rolled back a loser without CLRs")
	}
	for _, key := range []uint64{5, 105, 1105} {
		got, found, err := promoted.Set.Read(promoted.Cfg.TableID, key)
		if err != nil || !found {
			t.Fatalf("key %d after promote: found=%v err=%v", key, found, err)
		}
		if bytes.Equal(got, []byte("loser")) {
			t.Fatalf("key %d still carries the loser's update", key)
		}
	}
	checkPromotedServes(t, promoted)
}

func TestReplayLogicalDifferentGeometry(t *testing.T) {
	// The paper's §1.1 contract: the logical log names tables and keys,
	// not pages, so a standby with quarter-size pages and a different
	// shard count consumes the identical stream.
	primary := newPrimary(t, 2)
	standby := newStandby(t, primary, func(cfg *engine.Config) {
		cfg.Shards = 1
		cfg.Disk.PageSize = 1024
		cfg.CachePages = 2048
	})
	s := attach(t, primary, standby, Config{SegmentBytes: 4 << 10, Mode: core.ReplayLogical})
	s.Start()

	commitTxns(t, primary, 80, 4)
	// Inserts and deletes too: logical replay must handle all three ops.
	txn := primary.TC.Begin()
	for k := uint64(testRows); k < testRows+20; k++ {
		if err := primary.TC.Insert(txn, primary.Cfg.TableID, k, []byte(fmt.Sprintf("ins-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 10; k++ {
		if err := primary.TC.Delete(txn, primary.Cfg.TableID, k*3); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.TC.Commit(txn); err != nil {
		t.Fatal(err)
	}

	if err := s.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := digest(t, primary)
	promoted, _ := promote(t, s, want)
	checkPromotedServes(t, promoted)
	if promoted.Cfg.Disk.PageSize == primary.Cfg.Disk.PageSize {
		t.Fatal("test lost its point: geometries match")
	}
}

func TestReplayLagStaysBounded(t *testing.T) {
	// Satellite: sustained zipfian traffic with backpressure at half the
	// bound keeps every observed lag sample under the bound, and a
	// post-EOSL promote yields the primary's exact state.
	const lagBound = 64 << 10
	primary := newPrimary(t, 2)
	standby := newStandby(t, primary, nil)
	s := attach(t, primary, standby, Config{
		SegmentBytes: 4 << 10,
		MaxLagBytes:  lagBound,
	})
	s.Start()

	wcfg := workload.DefaultConfig()
	wcfg.Rows = testRows
	wcfg.Dist = workload.Zipf
	wcfg.ReadFraction = 0
	gen, err := workload.NewGenerator(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	var maxLag int64
	for i := 0; i < 300; i++ {
		if s.Lag().Bytes > lagBound/2 {
			if err := s.WaitLagBelow(lagBound/2, 10*time.Second); err != nil {
				t.Fatal(err)
			}
		}
		txn := primary.TC.Begin()
		for j := 0; j < 8; j++ {
			key := gen.NextKey()
			if err := primary.TC.Update(txn, primary.Cfg.TableID, key, gen.UpdateValue(key)); err != nil {
				t.Fatal(err)
			}
		}
		if err := primary.TC.Commit(txn); err != nil {
			t.Fatal(err)
		}
		if lag := s.Lag().Bytes; lag > maxLag {
			maxLag = lag
		}
	}
	if maxLag > lagBound {
		t.Fatalf("observed lag %d bytes exceeded the %d bound", maxLag, lagBound)
	}
	if maxLag == 0 {
		t.Fatal("lag never rose: the traffic did not stress the pump")
	}

	primary.TC.SendEOSL()
	if err := s.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := digest(t, primary)
	promoted, _ := promote(t, s, want)
	checkPromotedServes(t, promoted)
}
