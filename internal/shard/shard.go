// Package shard implements the TC's data-component plane for a
// range-sharded engine: a routing table mapping key ranges to data
// components, and a Set that stands N independent DCs (each with its
// own device, buffer pool and B-tree) behind the TC's single logical
// interface. This is the paper's unbundling claim made concrete — the
// same TC, the same logical log and the same recovery protocol drive
// any number of DCs; a single-DC engine is simply the N=1 case.
//
// Routing is by contiguous key range (LogBase-style range partitioning):
// the table is a sorted list of wal.RouteEntry boundaries, each naming
// the shard owning keys from its Start up to the next entry's Start.
// Ranges can be split at a key and reassigned to another shard; the
// table is checkpointed in EndCkptRec and reassignments are logged as
// ShardMapRec, so recovery always rebuilds the routing the crash had.
package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"logrec/internal/dc"
	"logrec/internal/storage"
	"logrec/internal/wal"
)

// DefaultRoutes partitions the key domain [0, keySpan) evenly across n
// shards (the last shard also owns keys at or above keySpan). keySpan 0
// means the full uint64 domain. n < 1 is treated as 1.
func DefaultRoutes(n int, keySpan uint64) []wal.RouteEntry {
	if n < 1 {
		n = 1
	}
	var step uint64
	if keySpan == 0 {
		step = (^uint64(0))/uint64(n) + 1 // full domain; wraps to 0 for n=1
	} else {
		step = keySpan / uint64(n)
		if step == 0 {
			step = 1
		}
	}
	routes := make([]wal.RouteEntry, 0, n)
	for i := 0; i < n; i++ {
		routes = append(routes, wal.RouteEntry{Start: uint64(i) * step, Shard: wal.ShardID(i)})
	}
	// Guard against degenerate spans (keySpan < n): dedupe equal starts,
	// keeping the first owner.
	out := routes[:1]
	for _, r := range routes[1:] {
		if r.Start > out[len(out)-1].Start {
			out = append(out, r)
		}
	}
	return out
}

// Router is the key→shard routing table: a sorted list of range starts.
// It is safe for concurrent use (readers on the session fast path,
// writers only during range splits). Alongside each range it keeps an
// operation counter — the load signal the auto-split balancer consumes
// through TakeRangeLoads.
type Router struct {
	mu     sync.RWMutex
	routes []wal.RouteEntry
	// hits counts LocateHit calls per range, parallel to routes. The
	// counters are pointers so they survive the slice surgery Split
	// performs and can be bumped under the read lock.
	hits []*atomic.Int64
}

// NewRouter builds a router over the given routing table. Entries are
// sorted by Start; the first entry must cover key 0.
func NewRouter(routes []wal.RouteEntry) (*Router, error) {
	if len(routes) == 0 {
		return nil, fmt.Errorf("shard: empty routing table")
	}
	rs := append([]wal.RouteEntry(nil), routes...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Start < rs[j].Start })
	if rs[0].Start != 0 {
		return nil, fmt.Errorf("shard: routing table does not cover key 0 (first start %d)", rs[0].Start)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Start == rs[i-1].Start {
			return nil, fmt.Errorf("shard: duplicate range start %d", rs[i].Start)
		}
	}
	hits := make([]*atomic.Int64, len(rs))
	for i := range hits {
		hits[i] = &atomic.Int64{}
	}
	return &Router{routes: rs, hits: hits}, nil
}

// Locate returns the shard owning key.
func (r *Router) Locate(key uint64) wal.ShardID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.routes[r.find(key)].Shard
}

// LocateHit is Locate plus a hit against the key's range counter: the
// session write path uses it so the balancer sees per-range load.
func (r *Router) LocateHit(key uint64) wal.ShardID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	i := r.find(key)
	r.hits[i].Add(1)
	return r.routes[i].Shard
}

// RangeLoad is one routing range's traffic since the previous
// TakeRangeLoads call.
type RangeLoad struct {
	// Start and End bound the range (End inclusive; MaxUint64 for the
	// last range).
	Start, End uint64
	// Shard is the range's owner.
	Shard wal.ShardID
	// Ops is the number of LocateHit calls that landed in the range.
	Ops int64
}

// TakeRangeLoads snapshots and resets the per-range hit counters,
// returning one entry per routing range in key order. The reset makes
// each call an independent load window.
func (r *Router) TakeRangeLoads() []RangeLoad {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]RangeLoad, len(r.routes))
	for i, rt := range r.routes {
		end := ^uint64(0)
		if i+1 < len(r.routes) {
			end = r.routes[i+1].Start - 1
		}
		out[i] = RangeLoad{Start: rt.Start, End: end, Shard: rt.Shard, Ops: r.hits[i].Swap(0)}
	}
	return out
}

// find returns the index of the range containing key. Callers hold mu.
func (r *Router) find(key uint64) int {
	// First entry with Start > key, minus one.
	i := sort.Search(len(r.routes), func(i int) bool { return r.routes[i].Start > key })
	return i - 1
}

// RangeOf returns the bounds of the range containing key: its start,
// its inclusive end (MaxUint64 for the last range) and its owner.
func (r *Router) RangeOf(key uint64) (start, end uint64, owner wal.ShardID) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	i := r.find(key)
	start, owner = r.routes[i].Start, r.routes[i].Shard
	end = ^uint64(0)
	if i+1 < len(r.routes) {
		end = r.routes[i+1].Start - 1
	}
	return start, end, owner
}

// Routes returns a copy of the routing table in key order.
func (r *Router) Routes() []wal.RouteEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]wal.RouteEntry(nil), r.routes...)
}

// Split introduces a boundary at key `at`: the range containing it is
// cut in two, both halves keeping their owner. Splitting on an existing
// boundary is a no-op. Routing is unchanged until Reassign moves the
// new upper range elsewhere.
func (r *Router) Split(at uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.find(at)
	if r.routes[i].Start == at {
		return
	}
	entry := wal.RouteEntry{Start: at, Shard: r.routes[i].Shard}
	r.routes = append(r.routes, wal.RouteEntry{})
	copy(r.routes[i+2:], r.routes[i+1:])
	r.routes[i+1] = entry
	// The lower half keeps the accumulated counter; the new upper half
	// starts cold.
	r.hits = append(r.hits, nil)
	copy(r.hits[i+2:], r.hits[i+1:])
	r.hits[i+1] = &atomic.Int64{}
}

// Reassign hands the range starting exactly at `at` to a new owner.
func (r *Router) Reassign(at uint64, to wal.ShardID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.find(at)
	if r.routes[i].Start != at {
		return fmt.Errorf("shard: no range starts at %d (use Split first)", at)
	}
	r.routes[i].Shard = to
	return nil
}

// Set is the routing plane the TC drives: a router plus the DCs it
// routes to, indexed by shard ID. It implements the TC's data-component
// contract — key-routed data operations, shard-targeted operations for
// undo and range migration, and broadcast EOSL/RSSP control operations.
type Set struct {
	router *Router
	dcs    []*dc.DC
}

// NewSet builds the plane over the routing table and the DCs it names.
// Every route owner must be a valid index into dcs.
func NewSet(routes []wal.RouteEntry, dcs []*dc.DC) (*Set, error) {
	if len(dcs) == 0 {
		return nil, fmt.Errorf("shard: set needs at least one DC")
	}
	router, err := NewRouter(routes)
	if err != nil {
		return nil, err
	}
	for _, rt := range router.Routes() {
		if int(rt.Shard) >= len(dcs) {
			return nil, fmt.Errorf("shard: route at %d names shard %d, have %d DCs", rt.Start, rt.Shard, len(dcs))
		}
	}
	return &Set{router: router, dcs: dcs}, nil
}

// Single wraps one DC as a one-shard set — the N=1 engine.
func Single(d *dc.DC) *Set {
	s, err := NewSet(DefaultRoutes(1, 0), []*dc.DC{d})
	if err != nil {
		panic(err) // one DC and the trivial route cannot fail validation
	}
	return s
}

// Router returns the routing table.
func (s *Set) Router() *Router { return s.router }

// NumShards returns the number of DCs behind the set.
func (s *Set) NumShards() int { return len(s.dcs) }

// At returns the DC owning shard id.
func (s *Set) At(id wal.ShardID) *dc.DC { return s.dcs[id] }

// DCs returns the underlying data components, indexed by shard ID.
func (s *Set) DCs() []*dc.DC { return s.dcs }

// Locate returns the shard owning key.
func (s *Set) Locate(key uint64) wal.ShardID { return s.router.Locate(key) }

// LocateHit returns the shard owning key, counting the hit against the
// key's range (the balancer's load signal).
func (s *Set) LocateHit(key uint64) wal.ShardID { return s.router.LocateHit(key) }

// TakeRangeLoads drains the per-range load window; see Router.
func (s *Set) TakeRangeLoads() []RangeLoad { return s.router.TakeRangeLoads() }

// Routes returns a copy of the routing table (checkpointing).
func (s *Set) Routes() []wal.RouteEntry { return s.router.Routes() }

// RangeOf returns the bounds and owner of the range containing key.
func (s *Set) RangeOf(key uint64) (start, end uint64, owner wal.ShardID) {
	return s.router.RangeOf(key)
}

// Split introduces a routing boundary at `at` (same owner both sides).
func (s *Set) Split(at uint64) { s.router.Split(at) }

// Reassign moves the range starting at `at` to shard `to`. The caller
// (the TC's range migration) is responsible for having moved the rows.
func (s *Set) Reassign(at uint64, to wal.ShardID) error {
	if int(to) >= len(s.dcs) {
		return fmt.Errorf("shard: reassign to unknown shard %d (have %d)", to, len(s.dcs))
	}
	return s.router.Reassign(at, to)
}

// Read returns the value stored under (table, key).
func (s *Set) Read(table wal.TableID, key uint64) ([]byte, bool, error) {
	return s.dcs[s.router.Locate(key)].Read(table, key)
}

// ReadRange invokes fn for every row with lo ≤ key ≤ hi in key order,
// crossing shard boundaries as the scan range does.
func (s *Set) ReadRange(table wal.TableID, lo, hi uint64, fn func(key uint64, val []byte) error) error {
	return s.ReadRangeFiltered(table, lo, hi, nil, fn)
}

// ReadRangeFiltered is ReadRange with a predicate pushed down into each
// shard's B-tree iterator: rows failing pred are dropped before they
// cross the shard boundary. A nil pred accepts every row.
func (s *Set) ReadRangeFiltered(table wal.TableID, lo, hi uint64, pred func(key uint64, val []byte) bool, fn func(key uint64, val []byte) error) error {
	for _, pr := range s.rangesIn(lo, hi) {
		if err := s.dcs[pr.owner].ReadRangeFiltered(table, pr.lo, pr.hi, pred, fn); err != nil {
			return err
		}
	}
	return nil
}

// OwnersIn returns the distinct shards owning any key in [lo, hi], in
// ascending shard-ID order — the plane set a cross-shard scan must hold
// to be atomic against range migrations.
func (s *Set) OwnersIn(lo, hi uint64) []wal.ShardID {
	var out []wal.ShardID
	for _, pr := range s.rangesIn(lo, hi) {
		out = append(out, pr.owner)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n := 0
	for i, id := range out {
		if i == 0 || id != out[n-1] {
			out[n] = id
			n++
		}
	}
	return out[:n]
}

// partRange is one per-shard piece of a cross-shard scan.
type partRange struct {
	lo, hi uint64
	owner  wal.ShardID
}

// rangesIn clips [lo, hi] against one consistent snapshot of the
// routing table, in key order (each range's end comes from the next
// snapshot entry, never from a re-query that could see a concurrent
// split).
func (s *Set) rangesIn(lo, hi uint64) []partRange {
	routes := s.router.Routes()
	var out []partRange
	for i, rt := range routes {
		end := ^uint64(0)
		if i+1 < len(routes) {
			end = routes[i+1].Start - 1
		}
		if end < lo || rt.Start > hi {
			continue
		}
		out = append(out, partRange{lo: max(rt.Start, lo), hi: min(end, hi), owner: rt.Shard})
	}
	return out
}

// ScanAll invokes fn for every row in global key order.
func (s *Set) ScanAll(fn func(key uint64, val []byte) error) error {
	tid := s.dcs[0].Tree().Meta().TableID
	return s.ReadRange(tid, 0, ^uint64(0), fn)
}

// Update routes a logical update by key; logFn receives the shard it
// landed on plus the owning page, and must append the log record.
func (s *Set) Update(table wal.TableID, key uint64, val []byte, logFn func(sh wal.ShardID, pid storage.PageID) wal.LSN) error {
	return s.UpdateAt(s.router.Locate(key), table, key, val, logFn)
}

// Insert routes a logical insert by key; see Update.
func (s *Set) Insert(table wal.TableID, key uint64, val []byte, logFn func(sh wal.ShardID, pid storage.PageID) wal.LSN) error {
	return s.InsertAt(s.router.Locate(key), table, key, val, logFn)
}

// Delete routes a logical delete by key; see Update.
func (s *Set) Delete(table wal.TableID, key uint64, logFn func(sh wal.ShardID, pid storage.PageID) wal.LSN) error {
	return s.DeleteAt(s.router.Locate(key), table, key, logFn)
}

// UpdateAt applies an update on an explicit shard — undo and range
// migration, where the record's shard, not the routing table, is
// authoritative.
func (s *Set) UpdateAt(sh wal.ShardID, table wal.TableID, key uint64, val []byte, logFn func(sh wal.ShardID, pid storage.PageID) wal.LSN) error {
	return s.dcs[sh].Update(table, key, val, func(pid storage.PageID) wal.LSN { return logFn(sh, pid) })
}

// InsertAt applies an insert on an explicit shard; see UpdateAt.
func (s *Set) InsertAt(sh wal.ShardID, table wal.TableID, key uint64, val []byte, logFn func(sh wal.ShardID, pid storage.PageID) wal.LSN) error {
	return s.dcs[sh].Insert(table, key, val, func(pid storage.PageID) wal.LSN { return logFn(sh, pid) })
}

// DeleteAt applies a delete on an explicit shard; see UpdateAt.
func (s *Set) DeleteAt(sh wal.ShardID, table wal.TableID, key uint64, logFn func(sh wal.ShardID, pid storage.PageID) wal.LSN) error {
	return s.dcs[sh].Delete(table, key, func(pid storage.PageID) wal.LSN { return logFn(sh, pid) })
}

// EOSL broadcasts a new end-of-stable-log to every shard (§4.1): one
// log force covers all DCs, which is what sharing the TC's log buys.
func (s *Set) EOSL(eLSN wal.LSN) {
	for _, d := range s.dcs {
		d.EOSL(eLSN)
	}
}

// RSSP performs the DC side of a checkpoint on every shard (§4.2):
// each flushes the pages dirtied before the redo scan start point and
// logs its own shard-stamped RSSP record.
func (s *Set) RSSP(rsspLSN wal.LSN) error {
	for i, d := range s.dcs {
		if err := d.RSSP(rsspLSN); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// LoadRow routes one unlogged bulk-load row to its shard.
func (s *Set) LoadRow(key uint64, val []byte) error {
	return s.dcs[s.router.Locate(key)].LoadRow(key, val)
}

// FinishLoad flushes and boots every shard after a bulk load.
func (s *Set) FinishLoad() error {
	for i, d := range s.dcs {
		if err := d.FinishLoad(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// StartLogging ends bulk-load mode on every shard.
func (s *Set) StartLogging() {
	for _, d := range s.dcs {
		d.StartLogging()
	}
}

// DirtyCount sums the dirty pages across every shard's pool.
func (s *Set) DirtyCount() int {
	n := 0
	for _, d := range s.dcs {
		n += d.Pool().DirtyCount()
	}
	return n
}
