package shard

import (
	"fmt"
	"testing"

	"logrec/internal/dc"
	"logrec/internal/sim"
	"logrec/internal/storage"
	"logrec/internal/wal"
)

func TestDefaultRoutes(t *testing.T) {
	routes := DefaultRoutes(4, 1000)
	if len(routes) != 4 {
		t.Fatalf("got %d routes, want 4", len(routes))
	}
	for i, want := range []uint64{0, 250, 500, 750} {
		if routes[i].Start != want || routes[i].Shard != wal.ShardID(i) {
			t.Errorf("route %d = {%d, %d}, want {%d, %d}", i, routes[i].Start, routes[i].Shard, want, i)
		}
	}
	// Full-domain split must still cover key 0 and stay sorted.
	routes = DefaultRoutes(2, 0)
	if routes[0].Start != 0 || routes[1].Start != 1<<63 {
		t.Fatalf("full-domain routes = %v", routes)
	}
	// Degenerate span: fewer distinct starts than shards, no duplicates.
	routes = DefaultRoutes(8, 3)
	seen := map[uint64]bool{}
	for _, r := range routes {
		if seen[r.Start] {
			t.Fatalf("duplicate start %d in %v", r.Start, routes)
		}
		seen[r.Start] = true
	}
}

// TestRouterBoundaries checks Locate at every range edge: the first key
// of a range, the last key of the previous one, and the extremes of the
// domain.
func TestRouterBoundaries(t *testing.T) {
	r, err := NewRouter(DefaultRoutes(4, 1000))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		key  uint64
		want wal.ShardID
	}{
		{0, 0}, {1, 0}, {249, 0},
		{250, 1}, {251, 1}, {499, 1},
		{500, 2}, {749, 2},
		{750, 3}, {999, 3},
		// Keys past KeySpan belong to the last shard.
		{1000, 3}, {^uint64(0), 3},
	}
	for _, c := range cases {
		if got := r.Locate(c.key); got != c.want {
			t.Errorf("Locate(%d) = %d, want %d", c.key, got, c.want)
		}
	}
	start, end, owner := r.RangeOf(300)
	if start != 250 || end != 499 || owner != 1 {
		t.Errorf("RangeOf(300) = (%d, %d, %d), want (250, 499, 1)", start, end, owner)
	}
	start, end, owner = r.RangeOf(999)
	if start != 750 || end != ^uint64(0) || owner != 3 {
		t.Errorf("RangeOf(999) = (%d, %d, %d)", start, end, owner)
	}
}

// TestRouterSplitReassign splits a range and re-routes its upper half:
// keys below the split stay put, keys at and above it re-route, and
// boundary keys land exactly.
func TestRouterSplitReassign(t *testing.T) {
	r, err := NewRouter(DefaultRoutes(2, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Locate(300); got != 0 {
		t.Fatalf("pre-split Locate(300) = %d, want 0", got)
	}
	r.Split(300)
	// Split alone must not re-route anything.
	for _, k := range []uint64{0, 299, 300, 499} {
		if got := r.Locate(k); got != 0 {
			t.Fatalf("post-split Locate(%d) = %d, want 0 (split must not re-route)", k, got)
		}
	}
	if err := r.Reassign(300, 1); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		key  uint64
		want wal.ShardID
	}{{299, 0}, {300, 1}, {499, 1}, {500, 1}, {0, 0}} {
		if got := r.Locate(c.key); got != c.want {
			t.Errorf("post-reassign Locate(%d) = %d, want %d", c.key, got, c.want)
		}
	}
	// Reassign without a boundary is an error; on a boundary it works.
	if err := r.Reassign(123, 1); err == nil {
		t.Error("Reassign on a non-boundary succeeded")
	}
	// Splitting on an existing boundary is a no-op.
	before := len(r.Routes())
	r.Split(300)
	if len(r.Routes()) != before {
		t.Error("re-splitting an existing boundary grew the table")
	}
}

// newTestSet builds a 2-shard set over simulated devices with rows
// loaded through the router.
func newTestSet(t *testing.T, rows int) *Set {
	t.Helper()
	clock := &sim.Clock{}
	log := wal.NewLog()
	dcs := make([]*dc.DC, 2)
	for i := range dcs {
		disk, err := storage.New(clock, storage.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		d, err := dc.New(clock, disk, log, 128, 1, wal.ShardID(i), dc.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		dcs[i] = d
	}
	set, err := NewSet(DefaultRoutes(2, uint64(rows)), dcs)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < uint64(rows); k++ {
		if err := set.LoadRow(k, []byte(fmt.Sprintf("v-%04d", k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := set.FinishLoad(); err != nil {
		t.Fatal(err)
	}
	set.StartLogging()
	return set
}

// TestSetCrossShardScan checks that rows land on their routed shards
// and that ReadRange stitches ranges across the shard boundary in key
// order.
func TestSetCrossShardScan(t *testing.T) {
	const rows = 200
	set := newTestSet(t, rows)

	// Rows live where the router says.
	for _, k := range []uint64{0, 99, 100, 199} {
		sh := set.Locate(k)
		_, found, err := set.At(sh).Read(1, k)
		if err != nil || !found {
			t.Fatalf("key %d not on shard %d (found=%v err=%v)", k, sh, found, err)
		}
		other := set.At(1 - sh)
		if _, found, _ := other.Read(1, k); found {
			t.Fatalf("key %d also present on shard %d", k, 1-sh)
		}
	}

	// A scan spanning the boundary returns every key once, in order.
	var got []uint64
	if err := set.ReadRange(1, 90, 110, func(k uint64, v []byte) error {
		got = append(got, k)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 21 {
		t.Fatalf("cross-shard scan returned %d rows, want 21", len(got))
	}
	for i, k := range got {
		if k != uint64(90+i) {
			t.Fatalf("scan out of order at %d: got key %d", i, k)
		}
	}

	// ScanAll covers the whole table.
	count := 0
	if err := set.ScanAll(func(k uint64, v []byte) error {
		if k != uint64(count) {
			return fmt.Errorf("ScanAll out of order: got %d at position %d", k, count)
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != rows {
		t.Fatalf("ScanAll visited %d rows, want %d", count, rows)
	}
}

// TestSetShardTargetedOps drives the shard-explicit operations undo and
// migration use: an insert on a named shard is visible there (and via
// routed reads only if the router agrees).
func TestSetShardTargetedOps(t *testing.T) {
	set := newTestSet(t, 100)
	logged := 0
	logFn := func(sh wal.ShardID, pid storage.PageID) wal.LSN {
		logged++
		return wal.NilLSN
	}
	// Key 10 routes to shard 0; move it to shard 1 by hand.
	if err := set.DeleteAt(0, 1, 10, logFn); err != nil {
		t.Fatal(err)
	}
	if err := set.InsertAt(1, 1, 10, []byte("moved"), logFn); err != nil {
		t.Fatal(err)
	}
	if logged != 2 {
		t.Fatalf("logFn called %d times, want 2", logged)
	}
	if _, found, _ := set.At(0).Read(1, 10); found {
		t.Fatal("key 10 still on shard 0")
	}
	v, found, err := set.At(1).Read(1, 10)
	if err != nil || !found || string(v) != "moved" {
		t.Fatalf("key 10 on shard 1: found=%v v=%q err=%v", found, v, err)
	}
	// The routed read misses (router still points at shard 0) until the
	// route is reassigned — records, not the router, own placement.
	if _, found, _ := set.Read(1, 10); found {
		t.Fatal("routed read found key 10 before reassign")
	}
	set.Split(10)
	if err := set.Reassign(10, 1); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := set.Read(1, 10); !found {
		t.Fatal("routed read missed key 10 after reassign")
	}
}
