package tc

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"logrec/internal/dc"
	"logrec/internal/shard"
	"logrec/internal/sim"
	"logrec/internal/storage"
	"logrec/internal/wal"
)

// newPair builds a TC over a real DC with a small loaded table.
func newPair(t *testing.T, rows int) (*TC, *dc.DC, *wal.Log) {
	t.Helper()
	clock := &sim.Clock{}
	disk, err := storage.New(clock, storage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	log := wal.NewLog()
	d, err := dc.New(clock, disk, log, 256, 1, 0, dc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.BulkLoad(rows, func(k uint64) []byte {
		return []byte(fmt.Sprintf("init-%06d", k))
	}); err != nil {
		t.Fatal(err)
	}
	d.StartLogging()
	return New(log, shard.Single(d)), d, log
}

func TestUpdateCommitVisible(t *testing.T) {
	tcx, d, _ := newPair(t, 100)
	txn := tcx.Begin()
	if err := tcx.Update(txn, 1, 5, []byte("new-value")); err != nil {
		t.Fatal(err)
	}
	if err := tcx.Commit(txn); err != nil {
		t.Fatal(err)
	}
	v, found, err := d.Read(1, 5)
	if err != nil || !found || !bytes.Equal(v, []byte("new-value")) {
		t.Fatalf("read after commit: %q %v %v", v, found, err)
	}
	if txn.Status() != StatusCommitted {
		t.Fatalf("status = %v", txn.Status())
	}
}

func TestAbortRollsBackAllOps(t *testing.T) {
	tcx, d, log := newPair(t, 100)
	txn := tcx.Begin()
	if err := tcx.Update(txn, 1, 7, []byte("garbage-1")); err != nil {
		t.Fatal(err)
	}
	if err := tcx.Insert(txn, 1, 1000, []byte("inserted")); err != nil {
		t.Fatal(err)
	}
	if err := tcx.Delete(txn, 1, 8); err != nil {
		t.Fatal(err)
	}
	if err := tcx.Abort(txn); err != nil {
		t.Fatal(err)
	}
	// Update restored.
	v, found, _ := d.Read(1, 7)
	if !found || !bytes.Equal(v, []byte("init-000007")) {
		t.Fatalf("key 7 = %q, want original", v)
	}
	// Insert removed.
	if _, found, _ := d.Read(1, 1000); found {
		t.Fatal("inserted key survived abort")
	}
	// Delete re-inserted.
	v, found, _ = d.Read(1, 8)
	if !found || !bytes.Equal(v, []byte("init-000008")) {
		t.Fatalf("key 8 = %q, want restored", v)
	}
	// CLRs and the abort record are on the log.
	if log.AppendCount(wal.TypeCLR) != 3 {
		t.Fatalf("CLRs = %d, want 3", log.AppendCount(wal.TypeCLR))
	}
	if log.AppendCount(wal.TypeAbort) != 1 {
		t.Fatal("no abort record")
	}
}

func TestUpdateMissingKey(t *testing.T) {
	tcx, _, _ := newPair(t, 10)
	txn := tcx.Begin()
	if err := tcx.Update(txn, 1, 9999, []byte("x")); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("err = %v, want ErrKeyNotFound", err)
	}
}

func TestOpsOnEndedTxnFail(t *testing.T) {
	tcx, _, _ := newPair(t, 10)
	txn := tcx.Begin()
	if err := tcx.Commit(txn); err != nil {
		t.Fatal(err)
	}
	if err := tcx.Update(txn, 1, 1, []byte("x")); !errors.Is(err, ErrTxnNotActive) {
		t.Fatalf("update after commit: %v", err)
	}
	if err := tcx.Commit(txn); !errors.Is(err, ErrTxnNotActive) {
		t.Fatalf("double commit: %v", err)
	}
	if err := tcx.Abort(txn); !errors.Is(err, ErrTxnNotActive) {
		t.Fatalf("abort after commit: %v", err)
	}
}

func TestWriteConflictBetweenTxns(t *testing.T) {
	tcx, _, _ := newPair(t, 10)
	t1 := tcx.Begin()
	t2 := tcx.Begin()
	if err := tcx.Update(t1, 1, 3, []byte("t1")); err != nil {
		t.Fatal(err)
	}
	if err := tcx.Update(t2, 1, 3, []byte("t2")); !errors.Is(err, ErrLockConflict) {
		t.Fatalf("conflicting update: %v, want ErrLockConflict", err)
	}
	// Readers also blocked by the X lock.
	if _, _, err := tcx.Read(t2, 1, 3); !errors.Is(err, ErrLockConflict) {
		t.Fatalf("conflicting read: %v", err)
	}
	// After t1 commits, t2 proceeds.
	if err := tcx.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if err := tcx.Update(t2, 1, 3, []byte("t2")); err != nil {
		t.Fatal(err)
	}
	if err := tcx.Commit(t2); err != nil {
		t.Fatal(err)
	}
}

func TestSharedReadersThenUpgrade(t *testing.T) {
	tcx, _, _ := newPair(t, 10)
	t1 := tcx.Begin()
	t2 := tcx.Begin()
	if _, _, err := tcx.Read(t1, 1, 4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tcx.Read(t2, 1, 4); err != nil {
		t.Fatal(err)
	}
	// Upgrade blocked while another reader holds S.
	if err := tcx.Update(t1, 1, 4, []byte("x")); !errors.Is(err, ErrLockConflict) {
		t.Fatalf("upgrade with 2 readers: %v", err)
	}
	if err := tcx.Commit(t2); err != nil {
		t.Fatal(err)
	}
	// Sole holder upgrades.
	if err := tcx.Update(t1, 1, 4, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := tcx.Commit(t1); err != nil {
		t.Fatal(err)
	}
}

func TestLocksReleasedOnCommitAndAbort(t *testing.T) {
	tcx, _, _ := newPair(t, 10)
	t1 := tcx.Begin()
	if err := tcx.Update(t1, 1, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if got := tcx.Locks().HeldBy(t1.ID); got != 1 {
		t.Fatalf("held = %d", got)
	}
	if err := tcx.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if got := tcx.Locks().Count(); got != 0 {
		t.Fatalf("locks remain after commit: %d", got)
	}
	t2 := tcx.Begin()
	if err := tcx.Update(t2, 1, 2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := tcx.Abort(t2); err != nil {
		t.Fatal(err)
	}
	if got := tcx.Locks().Count(); got != 0 {
		t.Fatalf("locks remain after abort: %d", got)
	}
}

func TestCommitForcesLogAndSendsEOSL(t *testing.T) {
	tcx, d, log := newPair(t, 10)
	txn := tcx.Begin()
	if err := tcx.Update(txn, 1, 1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	before := log.FlushedLSN()
	if err := tcx.Commit(txn); err != nil {
		t.Fatal(err)
	}
	if log.FlushedLSN() <= before {
		t.Fatal("commit did not force the log")
	}
	if d.Pool().ELSN() != log.FlushedLSN() {
		t.Fatalf("DC eLSN %v != flushed %v (EOSL not sent)", d.Pool().ELSN(), log.FlushedLSN())
	}
}

func TestCheckpointProtocol(t *testing.T) {
	tcx, d, log := newPair(t, 200)
	// Dirty some pages.
	for i := 0; i < 5; i++ {
		txn := tcx.Begin()
		for u := 0; u < 10; u++ {
			if err := tcx.Update(txn, 1, uint64(i*10+u), []byte(fmt.Sprintf("v-%d-%d", i, u))); err != nil {
				t.Fatal(err)
			}
		}
		if err := tcx.Commit(txn); err != nil {
			t.Fatal(err)
		}
	}
	if d.Pool().DirtyCount() == 0 {
		t.Fatal("no dirty pages to checkpoint")
	}
	open := tcx.Begin()
	if err := tcx.Update(open, 1, 150, []byte("open-txn")); err != nil {
		t.Fatal(err)
	}
	if err := tcx.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if tcx.LastEndCkptLSN() == wal.NilLSN {
		t.Fatal("master record not advanced")
	}
	// The end-checkpoint record names its begin record and carries the
	// open transaction.
	rec, err := log.Get(tcx.LastEndCkptLSN())
	if err != nil {
		t.Fatal(err)
	}
	end := rec.(*wal.EndCkptRec)
	if end.BeginLSN == wal.NilLSN {
		t.Fatal("end-ckpt lacks begin pointer")
	}
	b, err := log.Get(end.BeginLSN)
	if err != nil || b.Type() != wal.TypeBeginCkpt {
		t.Fatalf("begin pointer resolves to %v (%v)", b, err)
	}
	foundOpen := false
	for _, a := range end.Active {
		if a.TxnID == open.ID {
			foundOpen = true
		}
	}
	if !foundOpen {
		t.Fatal("active txn missing from end-ckpt record")
	}
	// RSSP flushed everything dirtied before the checkpoint: only the
	// open transaction's page (dirtied before bCkpt, but update 150 was
	// before the flip) — all pre-flip dirt must be gone.
	// The open txn's update happened before the checkpoint flip, so it
	// too was flushed; dirty count must be zero.
	if got := d.Pool().DirtyCount(); got != 0 {
		t.Fatalf("%d pages still dirty after checkpoint", got)
	}
	if err := tcx.Abort(open); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounting(t *testing.T) {
	tcx, _, _ := newPair(t, 50)
	txn := tcx.Begin()
	_ = tcx.Update(txn, 1, 1, []byte("a"))
	_ = tcx.Insert(txn, 1, 500, []byte("b"))
	_ = tcx.Delete(txn, 1, 2)
	_ = tcx.Commit(txn)
	txn2 := tcx.Begin()
	_ = tcx.Update(txn2, 1, 3, []byte("c"))
	_ = tcx.Abort(txn2)
	st := tcx.Stats()
	if st.Begun != 2 || st.Committed != 1 || st.Aborted != 1 {
		t.Fatalf("txn stats = %+v", st)
	}
	if st.Updates != 2 || st.Inserts != 1 || st.Deletes != 1 {
		t.Fatalf("op stats = %+v", st)
	}
}

func TestUpdateRecordCarriesActualPID(t *testing.T) {
	tcx, d, log := newPair(t, 100)
	txn := tcx.Begin()
	if err := tcx.Update(txn, 1, 42, []byte("pid-check")); err != nil {
		t.Fatal(err)
	}
	if err := tcx.Commit(txn); err != nil {
		t.Fatal(err)
	}
	wantPID, err := d.Tree().FindLeaf(42)
	if err != nil {
		t.Fatal(err)
	}
	sc := log.NewScanner(wal.FirstLSN(), nil, wal.ScanCost{})
	for {
		rec, _, ok, serr := sc.Next()
		if serr != nil {
			t.Fatal(serr)
		}
		if !ok {
			break
		}
		if u, isU := rec.(*wal.UpdateRec); isU && u.KeyVal == 42 {
			if u.PageID != wantPID {
				t.Fatalf("logged PID %d, actual leaf %d", u.PageID, wantPID)
			}
			return
		}
	}
	t.Fatal("update record not found")
}

func TestRestoreNextTxnID(t *testing.T) {
	tcx, _, _ := newPair(t, 10)
	tcx.RestoreNextTxnID(500)
	txn := tcx.Begin()
	if txn.ID != 501 {
		t.Fatalf("next txn = %d, want 501", txn.ID)
	}
	tcx.RestoreNextTxnID(100) // stale: no regression
	if tcx.Begin().ID != 502 {
		t.Fatal("txn allocator regressed")
	}
}

func TestReadRangeLocksMembers(t *testing.T) {
	tcx, _, _ := newPair(t, 100)
	t1 := tcx.Begin()
	rows, err := tcx.ReadRange(t1, 1, 10, 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("range returned %d rows", len(rows))
	}
	for i, r := range rows {
		if r.Key != uint64(10+i) {
			t.Fatalf("row %d key %d", i, r.Key)
		}
		if string(r.Val) != fmt.Sprintf("init-%06d", r.Key) {
			t.Fatalf("row %d value %q", i, r.Val)
		}
	}
	if got := tcx.Locks().HeldBy(t1.ID); got != 10 {
		t.Fatalf("held %d locks, want 10", got)
	}
	// Another transaction cannot write a member of the range.
	t2 := tcx.Begin()
	if err := tcx.Update(t2, 1, 15, []byte("x")); !errors.Is(err, ErrLockConflict) {
		t.Fatalf("update of S-locked member: %v", err)
	}
	// But can write outside it.
	if err := tcx.Update(t2, 1, 50, []byte("outside-range")); err != nil {
		t.Fatal(err)
	}
	if err := tcx.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if err := tcx.Commit(t2); err != nil {
		t.Fatal(err)
	}
}

func TestReadRangeConflictAborts(t *testing.T) {
	tcx, _, _ := newPair(t, 100)
	t1 := tcx.Begin()
	if err := tcx.Update(t1, 1, 15, []byte("held-exclusively")); err != nil {
		t.Fatal(err)
	}
	t2 := tcx.Begin()
	if _, err := tcx.ReadRange(t2, 1, 10, 19); !errors.Is(err, ErrLockConflict) {
		t.Fatalf("range over X-locked member: %v", err)
	}
	if err := tcx.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if err := tcx.Abort(t2); err != nil {
		t.Fatal(err)
	}
}
