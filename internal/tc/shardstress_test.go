// Shard-parallel stress: mixed single- and cross-shard transactions
// race the auto-split balancer and an explicit migration on a 4-shard
// engine under -race, then the engine crashes. The recovered state must
// equal a serial replay of the stable log's committed transactions — an
// oracle that is independent of the recovery implementation and of
// every interleaving the planes allowed.
package tc_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"logrec/internal/core"
	"logrec/internal/engine"
	"logrec/internal/tc"
	"logrec/internal/wal"
)

// replayCommitted rebuilds the expected row state: start from the
// bulk-loaded base, find every committed transaction on the stable log,
// and apply exactly their forward data records in log order. CLRs are
// skipped — committed transactions have none, and losers' effects must
// not surface at all.
func replayCommitted(t *testing.T, log *wal.Log, base map[uint64]string) map[uint64]string {
	t.Helper()
	committed := map[wal.TxnID]bool{}
	sc := log.NewScanner(wal.FirstLSN(), nil, wal.ScanCost{})
	for {
		rec, _, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if c, isCommit := rec.(*wal.CommitRec); isCommit {
			committed[c.TxnID] = true
		}
	}
	state := make(map[uint64]string, len(base))
	for k, v := range base {
		state[k] = v
	}
	sc = log.NewScanner(wal.FirstLSN(), nil, wal.ScanCost{})
	for {
		rec, _, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		switch r := rec.(type) {
		case *wal.UpdateRec:
			if committed[r.TxnID] {
				state[r.KeyVal] = string(r.NewVal)
			}
		case *wal.InsertRec:
			if committed[r.TxnID] {
				state[r.KeyVal] = string(r.Val)
			}
		case *wal.DeleteRec:
			if committed[r.TxnID] {
				delete(state, r.KeyVal)
			}
		}
	}
	return state
}

func TestShardParallelStressCrashRecoverMatchesSerialReplay(t *testing.T) {
	const (
		rows    = 4096
		clients = 8
		txns    = 30
	)
	cfg := engine.DefaultConfig()
	cfg.CachePages = 256
	cfg.Shards = 4
	cfg.KeySpan = rows
	cfg.AutoSplit = true
	cfg.AutoSplitCfg = tc.AutoSplitConfig{
		// Wide windows with a tiny op floor: -race on a small host may
		// push only a few thousand ops/sec, and the balancer must still
		// qualify windows and act during the run.
		Interval:     5 * time.Millisecond,
		MinShare:     0.3,
		MinOps:       16,
		MinRangeSpan: 8,
		MaxMoveSpan:  1024,
	}
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := map[uint64]string{}
	if err := eng.Load(rows, func(k uint64) []byte {
		v := fmt.Sprintf("init-%06d", k)
		base[k] = v
		return []byte(v)
	}); err != nil {
		t.Fatal(err)
	}
	mgr := eng.NewSessionManager(0)

	// runTxn drives one transaction's ops, retrying conflicts (with the
	// balancer's migrations and other clients) until commit or a
	// deliberate abort.
	runTxn := func(sess *tc.Session, keys []uint64, tag string, abort bool) error {
		for attempt := 0; ; attempt++ {
			if attempt == 100 {
				return fmt.Errorf("txn %s starved after %d attempts", tag, attempt)
			}
			if err := sess.Begin(); err != nil {
				return err
			}
			failed := false
			for _, k := range keys {
				if err := sess.Update(cfg.TableID, k, []byte(tag)); err != nil {
					failed = true
					break
				}
			}
			if failed || abort {
				if err := sess.Abort(); err != nil {
					return err
				}
				if failed {
					time.Sleep(time.Duration(attempt+1) * 50 * time.Microsecond)
					continue
				}
				return nil
			}
			return sess.Commit()
		}
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := mgr.NewSession()
			for i := 0; i < txns; i++ {
				tag := fmt.Sprintf("c%02d-t%03d", c, i)
				// Skewed base key on shard 0's initial range, so the
				// balancer sees a hot shard.
				hot := uint64((c*7 + i*13) % 256)
				var keys []uint64
				if i%3 == 0 {
					// Cross-shard: hot key plus a far key on another shard.
					keys = []uint64{hot, hot + 2048}
				} else {
					// Single-shard pair.
					keys = []uint64{hot, hot + 1}
				}
				if err := runTxn(sess, keys, tag, i%5 == 4); err != nil {
					fail(fmt.Errorf("client %d: %w", c, err))
					return
				}
			}
		}(c)
	}

	// An explicit migration races the balancer's own actions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for attempt := 0; ; attempt++ {
			err := mgr.SplitRange(cfg.TableID, 3500, 0)
			if err == nil {
				return
			}
			if attempt == 200 {
				fail(fmt.Errorf("explicit migration starved: %v", err))
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	// Keep the hot traffic flowing until the balancer has demonstrably
	// acted (bounded; the correctness oracle below does not depend on
	// it, so a slow machine only logs).
	sess := mgr.NewSession()
	deadline := time.Now().Add(3 * time.Second)
	acted := func() bool {
		st := eng.Balancer().Stats()
		return st.BoundarySplits+st.Migrations > 0
	}
	for i := 0; !acted() && time.Now().Before(deadline); i++ {
		k := uint64(i % 64)
		if err := runTxn(sess, []uint64{k}, fmt.Sprintf("bal-%06d", i), false); err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.Balancer().Stats(); st.BoundarySplits+st.Migrations == 0 {
		t.Log("balancer never acted within the deadline (slow host?); oracle still checked")
	} else {
		t.Logf("balancer: %+v", st)
	}

	// A transaction left in flight at the crash: a loser the replay
	// must exclude and recovery must undo.
	loser := mgr.NewSession()
	if err := loser.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := loser.Update(cfg.TableID, 1500, []byte("UNCOMMITTED")); err != nil {
		t.Fatal(err)
	}
	eng.TC.SendEOSL()

	crash := eng.Crash()
	want := replayCommitted(t, crash.Log, base)

	rec, _, err := core.Recover(crash, core.Log2, core.DefaultOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]string{}
	if err := rec.Set.ScanAll(func(k uint64, v []byte) error {
		if _, dup := got[k]; dup {
			return fmt.Errorf("key %d surfaced twice in the recovered scan", k)
		}
		got[k] = string(v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Errorf("recovered %d rows, serial replay has %d", len(got), len(want))
	}
	for k, w := range want {
		if g, ok := got[k]; !ok {
			t.Errorf("key %d missing after recovery (replay has %q)", k, w)
		} else if g != w {
			t.Errorf("key %d = %q, replay says %q", k, g, w)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("key %d present after recovery but absent from replay", k)
		}
	}

	// Point reads through the recovered routing agree with the scan
	// (each key is owned by exactly one shard after all the splits).
	for _, k := range []uint64{0, 255, 1500, 2048, 3500, rows - 1} {
		v, found, err := rec.Set.Read(cfg.TableID, k)
		if err != nil || !found {
			t.Fatalf("recovered read of %d: found=%v err=%v", k, found, err)
		}
		if !bytes.Equal(v, []byte(got[k])) {
			t.Fatalf("recovered read of %d = %q, scan said %q", k, v, got[k])
		}
	}
}
