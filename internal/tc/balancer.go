// Load-driven range auto-splitting. The balancer is the elasticity
// half of the sharded engine (LogBase's hot-range story): it watches
// the router's per-range load counters and, when one shard absorbs an
// outsized share of the traffic, carves its hottest range down with
// boundary-only splits and migrates the warm remainder to the coldest
// shard through the crash-safe SplitRange system transaction.
//
// Two kinds of action, deliberately asymmetric:
//
//   - a boundary split (Router.Split with the same owner both sides)
//     moves no rows, takes no locks and needs no log record — losing
//     it in a crash changes no key's routing — so the balancer uses it
//     freely to isolate a hot head;
//   - a migration (SessionManager.SplitRange) locks every row it moves
//     under the two shards' planes; against live traffic the no-wait
//     lock table may refuse (a session holds a row in the range), in
//     which case the balancer simply gives up until the next window
//     rather than stalling anyone.
package tc

import (
	"sort"
	"sync"
	"time"

	"logrec/internal/shard"
	"logrec/internal/wal"
)

// AutoSplitConfig tunes the balancer. Zero values take the defaults.
type AutoSplitConfig struct {
	// Interval is the load-inspection period (default 10ms).
	Interval time.Duration
	// MinShare is the floor on the hot shard's load share (of the
	// window's total ops) below which the window needs no action
	// (default 0.3). The effective trigger is the larger of MinShare
	// and 1.25× the fair share (1/shards), so an engine that has
	// spread the load evenly converges rather than churning
	// migrations forever — with few shards the fair share itself
	// exceeds any fixed threshold.
	MinShare float64
	// MinOps is the minimum operations in a window for it to be worth
	// acting on; quieter windows are ignored (default 256).
	MinOps int64
	// MinRangeSpan stops boundary splits: a range spanning at most
	// this many keys is not cut further (default 16).
	MinRangeSpan uint64
	// MaxMoveSpan bounds the key span migrated in one move — the
	// migration locks and relocates every row in the range, so wider
	// ranges are boundary-split first (default 65536).
	MaxMoveSpan uint64
}

// withDefaults fills zero fields.
func (c AutoSplitConfig) withDefaults() AutoSplitConfig {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Millisecond
	}
	if c.MinShare <= 0 {
		c.MinShare = 0.3
	}
	if c.MinOps <= 0 {
		c.MinOps = 256
	}
	if c.MinRangeSpan == 0 {
		c.MinRangeSpan = 16
	}
	if c.MaxMoveSpan == 0 {
		c.MaxMoveSpan = 65536
	}
	return c
}

// AutoSplitStats counts balancer activity.
type AutoSplitStats struct {
	// Windows is the number of qualifying load windows (enough traffic
	// to judge).
	Windows int64
	// BoundarySplits is the number of routing boundaries added.
	BoundarySplits int64
	// Migrations is the number of ranges moved to another shard.
	Migrations int64
	// FailedMigrations counts moves abandoned on lock conflict with
	// live traffic (retried in a later window).
	FailedMigrations int64
	// FirstHotShare and LastHotShare are the hot shard's load share in
	// the first and the most recent qualifying window; their gap is the
	// rebalancing the balancer achieved mid-run.
	FirstHotShare float64
	LastHotShare  float64
}

// Balancer runs the auto-split policy on a background goroutine.
// Create with StartBalancer; Stop before crashing or discarding the
// engine.
type Balancer struct {
	mgr   *SessionManager
	table wal.TableID
	cfg   AutoSplitConfig

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	// mu guards seeded and stats.
	mu     sync.Mutex
	seeded bool
	stats  AutoSplitStats
}

// StartBalancer launches the balancer over mgr's engine, splitting
// ranges of table. Defaults fill zero cfg fields.
func StartBalancer(mgr *SessionManager, table wal.TableID, cfg AutoSplitConfig) *Balancer {
	b := &Balancer{
		mgr:   mgr,
		table: table,
		cfg:   cfg.withDefaults(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go b.run()
	return b
}

// Stop halts the balancer and waits for its goroutine to exit. Safe to
// call more than once.
func (b *Balancer) Stop() {
	b.stopOnce.Do(func() { close(b.stop) })
	<-b.done
}

// Stats returns a snapshot of the counters.
func (b *Balancer) Stats() AutoSplitStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

func (b *Balancer) run() {
	defer close(b.done)
	tick := time.NewTicker(b.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-tick.C:
			b.window()
		}
	}
}

// rangeSpan returns the key span of l; 0 means the full uint64 domain
// wrapped around (callers treat it as wider than any threshold).
func rangeSpan(l shard.RangeLoad) uint64 { return l.End - l.Start + 1 }

// window inspects one load window and performs at most one boundary
// split and one migration.
func (b *Balancer) window() {
	set := b.mgr.tc.dc
	nShards := set.NumShards()
	if nShards < 2 {
		return
	}
	loads := set.TakeRangeLoads()
	var total int64
	perShard := make([]int64, nShards)
	for _, l := range loads {
		total += l.Ops
		perShard[l.Shard] += l.Ops
	}
	if total < b.cfg.MinOps {
		return
	}
	hot, cold := 0, 0
	for i, v := range perShard {
		if v > perShard[hot] {
			hot = i
		}
		if v < perShard[cold] {
			cold = i
		}
	}
	share := float64(perShard[hot]) / float64(total)

	b.mu.Lock()
	b.stats.Windows++
	if !b.seeded {
		b.stats.FirstHotShare = share
		b.seeded = true
	}
	b.stats.LastHotShare = share
	b.mu.Unlock()

	trigger := b.cfg.MinShare
	if fair := 1.25 / float64(nShards); fair > trigger {
		trigger = fair
	}
	if share < trigger {
		return
	}

	// The hot shard's ranges, busiest first.
	var hotRanges []shard.RangeLoad
	for _, l := range loads {
		if int(l.Shard) == hot {
			hotRanges = append(hotRanges, l)
		}
	}
	sort.Slice(hotRanges, func(i, j int) bool { return hotRanges[i].Ops > hotRanges[j].Ops })
	if len(hotRanges) == 0 {
		return
	}

	// Halve the hottest range while it is still wide: each boundary
	// split shrinks the head that must stay on this shard and creates a
	// warm sibling a later window can migrate.
	head := hotRanges[0]
	if span := rangeSpan(head); span == 0 || span > b.cfg.MinRangeSpan {
		mid := head.Start + span/2
		if span == 0 {
			mid = head.Start + 1<<63
		}
		set.Split(mid)
		b.mu.Lock()
		b.stats.BoundarySplits++
		b.mu.Unlock()
	}

	// Migrate warm (non-head) load to the coldest shard, one range per
	// window. The head itself stays: moving the hottest range would
	// chase the skew from shard to shard instead of spreading it.
	if cold == hot {
		return
	}
	for _, r := range hotRanges[1:] {
		if r.Ops == 0 {
			break
		}
		if span := rangeSpan(r); span == 0 || span > b.cfg.MaxMoveSpan {
			// Too many rows for one move: halve it now so a later
			// window can migrate the pieces.
			mid := r.Start + span/2
			if span == 0 {
				mid = r.Start + 1<<63
			}
			set.Split(mid)
			b.mu.Lock()
			b.stats.BoundarySplits++
			b.mu.Unlock()
			return
		}
		if err := b.mgr.SplitRange(b.table, r.Start, wal.ShardID(cold)); err != nil {
			b.mu.Lock()
			b.stats.FailedMigrations++
			b.mu.Unlock()
			return
		}
		b.mu.Lock()
		b.stats.Migrations++
		b.mu.Unlock()
		return
	}
}
