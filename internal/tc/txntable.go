// The TC's transaction table, sharded so Begin/Commit from concurrent
// sessions never serialize behind each other — or behind data
// operations, which hold per-shard planes (session.go), not this lock.
// The single-threaded experiment path pays one uncontended mutex per
// table touch, which is noise there.

package tc

import (
	"sync"
	"sync/atomic"

	"logrec/internal/wal"
)

// txnTableShards is the number of hash shards in the transaction
// table. Like the lock table's sharding, this bounds mutex contention,
// not capacity.
const txnTableShards = 16

// txnTableShard is one hash shard: a mutex and the active transactions
// whose IDs hash here.
type txnTableShard struct {
	mu     sync.Mutex
	active map[wal.TxnID]*Txn
}

// txnTable allocates transaction IDs and tracks active transactions.
type txnTable struct {
	// next is the last allocated transaction ID (monotonic).
	next   atomic.Uint64
	shards [txnTableShards]txnTableShard
}

func newTxnTable() *txnTable {
	tt := &txnTable{}
	for i := range tt.shards {
		tt.shards[i].active = make(map[wal.TxnID]*Txn)
	}
	return tt
}

func (tt *txnTable) allocate() wal.TxnID {
	return wal.TxnID(tt.next.Add(1))
}

func (tt *txnTable) shardOf(id wal.TxnID) *txnTableShard {
	return &tt.shards[uint64(id)%txnTableShards]
}

func (tt *txnTable) add(t *Txn) {
	sh := tt.shardOf(t.ID)
	sh.mu.Lock()
	sh.active[t.ID] = t
	sh.mu.Unlock()
}

func (tt *txnTable) remove(id wal.TxnID) {
	sh := tt.shardOf(id)
	sh.mu.Lock()
	delete(sh.active, id)
	sh.mu.Unlock()
}

func (tt *txnTable) has(id wal.TxnID) bool {
	sh := tt.shardOf(id)
	sh.mu.Lock()
	_, ok := sh.active[id]
	sh.mu.Unlock()
	return ok
}

func (tt *txnTable) count() int {
	n := 0
	for i := range tt.shards {
		sh := &tt.shards[i]
		sh.mu.Lock()
		n += len(sh.active)
		sh.mu.Unlock()
	}
	return n
}

// snapshot returns the active transactions at some point during the
// call. The checkpoint holds every shard plane while calling it, so no
// data record can land in the window where a shard has been visited but
// the EndCkptRec not yet written; commits racing the snapshot are safe
// because a commit record appended after the begin-checkpoint LSN is
// found by the redo scan regardless of the Active list.
func (tt *txnTable) snapshot() []*Txn {
	var out []*Txn
	for i := range tt.shards {
		sh := &tt.shards[i]
		sh.mu.Lock()
		for _, t := range sh.active {
			out = append(out, t)
		}
		sh.mu.Unlock()
	}
	return out
}

// bump moves the ID allocator past maxSeen (post-recovery restore).
func (tt *txnTable) bump(maxSeen wal.TxnID) {
	for {
		cur := tt.next.Load()
		if uint64(maxSeen) <= cur {
			return
		}
		if tt.next.CompareAndSwap(cur, uint64(maxSeen)) {
			return
		}
	}
}

// counters is the TC's statistics, kept atomic because per-shard
// planes let operations on different shards update them concurrently.
// Stats() snapshots them into the exported plain struct.
type counters struct {
	begun       atomic.Int64
	committed   atomic.Int64
	aborted     atomic.Int64
	updates     atomic.Int64
	inserts     atomic.Int64
	deletes     atomic.Int64
	checkpoints atomic.Int64
	rangeSplits atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Begun:       c.begun.Load(),
		Committed:   c.committed.Load(),
		Aborted:     c.aborted.Load(),
		Updates:     c.updates.Load(),
		Inserts:     c.inserts.Load(),
		Deletes:     c.deletes.Load(),
		Checkpoints: c.checkpoints.Load(),
		RangeSplits: c.rangeSplits.Load(),
	}
}
