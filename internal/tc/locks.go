package tc

import (
	"errors"
	"fmt"

	"logrec/internal/wal"
)

// ErrLockConflict indicates a lock request that conflicts with another
// transaction's lock. The engine is single-threaded over virtual time,
// so conflicts surface immediately rather than blocking; callers may
// abort and retry.
var ErrLockConflict = errors.New("tc: lock conflict")

// LockMode is the requested access mode.
type LockMode int

// Lock modes.
const (
	LockShared LockMode = iota
	LockExclusive
)

func (m LockMode) String() string {
	if m == LockShared {
		return "S"
	}
	return "X"
}

// lockKey identifies a lockable resource: a logical record named by
// table and key. Deuteronomy's TC locks without location information
// (§1.1); no page IDs appear here.
type lockKey struct {
	table wal.TableID
	key   uint64
}

type lockState struct {
	mode    LockMode
	holders map[wal.TxnID]struct{}
}

// LockTable is a strict two-phase-locking lock manager over logical
// record identities. Locks are held until commit or abort.
type LockTable struct {
	locks map[lockKey]*lockState
	// held tracks each transaction's locks for O(held) release.
	held map[wal.TxnID][]lockKey
}

// NewLockTable returns an empty lock table.
func NewLockTable() *LockTable {
	return &LockTable{
		locks: make(map[lockKey]*lockState),
		held:  make(map[wal.TxnID][]lockKey),
	}
}

// Acquire grants txn a lock on (table, key) in the requested mode,
// upgrading S→X when txn is the sole holder. It returns
// ErrLockConflict when another transaction holds an incompatible lock.
func (lt *LockTable) Acquire(txn wal.TxnID, table wal.TableID, key uint64, mode LockMode) error {
	k := lockKey{table: table, key: key}
	st, ok := lt.locks[k]
	if !ok {
		lt.locks[k] = &lockState{mode: mode, holders: map[wal.TxnID]struct{}{txn: {}}}
		lt.held[txn] = append(lt.held[txn], k)
		return nil
	}
	if _, holds := st.holders[txn]; holds {
		if mode == LockExclusive && st.mode == LockShared {
			if len(st.holders) > 1 {
				return fmt.Errorf("%w: txn %d upgrade on table %d key %d blocked by %d other readers",
					ErrLockConflict, txn, table, key, len(st.holders)-1)
			}
			st.mode = LockExclusive
		}
		return nil
	}
	if st.mode == LockShared && mode == LockShared {
		st.holders[txn] = struct{}{}
		lt.held[txn] = append(lt.held[txn], k)
		return nil
	}
	return fmt.Errorf("%w: txn %d wants %v on table %d key %d held %v by %d txn(s)",
		ErrLockConflict, txn, mode, table, key, st.mode, len(st.holders))
}

// ReleaseAll drops every lock txn holds (commit/abort).
func (lt *LockTable) ReleaseAll(txn wal.TxnID) {
	for _, k := range lt.held[txn] {
		st, ok := lt.locks[k]
		if !ok {
			continue
		}
		delete(st.holders, txn)
		if len(st.holders) == 0 {
			delete(lt.locks, k)
		}
	}
	delete(lt.held, txn)
}

// Count returns the number of locked resources (tests and stats).
func (lt *LockTable) Count() int { return len(lt.locks) }

// HeldBy returns how many locks txn currently holds.
func (lt *LockTable) HeldBy(txn wal.TxnID) int { return len(lt.held[txn]) }
