package tc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"logrec/internal/wal"
)

// LockMode is the requested access mode.
type LockMode int

// Lock modes.
const (
	LockShared LockMode = iota
	LockExclusive
)

func (m LockMode) String() string {
	if m == LockShared {
		return "S"
	}
	return "X"
}

// lockKey identifies a lockable resource: a logical record named by
// table and key. Deuteronomy's TC locks without location information
// (§1.1); no page IDs appear here.
type lockKey struct {
	table wal.TableID
	key   uint64
}

type lockState struct {
	mode    LockMode
	holders map[wal.TxnID]struct{}
}

// lockShards is the number of hash shards in the lock table. Sharding
// cuts mutex contention when many sessions acquire locks concurrently;
// 64 shards keep the per-commit release sweep cheap while making
// same-shard collisions rare at realistic session counts.
const lockShards = 64

// lockShard is one hash shard: an independently locked slice of the
// lock space with its own per-transaction held lists. heldTxns counts
// transactions with entries in held; ReleaseAll and HeldBy read it to
// skip (without locking) shards where no transaction holds anything.
type lockShard struct {
	mu       sync.Mutex
	locks    map[lockKey]*lockState
	held     map[wal.TxnID][]lockKey
	heldTxns atomic.Int64
}

// LockTable is a strict two-phase-locking lock manager over logical
// record identities, sharded by hash of (table, key). Locks are held
// until commit or abort. Safe for concurrent use.
type LockTable struct {
	shards [lockShards]lockShard
}

// NewLockTable returns an empty lock table.
func NewLockTable() *LockTable {
	lt := &LockTable{}
	for i := range lt.shards {
		lt.shards[i].locks = make(map[lockKey]*lockState)
		lt.shards[i].held = make(map[wal.TxnID][]lockKey)
	}
	return lt
}

// shardOf hashes (table, key) onto a shard (Fibonacci hashing on the
// key mixed with the table).
func (lt *LockTable) shardOf(k lockKey) *lockShard {
	h := (k.key ^ (uint64(k.table) << 32)) * 0x9E3779B97F4A7C15
	return &lt.shards[h>>(64-6)] // top 6 bits → 64 shards
}

// Acquire grants txn a lock on (table, key) in the requested mode,
// upgrading S→X when txn is the sole holder. It returns
// ErrLockConflict when another transaction holds an incompatible lock.
func (lt *LockTable) Acquire(txn wal.TxnID, table wal.TableID, key uint64, mode LockMode) error {
	k := lockKey{table: table, key: key}
	sh := lt.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.locks[k]
	if !ok {
		sh.locks[k] = &lockState{mode: mode, holders: map[wal.TxnID]struct{}{txn: {}}}
		sh.noteHeld(txn, k)
		return nil
	}
	if _, holds := st.holders[txn]; holds {
		if mode == LockExclusive && st.mode == LockShared {
			if len(st.holders) > 1 {
				return fmt.Errorf("%w: txn %d upgrade on table %d key %d blocked by %d other readers",
					ErrLockConflict, txn, table, key, len(st.holders)-1)
			}
			st.mode = LockExclusive
		}
		return nil
	}
	if st.mode == LockShared && mode == LockShared {
		st.holders[txn] = struct{}{}
		sh.noteHeld(txn, k)
		return nil
	}
	return fmt.Errorf("%w: txn %d wants %v on table %d key %d held %v by %d txn(s)",
		ErrLockConflict, txn, mode, table, key, st.mode, len(st.holders))
}

// noteHeld appends k to txn's held list; caller holds sh.mu.
func (sh *lockShard) noteHeld(txn wal.TxnID, k lockKey) {
	if _, ok := sh.held[txn]; !ok {
		sh.heldTxns.Add(1)
	}
	sh.held[txn] = append(sh.held[txn], k)
}

// ReleaseAll drops every lock txn holds (commit/abort). Shards where no
// transaction holds anything are skipped without locking: the releasing
// goroutine's own acquires happened-before this call, so heldTxns == 0
// proves txn holds nothing there.
func (lt *LockTable) ReleaseAll(txn wal.TxnID) {
	for i := range lt.shards {
		sh := &lt.shards[i]
		if sh.heldTxns.Load() == 0 {
			continue
		}
		sh.mu.Lock()
		keys, ok := sh.held[txn]
		if ok {
			for _, k := range keys {
				st, ok := sh.locks[k]
				if !ok {
					continue
				}
				delete(st.holders, txn)
				if len(st.holders) == 0 {
					delete(sh.locks, k)
				}
			}
			delete(sh.held, txn)
			sh.heldTxns.Add(-1)
		}
		sh.mu.Unlock()
	}
}

// Count returns the number of locked resources (tests and stats).
func (lt *LockTable) Count() int {
	n := 0
	for i := range lt.shards {
		sh := &lt.shards[i]
		sh.mu.Lock()
		n += len(sh.locks)
		sh.mu.Unlock()
	}
	return n
}

// HeldBy returns how many locks txn currently holds.
func (lt *LockTable) HeldBy(txn wal.TxnID) int {
	n := 0
	for i := range lt.shards {
		sh := &lt.shards[i]
		if sh.heldTxns.Load() == 0 {
			continue
		}
		sh.mu.Lock()
		n += len(sh.held[txn])
		sh.mu.Unlock()
	}
	return n
}
