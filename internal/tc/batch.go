// Batched session operations: group N point ops into one plane
// round-trip. A multi-op transaction built one call at a time pays a
// route-lookup, plane-acquire and plane-release per op; ApplyBatch
// pays the logical-lock cost per op but acquires the deduplicated set
// of owning planes exactly once, in ascending shard-ID order — the
// same discipline as every other multi-plane path, so batches compose
// with migrations and checkpoints without new deadlock cases.
package tc

import (
	"logrec/internal/wal"
)

// BatchKind selects what a BatchOp does.
type BatchKind int

// Batch operation kinds.
const (
	// BatchRead reads Key; the value (or nil if absent) lands in the
	// result slot.
	BatchRead BatchKind = iota
	// BatchUpdate replaces the value under Key with Val.
	BatchUpdate
	// BatchInsert adds a new row Key → Val.
	BatchInsert
	// BatchDelete removes the row under Key.
	BatchDelete
)

func (k BatchKind) String() string {
	switch k {
	case BatchRead:
		return "read"
	case BatchUpdate:
		return "update"
	case BatchInsert:
		return "insert"
	case BatchDelete:
		return "delete"
	}
	return "unknown"
}

// BatchOp is one operation in a batch. Val is used by update and
// insert and ignored otherwise.
type BatchOp struct {
	// Kind selects the operation.
	Kind BatchKind
	// Table is the table the op targets.
	Table wal.TableID
	// Key is the row key.
	Key uint64
	// Val is the new value for update and insert ops.
	Val []byte
}

// ApplyBatch runs ops in order inside the session's active
// transaction, acquiring every logical lock first (shared for reads,
// exclusive for writes; a conflict aborts the batch before any plane
// is taken), then the deduplicated owning planes once. The result
// slice is parallel to ops: read slots hold a copy of the value (nil
// when the key is absent), write slots stay nil. On error the batch
// stops at the failing op; earlier writes remain pending in the
// transaction, and the caller resolves them with Commit or Abort as
// usual.
//
// Like lockPlane, the key→shard routes are revalidated under the
// planes: if a concurrent migration moved any batched key to a shard
// outside the locked set, the planes are dropped and the batch
// re-routes and retries.
func (s *Session) ApplyBatch(ops []BatchOp) ([][]byte, error) {
	if err := s.checkActive(); err != nil {
		return nil, err
	}
	if len(ops) == 0 {
		return nil, nil
	}
	m := s.mgr
	for _, op := range ops {
		mode := LockExclusive
		if op.Kind == BatchRead {
			mode = LockShared
		}
		if err := m.tc.locks.Acquire(s.txn.ID, op.Table, op.Key, mode); err != nil {
			return nil, err
		}
	}
	owners := make([]wal.ShardID, len(ops))
retry:
	for {
		ids := make([]wal.ShardID, len(ops))
		for i, op := range ops {
			ids[i] = m.tc.dc.LocateHit(op.Key)
		}
		release := m.lockPlanes(ids)
		locked := make(map[wal.ShardID]bool, len(ids))
		for _, id := range ids {
			locked[id] = true
		}
		for i, op := range ops {
			owners[i] = m.tc.dc.Locate(op.Key)
			if !locked[owners[i]] {
				release()
				continue retry
			}
		}
		results := make([][]byte, len(ops))
		for i, op := range ops {
			var err error
			switch op.Kind {
			case BatchRead:
				var v []byte
				var found bool
				v, found, err = m.tc.dc.At(owners[i]).Read(op.Table, op.Key)
				if found {
					results[i] = v
				}
			case BatchUpdate:
				s.note(owners[i])
				err = m.tc.applyUpdateAt(owners[i], s.txn, op.Table, op.Key, op.Val)
			case BatchInsert:
				s.note(owners[i])
				err = m.tc.applyInsertAt(owners[i], s.txn, op.Table, op.Key, op.Val)
			case BatchDelete:
				s.note(owners[i])
				err = m.tc.applyDeleteAt(owners[i], s.txn, op.Table, op.Key)
			}
			if err != nil {
				release()
				return nil, err
			}
		}
		release()
		return results, nil
	}
}
