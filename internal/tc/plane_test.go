// White-box tests for the per-shard session planes: every early return
// in the acquisition order must leave all planes free. A leaked plane
// wedges its shard forever, so these tests TryLock every plane after
// each error path.
package tc

import (
	"errors"
	"fmt"
	"testing"

	"logrec/internal/dc"
	"logrec/internal/shard"
	"logrec/internal/sim"
	"logrec/internal/storage"
	"logrec/internal/wal"
)

// newShardedMgr builds a SessionManager over nShards real DCs with
// rows bulk-loaded across them.
func newShardedMgr(t *testing.T, nShards, rows int) *SessionManager {
	t.Helper()
	clock := &sim.Clock{}
	log := wal.NewLog()
	dcs := make([]*dc.DC, nShards)
	for i := range dcs {
		disk, err := storage.New(clock, storage.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		d, err := dc.New(clock, disk, log, 64, 1, wal.ShardID(i), dc.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		dcs[i] = d
	}
	set, err := shard.NewSet(shard.DefaultRoutes(nShards, uint64(rows)), dcs)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < uint64(rows); k++ {
		if err := set.LoadRow(k, []byte(fmt.Sprintf("init-%06d", k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := set.FinishLoad(); err != nil {
		t.Fatal(err)
	}
	set.StartLogging()
	tcx := New(log, set)
	gc := wal.NewGroupCommitter(log, set.EOSL, 0)
	return NewSessionManager(tcx, gc)
}

// requirePlanesFree fails unless every shard plane can be locked right
// now — i.e. nothing leaked one.
func requirePlanesFree(t *testing.T, m *SessionManager, when string) {
	t.Helper()
	for i, p := range m.planes {
		if !p.mu.TryLock() {
			t.Fatalf("%s: plane %d still held", when, i)
		}
		p.mu.Unlock()
	}
}

func TestSessionBusyAndErrorPathsLeaveNoPlaneHeld(t *testing.T) {
	const rows = 256
	m := newShardedMgr(t, 4, rows)
	sess := m.NewSession()

	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Update(1, 10, []byte("x")); err != nil { // shard 0
		t.Fatal(err)
	}
	if err := sess.Update(1, 200, []byte("y")); err != nil { // shard 3
		t.Fatal(err)
	}

	// Begin on a busy session: must fail without acquiring anything.
	if err := sess.Begin(); !errors.Is(err, ErrSessionBusy) {
		t.Fatalf("Begin on busy session = %v, want ErrSessionBusy", err)
	}
	requirePlanesFree(t, m, "after ErrSessionBusy")

	// A data operation that fails inside the DC (missing key): the
	// plane must be released on the error return.
	if err := sess.Update(1, rows+500, []byte("z")); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("update of missing key = %v, want ErrKeyNotFound", err)
	}
	requirePlanesFree(t, m, "after failed update")

	// Abort over the touched shards (0 and 3, multi-plane path).
	if err := sess.Abort(); err != nil {
		t.Fatal(err)
	}
	requirePlanesFree(t, m, "after abort")

	// Lock conflict: the second session is refused before any plane.
	other := m.NewSession()
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := other.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Update(1, 42, []byte("mine")); err != nil {
		t.Fatal(err)
	}
	if err := other.Update(1, 42, []byte("theirs")); !errors.Is(err, ErrLockConflict) {
		t.Fatalf("contended update = %v, want ErrLockConflict", err)
	}
	requirePlanesFree(t, m, "after lock conflict")
	if err := other.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	requirePlanesFree(t, m, "after commit")

	// SplitRange with an invalid target: rejected before any plane.
	if err := m.SplitRange(1, 100, 99); err == nil {
		t.Fatal("split to unknown shard succeeded")
	}
	requirePlanesFree(t, m, "after rejected split")

	// A failed migration (conflict with a held row lock) must release
	// both planes on the abort path.
	holder := m.NewSession()
	if err := holder.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := holder.Update(1, 100, []byte("held")); err != nil { // shard 1's range [64,128)
		t.Fatal(err)
	}
	if err := m.SplitRange(1, 96, 2); err == nil {
		t.Fatal("migration over a locked row succeeded, want conflict")
	}
	requirePlanesFree(t, m, "after failed migration")
	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}

	// Checkpoint holds every plane and must release them all.
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	requirePlanesFree(t, m, "after checkpoint")

	// A successful migration releases both planes.
	if err := m.SplitRange(1, 96, 2); err != nil {
		t.Fatal(err)
	}
	requirePlanesFree(t, m, "after migration")
	if got := m.tc.dc.Locate(100); got != 2 {
		t.Fatalf("post-migration owner of 100 = %d, want 2", got)
	}
}

// TestLockPlanesDedupes pins that duplicate and unordered shard IDs are
// acquired once each in ascending order (a double-lock would deadlock
// right here) and that the returned release is idempotent.
func TestLockPlanesDedupes(t *testing.T) {
	m := newShardedMgr(t, 4, 64)
	release := m.lockPlanes([]wal.ShardID{3, 1, 3, 1, 1})
	for _, id := range []int{1, 3} {
		if m.planes[id].mu.TryLock() {
			t.Fatalf("plane %d not held during lockPlanes window", id)
		}
	}
	requireFree := []int{0, 2}
	for _, id := range requireFree {
		if !m.planes[id].mu.TryLock() {
			t.Fatalf("plane %d held though not requested", id)
		}
		m.planes[id].mu.Unlock()
	}
	release()
	release() // idempotent
	requirePlanesFree(t, m, "after release")
}
