// Concurrency stress for the session layer: 16 goroutines commit
// through tc.Session under -race, with checkpoints racing alongside,
// then the engine crashes and recovers; per-transaction atomicity must
// hold in the recovered state (no aborted or uncommitted write
// survives, committed writes do).
package tc_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"logrec/internal/core"
	"logrec/internal/engine"
)

const (
	stressClients = 16
	stressTxns    = 25
	stressRows    = 2048
	hotKeys       = 16
)

func privateBase(client int) uint64 { return uint64(1024 + client*32) }

func TestSessionConcurrentCommitAtomicityAfterCrash(t *testing.T) {
	cfg := engine.DefaultConfig()
	cfg.CachePages = 256
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(stressRows, func(k uint64) []byte {
		return []byte(fmt.Sprintf("init-%06d", k))
	}); err != nil {
		t.Fatal(err)
	}

	mgr := eng.NewSessionManager(0)

	var (
		tagMu     sync.Mutex
		committed = map[string]bool{}
		aborted   = map[string]bool{}
	)
	// expectPrivate[key] = the tag of the last committed txn that wrote
	// it; private partitions are disjoint per client, so each entry is
	// only written by its owner goroutine (guarded by tagMu anyway).
	expectPrivate := map[uint64]string{}

	var wg sync.WaitGroup
	for c := 0; c < stressClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := mgr.NewSession()
			for i := 0; i < stressTxns; i++ {
				tag := fmt.Sprintf("c%02d-t%03d", c, i)
				priv := privateBase(c) + uint64(i%8)
				hot := uint64((c + i) % hotKeys)
				ok := false
				for attempt := 0; attempt < 8 && !ok; attempt++ {
					if err := sess.Begin(); err != nil {
						t.Errorf("begin: %v", err)
						return
					}
					err := sess.Update(1, priv, []byte(tag))
					if err == nil {
						err = sess.Update(1, hot, []byte(tag))
					}
					if err != nil {
						// Lock conflict (no-wait): roll back and retry.
						if abErr := sess.Abort(); abErr != nil {
							t.Errorf("abort: %v", abErr)
							return
						}
						time.Sleep(time.Duration(attempt+1) * 100 * time.Microsecond)
						continue
					}
					if i%7 == 3 {
						// Deliberate abort: this tag must never survive.
						if err := sess.Abort(); err != nil {
							t.Errorf("abort: %v", err)
							return
						}
						tagMu.Lock()
						aborted[tag] = true
						tagMu.Unlock()
						ok = true
						continue
					}
					if err := sess.Commit(); err != nil {
						t.Errorf("commit: %v", err)
						return
					}
					tagMu.Lock()
					committed[tag] = true
					expectPrivate[priv] = tag
					tagMu.Unlock()
					ok = true
				}
			}
		}(c)
	}

	// Checkpoints race with the committing sessions.
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		for i := 0; i < 5; i++ {
			time.Sleep(2 * time.Millisecond)
			if err := mgr.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-ckptDone
	if t.Failed() {
		return
	}

	st := eng.Stats().WAL
	if st.Flushes == 0 {
		t.Fatal("no group-commit flushes recorded")
	}
	t.Logf("group commit: %d commits, %d flushes, %.2f records/flush, max batch %d",
		st.Commits, st.Flushes, st.RecordsPerFlush(), st.MaxBatch)

	// An uncommitted transaction in flight at the crash.
	loser := mgr.NewSession()
	if err := loser.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := loser.Update(1, 500, []byte("UNCOMMITTED")); err != nil {
		t.Fatal(err)
	}
	eng.TC.SendEOSL() // its records reach the stable log anyway

	crash := eng.Crash()
	recovered, _, err := core.Recover(crash, core.Log2, core.DefaultOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}

	read := func(k uint64) string {
		v, found, err := recovered.DC.Tree().Search(k)
		if err != nil || !found {
			t.Fatalf("key %d lost after recovery: found=%v err=%v", k, found, err)
		}
		return string(v)
	}

	// Private keys: exactly the last committed tag (or untouched).
	for k, want := range expectPrivate {
		if got := read(k); got != want {
			t.Errorf("private key %d = %q, want %q", k, got, want)
		}
	}
	// Hot keys: some committed tag or the initial value — never an
	// aborted or uncommitted write.
	for k := uint64(0); k < hotKeys; k++ {
		got := read(k)
		if got == fmt.Sprintf("init-%06d", k) {
			continue
		}
		if aborted[got] {
			t.Errorf("hot key %d holds aborted txn's write %q", k, got)
		} else if !committed[got] {
			t.Errorf("hot key %d holds unknown/uncommitted write %q", k, got)
		}
	}
	if got := read(500); got == "UNCOMMITTED" {
		t.Error("uncommitted in-flight write survived recovery")
	}

	// The recovered engine serves new transactions.
	txn := recovered.TC.Begin()
	if err := recovered.TC.Update(txn, cfg.TableID, 500, []byte("post-recovery")); err != nil {
		t.Fatal(err)
	}
	if err := recovered.TC.Commit(txn); err != nil {
		t.Fatal(err)
	}
}

// TestSessionLockConflictIsImmediate pins the no-wait discipline: two
// sessions contending on one key see ErrLockConflict rather than
// blocking.
func TestSessionLockConflictIsImmediate(t *testing.T) {
	cfg := engine.DefaultConfig()
	cfg.CachePages = 64
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(128, func(k uint64) []byte { return []byte("v") }); err != nil {
		t.Fatal(err)
	}
	mgr := eng.NewSessionManager(0)

	a, b := mgr.NewSession(), mgr.NewSession()
	if err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := b.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := a.Update(1, 7, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := b.Update(1, 7, []byte("b")); err == nil {
		t.Fatal("expected lock conflict, got nil")
	}
	if err := b.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	// After a commits, b can take the key.
	if err := b.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := b.Update(1, 7, []byte("b2")); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	v, _, err := eng.DC.Read(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "b2" {
		t.Fatalf("key 7 = %q, want %q", v, "b2")
	}
}

// TestSessionSplitRangeUnderTraffic races the range migration (which
// holds only the two affected shards' planes) against committing
// sessions on a 2-shard engine: every committed write must survive the
// crash, including writes to the migrated range, and the re-route must
// be in force afterwards. Both sides retry on ErrLockConflict — the
// no-wait lock table refuses whichever of migration and session asks
// second, which is exactly how the migration stays atomic without
// stalling the whole engine.
func TestSessionSplitRangeUnderTraffic(t *testing.T) {
	const rows = 2048
	cfg := engine.DefaultConfig()
	cfg.CachePages = 256
	cfg.Shards = 2
	cfg.KeySpan = rows
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(rows, func(k uint64) []byte {
		return []byte(fmt.Sprintf("init-%06d", k))
	}); err != nil {
		t.Fatal(err)
	}
	mgr := eng.NewSessionManager(0)

	// Shard 0 owns [0, 1024); migrate [700, 1024) to shard 1 while
	// clients keep updating keys on both sides of the moving boundary.
	const splitAt = 700
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		oracle   = map[uint64][]byte{}
		firstErr error
		errOnce  sync.Once
	)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := mgr.NewSession()
			for i := 0; i < 20; i++ {
				// Keys straddle the split point, disjoint per client.
				k := uint64(splitAt - 80 + c*20 + i%20)
				v := []byte(fmt.Sprintf("c%d-i%d", c, i))
				for attempt := 0; ; attempt++ {
					if attempt == 50 {
						errOnce.Do(func() { firstErr = fmt.Errorf("client %d key %d: starved after %d attempts", c, k, attempt) })
						return
					}
					if err := sess.Begin(); err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
					if err := sess.Update(cfg.TableID, k, v); err != nil {
						// Conflict with the in-flight migration: roll
						// back and retry.
						if abErr := sess.Abort(); abErr != nil {
							errOnce.Do(func() { firstErr = abErr })
							return
						}
						time.Sleep(time.Duration(attempt+1) * 50 * time.Microsecond)
						continue
					}
					if err := sess.Commit(); err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
					break
				}
				mu.Lock()
				oracle[k] = v
				mu.Unlock()
			}
		}(c)
	}
	// The migration contends with session row locks; like any no-wait
	// caller it retries until it wins the range.
	for attempt := 0; ; attempt++ {
		err := mgr.SplitRange(cfg.TableID, splitAt, 1)
		if err == nil {
			break
		}
		if attempt == 200 {
			t.Fatalf("migration starved: %v", err)
		}
		time.Sleep(200 * time.Microsecond)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if got := eng.Set.Locate(splitAt); got != 1 {
		t.Fatalf("post-split owner of %d = %d, want 1", splitAt, got)
	}

	cs := eng.Crash()
	rec, _, err := core.Recover(cs, core.Log1, core.DefaultOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Set.Locate(splitAt); got != 1 {
		t.Fatalf("recovered owner of %d = %d, want 1", splitAt, got)
	}
	for k, want := range oracle {
		v, found, err := rec.Set.Read(cfg.TableID, k)
		if err != nil || !found {
			t.Fatalf("committed key %d lost (found=%v err=%v)", k, found, err)
		}
		if string(v) != string(want) {
			t.Fatalf("key %d: got %q, want %q", k, v, want)
		}
	}
}
