// Range scans racing range migrations. Session.ScanRange holds the
// planes of every shard its range overlaps, so a scan straddling a
// shard boundary must observe either the committed pre-image or the
// committed post-image of any concurrent migration or transaction —
// never a torn mixture: no missing keys, no duplicates, no mix of two
// writers' transactions. These tests hammer exactly that under -race:
// one with explicit SplitRange calls flipping a boundary inside the
// scanned range, one with the load-driven auto-split balancer
// migrating a hot range under full-table scans.
package tc_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"logrec/internal/engine"
	"logrec/internal/tc"
	"logrec/internal/wal"
)

// TestScanRangeAtomicAcrossSplitRange scans [900,1200] — straddling
// the 1024 boundary of a 4×1024 key space — while a splitter flips the
// ownership of [1100,...] between shards and writers rewrite the whole
// range transactionally. Every successful scan must see the full key
// sequence with one writer's tag throughout.
func TestScanRangeAtomicAcrossSplitRange(t *testing.T) {
	const (
		rows     = 4096
		lo, hi   = uint64(900), uint64(1200)
		duration = 800 * time.Millisecond
	)
	cfg := engine.DefaultConfig()
	cfg.Shards = 4
	cfg.KeySpan = rows
	cfg.CachePages = 512
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(rows, func(k uint64) []byte {
		return []byte("tag-initial")
	}); err != nil {
		t.Fatal(err)
	}
	mgr := eng.NewSessionManager(0)

	var (
		stop     atomic.Bool
		wg       sync.WaitGroup
		scans    atomic.Int64
		splits   atomic.Int64
		rewrites atomic.Int64
	)

	// Writer: rewrite the whole scanned range in one transaction with a
	// per-txn tag; abort and retry on conflicts with scanners.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess := mgr.NewSession()
		for gen := 0; !stop.Load(); gen++ {
			tag := []byte(fmt.Sprintf("tag-%06d", gen))
			if err := sess.Begin(); err != nil {
				t.Error(err)
				return
			}
			failed := false
			for k := lo; k <= hi; k++ {
				if err := sess.Update(cfg.TableID, k, tag); err != nil {
					if !errors.Is(err, tc.ErrLockConflict) {
						t.Error(err)
						return
					}
					failed = true
					break
				}
			}
			if failed {
				if err := sess.Abort(); err != nil {
					t.Error(err)
					return
				}
				time.Sleep(50 * time.Microsecond)
				continue
			}
			if err := sess.Commit(); err != nil {
				t.Error(err)
				return
			}
			rewrites.Add(1)
		}
	}()

	// Splitter: flip ownership of the range's tail between shards so
	// the scanned range keeps changing owner mid-run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		targets := []wal.ShardID{1, 2, 3, 0}
		for i := 0; !stop.Load(); i++ {
			to := targets[i%len(targets)]
			if err := mgr.SplitRange(cfg.TableID, 1100, to); err != nil {
				// The migration's system transaction row-locks the range
				// it moves; a writer holding any of those rows wins
				// (no-wait locking) and the split retries next round.
				if !errors.Is(err, tc.ErrLockConflict) {
					t.Error(err)
					return
				}
			} else {
				splits.Add(1)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Scanners: each successful scan must be complete and single-tag.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := mgr.NewSession()
			for !stop.Load() {
				if err := sess.Begin(); err != nil {
					t.Error(err)
					return
				}
				var keys []uint64
				var tags []string
				err := sess.ScanRange(cfg.TableID, lo, hi, nil, func(k uint64, v []byte) error {
					keys = append(keys, k)
					tags = append(tags, string(v))
					return nil
				})
				if err != nil {
					if !errors.Is(err, tc.ErrLockConflict) {
						t.Error(err)
						return
					}
					if err := sess.Abort(); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				if err := sess.Commit(); err != nil {
					t.Error(err)
					return
				}
				if len(keys) != int(hi-lo+1) {
					t.Errorf("torn range: scan saw %d keys, want %d", len(keys), hi-lo+1)
					return
				}
				for i, k := range keys {
					if k != lo+uint64(i) {
						t.Errorf("torn range: position %d has key %d, want %d", i, k, lo+uint64(i))
						return
					}
					if tags[i] != tags[0] {
						t.Errorf("torn transaction: key %d has tag %q, first key %q", k, tags[i], tags[0])
						return
					}
				}
				scans.Add(1)
			}
		}()
	}

	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	if scans.Load() == 0 || splits.Load() == 0 || rewrites.Load() == 0 {
		t.Fatalf("race unexercised: %d scans, %d splits, %d rewrites",
			scans.Load(), splits.Load(), rewrites.Load())
	}
	t.Logf("%d complete scans raced %d splits and %d range rewrites",
		scans.Load(), splits.Load(), rewrites.Load())
}

// TestScanAllAtomicUnderAutoSplit runs full-table scans while the
// load-driven balancer migrates a hot range under zipf-like writer
// pressure. Scans must always see every key exactly once.
func TestScanAllAtomicUnderAutoSplit(t *testing.T) {
	const (
		rows     = 8192
		duration = 800 * time.Millisecond
	)
	cfg := engine.DefaultConfig()
	cfg.Shards = 4
	cfg.KeySpan = rows
	cfg.CachePages = 512
	cfg.AutoSplit = true
	// Small windows with a low qualifying floor: the -race scheduler
	// throttles writer throughput, and the balancer must still see
	// enough qualifying windows to split and migrate mid-test.
	// A full-table scan holds every plane, so writers only run in the
	// gaps between scans; tiny windows with a one-op floor let the
	// balancer qualify on that thin trickle under the -race scheduler.
	cfg.AutoSplitCfg = tc.AutoSplitConfig{Interval: 2 * time.Millisecond, MinOps: 1, MaxMoveSpan: 1024}
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(rows, func(k uint64) []byte {
		return []byte(fmt.Sprintf("v-%05d", k))
	}); err != nil {
		t.Fatal(err)
	}
	mgr := eng.NewSessionManager(0)
	defer eng.Balancer().Stop()

	var (
		stop  atomic.Bool
		wg    sync.WaitGroup
		scans atomic.Int64
	)
	// Writers: hammer a narrow hot slice so the balancer migrates it.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := mgr.NewSession()
			for i := 0; !stop.Load(); i++ {
				if err := sess.Begin(); err != nil {
					t.Error(err)
					return
				}
				k := uint64((c*977 + i) % 512) // hot: first shard's low slice
				if err := sess.Update(cfg.TableID, k, []byte(fmt.Sprintf("w-%d-%d", c, i))); err != nil {
					if !errors.Is(err, tc.ErrLockConflict) {
						t.Error(err)
						return
					}
					if err := sess.Abort(); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				if err := sess.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		sess := mgr.NewSession()
		for !stop.Load() {
			if err := sess.Begin(); err != nil {
				t.Error(err)
				return
			}
			next := uint64(0)
			err := sess.ScanRange(cfg.TableID, 0, rows-1, nil, func(k uint64, _ []byte) error {
				if k != next {
					return fmt.Errorf("torn range: saw key %d, want %d", k, next)
				}
				next++
				return nil
			})
			if err != nil {
				if !errors.Is(err, tc.ErrLockConflict) {
					t.Error(err)
					return
				}
				if err := sess.Abort(); err != nil {
					t.Error(err)
					return
				}
				continue
			}
			if err := sess.Commit(); err != nil {
				t.Error(err)
				return
			}
			if next != rows {
				t.Errorf("torn range: scan ended at %d of %d keys", next, rows)
				return
			}
			scans.Add(1)
			// Breathe between scans: a full-table scan holds every
			// plane, and back-to-back scans would lock writers (and the
			// balancer's migrations) out of the run entirely.
			time.Sleep(5 * time.Millisecond)
		}
	}()

	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	if scans.Load() == 0 {
		t.Fatal("no full scan completed")
	}
	st := eng.Stats()
	t.Logf("%d complete scans; %d windows, %d migrations (%d failed), %d boundary splits, hot share %.2f→%.2f",
		scans.Load(), st.AutoSplit.Windows, st.AutoSplit.Migrations, st.AutoSplit.FailedMigrations,
		st.AutoSplit.BoundarySplits, st.AutoSplit.FirstHotShare, st.AutoSplit.LastHotShare)
}
