// Concurrent TC sessions. The recovery experiments drive the TC
// single-threaded over virtual time; this file adds the multi-client
// write path of a served system: N goroutines each own a Session and
// run Begin/Update/Commit loops concurrently.
//
// The write path is shard-parallel: there is no engine-wide mutex.
// Each shard has its own admission plane — a mutex serializing only
// that shard's DC (tree, pool) — so sessions touching different shards
// never contend, and the transaction table is hash-sharded so
// Begin/Commit never serialize behind data operations.
//
// Concurrency discipline (lock order: router → shard planes in
// ascending shard-ID order → transaction-table shard):
//
//   - logical locks are acquired in the sharded LockTable before any
//     plane; the table is no-wait (conflicts fail immediately), so it
//     can never participate in a deadlock cycle;
//   - a data operation routes its key, locks exactly the owning shard's
//     plane, and revalidates the route under the plane (a concurrent
//     migration may have moved the range; see lockPlane);
//   - multi-plane operations — Abort over the transaction's touched
//     shards, SplitRange over {from, to}, Checkpoint over all shards —
//     acquire planes in ascending shard-ID order, which with the
//     no-wait lock table is the whole deadlock-freedom argument;
//   - commit durability waits happen outside every plane through the
//     wal.GroupCommitter, which is what lets many sessions overlap
//     their commit waits and share one log force (group commit).
package tc

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"logrec/internal/wal"
)

// plane is one shard's admission unit: the mutex serializing the
// shard's DC, plus counters for the ops admitted and the real time
// spent holding the mutex. BusyNS is what a per-shard core would have
// been busy for — the shard sweep's modeled-parallel-throughput signal
// on hosts with fewer cores than shards.
type plane struct {
	mu     sync.Mutex
	ops    atomic.Int64
	busyNS atomic.Int64
}

// release adds the held time to the busy counter and unlocks.
func (p *plane) release(start time.Time) {
	p.busyNS.Add(time.Since(start).Nanoseconds())
	p.mu.Unlock()
}

// PlaneStats is one shard plane's counter snapshot.
type PlaneStats struct {
	// Shard is the plane's shard ID.
	Shard wal.ShardID
	// Ops is the number of plane acquisitions (data operations plus
	// multi-plane operations that included this shard).
	Ops int64
	// BusyNS is the cumulative real time the plane's mutex was held,
	// in nanoseconds.
	BusyNS int64
}

// SessionManager multiplexes concurrent sessions over one TC: a router
// in front of per-shard admission planes. Create it once, then
// NewSession per client goroutine.
type SessionManager struct {
	tc *TC
	gc *wal.GroupCommitter

	// planes holds one admission plane per shard, indexed by shard ID.
	planes []*plane
}

// NewSessionManager wraps t for concurrent use, routing every log
// append through gc so commits batch.
func NewSessionManager(t *TC, gc *wal.GroupCommitter) *SessionManager {
	t.SetAppender(gc)
	planes := make([]*plane, t.dc.NumShards())
	for i := range planes {
		planes[i] = &plane{}
	}
	return &SessionManager{tc: t, gc: gc, planes: planes}
}

// TC returns the underlying transactional component.
func (m *SessionManager) TC() *TC { return m.tc }

// GroupCommitter returns the committer batching this manager's flushes.
//
// Deprecated: tools should read engine.Stats().WAL instead of reaching
// into the commit path; the accessor remains for the session layer's
// own tests.
func (m *SessionManager) GroupCommitter() *wal.GroupCommitter { return m.gc }

// CommitStats returns the group committer's batching counters
// (engine.Stats aggregation path).
func (m *SessionManager) CommitStats() wal.GroupCommitStats { return m.gc.Stats() }

// PlaneStats snapshots every shard plane's counters, indexed by shard.
func (m *SessionManager) PlaneStats() []PlaneStats {
	out := make([]PlaneStats, len(m.planes))
	for i, p := range m.planes {
		out[i] = PlaneStats{Shard: wal.ShardID(i), Ops: p.ops.Load(), BusyNS: p.busyNS.Load()}
	}
	return out
}

// lockPlane locks the plane owning key and returns it with the
// acquisition time (for busy accounting; pass it to plane.release).
//
// Routing and locking cannot be atomic, so the route is revalidated
// under the plane: if a concurrent migration moved the key's range
// between the lookup and the lock, drop the plane and retry. This
// converges because a migration flips routing only while holding both
// the old and the new owner's planes — once we hold the plane the
// lookup named, the route either still agrees (we won) or has settled
// on another shard (we retry against the new owner).
func (m *SessionManager) lockPlane(key uint64) (wal.ShardID, *plane, time.Time) {
	for {
		sh := m.tc.dc.LocateHit(key)
		p := m.planes[sh]
		p.mu.Lock()
		if m.tc.dc.Locate(key) == sh {
			p.ops.Add(1)
			return sh, p, time.Now()
		}
		p.mu.Unlock()
	}
}

// lockPlanes acquires the planes of ids (deduplicated) in ascending
// shard-ID order — the only order any multi-plane path uses — and
// returns the function releasing them all in reverse. Every caller
// must guarantee the release runs on every path, error or not: a
// leaked plane wedges its shard for the life of the process. The
// release function is idempotent.
func (m *SessionManager) lockPlanes(ids []wal.ShardID) func() {
	sorted := append([]wal.ShardID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := 0
	for i, id := range sorted {
		if i == 0 || id != sorted[n-1] {
			sorted[n] = id
			n++
		}
	}
	sorted = sorted[:n]
	for _, id := range sorted {
		m.planes[id].mu.Lock()
		m.planes[id].ops.Add(1)
	}
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			held := time.Since(start).Nanoseconds()
			for i := len(sorted) - 1; i >= 0; i-- {
				p := m.planes[sorted[i]]
				p.busyNS.Add(held)
				p.mu.Unlock()
			}
		})
	}
}

// allShards returns every shard ID (Checkpoint's plane set).
func (m *SessionManager) allShards() []wal.ShardID {
	ids := make([]wal.ShardID, len(m.planes))
	for i := range ids {
		ids[i] = wal.ShardID(i)
	}
	return ids
}

// Checkpoint runs the TC checkpoint protocol holding every shard plane,
// so no data operation is in flight anywhere while the begin record,
// the RSSP broadcast and the end record are written. Commits need no
// plane and keep flowing; a commit record racing the active-table
// snapshot lands after the begin-checkpoint LSN, where the redo scan
// finds it regardless.
func (m *SessionManager) Checkpoint() error {
	release := m.lockPlanes(m.allShards())
	defer release()
	return m.tc.Checkpoint()
}

// SplitRange runs the TC's range migration holding the planes of the
// shard being split and the target shard, so no session operation can
// slip between the migration's range scan and its per-row locks (a row
// inserted in that window would be stranded on the old shard after the
// re-route). Only those two shards stall; the rest of the engine keeps
// running. Concurrent SplitRange calls may move the range between the
// owner lookup and the plane locks, so the owner is revalidated under
// the planes, like lockPlane does for a single key.
func (m *SessionManager) SplitRange(table wal.TableID, at uint64, to wal.ShardID) error {
	if int(to) >= len(m.planes) {
		return fmt.Errorf("tc: split target shard %d out of range (have %d)", to, len(m.planes))
	}
	for {
		_, _, from := m.tc.dc.RangeOf(at)
		release := m.lockPlanes([]wal.ShardID{from, to})
		if _, _, cur := m.tc.dc.RangeOf(at); cur == from {
			err := m.tc.SplitRange(table, at, to)
			release()
			return err
		}
		release()
	}
}

// Session is one client's handle: a single goroutine drives a session,
// one transaction at a time. Different sessions are independent.
type Session struct {
	mgr *SessionManager
	txn *Txn

	// touched marks the shards the current transaction has run data
	// operations on (indexed by shard ID), and shards lists them;
	// Abort must hold exactly those planes to undo. CLRs target the
	// shard recorded in each log record, and every such record was
	// written under one of these planes, so the set covers the whole
	// backchain even across migrations.
	touched []bool
	shards  []wal.ShardID
}

// NewSession creates a session. Safe to call concurrently.
func (m *SessionManager) NewSession() *Session {
	return &Session{mgr: m, touched: make([]bool, len(m.planes))}
}

// Txn returns the session's current transaction (nil between
// transactions).
func (s *Session) Txn() *Txn { return s.txn }

// Begin starts the session's next transaction. The busy check runs
// before anything is acquired, so the ErrSessionBusy return holds no
// plane, no lock and no transaction-table entry.
func (s *Session) Begin() error {
	if s.txn != nil && s.txn.status == StatusActive {
		return ErrSessionBusy
	}
	s.txn = s.mgr.tc.Begin()
	for i := range s.touched {
		s.touched[i] = false
	}
	s.shards = s.shards[:0]
	return nil
}

// note records that the transaction ran a data operation on sh. The
// caller holds sh's plane.
func (s *Session) note(sh wal.ShardID) {
	if !s.touched[sh] {
		s.touched[sh] = true
		s.shards = append(s.shards, sh)
	}
}

// checkActive validates the session's transaction without touching the
// shared transaction table (the session goroutine is the only writer of
// its own txn's status).
func (s *Session) checkActive() error {
	if s.txn == nil || s.txn.status != StatusActive {
		return ErrTxnNotActive
	}
	return nil
}

// Read returns the value under (table, key) with a shared lock.
func (s *Session) Read(table wal.TableID, key uint64) ([]byte, bool, error) {
	if err := s.checkActive(); err != nil {
		return nil, false, err
	}
	if err := s.mgr.tc.locks.Acquire(s.txn.ID, table, key, LockShared); err != nil {
		return nil, false, err
	}
	sh, p, start := s.mgr.lockPlane(key)
	defer p.release(start)
	return s.mgr.tc.dc.At(sh).Read(table, key)
}

// ScanRange streams the rows with lo ≤ key ≤ hi through fn in key
// order, pushing pred down into each shard's B-tree iterator (nil pred
// accepts everything). It holds the planes of every shard the range
// overlaps for the duration of the scan, acquired in ascending
// shard-ID order like every multi-plane path. Because a range
// migration must hold the current owner's plane to move rows, a scan
// holding those planes observes either the whole pre-migration range
// or the whole post-migration range — never a torn mixture.
//
// The owner set is computed before the planes are taken and
// revalidated under them: if a concurrent SplitRange (or the
// auto-split balancer) re-routed part of the range in the window, the
// planes are dropped and the scan retries against the new owners. This
// converges for the same reason lockPlane does — migrations only flip
// routes while holding the affected planes.
//
// Rows fn sees are member-locked shared via the transaction; the value
// slice is only valid during the call.
func (s *Session) ScanRange(table wal.TableID, lo, hi uint64, pred func(key uint64, val []byte) bool, fn func(key uint64, val []byte) error) error {
	if err := s.checkActive(); err != nil {
		return err
	}
	m := s.mgr
	for {
		owners := m.tc.dc.OwnersIn(lo, hi)
		release := m.lockPlanes(owners)
		if !sameShardIDs(owners, m.tc.dc.OwnersIn(lo, hi)) {
			release()
			continue
		}
		err := m.tc.ScanRange(s.txn, table, lo, hi, pred, fn)
		release()
		return err
	}
}

// sameShardIDs reports whether two sorted, deduplicated shard-ID
// slices (as returned by Set.OwnersIn) are equal.
func sameShardIDs(a, b []wal.ShardID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Update replaces the value under (table, key) within the session's
// transaction. Lock conflicts return ErrLockConflict immediately
// (no-wait); callers abort and retry. The logical lock is taken before
// the shard plane, so a conflict costs no plane time — and a failed
// acquisition leaves nothing to release.
func (s *Session) Update(table wal.TableID, key uint64, newVal []byte) error {
	if err := s.checkActive(); err != nil {
		return err
	}
	if err := s.mgr.tc.locks.Acquire(s.txn.ID, table, key, LockExclusive); err != nil {
		return err
	}
	sh, p, start := s.mgr.lockPlane(key)
	defer p.release(start)
	s.note(sh)
	return s.mgr.tc.applyUpdateAt(sh, s.txn, table, key, newVal)
}

// Insert adds a new row within the session's transaction.
func (s *Session) Insert(table wal.TableID, key uint64, val []byte) error {
	if err := s.checkActive(); err != nil {
		return err
	}
	if err := s.mgr.tc.locks.Acquire(s.txn.ID, table, key, LockExclusive); err != nil {
		return err
	}
	sh, p, start := s.mgr.lockPlane(key)
	defer p.release(start)
	s.note(sh)
	return s.mgr.tc.applyInsertAt(sh, s.txn, table, key, val)
}

// Delete removes a row within the session's transaction.
func (s *Session) Delete(table wal.TableID, key uint64) error {
	if err := s.checkActive(); err != nil {
		return err
	}
	if err := s.mgr.tc.locks.Acquire(s.txn.ID, table, key, LockExclusive); err != nil {
		return err
	}
	sh, p, start := s.mgr.lockPlane(key)
	defer p.release(start)
	s.note(sh)
	return s.mgr.tc.applyDeleteAt(sh, s.txn, table, key)
}

// Commit ends the transaction. No plane is needed: the commit record
// is a TC-only append on the thread-safe log, and the transaction
// table is sharded — so commits never serialize behind data
// operations, not even on their own shards. The session then waits for
// a group-commit batch flush to cover the record, so concurrent
// committers share one log force and one EOSL push.
//
// Locks release before the durability wait (early lock release). That
// is safe because the log flushes in prefix order: any transaction that
// read this one's writes appends its own commit record later, so it
// cannot become durable unless this commit is durable too.
func (s *Session) Commit() error {
	if err := s.checkActive(); err != nil {
		return err
	}
	t := s.txn
	m := s.mgr
	lsn := m.tc.app.MustAppend(&wal.CommitRec{TxnID: t.ID, PrevLSN: t.LastLSN()})
	t.setLastLSN(lsn)
	m.tc.finishTxn(t, StatusCommitted)

	m.tc.locks.ReleaseAll(t.ID)
	m.gc.WaitStable(lsn)
	s.txn = nil
	return nil
}

// Abort rolls the transaction back (logical undo with CLRs) holding
// the planes of every shard the transaction touched, acquired in
// ascending shard-ID order. The release is deferred so every return —
// including a failed rollback — frees all planes. The abort record
// needs no force: it becomes stable with the next batch, and recovery
// rolls back uncommitted transactions regardless.
func (s *Session) Abort() error {
	if err := s.checkActive(); err != nil {
		return err
	}
	t := s.txn
	m := s.mgr
	release := m.lockPlanes(s.shards)
	defer release()
	if err := m.tc.rollback(t); err != nil {
		return err
	}
	lsn := m.tc.app.MustAppend(&wal.AbortRec{TxnID: t.ID, PrevLSN: t.LastLSN()})
	t.setLastLSN(lsn)
	m.tc.finishTxn(t, StatusAborted)
	release()

	m.tc.locks.ReleaseAll(t.ID)
	s.txn = nil
	return nil
}
