// Concurrent TC sessions. The recovery experiments drive the TC
// single-threaded over virtual time; this file adds the multi-client
// write path of a served system: N goroutines each own a Session and
// run Begin/Update/Commit loops concurrently.
//
// Concurrency discipline (lock order: engine mutex → component locks):
//
//   - logical locks are acquired in the sharded LockTable *outside* the
//     engine mutex, so lock traffic from different sessions only
//     contends per shard;
//   - DC data operations (B-tree, buffer pool, virtual clock) and the
//     transaction table are serialized behind the SessionManager's
//     engine mutex — the DC remains single-threaded internally, as in
//     the paper's prototype;
//   - commit durability waits happen *outside* the engine mutex through
//     the wal.GroupCommitter, which is what lets many sessions overlap
//     their commit waits and share one log force (group commit).
package tc

import (
	"errors"
	"sync"

	"logrec/internal/wal"
)

// ErrSessionBusy indicates Begin on a session whose transaction is
// still active.
var ErrSessionBusy = errors.New("tc: session already has an active transaction")

// SessionManager multiplexes concurrent sessions over one TC. Create it
// once, then NewSession per client goroutine.
type SessionManager struct {
	tc *TC
	gc *wal.GroupCommitter

	// mu is the engine mutex: it serializes the DC (tree, pool, clock),
	// the log tail ordering relative to page stamps, and the TC's
	// transaction table.
	mu sync.Mutex
}

// NewSessionManager wraps tc for concurrent use, routing every log
// append through gc so commits batch.
func NewSessionManager(t *TC, gc *wal.GroupCommitter) *SessionManager {
	t.SetAppender(gc)
	return &SessionManager{tc: t, gc: gc}
}

// TC returns the underlying transactional component.
func (m *SessionManager) TC() *TC { return m.tc }

// GroupCommitter returns the committer batching this manager's flushes.
func (m *SessionManager) GroupCommitter() *wal.GroupCommitter { return m.gc }

// Checkpoint runs the TC checkpoint protocol under the engine mutex.
func (m *SessionManager) Checkpoint() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tc.Checkpoint()
}

// SplitRange runs the TC's range migration under the engine mutex, so
// no session operation can slip between the migration's range scan and
// its per-row locks (a row inserted in that window would be stranded on
// the old shard after the re-route). Sessions stall for the duration of
// the move; the moved range is small by design.
func (m *SessionManager) SplitRange(table wal.TableID, at uint64, to wal.ShardID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tc.SplitRange(table, at, to)
}

// Session is one client's handle: a single goroutine drives a session,
// one transaction at a time. Different sessions are independent.
type Session struct {
	mgr *SessionManager
	txn *Txn
}

// NewSession creates a session. Safe to call concurrently.
func (m *SessionManager) NewSession() *Session { return &Session{mgr: m} }

// Txn returns the session's current transaction (nil between
// transactions).
func (s *Session) Txn() *Txn { return s.txn }

// Begin starts the session's next transaction.
func (s *Session) Begin() error {
	if s.txn != nil && s.txn.status == StatusActive {
		return ErrSessionBusy
	}
	s.mgr.mu.Lock()
	s.txn = s.mgr.tc.Begin()
	s.mgr.mu.Unlock()
	return nil
}

// checkActive validates the session's transaction without touching the
// shared transaction table (the session goroutine is the only writer of
// its own txn's status).
func (s *Session) checkActive() error {
	if s.txn == nil || s.txn.status != StatusActive {
		return ErrTxnNotActive
	}
	return nil
}

// Read returns the value under (table, key) with a shared lock.
func (s *Session) Read(table wal.TableID, key uint64) ([]byte, bool, error) {
	if err := s.checkActive(); err != nil {
		return nil, false, err
	}
	if err := s.mgr.tc.locks.Acquire(s.txn.ID, table, key, LockShared); err != nil {
		return nil, false, err
	}
	s.mgr.mu.Lock()
	defer s.mgr.mu.Unlock()
	return s.mgr.tc.dc.Read(table, key)
}

// Update replaces the value under (table, key) within the session's
// transaction. Lock conflicts return ErrLockConflict immediately
// (no-wait); callers abort and retry.
func (s *Session) Update(table wal.TableID, key uint64, newVal []byte) error {
	if err := s.checkActive(); err != nil {
		return err
	}
	if err := s.mgr.tc.locks.Acquire(s.txn.ID, table, key, LockExclusive); err != nil {
		return err
	}
	s.mgr.mu.Lock()
	defer s.mgr.mu.Unlock()
	return s.mgr.tc.applyUpdate(s.txn, table, key, newVal)
}

// Insert adds a new row within the session's transaction.
func (s *Session) Insert(table wal.TableID, key uint64, val []byte) error {
	if err := s.checkActive(); err != nil {
		return err
	}
	if err := s.mgr.tc.locks.Acquire(s.txn.ID, table, key, LockExclusive); err != nil {
		return err
	}
	s.mgr.mu.Lock()
	defer s.mgr.mu.Unlock()
	return s.mgr.tc.applyInsert(s.txn, table, key, val)
}

// Delete removes a row within the session's transaction.
func (s *Session) Delete(table wal.TableID, key uint64) error {
	if err := s.checkActive(); err != nil {
		return err
	}
	if err := s.mgr.tc.locks.Acquire(s.txn.ID, table, key, LockExclusive); err != nil {
		return err
	}
	s.mgr.mu.Lock()
	defer s.mgr.mu.Unlock()
	return s.mgr.tc.applyDelete(s.txn, table, key)
}

// Commit ends the transaction: the commit record is appended under the
// engine mutex, then the session waits for a group-commit batch flush
// to cover it — outside the mutex, so concurrent committers share one
// log force and one EOSL push.
//
// Locks release before the durability wait (early lock release). That
// is safe because the log flushes in prefix order: any transaction that
// read this one's writes appends its own commit record later, so it
// cannot become durable unless this commit is durable too.
func (s *Session) Commit() error {
	if err := s.checkActive(); err != nil {
		return err
	}
	t := s.txn
	m := s.mgr
	m.mu.Lock()
	lsn := m.tc.app.MustAppend(&wal.CommitRec{TxnID: t.ID, PrevLSN: t.lastLSN})
	t.lastLSN = lsn
	m.tc.finishTxn(t, StatusCommitted)
	m.mu.Unlock()

	m.tc.locks.ReleaseAll(t.ID)
	m.gc.WaitStable(lsn)
	s.txn = nil
	return nil
}

// Abort rolls the transaction back (logical undo with CLRs, under the
// engine mutex) and releases its locks. The abort record needs no
// force: it becomes stable with the next batch, and recovery rolls back
// uncommitted transactions regardless.
func (s *Session) Abort() error {
	if err := s.checkActive(); err != nil {
		return err
	}
	t := s.txn
	m := s.mgr
	m.mu.Lock()
	if err := m.tc.rollback(t); err != nil {
		m.mu.Unlock()
		return err
	}
	lsn := m.tc.app.MustAppend(&wal.AbortRec{TxnID: t.ID, PrevLSN: t.lastLSN})
	t.lastLSN = lsn
	m.tc.finishTxn(t, StatusAborted)
	m.mu.Unlock()

	m.tc.locks.ReleaseAll(t.ID)
	s.txn = nil
	return nil
}
