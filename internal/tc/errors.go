// Session-layer error values, unified in one place. Every error the
// transactional surface can return for a *semantic* reason — as opposed
// to an environment failure bubbling up from storage — wraps one of
// these sentinels, so callers at any layer (sessions, the typed
// executor, tools) branch with errors.Is rather than string matching.
// The root logrec package re-exports them for external callers.
package tc

import "errors"

var (
	// ErrSessionBusy indicates Begin on a session whose transaction is
	// still active.
	ErrSessionBusy = errors.New("tc: session already has an active transaction")

	// ErrLockConflict indicates a lock request that conflicts with
	// another transaction's lock. Conflicts surface immediately rather
	// than blocking (no-wait locking); callers abort and retry. This
	// keeps the single-threaded virtual-time experiments deterministic
	// and gives concurrent sessions a deadlock-free discipline.
	ErrLockConflict = errors.New("tc: lock conflict")

	// ErrTxnNotActive indicates an operation on a transaction that is
	// nil, already finished, or unknown to the transaction table.
	ErrTxnNotActive = errors.New("tc: transaction not active")

	// ErrKeyNotFound indicates an update or delete of a key the table
	// does not hold.
	ErrKeyNotFound = errors.New("tc: key not found")
)
