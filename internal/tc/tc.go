// Package tc implements Deuteronomy's transactional component: it owns
// transactions, logical locking and logical logging, and drives the
// data components through the narrow interface of [10,12] — data
// operations identified by table and key (never page IDs), plus the two
// recovery-preparation control operations of §4.1:
//
//	EOSL: the TC regularly tells each DC its end of stable log (eLSN);
//	      the DC uses it for the write-ahead-log protocol and as the
//	      TC-LSN of its ∆-log records.
//	RSSP: the TC's checkpoint: it names a redo-scan-start-point LSN and
//	      every DC must flush every page dirtied by operations at or
//	      before it, so the TC can start its redo scan there.
//
// The TC drives N range-partitioned DCs behind one shard.Set: data
// operations route by key, every log record is stamped with the shard
// it landed on (so undo and recovery can target that DC directly), and
// EOSL/RSSP broadcast to all shards. A single-DC engine is the N=1
// case of the same code path.
package tc

import (
	"fmt"
	"sync/atomic"

	"logrec/internal/shard"
	"logrec/internal/storage"
	"logrec/internal/wal"
)

// Status is a transaction's lifecycle state.
type Status int

// Transaction statuses.
const (
	StatusActive Status = iota
	StatusCommitted
	StatusAborted
)

// Txn is a transaction handle.
type Txn struct {
	ID     wal.TxnID
	status Status
	// last is the transaction's most recent log record. Atomic because
	// a fuzzy checkpoint reads it while the owning session writes it
	// (the checkpoint holds every shard plane, but commit/abort records
	// are appended without one).
	last atomic.Uint64
	// updates counts data operations, for harness bookkeeping.
	updates int
}

// Status returns the transaction's lifecycle state.
func (t *Txn) Status() Status { return t.status }

// LastLSN returns the transaction's most recent log record.
func (t *Txn) LastLSN() wal.LSN { return wal.LSN(t.last.Load()) }

// setLastLSN advances the backchain head. Only the goroutine driving
// the transaction calls it.
func (t *Txn) setLastLSN(lsn wal.LSN) { t.last.Store(uint64(lsn)) }

// Stats counts TC activity.
type Stats struct {
	Begun       int64
	Committed   int64
	Aborted     int64
	Updates     int64
	Inserts     int64
	Deletes     int64
	Checkpoints int64
	RangeSplits int64
}

// Appender abstracts log appends and forces so the concurrent session
// path can route every record — and every checkpoint/commit log force —
// through a wal.GroupCommitter (for batch accounting and a single EOSL
// publication per force); the default is the raw log.
type Appender interface {
	MustAppend(wal.Record) wal.LSN
	Flush() wal.LSN
}

// TC is the transactional component.
type TC struct {
	log   *wal.Log
	app   Appender
	dc    *shard.Set
	locks *LockTable

	// txns is the transaction table: ID allocation plus the active set,
	// hash-sharded so sessions' Begin/Commit never serialize behind one
	// another or behind data operations.
	txns *txnTable

	// lastEndCkpt is the TC's master record: the LSN of the most recent
	// end-checkpoint record on the stable log. Recovery starts from the
	// begin-checkpoint it names (§3.2's penultimate checkpoint). It is
	// part of the crash-surviving state, like a boot block. Atomic so a
	// crash snapshot can read it while a background checkpointer
	// advances it.
	lastEndCkpt atomic.Uint64
	// masterHook, when set, persists each master-record advance (the
	// file-backed engine writes it to a well-known file, the real
	// system's boot-block sector). The simulated engine leaves it nil:
	// there the master record survives in CrashState directly.
	masterHook func(wal.LSN) error

	stats counters
}

// New creates a TC over the shared log and the shard set it drives.
func New(log *wal.Log, set *shard.Set) *TC {
	return &TC{
		log:   log,
		app:   log,
		dc:    set,
		locks: NewLockTable(),
		txns:  newTxnTable(),
	}
}

// Shards returns the data-component plane the TC drives.
func (tc *TC) Shards() *shard.Set { return tc.dc }

// SetAppender reroutes the TC's log appends (see Appender). The session
// layer installs the group committer here.
func (tc *TC) SetAppender(a Appender) { tc.app = a }

// Log returns the shared log (harness and recovery access).
func (tc *TC) Log() *wal.Log { return tc.log }

// Locks returns the lock table.
func (tc *TC) Locks() *LockTable { return tc.locks }

// Stats returns a snapshot of the counters.
func (tc *TC) Stats() Stats { return tc.stats.snapshot() }

// LastEndCkptLSN returns the master-record pointer to the latest
// completed checkpoint's end record.
func (tc *TC) LastEndCkptLSN() wal.LSN { return wal.LSN(tc.lastEndCkpt.Load()) }

// ActiveCount returns the number of in-flight transactions.
func (tc *TC) ActiveCount() int { return tc.txns.count() }

// Begin starts a transaction.
func (tc *TC) Begin() *Txn {
	t := &Txn{ID: tc.txns.allocate(), status: StatusActive}
	tc.txns.add(t)
	tc.stats.begun.Add(1)
	return t
}

func (tc *TC) checkActive(t *Txn) error {
	if t == nil || t.status != StatusActive {
		return ErrTxnNotActive
	}
	if !tc.txns.has(t.ID) {
		return ErrTxnNotActive
	}
	return nil
}

// Read returns the value under (table, key) with a shared lock.
func (tc *TC) Read(t *Txn, table wal.TableID, key uint64) ([]byte, bool, error) {
	if err := tc.checkActive(t); err != nil {
		return nil, false, err
	}
	if err := tc.locks.Acquire(t.ID, table, key, LockShared); err != nil {
		return nil, false, err
	}
	return tc.dc.Read(table, key)
}

// Row is one result of a range read.
type Row struct {
	Key uint64
	Val []byte
}

// ReadRange returns the rows with lo ≤ key ≤ hi, acquiring a shared
// lock on every row returned (member locking; phantom protection via
// full key-range lock modes is the subject of the companion
// Deuteronomy paper [13] and out of scope here).
func (tc *TC) ReadRange(t *Txn, table wal.TableID, lo, hi uint64) ([]Row, error) {
	var out []Row
	err := tc.ScanRange(t, table, lo, hi, nil, func(key uint64, val []byte) error {
		out = append(out, Row{Key: key, Val: append([]byte(nil), val...)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ScanRange streams the rows with lo ≤ key ≤ hi through fn in key
// order, pushing pred down into each shard's B-tree iterator: rows
// failing pred are dropped before they are copied, locked, or cross the
// shard boundary (a nil pred accepts every row). Every row fn sees is
// member-locked shared, like ReadRange; pred-rejected rows are not
// locked, which is the documented pushdown semantics — the predicate
// reads the committed row version the scan encounters. The value slice
// passed to pred and fn is only valid during the call; fn must copy
// what it keeps. This is the single-threaded path: under concurrent
// sessions use Session.ScanRange, which holds the overlapping shard
// planes so the range cannot be torn by a concurrent migration.
func (tc *TC) ScanRange(t *Txn, table wal.TableID, lo, hi uint64, pred func(key uint64, val []byte) bool, fn func(key uint64, val []byte) error) error {
	if err := tc.checkActive(t); err != nil {
		return err
	}
	return tc.dc.ReadRangeFiltered(table, lo, hi, pred, func(key uint64, val []byte) error {
		if err := tc.locks.Acquire(t.ID, table, key, LockShared); err != nil {
			return err
		}
		return fn(key, val)
	})
}

// Update replaces the value under (table, key) within t.
func (tc *TC) Update(t *Txn, table wal.TableID, key uint64, newVal []byte) error {
	if err := tc.checkActive(t); err != nil {
		return err
	}
	if err := tc.locks.Acquire(t.ID, table, key, LockExclusive); err != nil {
		return err
	}
	return tc.applyUpdate(t, table, key, newVal)
}

// applyUpdate performs the locked portion of Update: the caller has
// already acquired the X lock (sessions acquire it outside the shard
// planes so lock-table sharding pays off).
func (tc *TC) applyUpdate(t *Txn, table wal.TableID, key uint64, newVal []byte) error {
	return tc.applyUpdateAt(tc.dc.Locate(key), t, table, key, newVal)
}

// applyUpdateAt is applyUpdate pinned to a shard: the session path
// resolves the owner while locking its plane and the operation must run
// on that shard even if the routing table moves meanwhile.
func (tc *TC) applyUpdateAt(target wal.ShardID, t *Txn, table wal.TableID, key uint64, newVal []byte) error {
	oldVal, found, err := tc.dc.At(target).Read(table, key)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: table %d key %d", ErrKeyNotFound, table, key)
	}
	err = tc.dc.UpdateAt(target, table, key, newVal, func(sh wal.ShardID, pid storage.PageID) wal.LSN {
		lsn := tc.app.MustAppend(&wal.UpdateRec{
			TxnID:   t.ID,
			TableID: table,
			KeyVal:  key,
			OldVal:  oldVal,
			NewVal:  newVal,
			PageID:  pid,
			ShardID: sh,
			PrevLSN: t.LastLSN(),
		})
		t.setLastLSN(lsn)
		return lsn
	})
	if err != nil {
		return err
	}
	t.updates++
	tc.stats.updates.Add(1)
	return nil
}

// Insert adds a new row within t.
func (tc *TC) Insert(t *Txn, table wal.TableID, key uint64, val []byte) error {
	if err := tc.checkActive(t); err != nil {
		return err
	}
	if err := tc.locks.Acquire(t.ID, table, key, LockExclusive); err != nil {
		return err
	}
	return tc.applyInsert(t, table, key, val)
}

// applyInsert performs the locked portion of Insert (X lock already
// held by the caller).
func (tc *TC) applyInsert(t *Txn, table wal.TableID, key uint64, val []byte) error {
	return tc.applyInsertAt(tc.dc.Locate(key), t, table, key, val)
}

// applyInsertAt is applyInsert pinned to a shard; see applyUpdateAt.
func (tc *TC) applyInsertAt(target wal.ShardID, t *Txn, table wal.TableID, key uint64, val []byte) error {
	err := tc.dc.InsertAt(target, table, key, val, func(sh wal.ShardID, pid storage.PageID) wal.LSN {
		lsn := tc.app.MustAppend(&wal.InsertRec{
			TxnID:   t.ID,
			TableID: table,
			KeyVal:  key,
			Val:     val,
			PageID:  pid,
			ShardID: sh,
			PrevLSN: t.LastLSN(),
		})
		t.setLastLSN(lsn)
		return lsn
	})
	if err != nil {
		return err
	}
	t.updates++
	tc.stats.inserts.Add(1)
	return nil
}

// Delete removes a row within t.
func (tc *TC) Delete(t *Txn, table wal.TableID, key uint64) error {
	if err := tc.checkActive(t); err != nil {
		return err
	}
	if err := tc.locks.Acquire(t.ID, table, key, LockExclusive); err != nil {
		return err
	}
	return tc.applyDelete(t, table, key)
}

// applyDelete performs the locked portion of Delete (X lock already
// held by the caller).
func (tc *TC) applyDelete(t *Txn, table wal.TableID, key uint64) error {
	return tc.applyDeleteAt(tc.dc.Locate(key), t, table, key)
}

// applyDeleteAt is applyDelete pinned to a shard; see applyUpdateAt.
func (tc *TC) applyDeleteAt(target wal.ShardID, t *Txn, table wal.TableID, key uint64) error {
	oldVal, found, err := tc.dc.At(target).Read(table, key)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: table %d key %d", ErrKeyNotFound, table, key)
	}
	err = tc.dc.DeleteAt(target, table, key, func(sh wal.ShardID, pid storage.PageID) wal.LSN {
		lsn := tc.app.MustAppend(&wal.DeleteRec{
			TxnID:   t.ID,
			TableID: table,
			KeyVal:  key,
			OldVal:  oldVal,
			PageID:  pid,
			ShardID: sh,
			PrevLSN: t.LastLSN(),
		})
		t.setLastLSN(lsn)
		return lsn
	})
	if err != nil {
		return err
	}
	t.updates++
	tc.stats.deletes.Add(1)
	return nil
}

// Commit ends t successfully: the commit record is forced to the stable
// log (group commit would batch this; we force per transaction) and the
// new end of stable log is pushed to the DC via EOSL.
func (tc *TC) Commit(t *Txn) error {
	if err := tc.checkActive(t); err != nil {
		return err
	}
	lsn := tc.app.MustAppend(&wal.CommitRec{TxnID: t.ID, PrevLSN: t.LastLSN()})
	t.setLastLSN(lsn)
	eLSN := tc.app.Flush()
	tc.dc.EOSL(eLSN)
	tc.finishTxn(t, StatusCommitted)
	tc.locks.ReleaseAll(t.ID)
	return nil
}

// finishTxn records t's terminal state: status, removal from the
// active table, and the commit/abort counter. Lock release and
// durability stay with the caller (the single-threaded path forces the
// log inline; sessions wait on the group committer instead).
func (tc *TC) finishTxn(t *Txn, status Status) {
	t.status = status
	tc.txns.remove(t.ID)
	if status == StatusCommitted {
		tc.stats.committed.Add(1)
	} else {
		tc.stats.aborted.Add(1)
	}
}

// Abort rolls t back: its operations are undone logically in reverse
// order through the DC, each compensated by a CLR, then an abort record
// is forced.
func (tc *TC) Abort(t *Txn) error {
	if err := tc.checkActive(t); err != nil {
		return err
	}
	if err := tc.rollback(t); err != nil {
		return fmt.Errorf("tc: rollback of txn %d: %w", t.ID, err)
	}
	lsn := tc.app.MustAppend(&wal.AbortRec{TxnID: t.ID, PrevLSN: t.LastLSN()})
	t.setLastLSN(lsn)
	eLSN := tc.app.Flush()
	tc.dc.EOSL(eLSN)
	tc.finishTxn(t, StatusAborted)
	tc.locks.ReleaseAll(t.ID)
	return nil
}

// rollback undoes t's operations from its last record back to the
// beginning, writing a CLR for each undone operation. Undo is logical:
// rows are relocated by key through the DC's index, exactly as crash
// undo does (§1.2 — undo is already logical in ARIES).
func (tc *TC) rollback(t *Txn) error {
	cur := t.LastLSN()
	for cur != wal.NilLSN {
		rec, err := tc.log.Get(cur)
		if err != nil {
			return err
		}
		next, err := tc.undoOne(t, rec)
		if err != nil {
			return err
		}
		cur = next
	}
	return nil
}

// undoOne compensates a single record, returning the next LSN to undo.
// Compensations target the record's shard directly — the record, not
// the routing table, says where the operation ran, which keeps undo
// correct even mid-range-migration.
func (tc *TC) undoOne(t *Txn, rec wal.Record) (wal.LSN, error) {
	switch r := rec.(type) {
	case *wal.UpdateRec:
		err := tc.dc.UpdateAt(r.ShardID, r.TableID, r.KeyVal, r.OldVal, func(sh wal.ShardID, pid storage.PageID) wal.LSN {
			lsn := tc.app.MustAppend(&wal.CLRRec{
				TxnID: t.ID, TableID: r.TableID, KeyVal: r.KeyVal,
				Kind: wal.CLRUndoUpdate, RestoreVal: r.OldVal, PageID: pid, ShardID: sh,
				UndoNextLSN: r.PrevLSN, PrevLSN: t.LastLSN(),
			})
			t.setLastLSN(lsn)
			return lsn
		})
		return r.PrevLSN, err
	case *wal.InsertRec:
		err := tc.dc.DeleteAt(r.ShardID, r.TableID, r.KeyVal, func(sh wal.ShardID, pid storage.PageID) wal.LSN {
			lsn := tc.app.MustAppend(&wal.CLRRec{
				TxnID: t.ID, TableID: r.TableID, KeyVal: r.KeyVal,
				Kind: wal.CLRUndoInsert, PageID: pid, ShardID: sh,
				UndoNextLSN: r.PrevLSN, PrevLSN: t.LastLSN(),
			})
			t.setLastLSN(lsn)
			return lsn
		})
		return r.PrevLSN, err
	case *wal.DeleteRec:
		err := tc.dc.InsertAt(r.ShardID, r.TableID, r.KeyVal, r.OldVal, func(sh wal.ShardID, pid storage.PageID) wal.LSN {
			lsn := tc.app.MustAppend(&wal.CLRRec{
				TxnID: t.ID, TableID: r.TableID, KeyVal: r.KeyVal,
				Kind: wal.CLRUndoDelete, RestoreVal: r.OldVal, PageID: pid, ShardID: sh,
				UndoNextLSN: r.PrevLSN, PrevLSN: t.LastLSN(),
			})
			t.setLastLSN(lsn)
			return lsn
		})
		return r.PrevLSN, err
	case *wal.CLRRec:
		// CLRs are redo-only: skip to what the CLR says is next.
		return r.UndoNextLSN, nil
	case *wal.ShardMapRec:
		// The routing change never took effect (the migration is being
		// rolled back); nothing to compensate.
		return r.PrevLSN, nil
	default:
		return wal.NilLSN, fmt.Errorf("tc: unexpected %v record in txn %d backchain", rec.Type(), t.ID)
	}
}

// Checkpoint runs the penultimate checkpointing protocol (§3.2, §4.2):
//
//  1. append the begin-checkpoint record and force the log;
//  2. EOSL so the DC can flush pages dirtied up to it;
//  3. RSSP(bCkptLSN): the DC flushes everything dirtied before the
//     begin record (checkpoint-bit discipline) and records the redo
//     scan start point on its portion of the log;
//  4. append the end-checkpoint record (with the active-transaction
//     table), force it, and advance the master record.
func (tc *TC) Checkpoint() error {
	bLSN := tc.app.MustAppend(&wal.BeginCkptRec{})
	eLSN := tc.app.Flush()
	tc.dc.EOSL(eLSN)

	if err := tc.dc.RSSP(bLSN); err != nil {
		return fmt.Errorf("tc: checkpoint RSSP: %w", err)
	}

	end := &wal.EndCkptRec{BeginLSN: bLSN, Routes: tc.dc.Routes()}
	for _, t := range tc.txns.snapshot() {
		end.Active = append(end.Active, wal.ActiveTxn{TxnID: t.ID, LastLSN: t.LastLSN()})
	}
	endLSN := tc.app.MustAppend(end)
	eLSN = tc.app.Flush()
	tc.dc.EOSL(eLSN)
	tc.lastEndCkpt.Store(uint64(endLSN))
	if tc.masterHook != nil {
		if err := tc.masterHook(endLSN); err != nil {
			return fmt.Errorf("tc: persisting master record: %w", err)
		}
	}
	tc.stats.checkpoints.Add(1)
	return nil
}

// SetMasterHook subscribes fn to master-record advances (see the
// masterHook field); the engine's file mode installs the boot-block
// writer here.
func (tc *TC) SetMasterHook(fn func(wal.LSN) error) { tc.masterHook = fn }

// SendEOSL forces the log and pushes the new end of stable log to the
// DC. The harness calls it on the paper's EOSL cadence; Commit also
// does it implicitly.
func (tc *TC) SendEOSL() wal.LSN {
	eLSN := tc.app.Flush()
	tc.dc.EOSL(eLSN)
	return eLSN
}

// SplitRange splits the routing range containing key `at` at that key
// and migrates the rows of the upper half to shard `to` — the TC-level
// scale-out operation behind range re-balancing. The migration is one
// system transaction: every moved row is deleted from the old shard and
// inserted on the new one through ordinary logged operations, then a
// ShardMapRec records the routing change, and the commit force makes
// the whole move durable. Only after that does the in-memory routing
// table flip, so a crash at any point leaves a consistent engine: an
// incomplete migration is a loser transaction whose undo puts every row
// back, and recovery applies the ShardMapRec exactly when the migration
// committed. If `to` already owns the range the call only adds the
// routing boundary.
//
// Like every direct TC method, SplitRange belongs to the
// single-threaded path: the scan, the per-row locks and the row moves
// assume no other goroutine mutates the range meanwhile. Under
// concurrent sessions call SessionManager.SplitRange instead, which
// holds both shards' planes across the whole migration.
func (tc *TC) SplitRange(table wal.TableID, at uint64, to wal.ShardID) error {
	if int(to) >= tc.dc.NumShards() {
		return fmt.Errorf("tc: split target shard %d out of range (have %d)", to, tc.dc.NumShards())
	}
	_, end, from := tc.dc.RangeOf(at)
	tc.dc.Split(at)
	if from == to {
		return nil
	}

	type row struct {
		k uint64
		v []byte
	}
	var rows []row
	err := tc.dc.ReadRange(table, at, end, func(k uint64, v []byte) error {
		rows = append(rows, row{k: k, v: append([]byte(nil), v...)})
		return nil
	})
	if err != nil {
		return fmt.Errorf("tc: split scan [%d, %d]: %w", at, end, err)
	}

	t := tc.Begin()
	fail := func(cause error) error {
		if err := tc.Abort(t); err != nil {
			return fmt.Errorf("tc: aborting failed range split: %v (split failed: %w)", err, cause)
		}
		return fmt.Errorf("tc: range split at %d: %w", at, cause)
	}
	for _, r := range rows {
		if err := tc.locks.Acquire(t.ID, table, r.k, LockExclusive); err != nil {
			return fail(err)
		}
	}
	for _, r := range rows {
		err := tc.dc.DeleteAt(from, table, r.k, func(sh wal.ShardID, pid storage.PageID) wal.LSN {
			lsn := tc.app.MustAppend(&wal.DeleteRec{
				TxnID: t.ID, TableID: table, KeyVal: r.k, OldVal: r.v,
				PageID: pid, ShardID: sh, PrevLSN: t.LastLSN(),
			})
			t.setLastLSN(lsn)
			return lsn
		})
		if err != nil {
			return fail(err)
		}
		err = tc.dc.InsertAt(to, table, r.k, r.v, func(sh wal.ShardID, pid storage.PageID) wal.LSN {
			lsn := tc.app.MustAppend(&wal.InsertRec{
				TxnID: t.ID, TableID: table, KeyVal: r.k, Val: r.v,
				PageID: pid, ShardID: sh, PrevLSN: t.LastLSN(),
			})
			t.setLastLSN(lsn)
			return lsn
		})
		if err != nil {
			return fail(err)
		}
	}
	t.setLastLSN(tc.app.MustAppend(&wal.ShardMapRec{
		TxnID: t.ID, SplitAt: at, End: end, NewShard: to, PrevLSN: t.LastLSN(),
	}))
	if err := tc.Commit(t); err != nil {
		return fmt.Errorf("tc: committing range split at %d: %w", at, err)
	}
	if err := tc.dc.Reassign(at, to); err != nil {
		return fmt.Errorf("tc: re-routing after split at %d: %w", at, err)
	}
	tc.stats.rangeSplits.Add(1)
	return nil
}

// RestoreNextTxnID moves the transaction-ID allocator past IDs observed
// in the log (called after recovery so new transactions do not collide).
func (tc *TC) RestoreNextTxnID(maxSeen wal.TxnID) {
	tc.txns.bump(maxSeen)
}

// RestoreMaster installs the master-record pointer after recovery.
func (tc *TC) RestoreMaster(lastEndCkpt wal.LSN) {
	tc.lastEndCkpt.Store(uint64(lastEndCkpt))
}
