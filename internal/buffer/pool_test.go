package buffer

import (
	"testing"

	"logrec/internal/page"
	"logrec/internal/sim"
	"logrec/internal/storage"
	"logrec/internal/wal"
)

func newPoolEnv(t *testing.T, capacity int) (*sim.Clock, *storage.Disk, *Pool) {
	t.Helper()
	clock := &sim.Clock{}
	cfg := storage.Config{
		PageSize:        256,
		SeekTime:        4 * sim.Millisecond,
		TransferPerPage: 100 * sim.Microsecond,
		WriteSeekTime:   2 * sim.Millisecond,
		MaxBlock:        8,
		Channels:        1,
	}
	disk, err := storage.New(clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := New(disk, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return clock, disk, pool
}

// seed writes n formatted leaf pages directly to disk.
func seed(t *testing.T, disk *storage.Disk, n int) {
	t.Helper()
	for pid := storage.PageID(2); pid < storage.PageID(2+n); pid++ {
		data := make([]byte, disk.Config().PageSize)
		page.Format(data, page.TypeLeaf)
		if _, err := disk.Write(pid, data); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGetMissFetchesAndCaches(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 4)
	seed(t, disk, 2)
	f, err := pool.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(f)
	if st := pool.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats = %+v", st)
	}
	g, err := pool.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(g)
	if st := pool.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if f != g {
		t.Fatal("second Get returned a different frame")
	}
}

func TestEvictionLRUAndDirtyWriteback(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 2)
	seed(t, disk, 3)
	pool.SetLogForce(func() wal.LSN { return wal.LSN(1 << 40) })

	f2, _ := pool.Get(2)
	if err := f2.Page.Insert(7, []byte("x")); err != nil {
		t.Fatal(err)
	}
	f2.Page.SetLSN(10)
	pool.MarkDirty(f2, 10)
	pool.SetELSN(100)
	pool.Unpin(f2)

	f3, _ := pool.Get(3)
	pool.Unpin(f3)
	// Pool is full; getting page 4 evicts page 2 (LRU), flushing it.
	f4, err := pool.Get(4)
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(f4)
	if pool.Contains(2) {
		t.Fatal("LRU victim still cached")
	}
	st := pool.Stats()
	if st.Evictions != 1 || st.DirtyEvict != 1 || st.Flushes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The flushed content must be durable.
	data, err := disk.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	p := page.Wrap(data)
	if _, found := p.Search(7); !found {
		t.Fatal("flushed page lost the insert")
	}
	if p.LSN() != 10 {
		t.Fatalf("flushed pLSN = %d, want 10", p.LSN())
	}
}

func TestPinnedFramesAreNotEvicted(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 2)
	seed(t, disk, 3)
	f2, _ := pool.Get(2) // stays pinned
	f3, _ := pool.Get(3)
	pool.Unpin(f3)
	f4, err := pool.Get(4) // must evict 3, not pinned 2
	if err != nil {
		t.Fatal(err)
	}
	if !pool.Contains(2) || pool.Contains(3) {
		t.Fatal("eviction chose a pinned frame")
	}
	pool.Unpin(f2)
	pool.Unpin(f4)
}

func TestAllPinnedFails(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 1)
	seed(t, disk, 2)
	f, _ := pool.Get(2)
	if _, err := pool.Get(3); err == nil {
		t.Fatal("Get succeeded with all frames pinned")
	}
	pool.Unpin(f)
}

func TestWALProtocolForcesLog(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 4)
	seed(t, disk, 1)
	forced := false
	pool.SetLogForce(func() wal.LSN {
		forced = true
		return 500
	})
	f, _ := pool.Get(2)
	pool.MarkDirty(f, 400) // beyond eLSN (0)
	if err := pool.FlushFrame(f); err != nil {
		t.Fatal(err)
	}
	if !forced {
		t.Fatal("flush ahead of stable log did not force the log")
	}
	if pool.ELSN() != 500 {
		t.Fatalf("eLSN = %v, want 500", pool.ELSN())
	}
	if got := pool.Stats().LogForces; got != 1 {
		t.Fatalf("LogForces = %d", got)
	}
	pool.Unpin(f)
}

func TestWALProtocolViolationWithoutForce(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 4)
	seed(t, disk, 1)
	f, _ := pool.Get(2)
	pool.MarkDirty(f, 400)
	if err := pool.FlushFrame(f); err == nil {
		t.Fatal("WAL violation not detected")
	}
	pool.Unpin(f)
}

func TestCheckpointBitSemantics(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 8)
	seed(t, disk, 4)
	pool.SetELSN(1 << 40)

	// Dirty pages 2 and 3 before the checkpoint.
	for _, pid := range []storage.PageID{2, 3} {
		f, _ := pool.Get(pid)
		pool.MarkDirty(f, 10)
		pool.Unpin(f)
	}
	pool.BeginCheckpointFlip()
	// Page 4 is dirtied during the checkpoint: different bit, exempt.
	f4, _ := pool.Get(4)
	pool.MarkDirty(f4, 20)
	pool.Unpin(f4)

	if err := pool.FlushForCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if got := pool.Stats().Flushes; got != 2 {
		t.Fatalf("checkpoint flushed %d pages, want 2", got)
	}
	if pool.DirtyCount() != 1 {
		t.Fatalf("dirty count = %d, want 1 (page dirtied during ckpt)", pool.DirtyCount())
	}
}

func TestFlushHookFires(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 4)
	seed(t, disk, 1)
	pool.SetELSN(1 << 40)
	var flushed []storage.PageID
	pool.SetFlushHook(func(pid storage.PageID, done sim.Time) {
		flushed = append(flushed, pid)
		if done == 0 {
			t.Error("flush completion time is zero")
		}
	})
	f, _ := pool.Get(2)
	pool.MarkDirty(f, 5)
	if err := pool.FlushFrame(f); err != nil {
		t.Fatal(err)
	}
	pool.Unpin(f)
	if len(flushed) != 1 || flushed[0] != 2 {
		t.Fatalf("flush hook saw %v", flushed)
	}
	// Clean frame: flush is a no-op, hook must not fire again.
	if err := pool.FlushFrame(f); err != nil {
		t.Fatal(err)
	}
	if len(flushed) != 1 {
		t.Fatal("hook fired for a clean frame")
	}
}

func TestNewPageNoDiskRead(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 4)
	f, err := pool.NewPage(9, page.TypeLeaf)
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(f)
	if got := disk.Stats().Reads; got != 0 {
		t.Fatalf("NewPage performed %d reads", got)
	}
	if f.Page.Type() != page.TypeLeaf {
		t.Fatal("NewPage not formatted")
	}
	if _, err := pool.NewPage(9, page.TypeLeaf); err == nil {
		t.Fatal("NewPage of cached page succeeded")
	}
}

func TestMarkDirtyTracksRecAndLastLSN(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 4)
	seed(t, disk, 1)
	pool.SetELSN(1 << 40)
	f, _ := pool.Get(2)
	pool.MarkDirty(f, 100)
	pool.MarkDirty(f, 200)
	if f.RecLSN != 100 || f.LastLSN != 200 {
		t.Fatalf("RecLSN=%v LastLSN=%v", f.RecLSN, f.LastLSN)
	}
	if err := pool.FlushFrame(f); err != nil {
		t.Fatal(err)
	}
	// Re-dirty after flush: RecLSN restarts.
	pool.MarkDirty(f, 300)
	if f.RecLSN != 300 {
		t.Fatalf("RecLSN after re-dirty = %v, want 300", f.RecLSN)
	}
	pool.Unpin(f)
}

func TestPrefetchBoundedByFreeFrames(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 3)
	seed(t, disk, 10)
	f, _ := pool.Get(2) // one frame used
	pool.Unpin(f)
	n, issued := pool.Prefetch([]storage.PageID{3, 4, 5, 6, 7})
	if n != 2 || issued != 2 {
		t.Fatalf("consumed %d pids with 2 free frames, want 2", n)
	}
	if got := disk.Stats().PrefetchPages; got != 2 {
		t.Fatalf("issued %d pages, want 2", got)
	}
	// Cached pages are consumed without issuing.
	n, issued = pool.Prefetch([]storage.PageID{2})
	if n != 1 || issued != 0 {
		t.Fatalf("cached pid consumed %d, want 1", n)
	}
	if got := disk.Stats().PrefetchPages; got != 2 {
		t.Fatalf("cached pid issued an IO")
	}
}

func TestDirtyPIDs(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 4)
	seed(t, disk, 3)
	for _, pid := range []storage.PageID{2, 4} {
		f, _ := pool.Get(pid)
		pool.MarkDirty(f, 9)
		pool.Unpin(f)
	}
	got := pool.DirtyPIDs()
	if len(got) != 2 {
		t.Fatalf("DirtyPIDs = %v", got)
	}
	seen := map[storage.PageID]bool{}
	for _, pid := range got {
		seen[pid] = true
	}
	if !seen[2] || !seen[4] {
		t.Fatalf("DirtyPIDs = %v, want {2,4}", got)
	}
}

func TestUnpinUnderflowPanics(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 4)
	seed(t, disk, 1)
	f, _ := pool.Get(2)
	pool.Unpin(f)
	defer func() {
		if recover() == nil {
			t.Fatal("double unpin did not panic")
		}
	}()
	pool.Unpin(f)
}

func TestDropDiscardsWithoutFlush(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 4)
	seed(t, disk, 1)
	pool.SetELSN(1 << 40)
	f, _ := pool.Get(2)
	pool.MarkDirty(f, 5)
	pool.Unpin(f)
	before := pool.Stats().Flushes
	pool.Drop(2)
	if pool.Contains(2) {
		t.Fatal("Drop left the page cached")
	}
	if pool.Stats().Flushes != before {
		t.Fatal("Drop flushed")
	}
}
