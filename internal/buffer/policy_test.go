package buffer

import (
	"strings"
	"testing"

	"logrec/internal/storage"
	"logrec/internal/wal"
)

func newPolicyPool(t *testing.T, capacity int, cfg Config) (*storage.Disk, *Pool) {
	t.Helper()
	clock, disk, _ := newPoolEnv(t, capacity)
	_ = clock
	pool, err := NewWithConfig(disk, capacity, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return disk, pool
}

func TestConfigValidation(t *testing.T) {
	_, disk, _ := newPoolEnv(t, 64)
	if _, err := NewWithConfig(disk, 64, Config{Policy: "lru-k"}); err == nil || !strings.Contains(err.Error(), "unknown eviction policy") {
		t.Fatalf("unknown policy accepted: %v", err)
	}
	if _, err := NewWithConfig(disk, 64, Config{LatchShards: -1}); err == nil {
		t.Fatal("negative LatchShards accepted")
	}
	for _, name := range []string{"", PolicyClock, Policy2Q} {
		if !KnownPolicy(name) {
			t.Fatalf("KnownPolicy(%q) = false", name)
		}
		p, err := NewWithConfig(disk, 64, Config{Policy: name})
		if err != nil {
			t.Fatalf("policy %q: %v", name, err)
		}
		want := name
		if want == "" {
			want = PolicyClock
		}
		if p.Policy() != want {
			t.Fatalf("Policy() = %q, want %q", p.Policy(), want)
		}
	}
	if KnownPolicy("gdsf") {
		t.Fatal("KnownPolicy accepted an unimplemented name")
	}
}

func TestLatchShardClamping(t *testing.T) {
	_, disk, _ := newPoolEnv(t, 64)
	cases := []struct {
		capacity, req, want int
	}{
		{64, 0, 1},  // default stays single-latch
		{64, 1, 1},  //
		{64, 4, 4},  // 16 frames per sub-pool
		{64, 8, 8},  // exactly minSubCapacity each
		{64, 16, 8}, // clamped: 64/8
		{8, 4, 1},   // tiny pool degenerates to one latch
		{100, 3, 3}, // uneven split
	}
	for _, c := range cases {
		p, err := NewWithConfig(disk, c.capacity, Config{LatchShards: c.req})
		if err != nil {
			t.Fatal(err)
		}
		if p.LatchShards() != c.want {
			t.Fatalf("capacity %d, requested %d shards: got %d, want %d",
				c.capacity, c.req, p.LatchShards(), c.want)
		}
		// Sub-pool capacities must sum to the pool capacity.
		sum := 0
		for _, sp := range p.subs {
			sum += sp.capacity
		}
		if sum != c.capacity {
			t.Fatalf("sub capacities sum to %d, want %d", sum, c.capacity)
		}
	}
}

// TestShardedPoolBasicOps exercises Get/MarkDirty/FlushAll/Drop across
// sub-pools and checks the aggregate counters stay consistent with a
// per-sub walk.
func TestShardedPoolBasicOps(t *testing.T) {
	disk, pool := newPolicyPool(t, 64, Config{LatchShards: 4})
	seed(t, disk, 40)
	pool.SetELSN(1 << 40)
	for pid := storage.PageID(2); pid < 42; pid++ {
		f, err := pool.Get(pid)
		if err != nil {
			t.Fatal(err)
		}
		if pid%2 == 0 {
			pool.MarkDirty(f, 100)
		}
		pool.Unpin(f)
	}
	if pool.Len() != 40 {
		t.Fatalf("Len = %d, want 40", pool.Len())
	}
	if got := pool.DirtyCount(); got != 20 {
		t.Fatalf("DirtyCount = %d, want 20", got)
	}
	if got := len(pool.DirtyPIDs()); got != 20 {
		t.Fatalf("DirtyPIDs = %d entries, want 20", got)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if pool.DirtyCount() != 0 {
		t.Fatalf("DirtyCount after FlushAll = %d", pool.DirtyCount())
	}
	st := pool.Stats()
	if st.Misses != 40 || st.Flushes != 20 {
		t.Fatalf("stats = %+v", st)
	}
	pool.Drop(2)
	if pool.Contains(2) || pool.Len() != 39 {
		t.Fatal("Drop did not remove the page")
	}
}

// TestCheckpointFlipSharded verifies the penultimate-checkpoint bit
// keeps its per-page semantics across sub-pools: only pages dirtied
// before the flip are flushed.
func TestCheckpointFlipSharded(t *testing.T) {
	disk, pool := newPolicyPool(t, 64, Config{LatchShards: 4})
	seed(t, disk, 16)
	pool.SetELSN(1 << 40)
	dirtyRange := func(lo, hi storage.PageID, lsn uint64) {
		for pid := lo; pid < hi; pid++ {
			f, err := pool.Get(pid)
			if err != nil {
				t.Fatal(err)
			}
			pool.MarkDirty(f, wal.LSN(lsn))
			pool.Unpin(f)
		}
	}
	dirtyRange(2, 10, 10)
	pool.BeginCheckpointFlip()
	dirtyRange(10, 18, 20)
	if err := pool.FlushForCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if got := pool.Stats().Flushes; got != 8 {
		t.Fatalf("checkpoint flushed %d pages, want 8 (pre-flip only)", got)
	}
	if got := pool.DirtyCount(); got != 8 {
		t.Fatalf("DirtyCount = %d, want the 8 post-flip pages", got)
	}
}

// TestScanResistance2Q proves the satellite claim: after a full
// sequential scan, the re-referenced hot working set is still cached
// under 2Q, while the clock policy has evicted it.
func TestScanResistance2Q(t *testing.T) {
	const capacity = 64
	const scanPages = 400
	hot := []storage.PageID{2, 3, 4, 5, 6, 7, 8, 9}

	survivors := func(policy string) int {
		disk, pool := newPolicyPool(t, capacity, Config{Policy: policy})
		seed(t, disk, scanPages+16)
		// Establish the hot set: several rounds of re-reference, so 2Q
		// promotes every hot page to the protected segment.
		for round := 0; round < 3; round++ {
			for _, pid := range hot {
				f, err := pool.Get(pid)
				if err != nil {
					t.Fatal(err)
				}
				pool.Unpin(f)
			}
		}
		// One full sequential scan over a region much larger than the
		// pool; every page is touched exactly once.
		for pid := storage.PageID(18); pid < 18+scanPages; pid++ {
			f, err := pool.Get(pid)
			if err != nil {
				t.Fatal(err)
			}
			pool.Unpin(f)
		}
		n := 0
		for _, pid := range hot {
			if pool.Contains(pid) {
				n++
			}
		}
		return n
	}

	if n := survivors(Policy2Q); n != len(hot) {
		t.Fatalf("2q: scan evicted hot pages: %d/%d survived", n, len(hot))
	}
	if n := survivors(PolicyClock); n == len(hot) {
		t.Fatal("clock unexpectedly scan-resistant: the comparison is vacuous")
	}
}

// TestTwoQVictimPrefersProbation checks eviction order: once-touched
// pages go before re-referenced (protected) pages.
func TestTwoQVictimPrefersProbation(t *testing.T) {
	disk, pool := newPolicyPool(t, 8, Config{Policy: Policy2Q})
	seed(t, disk, 16)
	protected := []storage.PageID{2, 3}
	for _, pid := range protected {
		for i := 0; i < 2; i++ {
			f, err := pool.Get(pid)
			if err != nil {
				t.Fatal(err)
			}
			pool.Unpin(f)
		}
	}
	// Fill the rest with once-touched pages, then overflow: every
	// eviction must come out of probation.
	for pid := storage.PageID(4); pid < 14; pid++ {
		f, err := pool.Get(pid)
		if err != nil {
			t.Fatal(err)
		}
		pool.Unpin(f)
	}
	for _, pid := range protected {
		if !pool.Contains(pid) {
			t.Fatalf("protected page %d evicted before once-touched pages", pid)
		}
	}
	if got := pool.Stats().Evictions; got != 4 {
		t.Fatalf("evictions = %d, want 4", got)
	}
}

// TestTwoQAllPinnedFails mirrors TestAllPinnedFails for the 2Q policy:
// with every frame pinned (probation and protected), Get must fail
// rather than spin.
func TestTwoQAllPinnedFails(t *testing.T) {
	disk, pool := newPolicyPool(t, 3, Config{Policy: Policy2Q})
	seed(t, disk, 5)
	var frames []*Frame
	for pid := storage.PageID(2); pid < 5; pid++ {
		f, err := pool.Get(pid)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if _, err := pool.Get(5); err == nil {
		t.Fatal("Get succeeded with every frame pinned")
	}
	for _, f := range frames {
		pool.Unpin(f)
	}
	if _, err := pool.Get(5); err != nil {
		t.Fatalf("Get after unpin: %v", err)
	}
}
