// Eviction policies. Each sub-pool owns one evictPolicy instance that
// tracks residency order and picks victims; the sub-pool keeps the
// frame map, dirty accounting and the WAL protocol, so a policy is
// purely an ordering: which frame to evict next, which cold frames the
// lazywriter should write behind.
//
// Two policies exist. "clock" is the second-chance sweep the paper's
// experiments assume (an LRU approximation; see Pool). "2q" is the
// scan-resistant two-segment scheme (2Q/SLRU-shaped): pages enter a
// probationary segment on first touch and are promoted to a protected
// segment only when re-referenced, so a sequential table scan — which
// touches every page exactly once — churns through probation without
// displacing the re-referenced hot set.

package buffer

import "container/list"

// Policy names accepted by Config.Policy (and, upstream, by
// dc.Config.PoolPolicy / engine.Config.PoolPolicy).
const (
	// PolicyClock is the default second-chance clock sweep.
	PolicyClock = "clock"
	// Policy2Q is the scan-resistant probation/protected policy.
	Policy2Q = "2q"
)

// KnownPolicy reports whether name selects an implemented eviction
// policy ("" selects the default and is known).
func KnownPolicy(name string) bool {
	switch name {
	case "", PolicyClock, Policy2Q:
		return true
	}
	return false
}

// evictPolicy is a sub-pool's replacement order. All methods are called
// with the sub-pool latch held. A frame is "evictable" when it is
// unpinned, fully loaded and not mid-flush; policies must skip frames
// that are not.
type evictPolicy interface {
	name() string
	// admit registers a frame that just entered the pool.
	admit(f *Frame)
	// touch records a cache hit on a resident frame.
	touch(f *Frame)
	// remove unregisters a frame that is leaving the pool.
	remove(f *Frame)
	// victim returns the next evictable frame, or nil if a bounded
	// sweep found none (everything pinned or in flight). The caller
	// flushes and removes it; victim must not unlink anything itself.
	victim() *Frame
	// sweepCold walks cold frames in eviction order, calling flush on
	// up to want dirty evictable frames (the lazywriter's write-behind).
	// flush may release and reacquire the sub-pool latch; sweepCold
	// must tolerate the order mutating underneath it.
	sweepCold(want int, flush func(*Frame) error)
}

func newPolicy(name string, capacity int) evictPolicy {
	if name == Policy2Q {
		return &twoQPolicy{probation: list.New(), protected: list.New(), capacity: capacity}
	}
	return &clockPolicy{ring: list.New()}
}

// evictable reports whether f may be evicted or cold-flushed right now.
func evictable(f *Frame) bool {
	return f.pins == 0 && f.loading == nil && f.flushing == nil
}

// clockPolicy is the second-chance clock: one circular list in
// insertion order, a sweep hand that clears reference bits and evicts
// the first unpinned unreferenced frame, and a separate lazywriter hand
// so background cleaning round-robins independently of eviction.
type clockPolicy struct {
	ring     *list.List
	hand     *list.Element
	lazyHand *list.Element
}

func (c *clockPolicy) name() string { return PolicyClock }

func (c *clockPolicy) admit(f *Frame) {
	f.ref = true
	f.elem = c.ring.PushBack(f)
}

func (c *clockPolicy) touch(f *Frame) { f.ref = true }

func (c *clockPolicy) remove(f *Frame) {
	if c.hand == f.elem {
		c.hand = f.elem.Next()
	}
	if c.lazyHand == f.elem {
		c.lazyHand = f.elem.Next()
	}
	c.ring.Remove(f.elem)
	f.elem = nil
}

// victim runs the sweep: two full revolutions suffice — the first
// clears reference bits, the second finds a victim unless everything is
// pinned.
func (c *clockPolicy) victim() *Frame {
	limit := 2*c.ring.Len() + 1
	for i := 0; i < limit; i++ {
		e := c.hand
		if e == nil {
			e = c.ring.Front()
		}
		if e == nil {
			return nil
		}
		c.hand = e.Next()
		f := e.Value.(*Frame)
		if !evictable(f) {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		return f
	}
	return nil
}

// sweepCold scans at most one revolution from the lazywriter hand,
// flushing up to want cold dirty frames. A sweep that finds nothing
// flushable gives up for this call; the checkpoint will retry.
func (c *clockPolicy) sweepCold(want int, flush func(*Frame) error) {
	scanned := 0
	for want > 0 && scanned < c.ring.Len() {
		e := c.lazyHand
		if e == nil {
			e = c.ring.Front()
		}
		if e == nil {
			return
		}
		c.lazyHand = e.Next()
		scanned++
		f := e.Value.(*Frame)
		if !f.Dirty || !evictable(f) {
			continue
		}
		if err := flush(f); err != nil {
			return
		}
		want--
	}
}

// Frame segments for twoQPolicy.
const (
	segProbation int8 = iota
	segProtected
)

// twoQPolicy is the scan-resistant two-segment policy. New pages land
// at the MRU end of probation; a hit on a probationary page promotes it
// to protected (capped at ¾ of the sub-pool, demoting the protected LRU
// back to probation on overflow). Victims come from the probation LRU
// end first, so a one-touch scan evicts only other one-touch pages;
// protected falls back to a second-chance pass only when probation is
// entirely pinned.
type twoQPolicy struct {
	probation *list.List
	protected *list.List
	capacity  int
}

func (q *twoQPolicy) name() string { return Policy2Q }

func (q *twoQPolicy) admit(f *Frame) {
	f.ref = true
	f.seg = segProbation
	f.elem = q.probation.PushFront(f)
}

func (q *twoQPolicy) touch(f *Frame) {
	f.ref = true
	if f.seg == segProtected {
		q.protected.MoveToFront(f.elem)
		return
	}
	// Promote: the page proved it is re-referenced, not scan traffic.
	q.probation.Remove(f.elem)
	f.elem = q.protected.PushFront(f)
	f.seg = segProtected
	protCap := q.protCap()
	for q.protected.Len() > protCap {
		e := q.protected.Back()
		d := e.Value.(*Frame)
		q.protected.Remove(e)
		d.elem = q.probation.PushFront(d)
		d.seg = segProbation
	}
}

// protCap bounds the protected segment to ¾ of the sub-pool capacity so
// probation always keeps room to absorb scans. The bound is against
// capacity, not current residency: during warm-up a residency-relative
// cap would make early promotions demote one another.
func (q *twoQPolicy) protCap() int {
	n := q.capacity * 3 / 4
	if n < 1 {
		n = 1
	}
	return n
}

func (q *twoQPolicy) remove(f *Frame) {
	if f.seg == segProtected {
		q.protected.Remove(f.elem)
	} else {
		q.probation.Remove(f.elem)
	}
	f.elem = nil
}

func (q *twoQPolicy) victim() *Frame {
	for e := q.probation.Back(); e != nil; e = e.Prev() {
		if f := e.Value.(*Frame); evictable(f) {
			return f
		}
	}
	// Probation exhausted (all pinned or empty): second-chance over
	// protected, LRU end first.
	for pass := 0; pass < 2; pass++ {
		for e := q.protected.Back(); e != nil; e = e.Prev() {
			f := e.Value.(*Frame)
			if !evictable(f) {
				continue
			}
			if f.ref && pass == 0 {
				f.ref = false
				continue
			}
			return f
		}
	}
	return nil
}

func (q *twoQPolicy) sweepCold(want int, flush func(*Frame) error) {
	for _, l := range [2]*list.List{q.probation, q.protected} {
		e := l.Back()
		for e != nil && want > 0 {
			f := e.Value.(*Frame)
			prev := e.Prev()
			if f.Dirty && evictable(f) {
				if err := flush(f); err != nil {
					return
				}
				want--
			}
			e = prev
		}
	}
}
