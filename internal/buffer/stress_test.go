package buffer

// Concurrency stress for the sharded pool, designed to run under
// -race. Mutator, reader, prefetch and checkpoint goroutines hammer a
// wall-clock-mode pool (so miss reads and flush writes release the
// sub-pool latch) while a wrapper device enforces the WAL protocol as
// an oracle: no page may ever reach the disk carrying an LSN beyond
// the published stable LSN.
//
// Locking mirrors the engine's discipline. Pages are mutated only
// while pinned and only under a per-page test mutex (the engine's
// record latches); mutators hold a read lock on a checkpoint gate that
// the checkpoint thread takes exclusively across the flip and flush
// (the engine's session planes, which TC.Checkpoint quiesces).

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"logrec/internal/page"
	"logrec/internal/sim"
	"logrec/internal/storage"
	"logrec/internal/wal"
)

// storeMax CAS-raises a to at least v (stable LSN only ever grows).
func storeMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// oracleDevice wraps the simulated disk and checks every page write
// against the stable LSN at the moment of the write. Sound because
// stable only grows: a violation observed here is a real protocol
// break, never a stale read.
type oracleDevice struct {
	*storage.Disk
	stable     *atomic.Uint64
	violations atomic.Int64
	firstErr   atomic.Pointer[string]
}

func (o *oracleDevice) Write(pid storage.PageID, data []byte) (sim.Time, error) {
	lsn := uint64(page.Wrap(data).LSN())
	if stable := o.stable.Load(); lsn > stable {
		o.violations.Add(1)
		msg := fmt.Sprintf("page %d flushed with LSN %d > stable %d", pid, lsn, stable)
		o.firstErr.CompareAndSwap(nil, &msg)
	}
	return o.Disk.Write(pid, data)
}

func TestPoolStressRace(t *testing.T) {
	for _, policy := range []string{PolicyClock, Policy2Q} {
		t.Run(policy, func(t *testing.T) { runPoolStress(t, policy) })
	}
}

func runPoolStress(t *testing.T, policy string) {
	const (
		capacity = 128
		keyspace = 512
		shards   = 4
		mutators = 4
		readers  = 2
		mutOps   = 1500
		readOps  = 2500
	)
	clock := &sim.Clock{}
	cfg := storage.Config{
		PageSize:        256,
		SeekTime:        4 * sim.Millisecond,
		TransferPerPage: 100 * sim.Microsecond,
		WriteSeekTime:   2 * sim.Millisecond,
		MaxBlock:        8,
		Channels:        4,
	}
	raw, err := storage.New(clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for pid := storage.PageID(2); pid < 2+keyspace; pid++ {
		data := make([]byte, cfg.PageSize)
		page.Format(data, page.TypeLeaf)
		if _, err := raw.Write(pid, data); err != nil {
			t.Fatal(err)
		}
	}
	// Wall-clock mode with a huge scale: the latch-released read and
	// flush paths run (RealTime() is true) but every modelled wait
	// rounds down to a zero-length sleep, so the race detector gets
	// maximal interleaving instead of a disk-latency-paced crawl.
	raw.SetRealIOScale(1 << 30)

	var stable atomic.Uint64
	var nextLSN atomic.Uint64
	nextLSN.Store(100)
	disk := &oracleDevice{Disk: raw, stable: &stable}

	pool, err := NewWithConfig(disk, capacity, Config{LatchShards: shards, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	pool.SetLatchTiming(true)
	pool.SetCleanerTarget(0.4)
	pool.SetCleanerRate(4)
	pool.SetLogForce(func() wal.LSN {
		v := nextLSN.Load()
		storeMax(&stable, v)
		pool.SetELSN(wal.LSN(v))
		return wal.LSN(v)
	})

	var (
		ckptGate sync.RWMutex
		perPid   [keyspace + 2]sync.RWMutex
		bounded  sync.WaitGroup // op-count-bounded mutators and readers
		loopers  sync.WaitGroup // run until the bounded work is done
		done     = make(chan struct{})
	)

	for g := 0; g < mutators; g++ {
		bounded.Add(1)
		go func(seed int64) {
			defer bounded.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < mutOps; i++ {
				pid := storage.PageID(2 + rng.Intn(keyspace))
				ckptGate.RLock()
				f, err := pool.Get(pid)
				if err != nil {
					ckptGate.RUnlock()
					t.Errorf("Get(%d): %v", pid, err)
					return
				}
				perPid[pid].Lock()
				lsn := nextLSN.Add(1)
				f.Page.SetLSN(lsn)
				pool.MarkDirty(f, wal.LSN(lsn))
				perPid[pid].Unlock()
				pool.Unpin(f)
				ckptGate.RUnlock()
			}
		}(int64(g) + 1)
	}

	for g := 0; g < readers; g++ {
		bounded.Add(1)
		go func(seed int64) {
			defer bounded.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < readOps; i++ {
				pid := storage.PageID(2 + rng.Intn(keyspace))
				f := pool.GetIfCached(pid)
				if f == nil {
					var err error
					f, err = pool.Get(pid)
					if err != nil {
						t.Errorf("Get(%d): %v", pid, err)
						return
					}
				}
				perPid[pid].RLock()
				_ = f.Page.LSN()
				perPid[pid].RUnlock()
				pool.Unpin(f)
			}
		}(int64(100 + g))
	}

	// Prefetcher: random batches, exercising the free-frame clamp
	// against concurrent residency churn.
	loopers.Add(1)
	go func() {
		defer loopers.Done()
		rng := rand.New(rand.NewSource(42))
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			batch := make([]storage.PageID, 8)
			for j := range batch {
				batch[j] = storage.PageID(2 + rng.Intn(keyspace))
			}
			consumed, issued := pool.Prefetch(batch)
			if consumed < 0 || issued < 0 || issued > consumed {
				t.Errorf("Prefetch returned consumed=%d issued=%d", consumed, issued)
				return
			}
		}
	}()

	// Checkpointer: the engine quiesces every session plane across the
	// flip and the flush; the gate's write lock plays that role here.
	loopers.Add(1)
	go func() {
		defer loopers.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			ckptGate.Lock()
			pool.BeginCheckpointFlip()
			if err := pool.FlushForCheckpoint(); err != nil {
				t.Errorf("FlushForCheckpoint: %v", err)
			}
			ckptGate.Unlock()
		}
	}()

	bounded.Wait()
	close(done)
	loopers.Wait()

	// Drain: everything still dirty must flush cleanly under the WAL
	// protocol, and the aggregate accounting must reconcile.
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if got := pool.DirtyCount(); got != 0 {
		t.Fatalf("DirtyCount after FlushAll = %d", got)
	}
	if pool.Len() > capacity {
		t.Fatalf("Len %d exceeds capacity %d", pool.Len(), capacity)
	}
	if n := disk.violations.Load(); n != 0 {
		t.Fatalf("WAL protocol violated %d times; first: %s", n, *disk.firstErr.Load())
	}
	st := pool.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("stress ran no pool operations")
	}
	if st.Flushes == 0 {
		t.Fatal("stress never flushed a page")
	}
}
