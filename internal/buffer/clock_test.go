package buffer

import (
	"testing"

	"logrec/internal/storage"
	"logrec/internal/wal"
)

// TestSecondChanceProtectsReferencedFrames: a frame touched between
// sweeps survives one eviction round; an untouched frame is the victim.
func TestSecondChanceProtectsReferencedFrames(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 3)
	seed(t, disk, 5)
	for _, pid := range []storage.PageID{2, 3, 4} {
		f, err := pool.Get(pid)
		if err != nil {
			t.Fatal(err)
		}
		pool.Unpin(f)
	}
	// Re-touch 2 and 4; 3 goes unreferenced after the first sweep
	// clears its bit.
	for _, pid := range []storage.PageID{2, 4} {
		f, _ := pool.Get(pid)
		pool.Unpin(f)
	}
	// Pool full: getting 5 must evict. First sweep clears all ref
	// bits (all true); second finds 2 first (insertion order) — but 2
	// was re-referenced... after the first full clear pass every bit
	// is 0, so the victim is the frame at the hand: 2. The precise
	// victim depends on hand position; what must hold is that some
	// page was evicted and 5 is cached.
	f5, err := pool.Get(5)
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(f5)
	if !pool.Contains(5) {
		t.Fatal("page 5 not cached after eviction")
	}
	if pool.Len() != 3 {
		t.Fatalf("pool holds %d pages, want 3", pool.Len())
	}
}

// TestClockEvictsOnceTouchedBeforeRetouched: pages touched once and
// never again are evicted before pages being re-touched continuously —
// the property that lets eviction pressure clean once-updated pages.
func TestClockEvictsOnceTouchedBeforeRetouched(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 4)
	seed(t, disk, 40)
	// Hot pages 2 and 3, touched on every round.
	// Cold stream: pages 4.. touched once each.
	for i := 0; i < 20; i++ {
		for _, hot := range []storage.PageID{2, 3} {
			f, err := pool.Get(hot)
			if err != nil {
				t.Fatal(err)
			}
			pool.Unpin(f)
		}
		cold := storage.PageID(4 + i)
		f, err := pool.Get(cold)
		if err != nil {
			t.Fatal(err)
		}
		pool.Unpin(f)
	}
	// The hot pages must have survived the cold stream.
	if !pool.Contains(2) || !pool.Contains(3) {
		t.Fatal("hot pages evicted by a once-touched cold stream")
	}
}

func TestCleanerCeilingBoundsDirtyCount(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 20)
	seed(t, disk, 20)
	pool.SetELSN(1 << 40)
	pool.SetCleanerTarget(0.25) // ceiling = 5 dirty frames
	for pid := storage.PageID(2); pid < 22; pid++ {
		f, err := pool.Get(pid)
		if err != nil {
			t.Fatal(err)
		}
		pool.MarkDirty(f, wal.LSN(pid)*10)
		pool.Unpin(f)
	}
	if got := pool.DirtyCount(); got > 5 {
		t.Fatalf("dirty count %d exceeds ceiling 5", got)
	}
	if pool.Stats().Flushes == 0 {
		t.Fatal("cleaner never flushed")
	}
}

func TestCleanerRateTermFlushesSteadily(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 64)
	seed(t, disk, 60)
	pool.SetELSN(1 << 40)
	pool.SetCleanerTarget(0.99) // ceiling never binds
	pool.SetCleanerRate(4)      // one flush per 4 dirtyings
	for pid := storage.PageID(2); pid < 42; pid++ {
		f, err := pool.Get(pid)
		if err != nil {
			t.Fatal(err)
		}
		pool.MarkDirty(f, wal.LSN(pid)*10)
		pool.Unpin(f)
	}
	// 40 dirtyings at rate 1/4 → ~10 flushes (minus the small-floor
	// suppression at the start).
	got := pool.Stats().Flushes
	if got < 5 || got > 12 {
		t.Fatalf("rate-term flushed %d times, want ≈10", got)
	}
}

func TestCleanerDisabled(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 20)
	seed(t, disk, 18)
	pool.SetELSN(1 << 40)
	// Target 0 disables both terms.
	pool.SetCleanerTarget(0)
	pool.SetCleanerRate(1)
	for pid := storage.PageID(2); pid < 18; pid++ {
		f, err := pool.Get(pid)
		if err != nil {
			t.Fatal(err)
		}
		pool.MarkDirty(f, wal.LSN(pid)*10)
		pool.Unpin(f)
	}
	if pool.Stats().Flushes != 0 {
		t.Fatal("disabled cleaner flushed")
	}
	if pool.DirtyCount() != 16 {
		t.Fatalf("dirty = %d, want 16", pool.DirtyCount())
	}
}

func TestSuspendResumeCleaner(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 10)
	seed(t, disk, 10)
	pool.SetELSN(1 << 40)
	pool.SetCleanerTarget(0.2) // ceiling = 2
	pool.SuspendCleaner()
	for pid := storage.PageID(2); pid < 8; pid++ {
		f, err := pool.Get(pid)
		if err != nil {
			t.Fatal(err)
		}
		pool.MarkDirty(f, wal.LSN(pid)*10)
		pool.Unpin(f)
	}
	if pool.Stats().Flushes != 0 {
		t.Fatal("suspended cleaner flushed")
	}
	pool.ResumeCleaner() // catch-up pass
	if got := pool.DirtyCount(); got > 2 {
		t.Fatalf("dirty %d after resume, want ≤ 2", got)
	}
}

func TestDirtyCountTracksFlushAndDrop(t *testing.T) {
	_, disk, pool := newPoolEnv(t, 10)
	seed(t, disk, 4)
	pool.SetELSN(1 << 40)
	f2, _ := pool.Get(2)
	pool.MarkDirty(f2, 10)
	f3, _ := pool.Get(3)
	pool.MarkDirty(f3, 11)
	if pool.DirtyCount() != 2 {
		t.Fatalf("dirty = %d", pool.DirtyCount())
	}
	if err := pool.FlushFrame(f2); err != nil {
		t.Fatal(err)
	}
	if pool.DirtyCount() != 1 {
		t.Fatalf("dirty after flush = %d", pool.DirtyCount())
	}
	pool.Unpin(f2)
	pool.Unpin(f3)
	pool.Drop(3)
	if pool.DirtyCount() != 0 {
		t.Fatalf("dirty after drop = %d", pool.DirtyCount())
	}
}
