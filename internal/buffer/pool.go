// Package buffer implements the DC's database cache: a fixed-capacity
// page buffer pool with second-chance (clock) replacement, dirty
// tracking, the SQL-Server
// penultimate-checkpoint bit (§3.2 of the paper), the write-ahead-log
// protocol (a page may be flushed only when every update it carries is
// on the stable TC log, enforced via the EOSL-provided eLSN), and
// asynchronous prefetch.
//
// Rebuilding this cache after a crash is the dominant cost of redo
// recovery (§1.3, Appendix B); the pool therefore exposes detailed fetch
// and flush statistics for the experiment harness.
package buffer

import (
	"container/list"
	"fmt"
	"sync"

	"logrec/internal/page"
	"logrec/internal/sim"
	"logrec/internal/storage"
	"logrec/internal/wal"
)

// Frame is a cached page.
type Frame struct {
	PID  storage.PageID
	Page *page.Page

	// Dirty reports whether the frame holds updates not yet on disk.
	Dirty bool
	// RecLSN is the LSN of the first operation that dirtied the frame
	// since it was last clean (the recovery LSN of §2.2).
	RecLSN wal.LSN
	// LastLSN is the LSN of the latest operation applied to the frame.
	LastLSN wal.LSN
	// CkptBit is the value of the pool's checkpoint bit when the frame
	// was last dirtied; the penultimate scheme flushes only frames
	// dirtied before begin-checkpoint (§3.2).
	CkptBit bool

	// ref is the second-chance reference bit: set on every touch,
	// cleared by the clock sweep.
	ref  bool
	pins int
	elem *list.Element

	// loading is non-nil while the frame's disk read is in flight with
	// the pool lock released (real-IO mode); it is closed when the read
	// completes. Concurrent getters of the same page wait on it instead
	// of issuing a duplicate read.
	loading chan struct{}
}

// Stats counts pool activity.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	DirtyEvict int64 // evictions that had to flush first
	Flushes    int64
	LogForces  int64 // WAL-protocol log forces triggered by flushes
	NewPages   int64
}

// Pool is the buffer pool. A single mutex guards the page map, the
// clock state and the statistics, so the hot lookup path (Get /
// GetIfCached) is safe under concurrent sessions; frame *contents* are
// still owned by whoever holds the page pinned (the DC serializes data
// operations behind its shard's session plane).
//
// Replacement is second-chance (clock), the approximation of LRU real
// engines use: every touch sets a frame's reference bit; the sweep
// clears bits and evicts the first unpinned frame found unreferenced.
// Unlike strict LRU, a page updated once and not revisited loses its
// reference quickly, so eviction pressure flushes once-touched dirty
// pages mid-interval — the background cleaning that keeps the dirty
// page table below the full dirtied footprint (§3, Figure 2(b)).
type Pool struct {
	disk     storage.Device
	capacity int

	// mu guards every field below. Internal helpers (ensureRoom,
	// maybeClean, flushFrame) assume it is held.
	mu sync.Mutex

	frames map[storage.PageID]*Frame
	// clock is the circular sweep order (insertion order); hand is the
	// current sweep position.
	clock *list.List
	hand  *list.Element

	// ckptBit is the global bit flipped when a begin-checkpoint record
	// is written; frames dirtied afterward carry the new value and are
	// not flushed by that checkpoint.
	ckptBit bool

	// eLSN is the TC's end of stable log (EOSL). A dirty frame with
	// LastLSN > eLSN cannot be flushed until the log is forced.
	eLSN wal.LSN
	// forceLog, when set, forces the TC log and returns the new eLSN.
	// Flushing a frame ahead of the stable log calls it (a log force,
	// counted in stats).
	forceLog func() wal.LSN

	// onFlush is invoked after each page flush IO is issued, with the
	// flush completion time; the ∆- and BW-trackers subscribe (§3.3,
	// §4.1).
	onFlush func(pid storage.PageID, done sim.Time)

	// dirty counts dirty frames (kept incrementally for the cleaner).
	dirty int
	// The lazywriter emulates SQL Server's background page cleaning,
	// which the paper's dirty-page dynamics assume (Figure 2(b): the
	// dirty cache fraction sits near 30% at small caches and falls
	// toward 10% at large ones). It has two terms:
	//
	//   - a rate term: every cleanerEvery-th page dirtying flushes one
	//     cold dirty page (write-behind at a fraction of the update
	//     rate), active whenever the dirty count exceeds a small floor;
	//   - a ceiling term: when the dirty count exceeds
	//     cleanerTarget*capacity, cold dirty pages are flushed until it
	//     no longer does.
	//
	// cleanerTarget = 0 disables both.
	cleanerTarget float64
	cleanerEvery  int
	cleanerTick   int
	// cleanerSuspended holds the lazywriter off during critical
	// sections that reserve an LSN before appending (SMO builds): a
	// background flush there could let the flush tracker append its
	// own record in between, invalidating the reservation.
	cleanerSuspended bool
	// lazyHand is the cleaner's own sweep position.
	lazyHand *list.Element

	stats Stats
}

// New creates a pool of capacity pages over disk.
func New(disk storage.Device, capacity int) (*Pool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("buffer: capacity must be at least 1, got %d", capacity)
	}
	return &Pool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[storage.PageID]*Frame, capacity),
		clock:    list.New(),
	}, nil
}

// Disk returns the underlying storage device (for prefetch pacing and
// IO statistics).
func (p *Pool) Disk() storage.Device { return p.disk }

// SetFlushHook subscribes fn to flush completions.
func (p *Pool) SetFlushHook(fn func(pid storage.PageID, done sim.Time)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.onFlush = fn
}

// SetLogForce installs the WAL-protocol log-force callback.
func (p *Pool) SetLogForce(fn func() wal.LSN) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.forceLog = fn
}

// SetELSN records a new end-of-stable-log from the TC's EOSL control
// operation. eLSN never moves backward. Safe from any goroutine (the
// group-commit flusher publishes EOSL without holding any plane).
func (p *Pool) SetELSN(lsn wal.LSN) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.setELSN(lsn)
}

func (p *Pool) setELSN(lsn wal.LSN) {
	if lsn > p.eLSN {
		p.eLSN = lsn
	}
}

// ELSN returns the pool's view of the end of the stable TC log.
func (p *Pool) ELSN() wal.LSN {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.eLSN
}

// Capacity returns the pool capacity in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Len returns the number of cached pages.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// Stats returns a copy of the pool statistics.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the statistics.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// SetCleanerTarget sets the lazywriter's dirty-fraction ceiling
// (0 disables the lazywriter entirely).
func (p *Pool) SetCleanerTarget(frac float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cleanerTarget = frac
}

// SetCleanerRate sets the rate term: one background flush per every
// cleanerEvery page dirtyings (0 disables the rate term).
func (p *Pool) SetCleanerRate(every int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cleanerEvery = every
}

// SuspendCleaner holds the lazywriter off until ResumeCleaner.
func (p *Pool) SuspendCleaner() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cleanerSuspended = true
}

// ResumeCleaner re-enables the lazywriter and runs a catch-up pass.
func (p *Pool) ResumeCleaner() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cleanerSuspended = false
	p.maybeClean()
}

// DirtyCount returns the number of dirty frames — the quantity Figure
// 2(b) reports as a percentage of the cache.
func (p *Pool) DirtyCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dirty
}

// DirtyPIDs returns the PIDs of all dirty frames (test oracle for DPT
// safety).
func (p *Pool) DirtyPIDs() []storage.PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]storage.PageID, 0, 16)
	for pid, f := range p.frames {
		if f.Dirty {
			out = append(out, pid)
		}
	}
	return out
}

// Get returns the frame for pid, fetching from disk on a miss (which
// advances the virtual clock per the disk model) and evicting as
// needed. The frame is pinned; callers must Unpin.
//
// When the disk is in real-IO mode the pool lock is released for the
// duration of the miss read: the frame is inserted first as a pinned
// "loading" placeholder so concurrent getters of the same page wait for
// the one IO instead of duplicating it, and getters of other pages
// proceed — which is what lets parallel redo workers overlap their page
// fetches in wall-clock time.
func (p *Pool) Get(pid storage.PageID) (*Frame, error) {
	p.mu.Lock()
	for {
		f, ok := p.frames[pid]
		if !ok {
			break
		}
		if f.loading != nil {
			ch := f.loading
			p.mu.Unlock()
			<-ch
			p.mu.Lock()
			// Re-lookup: the load may have failed and removed the frame.
			continue
		}
		p.stats.Hits++
		f.pins++
		f.ref = true
		p.mu.Unlock()
		return f, nil
	}
	p.stats.Misses++
	if err := p.ensureRoom(); err != nil {
		p.mu.Unlock()
		return nil, err
	}
	if p.disk.RealTime() {
		f := &Frame{PID: pid, pins: 1, ref: true, loading: make(chan struct{})}
		f.elem = p.clock.PushBack(f)
		p.frames[pid] = f
		p.mu.Unlock()
		data, err := p.disk.Read(pid)
		p.mu.Lock()
		close(f.loading)
		f.loading = nil
		if err != nil {
			p.removeFrame(f)
			p.mu.Unlock()
			return nil, err
		}
		f.Page = page.Wrap(data)
		p.mu.Unlock()
		return f, nil
	}
	defer p.mu.Unlock()
	data, err := p.disk.Read(pid)
	if err != nil {
		return nil, err
	}
	f := &Frame{PID: pid, Page: page.Wrap(data), pins: 1, ref: true}
	f.elem = p.clock.PushBack(f)
	p.frames[pid] = f
	return f, nil
}

// removeFrame unlinks f from the page map and the clock list, fixing up
// the sweep hands. Caller holds p.mu.
func (p *Pool) removeFrame(f *Frame) {
	if p.hand == f.elem {
		p.hand = f.elem.Next()
	}
	if p.lazyHand == f.elem {
		p.lazyHand = f.elem.Next()
	}
	if f.Dirty {
		p.dirty--
	}
	p.clock.Remove(f.elem)
	delete(p.frames, f.PID)
}

// GetIfCached returns the pinned frame if present, else nil. A frame
// whose read is still in flight counts as absent.
func (p *Pool) GetIfCached(pid storage.PageID) *Frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[pid]
	if !ok || f.loading != nil {
		return nil
	}
	p.stats.Hits++
	f.pins++
	f.ref = true
	return f
}

// Contains reports whether pid is cached, without touching LRU state.
func (p *Pool) Contains(pid storage.PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.frames[pid]
	return ok
}

// NewPage allocates a pinned frame for a brand-new page (no disk read)
// formatted as type t. Used by B-tree page allocation.
func (p *Pool) NewPage(pid storage.PageID, t page.Type) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.frames[pid]; ok {
		return nil, fmt.Errorf("buffer: NewPage of cached page %d", pid)
	}
	if err := p.ensureRoom(); err != nil {
		return nil, err
	}
	p.stats.NewPages++
	data := make([]byte, p.disk.Config().PageSize)
	f := &Frame{PID: pid, Page: page.Format(data, t), pins: 1, ref: true}
	f.elem = p.clock.PushBack(f)
	p.frames[pid] = f
	return f, nil
}

// Unpin releases one pin on f.
func (p *Pool) Unpin(f *Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f.pins <= 0 {
		panic(fmt.Sprintf("buffer: unpin of unpinned page %d", f.PID))
	}
	f.pins--
}

// MarkDirty records that the operation at lsn updated f. The caller has
// already applied the change and set the page's pLSN. Crossing the
// lazywriter's ceiling triggers background cleaning of cold dirty
// pages.
func (p *Pool) MarkDirty(f *Frame, lsn wal.LSN) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !f.Dirty {
		f.Dirty = true
		f.RecLSN = lsn
		f.CkptBit = p.ckptBit
		p.dirty++
	}
	f.LastLSN = lsn
	p.maybeClean()
}

// maybeClean is the lazywriter. The rate term writes behind the update
// stream at a fixed fraction of the dirtying rate; the ceiling term
// bounds the dirty count outright. A sweep that finds nothing flushable
// gives up for this call; the checkpoint will retry.
func (p *Pool) maybeClean() {
	if p.cleanerTarget <= 0 || p.cleanerSuspended {
		return
	}
	want := 0
	if p.cleanerEvery > 0 {
		p.cleanerTick++
		if p.cleanerTick >= p.cleanerEvery {
			p.cleanerTick = 0
			// Rate-term flush, unless the cache is nearly clean (no
			// point churning the last few dirty pages).
			if p.dirty > p.capacity/20 {
				want = 1
			}
		}
	}
	ceiling := int(p.cleanerTarget * float64(p.capacity))
	if over := p.dirty - ceiling; over > want {
		want = over
	}
	scanned := 0
	for want > 0 && scanned < p.clock.Len() {
		e := p.lazyHand
		if e == nil {
			e = p.clock.Front()
		}
		if e == nil {
			return
		}
		p.lazyHand = e.Next()
		scanned++
		f := e.Value.(*Frame)
		if !f.Dirty || f.pins > 0 {
			continue
		}
		if err := p.flushFrame(f); err != nil {
			return
		}
		want--
	}
}

// ensureRoom runs the clock sweep to evict one unpinned, unreferenced
// frame if the pool is full, flushing it first when dirty.
func (p *Pool) ensureRoom() error {
	if len(p.frames) < p.capacity {
		return nil
	}
	// Two full sweeps suffice: the first clears reference bits, the
	// second finds a victim unless everything is pinned.
	limit := 2*p.clock.Len() + 1
	for i := 0; i < limit; i++ {
		e := p.hand
		if e == nil {
			e = p.clock.Front()
		}
		if e == nil {
			break
		}
		p.hand = e.Next() // advance before any removal
		f := e.Value.(*Frame)
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if f.Dirty {
			p.stats.DirtyEvict++
			if err := p.flushFrame(f); err != nil {
				return err
			}
		}
		p.stats.Evictions++
		if p.lazyHand == e {
			p.lazyHand = e.Next()
		}
		p.clock.Remove(e)
		delete(p.frames, f.PID)
		return nil
	}
	return fmt.Errorf("buffer: all %d frames pinned, cannot evict", p.capacity)
}

// FlushFrame writes f to disk, honouring the WAL protocol: if f carries
// updates beyond the stable log, the log is forced first. The flush
// hook fires with the write's completion time.
func (p *Pool) FlushFrame(f *Frame) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushFrame(f)
}

// flushFrame is FlushFrame with p.mu held. The log-force and flush-hook
// callbacks are invoked while the pool lock is held; they append to the
// (internally locked) WAL and feed the tracker, neither of which calls
// back into the pool.
func (p *Pool) flushFrame(f *Frame) error {
	if !f.Dirty {
		return nil
	}
	if f.LastLSN > p.eLSN {
		if p.forceLog == nil {
			return fmt.Errorf("buffer: WAL violation flushing page %d: LastLSN %v > eLSN %v and no log force installed",
				f.PID, f.LastLSN, p.eLSN)
		}
		p.stats.LogForces++
		p.setELSN(p.forceLog())
		if f.LastLSN > p.eLSN {
			return fmt.Errorf("buffer: WAL violation persists for page %d after log force", f.PID)
		}
	}
	done, err := p.disk.Write(f.PID, f.Page.Bytes())
	if err != nil {
		return err
	}
	f.Dirty = false
	f.RecLSN = wal.NilLSN
	p.dirty--
	p.stats.Flushes++
	if p.onFlush != nil {
		p.onFlush(f.PID, done)
	}
	return nil
}

// BeginCheckpointFlip flips the checkpoint bit; pages dirtied from now
// on carry the new value and are exempt from the in-progress
// checkpoint's flushing (§3.2).
func (p *Pool) BeginCheckpointFlip() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ckptBit = !p.ckptBit
}

// FlushForCheckpoint flushes every dirty frame dirtied before the most
// recent BeginCheckpointFlip (old bit value). On return, all updates
// logged before the begin-checkpoint record are stable.
func (p *Pool) FlushForCheckpoint() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.Dirty && f.CkptBit != p.ckptBit {
			if err := p.flushFrame(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// FlushAll flushes every dirty frame (clean shutdown; test oracles).
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if err := p.flushFrame(f); err != nil {
			return err
		}
	}
	return nil
}

// Prefetch issues asynchronous reads for the uncached pages among pids,
// bounded so outstanding prefetched pages fit the pool's free frames.
// It returns how many of the input pids were consumed — issued or
// skipped because already cached — so pacing cursors know where to
// resume. A return short of len(pids) means the pool has no room.
func (p *Pool) Prefetch(pids []storage.PageID) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	free := p.capacity - len(p.frames) - p.disk.InflightCount()
	consumed := 0
	want := make([]storage.PageID, 0, len(pids))
	for _, pid := range pids {
		if _, cached := p.frames[pid]; cached {
			consumed++
			continue
		}
		if len(want) >= free {
			break
		}
		want = append(want, pid)
		consumed++
	}
	p.disk.Prefetch(want)
	return consumed
}

// Drop removes pid from the pool without flushing (crash simulation and
// tests only).
func (p *Pool) Drop(pid storage.PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[pid]; ok {
		p.removeFrame(f)
	}
}
