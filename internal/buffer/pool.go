// Package buffer implements the DC's database cache: a fixed-capacity
// page buffer pool with pluggable replacement (second-chance clock by
// default, a scan-resistant 2Q-style alternative — see policy.go),
// dirty tracking, the SQL-Server penultimate-checkpoint bit (§3.2 of
// the paper), the write-ahead-log protocol (a page may be flushed only
// when every update it carries is on the stable TC log, enforced via
// the EOSL-provided eLSN), and asynchronous prefetch.
//
// The pool is internally latch-sharded: capacity is divided across
// Config.LatchShards PID-hashed sub-pools, each with its own mutex,
// frame map, sweep state, lazywriter hand and statistics, so concurrent
// sessions (and parallel redo workers) touching different pages contend
// only per sub-pool. Cross-cutting state — the stable-log watermark
// eLSN, the aggregate dirty and resident counts — lives in atomics;
// checkpoint and shutdown flushes iterate the sub-pools one latch at a
// time, never holding a global lock. When the device is in real-IO
// mode, flush writes release the sub-pool latch for the duration of the
// IO (mirroring the `loading` placeholder pattern miss reads use), so a
// checkpoint or eviction writing one page does not stall readers of the
// other pages in its sub-pool.
//
// Rebuilding this cache after a crash is the dominant cost of redo
// recovery (§1.3, Appendix B); the pool therefore exposes detailed fetch
// and flush statistics for the experiment harness.
package buffer

import (
	"container/list"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"logrec/internal/page"
	"logrec/internal/sim"
	"logrec/internal/storage"
	"logrec/internal/wal"
)

// minSubCapacity is the smallest per-sub-pool frame budget: requesting
// more latch shards than capacity/minSubCapacity silently clamps, so a
// tiny pool (recovery forks can run with 8 pages per shard) degenerates
// to the single-latch pool instead of sub-pools too small to hold a
// root-to-leaf pin chain.
const minSubCapacity = 8

// Config parameterises a pool beyond its capacity.
type Config struct {
	// LatchShards is the number of PID-hashed sub-pools the capacity
	// and latching are split across (0 and 1 both mean one sub-pool,
	// the original single-latch pool). Clamped so every sub-pool keeps
	// at least 8 frames.
	LatchShards int
	// Policy names the eviction policy: "" or "clock" for the
	// second-chance clock, "2q" for the scan-resistant two-segment
	// policy (see policy.go).
	Policy string
}

// Frame is a cached page.
type Frame struct {
	PID  storage.PageID
	Page *page.Page

	// Dirty reports whether the frame holds updates not yet on disk.
	Dirty bool
	// RecLSN is the LSN of the first operation that dirtied the frame
	// since it was last clean (the recovery LSN of §2.2).
	RecLSN wal.LSN
	// LastLSN is the LSN of the latest operation applied to the frame.
	LastLSN wal.LSN
	// CkptBit is the value of the pool's checkpoint bit when the frame
	// was last dirtied; the penultimate scheme flushes only frames
	// dirtied before begin-checkpoint (§3.2).
	CkptBit bool

	// ref is the second-chance reference bit: set on every touch,
	// cleared by the eviction sweep.
	ref bool
	// seg is the twoQPolicy segment the frame resides in.
	seg  int8
	pins int
	elem *list.Element

	// loading is non-nil while the frame's disk read is in flight with
	// the sub-pool latch released (real-IO mode); it is closed when the
	// read completes. Concurrent getters of the same page wait on it
	// instead of issuing a duplicate read.
	loading chan struct{}

	// flushing is non-nil while the frame's flush write is in flight
	// with the sub-pool latch released (real-IO mode); it is closed
	// when the write completes. Concurrent flushers of the same frame
	// wait on it instead of issuing a duplicate write.
	flushing chan struct{}
}

// Stats counts pool activity (summed across sub-pools).
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	DirtyEvict int64 // evictions that had to flush first
	Flushes    int64
	LogForces  int64 // WAL-protocol log forces triggered by flushes
	NewPages   int64
	// LatchWaitNS is the cumulative time callers spent blocked on
	// sub-pool latches, in nanoseconds. Collected only while latch
	// timing is enabled (SetLatchTiming; poolbench turns it on — the
	// hot path pays nothing for it otherwise).
	LatchWaitNS int64
}

// HitRatio returns Hits/(Hits+Misses), or 0 with no traffic.
func (s Stats) HitRatio() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// poolHooks bundles the pool-wide callbacks so the hot path loads them
// with one atomic read.
type poolHooks struct {
	// forceLog, when set, forces the TC log and returns the new eLSN.
	// Flushing a frame ahead of the stable log calls it (a log force,
	// counted in stats).
	forceLog func() wal.LSN
	// onFlush is invoked after each page flush IO is issued, with the
	// flush completion time; the ∆- and BW-trackers subscribe (§3.3,
	// §4.1).
	onFlush func(pid storage.PageID, done sim.Time)
}

// Pool is the buffer pool. Frame *contents* are owned by whoever holds
// the page pinned (the DC serializes data operations behind its shard's
// session plane); the pool's own bookkeeping is guarded per sub-pool,
// so the hot lookup path (Get / GetIfCached) is safe under concurrent
// sessions and contends only with traffic hashing to the same sub-pool.
type Pool struct {
	disk     storage.Device
	capacity int
	subs     []*subPool

	// eLSN is the TC's end of stable log (EOSL) as a wal.LSN. A dirty
	// frame with LastLSN > eLSN cannot be flushed until the log is
	// forced. Monotonic; advanced by CAS so no latch is needed.
	eLSN atomic.Uint64

	// dirtyTotal and resident are the aggregate dirty-frame and
	// cached-frame counts across sub-pools, kept incrementally so
	// DirtyCount/Len/Prefetch need no latches.
	dirtyTotal atomic.Int64
	resident   atomic.Int64

	hooks atomic.Pointer[poolHooks]

	// The lazywriter emulates SQL Server's background page cleaning,
	// which the paper's dirty-page dynamics assume (Figure 2(b): the
	// dirty cache fraction sits near 30% at small caches and falls
	// toward 10% at large ones). It has two terms, evaluated per
	// sub-pool against the sub-pool's share of capacity:
	//
	//   - a rate term: every cleanerEvery-th page dirtying flushes one
	//     cold dirty page (write-behind at a fraction of the update
	//     rate), active whenever the dirty count exceeds a small floor;
	//   - a ceiling term: when the dirty count exceeds
	//     cleanerTarget*capacity, cold dirty pages are flushed until it
	//     no longer does.
	//
	// cleanerTarget = 0 disables both.
	cleanerTarget atomicFloat64
	cleanerEvery  atomic.Int64
	// cleanerSuspended holds the lazywriter off during critical
	// sections that reserve an LSN before appending (SMO builds): a
	// background flush there could let the flush tracker append its
	// own record in between, invalidating the reservation.
	cleanerSuspended atomic.Bool

	// latchTiming enables LatchWaitNS collection (poolbench only).
	latchTiming atomic.Bool
}

// atomicFloat64 stores a float64 via its bit pattern.
type atomicFloat64 struct{ bits atomic.Uint64 }

func (a *atomicFloat64) Store(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat64) Load() float64   { return math.Float64frombits(a.bits.Load()) }

// subPool is one PID-hashed latch shard of the pool: its own mutex,
// frame map, eviction-policy instance, checkpoint bit, dirty count,
// lazywriter tick and statistics.
type subPool struct {
	p        *Pool
	capacity int

	// mu guards every field below. Internal helpers (ensureRoom,
	// maybeClean, flushFrame) assume it is held; flushFrame and miss
	// reads release it across real-mode IO waits.
	mu sync.Mutex

	frames map[storage.PageID]*Frame
	pol    evictPolicy

	// ckptBit is this sub-pool's copy of the bit flipped when a
	// begin-checkpoint record is written; frames dirtied afterward
	// carry the new value and are not flushed by that checkpoint.
	ckptBit bool

	// dirty counts dirty frames (kept incrementally for the cleaner).
	dirty       int
	cleanerTick int

	stats  Stats
	waitNS atomic.Int64
}

// New creates a pool of capacity pages over disk with the default
// configuration (one latch, clock replacement) — the pool the paper's
// virtual-time experiments assume.
func New(disk storage.Device, capacity int) (*Pool, error) {
	return NewWithConfig(disk, capacity, Config{})
}

// NewWithConfig creates a pool of capacity pages over disk, sharded and
// policied per cfg.
func NewWithConfig(disk storage.Device, capacity int, cfg Config) (*Pool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("buffer: capacity must be at least 1, got %d", capacity)
	}
	if cfg.LatchShards < 0 {
		return nil, fmt.Errorf("buffer: LatchShards must be >= 0, got %d", cfg.LatchShards)
	}
	if !KnownPolicy(cfg.Policy) {
		return nil, fmt.Errorf("buffer: unknown eviction policy %q (have %q, %q)", cfg.Policy, PolicyClock, Policy2Q)
	}
	n := cfg.LatchShards
	if n <= 0 {
		n = 1
	}
	if maxN := capacity / minSubCapacity; n > maxN {
		n = maxN
		if n < 1 {
			n = 1
		}
	}
	p := &Pool{disk: disk, capacity: capacity, subs: make([]*subPool, n)}
	p.hooks.Store(&poolHooks{})
	base, extra := capacity/n, capacity%n
	for i := range p.subs {
		c := base
		if i < extra {
			c++
		}
		p.subs[i] = &subPool{
			p:        p,
			capacity: c,
			frames:   make(map[storage.PageID]*Frame, c),
			pol:      newPolicy(cfg.Policy, c),
		}
	}
	return p, nil
}

// sub routes a page to its latch shard.
func (p *Pool) sub(pid storage.PageID) *subPool {
	return p.subs[int(uint32(pid))%len(p.subs)]
}

// lock acquires the sub-pool latch, timing the wait when latch timing
// is on.
func (sp *subPool) lock() {
	if !sp.p.latchTiming.Load() {
		sp.mu.Lock()
		return
	}
	if sp.mu.TryLock() {
		return
	}
	t0 := time.Now()
	sp.mu.Lock()
	sp.waitNS.Add(time.Since(t0).Nanoseconds())
}

// Disk returns the underlying storage device (for prefetch pacing and
// IO statistics).
func (p *Pool) Disk() storage.Device { return p.disk }

// Policy returns the eviction policy name ("clock" or "2q").
func (p *Pool) Policy() string { return p.subs[0].pol.name() }

// LatchShards returns the number of latch shards the pool runs with
// (after clamping against capacity).
func (p *Pool) LatchShards() int { return len(p.subs) }

// SetLatchTiming enables or disables latch-wait accounting
// (Stats.LatchWaitNS). Off by default; poolbench turns it on.
func (p *Pool) SetLatchTiming(on bool) { p.latchTiming.Store(on) }

// SetFlushHook subscribes fn to flush completions.
func (p *Pool) SetFlushHook(fn func(pid storage.PageID, done sim.Time)) {
	for {
		old := p.hooks.Load()
		h := *old
		h.onFlush = fn
		if p.hooks.CompareAndSwap(old, &h) {
			return
		}
	}
}

// SetLogForce installs the WAL-protocol log-force callback.
func (p *Pool) SetLogForce(fn func() wal.LSN) {
	for {
		old := p.hooks.Load()
		h := *old
		h.forceLog = fn
		if p.hooks.CompareAndSwap(old, &h) {
			return
		}
	}
}

// SetELSN records a new end-of-stable-log from the TC's EOSL control
// operation. eLSN never moves backward. Safe from any goroutine (the
// group-commit flusher publishes EOSL without holding any plane).
func (p *Pool) SetELSN(lsn wal.LSN) {
	for {
		cur := p.eLSN.Load()
		if uint64(lsn) <= cur || p.eLSN.CompareAndSwap(cur, uint64(lsn)) {
			return
		}
	}
}

// ELSN returns the pool's view of the end of the stable TC log.
func (p *Pool) ELSN() wal.LSN { return wal.LSN(p.eLSN.Load()) }

// Capacity returns the pool capacity in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Len returns the number of cached pages.
func (p *Pool) Len() int { return int(p.resident.Load()) }

// Stats returns the pool statistics summed across sub-pools.
func (p *Pool) Stats() Stats {
	var out Stats
	for _, sp := range p.subs {
		sp.lock()
		s := sp.stats
		sp.mu.Unlock()
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.Evictions += s.Evictions
		out.DirtyEvict += s.DirtyEvict
		out.Flushes += s.Flushes
		out.LogForces += s.LogForces
		out.NewPages += s.NewPages
		out.LatchWaitNS += sp.waitNS.Load()
	}
	return out
}

// ResetStats zeroes the statistics.
func (p *Pool) ResetStats() {
	for _, sp := range p.subs {
		sp.lock()
		sp.stats = Stats{}
		sp.waitNS.Store(0)
		sp.mu.Unlock()
	}
}

// SetCleanerTarget sets the lazywriter's dirty-fraction ceiling
// (0 disables the lazywriter entirely).
func (p *Pool) SetCleanerTarget(frac float64) { p.cleanerTarget.Store(frac) }

// SetCleanerRate sets the rate term: one background flush per every
// cleanerEvery page dirtyings (0 disables the rate term).
func (p *Pool) SetCleanerRate(every int) { p.cleanerEvery.Store(int64(every)) }

// SuspendCleaner holds the lazywriter off until ResumeCleaner.
func (p *Pool) SuspendCleaner() { p.cleanerSuspended.Store(true) }

// ResumeCleaner re-enables the lazywriter and runs a catch-up pass.
func (p *Pool) ResumeCleaner() {
	p.cleanerSuspended.Store(false)
	for _, sp := range p.subs {
		sp.lock()
		sp.maybeClean()
		sp.mu.Unlock()
	}
}

// DirtyCount returns the number of dirty frames — the quantity Figure
// 2(b) reports as a percentage of the cache.
func (p *Pool) DirtyCount() int { return int(p.dirtyTotal.Load()) }

// DirtyPIDs returns the PIDs of all dirty frames (test oracle for DPT
// safety).
func (p *Pool) DirtyPIDs() []storage.PageID {
	out := make([]storage.PageID, 0, 16)
	for _, sp := range p.subs {
		sp.lock()
		for pid, f := range sp.frames {
			if f.Dirty {
				out = append(out, pid)
			}
		}
		sp.mu.Unlock()
	}
	return out
}

// Get returns the frame for pid, fetching from disk on a miss (which
// advances the virtual clock per the disk model) and evicting as
// needed. The frame is pinned; callers must Unpin.
//
// When the disk is in real-IO mode the sub-pool latch is released for
// the duration of the miss read: the frame is inserted first as a
// pinned "loading" placeholder so concurrent getters of the same page
// wait for the one IO instead of duplicating it, and getters of other
// pages proceed — which is what lets parallel redo workers overlap
// their page fetches in wall-clock time.
func (p *Pool) Get(pid storage.PageID) (*Frame, error) {
	sp := p.sub(pid)
	sp.lock()
	for {
		f, ok := sp.frames[pid]
		if !ok {
			break
		}
		if f.loading != nil {
			ch := f.loading
			sp.mu.Unlock()
			<-ch
			sp.lock()
			// Re-lookup: the load may have failed and removed the frame.
			continue
		}
		sp.stats.Hits++
		f.pins++
		sp.pol.touch(f)
		sp.mu.Unlock()
		return f, nil
	}
	sp.stats.Misses++
	if err := sp.ensureRoom(); err != nil {
		sp.mu.Unlock()
		return nil, err
	}
	if p.disk.RealTime() {
		f := &Frame{PID: pid, pins: 1, loading: make(chan struct{})}
		sp.pol.admit(f)
		sp.frames[pid] = f
		p.resident.Add(1)
		sp.mu.Unlock()
		data, err := p.disk.Read(pid)
		sp.lock()
		close(f.loading)
		f.loading = nil
		if err != nil {
			sp.removeFrame(f)
			sp.mu.Unlock()
			return nil, err
		}
		f.Page = page.Wrap(data)
		sp.mu.Unlock()
		return f, nil
	}
	defer sp.mu.Unlock()
	data, err := p.disk.Read(pid)
	if err != nil {
		return nil, err
	}
	f := &Frame{PID: pid, Page: page.Wrap(data), pins: 1}
	sp.pol.admit(f)
	sp.frames[pid] = f
	p.resident.Add(1)
	return f, nil
}

// removeFrame unlinks f from the page map and the replacement order.
// Caller holds sp.mu.
func (sp *subPool) removeFrame(f *Frame) {
	if f.Dirty {
		sp.dirty--
		sp.p.dirtyTotal.Add(-1)
	}
	sp.pol.remove(f)
	delete(sp.frames, f.PID)
	sp.p.resident.Add(-1)
}

// GetIfCached returns the pinned frame if present, else nil. A frame
// whose read is still in flight counts as absent.
func (p *Pool) GetIfCached(pid storage.PageID) *Frame {
	sp := p.sub(pid)
	sp.lock()
	defer sp.mu.Unlock()
	f, ok := sp.frames[pid]
	if !ok || f.loading != nil {
		return nil
	}
	sp.stats.Hits++
	f.pins++
	sp.pol.touch(f)
	return f
}

// Contains reports whether pid is cached, without touching replacement
// state.
func (p *Pool) Contains(pid storage.PageID) bool {
	sp := p.sub(pid)
	sp.lock()
	defer sp.mu.Unlock()
	_, ok := sp.frames[pid]
	return ok
}

// NewPage allocates a pinned frame for a brand-new page (no disk read)
// formatted as type t. Used by B-tree page allocation.
func (p *Pool) NewPage(pid storage.PageID, t page.Type) (*Frame, error) {
	sp := p.sub(pid)
	sp.lock()
	defer sp.mu.Unlock()
	if _, ok := sp.frames[pid]; ok {
		return nil, fmt.Errorf("buffer: NewPage of cached page %d", pid)
	}
	if err := sp.ensureRoom(); err != nil {
		return nil, err
	}
	sp.stats.NewPages++
	data := make([]byte, p.disk.Config().PageSize)
	f := &Frame{PID: pid, Page: page.Format(data, t), pins: 1}
	sp.pol.admit(f)
	sp.frames[pid] = f
	p.resident.Add(1)
	return f, nil
}

// Unpin releases one pin on f.
func (p *Pool) Unpin(f *Frame) {
	sp := p.sub(f.PID)
	sp.lock()
	defer sp.mu.Unlock()
	if f.pins <= 0 {
		panic(fmt.Sprintf("buffer: unpin of unpinned page %d", f.PID))
	}
	f.pins--
}

// MarkDirty records that the operation at lsn updated f. The caller has
// already applied the change and set the page's pLSN. Crossing the
// lazywriter's ceiling triggers background cleaning of cold dirty
// pages.
func (p *Pool) MarkDirty(f *Frame, lsn wal.LSN) {
	sp := p.sub(f.PID)
	sp.lock()
	defer sp.mu.Unlock()
	if !f.Dirty {
		f.Dirty = true
		f.RecLSN = lsn
		f.CkptBit = sp.ckptBit
		sp.dirty++
		p.dirtyTotal.Add(1)
	}
	f.LastLSN = lsn
	sp.maybeClean()
}

// maybeClean is the lazywriter, scoped to one sub-pool. The rate term
// writes behind the update stream at a fixed fraction of the dirtying
// rate; the ceiling term bounds the dirty count outright.
func (sp *subPool) maybeClean() {
	p := sp.p
	target := p.cleanerTarget.Load()
	if target <= 0 || p.cleanerSuspended.Load() {
		return
	}
	want := 0
	if every := int(p.cleanerEvery.Load()); every > 0 {
		sp.cleanerTick++
		if sp.cleanerTick >= every {
			sp.cleanerTick = 0
			// Rate-term flush, unless the cache is nearly clean (no
			// point churning the last few dirty pages).
			if sp.dirty > sp.capacity/20 {
				want = 1
			}
		}
	}
	ceiling := int(target * float64(sp.capacity))
	if over := sp.dirty - ceiling; over > want {
		want = over
	}
	if want > 0 {
		sp.pol.sweepCold(want, sp.flushFrame)
	}
}

// ensureRoom evicts one unpinned, unreferenced frame if the sub-pool is
// full, flushing it first when dirty. Caller holds sp.mu; a dirty
// eviction in real-IO mode releases it across the write, so the loop
// revalidates the victim after each flush.
func (sp *subPool) ensureRoom() error {
	for attempt := 0; attempt < 2*sp.capacity+2; attempt++ {
		if len(sp.frames) < sp.capacity {
			return nil
		}
		f := sp.pol.victim()
		if f == nil {
			return fmt.Errorf("buffer: all %d frames pinned, cannot evict", sp.capacity)
		}
		if f.Dirty {
			sp.stats.DirtyEvict++
			if err := sp.flushFrame(f); err != nil {
				return err
			}
			// The latch may have been released mid-flush: the frame can
			// have been re-pinned, re-dirtied or evicted by someone
			// else. Revalidate before removal.
			if sp.frames[f.PID] != f || f.Dirty || !evictable(f) {
				continue
			}
		}
		sp.stats.Evictions++
		sp.removeFrame(f)
		return nil
	}
	return fmt.Errorf("buffer: all %d frames pinned, cannot evict", sp.capacity)
}

// FlushFrame writes f to disk, honouring the WAL protocol: if f carries
// updates beyond the stable log, the log is forced first. The flush
// hook fires with the write's completion time.
func (p *Pool) FlushFrame(f *Frame) error {
	sp := p.sub(f.PID)
	sp.lock()
	defer sp.mu.Unlock()
	return sp.flushFrame(f)
}

// flushFrame is FlushFrame with sp.mu held. The log-force and
// flush-hook callbacks are invoked while the latch is held; they append
// to the (internally locked) WAL and feed the tracker, neither of which
// calls back into the pool. In real-IO mode the latch is released
// across the page write itself — the page bytes are snapshotted under
// the latch and the frame carries a `flushing` marker so concurrent
// flushers wait and the eviction sweep skips it; a frame re-dirtied
// while its old image is in flight simply stays dirty.
func (sp *subPool) flushFrame(f *Frame) error {
	for f.flushing != nil {
		ch := f.flushing
		sp.mu.Unlock()
		<-ch
		sp.lock()
	}
	if !f.Dirty || sp.frames[f.PID] != f {
		return nil
	}
	p := sp.p
	if f.LastLSN > p.ELSN() {
		h := p.hooks.Load()
		if h.forceLog == nil {
			return fmt.Errorf("buffer: WAL violation flushing page %d: LastLSN %v > eLSN %v and no log force installed",
				f.PID, f.LastLSN, p.ELSN())
		}
		sp.stats.LogForces++
		p.SetELSN(h.forceLog())
		if f.LastLSN > p.ELSN() {
			return fmt.Errorf("buffer: WAL violation persists for page %d after log force", f.PID)
		}
	}
	onFlush := p.hooks.Load().onFlush
	if p.disk.RealTime() {
		ch := make(chan struct{})
		f.flushing = ch
		snap := append([]byte(nil), f.Page.Bytes()...)
		lsnAtCopy := f.LastLSN
		sp.mu.Unlock()
		done, err := p.disk.Write(f.PID, snap)
		sp.lock()
		f.flushing = nil
		close(ch)
		if err != nil {
			return err
		}
		if f.Dirty && f.LastLSN == lsnAtCopy {
			f.Dirty = false
			f.RecLSN = wal.NilLSN
			sp.dirty--
			p.dirtyTotal.Add(-1)
		}
		sp.stats.Flushes++
		if onFlush != nil {
			onFlush(f.PID, done)
		}
		return nil
	}
	done, err := p.disk.Write(f.PID, f.Page.Bytes())
	if err != nil {
		return err
	}
	f.Dirty = false
	f.RecLSN = wal.NilLSN
	sp.dirty--
	p.dirtyTotal.Add(-1)
	sp.stats.Flushes++
	if onFlush != nil {
		onFlush(f.PID, done)
	}
	return nil
}

// BeginCheckpointFlip flips the checkpoint bit; pages dirtied from now
// on carry the new value and are exempt from the in-progress
// checkpoint's flushing (§3.2). Sub-pool bits flip one latch at a time;
// the TC holds every shard plane across a checkpoint, so no dirtying
// races the flip.
func (p *Pool) BeginCheckpointFlip() {
	for _, sp := range p.subs {
		sp.lock()
		sp.ckptBit = !sp.ckptBit
		sp.mu.Unlock()
	}
}

// FlushForCheckpoint flushes every dirty frame dirtied before the most
// recent BeginCheckpointFlip (old bit value). On return, all updates
// logged before the begin-checkpoint record are stable.
func (p *Pool) FlushForCheckpoint() error {
	return p.flushWhere(func(sp *subPool, f *Frame) bool {
		return f.CkptBit != sp.ckptBit
	})
}

// FlushAll flushes every dirty frame (clean shutdown; test oracles).
func (p *Pool) FlushAll() error {
	return p.flushWhere(func(*subPool, *Frame) bool { return true })
}

// flushWhere flushes, sub-pool by sub-pool, every dirty frame matching
// keep. Candidates are collected under the latch, then flushed with
// revalidation — flushFrame can release the latch in real-IO mode, so a
// candidate may have been flushed or evicted by someone else meanwhile.
func (p *Pool) flushWhere(keep func(sp *subPool, f *Frame) bool) error {
	for _, sp := range p.subs {
		sp.lock()
		cands := make([]*Frame, 0, sp.dirty)
		for _, f := range sp.frames {
			if f.Dirty && keep(sp, f) {
				cands = append(cands, f)
			}
		}
		for _, f := range cands {
			if sp.frames[f.PID] != f || !f.Dirty || !keep(sp, f) {
				continue
			}
			if err := sp.flushFrame(f); err != nil {
				sp.mu.Unlock()
				return err
			}
		}
		sp.mu.Unlock()
	}
	return nil
}

// Prefetch issues asynchronous reads for the uncached pages among pids,
// bounded so outstanding prefetched pages fit the pool's free frames
// (clamped at zero — in-flight reads can momentarily exceed the frames
// a busy pool has spare). It returns consumed, how many of the input
// pids were handled — issued or skipped because already cached — so
// pacing cursors know where to resume, and issued, how many read IOs
// were actually sent. consumed < len(pids) means the pool has no room;
// consumed > 0 with issued == 0 means progress without IO (the pages
// were already cached), which the redo pacer treats as advance, not
// back-pressure.
func (p *Pool) Prefetch(pids []storage.PageID) (consumed, issued int) {
	free := p.capacity - int(p.resident.Load()) - p.disk.InflightCount()
	if free < 0 {
		free = 0
	}
	want := make([]storage.PageID, 0, len(pids))
	for _, pid := range pids {
		if p.Contains(pid) {
			consumed++
			continue
		}
		if len(want) >= free {
			break
		}
		want = append(want, pid)
		consumed++
	}
	p.disk.Prefetch(want)
	return consumed, len(want)
}

// Drop removes pid from the pool without flushing (crash simulation and
// tests only).
func (p *Pool) Drop(pid storage.PageID) {
	sp := p.sub(pid)
	sp.lock()
	defer sp.mu.Unlock()
	if f, ok := sp.frames[pid]; ok {
		sp.removeFrame(f)
	}
}
