package engine

import (
	"sync"
	"time"

	"logrec/internal/tc"
	"logrec/internal/wal"
)

// CheckpointerConfig tunes the background checkpoint daemon.
type CheckpointerConfig struct {
	// Interval is the wall-clock cadence between checkpoint attempts.
	Interval time.Duration
	// MinRecords skips a tick when fewer than this many log records
	// were appended since the last checkpoint — an idle engine should
	// not grind out empty checkpoints.
	MinRecords int64
}

// DefaultCheckpointerConfig checkpoints every 100ms provided at least
// 256 records of new log exist — frequent enough that the redo scan
// stays short under a steady session workload, cheap enough to be
// invisible when idle.
func DefaultCheckpointerConfig() CheckpointerConfig {
	return CheckpointerConfig{Interval: 100 * time.Millisecond, MinRecords: 256}
}

// CheckpointerStats counts daemon activity.
type CheckpointerStats struct {
	// Taken is the number of completed checkpoints.
	Taken int64
	// Skipped is the number of ticks below the MinRecords threshold.
	Skipped int64
	// LastErr is the outcome of the most recent checkpoint attempt
	// (nil after a success, so a transient failure clears on recovery).
	LastErr error
}

// Checkpointer is the background checkpoint daemon: on a timer it runs
// the TC's penultimate checkpoint protocol (§3.2/§4.2) against the live
// engine — BeginCkpt into the WAL via the group committer, RSSP (the DC
// flushes every page dirtied before the begin record and logs the
// redo-scan-start-point), then EndCkpt and the master-record advance —
// so the redo scan a crash would need stays bounded while concurrent
// tc.Session traffic continues.
type Checkpointer struct {
	mgr *tc.SessionManager
	log *wal.Log
	cfg CheckpointerConfig

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	mu       sync.Mutex
	lastRecs int64
	stats    CheckpointerStats
}

// StartCheckpointer launches the daemon over the engine's session
// manager. Call Stop before crashing or discarding the engine.
// Non-positive config fields take their defaults; pass MinRecords 1 to
// checkpoint on every tick that saw any new log at all.
func (e *Engine) StartCheckpointer(mgr *tc.SessionManager, cfg CheckpointerConfig) *Checkpointer {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultCheckpointerConfig().Interval
	}
	if cfg.MinRecords <= 0 {
		cfg.MinRecords = DefaultCheckpointerConfig().MinRecords
	}
	c := &Checkpointer{
		mgr:      mgr,
		log:      e.Log,
		cfg:      cfg,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		lastRecs: e.Log.Records(),
	}
	go c.run()
	return c
}

func (c *Checkpointer) run() {
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.tick()
		}
	}
}

// tick takes one checkpoint if enough log has accumulated.
func (c *Checkpointer) tick() {
	recs := c.log.Records()
	c.mu.Lock()
	due := recs-c.lastRecs >= c.cfg.MinRecords
	if !due {
		c.stats.Skipped++
	}
	c.mu.Unlock()
	if !due {
		return
	}
	err := c.mgr.Checkpoint()
	c.mu.Lock()
	c.stats.LastErr = err
	if err == nil {
		c.stats.Taken++
		c.lastRecs = c.log.Records()
	}
	c.mu.Unlock()
}

// CheckpointNow takes a checkpoint synchronously, regardless of the
// MinRecords threshold (tests; graceful shutdown).
func (c *Checkpointer) CheckpointNow() error {
	err := c.mgr.Checkpoint()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.LastErr = err
	if err == nil {
		c.stats.Taken++
		c.lastRecs = c.log.Records()
	}
	return err
}

// Stop halts the daemon and waits for any in-flight checkpoint to
// finish. Idempotent: extra calls (e.g. an explicit Stop plus a
// deferred one) are no-ops.
func (c *Checkpointer) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// Stats returns a copy of the daemon counters.
func (c *Checkpointer) Stats() CheckpointerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
