package engine

import (
	"math"
	"sync"
	"time"

	"logrec/internal/tc"
	"logrec/internal/wal"
)

// CheckpointerConfig tunes the background checkpoint daemon.
type CheckpointerConfig struct {
	// Interval is the wall-clock cadence between checkpoint attempts.
	// In budget mode it is the polling cadence at which the replay
	// estimate is re-evaluated, not the checkpoint rate.
	Interval time.Duration
	// MinRecords skips a tick when fewer than this many log records
	// were appended since the last checkpoint — an idle engine should
	// not grind out empty checkpoints. Budget mode falls back to this
	// threshold only until a replay rate has been measured.
	MinRecords int64
	// RecoveryBudget switches the daemon into budget mode: instead of
	// checkpointing on every due interval, it estimates how long
	// replaying the current redo window would take (window bytes ÷ the
	// effective replay rate) and checkpoints when the estimate exceeds
	// the budget — "recover in under X" as a config knob. Zero keeps
	// the interval-driven behavior. StartCheckpointer defaults it from
	// engine Config.RecoveryBudget.
	RecoveryBudget time.Duration
	// ReplayBytesPerSec seeds the replay-rate estimate (bytes of log
	// replayed per wall-clock second). StartCheckpointer defaults it
	// from the engine's LastRecovery, so a recovered engine budgets
	// with the rate its own recovery actually achieved. The daemon
	// refines the estimate with a live append-rate EWMA and uses the
	// slower of the two — conservative: a pessimistic rate means
	// earlier checkpoints, never a blown budget.
	ReplayBytesPerSec float64
}

// DefaultCheckpointerConfig checkpoints every 100ms provided at least
// 256 records of new log exist — frequent enough that the redo scan
// stays short under a steady session workload, cheap enough to be
// invisible when idle.
func DefaultCheckpointerConfig() CheckpointerConfig {
	return CheckpointerConfig{Interval: 100 * time.Millisecond, MinRecords: 256}
}

// CheckpointerStats counts daemon activity.
type CheckpointerStats struct {
	// Taken is the number of completed checkpoints.
	Taken int64
	// Skipped is the number of ticks below the MinRecords threshold
	// (interval mode) or under the replay budget (budget mode).
	Skipped int64
	// BudgetTriggers is the number of checkpoints taken because the
	// estimated replay time of the redo window exceeded RecoveryBudget
	// (a subset of Taken; zero outside budget mode).
	BudgetTriggers int64
	// LastEstReplay is the most recent replay-time estimate for the
	// current redo window (budget mode only).
	LastEstReplay time.Duration
	// LastWindowBytes is the redo-window size behind that estimate:
	// log end minus the start of the window the next crash would replay.
	LastWindowBytes int64
	// ReplayRate is the effective bytes-per-second rate the estimate
	// used — the slower of the recovery-measured seed and the live
	// append-rate EWMA.
	ReplayRate float64
	// LastErr is the outcome of the most recent checkpoint attempt
	// (nil after a success, so a transient failure clears on recovery).
	LastErr error
}

// Checkpointer is the background checkpoint daemon: on a timer it runs
// the TC's penultimate checkpoint protocol (§3.2/§4.2) against the live
// engine — BeginCkpt into the WAL via the group committer, RSSP (the DC
// flushes every page dirtied before the begin record and logs the
// redo-scan-start-point), then EndCkpt and the master-record advance —
// so the redo scan a crash would need stays bounded while concurrent
// tc.Session traffic continues.
//
// With RecoveryBudget set the daemon is replay-rate-driven: each tick
// it measures the redo window a crash right now would replay (log end
// minus the window start captured at the last checkpoint), divides by
// the effective replay rate, and checkpoints only when the estimated
// replay time would exceed the budget. A fast device or an idle engine
// therefore checkpoints rarely; a slow device or a hot append stream
// checkpoints exactly as often as the SLO demands.
type Checkpointer struct {
	mgr *tc.SessionManager
	log *wal.Log
	cfg CheckpointerConfig

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	mu       sync.Mutex
	lastRecs int64
	// windowStart approximates the redo-scan start a crash would use:
	// the log end captured just before the last successful checkpoint's
	// begin record (NilLSN until one has been taken, so the first
	// budget estimate charges the whole log — conservative).
	windowStart wal.LSN
	// lastEnd/lastSample/liveRate drive the live append-rate EWMA.
	lastEnd    wal.LSN
	lastSample time.Time
	liveRate   float64
	stats      CheckpointerStats
}

// StartCheckpointer launches the daemon over the engine's session
// manager. Call Stop before crashing or discarding the engine.
// Non-positive config fields take their defaults; pass MinRecords 1 to
// checkpoint on every tick that saw any new log at all. A zero
// RecoveryBudget inherits the engine Config's, and a zero
// ReplayBytesPerSec seeds from the engine's LastRecovery — so a
// recovered engine with Config.RecoveryBudget set gets SLO-driven
// checkpointing with measured rates by default.
func (e *Engine) StartCheckpointer(mgr *tc.SessionManager, cfg CheckpointerConfig) *Checkpointer {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultCheckpointerConfig().Interval
	}
	if cfg.MinRecords <= 0 {
		cfg.MinRecords = DefaultCheckpointerConfig().MinRecords
	}
	if cfg.RecoveryBudget <= 0 {
		cfg.RecoveryBudget = e.Cfg.RecoveryBudget
	}
	if cfg.ReplayBytesPerSec <= 0 && e.LastRecovery != nil {
		cfg.ReplayBytesPerSec = e.LastRecovery.ReplayBytesPerSec
	}
	c := &Checkpointer{
		mgr:      mgr,
		log:      e.Log,
		cfg:      cfg,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		lastRecs: e.Log.Records(),
	}
	go c.run()
	return c
}

func (c *Checkpointer) run() {
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.tick()
		}
	}
}

// tick takes one checkpoint if it is due: in interval mode when enough
// log has accumulated, in budget mode when the estimated replay time of
// the current redo window exceeds the recovery budget.
func (c *Checkpointer) tick() {
	now := time.Now()
	recs := c.log.Records()
	end := c.log.EndLSN()

	c.mu.Lock()
	// Live append-rate EWMA: how fast the redo window is growing. It
	// stands in for the replay rate when no recovery seeded one, and
	// caps an optimistic seed (replay cannot reliably outpace the
	// device feeding it under load).
	if !c.lastSample.IsZero() && end > c.lastEnd {
		if dt := now.Sub(c.lastSample).Seconds(); dt > 0 {
			sample := float64(end-c.lastEnd) / dt
			if c.liveRate == 0 {
				c.liveRate = sample
			} else {
				c.liveRate = 0.5*c.liveRate + 0.5*sample
			}
		}
	}
	c.lastSample = now
	c.lastEnd = end

	var due, budgetDue bool
	if c.cfg.RecoveryBudget > 0 {
		rate := c.effectiveRateLocked()
		window := int64(end - c.windowStart)
		c.stats.LastWindowBytes = window
		c.stats.ReplayRate = rate
		if rate > 0 {
			est := time.Duration(float64(window) / rate * float64(time.Second))
			c.stats.LastEstReplay = est
			// recs > lastRecs guards the idle engine: a window that is
			// not growing was already paid for by the last checkpoint.
			budgetDue = est > c.cfg.RecoveryBudget && recs > c.lastRecs
			due = budgetDue
		} else {
			// No rate measured yet (fresh engine, first appends still
			// in flight): fall back to the record-count threshold so
			// the window cannot grow unbounded before the EWMA warms.
			due = recs-c.lastRecs >= c.cfg.MinRecords
		}
	} else {
		due = recs-c.lastRecs >= c.cfg.MinRecords
	}
	if !due {
		c.stats.Skipped++
	}
	c.mu.Unlock()
	if !due {
		return
	}
	c.checkpoint(budgetDue)
}

// effectiveRateLocked picks the replay rate the budget estimate uses:
// the slower of the recovery-measured seed and the live append EWMA
// when both exist. Conservative on purpose — underestimating the rate
// overestimates replay time and checkpoints early; the SLO is an upper
// bound, not a target to ride.
func (c *Checkpointer) effectiveRateLocked() float64 {
	seed := c.cfg.ReplayBytesPerSec
	switch {
	case seed > 0 && c.liveRate > 0:
		return math.Min(seed, c.liveRate)
	case seed > 0:
		return seed
	default:
		return c.liveRate
	}
}

// checkpoint runs one checkpoint and updates the counters; budget marks
// it as triggered by the replay estimate. The window start for the next
// estimate is the log end sampled just before the checkpoint begins —
// the begin-ckpt record lands at or after it, and the RSSP the next
// redo scan starts from is at or after that, so the estimate never
// undercounts the window.
func (c *Checkpointer) checkpoint(budget bool) error {
	start := c.log.EndLSN()
	err := c.mgr.Checkpoint()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.LastErr = err
	if err == nil {
		c.stats.Taken++
		if budget {
			c.stats.BudgetTriggers++
		}
		c.lastRecs = c.log.Records()
		c.windowStart = start
	}
	return err
}

// CheckpointNow takes a checkpoint synchronously, regardless of the
// MinRecords threshold or the replay budget (tests; graceful shutdown).
func (c *Checkpointer) CheckpointNow() error {
	return c.checkpoint(false)
}

// Stop halts the daemon and waits for any in-flight checkpoint to
// finish. Idempotent: extra calls (e.g. an explicit Stop plus a
// deferred one) are no-ops.
func (c *Checkpointer) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// Stats returns a copy of the daemon counters.
func (c *Checkpointer) Stats() CheckpointerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
