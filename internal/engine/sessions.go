package engine

import (
	"time"

	"logrec/internal/tc"
	"logrec/internal/wal"
)

// NewSessionManager puts the engine into multi-client mode: it wraps
// the shared log in a wal.GroupCommitter (batched log forces, EOSL
// published to the DC once per batch) and returns a tc.SessionManager
// from which each client goroutine obtains its own Session.
//
// flushDelay is the emulated stable-write latency of the log device in
// *real* time — the window the batch leader lingers so concurrent
// commits coalesce. Zero batches only what is already waiting (fastest
// for tests); ~100µs models a fast NVMe log force and is what the
// walbench driver uses.
//
// The single-threaded TC methods (Begin/Commit via e.TC) remain usable
// for the recovery experiments; once a session manager exists, drive
// all transactions through it.
//
// With Config.AutoSplit set (and more than one shard), creating the
// session manager also starts the tc.Balancer that auto-splits hot
// ranges; Crash stops it, or call Balancer().Stop() directly.
func (e *Engine) NewSessionManager(flushDelay time.Duration) *tc.SessionManager {
	gc := wal.NewGroupCommitter(e.Log, func(eLSN wal.LSN) { e.Set.EOSL(eLSN) }, flushDelay)
	e.mgr = tc.NewSessionManager(e.TC, gc)
	if e.Cfg.AutoSplit && e.Cfg.NumShards() > 1 {
		e.balancer = tc.StartBalancer(e.mgr, e.Cfg.TableID, e.Cfg.AutoSplitCfg)
	}
	return e.mgr
}

// Balancer returns the running auto-split balancer, or nil if the
// engine has none (AutoSplit off, single shard, or no session manager
// yet).
func (e *Engine) Balancer() *tc.Balancer { return e.balancer }
