package engine

import (
	"time"

	"logrec/internal/tc"
	"logrec/internal/wal"
)

// NewSessionManager puts the engine into multi-client mode: it wraps
// the shared log in a wal.GroupCommitter (batched log forces, EOSL
// published to the DC once per batch) and returns a tc.SessionManager
// from which each client goroutine obtains its own Session.
//
// flushDelay is the emulated stable-write latency of the log device in
// *real* time — the window the batch leader lingers so concurrent
// commits coalesce. Zero batches only what is already waiting (fastest
// for tests); ~100µs models a fast NVMe log force and is what the
// walbench driver uses.
//
// The single-threaded TC methods (Begin/Commit via e.TC) remain usable
// for the recovery experiments; once a session manager exists, drive
// all transactions through it.
func (e *Engine) NewSessionManager(flushDelay time.Duration) *tc.SessionManager {
	gc := wal.NewGroupCommitter(e.Log, func(eLSN wal.LSN) { e.Set.EOSL(eLSN) }, flushDelay)
	return tc.NewSessionManager(e.TC, gc)
}
