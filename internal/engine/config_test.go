// Config.Validate is the single gate every engine constructor path
// goes through: each rejection here is a config that used to panic or
// misbehave deep inside New. The tests pin both sides — defaults are
// filled in place, and bad combinations come back as errors (also via
// engine.New, which must refuse to build on them).
package engine

import (
	"strings"
	"testing"
	"time"
)

func TestValidateFillsDefaults(t *testing.T) {
	var c Config
	if err := c.Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if c.Shards != 1 {
		t.Errorf("Shards = %d, want 1", c.Shards)
	}
	if want := DefaultConfig().CachePages; c.CachePages != want {
		t.Errorf("CachePages = %d, want %d", c.CachePages, want)
	}
	if c.TableID != 1 {
		t.Errorf("TableID = %d, want 1", c.TableID)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string // substring of the error
	}{
		{"negative shards", func(c *Config) { c.Shards = -2 }, "Shards"},
		{"negative cache", func(c *Config) { c.CachePages = -1 }, "CachePages"},
		{"file device without dir", func(c *Config) { c.Device = DeviceFile; c.Dir = "" }, "Config.Dir"},
		{"unknown device", func(c *Config) { c.Device = "tape" }, "unknown device"},
		{"keyspan below shards", func(c *Config) { c.Shards = 8; c.KeySpan = 5 }, "KeySpan"},
		{"cache too small for shards", func(c *Config) { c.Shards = 8; c.CachePages = 32 }, "8 per shard"},
		{"negative recovery budget", func(c *Config) { c.RecoveryBudget = -time.Second }, "RecoveryBudget"},
		{"negative pool latch shards", func(c *Config) { c.PoolLatchShards = -1 }, "PoolLatchShards"},
		{"unknown pool policy", func(c *Config) { c.PoolPolicy = "arc" }, "PoolPolicy"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted the config")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not mention %q", err, tt.want)
			}
			// New must refuse the same config with the same diagnosis.
			if _, newErr := New(cfg); newErr == nil {
				t.Fatal("New accepted a config Validate rejects")
			} else if !strings.Contains(newErr.Error(), tt.want) {
				t.Fatalf("New error %q does not mention %q", newErr, tt.want)
			}
		})
	}
}

func TestValidateAcceptsShardedConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 4
	cfg.KeySpan = 4096
	cfg.CachePages = 256
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid sharded config rejected: %v", err)
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatalf("New on valid config: %v", err)
	}
	if got := len(eng.DCs); got != 4 {
		t.Fatalf("engine has %d DCs, want 4", got)
	}
}

// TestValidatePlumbsPoolTuning pins the copy-down: pool tuning set on
// the engine config must reach every DC's buffer pool.
func TestValidatePlumbsPoolTuning(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 2
	cfg.CachePages = 256
	cfg.PoolPolicy = "2q"
	cfg.PoolLatchShards = 4
	if err := cfg.Validate(); err != nil {
		t.Fatalf("pool-tuned config rejected: %v", err)
	}
	if cfg.DC.PoolPolicy != "2q" || cfg.DC.PoolLatchShards != 4 {
		t.Fatalf("tuning not copied into DC config: %+v", cfg.DC)
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, ss := range eng.Stats().Shards {
		if ss.PoolPolicy != "2q" {
			t.Errorf("shard %d pool policy = %q, want 2q", i, ss.PoolPolicy)
		}
		if ss.PoolLatchShards != 4 {
			t.Errorf("shard %d latch shards = %d, want 4", i, ss.PoolLatchShards)
		}
	}
}
