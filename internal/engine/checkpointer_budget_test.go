package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"logrec/internal/wal"
)

// TestBudgetCheckpointerTriggersOnWindowGrowth runs the daemon in
// budget mode with a deliberately slow seeded replay rate, so the
// estimated replay time of the growing redo window blows the budget
// over and over: the daemon must checkpoint on the replay estimate
// (BudgetTriggers), land real checkpoint records in the WAL, and report
// the conservative rate it used.
func TestBudgetCheckpointerTriggersOnWindowGrowth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CachePages = 512
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 2000
	if err := eng.Load(rows, func(k uint64) []byte {
		return []byte(fmt.Sprintf("initial-%08d", k))
	}); err != nil {
		t.Fatal(err)
	}
	mgr := eng.NewSessionManager(0)
	// 64 KiB/s replay against a multi-MiB append stream: a 2ms budget
	// tolerates a ~128-byte window, so nearly every polled tick is over
	// budget once traffic starts.
	const seedRate = 64 << 10
	ckpt := eng.StartCheckpointer(mgr, CheckpointerConfig{
		Interval:          time.Millisecond,
		MinRecords:        1,
		RecoveryBudget:    2 * time.Millisecond,
		ReplayBytesPerSec: seedRate,
	})

	const clients, txns, ops = 4, 120, 3
	perClient := rows / clients
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := mgr.NewSession()
			base := uint64(c * perClient)
			for i := 0; i < txns; i++ {
				if err := sess.Begin(); err != nil {
					errs <- err
					return
				}
				for u := 0; u < ops; u++ {
					k := base + uint64((i*ops+u)%perClient)
					if err := sess.Update(cfg.TableID, k, []byte(fmt.Sprintf("c%02d-t%05d-u%d", c, i, u))); err != nil {
						errs <- err
						return
					}
				}
				if err := sess.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ckpt.Stop()

	st := ckpt.Stats()
	if st.LastErr != nil {
		t.Fatalf("checkpointer error: %v", st.LastErr)
	}
	if st.BudgetTriggers == 0 {
		t.Fatal("budget mode never triggered on a window far past its replay budget")
	}
	if st.Taken < st.BudgetTriggers {
		t.Errorf("Taken %d < BudgetTriggers %d", st.Taken, st.BudgetTriggers)
	}
	if st.ReplayRate <= 0 || st.ReplayRate > seedRate {
		t.Errorf("ReplayRate = %v, want in (0, %d]: the effective rate is the slower of seed and live append EWMA", st.ReplayRate, seedRate)
	}
	if st.LastWindowBytes < 0 {
		t.Errorf("LastWindowBytes = %d, want >= 0", st.LastWindowBytes)
	}
	// The triggers produced real checkpoints: Load takes the initial
	// one; budget mode must have appended more protocol records.
	if n := eng.Log.AppendCount(wal.TypeRSSP); int64(n) < st.BudgetTriggers {
		t.Errorf("RSSP records = %d, want >= %d budget-triggered checkpoints", n, st.BudgetTriggers)
	}
	if eng.TC.LastEndCkptLSN() == wal.NilLSN {
		t.Error("master record never advanced")
	}
}

// TestBudgetCheckpointerIdleEngineQuiesces pins the idle guard: with a
// budget configured but no new log, estimated replay of the already
// checkpointed window never forces another checkpoint — budget mode
// must not grind an idle engine.
func TestBudgetCheckpointerIdleEngineQuiesces(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CachePages = 256
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(500, func(k uint64) []byte { return []byte("v") }); err != nil {
		t.Fatal(err)
	}
	mgr := eng.NewSessionManager(0)
	ckpt := eng.StartCheckpointer(mgr, CheckpointerConfig{
		Interval:          time.Millisecond,
		MinRecords:        1,
		RecoveryBudget:    time.Nanosecond, // absurdly tight: any growth would trigger
		ReplayBytesPerSec: 1,               // absurdly slow: any window estimates huge
	})
	time.Sleep(25 * time.Millisecond)
	ckpt.Stop()
	st := ckpt.Stats()
	if st.Taken != 0 {
		t.Errorf("idle engine took %d checkpoints; the no-new-records guard must hold", st.Taken)
	}
	if st.Skipped == 0 {
		t.Error("daemon never ticked")
	}
}

// TestBudgetCheckpointerInheritsEngineSeed checks the StartCheckpointer
// defaulting chain: a zero-valued CheckpointerConfig picks up the
// engine Config's RecoveryBudget and the LastRecovery replay rate, so a
// recovered engine gets SLO-driven checkpointing without any per-daemon
// configuration.
func TestBudgetCheckpointerInheritsEngineSeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CachePages = 256
	cfg.RecoveryBudget = 2 * time.Millisecond
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 800
	if err := eng.Load(rows, func(k uint64) []byte {
		return []byte(fmt.Sprintf("initial-%08d", k))
	}); err != nil {
		t.Fatal(err)
	}
	// Stand in for core.Recover: a measured replay rate from the run
	// that produced this engine.
	eng.LastRecovery = &RecoveryStats{Method: "Log1", ReplayBytesPerSec: 64 << 10}

	mgr := eng.NewSessionManager(0)
	ckpt := eng.StartCheckpointer(mgr, CheckpointerConfig{Interval: time.Millisecond, MinRecords: 1})
	sess := mgr.NewSession()
	for i := 0; i < 300; i++ {
		if err := sess.Begin(); err != nil {
			t.Fatal(err)
		}
		for u := 0; u < 3; u++ {
			k := uint64((i*3 + u) % rows)
			if err := sess.Update(cfg.TableID, k, []byte(fmt.Sprintf("t%05d-u%d", i, u))); err != nil {
				t.Fatal(err)
			}
		}
		if err := sess.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	ckpt.Stop()
	st := ckpt.Stats()
	if st.LastErr != nil {
		t.Fatalf("checkpointer error: %v", st.LastErr)
	}
	if st.BudgetTriggers == 0 {
		t.Fatal("daemon ignored the engine-level RecoveryBudget/LastRecovery seed")
	}
	// Stats() surfaces the recovery summary the seed came from.
	if got := eng.Stats().Recovery; got == nil || got.Method != "Log1" {
		t.Errorf("Stats().Recovery = %+v, want the engine's LastRecovery", got)
	}
}
