package engine

import (
	"fmt"
	"testing"

	"logrec/internal/wal"
)

func TestNewValidatesConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CachePages = 2
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted tiny cache")
	}
	cfg = DefaultConfig()
	cfg.Disk.PageSize = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted zero page size")
	}
}

func TestLoadTakesInitialCheckpoint(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CachePages = 128
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(1000, func(k uint64) []byte {
		return []byte(fmt.Sprintf("v-%06d", k))
	}); err != nil {
		t.Fatal(err)
	}
	if eng.TC.LastEndCkptLSN() == wal.NilLSN {
		t.Fatal("no checkpoint after Load")
	}
	if eng.Log.AppendCount(wal.TypeBeginCkpt) != 1 || eng.Log.AppendCount(wal.TypeEndCkpt) != 1 {
		t.Fatal("checkpoint records missing")
	}
}

func TestCrashFreezesState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CachePages = 128
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(500, func(k uint64) []byte {
		return []byte(fmt.Sprintf("v-%06d", k))
	}); err != nil {
		t.Fatal(err)
	}
	txn := eng.TC.Begin()
	if err := eng.TC.Update(txn, cfg.TableID, 1, []byte("updated-val")); err != nil {
		t.Fatal(err)
	}
	if err := eng.TC.Commit(txn); err != nil {
		t.Fatal(err)
	}
	// Volatile tail: appended but not flushed, must not survive.
	eng.Log.MustAppend(&wal.CommitRec{TxnID: 424242})

	cs := eng.Crash()
	if cs.Log.EndLSN() != cs.Log.FlushedLSN() {
		t.Fatal("crash snapshot includes volatile log tail")
	}
	if cs.LastEndCkpt == wal.NilLSN {
		t.Fatal("master record lost")
	}
	// The frozen disks reject writes.
	if _, err := cs.Disks[0].Write(5, make([]byte, cfg.Disk.PageSize)); err == nil {
		t.Fatal("frozen disk accepted a write")
	}
}

func TestForkIndependence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CachePages = 128
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(500, func(k uint64) []byte {
		return []byte(fmt.Sprintf("v-%06d", k))
	}); err != nil {
		t.Fatal(err)
	}
	cs := eng.Crash()
	clock1, disks1, log1, err1 := cs.Fork(0)
	clock2, disks2, log2, err2 := cs.Fork(0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	disk1, disk2 := disks1[0], disks2[0]
	// Forks share content but not state.
	if disk1 == disk2 || log1 == log2 || clock1 == clock2 {
		t.Fatal("forks share objects")
	}
	// Writing in one fork is invisible in the other.
	if _, err := disk1.Write(5, make([]byte, cfg.Disk.PageSize)); err != nil {
		t.Fatal(err)
	}
	a, _ := disk1.Read(5)
	b, _ := disk2.Read(5)
	if string(a) == string(b) {
		t.Fatal("fork write leaked to sibling")
	}
	// Logs are independently appendable.
	l1 := log1.MustAppend(&wal.CommitRec{TxnID: 1})
	if log2.EndLSN() == log1.EndLSN() {
		t.Fatalf("log append in fork 1 (%v) affected fork 2", l1)
	}
}
