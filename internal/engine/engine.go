// Package engine wires the Deuteronomy components — virtual clock,
// storage devices, shared log, data components and TC — into a runnable
// database engine, and implements the controlled crash that recovery
// experiments start from (§5.1-5.2 of the paper).
//
// Config.Shards = N stands up N range-partitioned data components
// behind one TC and one logical WAL: each shard owns its own device,
// buffer pool and B-tree (in file mode, its own pages.db under a
// per-shard directory), operations route by key through the shard.Set,
// and recovery replays all shards concurrently from the single log.
// The default N=1 engine is the same code with one shard.
//
// Two device modes exist (Config.Device): the default simulated disk,
// where IO costs are modeled on a virtual clock and a crash snapshots
// in-memory structures copy-on-write; and file mode, where pages live
// in real files (storage.FileDisk), the WAL is a real file whose
// forces fsync (wal.FileBackend), the master record is a boot file, and
// a crash is process-kill-shaped — handles close with no flush, and
// recovery reopens whatever the files hold.
package engine

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"logrec/internal/buffer"
	"logrec/internal/dc"
	"logrec/internal/shard"
	"logrec/internal/sim"
	"logrec/internal/storage"
	"logrec/internal/tc"
	"logrec/internal/wal"
)

// DeviceKind selects the storage backend implementation.
type DeviceKind string

// Device modes.
const (
	// DeviceSim is the default: the discrete-event simulated disk.
	DeviceSim DeviceKind = ""
	// DeviceFile backs the engine with real files on a real disk.
	DeviceFile DeviceKind = "file"
)

// Well-known file names inside a file-mode engine directory.
const (
	pagesFileName  = "pages.db"
	walFileName    = "wal.log"
	masterFileName = "master"
)

// Config parameterises an engine instance.
type Config struct {
	// Disk is the storage device configuration (page size; latency
	// model for the simulated device; DirectIO for the file device).
	Disk storage.Config
	// DC configures the data component (CPU costs, ∆/BW tracking).
	DC dc.Config
	// ScanCost is the log-read model used by recovery.
	ScanCost wal.ScanCost
	// CachePages is the buffer pool capacity, in pages. The paper's
	// experiments sweep this (§5.2, Figure 2).
	CachePages int
	// TableID names the single clustered table.
	TableID wal.TableID
	// Device selects the storage backend: DeviceSim (default) or
	// DeviceFile.
	Device DeviceKind
	// Dir is the directory holding the WAL, master record and per-shard
	// page files in file mode (created if missing; ignored for
	// DeviceSim).
	Dir string
	// Shards is the number of range-partitioned data components behind
	// the TC (0 and 1 both mean one DC). Each shard owns an independent
	// device, pool and B-tree; the buffer budget CachePages is divided
	// evenly across shards.
	Shards int
	// KeySpan is the key-domain upper bound partitioned evenly across
	// shards (0 = the full uint64 domain). Set it to the expected row
	// count so the initial ranges balance the bulk-loaded table.
	KeySpan uint64
	// AutoSplit enables the load-driven auto-splitter: when the
	// engine's session manager is created (NewSessionManager), a
	// balancer goroutine watches per-range load and splits/migrates hot
	// ranges (tc.Balancer). Only meaningful with Shards > 1.
	AutoSplit bool
	// AutoSplitCfg tunes the auto-splitter; zero fields take the
	// tc.AutoSplitConfig defaults.
	AutoSplitCfg tc.AutoSplitConfig
	// RecoveryBudget is the recovery SLO: the target upper bound on
	// replay time after a crash. It does not change recovery itself —
	// it switches the background Checkpointer into budget mode, where
	// the daemon estimates how long replaying the current redo window
	// would take (window bytes ÷ measured replay rate, seeded from the
	// last recovery and refined from the live append rate) and
	// checkpoints whenever the estimate would exceed the budget. Zero
	// leaves checkpointing purely interval-driven.
	RecoveryBudget time.Duration
	// PoolPolicy selects every shard pool's eviction policy: "" or
	// "clock" for the second-chance clock the paper's experiments
	// assume, "2q" for the scan-resistant two-segment policy that keeps
	// a re-referenced hot set resident under sequential-scan traffic.
	// Validate copies it into the DC config.
	PoolPolicy string
	// PoolLatchShards splits each shard pool's latch into this many
	// PID-hashed sub-pools so concurrent sessions contend only per
	// sub-pool (0 and 1 both mean the single-latch pool; clamped so
	// every sub-pool keeps at least 8 frames). Validate copies it into
	// the DC config.
	PoolLatchShards int
	// Standby builds the engine as a warm standby (replica mode): Load
	// bulk-loads rows but leaves logging off and takes no checkpoint,
	// so the engine's log stays header-only and can ingest the
	// primary's shipped stream as a byte-identical prefix
	// (wal.AppendStable). A standby engine serves no sessions until a
	// core.Replayer promotes it.
	Standby bool
}

// Validate checks the configuration and fills defaulted fields in
// place: Shards 0 → 1, CachePages 0 → the DefaultConfig capacity,
// TableID 0 → 1. It rejects contradictions that previously surfaced as
// misbehavior deep inside the engine: a negative shard count, an
// unknown device kind, DeviceFile without a directory, a key span too
// small for the shard count, and a buffer budget below 8 pages per
// shard. engine.New calls it; tools building configs by hand can call
// it early for better errors.
func (c *Config) Validate() error {
	if c.Shards < 0 {
		return fmt.Errorf("engine: Shards must be >= 1, got %d", c.Shards)
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.CachePages < 0 {
		return fmt.Errorf("engine: CachePages must be positive, got %d", c.CachePages)
	}
	if c.CachePages == 0 {
		c.CachePages = DefaultConfig().CachePages
	}
	if c.TableID == 0 {
		c.TableID = 1
	}
	switch c.Device {
	case DeviceSim:
	case DeviceFile:
		if c.Dir == "" {
			return fmt.Errorf("engine: file device needs Config.Dir")
		}
	default:
		return fmt.Errorf("engine: unknown device kind %q", c.Device)
	}
	if c.RecoveryBudget < 0 {
		return fmt.Errorf("engine: RecoveryBudget must be >= 0, got %v", c.RecoveryBudget)
	}
	if c.KeySpan != 0 && c.KeySpan < uint64(c.Shards) {
		return fmt.Errorf("engine: KeySpan %d cannot be partitioned across %d shards (want KeySpan >= Shards, or 0 for the full domain)", c.KeySpan, c.Shards)
	}
	if c.CachePages < 8*c.Shards {
		return fmt.Errorf("engine: CachePages must be at least 8 per shard, got %d for %d shards", c.CachePages, c.Shards)
	}
	if c.PoolLatchShards < 0 {
		return fmt.Errorf("engine: PoolLatchShards must be >= 0, got %d", c.PoolLatchShards)
	}
	if !buffer.KnownPolicy(c.PoolPolicy) {
		return fmt.Errorf("engine: unknown PoolPolicy %q (have %q, %q)", c.PoolPolicy, buffer.PolicyClock, buffer.Policy2Q)
	}
	// Thread the pool knobs into the DC config every component (and
	// recovery's DefaultOptions) builds pools from.
	if c.PoolPolicy != "" {
		c.DC.PoolPolicy = c.PoolPolicy
	}
	if c.PoolLatchShards > 0 {
		c.DC.PoolLatchShards = c.PoolLatchShards
	}
	return nil
}

// NumShards returns the effective shard count (at least 1).
func (c Config) NumShards() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

// shardDir names shard i's directory under the engine dir (file mode).
func shardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d", i))
}

// DefaultConfig returns the experiment defaults (see DESIGN.md for the
// scaling relative to the paper's 3.5 GB table).
func DefaultConfig() Config {
	return Config{
		Disk:       storage.DefaultConfig(),
		DC:         dc.DefaultConfig(),
		ScanCost:   wal.DefaultScanCost(),
		CachePages: 1600, // ≈16% of the default table's data pages
		TableID:    1,
	}
}

// Engine is a running TC plus N data components over one virtual clock
// and one shared log. Disk and DC alias shard 0 for single-shard tools;
// Disks, DCs and Set are the general N-shard surface.
type Engine struct {
	Clock *sim.Clock
	Disk  storage.Device
	Disks []storage.Device
	Log   *wal.Log
	DC    *dc.DC
	DCs   []*dc.DC
	Set   *shard.Set
	TC    *tc.TC
	Cfg   Config

	// LastRecovery summarises the recovery run that produced this
	// engine (set by core.Recover; nil for a freshly created one). Its
	// measured replay rate seeds the Checkpointer's budget mode, so a
	// recovered engine sizes its redo windows from how fast replay
	// actually ran on this hardware.
	LastRecovery *RecoveryStats

	// mgr is the live session manager (set by NewSessionManager) and
	// balancer its auto-splitter (nil unless Cfg.AutoSplit); Stats
	// aggregates from both.
	mgr      *tc.SessionManager
	balancer *tc.Balancer
}

// New creates an engine over an empty database. The config is
// validated (and defaulted) by Config.Validate first.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.NumShards()
	clock := &sim.Clock{}
	log := wal.NewLog()
	if cfg.Device == DeviceFile {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("engine: creating %s: %w", cfg.Dir, err)
		}
		be, err := wal.CreateFileBackend(filepath.Join(cfg.Dir, walFileName))
		if err != nil {
			return nil, err
		}
		if err := log.SetBackend(be); err != nil {
			return nil, err
		}
		if err := writeMaster(cfg.Dir, wal.NilLSN); err != nil {
			return nil, err
		}
	}

	disks := make([]storage.Device, n)
	dcs := make([]*dc.DC, n)
	for i := 0; i < n; i++ {
		var (
			disk storage.Device
			err  error
		)
		if cfg.Device == DeviceFile {
			sd := shardDir(cfg.Dir, i)
			if err := os.MkdirAll(sd, 0o755); err != nil {
				return nil, fmt.Errorf("engine: creating %s: %w", sd, err)
			}
			disk, err = storage.NewFileDisk(clock, cfg.Disk, filepath.Join(sd, pagesFileName))
		} else {
			disk, err = storage.New(clock, cfg.Disk)
		}
		if err != nil {
			return nil, err
		}
		d, err := dc.New(clock, disk, log, cfg.CachePages/n, cfg.TableID, wal.ShardID(i), cfg.DC)
		if err != nil {
			return nil, err
		}
		disks[i] = disk
		dcs[i] = d
	}
	set, err := shard.NewSet(shard.DefaultRoutes(n, cfg.KeySpan), dcs)
	if err != nil {
		return nil, err
	}
	t := tc.New(log, set)
	if cfg.Device == DeviceFile {
		dir := cfg.Dir
		t.SetMasterHook(func(lsn wal.LSN) error { return writeMaster(dir, lsn) })
	}
	return &Engine{
		Clock: clock,
		Disk:  disks[0], Disks: disks,
		Log: log,
		DC:  dcs[0], DCs: dcs, Set: set,
		TC: t, Cfg: cfg,
	}, nil
}

// writeMaster persists the master record — the boot-block pointer to
// the latest end-checkpoint record — and fsyncs it.
func writeMaster(dir string, lsn wal.LSN) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(lsn))
	f, err := os.OpenFile(filepath.Join(dir, masterFileName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("engine: opening master record: %w", err)
	}
	defer f.Close()
	if _, err := f.WriteAt(buf[:], 0); err != nil {
		return fmt.Errorf("engine: writing master record: %w", err)
	}
	return f.Sync()
}

// readMaster reads the master record back.
func readMaster(dir string) (wal.LSN, error) {
	buf, err := os.ReadFile(filepath.Join(dir, masterFileName))
	if err != nil {
		return wal.NilLSN, fmt.Errorf("engine: reading master record: %w", err)
	}
	if len(buf) < 8 {
		return wal.NilLSN, fmt.Errorf("engine: master record is %d bytes, want 8", len(buf))
	}
	return wal.LSN(binary.BigEndian.Uint64(buf)), nil
}

// Load bulk-loads n sequential rows (routed to their shards), flushes
// them, enables logging and takes the initial checkpoint so the engine
// is in steady operation. A standby engine (Config.Standby) stops
// after the flush: logging stays off and no checkpoint is taken, so
// its log holds nothing but the header and shipped bytes land at
// exactly the primary's offsets.
func (e *Engine) Load(n int, valFn func(key uint64) []byte) error {
	for k := uint64(0); k < uint64(n); k++ {
		if err := e.Set.LoadRow(k, valFn(k)); err != nil {
			return err
		}
	}
	if err := e.Set.FinishLoad(); err != nil {
		return err
	}
	if e.Cfg.Standby {
		return nil
	}
	e.Set.StartLogging()
	return e.TC.Checkpoint()
}

// BecomePrimary installs the routing table and TC a promotion built
// (core.Replayer.Promote), rewiring the file-mode master hook so the
// promoted engine's checkpoints land in its own boot file. The standby
// flag is cleared: the engine is now an ordinary primary.
func (e *Engine) BecomePrimary(set *shard.Set, t *tc.TC) {
	e.Set = set
	e.TC = t
	e.DC = e.DCs[0]
	e.Cfg.Standby = false
	if e.Cfg.Device == DeviceFile {
		dir := e.Cfg.Dir
		t.SetMasterHook(func(lsn wal.LSN) error { return writeMaster(dir, lsn) })
	}
}

// CrashState is everything that survives a crash. In simulated mode
// that is the frozen stable disks (one per shard), the stable prefix of
// the log, and the TC's master record, forked copy-on-write per
// recovery run so several methods can replay the identical crash side
// by side (§5.1's controlled comparison). In file mode it is just the
// directory tree the dead engine left behind: each Fork copies the
// files into a fresh fork directory and reopens them, the on-disk
// analogue of the copy-on-write fork.
type CrashState struct {
	Disks       []storage.Device
	Log         *wal.Log
	LastEndCkpt wal.LSN
	Cfg         Config

	// Dir is the crashed engine's directory in file mode ("" for the
	// simulated device).
	Dir string

	// ReplayRate is the crashed engine's last measured recovery replay
	// rate in bytes/sec (Engine.LastRecovery.ReplayBytesPerSec; 0 when
	// the engine was never recovered or the run was too fast to time).
	// core.Recover's worker auto-sizing consumes it together with
	// Cfg.RecoveryBudget.
	ReplayRate float64

	// mu guards forks; concurrent Forks of one crash state are allowed
	// (side-by-side recovery), matching the mutex-guarded sim path.
	mu    sync.Mutex
	forks int
}

// Crash freezes the engine's stable state and returns it. The engine
// must not be used afterwards: its volatile state (buffer pools, lock
// table, trackers) is conceptually lost. In file mode the crash is
// process-kill-shaped — every shard's page file and the WAL are closed
// as-is, with no flush, no final log force and no checkpoint; a failure
// to close is a harness-environment error and panics.
func (e *Engine) Crash() *CrashState {
	// The balancer is part of the volatile engine: stop it before the
	// crash point so no migration is mutating the "dead" engine while
	// we freeze it.
	if e.balancer != nil {
		e.balancer.Stop()
		e.balancer = nil
	}
	var replayRate float64
	if e.LastRecovery != nil {
		replayRate = e.LastRecovery.ReplayBytesPerSec
	}
	if e.Cfg.Device == DeviceFile {
		for i, disk := range e.Disks {
			if err := disk.(*storage.FileDisk).Close(); err != nil {
				panic(fmt.Sprintf("engine: crash close of shard %d page file: %v", i, err))
			}
		}
		if err := e.Log.CloseBackend(); err != nil {
			panic(fmt.Sprintf("engine: crash close of log file: %v", err))
		}
		master, err := readMaster(e.Cfg.Dir)
		if err != nil {
			panic(fmt.Sprintf("engine: crash: %v", err))
		}
		return &CrashState{
			LastEndCkpt: master,
			Cfg:         e.Cfg,
			Dir:         e.Cfg.Dir,
			ReplayRate:  replayRate,
		}
	}
	for _, disk := range e.Disks {
		disk.Freeze()
	}
	return &CrashState{
		Disks:       e.Disks,
		Log:         e.Log.Snapshot(),
		LastEndCkpt: e.TC.LastEndCkptLSN(),
		Cfg:         e.Cfg,
		ReplayRate:  replayRate,
	}
}

// TearTail corrupts the crashed WAL with a partial record frame past
// the last complete one — the crash interrupted a log force mid-frame.
// Recovery must trim it: wal.OpenLogFile's ErrTruncated path in file
// mode, Log.CloneTrimmed's identical trim for the simulated snapshot.
// Must be called before any Fork.
func (cs *CrashState) TearTail(nBytes int) error {
	if cs.Dir == "" {
		return cs.Log.TearTail(nBytes)
	}
	return wal.TearFile(filepath.Join(cs.Dir, walFileName), nBytes)
}

// Fork creates an independent replay environment over the crash state:
// a fresh clock, independent per-shard devices holding the
// crash-instant pages, and a writable continuation of the stable log.
// Simulated mode forks each disk copy-on-write and clones the log
// snapshot (trimming any injected torn tail); file mode copies the
// shard page files and the WAL into a fork directory under the crash
// directory and reopens them (trimming any torn WAL tail). cachePages
// ≤ 0 uses the crashed engine's capacity.
func (cs *CrashState) Fork(cachePages int) (*sim.Clock, []storage.Device, *wal.Log, error) {
	clock := &sim.Clock{}
	_ = cachePages
	n := cs.Cfg.NumShards()
	if cs.Dir == "" {
		disks := make([]storage.Device, n)
		for i, d := range cs.Disks {
			disks[i] = d.(*storage.Disk).Fork(clock)
		}
		return clock, disks, cs.Log.CloneTrimmed(), nil
	}
	cs.mu.Lock()
	cs.forks++
	forkDir := filepath.Join(cs.Dir, fmt.Sprintf("fork-%d", cs.forks))
	cs.mu.Unlock()
	if err := os.MkdirAll(forkDir, 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("engine: creating fork dir: %w", err)
	}
	if err := copyFile(filepath.Join(cs.Dir, walFileName), filepath.Join(forkDir, walFileName)); err != nil {
		return nil, nil, nil, fmt.Errorf("engine: forking crash state: %w", err)
	}
	disks := make([]storage.Device, n)
	for i := 0; i < n; i++ {
		sd := shardDir(forkDir, i)
		if err := os.MkdirAll(sd, 0o755); err != nil {
			return nil, nil, nil, fmt.Errorf("engine: creating fork shard dir: %w", err)
		}
		src := filepath.Join(shardDir(cs.Dir, i), pagesFileName)
		dst := filepath.Join(sd, pagesFileName)
		if err := copyFile(src, dst); err != nil {
			return nil, nil, nil, fmt.Errorf("engine: forking shard %d: %w", i, err)
		}
		disk, err := storage.OpenFileDisk(clock, cs.Cfg.Disk, dst)
		if err != nil {
			return nil, nil, nil, err
		}
		disks[i] = disk
	}
	log, err := wal.OpenLogFile(filepath.Join(forkDir, walFileName))
	if err != nil {
		return nil, nil, nil, err
	}
	return clock, disks, log, nil
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
