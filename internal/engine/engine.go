// Package engine wires the Deuteronomy components — virtual clock,
// simulated disk, shared log, DC and TC — into a runnable database
// engine, and implements the controlled crash that recovery experiments
// start from (§5.1-5.2 of the paper).
package engine

import (
	"fmt"

	"logrec/internal/dc"
	"logrec/internal/sim"
	"logrec/internal/storage"
	"logrec/internal/tc"
	"logrec/internal/wal"
)

// Config parameterises an engine instance.
type Config struct {
	// Disk is the stable-storage latency model.
	Disk storage.Config
	// DC configures the data component (CPU costs, ∆/BW tracking).
	DC dc.Config
	// ScanCost is the log-read model used by recovery.
	ScanCost wal.ScanCost
	// CachePages is the buffer pool capacity, in pages. The paper's
	// experiments sweep this (§5.2, Figure 2).
	CachePages int
	// TableID names the single clustered table.
	TableID wal.TableID
}

// DefaultConfig returns the experiment defaults (see DESIGN.md for the
// scaling relative to the paper's 3.5 GB table).
func DefaultConfig() Config {
	return Config{
		Disk:       storage.DefaultConfig(),
		DC:         dc.DefaultConfig(),
		ScanCost:   wal.DefaultScanCost(),
		CachePages: 1600, // ≈16% of the default table's data pages
		TableID:    1,
	}
}

// Engine is a running TC+DC pair over one virtual clock.
type Engine struct {
	Clock *sim.Clock
	Disk  *storage.Disk
	Log   *wal.Log
	DC    *dc.DC
	TC    *tc.TC
	Cfg   Config
}

// New creates an engine over an empty database.
func New(cfg Config) (*Engine, error) {
	if cfg.CachePages < 8 {
		return nil, fmt.Errorf("engine: CachePages must be at least 8, got %d", cfg.CachePages)
	}
	clock := &sim.Clock{}
	disk, err := storage.New(clock, cfg.Disk)
	if err != nil {
		return nil, err
	}
	log := wal.NewLog()
	d, err := dc.New(clock, disk, log, cfg.CachePages, cfg.TableID, cfg.DC)
	if err != nil {
		return nil, err
	}
	t := tc.New(log, d)
	return &Engine{Clock: clock, Disk: disk, Log: log, DC: d, TC: t, Cfg: cfg}, nil
}

// Load bulk-loads n sequential rows, flushes them, enables logging and
// takes the initial checkpoint so the engine is in steady operation.
func (e *Engine) Load(n int, valFn func(key uint64) []byte) error {
	if err := e.DC.BulkLoad(n, valFn); err != nil {
		return err
	}
	e.DC.StartLogging()
	return e.TC.Checkpoint()
}

// CrashState is everything that survives a crash: the frozen stable
// disk, the stable prefix of the log, and the TC's master record. Each
// recovery method forks the disk copy-on-write, so several methods can
// replay the identical crash side by side (§5.1's controlled
// comparison).
type CrashState struct {
	Disk        *storage.Disk
	Log         *wal.Log
	LastEndCkpt wal.LSN
	Cfg         Config
}

// Crash freezes the engine's stable state and returns it. The engine
// must not be used afterwards: its volatile state (buffer pool, lock
// table, trackers) is conceptually lost.
func (e *Engine) Crash() *CrashState {
	e.Disk.Freeze()
	return &CrashState{
		Disk:        e.Disk,
		Log:         e.Log.Snapshot(),
		LastEndCkpt: e.TC.LastEndCkptLSN(),
		Cfg:         e.Cfg,
	}
}

// Fork creates an independent replay environment over the crash state:
// a fresh clock, a copy-on-write disk fork, and a writable continuation
// of the stable log. cachePages ≤ 0 uses the crashed engine's capacity.
func (cs *CrashState) Fork(cachePages int) (*sim.Clock, *storage.Disk, *wal.Log) {
	clock := &sim.Clock{}
	disk := cs.Disk.Fork(clock)
	log := cs.Log.Clone()
	_ = cachePages
	return clock, disk, log
}
