package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"logrec/internal/wal"
)

// TestCheckpointDaemonUnderConcurrentSessions runs the checkpoint
// daemon at an aggressive cadence while session goroutines commit
// concurrently (the PR-1 workload), then checks checkpoints actually
// landed in the live WAL and advanced the master record. Run under
// -race this doubles as the daemon's data-race oracle.
func TestCheckpointDaemonUnderConcurrentSessions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CachePages = 512
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 4000
	if err := eng.Load(rows, func(k uint64) []byte {
		return []byte(fmt.Sprintf("initial-%08d", k))
	}); err != nil {
		t.Fatal(err)
	}
	mgr := eng.NewSessionManager(0)
	ckpt := eng.StartCheckpointer(mgr, CheckpointerConfig{
		Interval:   time.Millisecond,
		MinRecords: 1,
	})

	const clients, txns, ops = 8, 150, 3
	perClient := rows / clients
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := mgr.NewSession()
			base := uint64(c * perClient)
			for i := 0; i < txns; i++ {
				if err := sess.Begin(); err != nil {
					errs <- err
					return
				}
				for u := 0; u < ops; u++ {
					k := base + uint64((i*ops+u)%perClient)
					v := []byte(fmt.Sprintf("c%02d-t%05d-u%d", c, i, u))
					if err := sess.Update(cfg.TableID, k, v); err != nil {
						errs <- err
						return
					}
				}
				if err := sess.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ckpt.Stop()

	st := ckpt.Stats()
	if st.LastErr != nil {
		t.Fatalf("checkpointer error: %v", st.LastErr)
	}
	if st.Taken == 0 {
		t.Fatal("daemon took no checkpoints under a sustained workload")
	}
	// Load() takes the initial checkpoint; the daemon must have appended
	// more Begin/End pairs and at least one RSSP to the live WAL.
	if n := eng.Log.AppendCount(wal.TypeBeginCkpt); n < 2 {
		t.Errorf("BeginCkpt records = %d, want ≥ 2", n)
	}
	if n := eng.Log.AppendCount(wal.TypeEndCkpt); n < 2 {
		t.Errorf("EndCkpt records = %d, want ≥ 2", n)
	}
	if n := eng.Log.AppendCount(wal.TypeRSSP); n < 2 {
		t.Errorf("RSSP records = %d, want ≥ 2", n)
	}
	if eng.TC.LastEndCkptLSN() == wal.NilLSN {
		t.Error("master record never advanced")
	}
	if got := eng.TC.Stats().Checkpoints; got != st.Taken+1 {
		t.Errorf("TC counted %d checkpoints, daemon took %d (+1 initial)", got, st.Taken)
	}
}
