package engine

import (
	"logrec/internal/buffer"
	"logrec/internal/tc"
	"logrec/internal/wal"
)

// Stats is the engine-wide counter snapshot: one call collects the
// TC's transaction counters, the commit path's group-commit batching,
// the log's record counts, the routing table and every shard's pool
// and session-plane counters. Benches and tests should read this
// instead of reaching into components (the old per-component accessors
// still work but are the deprecated path).
type Stats struct {
	// TC is the transaction counters (begun/committed/aborted/...).
	TC tc.Stats
	// WAL is the group committer's batching counters; zero until
	// NewSessionManager has been called.
	WAL wal.GroupCommitStats
	// LogRecords and LogStableRecords count records appended to and
	// made stable on the shared log.
	LogRecords       int64
	LogStableRecords int64
	// Routes is the routing table at the time of the snapshot.
	Routes []wal.RouteEntry
	// Shards holds one entry per data component, indexed by shard ID.
	Shards []ShardStats
	// AutoSplit is the balancer's activity; zero when no balancer runs.
	AutoSplit tc.AutoSplitStats
}

// ShardStats is one shard's slice of the engine snapshot.
type ShardStats struct {
	// Shard is the shard ID.
	Shard wal.ShardID
	// Pool is the shard's buffer-pool counters.
	Pool buffer.Stats
	// DirtyPages is the pool's current dirty-page count.
	DirtyPages int
	// SessionOps is the number of session-plane acquisitions on the
	// shard (zero until NewSessionManager).
	SessionOps int64
	// SessionBusyNS is the real time the shard's plane was held, in
	// nanoseconds — summed across operations, so under concurrency it
	// approximates how busy a dedicated core for this shard would have
	// been.
	SessionBusyNS int64
}

// Stats snapshots the whole engine. Safe to call while sessions run;
// the pieces are individually consistent (each component snapshots
// under its own lock) but not mutually atomic.
func (e *Engine) Stats() Stats {
	st := Stats{
		TC:               e.TC.Stats(),
		LogRecords:       e.Log.Records(),
		LogStableRecords: e.Log.StableRecords(),
		Routes:           e.Set.Routes(),
	}
	var planes []tc.PlaneStats
	if e.mgr != nil {
		st.WAL = e.mgr.CommitStats()
		planes = e.mgr.PlaneStats()
	}
	if e.balancer != nil {
		st.AutoSplit = e.balancer.Stats()
	}
	for i, d := range e.DCs {
		ss := ShardStats{
			Shard:      wal.ShardID(i),
			Pool:       d.Pool().Stats(),
			DirtyPages: d.Pool().DirtyCount(),
		}
		if planes != nil {
			ss.SessionOps = planes[i].Ops
			ss.SessionBusyNS = planes[i].BusyNS
		}
		st.Shards = append(st.Shards, ss)
	}
	return st
}
