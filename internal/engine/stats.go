package engine

import (
	"time"

	"logrec/internal/buffer"
	"logrec/internal/tc"
	"logrec/internal/wal"
)

// RecoveryStats summarises the recovery run that produced an engine.
// core.Recover fills it (the engine package cannot import core, so the
// struct lives here); the Checkpointer's budget mode consumes
// ReplayBytesPerSec as its seed rate.
type RecoveryStats struct {
	// Method names the recovery method that ran (e.g. "Log1").
	Method string
	// WallTotal is the wall-clock duration of the whole run.
	WallTotal time.Duration
	// ReplayBytes is the stable-log span replayed: log end minus the
	// redo scan start.
	ReplayBytes int64
	// ReplayBytesPerSec is the measured replay rate — ReplayBytes over
	// the wall-clock prep+redo time. Zero when the run was too fast to
	// time (pure-sim recoveries replay in virtual time).
	ReplayBytesPerSec float64
	// DecodeRecords, DecodeStall and DecodeWorkers mirror the decode
	// front-end telemetry from core.Metrics (zero on single-shard runs,
	// which scan inline).
	DecodeRecords int64
	// DecodeStall is the stitcher's cumulative wait on segment workers.
	DecodeStall time.Duration
	// DecodeWorkers is the decode parallelism the run used.
	DecodeWorkers int
}

// Stats is the engine-wide counter snapshot: one call collects the
// TC's transaction counters, the commit path's group-commit batching,
// the log's record counts, the routing table and every shard's pool
// and session-plane counters. Benches and tests should read this
// instead of reaching into components (the old per-component accessors
// still work but are the deprecated path).
type Stats struct {
	// TC is the transaction counters (begun/committed/aborted/...).
	TC tc.Stats
	// WAL is the group committer's batching counters; zero until
	// NewSessionManager has been called.
	WAL wal.GroupCommitStats
	// LogRecords and LogStableRecords count records appended to and
	// made stable on the shared log.
	LogRecords       int64
	LogStableRecords int64
	// Routes is the routing table at the time of the snapshot.
	Routes []wal.RouteEntry
	// Shards holds one entry per data component, indexed by shard ID.
	Shards []ShardStats
	// AutoSplit is the balancer's activity; zero when no balancer runs.
	AutoSplit tc.AutoSplitStats
	// Recovery is the summary of the recovery run that produced this
	// engine; nil for an engine that was created fresh rather than
	// recovered.
	Recovery *RecoveryStats
}

// ShardStats is one shard's slice of the engine snapshot.
type ShardStats struct {
	// Shard is the shard ID.
	Shard wal.ShardID
	// Pool is the shard's buffer-pool counters.
	Pool buffer.Stats
	// PoolPolicy names the pool's eviction policy ("clock" or "2q").
	PoolPolicy string
	// PoolLatchShards is the pool's latch-shard count after clamping.
	PoolLatchShards int
	// PoolHitRatio is Pool.Hits/(Hits+Misses), 0 with no traffic.
	PoolHitRatio float64
	// DirtyPages is the pool's current dirty-page count.
	DirtyPages int
	// DirtyFraction is DirtyPages over the pool capacity — the quantity
	// the paper's Figure 2(b) plots as the dirty cache percentage.
	DirtyFraction float64
	// SessionOps is the number of session-plane acquisitions on the
	// shard (zero until NewSessionManager).
	SessionOps int64
	// SessionBusyNS is the real time the shard's plane was held, in
	// nanoseconds — summed across operations, so under concurrency it
	// approximates how busy a dedicated core for this shard would have
	// been.
	SessionBusyNS int64
}

// Stats snapshots the whole engine. Safe to call while sessions run;
// the pieces are individually consistent (each component snapshots
// under its own lock) but not mutually atomic.
func (e *Engine) Stats() Stats {
	st := Stats{
		TC:               e.TC.Stats(),
		LogRecords:       e.Log.Records(),
		LogStableRecords: e.Log.StableRecords(),
		Routes:           e.Set.Routes(),
		Recovery:         e.LastRecovery,
	}
	var planes []tc.PlaneStats
	if e.mgr != nil {
		st.WAL = e.mgr.CommitStats()
		planes = e.mgr.PlaneStats()
	}
	if e.balancer != nil {
		st.AutoSplit = e.balancer.Stats()
	}
	for i, d := range e.DCs {
		pool := d.Pool()
		ss := ShardStats{
			Shard:           wal.ShardID(i),
			Pool:            pool.Stats(),
			PoolPolicy:      pool.Policy(),
			PoolLatchShards: pool.LatchShards(),
			DirtyPages:      pool.DirtyCount(),
		}
		ss.PoolHitRatio = ss.Pool.HitRatio()
		if c := pool.Capacity(); c > 0 {
			ss.DirtyFraction = float64(ss.DirtyPages) / float64(c)
		}
		if planes != nil {
			ss.SessionOps = planes[i].Ops
			ss.SessionBusyNS = planes[i].BusyNS
		}
		st.Shards = append(st.Shards, ss)
	}
	return st
}
