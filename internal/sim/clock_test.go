package sim

import "testing"

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock at %v", c.Now())
	}
	c.Advance(5 * Millisecond)
	if c.Now() != Time(5*Millisecond) {
		t.Fatalf("Now = %v", c.Now())
	}
	c.Advance(0)
	if c.Now() != Time(5*Millisecond) {
		t.Fatal("zero advance moved the clock")
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestAdvanceToIsMonotone(t *testing.T) {
	var c Clock
	c.AdvanceTo(Time(10 * Millisecond))
	if c.Now() != Time(10*Millisecond) {
		t.Fatalf("Now = %v", c.Now())
	}
	c.AdvanceTo(Time(3 * Millisecond)) // past: no-op
	if c.Now() != Time(10*Millisecond) {
		t.Fatal("AdvanceTo moved the clock backward")
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(0).Add(3 * Millisecond)
	b := a.Add(2 * Millisecond)
	if b.Sub(a) != 2*Millisecond {
		t.Fatalf("Sub = %v", b.Sub(a))
	}
}

func TestDurationMilliseconds(t *testing.T) {
	if got := (1500 * Microsecond).Milliseconds(); got != 1.5 {
		t.Fatalf("Milliseconds = %v", got)
	}
}

func TestDurationString(t *testing.T) {
	cases := map[Duration]string{
		2 * Second:        "2.000s",
		3 * Millisecond:   "3.000ms",
		250 * Microsecond: "250.000µs",
		7 * Nanosecond:    "7ns",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", int64(d), got, want)
		}
	}
}
