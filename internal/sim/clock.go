// Package sim provides the discrete-event virtual-time substrate used by
// the simulated disk, buffer pool and recovery harness.
//
// All latencies in this repository are expressed in virtual time, which
// makes recovery-time experiments deterministic and immune to GC pauses,
// scheduler jitter and real IO variance. One virtual Duration unit is one
// nanosecond, mirroring time.Duration so that configuration reads
// naturally (e.g. 4*sim.Millisecond for a random-read seek).
package sim

import (
	"fmt"
	"sync/atomic"
)

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Time is an absolute point on the virtual clock, in nanoseconds since
// the start of the simulation.
type Time int64

// Common duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Milliseconds reports the duration as floating-point milliseconds,
// the unit the paper's figures use.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// String formats the duration in the most natural unit.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Clock is a monotonically advancing virtual clock. The zero value is a
// clock at time zero, ready to use.
//
// Components that consume CPU or wait on IO advance the clock; components
// that overlap work with IO (prefetch) schedule completions in the future
// and only advance the clock when a waiter actually blocks.
//
// The clock is safe for concurrent use: parallel redo workers all charge
// the same clock. Single-threaded experiments see exactly the sequential
// semantics (atomic adds commute).
type Clock struct {
	now atomic.Int64
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return Time(c.now.Load()) }

// Advance moves the clock forward by d. Negative d panics: virtual time
// is monotone.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Advance by negative duration %d", d))
	}
	c.now.Add(int64(d))
}

// AdvanceTo moves the clock forward to t. If t is in the past it is a
// no-op: waiting for an already-completed event costs nothing.
func (c *Clock) AdvanceTo(t Time) {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}
