package wal

import (
	"runtime"
	"sync/atomic"
	"time"

	"logrec/internal/sim"
)

// defaultSegWorkers is the decode width used when SegConfig.Workers is
// zero: one per core, capped — past 8 the stitcher, not decode, is the
// limit.
func defaultSegWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SegConfig parameterises the segmented parallel log scan.
type SegConfig struct {
	// Workers is the number of concurrent decode goroutines. Zero picks
	// min(GOMAXPROCS, 8).
	Workers int
	// SegmentBytes is the offset-aligned segment size the stable log is
	// carved into. Zero picks 256 KiB. Smaller segments spread skewed
	// logs better; larger segments amortise boundary discovery.
	SegmentBytes int
	// MaxAhead bounds how many segments may be claimed by workers but
	// not yet consumed by the stitcher, which bounds decoded-record
	// memory. Zero picks 2×Workers.
	MaxAhead int
}

// defaultSegmentBytes is 64 log pages at the default 4 KiB page size —
// large enough that boundary discovery is noise, small enough that an
// 8-worker decode saturates on the logs the benchmarks replay.
const defaultSegmentBytes = 256 << 10

func (c SegConfig) withDefaults() SegConfig {
	if c.Workers <= 0 {
		c.Workers = defaultSegWorkers()
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = defaultSegmentBytes
	}
	if c.MaxAhead <= 0 {
		c.MaxAhead = 2 * c.Workers
	}
	return c
}

// SegmentStat describes one decoded segment, for diagnosing skewed
// logs (cmd/logstats -segments).
type SegmentStat struct {
	// Start is the byte offset where the segment nominally begins.
	Start LSN
	// End is one past the segment's last byte.
	End LSN
	// First is the first frame boundary the worker locked onto within
	// the segment (End if it found none).
	First LSN
	// Records is how many records the stitched stream drew from this
	// segment.
	Records int
	// DecodeTime is the wall time spent decoding the segment (worker
	// time, plus the stitcher's serial fallback when resynced).
	DecodeTime time.Duration
	// Resynced marks a segment whose speculative decode was discarded
	// because its discovered boundary disagreed with the stitched
	// stream; the stitcher re-decoded it serially.
	Resynced bool
	// Skipped marks a segment swallowed whole by a frame that started
	// in an earlier segment.
	Skipped bool
}

// SegStats is the segmented scan's summary, read after the scan
// completes.
type SegStats struct {
	// Workers is the decode worker count actually used.
	Workers int
	// Segments is how many segments the log was carved into.
	Segments int
	// Resyncs counts segments that failed the continuity check and
	// were re-decoded serially.
	Resyncs int
	// Records is the total records emitted.
	Records int64
	// Stall is the wall time the stitcher spent blocked waiting for a
	// segment's decode to finish (decode-stage starvation).
	Stall time.Duration
	// Segment holds the per-segment breakdown.
	Segment []SegmentStat
}

type segBounds struct{ start, end int }

type segItem struct {
	rec Record
	lsn LSN
	end int
}

type segResult struct {
	first int // discovered first frame offset (== seg end if none)
	items []segItem
	err   error // decode error; legitimate only at the log's true tail
	took  time.Duration
}

// SegScanner decodes the stable log with concurrent workers and
// re-stitches the per-segment streams into exact LSN order.
//
// Segment 0 starts at the requested scan position; every later worker
// finds its first frame by scanning forward to the first offset where
// a complete frame decodes — the same full-frame validation
// AppendStable applies to shipped bytes. The stitcher then verifies
// continuity: a segment is accepted only if its discovered boundary
// equals the byte the stitched stream expects next; otherwise the
// speculative decode is discarded and the segment is re-decoded
// serially from the expected offset. Mis-locks therefore cost time,
// never correctness — the stitched sequence of (record, LSN) pairs is
// byte-identical to wal.Scanner's in all cases, including torn tails
// (which only the final segment can surface, exactly like the serial
// scan).
//
// SegScanner is not safe for concurrent use; one goroutine drives
// Next. Page-read accounting and clock charging replicate Scanner's
// exactly, so LogPagesRead and virtual scan time match the serial path
// and are charged once, on the stitcher.
type SegScanner struct {
	view  []byte
	cfg   SegConfig
	clock *sim.Clock
	cost  ScanCost

	segs    []segBounds
	results []chan *segResult
	sem     chan struct{}
	stop    chan struct{}
	nextSeg atomic.Int64

	cur      int // next segment index to consume
	curRes   *segResult
	curI     int
	expected int // byte offset the stitched stream must produce next
	err      error

	lastPage  int64
	pagesRead int64
	stall     time.Duration
	resyncs   int
	records   int64
	perSeg    []SegmentStat
}

// NewSegScanner returns a segmented parallel scanner positioned at
// from (use FirstLSN for the whole log). clock may be nil to scan
// without charging IO. The zero SegConfig picks sensible defaults.
// Call Close when abandoning the scan early; a scan driven to
// completion needs no Close but may call it.
func (l *Log) NewSegScanner(from LSN, clock *sim.Clock, cost ScanCost, cfg SegConfig) *SegScanner {
	if from < LSN(logHeaderSize) {
		from = LSN(logHeaderSize)
	}
	if cost.PageSize <= 0 {
		cost = DefaultScanCost()
	}
	cfg = cfg.withDefaults()
	view := l.stableView()
	s := &SegScanner{
		view:     view,
		cfg:      cfg,
		clock:    clock,
		cost:     cost,
		expected: int(from),
		lastPage: -1,
		stop:     make(chan struct{}),
	}
	for b := int(from); b < len(view); {
		end := (b/cfg.SegmentBytes + 1) * cfg.SegmentBytes
		if end > len(view) {
			end = len(view)
		}
		s.segs = append(s.segs, segBounds{b, end})
		b = end
	}
	s.results = make([]chan *segResult, len(s.segs))
	for i := range s.results {
		s.results[i] = make(chan *segResult, 1)
	}
	s.perSeg = make([]SegmentStat, len(s.segs))
	for i, sb := range s.segs {
		s.perSeg[i] = SegmentStat{Start: LSN(sb.start), End: LSN(sb.end), First: NilLSN}
	}
	s.sem = make(chan struct{}, cfg.MaxAhead)
	workers := cfg.Workers
	if workers > len(s.segs) {
		workers = len(s.segs)
	}
	for w := 0; w < workers; w++ {
		go s.worker()
	}
	return s
}

// worker claims segment indexes in order and decodes them. The
// decode-ahead token is acquired before claiming, so the lowest
// unconsumed segment is always held by a worker that already has a
// token — the stitcher can always make progress.
func (s *SegScanner) worker() {
	for {
		select {
		case s.sem <- struct{}{}:
		case <-s.stop:
			return
		}
		i := int(s.nextSeg.Add(1) - 1)
		if i >= len(s.segs) {
			return
		}
		res := s.decodeSegment(i)
		select {
		case s.results[i] <- res:
		case <-s.stop:
			return
		}
	}
}

func (s *SegScanner) decodeSegment(i int) *segResult {
	t0 := time.Now()
	segStart, segEnd := s.segs[i].start, s.segs[i].end
	off := segStart
	if i > 0 {
		off = s.findFrame(segStart, segEnd)
	}
	res := &segResult{first: off}
	// Frames whose start is inside the segment belong to it, even when
	// the body straddles the boundary; the next segment's worker skips
	// forward past the straddle when it locks on.
	for off < segEnd {
		rec, next, err := decodeFrame(s.view, off)
		if err != nil {
			res.err = err
			break
		}
		res.items = append(res.items, segItem{rec, LSN(off), next})
		off = next
	}
	res.took = time.Since(t0)
	return res
}

// findFrame scans forward from off for the first offset where a
// complete frame decodes — the same validation screen AppendStable
// applies to shipped bytes. A lock onto bytes that merely look like a
// frame is caught by the stitcher's continuity check, so discovery
// only has to be right often enough to be fast, never for correctness.
func (s *SegScanner) findFrame(off, end int) int {
	for ; off < end; off++ {
		if _, _, err := decodeFrame(s.view, off); err == nil {
			return off
		}
	}
	return end
}

// Next returns the next record and its LSN, in exact log order. It
// returns ok=false at the end of the stable log, or the same error the
// serial scanner would surface at the same position.
func (s *SegScanner) Next() (Record, LSN, bool, error) {
	for {
		if s.err != nil {
			return nil, NilLSN, false, s.err
		}
		if s.curRes != nil {
			if s.curI < len(s.curRes.items) {
				it := s.curRes.items[s.curI]
				s.curI++
				s.charge(int(it.lsn), it.end)
				s.expected = it.end
				s.records++
				return it.rec, it.lsn, true, nil
			}
			if s.curRes.err != nil {
				s.err = s.curRes.err
				continue
			}
			s.curRes = nil
		}
		if s.cur >= len(s.segs) {
			return nil, NilLSN, false, nil
		}
		s.loadSegment()
	}
}

// loadSegment consumes the next segment's decode, verifying stream
// continuity and falling back to a serial re-decode on disagreement.
func (s *SegScanner) loadSegment() {
	i := s.cur
	s.cur++
	segEnd := s.segs[i].end
	res := s.take(i)
	st := &s.perSeg[i]
	st.First = LSN(res.first)
	st.DecodeTime = res.took
	if s.expected >= segEnd {
		// A frame from an earlier segment swallowed this one whole;
		// nothing here can belong to the stitched stream.
		st.Skipped = true
		st.Records = 0
		return
	}
	if res.first == s.expected {
		st.Records = len(res.items)
		s.curRes, s.curI = res, 0
		return
	}
	// Continuity violated: the worker locked onto a false boundary (or
	// found none). Discard its output and re-decode serially from the
	// byte the stream expects — correctness never depends on discovery.
	t0 := time.Now()
	fb := &segResult{first: s.expected}
	off := s.expected
	for off < segEnd {
		rec, next, err := decodeFrame(s.view, off)
		if err != nil {
			fb.err = err
			break
		}
		fb.items = append(fb.items, segItem{rec, LSN(off), next})
		off = next
	}
	s.resyncs++
	st.Resynced = true
	st.Records = len(fb.items)
	st.DecodeTime += time.Since(t0)
	s.curRes, s.curI = fb, 0
}

// take blocks for segment i's decode, accounting the wait as stitcher
// stall, and releases the worker's decode-ahead token.
func (s *SegScanner) take(i int) *segResult {
	select {
	case res := <-s.results[i]:
		<-s.sem
		return res
	default:
	}
	t0 := time.Now()
	res := <-s.results[i]
	s.stall += time.Since(t0)
	<-s.sem
	return res
}

// charge bills sequential log-page reads for the byte range [from,to),
// replicating Scanner.charge exactly.
func (s *SegScanner) charge(from, to int) {
	first := int64(from) / int64(s.cost.PageSize)
	last := int64(to-1) / int64(s.cost.PageSize)
	for p := first; p <= last; p++ {
		if p <= s.lastPage {
			continue
		}
		s.lastPage = p
		s.pagesRead++
		if s.clock != nil {
			s.clock.Advance(s.cost.PerPage)
		}
	}
}

// PagesRead reports how many log pages the stitched stream has
// charged; identical to the serial scanner's accounting.
func (s *SegScanner) PagesRead() int64 { return s.pagesRead }

// Stats returns the scan summary. Meaningful once the scan has
// completed (Next returned ok=false or an error).
func (s *SegScanner) Stats() SegStats {
	return SegStats{
		Workers:  s.cfg.Workers,
		Segments: len(s.segs),
		Resyncs:  s.resyncs,
		Records:  s.records,
		Stall:    s.stall,
		Segment:  s.perSeg,
	}
}

// Close releases the decode workers. It is required when a scan is
// abandoned before completion and harmless (idempotent) otherwise.
func (s *SegScanner) Close() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
}
