package wal

import (
	"fmt"
	"sync"
	"testing"
)

// TestGroupCommitLSNMonotonicity has 16 goroutines append concurrently
// and verifies the log is a well-formed totally-ordered record
// sequence: every append got a unique LSN, and a scan visits exactly
// the appended records in strictly increasing LSN order.
func TestGroupCommitLSNMonotonicity(t *testing.T) {
	const (
		clients = 16
		perGoro = 200
	)
	log := NewLog()
	gc := NewGroupCommitter(log, nil, 0)

	lsns := make([][]LSN, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				lsn, err := gc.Append(&UpdateRec{
					TxnID:  TxnID(c + 1),
					KeyVal: uint64(i),
					NewVal: []byte(fmt.Sprintf("c%d-i%d", c, i)),
				})
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				lsns[c] = append(lsns[c], lsn)
			}
		}(c)
	}
	wg.Wait()
	gc.Flush()

	seen := make(map[LSN]bool, clients*perGoro)
	for c := range lsns {
		for _, lsn := range lsns[c] {
			if seen[lsn] {
				t.Fatalf("duplicate LSN %v", lsn)
			}
			seen[lsn] = true
		}
	}
	if len(seen) != clients*perGoro {
		t.Fatalf("got %d unique LSNs, want %d", len(seen), clients*perGoro)
	}

	// Per-goroutine append order must be monotone (each client sees its
	// own records in log order).
	for c := range lsns {
		for i := 1; i < len(lsns[c]); i++ {
			if lsns[c][i] <= lsns[c][i-1] {
				t.Fatalf("client %d LSNs not monotone: %v then %v", c, lsns[c][i-1], lsns[c][i])
			}
		}
	}

	// A full scan visits every record once, strictly increasing.
	sc := log.NewScanner(FirstLSN(), nil, ScanCost{})
	prev := NilLSN
	n := 0
	for {
		_, lsn, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if lsn <= prev {
			t.Fatalf("scan LSNs not strictly increasing: %v after %v", lsn, prev)
		}
		if !seen[lsn] {
			t.Fatalf("scan found unexpected LSN %v", lsn)
		}
		prev = lsn
		n++
	}
	if n != clients*perGoro {
		t.Fatalf("scan saw %d records, want %d", n, clients*perGoro)
	}
}

// TestGroupCommitBatches verifies that concurrent commit waits coalesce
// into fewer log forces than commits, and that every waiter observes
// its record stable.
func TestGroupCommitBatches(t *testing.T) {
	const clients = 16
	log := NewLog()
	var stableMu sync.Mutex
	var stableSeen []LSN
	gc := NewGroupCommitter(log, func(eLSN LSN) {
		stableMu.Lock()
		stableSeen = append(stableSeen, eLSN)
		stableMu.Unlock()
	}, 0)

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				lsn := gc.MustAppend(&CommitRec{TxnID: TxnID(c + 1)})
				eLSN := gc.WaitStable(lsn)
				if eLSN <= lsn {
					t.Errorf("WaitStable returned %v, not past %v", eLSN, lsn)
					return
				}
				if got := log.FlushedLSN(); got < eLSN {
					t.Errorf("FlushedLSN %v regressed below observed %v", got, eLSN)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	st := gc.Stats()
	if st.Commits != clients*50 {
		t.Fatalf("Commits = %d, want %d", st.Commits, clients*50)
	}
	if st.Flushes == 0 || st.Flushes > st.Commits {
		t.Fatalf("Flushes = %d out of range (commits %d)", st.Flushes, st.Commits)
	}
	if st.FlushedRecords < st.Flushes {
		t.Fatalf("FlushedRecords %d < Flushes %d", st.FlushedRecords, st.Flushes)
	}

	// EOSL publications are monotone non-decreasing.
	stableMu.Lock()
	defer stableMu.Unlock()
	for i := 1; i < len(stableSeen); i++ {
		if stableSeen[i] < stableSeen[i-1] {
			t.Fatalf("EOSL went backward: %v after %v", stableSeen[i], stableSeen[i-1])
		}
	}
}

// TestGroupCommitSingleFlushCoversBatch checks the core batching
// property deterministically: records appended before one WaitStable
// are all covered by that single flush.
func TestGroupCommitSingleFlushCoversBatch(t *testing.T) {
	log := NewLog()
	gc := NewGroupCommitter(log, nil, 0)
	var last LSN
	for i := 0; i < 10; i++ {
		last = gc.MustAppend(&CommitRec{TxnID: TxnID(i + 1)})
	}
	gc.WaitStable(last)
	st := gc.Stats()
	if st.Flushes != 1 {
		t.Fatalf("Flushes = %d, want 1", st.Flushes)
	}
	if st.FlushedRecords != 10 {
		t.Fatalf("FlushedRecords = %d, want 10", st.FlushedRecords)
	}
	if got := st.RecordsPerFlush(); got != 10 {
		t.Fatalf("RecordsPerFlush = %v, want 10", got)
	}
	if log.FlushedLSN() != log.EndLSN() {
		t.Fatalf("flush did not reach log end")
	}
}
