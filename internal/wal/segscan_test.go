package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"logrec/internal/sim"
	"logrec/internal/storage"
)

// fakeFrameBytes returns the encoding of a complete, valid commit
// frame — planted inside record bodies as a decoy so findFrame can
// lock onto a false boundary and the stitcher's continuity check has
// to catch it.
func fakeFrameBytes() []byte {
	body := (&CommitRec{TxnID: 3, PrevLSN: 123}).encodeBody(nil)
	frame := binary.BigEndian.AppendUint32(nil, uint32(len(body)))
	frame = append(frame, byte(TypeCommit))
	return append(frame, body...)
}

func randVal(rng *rand.Rand, decoy []byte) []byte {
	n := rng.Intn(200)
	if rng.Intn(10) == 0 {
		// Occasionally huge, so frames straddle (and sometimes swallow
		// whole) small test segments.
		n = 2048 + rng.Intn(8192)
	}
	b := make([]byte, n)
	rng.Read(b)
	if n > len(decoy) && rng.Intn(3) == 0 {
		copy(b[rng.Intn(n-len(decoy)+1):], decoy)
	}
	return b
}

func buildRandomLog(rng *rand.Rand, n int) *Log {
	l := NewLog()
	decoy := fakeFrameBytes()
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0:
			l.MustAppend(&CommitRec{TxnID: TxnID(rng.Intn(100)), PrevLSN: LSN(rng.Uint32())})
		case 1:
			l.MustAppend(&InsertRec{TxnID: TxnID(rng.Intn(100)), TableID: 1, KeyVal: rng.Uint64(),
				Val: randVal(rng, decoy), PageID: storage.PageID(rng.Uint32()), PrevLSN: LSN(rng.Uint32())})
		case 2:
			l.MustAppend(&DeleteRec{TxnID: TxnID(rng.Intn(100)), TableID: 1, KeyVal: rng.Uint64(),
				OldVal: randVal(rng, decoy), PageID: storage.PageID(rng.Uint32()), PrevLSN: LSN(rng.Uint32())})
		case 3:
			l.MustAppend(&UpdateRec{TxnID: TxnID(rng.Intn(100)), TableID: 1, KeyVal: rng.Uint64(),
				OldVal: randVal(rng, decoy), NewVal: randVal(rng, decoy),
				PageID: storage.PageID(rng.Uint32()), PrevLSN: LSN(rng.Uint32())})
		case 4:
			l.MustAppend(&SMORec{
				Meta:   TreeMeta{TableID: 1, Root: 5, Height: 2, NextPID: 9},
				Images: []PageImage{{PageID: storage.PageID(rng.Uint32()), Data: randVal(rng, decoy)}},
			})
		case 5:
			l.MustAppend(&EndCkptRec{BeginLSN: LSN(rng.Uint32()),
				Active: []ActiveTxn{{TxnID: TxnID(rng.Intn(50)), LastLSN: LSN(rng.Uint32())}}})
		}
	}
	l.Flush()
	return l
}

type scanDump struct {
	lsns   []LSN
	types  []Type
	bodies [][]byte
	err    error
}

func drainScan(next func() (Record, LSN, bool, error)) scanDump {
	var d scanDump
	for {
		rec, lsn, ok, err := next()
		if err != nil {
			d.err = err
			return d
		}
		if !ok {
			return d
		}
		d.lsns = append(d.lsns, lsn)
		d.types = append(d.types, rec.Type())
		d.bodies = append(d.bodies, rec.encodeBody(nil))
	}
}

func compareDumps(t *testing.T, ctx string, want, got scanDump) {
	t.Helper()
	if !reflect.DeepEqual(want.lsns, got.lsns) {
		t.Fatalf("%s: LSN sequence diverged: serial %d records, segmented %d", ctx, len(want.lsns), len(got.lsns))
	}
	if !reflect.DeepEqual(want.types, got.types) {
		t.Fatalf("%s: record type sequence diverged", ctx)
	}
	if !reflect.DeepEqual(want.bodies, got.bodies) {
		t.Fatalf("%s: record bodies diverged", ctx)
	}
	switch {
	case want.err == nil && got.err != nil:
		t.Fatalf("%s: segmented errored where serial did not: %v", ctx, got.err)
	case want.err != nil && got.err == nil:
		t.Fatalf("%s: serial errored where segmented did not: %v", ctx, want.err)
	case want.err != nil && want.err.Error() != got.err.Error():
		t.Fatalf("%s: errors diverge:\nserial:    %v\nsegmented: %v", ctx, want.err, got.err)
	}
}

// TestSegScannerMatchesSerialProperty is the decoder oracle: for
// fuzzed logs — decoy frames inside bodies, frames straddling and
// swallowing segments, torn tails, mid-log scan starts — the stitched
// stream must be byte-identical to wal.Scanner, with identical page
// accounting, virtual-time charge, and error position.
func TestSegScannerMatchesSerialProperty(t *testing.T) {
	cost := ScanCost{PageSize: 4096, PerPage: 250 * sim.Microsecond}
	cfgs := []SegConfig{
		{Workers: 1, SegmentBytes: 97, MaxAhead: 2},
		{Workers: 2, SegmentBytes: 512},
		{Workers: 3, SegmentBytes: 4096},
		{Workers: 8, SegmentBytes: 1 << 15},
		{}, // all defaults
	}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := buildRandomLog(rng, 120+rng.Intn(250))
		torn := seed%3 == 1
		if torn {
			if err := l.TearTail(1 + rng.Intn(64)); err != nil {
				t.Fatal(err)
			}
		}

		// Baseline pass from the log start to learn record boundaries.
		base := drainScan(l.NewScanner(FirstLSN(), nil, cost).Next)
		from := FirstLSN()
		if seed%3 == 2 && len(base.lsns) > 10 {
			from = base.lsns[rng.Intn(len(base.lsns))]
		}

		serialClock := &sim.Clock{}
		serialSC := l.NewScanner(from, serialClock, cost)
		serial := drainScan(serialSC.Next)
		if torn && !errors.Is(serial.err, ErrTruncated) {
			t.Fatalf("seed %d: torn log, serial err = %v, want ErrTruncated", seed, serial.err)
		}

		for ci, cfg := range cfgs {
			segClock := &sim.Clock{}
			seg := l.NewSegScanner(from, segClock, cost, cfg)
			got := drainScan(seg.Next)
			ctx := segCtx(seed, ci, torn)
			compareDumps(t, ctx, serial, got)
			if seg.PagesRead() != serialSC.PagesRead() {
				t.Fatalf("%s: pages read %d, serial %d", ctx, seg.PagesRead(), serialSC.PagesRead())
			}
			if segClock.Now() != serialClock.Now() {
				t.Fatalf("%s: clock %v, serial %v", ctx, segClock.Now(), serialClock.Now())
			}
			st := seg.Stats()
			if st.Records != int64(len(got.lsns)) {
				t.Fatalf("%s: stats records %d, emitted %d", ctx, st.Records, len(got.lsns))
			}
			seg.Close()
		}
	}
}

func segCtx(seed int64, cfg int, torn bool) string {
	s := fmt.Sprintf("seed %d cfg %d", seed, cfg)
	if torn {
		s += " torn"
	}
	return s
}

// TestSegScannerTruncationInLastSegmentOnly pins the torn-tail
// contract: with a tear past a healthy prefix, every segment before
// the one holding the tear decodes cleanly on the fast path — the
// truncation error is discovered by the final stretch of the log only,
// after all good records have been emitted.
func TestSegScannerTruncationInLastSegmentOnly(t *testing.T) {
	l := NewLog()
	for i := 0; i < 4000; i++ {
		l.MustAppend(&UpdateRec{TxnID: TxnID(i % 50), TableID: 1, KeyVal: uint64(i),
			OldVal: make([]byte, 40), NewVal: make([]byte, 40)})
	}
	l.Flush()
	serialCount := len(drainScan(l.NewScanner(FirstLSN(), nil, ScanCost{}).Next).lsns)
	if err := l.TearTail(37); err != nil {
		t.Fatal(err)
	}

	seg := l.NewSegScanner(FirstLSN(), nil, ScanCost{}, SegConfig{Workers: 4, SegmentBytes: 8 << 10})
	got := drainScan(seg.Next)
	if len(got.lsns) != serialCount {
		t.Fatalf("emitted %d records before the tear, want %d", len(got.lsns), serialCount)
	}
	if !errors.Is(got.err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", got.err)
	}
	st := seg.Stats()
	if st.Segments < 4 {
		t.Fatalf("only %d segments; test needs a multi-segment log", st.Segments)
	}
	// The healthy prefix is uniform and self-framing: every segment
	// before the tear must have been accepted as decoded, never
	// resynced — truncation is a last-segment affair.
	for i, ss := range st.Segment[:st.Segments-1] {
		if ss.Resynced {
			t.Fatalf("segment %d of the healthy prefix was resynced", i)
		}
	}
}

// TestSegScannerFastPathEngages checks the parallel path actually
// runs on a realistic log: multiple segments, zero resyncs, decoded
// by the workers rather than serially salvaged.
func TestSegScannerFastPathEngages(t *testing.T) {
	l := NewLog()
	for i := 0; i < 6000; i++ {
		l.MustAppend(&UpdateRec{TxnID: TxnID(i % 100), TableID: 1, KeyVal: uint64(i),
			OldVal: make([]byte, 64), NewVal: make([]byte, 64)})
	}
	l.Flush()
	seg := l.NewSegScanner(FirstLSN(), nil, ScanCost{}, SegConfig{Workers: 4, SegmentBytes: 16 << 10})
	got := drainScan(seg.Next)
	if got.err != nil {
		t.Fatal(got.err)
	}
	st := seg.Stats()
	if st.Segments < 8 {
		t.Fatalf("segments = %d, want a real carve-up", st.Segments)
	}
	if st.Resyncs != 0 {
		t.Fatalf("resyncs = %d on a clean uniform log, want 0", st.Resyncs)
	}
	if st.Records != 6000 {
		t.Fatalf("records = %d, want 6000", st.Records)
	}
}

// TestSegScannerCloseEarly abandons a scan mid-stream; Close must
// release the decode workers without hanging even when the
// decode-ahead window is saturated.
func TestSegScannerCloseEarly(t *testing.T) {
	l := NewLog()
	for i := 0; i < 3000; i++ {
		l.MustAppend(&UpdateRec{TxnID: 1, TableID: 1, KeyVal: uint64(i),
			OldVal: make([]byte, 32), NewVal: make([]byte, 32)})
	}
	l.Flush()
	seg := l.NewSegScanner(FirstLSN(), nil, ScanCost{}, SegConfig{Workers: 4, SegmentBytes: 4 << 10, MaxAhead: 2})
	for i := 0; i < 5; i++ {
		if _, _, ok, err := seg.Next(); !ok || err != nil {
			t.Fatalf("Next %d: ok=%v err=%v", i, ok, err)
		}
	}
	seg.Close()
	seg.Close() // idempotent
}
