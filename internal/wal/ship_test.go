package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

// fillLog appends n committed single-update transactions and flushes.
func fillLog(t *testing.T, l *Log, n int, txnBase uint64) {
	t.Helper()
	for i := 0; i < n; i++ {
		id := TxnID(txnBase + uint64(i) + 1)
		lsn := l.MustAppend(&UpdateRec{
			TxnID: id, TableID: 1, KeyVal: uint64(i),
			OldVal: []byte("old"), NewVal: []byte(fmt.Sprintf("new-%d", i)),
			PageID: 7, ShardID: 0,
		})
		l.MustAppend(&CommitRec{TxnID: id, PrevLSN: lsn})
	}
	l.Flush()
}

// shipAll pumps every available segment from src into dst with the
// given segment size, asserting convergence.
func shipAll(t *testing.T, src, dst *Log, segBytes int) {
	t.Helper()
	r := src.NewShipReader(dst.FlushedLSN())
	for {
		seg, ok, err := r.Next(segBytes)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		mark, err := dst.AppendStable(seg.From, seg.Data)
		if err != nil {
			t.Fatal(err)
		}
		if mark < seg.End() {
			r.Resume(mark)
		}
	}
	if got, want := dst.FlushedLSN(), src.FlushedLSN(); got != want {
		t.Fatalf("standby stable end %v, primary %v", got, want)
	}
}

func stableBytes(t *testing.T, l *Log) []byte {
	t.Helper()
	b, err := l.ReadStable(FirstLSN(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestShipRoundTrip(t *testing.T) {
	primary := NewLog()
	fillLog(t, primary, 200, 0)
	for _, segBytes := range []int{16, 64, 4096, 1 << 20} {
		standby := NewLog()
		shipAll(t, primary, standby, segBytes)
		if !bytes.Equal(stableBytes(t, primary), stableBytes(t, standby)) {
			t.Fatalf("segBytes=%d: shipped log bytes differ from primary", segBytes)
		}
		if got, want := standby.StableRecords(), primary.StableRecords(); got != want {
			t.Fatalf("segBytes=%d: standby has %d stable records, primary %d", segBytes, got, want)
		}
	}
}

func TestShipResumesAcrossFlushes(t *testing.T) {
	primary := NewLog()
	standby := NewLog()
	fillLog(t, primary, 20, 0)
	shipAll(t, primary, standby, 128)
	// More primary traffic after the standby caught up; shipping resumes
	// from the standby's watermark.
	fillLog(t, primary, 20, 100)
	shipAll(t, primary, standby, 128)
	if !bytes.Equal(stableBytes(t, primary), stableBytes(t, standby)) {
		t.Fatal("resumed ship diverged from primary")
	}
}

func TestAppendStableDuplicateIsNoop(t *testing.T) {
	primary := NewLog()
	fillLog(t, primary, 5, 0)
	standby := NewLog()
	seg, ok, err := primary.NewShipReader(FirstLSN()).Next(0)
	if err != nil || !ok {
		t.Fatalf("reading segment: ok=%v err=%v", ok, err)
	}
	mark1, err := standby.AppendStable(seg.From, seg.Data)
	if err != nil {
		t.Fatal(err)
	}
	recs := standby.StableRecords()
	// The exact same segment again, and an overlapping re-send.
	mark2, err := standby.AppendStable(seg.From, seg.Data)
	if err != nil {
		t.Fatal(err)
	}
	if mark2 != mark1 || standby.StableRecords() != recs {
		t.Fatalf("duplicate segment changed the log: mark %v→%v, records %d→%d",
			mark1, mark2, recs, standby.StableRecords())
	}
	half := len(seg.Data) / 2
	mark3, err := standby.AppendStable(seg.From, seg.Data[:half])
	if err != nil {
		t.Fatal(err)
	}
	if mark3 != mark1 {
		t.Fatalf("overlapping re-send moved the watermark: %v → %v", mark1, mark3)
	}
}

func TestAppendStableGap(t *testing.T) {
	primary := NewLog()
	fillLog(t, primary, 10, 0)
	r := primary.NewShipReader(FirstLSN())
	seg1, _, err := r.Next(256)
	if err != nil {
		t.Fatal(err)
	}
	seg2, ok, err := r.Next(256)
	if err != nil || !ok {
		t.Fatalf("second segment: ok=%v err=%v", ok, err)
	}
	standby := NewLog()
	// Deliver out of order: the delayed first segment leaves a gap.
	if _, err := standby.AppendStable(seg2.From, seg2.Data); !errors.Is(err, ErrShipGap) {
		t.Fatalf("gap segment: got %v, want ErrShipGap", err)
	}
	if standby.FlushedLSN() != FirstLSN() {
		t.Fatalf("gap segment moved the watermark to %v", standby.FlushedLSN())
	}
	// In-order delivery heals it.
	if _, err := standby.AppendStable(seg1.From, seg1.Data); err != nil {
		t.Fatal(err)
	}
	if _, err := standby.AppendStable(seg2.From, seg2.Data); err != nil {
		t.Fatal(err)
	}
}

// tornFrameBytes is the same partial frame TearTail/TearFile inject: a
// frame header promising a body far past any real frame, cut short.
func tornFrameBytes(n int) []byte {
	frame := make([]byte, frameHeaderSize+n)
	binary.BigEndian.PutUint32(frame, uint32(1<<24))
	frame[4] = byte(TypeUpdate)
	for i := frameHeaderSize; i < len(frame); i++ {
		frame[i] = 0xA5
	}
	return frame[:n]
}

func TestAppendStableTornTailHeldBack(t *testing.T) {
	primary := NewLog()
	fillLog(t, primary, 10, 0)
	seg, _, err := primary.NewShipReader(FirstLSN()).Next(0)
	if err != nil {
		t.Fatal(err)
	}

	// A transfer torn mid-frame: the cut frame's bytes are buffered but
	// not counted stable until the rest arrives.
	cut := len(seg.Data) - 7
	standby := NewLog()
	mark, err := standby.AppendStable(seg.From, seg.Data[:cut])
	if err != nil {
		t.Fatal(err)
	}
	if mark != seg.From+LSN(cut) {
		t.Fatalf("ingest watermark %v, want %v", mark, seg.From+LSN(cut))
	}
	if standby.FlushedLSN() >= mark {
		t.Fatalf("partial frame counted stable: FlushedLSN %v at ingest %v", standby.FlushedLSN(), mark)
	}
	// Ship the rest from the watermark; the buffered frame completes.
	if _, err := standby.AppendStable(mark, seg.Data[cut:]); err != nil {
		t.Fatal(err)
	}
	if standby.FlushedLSN() != seg.End() {
		t.Fatalf("standby at %v after heal, want %v", standby.FlushedLSN(), seg.End())
	}

	// DropPartialTail discards a buffered fragment (the promotion path).
	standby2 := NewLog()
	if _, err := standby2.AppendStable(seg.From, seg.Data[:cut]); err != nil {
		t.Fatal(err)
	}
	standby2.DropPartialTail()
	if got := standby2.EndLSN(); got != standby2.FlushedLSN() {
		t.Fatalf("partial tail survived the drop: end %v, stable %v", got, standby2.FlushedLSN())
	}

	// A TearTail-shaped garbage frame (16 MiB body claim) after the good
	// bytes: rejected as corrupt rather than buffered forever, with the
	// valid prefix kept.
	standby3 := NewLog()
	torn := append(append([]byte(nil), seg.Data...), tornFrameBytes(40)...)
	mark3, err := standby3.AppendStable(seg.From, torn)
	if err == nil {
		t.Fatal("torn-tail garbage frame ingested without error")
	}
	if mark3 != seg.End() {
		t.Fatalf("garbage frame moved the watermark to %v, want %v", mark3, seg.End())
	}
	if !bytes.Equal(stableBytes(t, standby3), seg.Data) {
		t.Fatal("garbage frame bytes leaked into the standby log")
	}
}

func TestAppendStableCorruptFrameRejected(t *testing.T) {
	primary := NewLog()
	fillLog(t, primary, 3, 0)
	seg, _, err := primary.NewShipReader(FirstLSN()).Next(0)
	if err != nil {
		t.Fatal(err)
	}
	// A complete frame of an unknown record type after the good bytes.
	bad := []byte{0, 0, 0, 2, 0xFF, 1, 2}
	standby := NewLog()
	mark, err := standby.AppendStable(seg.From, append(append([]byte(nil), seg.Data...), bad...))
	if err == nil {
		t.Fatal("corrupt complete frame ingested without error")
	}
	if mark != seg.End() {
		t.Fatalf("valid prefix not kept: watermark %v, want %v", mark, seg.End())
	}
	// The log remains usable from the watermark.
	fillLog(t, primary, 3, 50)
	shipAll(t, primary, standby, 0)
}

func TestShipReaderOverFileBackend(t *testing.T) {
	dir := t.TempDir()
	primary := NewLog()
	be, err := CreateFileBackend(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.SetBackend(be); err != nil {
		t.Fatal(err)
	}
	fillLog(t, primary, 50, 0)
	if primary.Backend().Stats().Reads != 0 {
		t.Fatal("unexpected backend reads before shipping")
	}

	// The standby also persists through a backend; its file must be
	// byte-identical to the primary's after the ship.
	standby := NewLog()
	sbe, err := CreateFileBackend(filepath.Join(dir, "standby.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := standby.SetBackend(sbe); err != nil {
		t.Fatal(err)
	}
	shipAll(t, primary, standby, 4096)
	if primary.Backend().Stats().Reads == 0 {
		t.Fatal("shipping did not read through the log device")
	}
	if err := standby.CloseBackend(); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenLogFile(filepath.Join(dir, "standby.log"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stableBytes(t, reopened), stableBytes(t, primary)) {
		t.Fatal("standby log file differs from the primary's stable prefix")
	}
	if err := reopened.CloseBackend(); err != nil {
		t.Fatal(err)
	}
}

func TestReadStableSurvivesCrash(t *testing.T) {
	// File mode: after a crash closes the backend, the stable prefix is
	// still drainable from memory — the promotion path's final drain.
	dir := t.TempDir()
	primary := NewLog()
	be, err := CreateFileBackend(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.SetBackend(be); err != nil {
		t.Fatal(err)
	}
	fillLog(t, primary, 10, 0)
	want := stableBytes(t, primary)
	if err := primary.CloseBackend(); err != nil {
		t.Fatal(err)
	}
	got, err := primary.ReadStable(FirstLSN(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("stable bytes changed across the crash close")
	}
}
