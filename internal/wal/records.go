package wal

import (
	"fmt"

	"logrec/internal/storage"
)

// ---------------------------------------------------------------------
// Transactional data operations
// ---------------------------------------------------------------------

// UpdateRec logs an update of an existing row. Redo applies NewVal;
// undo restores OldVal. The row is identified logically by (TableID,
// Key); PageID is the physiological hint captured when the update ran.
type UpdateRec struct {
	TxnID   TxnID
	TableID TableID
	KeyVal  uint64
	OldVal  []byte
	NewVal  []byte
	PageID  storage.PageID
	ShardID ShardID
	PrevLSN LSN
}

func (r *UpdateRec) Type() Type          { return TypeUpdate }
func (r *UpdateRec) Txn() TxnID          { return r.TxnID }
func (r *UpdateRec) Prev() LSN           { return r.PrevLSN }
func (r *UpdateRec) Table() TableID      { return r.TableID }
func (r *UpdateRec) Key() uint64         { return r.KeyVal }
func (r *UpdateRec) PID() storage.PageID { return r.PageID }
func (r *UpdateRec) Shard() ShardID      { return r.ShardID }

func (r *UpdateRec) encodeBody(dst []byte) []byte {
	dst = putU64(dst, uint64(r.TxnID))
	dst = putU32(dst, uint32(r.TableID))
	dst = putU64(dst, r.KeyVal)
	dst = putBytes(dst, r.OldVal)
	dst = putBytes(dst, r.NewVal)
	dst = putU32(dst, uint32(r.PageID))
	dst = putU32(dst, uint32(r.ShardID))
	dst = putU64(dst, uint64(r.PrevLSN))
	return dst
}

func (r *UpdateRec) decodeBody(src []byte) error {
	d := newDecoder(src)
	r.TxnID = TxnID(d.u64("txn"))
	r.TableID = TableID(d.u32("table"))
	r.KeyVal = d.u64("key")
	r.OldVal = d.bytes("old")
	r.NewVal = d.bytes("new")
	r.PageID = storage.PageID(d.u32("pid"))
	r.ShardID = ShardID(d.u32("shard"))
	r.PrevLSN = LSN(d.u64("prev"))
	return d.finish(TypeUpdate)
}

// InsertRec logs insertion of a new row. Redo inserts; undo deletes.
type InsertRec struct {
	TxnID   TxnID
	TableID TableID
	KeyVal  uint64
	Val     []byte
	PageID  storage.PageID
	ShardID ShardID
	PrevLSN LSN
}

func (r *InsertRec) Type() Type          { return TypeInsert }
func (r *InsertRec) Txn() TxnID          { return r.TxnID }
func (r *InsertRec) Prev() LSN           { return r.PrevLSN }
func (r *InsertRec) Table() TableID      { return r.TableID }
func (r *InsertRec) Key() uint64         { return r.KeyVal }
func (r *InsertRec) PID() storage.PageID { return r.PageID }
func (r *InsertRec) Shard() ShardID      { return r.ShardID }

func (r *InsertRec) encodeBody(dst []byte) []byte {
	dst = putU64(dst, uint64(r.TxnID))
	dst = putU32(dst, uint32(r.TableID))
	dst = putU64(dst, r.KeyVal)
	dst = putBytes(dst, r.Val)
	dst = putU32(dst, uint32(r.PageID))
	dst = putU32(dst, uint32(r.ShardID))
	dst = putU64(dst, uint64(r.PrevLSN))
	return dst
}

func (r *InsertRec) decodeBody(src []byte) error {
	d := newDecoder(src)
	r.TxnID = TxnID(d.u64("txn"))
	r.TableID = TableID(d.u32("table"))
	r.KeyVal = d.u64("key")
	r.Val = d.bytes("val")
	r.PageID = storage.PageID(d.u32("pid"))
	r.ShardID = ShardID(d.u32("shard"))
	r.PrevLSN = LSN(d.u64("prev"))
	return d.finish(TypeInsert)
}

// DeleteRec logs deletion of a row. Redo deletes; undo re-inserts OldVal.
type DeleteRec struct {
	TxnID   TxnID
	TableID TableID
	KeyVal  uint64
	OldVal  []byte
	PageID  storage.PageID
	ShardID ShardID
	PrevLSN LSN
}

func (r *DeleteRec) Type() Type          { return TypeDelete }
func (r *DeleteRec) Txn() TxnID          { return r.TxnID }
func (r *DeleteRec) Prev() LSN           { return r.PrevLSN }
func (r *DeleteRec) Table() TableID      { return r.TableID }
func (r *DeleteRec) Key() uint64         { return r.KeyVal }
func (r *DeleteRec) PID() storage.PageID { return r.PageID }
func (r *DeleteRec) Shard() ShardID      { return r.ShardID }

func (r *DeleteRec) encodeBody(dst []byte) []byte {
	dst = putU64(dst, uint64(r.TxnID))
	dst = putU32(dst, uint32(r.TableID))
	dst = putU64(dst, r.KeyVal)
	dst = putBytes(dst, r.OldVal)
	dst = putU32(dst, uint32(r.PageID))
	dst = putU32(dst, uint32(r.ShardID))
	dst = putU64(dst, uint64(r.PrevLSN))
	return dst
}

func (r *DeleteRec) decodeBody(src []byte) error {
	d := newDecoder(src)
	r.TxnID = TxnID(d.u64("txn"))
	r.TableID = TableID(d.u32("table"))
	r.KeyVal = d.u64("key")
	r.OldVal = d.bytes("old")
	r.PageID = storage.PageID(d.u32("pid"))
	r.ShardID = ShardID(d.u32("shard"))
	r.PrevLSN = LSN(d.u64("prev"))
	return d.finish(TypeDelete)
}

// CLRKind distinguishes which operation a CLR compensates.
type CLRKind uint8

// CLR kinds.
const (
	CLRUndoUpdate CLRKind = iota + 1 // restore OldVal
	CLRUndoInsert                    // delete the inserted key
	CLRUndoDelete                    // re-insert the deleted row
)

// CLRRec is a compensation log record written during undo. It is
// redo-only: UndoNextLSN points at the next record of the transaction
// still to be undone, so undo never repeats work after a crash during
// recovery. RestoreVal carries the value the undo wrote (empty for
// CLRUndoInsert, which removes the key).
type CLRRec struct {
	TxnID       TxnID
	TableID     TableID
	KeyVal      uint64
	Kind        CLRKind
	RestoreVal  []byte
	PageID      storage.PageID
	ShardID     ShardID
	UndoNextLSN LSN
	PrevLSN     LSN
}

func (r *CLRRec) Type() Type          { return TypeCLR }
func (r *CLRRec) Txn() TxnID          { return r.TxnID }
func (r *CLRRec) Prev() LSN           { return r.PrevLSN }
func (r *CLRRec) Table() TableID      { return r.TableID }
func (r *CLRRec) Key() uint64         { return r.KeyVal }
func (r *CLRRec) PID() storage.PageID { return r.PageID }
func (r *CLRRec) Shard() ShardID      { return r.ShardID }

func (r *CLRRec) encodeBody(dst []byte) []byte {
	dst = putU64(dst, uint64(r.TxnID))
	dst = putU32(dst, uint32(r.TableID))
	dst = putU64(dst, r.KeyVal)
	dst = putU8(dst, uint8(r.Kind))
	dst = putBytes(dst, r.RestoreVal)
	dst = putU32(dst, uint32(r.PageID))
	dst = putU32(dst, uint32(r.ShardID))
	dst = putU64(dst, uint64(r.UndoNextLSN))
	dst = putU64(dst, uint64(r.PrevLSN))
	return dst
}

func (r *CLRRec) decodeBody(src []byte) error {
	d := newDecoder(src)
	r.TxnID = TxnID(d.u64("txn"))
	r.TableID = TableID(d.u32("table"))
	r.KeyVal = d.u64("key")
	r.Kind = CLRKind(d.u8("kind"))
	r.RestoreVal = d.bytes("restore")
	r.PageID = storage.PageID(d.u32("pid"))
	r.ShardID = ShardID(d.u32("shard"))
	r.UndoNextLSN = LSN(d.u64("undonext"))
	r.PrevLSN = LSN(d.u64("prev"))
	return d.finish(TypeCLR)
}

// ---------------------------------------------------------------------
// Transaction termination
// ---------------------------------------------------------------------

// CommitRec ends a transaction successfully.
type CommitRec struct {
	TxnID   TxnID
	PrevLSN LSN
}

func (r *CommitRec) Type() Type { return TypeCommit }
func (r *CommitRec) Txn() TxnID { return r.TxnID }
func (r *CommitRec) Prev() LSN  { return r.PrevLSN }

func (r *CommitRec) encodeBody(dst []byte) []byte {
	dst = putU64(dst, uint64(r.TxnID))
	dst = putU64(dst, uint64(r.PrevLSN))
	return dst
}

func (r *CommitRec) decodeBody(src []byte) error {
	d := newDecoder(src)
	r.TxnID = TxnID(d.u64("txn"))
	r.PrevLSN = LSN(d.u64("prev"))
	return d.finish(TypeCommit)
}

// AbortRec ends a transaction after its rollback completed.
type AbortRec struct {
	TxnID   TxnID
	PrevLSN LSN
}

func (r *AbortRec) Type() Type { return TypeAbort }
func (r *AbortRec) Txn() TxnID { return r.TxnID }
func (r *AbortRec) Prev() LSN  { return r.PrevLSN }

func (r *AbortRec) encodeBody(dst []byte) []byte {
	dst = putU64(dst, uint64(r.TxnID))
	dst = putU64(dst, uint64(r.PrevLSN))
	return dst
}

func (r *AbortRec) decodeBody(src []byte) error {
	d := newDecoder(src)
	r.TxnID = TxnID(d.u64("txn"))
	r.PrevLSN = LSN(d.u64("prev"))
	return d.finish(TypeAbort)
}

// ---------------------------------------------------------------------
// Checkpointing (§3.2 penultimate scheme)
// ---------------------------------------------------------------------

// BeginCkptRec marks the start of a checkpoint. The flush of pages
// dirtied before this record happens between begin and end.
type BeginCkptRec struct{}

func (r *BeginCkptRec) Type() Type                   { return TypeBeginCkpt }
func (r *BeginCkptRec) encodeBody(dst []byte) []byte { return dst }
func (r *BeginCkptRec) decodeBody(src []byte) error {
	return newDecoder(src).finish(TypeBeginCkpt)
}

// ActiveTxn is one entry of the active-transaction table captured in an
// end-checkpoint record: the transaction and its most recent LSN, so
// undo can find losers whose records all precede the redo scan start.
type ActiveTxn struct {
	TxnID   TxnID
	LastLSN LSN
}

// EndCkptRec completes a checkpoint: all pages dirtied by operations
// before BeginLSN are now stable, so a crash after this record lets
// recovery start its redo scan at BeginLSN with an empty DPT.
type EndCkptRec struct {
	// BeginLSN is the LSN of the matching BeginCkptRec.
	BeginLSN LSN
	// Active is the transaction table at checkpoint begin.
	Active []ActiveTxn
	// Routes is the key→shard routing table at checkpoint end, so
	// recovery rebuilds routing even when range splits predate the redo
	// scan start (splits inside the scan window replay from their
	// ShardMapRec instead).
	Routes []RouteEntry
}

func (r *EndCkptRec) Type() Type { return TypeEndCkpt }

func (r *EndCkptRec) encodeBody(dst []byte) []byte {
	dst = putU64(dst, uint64(r.BeginLSN))
	dst = putU32(dst, uint32(len(r.Active)))
	for _, a := range r.Active {
		dst = putU64(dst, uint64(a.TxnID))
		dst = putU64(dst, uint64(a.LastLSN))
	}
	dst = putU32(dst, uint32(len(r.Routes)))
	for _, rt := range r.Routes {
		dst = putU64(dst, rt.Start)
		dst = putU32(dst, uint32(rt.Shard))
	}
	return dst
}

func (r *EndCkptRec) decodeBody(src []byte) error {
	d := newDecoder(src)
	r.BeginLSN = LSN(d.u64("beginLSN"))
	n := int(d.u32("nactive"))
	if d.err == nil {
		// Each entry is 16 encoded bytes; reject counts the remaining
		// body cannot hold before allocating.
		if n < 0 || d.off+16*n > len(d.src) {
			d.fail("nactive")
		} else {
			r.Active = make([]ActiveTxn, 0, n)
			for i := 0; i < n; i++ {
				t := TxnID(d.u64("active.txn"))
				l := LSN(d.u64("active.lastLSN"))
				r.Active = append(r.Active, ActiveTxn{TxnID: t, LastLSN: l})
			}
		}
	}
	nr := int(d.u32("nroutes"))
	if d.err == nil {
		// Each route is 12 encoded bytes.
		if nr < 0 || d.off+12*nr > len(d.src) {
			d.fail("nroutes")
		} else {
			r.Routes = make([]RouteEntry, 0, nr)
			for i := 0; i < nr; i++ {
				start := d.u64("route.start")
				sh := ShardID(d.u32("route.shard"))
				r.Routes = append(r.Routes, RouteEntry{Start: start, Shard: sh})
			}
		}
	}
	return d.finish(TypeEndCkpt)
}

// ---------------------------------------------------------------------
// Flush / dirty tracking records
// ---------------------------------------------------------------------

// BWRec is SQL Server's Buffer Write log record (§3.3): the PIDs of
// pages whose flushes completed since the previous BW record, plus the
// end-of-stable-log captured at the first of those flushes (FW-LSN).
// The SQL-style analysis pass uses it to prune the DPT (Algorithm 3).
type BWRec struct {
	WrittenSet []storage.PageID
	FWLSN      LSN
	ShardID    ShardID
}

func (r *BWRec) Type() Type     { return TypeBW }
func (r *BWRec) Shard() ShardID { return r.ShardID }

func (r *BWRec) encodeBody(dst []byte) []byte {
	dst = putPIDs(dst, r.WrittenSet)
	dst = putU64(dst, uint64(r.FWLSN))
	dst = putU32(dst, uint32(r.ShardID))
	return dst
}

func (r *BWRec) decodeBody(src []byte) error {
	d := newDecoder(src)
	r.WrittenSet = d.pids("writtenSet")
	r.FWLSN = LSN(d.u64("fwLSN"))
	r.ShardID = ShardID(d.u32("shard"))
	return d.finish(TypeBW)
}

// DeltaRec is the DC's ∆-log record (§4.1):
//
//	∆-logRec = (DirtySet, WrittenSet, FW-LSN, FirstDirty, TC-LSN)
//
// DirtySet holds, in update order, the PIDs of pages dirtied since the
// previous ∆ record. WrittenSet holds the PIDs whose flushes completed
// in the interval. FWLSN is the TC end-of-stable-log at the first flush
// of the interval. FirstDirty is the index in DirtySet of the first page
// dirtied after that first flush. TCLSN is the eLSN from the most recent
// EOSL when the record was written.
//
// Correctness requires every dirtied page to be captured in some ∆
// record (§4.1); the tracker enforces this by flushing the record when
// DirtySet reaches capacity.
//
// DirtyLSNs is the Appendix D.1 "perfect DPT" extension: when non-empty
// it is parallel to DirtySet and carries the LSN of each dirtying
// update, letting DC analysis build exactly the DPT SQL Server builds.
type DeltaRec struct {
	DirtySet   []storage.PageID
	WrittenSet []storage.PageID
	FWLSN      LSN
	FirstDirty uint32
	TCLSN      LSN
	DirtyLSNs  []LSN
	ShardID    ShardID
}

func (r *DeltaRec) Type() Type     { return TypeDelta }
func (r *DeltaRec) Shard() ShardID { return r.ShardID }

func (r *DeltaRec) encodeBody(dst []byte) []byte {
	dst = putPIDs(dst, r.DirtySet)
	dst = putPIDs(dst, r.WrittenSet)
	dst = putU64(dst, uint64(r.FWLSN))
	dst = putU32(dst, r.FirstDirty)
	dst = putU64(dst, uint64(r.TCLSN))
	dst = putLSNs(dst, r.DirtyLSNs)
	dst = putU32(dst, uint32(r.ShardID))
	return dst
}

func (r *DeltaRec) decodeBody(src []byte) error {
	d := newDecoder(src)
	r.DirtySet = d.pids("dirtySet")
	r.WrittenSet = d.pids("writtenSet")
	r.FWLSN = LSN(d.u64("fwLSN"))
	r.FirstDirty = d.u32("firstDirty")
	r.TCLSN = LSN(d.u64("tcLSN"))
	r.DirtyLSNs = d.lsns("dirtyLSNs")
	r.ShardID = ShardID(d.u32("shard"))
	if err := d.finish(TypeDelta); err != nil {
		return err
	}
	if len(r.DirtyLSNs) != 0 && len(r.DirtyLSNs) != len(r.DirtySet) {
		return fmt.Errorf("%w: delta DirtyLSNs length %d != DirtySet length %d",
			ErrBadRecord, len(r.DirtyLSNs), len(r.DirtySet))
	}
	return nil
}

// ---------------------------------------------------------------------
// DC structure modifications
// ---------------------------------------------------------------------

// PageImage is a physiological after-image of one page.
type PageImage struct {
	PageID storage.PageID
	Data   []byte
}

// TreeMeta is the B-tree metadata resulting from an SMO: the root page,
// tree height and the page allocator's next PID. Replaying SMO records
// in order leaves the allocator and root exactly as they were.
type TreeMeta struct {
	TableID TableID
	Root    storage.PageID
	Height  uint32
	NextPID storage.PageID
}

// SMORec logs a B-tree structure modification (page split or root
// growth) as after-images of every page the SMO changed, plus the
// resulting tree metadata. SMO redo is physiological — the DC knows its
// own PIDs (§4) — and idempotent via the images' embedded pLSNs.
type SMORec struct {
	Meta    TreeMeta
	Images  []PageImage
	ShardID ShardID
}

func (r *SMORec) Type() Type     { return TypeSMO }
func (r *SMORec) Shard() ShardID { return r.ShardID }

// AffectedPIDs returns the set of pages this SMO rewrote — its images'
// PIDs. Parallel redo uses it to scope the SMO barrier to the workers
// owning those pages instead of pausing every shard.
func (r *SMORec) AffectedPIDs() []storage.PageID {
	out := make([]storage.PageID, len(r.Images))
	for i, img := range r.Images {
		out[i] = img.PageID
	}
	return out
}

func (r *SMORec) encodeBody(dst []byte) []byte {
	dst = putU32(dst, uint32(r.Meta.TableID))
	dst = putU32(dst, uint32(r.Meta.Root))
	dst = putU32(dst, r.Meta.Height)
	dst = putU32(dst, uint32(r.Meta.NextPID))
	dst = putU32(dst, uint32(r.ShardID))
	dst = putU32(dst, uint32(len(r.Images)))
	for _, img := range r.Images {
		dst = putU32(dst, uint32(img.PageID))
		dst = putBytes(dst, img.Data)
	}
	return dst
}

func (r *SMORec) decodeBody(src []byte) error {
	d := newDecoder(src)
	r.Meta.TableID = TableID(d.u32("meta.table"))
	r.Meta.Root = storage.PageID(d.u32("meta.root"))
	r.Meta.Height = d.u32("meta.height")
	r.Meta.NextPID = storage.PageID(d.u32("meta.nextPID"))
	r.ShardID = ShardID(d.u32("shard"))
	n := int(d.u32("nimages"))
	if d.err == nil {
		// Each image needs at least 8 encoded bytes (pid + empty data);
		// reject impossible counts before allocating.
		if n < 0 || d.off+8*n > len(d.src) {
			d.fail("nimages")
		} else {
			r.Images = make([]PageImage, 0, n)
			for i := 0; i < n; i++ {
				pid := storage.PageID(d.u32("image.pid"))
				data := d.bytes("image.data")
				r.Images = append(r.Images, PageImage{PageID: pid, Data: data})
			}
		}
	}
	return d.finish(TypeSMO)
}

// RSSPRec records the redo-scan-start-point the TC sent to the DC via
// the RSSP control operation (§4.2). During DC recovery, the DC starts
// building its DPT at the first ∆ record whose TC-LSN exceeds the last
// recorded rsspLSN.
type RSSPRec struct {
	RsspLSN LSN
	ShardID ShardID
}

func (r *RSSPRec) Type() Type     { return TypeRSSP }
func (r *RSSPRec) Shard() ShardID { return r.ShardID }

func (r *RSSPRec) encodeBody(dst []byte) []byte {
	dst = putU64(dst, uint64(r.RsspLSN))
	return putU32(dst, uint32(r.ShardID))
}

func (r *RSSPRec) decodeBody(src []byte) error {
	d := newDecoder(src)
	r.RsspLSN = LSN(d.u64("rsspLSN"))
	r.ShardID = ShardID(d.u32("shard"))
	return d.finish(TypeRSSP)
}

// ShardMapRec logs a routing-table change inside a range-migration
// transaction: once the transaction that moved the rows commits, keys
// at or above SplitAt route to NewShard. Recovery applies the change
// only for committed migrations — a loser migration's rows are undone
// back to their old shard, so its routing change must not take effect.
type ShardMapRec struct {
	TxnID   TxnID
	SplitAt uint64
	// End is the inclusive end of the migrated range. Recovery must not
	// infer the extent from boundaries it can see: load-driven
	// boundary-only splits are unlogged, so the live range the migration
	// actually moved may be narrower than the recovered routing table
	// suggests.
	End      uint64
	NewShard ShardID
	PrevLSN  LSN
}

func (r *ShardMapRec) Type() Type { return TypeShardMap }
func (r *ShardMapRec) Txn() TxnID { return r.TxnID }
func (r *ShardMapRec) Prev() LSN  { return r.PrevLSN }

func (r *ShardMapRec) encodeBody(dst []byte) []byte {
	dst = putU64(dst, uint64(r.TxnID))
	dst = putU64(dst, r.SplitAt)
	dst = putU64(dst, r.End)
	dst = putU32(dst, uint32(r.NewShard))
	dst = putU64(dst, uint64(r.PrevLSN))
	return dst
}

func (r *ShardMapRec) decodeBody(src []byte) error {
	d := newDecoder(src)
	r.TxnID = TxnID(d.u64("txn"))
	r.SplitAt = d.u64("splitAt")
	r.End = d.u64("end")
	r.NewShard = ShardID(d.u32("newShard"))
	r.PrevLSN = LSN(d.u64("prev"))
	return d.finish(TypeShardMap)
}

// newRecord allocates the record struct for a type tag.
func newRecord(t Type) (Record, error) {
	switch t {
	case TypeUpdate:
		return &UpdateRec{}, nil
	case TypeInsert:
		return &InsertRec{}, nil
	case TypeDelete:
		return &DeleteRec{}, nil
	case TypeCommit:
		return &CommitRec{}, nil
	case TypeAbort:
		return &AbortRec{}, nil
	case TypeCLR:
		return &CLRRec{}, nil
	case TypeBeginCkpt:
		return &BeginCkptRec{}, nil
	case TypeEndCkpt:
		return &EndCkptRec{}, nil
	case TypeBW:
		return &BWRec{}, nil
	case TypeDelta:
		return &DeltaRec{}, nil
	case TypeSMO:
		return &SMORec{}, nil
	case TypeRSSP:
		return &RSSPRec{}, nil
	case TypeShardMap:
		return &ShardMapRec{}, nil
	default:
		return nil, fmt.Errorf("%w: unknown record type %d", ErrBadRecord, uint8(t))
	}
}

// Compile-time interface checks.
var (
	_ DataOp        = (*UpdateRec)(nil)
	_ DataOp        = (*InsertRec)(nil)
	_ DataOp        = (*DeleteRec)(nil)
	_ DataOp        = (*CLRRec)(nil)
	_ Transactional = (*CommitRec)(nil)
	_ Transactional = (*AbortRec)(nil)
	_ Transactional = (*ShardMapRec)(nil)
	_ Sharded       = (*SMORec)(nil)
	_ Sharded       = (*DeltaRec)(nil)
	_ Sharded       = (*BWRec)(nil)
	_ Sharded       = (*RSSPRec)(nil)
)
