package wal

import (
	"encoding/binary"
	"fmt"
	"sync"

	"logrec/internal/sim"
)

// logHeaderSize is the size of the fixed log header. It exists so that
// no record sits at offset 0 and LSN 0 can mean "none".
const logHeaderSize = 16

var logMagic = [8]byte{'L', 'O', 'G', 'R', 'E', 'C', 'W', 'L'}

// frameHeaderSize is the per-record frame: u32 body length + u8 type.
const frameHeaderSize = 5

// ScanCost parameterises the IO charge of reading the log during
// recovery. The log is read sequentially; the scanner charges PerPage to
// the scanning clock each time it crosses into a new log page. The log
// is assumed to live on its own device (as is standard), so log reads do
// not contend with data-page IO.
type ScanCost struct {
	// PageSize is the log page size in bytes.
	PageSize int
	// PerPage is the sequential read cost per log page.
	PerPage sim.Duration
}

// DefaultScanCost matches the experiment defaults: 4 KB log pages at
// 500 µs per sequential page read.
func DefaultScanCost() ScanCost {
	return ScanCost{PageSize: 4096, PerPage: 500 * sim.Microsecond}
}

// Log is an append-only write-ahead log. Appends land in the volatile
// tail; Flush moves the stable boundary (the "end of stable log" that
// EOSL communicates to the DC). A crash snapshot discards the volatile
// tail.
//
// Log is safe for concurrent use: a single mutex guards the tail and
// the stable boundary. The recovery experiments remain single-threaded
// over virtual time (the mutex is uncontended there); the concurrent
// write path (GroupCommitter, tc.Session) appends from many goroutines.
type Log struct {
	mu         sync.Mutex
	buf        []byte
	flushedLSN LSN
	frozen     bool

	// recCount is the total number of records appended; stableRecs is
	// how many of them the stable prefix holds (set by Flush). The
	// group committer diffs stableRecs across flushes for exact
	// records-per-flush accounting.
	recCount   int64
	stableRecs int64

	// appendCount tracks records appended, by type, for statistics.
	appendCount map[Type]int64

	// torn marks a snapshot whose tail TearTail corrupted; CloneTrimmed
	// only pays its frame walk when set.
	torn bool

	// heldShip counts shipped bytes held past flushedLSN awaiting the
	// rest of their frame (AppendStable's receive buffer; 0 on any log
	// that is not a shipping target). A standby log must drop them
	// (DropPartialTail) before its first local Append or Flush.
	heldShip int

	// backend, when non-nil, is the log's persistent device: Flush
	// writes the unpersisted suffix and fsyncs before moving the stable
	// boundary, so "stable" means on-disk, not just in-memory.
	// persisted is how many bytes of buf the backend already holds;
	// flushMu serializes flushers so concurrent forces (group-commit
	// leader, WAL-protocol page-flush force) never interleave their
	// backend writes. Appends stay concurrent with an in-flight force:
	// Flush captures the tail boundary under mu, performs the IO
	// without it, and only then advances the stable boundary.
	backend   Backend
	persisted int64
	flushMu   sync.Mutex
}

// NewLog creates an empty log.
func NewLog() *Log {
	buf := make([]byte, logHeaderSize)
	copy(buf, logMagic[:])
	binary.BigEndian.PutUint32(buf[8:], 1) // version
	return &Log{
		buf:         buf,
		flushedLSN:  LSN(logHeaderSize),
		appendCount: make(map[Type]int64),
	}
}

// Append encodes rec at the log tail and returns its LSN. The record is
// volatile until the next Flush.
func (l *Log) Append(rec Record) (LSN, error) {
	body := rec.encodeBody(nil)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.frozen {
		return NilLSN, fmt.Errorf("wal: append to frozen log")
	}
	lsn := LSN(len(l.buf))
	l.buf = binary.BigEndian.AppendUint32(l.buf, uint32(len(body)))
	l.buf = append(l.buf, byte(rec.Type()))
	l.buf = append(l.buf, body...)
	l.recCount++
	l.appendCount[rec.Type()]++
	return lsn, nil
}

// MustAppend is Append for call sites where the log cannot be frozen;
// it panics on error.
func (l *Log) MustAppend(rec Record) LSN {
	lsn, err := l.Append(rec)
	if err != nil {
		panic(err)
	}
	return lsn
}

// Flush makes everything appended so far stable and returns the new end
// of stable log (the eLSN of the EOSL protocol). With a backend
// attached this is a real log force — the unpersisted tail is written
// and fsynced before the stable boundary moves; a backend failure is
// unrecoverable (the engine cannot honour durability it already
// promised) and panics.
func (l *Log) Flush() LSN {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	end := len(l.buf)
	recs := l.recCount
	buf := l.buf
	be := l.backend
	from := l.persisted
	l.mu.Unlock()

	if be != nil && int64(end) > from {
		// buf is append-only: [from:end) is immutable even while other
		// goroutines extend the tail past end.
		if err := be.WriteAt(buf[from:end], from); err != nil {
			panic(fmt.Sprintf("wal: log force failed: %v", err))
		}
		if err := be.Sync(); err != nil {
			panic(fmt.Sprintf("wal: log force failed: %v", err))
		}
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if int64(end) > l.persisted {
		l.persisted = int64(end)
	}
	if LSN(end) > l.flushedLSN {
		l.flushedLSN = LSN(end)
		l.stableRecs = recs
	}
	return l.flushedLSN
}

// SetBackend attaches the log's persistent device and persists the
// current stable prefix through it (a fresh log persists its header).
// Everything appended afterward becomes durable at the next Flush.
func (l *Log) SetBackend(b Backend) error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.backend != nil {
		return fmt.Errorf("wal: log already has a backend")
	}
	if err := b.WriteAt(l.buf[:l.flushedLSN], 0); err != nil {
		return err
	}
	if err := b.Sync(); err != nil {
		return err
	}
	l.backend = b
	l.persisted = int64(l.flushedLSN)
	return nil
}

// Backend returns the attached persistent device (nil for the in-memory
// log).
func (l *Log) Backend() Backend {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.backend
}

// CloseBackend closes the persistent device without a final force and
// freezes the log — the shape of a crash: the volatile tail is lost,
// the file holds exactly the stable prefix.
func (l *Log) CloseBackend() error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.backend == nil {
		return nil
	}
	err := l.backend.Close()
	l.backend = nil
	l.frozen = true
	return err
}

// Records returns the total number of records appended.
func (l *Log) Records() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recCount
}

// StableRecords returns how many records the stable prefix holds.
func (l *Log) StableRecords() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stableRecs
}

// FlushedLSN returns the end of the stable log: every record with
// LSN < FlushedLSN survives a crash.
func (l *Log) FlushedLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushedLSN
}

// EndLSN returns the LSN one past the last appended record (the LSN the
// next Append will return).
func (l *Log) EndLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LSN(len(l.buf))
}

// AppendCount reports how many records of type t have been appended.
func (l *Log) AppendCount(t Type) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendCount[t]
}

// Snapshot returns the crash-surviving view of the log: only the stable
// prefix, frozen against appends. Recovery scans the snapshot.
func (l *Log) Snapshot() *Log {
	l.mu.Lock()
	defer l.mu.Unlock()
	return &Log{
		buf:         l.buf[:l.flushedLSN:l.flushedLSN],
		flushedLSN:  l.flushedLSN,
		frozen:      true,
		recCount:    l.stableRecs,
		stableRecs:  l.stableRecs,
		appendCount: make(map[Type]int64),
	}
}

// TearTail corrupts the log with the first nBytes of a synthetic record
// frame past its stable end — the in-memory analogue of wal.TearFile: a
// crash captured mid-log-force, the torn frame never completed. Meant
// for crash snapshots (it ignores the frozen flag); CloneTrimmed must
// discard the tear via the codec's ErrTruncated path, exactly as
// OpenLogFile does for a real file.
func (l *Log) TearTail(nBytes int) error {
	if nBytes <= 0 {
		return fmt.Errorf("wal: torn-tail size must be positive, got %d", nBytes)
	}
	frame := make([]byte, frameHeaderSize+nBytes)
	binary.BigEndian.PutUint32(frame, uint32(1<<24)) // body length far past any real frame
	frame[4] = byte(TypeUpdate)
	for i := frameHeaderSize; i < len(frame); i++ {
		frame[i] = 0xA5
	}
	frame = frame[:nBytes]
	l.mu.Lock()
	defer l.mu.Unlock()
	// Snapshot returns a capacity-clipped slice, so this append cannot
	// scribble over the parent log's tail.
	l.buf = append(l.buf[:l.flushedLSN], frame...)
	l.flushedLSN = LSN(len(l.buf))
	l.torn = true
	return nil
}

// CloneTrimmed is Clone with the restart-path trim: the copy's frames
// are walked from the start and the log is cut back to the last
// complete record, discarding a torn tail (ErrTruncated) the way
// OpenLogFile trims a real log file. With no injected tear it is
// exactly Clone — and skips the walk.
func (l *Log) CloneTrimmed() *Log {
	l.mu.Lock()
	torn := l.torn
	l.mu.Unlock()
	if !torn {
		return l.Clone()
	}
	c := l.Clone()
	end := FirstLSN()
	var recs int64
	for int(end) < len(c.buf) {
		_, next, err := c.decodeAt(end)
		if err != nil {
			break // torn or corrupt tail: trim back to the last good frame
		}
		recs++
		end = next
	}
	if int(end) < len(c.buf) {
		c.buf = c.buf[:end]
		c.flushedLSN = end
		c.recCount = recs
		c.stableRecs = recs
	}
	return c
}

// Clone returns a writable copy of the log's stable prefix. Recovery
// clones the crash snapshot so undo can append CLRs and the recovered
// engine can continue logging, while other recovery methods still see
// the pristine snapshot.
func (l *Log) Clone() *Log {
	l.mu.Lock()
	defer l.mu.Unlock()
	buf := make([]byte, l.flushedLSN)
	copy(buf, l.buf[:l.flushedLSN])
	return &Log{
		buf:         buf,
		flushedLSN:  l.flushedLSN,
		recCount:    l.stableRecs,
		stableRecs:  l.stableRecs,
		appendCount: make(map[Type]int64),
	}
}

// Get decodes the record at lsn. It does not charge IO; use it for
// normal-operation rollback (the tail is in memory) and for undo
// backchain walks, whose cost the paper treats as constant across
// methods (§2.1).
func (l *Log) Get(lsn LSN) (Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, _, err := l.decodeAt(lsn)
	return rec, err
}

// readAt is the locked decode used by scanners; like decodeAt it
// returns the record and the LSN one past its frame.
func (l *Log) readAt(lsn LSN) (Record, LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.decodeAt(lsn)
}

// decodeAt parses the frame at lsn, returning the record and the LSN
// one past its frame. Callers must hold l.mu.
func (l *Log) decodeAt(lsn LSN) (Record, LSN, error) {
	rec, end, err := decodeFrame(l.buf, int(lsn))
	if err != nil {
		return nil, NilLSN, err
	}
	return rec, LSN(end), nil
}

// decodeFrame parses the frame at byte offset off in buf, where buf is
// a whole-log byte view (fixed header included, offsets are LSNs). It
// returns the record and the offset one past its frame. This is the
// lock-free core shared by the locked decodeAt and the segment-scan
// workers, which run over an immutable snapshot of the stable prefix.
func decodeFrame(buf []byte, off int) (Record, int, error) {
	if off < logHeaderSize || off >= len(buf) {
		return nil, 0, fmt.Errorf("%w: %v (log end %d)", ErrOutOfRange, LSN(off), len(buf))
	}
	if off+frameHeaderSize > len(buf) {
		// A frame header cut short is a torn tail, not a bad LSN.
		return nil, 0, fmt.Errorf("%w: frame header at %v crosses log end %d", ErrTruncated, LSN(off), len(buf))
	}
	bodyLen := int(binary.BigEndian.Uint32(buf[off:]))
	t := Type(buf[off+4])
	bodyStart := off + frameHeaderSize
	if bodyStart+bodyLen > len(buf) {
		return nil, 0, fmt.Errorf("%w: record at %v runs past log end", ErrTruncated, LSN(off))
	}
	rec, err := newRecord(t)
	if err != nil {
		return nil, 0, err
	}
	if err := rec.decodeBody(buf[bodyStart : bodyStart+bodyLen]); err != nil {
		return nil, 0, fmt.Errorf("decoding %v at %v: %w", t, LSN(off), err)
	}
	return rec, bodyStart + bodyLen, nil
}

// stableView returns the stable prefix as an immutable byte view. The
// log buffer is append-only and the stable prefix never mutates, so the
// view stays valid while appends continue past it.
func (l *Log) stableView() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf[:l.flushedLSN:l.flushedLSN]
}

// Scanner iterates the stable log in order, charging sequential log-page
// read costs to a clock (which may be nil for uncharged scans, e.g.
// tests and statistics).
type Scanner struct {
	log   *Log
	next  LSN
	clock *sim.Clock
	cost  ScanCost

	// lastPage is the index of the log page most recently charged; -1
	// before the first read.
	lastPage  int64
	pagesRead int64
}

// NewScanner returns a scanner positioned at from (use FirstLSN for the
// whole log). clock may be nil to scan without charging IO.
func (l *Log) NewScanner(from LSN, clock *sim.Clock, cost ScanCost) *Scanner {
	if from < LSN(logHeaderSize) {
		from = LSN(logHeaderSize)
	}
	if cost.PageSize <= 0 {
		cost = DefaultScanCost()
	}
	return &Scanner{log: l, next: from, clock: clock, cost: cost, lastPage: -1}
}

// FirstLSN is the LSN of the first record in any log.
func FirstLSN() LSN { return LSN(logHeaderSize) }

// Next returns the next record and its LSN. It returns ok=false at the
// end of the stable log.
func (s *Scanner) Next() (Record, LSN, bool, error) {
	if s.next >= s.log.FlushedLSN() {
		return nil, NilLSN, false, nil
	}
	lsn := s.next
	rec, end, err := s.log.readAt(lsn)
	if err != nil {
		return nil, NilLSN, false, err
	}
	s.charge(lsn, end)
	s.next = end
	return rec, lsn, true, nil
}

// charge bills sequential log-page reads for the byte range [from,to).
func (s *Scanner) charge(from, to LSN) {
	first := int64(from) / int64(s.cost.PageSize)
	last := int64(to-1) / int64(s.cost.PageSize)
	for p := first; p <= last; p++ {
		if p <= s.lastPage {
			continue
		}
		s.lastPage = p
		s.pagesRead++
		if s.clock != nil {
			s.clock.Advance(s.cost.PerPage)
		}
	}
}

// PagesRead reports how many log pages the scanner has charged.
func (s *Scanner) PagesRead() int64 { return s.pagesRead }
