package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShipGap reports a shipped segment whose first byte lies past the
// receiving log's end: an earlier segment was lost or delayed. The
// shipper recovers by resuming from the applier's watermark.
var ErrShipGap = errors.New("wal: shipped segment starts past the log end")

// Segment is one shipped chunk of a log's stable prefix: raw frame
// bytes starting at a known LSN. Because an LSN is a byte offset,
// shipping is pure byte transport — the receiving log validates frames
// on ingest.
type Segment struct {
	// From is the LSN of the segment's first byte.
	From LSN
	// Data holds record-frame bytes starting at From. The last frame
	// may be cut short by the segment boundary (or a torn transfer);
	// the receiver holds incomplete bytes back.
	Data []byte
}

// End returns the LSN one past the segment's last byte.
func (s Segment) End() LSN { return s.From + LSN(len(s.Data)) }

// ReadStable copies up to max bytes of the stable log starting at from
// (max <= 0 means no bound). When a backend is attached the bytes come
// from the log device — the shipper tails what is actually durable —
// otherwise from the in-memory stable prefix. A nil slice means from is
// at (or past) the stable boundary: the reader has caught up.
func (l *Log) ReadStable(from LSN, max int) ([]byte, error) {
	if from < FirstLSN() {
		from = FirstLSN()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if from >= l.flushedLSN {
		return nil, nil
	}
	n := int(l.flushedLSN - from)
	if max > 0 && n > max {
		n = max
	}
	out := make([]byte, n)
	if l.backend != nil {
		// Under mu so CloseBackend (a crash) cannot close the file out
		// from underneath the read; the stable prefix is fully persisted
		// (Flush syncs before advancing flushedLSN), so the device read
		// cannot see a partial frame the memory path would not.
		if _, err := l.backend.ReadAt(out, int64(from)); err != nil {
			return nil, fmt.Errorf("wal: reading stable log at %v: %w", from, err)
		}
		return out, nil
	}
	copy(out, l.buf[from:int(from)+n])
	return out, nil
}

// maxShipFrameBody bounds the body size a held-back partial frame may
// claim. Real frames are orders of magnitude smaller; a claim past the
// bound is channel garbage (TearTail's synthetic frame claims 16 MiB),
// rejected immediately instead of buffered forever waiting for bytes
// that will never arrive.
const maxShipFrameBody = 4 << 20

// AppendStable ingests a shipped segment of another log's stable
// prefix, returning the ingest watermark — the LSN the next segment
// should start at. It is idempotent and self-healing, so the shipping
// channel may duplicate, re-send, reorder-within-resend or tear
// segments:
//
//   - bytes the log already ingested (from < watermark) are skipped,
//     so a duplicated or overlapping segment is a no-op for the
//     overlap;
//   - a segment starting past the watermark returns ErrShipGap with
//     the log untouched, so a delayed or lost segment cannot punch a
//     hole — the shipper resumes from the returned watermark;
//   - a trailing frame cut short by the segment boundary or a torn
//     transfer (the codec's ErrTruncated, the same screen OpenLogFile
//     applies to a torn file) is buffered but not counted stable:
//     FlushedLSN stops at the last complete frame until the rest of
//     the frame arrives;
//   - a frame that fails to decode, or a partial frame claiming an
//     absurd body length (torn-tail garbage), is rejected with an
//     error after trimming back to the last complete frame; the
//     shipper re-sends from the returned watermark.
//
// Complete ingested frames are immediately stable (they were stable on
// the primary) and, with a backend attached, persisted and synced
// before FlushedLSN advances; buffered partial bytes stay off the
// device. Callers must serialize AppendStable with the log's other
// writers; a standby log has exactly one applier and must not Append
// or Flush locally until promotion drops any partial tail
// (DropPartialTail).
func (l *Log) AppendStable(from LSN, data []byte) (LSN, error) {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.frozen {
		return l.flushedLSN, fmt.Errorf("wal: shipped segment into frozen log")
	}
	if from < FirstLSN() {
		// The log header is written by NewLog on both sides and is not
		// part of the record stream; clamp a from-zero ship to it.
		if len(data) >= int(FirstLSN()-from) {
			data = data[FirstLSN()-from:]
		} else {
			data = nil
		}
		from = FirstLSN()
	}
	ingest := LSN(len(l.buf))
	if ingest != l.flushedLSN+LSN(l.heldShip) {
		return l.flushedLSN, fmt.Errorf("wal: log has a volatile tail (%v past stable %v); cannot ingest shipped segments", ingest, l.flushedLSN)
	}
	if from > ingest {
		return ingest, fmt.Errorf("%w: segment at %v, log ends at %v", ErrShipGap, from, ingest)
	}
	skip := int(ingest - from)
	if skip >= len(data) {
		return ingest, nil // wholly duplicate: idempotent no-op
	}
	l.buf = append(l.buf, data[skip:]...)

	// Frame walk from the last complete frame (a previously buffered
	// partial frame may now be complete): exactly OpenLogFile's restart
	// screen, applied per segment instead of per file.
	good := l.flushedLSN
	var walkErr error
	for int(good) < len(l.buf) {
		rec, next, err := l.decodeAt(good)
		if err == nil {
			l.recCount++
			l.stableRecs++
			l.appendCount[rec.Type()]++
			good = next
			continue
		}
		if errors.Is(err, ErrTruncated) && l.saneFrameClaim(good) {
			break // incomplete trailing frame: buffer it, await the rest
		}
		l.buf = l.buf[:good]
		walkErr = fmt.Errorf("wal: corrupt shipped frame at %v: %w", good, err)
		break
	}
	l.flushedLSN = good
	l.heldShip = len(l.buf) - int(good)
	if l.backend != nil && int64(good) > l.persisted {
		if err := l.backend.WriteAt(l.buf[l.persisted:good], l.persisted); err != nil {
			return good, fmt.Errorf("wal: persisting shipped segment: %w", err)
		}
		if err := l.backend.Sync(); err != nil {
			return good, fmt.Errorf("wal: syncing shipped segment: %w", err)
		}
		l.persisted = int64(good)
	}
	return LSN(len(l.buf)), walkErr
}

// saneFrameClaim reports whether the partial frame at lsn could be the
// prefix of a real frame: either too short to read its body-length
// claim yet, or claiming a body within maxShipFrameBody.
func (l *Log) saneFrameClaim(lsn LSN) bool {
	rest := l.buf[lsn:]
	if len(rest) < 4 {
		return true
	}
	return int(binary.BigEndian.Uint32(rest)) <= maxShipFrameBody
}

// DropPartialTail discards buffered shipped bytes held past the last
// complete frame — promotion's equivalent of recovery's torn-tail
// trim. A promoted standby calls it before its first local append; the
// partial frame's content is still on the dead primary's log, exactly
// like any torn tail, and is lost with it.
func (l *Log) DropPartialTail() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.heldShip > 0 {
		l.buf = l.buf[:l.flushedLSN]
		l.heldShip = 0
	}
}

// ShipReader tails a log's stable prefix in segment-sized batches — the
// primary-side half of log shipping. It is a cursor, not a lock: the
// log keeps appending while the reader trails it, and reading remains
// valid after the primary freezes (a crash), which is how a standby
// drains the final stable bytes before promotion.
type ShipReader struct {
	log  *Log
	next LSN
}

// NewShipReader returns a reader positioned at from (clamped to
// FirstLSN; use the applier's watermark to resume an interrupted ship).
func (l *Log) NewShipReader(from LSN) *ShipReader {
	if from < FirstLSN() {
		from = FirstLSN()
	}
	return &ShipReader{log: l, next: from}
}

// Next reads the next segment of at most maxBytes stable bytes
// (maxBytes <= 0 means everything available). ok=false means the reader
// has caught up with the stable boundary; more may become available
// after the next log force.
func (r *ShipReader) Next(maxBytes int) (Segment, bool, error) {
	data, err := r.log.ReadStable(r.next, maxBytes)
	if err != nil {
		return Segment{}, false, err
	}
	if len(data) == 0 {
		return Segment{}, false, nil
	}
	seg := Segment{From: r.next, Data: data}
	r.next = seg.End()
	return seg, true, nil
}

// Watermark returns the LSN the next segment will start at.
func (r *ShipReader) Watermark() LSN { return r.next }

// Resume repositions the reader — after the applier held back a torn
// tail or reported a gap, the shipper resumes from the applier's
// watermark so the channel self-heals.
func (r *ShipReader) Resume(from LSN) {
	if from < FirstLSN() {
		from = FirstLSN()
	}
	r.next = from
}
