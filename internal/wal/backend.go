package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"

	"logrec/internal/storage"
)

// Backend is the log's persistent device: an append-mostly byte store
// whose Sync is a durability barrier. When a Log has a backend, Flush
// writes the not-yet-persisted suffix of the tail and then Syncs — a
// genuine log force, so wal.GroupCommitter batches amortize real
// fsyncs, one per batch rather than one per commit.
//
// The log is byte-oriented (a record frame may straddle any block
// boundary) so the backend speaks bytes, not pages; it reuses the
// storage.IOHook type so one observer can account log forces alongside
// data-device IO. OpWrite events carry the byte count written, OpSync
// events carry 0.
type Backend interface {
	// WriteAt persists p at byte offset off.
	WriteAt(p []byte, off int64) error
	// ReadAt fills p from byte offset off (io.ReaderAt semantics). The
	// log shipper reads the stable prefix through it, so a standby tails
	// what is actually on the log device, not the in-memory tail.
	ReadAt(p []byte, off int64) (int, error)
	// Sync is the durability barrier (fsync).
	Sync() error
	// Stats returns a copy of the accumulated counters.
	Stats() BackendStats
	// SetIOHook subscribes fn to writes and syncs (nil unsubscribes).
	SetIOHook(fn storage.IOHook)
	// Close releases the backend. A crash Closes without a final Sync.
	Close() error
}

// BackendStats counts log-device activity. Syncs is the number of real
// log forces — the denominator of the group-commit amortization story.
type BackendStats struct {
	Writes       int64
	BytesWritten int64
	Syncs        int64
	Reads        int64
	BytesRead    int64
}

// FileBackend is the file implementation of Backend.
type FileBackend struct {
	mu    sync.Mutex
	f     *os.File
	stats BackendStats
	hook  storage.IOHook
}

var _ Backend = (*FileBackend)(nil)

// CreateFileBackend creates (or truncates) the log file at path.
func CreateFileBackend(path string) (*FileBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: creating log file: %w", err)
	}
	return &FileBackend{f: f}, nil
}

// WriteAt persists p at off.
func (b *FileBackend) WriteAt(p []byte, off int64) error {
	b.mu.Lock()
	b.stats.Writes++
	b.stats.BytesWritten += int64(len(p))
	if b.hook != nil {
		b.hook(storage.OpWrite, len(p))
	}
	b.mu.Unlock()
	if _, err := b.f.WriteAt(p, off); err != nil {
		return fmt.Errorf("wal: log write at %d: %w", off, err)
	}
	return nil
}

// ReadAt fills p from off (the shipper's read path).
func (b *FileBackend) ReadAt(p []byte, off int64) (int, error) {
	b.mu.Lock()
	b.stats.Reads++
	b.stats.BytesRead += int64(len(p))
	b.mu.Unlock()
	n, err := b.f.ReadAt(p, off)
	if err != nil {
		return n, fmt.Errorf("wal: log read at %d: %w", off, err)
	}
	return n, nil
}

// Sync fsyncs the log file.
func (b *FileBackend) Sync() error {
	b.mu.Lock()
	b.stats.Syncs++
	if b.hook != nil {
		b.hook(storage.OpSync, 0)
	}
	b.mu.Unlock()
	if err := b.f.Sync(); err != nil {
		return fmt.Errorf("wal: log fsync: %w", err)
	}
	return nil
}

// Stats returns a copy of the counters.
func (b *FileBackend) Stats() BackendStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// SetIOHook subscribes fn to writes and syncs.
func (b *FileBackend) SetIOHook(fn storage.IOHook) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.hook = fn
}

// Close closes the log file without syncing.
func (b *FileBackend) Close() error { return b.f.Close() }

// OpenLogFile reads the log file at path back into a Log — the restart
// path. It validates the header, scans every frame, and trims a torn
// tail: a frame cut short by the crash (the codec reports ErrTruncated)
// is discarded and the file truncated back to the last complete frame,
// exactly the trim a real engine performs when the crash interrupted a
// log force. The returned Log is writable and keeps path as its
// backend, so recovery can append CLRs and the recovered engine can
// continue logging durably.
func OpenLogFile(path string) (*Log, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: reading log file: %w", err)
	}
	if len(buf) < logHeaderSize {
		return nil, fmt.Errorf("wal: log file %s too short (%d bytes) for a log header", path, len(buf))
	}
	for i, m := range logMagic {
		if buf[i] != m {
			return nil, fmt.Errorf("wal: %s is not a log file (bad magic)", path)
		}
	}
	if v := binary.BigEndian.Uint32(buf[8:]); v != 1 {
		return nil, fmt.Errorf("wal: log file version %d not supported", v)
	}
	l := &Log{buf: buf, appendCount: make(map[Type]int64)}
	end := FirstLSN()
	var recs int64
	for int(end) < len(buf) {
		rec, next, err := l.decodeAt(end)
		if errors.Is(err, ErrTruncated) {
			break // torn tail: trim below
		}
		if err != nil {
			return nil, fmt.Errorf("wal: corrupt log record at %v: %w", end, err)
		}
		recs++
		l.appendCount[rec.Type()]++
		end = next
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: reopening log file: %w", err)
	}
	if int(end) < len(buf) {
		l.buf = l.buf[:end]
		if err := f.Truncate(int64(end)); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: trimming torn tail at %v: %w", end, err)
		}
	}
	l.flushedLSN = end
	l.recCount = recs
	l.stableRecs = recs
	l.backend = &FileBackend{f: f}
	l.persisted = int64(end)
	return l, nil
}

// TearFile appends the first n bytes of a synthetic record frame to the
// log file at path — a crash captured mid-log-force, with a torn frame
// past the last complete one. OpenLogFile must trim it. Crash injection
// only.
func TearFile(path string, n int) error {
	if n <= 0 {
		return fmt.Errorf("wal: torn-tail size must be positive, got %d", n)
	}
	frame := make([]byte, frameHeaderSize+n)
	binary.BigEndian.PutUint32(frame, uint32(1<<24)) // body length far past any real frame
	frame[4] = byte(TypeUpdate)
	for i := frameHeaderSize; i < len(frame); i++ {
		frame[i] = 0xA5
	}
	if n < len(frame) {
		frame = frame[:n]
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening log file to tear: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(frame, info.Size()); err != nil {
		return fmt.Errorf("wal: tearing log tail: %w", err)
	}
	return f.Sync()
}
