package wal

import (
	"testing"

	"logrec/internal/storage"
)

func benchUpdateRec(i int) *UpdateRec {
	return &UpdateRec{
		TxnID:   TxnID(i),
		TableID: 1,
		KeyVal:  uint64(i * 17),
		OldVal:  make([]byte, 92),
		NewVal:  make([]byte, 92),
		PageID:  storage.PageID(i),
		PrevLSN: LSN(i),
	}
}

func BenchmarkAppendUpdate(b *testing.B) {
	l := NewLog()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(benchUpdateRec(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(l.EndLSN()-FirstLSN()) / int64(b.N))
}

func BenchmarkAppendDelta(b *testing.B) {
	l := NewLog()
	rec := &DeltaRec{
		DirtySet:   make([]storage.PageID, 256),
		WrittenSet: make([]storage.PageID, 32),
		FWLSN:      1000, FirstDirty: 100, TCLSN: 2000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanLog(b *testing.B) {
	l := NewLog()
	for i := 0; i < 10_000; i++ {
		l.MustAppend(benchUpdateRec(i))
	}
	l.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := l.NewScanner(FirstLSN(), nil, ScanCost{})
		n := 0
		for {
			_, _, ok, err := sc.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		if n != 10_000 {
			b.Fatalf("scanned %d", n)
		}
	}
}

func BenchmarkGetRandomAccess(b *testing.B) {
	l := NewLog()
	var lsns []LSN
	for i := 0; i < 10_000; i++ {
		lsns = append(lsns, l.MustAppend(benchUpdateRec(i)))
	}
	l.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Get(lsns[i%len(lsns)]); err != nil {
			b.Fatal(err)
		}
	}
}
