package wal

import (
	"bytes"
	"errors"
	"testing"

	"logrec/internal/storage"
)

// fullLog builds a log holding at least one record of every type, the
// fuzz seed corpus and the torn-tail test fixture.
func fullLog(t testing.TB) *Log {
	l := NewLog()
	recs := []Record{
		&BeginCkptRec{},
		&UpdateRec{TxnID: 1, TableID: 1, KeyVal: 7, OldVal: []byte("old"), NewVal: []byte("new"), PageID: 4, PrevLSN: NilLSN},
		&InsertRec{TxnID: 1, TableID: 1, KeyVal: 8, Val: []byte("row"), PageID: 4, PrevLSN: 42},
		&DeleteRec{TxnID: 1, TableID: 1, KeyVal: 9, OldVal: []byte("gone"), PageID: 5, PrevLSN: 51},
		&CLRRec{TxnID: 1, TableID: 1, KeyVal: 7, Kind: CLRUndoUpdate, RestoreVal: []byte("old"), PageID: 4, UndoNextLSN: 42, PrevLSN: 60},
		&CommitRec{TxnID: 1, PrevLSN: 77},
		&AbortRec{TxnID: 2, PrevLSN: 78},
		&DeltaRec{TCLSN: 100, FWLSN: 90, FirstDirty: 1,
			DirtySet: []storage.PageID{4, 5}, DirtyLSNs: []LSN{88, 89}, WrittenSet: []storage.PageID{3}},
		&BWRec{WrittenSet: []storage.PageID{4, 5, 6}, FWLSN: 95},
		&SMORec{Meta: TreeMeta{TableID: 1, Root: 2, Height: 2, NextPID: 11},
			Images: []PageImage{{PageID: 10, Data: []byte("page-image-bytes")}}},
		&RSSPRec{RsspLSN: 12},
		&EndCkptRec{BeginLSN: 16, Active: []ActiveTxn{{TxnID: 2, LastLSN: 78}}},
	}
	for _, r := range recs {
		if _, err := l.Append(r); err != nil {
			t.Fatalf("append %v: %v", r.Type(), err)
		}
	}
	l.Flush()
	return l
}

// FuzzDecodeAt hammers the WAL decoder with adversarial bytes: whatever
// the buffer holds, decodeAt must never panic, must report torn or
// malformed frames as errors, and on success must hand back a frame
// that round-trips and makes forward progress.
func FuzzDecodeAt(f *testing.F) {
	l := fullLog(f)
	// Seed corpus: the pristine log at several offsets, a torn tail,
	// and bit-flipped copies.
	f.Add(append([]byte(nil), l.buf...), uint64(FirstLSN()))
	f.Add(append([]byte(nil), l.buf...), uint64(len(l.buf)/2))
	f.Add(append([]byte(nil), l.buf[:len(l.buf)-3]...), uint64(FirstLSN()))
	flipped := append([]byte(nil), l.buf...)
	for i := logHeaderSize; i < len(flipped); i += 17 {
		flipped[i] ^= 0x40
	}
	f.Add(flipped, uint64(FirstLSN()))
	f.Add([]byte{}, uint64(0))

	f.Fuzz(func(t *testing.T, buf []byte, off uint64) {
		fz := &Log{
			buf:         buf,
			flushedLSN:  LSN(len(buf)),
			frozen:      true,
			appendCount: make(map[Type]int64),
		}
		rec, end, err := fz.decodeAt(LSN(off))
		if err == nil {
			if rec == nil {
				t.Fatalf("decodeAt(%d): nil record without error", off)
			}
			if end <= LSN(off) || int(end) > len(buf) {
				t.Fatalf("decodeAt(%d): end %d out of bounds (len %d)", off, end, len(buf))
			}
			// A successfully decoded record must re-encode; its frame
			// cannot be larger than the bytes it came from.
			body := rec.encodeBody(nil)
			if frameHeaderSize+len(body) > int(end)-int(off) {
				t.Fatalf("decodeAt(%d): re-encoded %v frame larger than source (%d > %d)",
					off, rec.Type(), frameHeaderSize+len(body), int(end)-int(off))
			}
		}
		// A full forward scan must terminate: either cleanly at the end
		// of the buffer or with a decode error — never a panic or a
		// stuck cursor.
		sc := fz.NewScanner(FirstLSN(), nil, DefaultScanCost())
		for {
			_, lsn, ok, err := sc.Next()
			if err != nil || !ok {
				break
			}
			if sc.next <= lsn {
				t.Fatalf("scanner stuck at %v", lsn)
			}
		}
	})
}

// TestDecodeTornTail cuts a valid log at every byte position inside its
// final record and checks the decoder reports the torn frame as an
// error (ErrTruncated once the frame header is readable) instead of
// panicking or returning garbage — the group committer crashes at
// record boundaries, but a real disk can tear anywhere.
func TestDecodeTornTail(t *testing.T) {
	l := fullLog(t)
	// Locate the last record's frame.
	var lastLSN, endLSN LSN
	sc := l.NewScanner(FirstLSN(), nil, DefaultScanCost())
	for {
		_, lsn, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		lastLSN, endLSN = lsn, sc.next
	}
	if endLSN != l.FlushedLSN() {
		t.Fatalf("scan ended at %v, flushed %v", endLSN, l.FlushedLSN())
	}

	for cut := int(lastLSN) + 1; cut < int(endLSN); cut++ {
		torn := &Log{
			buf:         append([]byte(nil), l.buf[:cut]...),
			flushedLSN:  LSN(cut),
			frozen:      true,
			appendCount: make(map[Type]int64),
		}
		_, _, err := torn.decodeAt(lastLSN)
		if err == nil {
			t.Fatalf("cut at %d: decode of torn record succeeded", cut)
		}
		if int(lastLSN)+frameHeaderSize <= cut && !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: got %v, want ErrTruncated", cut, err)
		}
		// Scanning the torn log must surface the same error, after
		// yielding every intact record.
		sc := torn.NewScanner(FirstLSN(), nil, DefaultScanCost())
		n := 0
		for {
			_, _, ok, serr := sc.Next()
			if serr != nil {
				break
			}
			if !ok {
				t.Fatalf("cut at %d: scan ended cleanly inside a torn record", cut)
			}
			n++
		}
		if want := recordsBefore(l, lastLSN); n != want {
			t.Fatalf("cut at %d: scanned %d intact records, want %d", cut, n, want)
		}
	}
}

func recordsBefore(l *Log, stop LSN) int {
	sc := l.NewScanner(FirstLSN(), nil, DefaultScanCost())
	n := 0
	for {
		_, lsn, ok, err := sc.Next()
		if err != nil || !ok || lsn >= stop {
			return n
		}
		n++
	}
}

// TestDecodeBitFlips corrupts every byte of a valid log in turn; every
// record must either decode (the flip hit a value byte, not framing) or
// fail cleanly — and a flipped length can never send the scanner out of
// bounds.
func TestDecodeBitFlips(t *testing.T) {
	l := fullLog(t)
	for i := logHeaderSize; i < len(l.buf); i++ {
		buf := append([]byte(nil), l.buf...)
		buf[i] ^= 0xFF
		fz := &Log{buf: buf, flushedLSN: LSN(len(buf)), frozen: true, appendCount: make(map[Type]int64)}
		sc := fz.NewScanner(FirstLSN(), nil, DefaultScanCost())
		for {
			rec, _, ok, err := sc.Next()
			if err != nil || !ok {
				break
			}
			_ = rec
		}
	}
	// Sanity: the uncorrupted log still scans to the end.
	if !bytes.Equal(l.buf[:8], logMagic[:]) {
		t.Fatal("log magic clobbered")
	}
}
