package wal

import (
	"encoding/binary"
	"fmt"

	"logrec/internal/storage"
)

// Encoding helpers. All integers are big-endian fixed-width; byte slices
// and PID/LSN vectors are length-prefixed with a uint32 count. The
// format is append-only and versionless within this repository; the
// frame header carries the record type so the decoder can dispatch.

func putU8(dst []byte, v uint8) []byte   { return append(dst, v) }
func putU32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }
func putU64(dst []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(dst, v) }

func putBytes(dst []byte, b []byte) []byte {
	dst = putU32(dst, uint32(len(b)))
	return append(dst, b...)
}

func putPIDs(dst []byte, pids []storage.PageID) []byte {
	dst = putU32(dst, uint32(len(pids)))
	for _, p := range pids {
		dst = putU32(dst, uint32(p))
	}
	return dst
}

func putLSNs(dst []byte, lsns []LSN) []byte {
	dst = putU32(dst, uint32(len(lsns)))
	for _, l := range lsns {
		dst = putU64(dst, uint64(l))
	}
	return dst
}

// decoder walks a record body. Methods record the first error and
// subsequently return zero values, so call sites stay linear and the
// final Err check suffices.
type decoder struct {
	src []byte
	off int
	err error
}

func newDecoder(src []byte) *decoder { return &decoder{src: src} }

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: short buffer reading %s at offset %d", ErrBadRecord, what, d.off)
	}
}

func (d *decoder) u8(what string) uint8 {
	if d.err != nil {
		return 0
	}
	if d.off+1 > len(d.src) {
		d.fail(what)
		return 0
	}
	v := d.src[d.off]
	d.off++
	return v
}

func (d *decoder) u32(what string) uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.src) {
		d.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint32(d.src[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64(what string) uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.src) {
		d.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(d.src[d.off:])
	d.off += 8
	return v
}

func (d *decoder) bytes(what string) []byte {
	n := int(d.u32(what))
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.src) {
		d.fail(what)
		return nil
	}
	out := make([]byte, n)
	copy(out, d.src[d.off:d.off+n])
	d.off += n
	return out
}

func (d *decoder) pids(what string) []storage.PageID {
	n := int(d.u32(what))
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+4*n > len(d.src) {
		d.fail(what)
		return nil
	}
	out := make([]storage.PageID, n)
	for i := range out {
		out[i] = storage.PageID(binary.BigEndian.Uint32(d.src[d.off:]))
		d.off += 4
	}
	return out
}

func (d *decoder) lsns(what string) []LSN {
	n := int(d.u32(what))
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+8*n > len(d.src) {
		d.fail(what)
		return nil
	}
	out := make([]LSN, n)
	for i := range out {
		out[i] = LSN(binary.BigEndian.Uint64(d.src[d.off:]))
		d.off += 8
	}
	return out
}

// finish verifies the whole body was consumed.
func (d *decoder) finish(t Type) error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.src) {
		return fmt.Errorf("%w: %d trailing bytes in %s record", ErrBadRecord, len(d.src)-d.off, t)
	}
	return nil
}
