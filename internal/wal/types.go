// Package wal implements the shared write-ahead log used by both
// recovery families, following §5.1 of the paper: one log carries the
// TC's logical update records (table + key; the PID field is present but
// ignored by logical recovery), commit/abort/CLR records, checkpoint
// bracketing records, the SQL-Server-style BW-log records (§3.3), the
// DC's ∆-log records (§4.1), and the DC's physiological SMO records.
//
// An LSN is the byte offset of a record in the log; the log begins with
// a fixed header so offset 0 never addresses a record and can serve as
// the nil LSN.
package wal

import (
	"errors"
	"fmt"

	"logrec/internal/storage"
)

// LSN is a log sequence number: the byte offset of a record's frame in
// the log. LSNs are totally ordered by log position.
type LSN uint64

// NilLSN is the absent LSN. The log's leading header guarantees no
// record ever has it.
const NilLSN LSN = 0

func (l LSN) String() string { return fmt.Sprintf("lsn:%d", uint64(l)) }

// TxnID identifies a transaction. TxnID 0 is reserved for non-
// transactional (system) records.
type TxnID uint64

// TableID identifies a table (and its clustered B-tree) in the DC.
type TableID uint32

// ShardID identifies one data component behind the TC. The engine
// range-partitions the key space across N DCs (shards 0..N-1), all
// logging to this one shared log; every DC-scoped record (data
// operations, SMOs, ∆/BW/RSSP records) carries its shard so recovery
// can demultiplex the log into per-shard redo/undo pipelines. A
// single-DC engine is simply the N=1 case: every record carries shard 0.
type ShardID uint32

// RouteEntry is one range of the TC's key→shard routing table: keys at
// or above Start (and below the next entry's Start) belong to Shard.
// The table is persisted in end-checkpoint records so recovery can
// rebuild routing even after ranges have been split and reassigned.
type RouteEntry struct {
	Start uint64
	Shard ShardID
}

// Type tags a log record.
type Type uint8

// Log record types.
const (
	TypeInvalid Type = iota
	// TypeUpdate is a transactional update of an existing record,
	// identified logically by (Table, Key). The PID field exists so the
	// same log can drive physiological recovery (§5.1); logical
	// recovery ignores it.
	TypeUpdate
	// TypeInsert is a transactional insert of a new record.
	TypeInsert
	// TypeDelete is a transactional delete of an existing record.
	TypeDelete
	// TypeCommit ends a transaction successfully.
	TypeCommit
	// TypeAbort ends a transaction after rollback completes.
	TypeAbort
	// TypeCLR is a compensation log record written during undo.
	TypeCLR
	// TypeBeginCkpt marks the start of a penultimate checkpoint (§3.2).
	TypeBeginCkpt
	// TypeEndCkpt marks checkpoint completion; it names its begin
	// record and carries the active-transaction table.
	TypeEndCkpt
	// TypeBW is SQL Server's Buffer Write record: the PIDs flushed
	// since the previous BW record plus the first-write LSN (§3.3).
	TypeBW
	// TypeDelta is the DC's ∆-log record: DirtySet, WrittenSet, FW-LSN,
	// FirstDirty and TC-LSN (§4.1). Appendix D variants add DirtyLSNs
	// or omit FW-LSN/FirstDirty.
	TypeDelta
	// TypeSMO is a DC structure-modification record carrying
	// physiological after-images of the pages changed by a B-tree
	// split, plus the resulting tree metadata. DC recovery replays
	// these before any TC redo so the B-tree is well-formed (§1.2).
	TypeSMO
	// TypeRSSP records the redo-scan-start-point LSN the TC sent via
	// the RSSP control operation, so the DC knows where its own
	// recovery scan begins (§4.2).
	TypeRSSP
	// TypeShardMap records a routing-table change: the range starting at
	// SplitAt now belongs to another shard. It is transactional — the
	// reassignment takes effect only if the migration transaction that
	// moved the rows committed — so recovery applies it exactly when the
	// moved rows are on the new shard.
	TypeShardMap
)

func (t Type) String() string {
	switch t {
	case TypeUpdate:
		return "update"
	case TypeInsert:
		return "insert"
	case TypeDelete:
		return "delete"
	case TypeCommit:
		return "commit"
	case TypeAbort:
		return "abort"
	case TypeCLR:
		return "clr"
	case TypeBeginCkpt:
		return "begin-ckpt"
	case TypeEndCkpt:
		return "end-ckpt"
	case TypeBW:
		return "bw"
	case TypeDelta:
		return "delta"
	case TypeSMO:
		return "smo"
	case TypeRSSP:
		return "rssp"
	case TypeShardMap:
		return "shard-map"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Record is a decodable log record.
type Record interface {
	// Type returns the record's type tag.
	Type() Type
	// encodeBody appends the record body (everything after the frame
	// header) to dst and returns the extended slice.
	encodeBody(dst []byte) []byte
	// decodeBody parses the record body.
	decodeBody(src []byte) error
}

// Transactional is implemented by records that belong to a transaction's
// backward chain (updates, inserts, deletes, CLRs, commit, abort).
type Transactional interface {
	Record
	// Txn returns the owning transaction.
	Txn() TxnID
	// Prev returns the previous LSN written by the same transaction,
	// or NilLSN for its first record.
	Prev() LSN
}

// DataOp is implemented by the three data-modifying record kinds plus
// CLRs; it exposes the logical identity and the physiological hint that
// both redo families need.
type DataOp interface {
	Transactional
	Sharded
	// Table and Key identify the record logically.
	Table() TableID
	Key() uint64
	// PID is the physiological page hint captured at normal-operation
	// time. Logical recovery ignores it.
	PID() storage.PageID
}

// Sharded is implemented by records scoped to one data component:
// recovery routes them to that shard's redo/undo pipeline.
type Sharded interface {
	Record
	// Shard returns the owning data component.
	Shard() ShardID
}

// Errors returned by log operations.
var (
	// ErrTruncated indicates a record frame extends past the end of the
	// stable log.
	ErrTruncated = errors.New("wal: truncated record")
	// ErrBadRecord indicates a record body failed to parse.
	ErrBadRecord = errors.New("wal: malformed record")
	// ErrOutOfRange indicates an LSN outside the stable log.
	ErrOutOfRange = errors.New("wal: LSN out of range")
)
