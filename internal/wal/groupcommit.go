package wal

import (
	"runtime"
	"sync"
	"time"
)

// GroupCommitStats counts group-commit activity. Records-per-flush —
// the batching factor the paper's group-commit discussion (and LogBase)
// cares about — is FlushedRecords / Flushes.
type GroupCommitStats struct {
	// Appends is the total number of records appended to the log since
	// the committer was created (all append paths, including DC-side
	// SMO and ∆/BW records).
	Appends int64
	// Commits is the number of WaitStable calls served.
	Commits int64
	// Flushes is the number of batch flushes (stable-boundary moves).
	Flushes int64
	// FlushedRecords is the number of records those flushes made
	// stable, counted exactly from the log's stable-record counter. A
	// raw Log.Flush outside the committer (checkpoints, WAL-protocol
	// log forces) attributes its records to the committer's next batch.
	FlushedRecords int64
	// MaxBatch is the largest number of records covered by one flush.
	MaxBatch int64
}

// RecordsPerFlush returns the mean batching factor (0 before the first
// flush).
func (s GroupCommitStats) RecordsPerFlush() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.FlushedRecords) / float64(s.Flushes)
}

// GroupCommitter batches log flushes across concurrent committers. Many
// goroutines append records and then wait for durability; instead of
// forcing the log once per commit, the first waiter becomes the batch
// leader, lingers for FlushDelay (emulating the stable-write latency of
// a real log device) while more commits pile into the tail, then moves
// the stable boundary once for the whole batch and publishes the new
// end of stable log through a single OnStable callback (the EOSL
// control operation — once per batch, not once per record).
//
// GroupCommitter is a wrapper around Log, not a replacement: the
// single-threaded virtual-time experiments keep using Log directly.
type GroupCommitter struct {
	log *Log

	// onStable, when set, receives the new end of stable log after each
	// batch flush (typically dc.EOSL). It is called from the leader's
	// goroutine without any committer lock held beyond gc ordering, so
	// it may take component locks but must not call back into the
	// committer.
	onStable func(LSN)

	// flushDelay is the emulated stable-write latency: how long the
	// batch leader lingers before forcing the log. Zero means the leader
	// only yields the processor, which still batches whatever is already
	// waiting (used by -race tests to keep them fast).
	flushDelay time.Duration

	// lastStable is the log's stable-record count at the committer's
	// previous flush; the delta at each flush is that batch's size.
	// Only the active leader (flushing == true is exclusive) touches it.
	lastStable int64

	mu       sync.Mutex
	cond     *sync.Cond
	flushing bool
	stats    GroupCommitStats
}

// NewGroupCommitter wraps log. onStable may be nil; flushDelay is the
// emulated device latency per flush (see GroupCommitter).
func NewGroupCommitter(log *Log, onStable func(LSN), flushDelay time.Duration) *GroupCommitter {
	gc := &GroupCommitter{log: log, onStable: onStable, flushDelay: flushDelay}
	gc.lastStable = log.StableRecords()
	gc.cond = sync.NewCond(&gc.mu)
	return gc
}

// Log returns the wrapped log.
func (gc *GroupCommitter) Log() *Log { return gc.log }

// Append appends rec to the shared log tail. Safe from any goroutine;
// the record is volatile until a batch flush covers it.
func (gc *GroupCommitter) Append(rec Record) (LSN, error) {
	return gc.log.Append(rec)
}

// MustAppend is Append for call sites where the log cannot be frozen;
// it panics on error. It satisfies the TC's appender contract.
func (gc *GroupCommitter) MustAppend(rec Record) LSN {
	lsn, err := gc.Append(rec)
	if err != nil {
		panic(err)
	}
	return lsn
}

// WaitStable blocks until the record appended at lsn is on the stable
// log, joining (or leading) a batch flush. It returns the end of stable
// log it observed.
func (gc *GroupCommitter) WaitStable(lsn LSN) LSN {
	gc.mu.Lock()
	gc.stats.Commits++
	for {
		if eLSN := gc.log.FlushedLSN(); eLSN > lsn {
			gc.mu.Unlock()
			return eLSN
		}
		if !gc.flushing {
			gc.flushing = true
			gc.mu.Unlock()
			eLSN := gc.lead()
			return eLSN
		}
		gc.cond.Wait()
	}
}

// Flush forces the log immediately as a batch of its own (checkpoint
// and EOSL-cadence paths) and notifies OnStable.
func (gc *GroupCommitter) Flush() LSN {
	gc.mu.Lock()
	for gc.flushing {
		gc.cond.Wait()
	}
	gc.flushing = true
	gc.mu.Unlock()

	eLSN := gc.finishFlush()
	return eLSN
}

// lead runs the leader's side of a batch: linger so followers can pile
// in, then force once for everyone.
func (gc *GroupCommitter) lead() LSN {
	if gc.flushDelay > 0 {
		time.Sleep(gc.flushDelay)
	} else {
		// Let already-runnable committers append and join the batch.
		runtime.Gosched()
	}
	return gc.finishFlush()
}

// finishFlush moves the stable boundary, accounts the batch, wakes
// every waiter and publishes EOSL. Caller must have set gc.flushing.
func (gc *GroupCommitter) finishFlush() LSN {
	eLSN := gc.log.Flush()
	stable := gc.log.StableRecords()
	batch := stable - gc.lastStable
	gc.lastStable = stable

	gc.mu.Lock()
	gc.stats.Flushes++
	gc.stats.FlushedRecords += batch
	if batch > gc.stats.MaxBatch {
		gc.stats.MaxBatch = batch
	}
	gc.flushing = false
	cb := gc.onStable
	gc.cond.Broadcast()
	gc.mu.Unlock()

	if cb != nil {
		cb(eLSN)
	}
	return eLSN
}

// Stats returns a copy of the counters.
func (gc *GroupCommitter) Stats() GroupCommitStats {
	total := gc.log.Records()
	gc.mu.Lock()
	defer gc.mu.Unlock()
	st := gc.stats
	st.Appends = total
	return st
}
