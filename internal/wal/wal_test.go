package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"logrec/internal/sim"
	"logrec/internal/storage"
)

func sampleRecords() []Record {
	return []Record{
		&UpdateRec{TxnID: 7, TableID: 1, KeyVal: 42, OldVal: []byte("old"), NewVal: []byte("new"), PageID: 99, PrevLSN: 16},
		&InsertRec{TxnID: 8, TableID: 1, KeyVal: 43, Val: []byte("v"), PageID: 100, PrevLSN: 0},
		&DeleteRec{TxnID: 9, TableID: 2, KeyVal: 44, OldVal: []byte("gone"), PageID: 101, PrevLSN: 24},
		&CommitRec{TxnID: 7, PrevLSN: 55},
		&AbortRec{TxnID: 8, PrevLSN: 66},
		&CLRRec{TxnID: 9, TableID: 2, KeyVal: 44, Kind: CLRUndoDelete, RestoreVal: []byte("gone"), PageID: 101, UndoNextLSN: 24, PrevLSN: 80},
		&BeginCkptRec{},
		&EndCkptRec{BeginLSN: 16, Active: []ActiveTxn{{TxnID: 3, LastLSN: 90}, {TxnID: 4, LastLSN: 95}}},
		&BWRec{WrittenSet: []storage.PageID{5, 6, 7}, FWLSN: 123},
		&DeltaRec{
			DirtySet:   []storage.PageID{10, 11, 12, 13},
			WrittenSet: []storage.PageID{10},
			FWLSN:      200, FirstDirty: 2, TCLSN: 300,
		},
		&DeltaRec{
			DirtySet: []storage.PageID{20, 21},
			FWLSN:    0, FirstDirty: 0, TCLSN: 400,
			DirtyLSNs: []LSN{401, 402},
		},
		&SMORec{
			Meta:   TreeMeta{TableID: 1, Root: 50, Height: 3, NextPID: 60},
			Images: []PageImage{{PageID: 50, Data: []byte{1, 2, 3}}, {PageID: 51, Data: []byte{4}}},
		},
		&RSSPRec{RsspLSN: 500},
	}
}

func TestAppendAndGetRoundTrip(t *testing.T) {
	l := NewLog()
	var lsns []LSN
	recs := sampleRecords()
	for _, r := range recs {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		if lsn == NilLSN {
			t.Fatal("append returned nil LSN")
		}
		lsns = append(lsns, lsn)
	}
	l.Flush()
	for i, want := range recs {
		got, err := l.Get(lsns[i])
		if err != nil {
			t.Fatalf("Get(%v): %v", lsns[i], err)
		}
		normalize(want)
		normalize(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d round trip:\n got %#v\nwant %#v", i, got, want)
		}
	}
}

// normalize maps nil slices to empty so DeepEqual compares semantics.
func normalize(r Record) {
	v := reflect.ValueOf(r).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() == reflect.Slice && f.IsNil() && f.CanSet() {
			f.Set(reflect.MakeSlice(f.Type(), 0, 0))
		}
	}
}

func TestScannerSeesAllInOrder(t *testing.T) {
	l := NewLog()
	recs := sampleRecords()
	var lsns []LSN
	for _, r := range recs {
		lsns = append(lsns, l.MustAppend(r))
	}
	l.Flush()
	sc := l.NewScanner(FirstLSN(), nil, ScanCost{})
	i := 0
	for {
		rec, lsn, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if lsn != lsns[i] {
			t.Fatalf("record %d at %v, want %v", i, lsn, lsns[i])
		}
		if rec.Type() != recs[i].Type() {
			t.Fatalf("record %d type %v, want %v", i, rec.Type(), recs[i].Type())
		}
		i++
	}
	if i != len(recs) {
		t.Fatalf("scanner saw %d records, want %d", i, len(recs))
	}
}

func TestScannerStartsMidLog(t *testing.T) {
	l := NewLog()
	var lsns []LSN
	for i := 0; i < 10; i++ {
		lsns = append(lsns, l.MustAppend(&CommitRec{TxnID: TxnID(i)}))
	}
	l.Flush()
	sc := l.NewScanner(lsns[6], nil, ScanCost{})
	count := 0
	for {
		rec, _, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		c := rec.(*CommitRec)
		if c.TxnID < 6 {
			t.Fatalf("saw txn %d before scan start", c.TxnID)
		}
		count++
	}
	if count != 4 {
		t.Fatalf("saw %d records, want 4", count)
	}
}

func TestFlushBoundary(t *testing.T) {
	l := NewLog()
	a := l.MustAppend(&CommitRec{TxnID: 1})
	l.Flush()
	b := l.MustAppend(&CommitRec{TxnID: 2})
	if a == b {
		t.Fatal("LSNs collide")
	}
	// Scanner must stop at the stable boundary: txn 2 is volatile.
	sc := l.NewScanner(FirstLSN(), nil, ScanCost{})
	n := 0
	for {
		_, _, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("scanner saw %d records, want 1 (unflushed tail must be invisible)", n)
	}
}

func TestSnapshotDropsVolatileTail(t *testing.T) {
	l := NewLog()
	l.MustAppend(&CommitRec{TxnID: 1})
	l.Flush()
	l.MustAppend(&CommitRec{TxnID: 2}) // volatile: lost at crash
	snap := l.Snapshot()
	if snap.EndLSN() != l.FlushedLSN() {
		t.Fatalf("snapshot end %v != flushed %v", snap.EndLSN(), l.FlushedLSN())
	}
	if _, err := snap.Append(&CommitRec{TxnID: 3}); err == nil {
		t.Fatal("append to snapshot succeeded")
	}
}

func TestScannerChargesLogPages(t *testing.T) {
	l := NewLog()
	for i := 0; i < 2000; i++ {
		l.MustAppend(&UpdateRec{TxnID: TxnID(i), KeyVal: uint64(i), OldVal: make([]byte, 40), NewVal: make([]byte, 40)})
	}
	l.Flush()
	clock := &sim.Clock{}
	cost := ScanCost{PageSize: 4096, PerPage: sim.Millisecond}
	sc := l.NewScanner(FirstLSN(), clock, cost)
	for {
		_, _, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if sc.PagesRead() == 0 {
		t.Fatal("no log pages charged")
	}
	wantTime := sim.Duration(sc.PagesRead()) * sim.Millisecond
	if got := clock.Now().Sub(0); got != wantTime {
		t.Fatalf("clock advanced %v, want %v", got, wantTime)
	}
	// Sanity: bytes / page size ≈ pages read.
	approxPages := int64(l.EndLSN())/4096 + 1
	if diff := sc.PagesRead() - approxPages; diff < -1 || diff > 1 {
		t.Fatalf("pages read %d, approx %d", sc.PagesRead(), approxPages)
	}
}

func TestGetOutOfRange(t *testing.T) {
	l := NewLog()
	l.MustAppend(&CommitRec{TxnID: 1})
	l.Flush()
	if _, err := l.Get(LSN(1 << 40)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if _, err := l.Get(NilLSN); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Get(NilLSN) err = %v, want ErrOutOfRange", err)
	}
}

func TestDeltaValidation(t *testing.T) {
	// A delta whose DirtyLSNs length mismatches DirtySet must fail to
	// decode.
	bad := &DeltaRec{
		DirtySet:  []storage.PageID{1, 2, 3},
		DirtyLSNs: []LSN{9},
	}
	body := bad.encodeBody(nil)
	var out DeltaRec
	if err := out.decodeBody(body); err == nil {
		t.Fatal("mismatched DirtyLSNs decoded without error")
	}
}

func TestAppendCount(t *testing.T) {
	l := NewLog()
	l.MustAppend(&BWRec{})
	l.MustAppend(&DeltaRec{})
	l.MustAppend(&DeltaRec{})
	if got := l.AppendCount(TypeBW); got != 1 {
		t.Fatalf("BW count = %d", got)
	}
	if got := l.AppendCount(TypeDelta); got != 2 {
		t.Fatalf("Delta count = %d", got)
	}
}

// TestQuickUpdateRoundTrip fuzzes update record encode/decode.
func TestQuickUpdateRoundTrip(t *testing.T) {
	f := func(txn uint64, table uint32, key uint64, oldV, newV []byte, pid uint32, prev uint64) bool {
		in := &UpdateRec{
			TxnID: TxnID(txn), TableID: TableID(table), KeyVal: key,
			OldVal: oldV, NewVal: newV,
			PageID: storage.PageID(pid), PrevLSN: LSN(prev),
		}
		body := in.encodeBody(nil)
		var out UpdateRec
		if err := out.decodeBody(body); err != nil {
			return false
		}
		normalize(in)
		normalize(&out)
		return reflect.DeepEqual(in, &out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeltaRoundTrip fuzzes ∆-record encode/decode including the
// perfect-DPT DirtyLSNs variant.
func TestQuickDeltaRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50)
		in := &DeltaRec{
			FWLSN:      LSN(rng.Uint64()),
			FirstDirty: uint32(rng.Intn(n + 1)),
			TCLSN:      LSN(rng.Uint64()),
		}
		for i := 0; i < n; i++ {
			in.DirtySet = append(in.DirtySet, storage.PageID(rng.Uint32()))
		}
		for i := 0; i < rng.Intn(20); i++ {
			in.WrittenSet = append(in.WrittenSet, storage.PageID(rng.Uint32()))
		}
		if rng.Intn(2) == 0 {
			for range in.DirtySet {
				in.DirtyLSNs = append(in.DirtyLSNs, LSN(rng.Uint64()))
			}
		}
		body := in.encodeBody(nil)
		var out DeltaRec
		if err := out.decodeBody(body); err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		normalize(in)
		normalize(&out)
		return reflect.DeepEqual(in, &out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCorruptBodiesDontPanic feeds random bytes to every decoder;
// they must return errors, never panic.
func TestQuickCorruptBodiesDontPanic(t *testing.T) {
	types := []Type{TypeUpdate, TypeInsert, TypeDelete, TypeCommit, TypeAbort, TypeCLR,
		TypeBeginCkpt, TypeEndCkpt, TypeBW, TypeDelta, TypeSMO, TypeRSSP}
	f := func(raw []byte, pick uint8) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic: %v", r)
				ok = false
			}
		}()
		typ := types[int(pick)%len(types)]
		rec, err := newRecord(typ)
		if err != nil {
			return false
		}
		_ = rec.decodeBody(raw) // must not panic; error is fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordTypeStrings(t *testing.T) {
	for _, typ := range []Type{TypeUpdate, TypeInsert, TypeDelete, TypeCommit, TypeAbort,
		TypeCLR, TypeBeginCkpt, TypeEndCkpt, TypeBW, TypeDelta, TypeSMO, TypeRSSP} {
		if s := typ.String(); s == "" || s == fmt.Sprintf("type(%d)", uint8(typ)) {
			t.Fatalf("missing String for type %d", typ)
		}
	}
}
