package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"logrec/internal/storage"
)

// fileLog creates a file-backed log in a test temp dir and returns it
// with its backend and path.
func fileLog(t *testing.T) (*Log, *FileBackend, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	be, err := CreateFileBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	log := NewLog()
	if err := log.SetBackend(be); err != nil {
		t.Fatal(err)
	}
	return log, be, path
}

// TestGroupCommitOneSyncPerBatch is the fsync-amortization oracle: many
// concurrent committers over a file-backed log must produce one real
// log force (backend fsync) per group-commit batch, not one per commit.
// The device stats hook is the counter, cross-checked against the
// backend's own stats.
func TestGroupCommitOneSyncPerBatch(t *testing.T) {
	const (
		clients   = 8
		perClient = 25
	)
	log, be, _ := fileLog(t)
	attachSyncs := be.Stats().Syncs // SetBackend persists the header with one sync

	var hookSyncs, hookWrites atomic.Int64
	be.SetIOHook(func(op storage.IOOp, n int) {
		switch op {
		case storage.OpSync:
			hookSyncs.Add(1)
		case storage.OpWrite:
			hookWrites.Add(1)
		}
	})

	// A small linger window plus the real fsync latency makes followers
	// pile into the leader's batch, as in production.
	gc := NewGroupCommitter(log, nil, 200*time.Microsecond)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				lsn := gc.MustAppend(&CommitRec{TxnID: TxnID(c*perClient + i + 1)})
				gc.WaitStable(lsn)
			}
		}(c)
	}
	wg.Wait()

	st := gc.Stats()
	syncs := be.Stats().Syncs - attachSyncs
	if syncs != st.Flushes {
		t.Fatalf("got %d fsyncs for %d batch flushes; every flush must force exactly once", syncs, st.Flushes)
	}
	if syncs >= st.Commits {
		t.Fatalf("no amortization: %d fsyncs for %d commits", syncs, st.Commits)
	}
	if got := hookSyncs.Load(); got != syncs {
		t.Fatalf("stats hook counted %d syncs, backend counted %d", got, syncs)
	}
	if hookWrites.Load() == 0 {
		t.Fatal("stats hook never saw a log write")
	}
	t.Logf("%d commits → %d flushes/fsyncs (%.1f commits per force)",
		st.Commits, syncs, float64(st.Commits)/float64(syncs))
}

// TestOpenLogFileRoundTrip checks that the on-disk log holds exactly
// the stable prefix: flushed records survive a close/reopen, the
// volatile tail does not.
func TestOpenLogFileRoundTrip(t *testing.T) {
	log, _, path := fileLog(t)
	for i := 0; i < 10; i++ {
		log.MustAppend(&UpdateRec{TxnID: 1, KeyVal: uint64(i), NewVal: []byte(fmt.Sprintf("v%d", i))})
	}
	stableEnd := log.Flush()
	// Volatile tail: appended but never flushed — lost at the crash.
	log.MustAppend(&CommitRec{TxnID: 1})
	if err := log.CloseBackend(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseBackend()
	if re.FlushedLSN() != stableEnd || re.EndLSN() != stableEnd {
		t.Fatalf("reopened log ends at %v/%v, want stable end %v", re.FlushedLSN(), re.EndLSN(), stableEnd)
	}
	if got := re.Records(); got != 10 {
		t.Fatalf("reopened log holds %d records, want 10", got)
	}
	if got := re.AppendCount(TypeCommit); got != 0 {
		t.Fatalf("volatile commit record survived the crash (%d commit records)", got)
	}
	// The reopened log must be writable and durable: append, force,
	// reopen again.
	lsn := re.MustAppend(&CommitRec{TxnID: 2})
	re.Flush()
	re.CloseBackend()
	re2, err := OpenLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.CloseBackend()
	rec, err := re2.Get(lsn)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := rec.(*CommitRec); !ok || c.TxnID != 2 {
		t.Fatalf("got %T %+v at %v, want commit of txn 2", rec, rec, lsn)
	}
}

// TestOpenLogFileTornTail tears the file mid-frame — inside the frame
// header and inside the body — and checks OpenLogFile trims back to the
// last complete record and truncates the file to match.
func TestOpenLogFileTornTail(t *testing.T) {
	for _, tear := range []int{1, 3, 12, 40} {
		t.Run(fmt.Sprintf("tear%d", tear), func(t *testing.T) {
			log, _, path := fileLog(t)
			for i := 0; i < 5; i++ {
				log.MustAppend(&UpdateRec{TxnID: 1, KeyVal: uint64(i), NewVal: []byte("val")})
			}
			stableEnd := log.Flush()
			if err := log.CloseBackend(); err != nil {
				t.Fatal(err)
			}
			if err := TearFile(path, tear); err != nil {
				t.Fatal(err)
			}
			if info, err := os.Stat(path); err != nil || info.Size() != int64(stableEnd)+int64(tear) {
				t.Fatalf("tear not applied: size %d err %v", info.Size(), err)
			}

			re, err := OpenLogFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer re.CloseBackend()
			if re.FlushedLSN() != stableEnd {
				t.Fatalf("trimmed log ends at %v, want %v", re.FlushedLSN(), stableEnd)
			}
			if got := re.Records(); got != 5 {
				t.Fatalf("trimmed log holds %d records, want 5", got)
			}
			if info, err := os.Stat(path); err != nil || info.Size() != int64(stableEnd) {
				t.Fatalf("file not truncated back: size %d err %v", info.Size(), err)
			}
		})
	}
}

// TestOpenLogFileRejectsGarbage checks that a non-log file is refused
// rather than scanned.
func TestOpenLogFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-log")
	if err := os.WriteFile(path, []byte("definitely not a WAL header"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLogFile(path); err == nil {
		t.Fatal("OpenLogFile accepted garbage")
	}
}
