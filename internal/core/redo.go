package core

import (
	"fmt"

	"logrec/internal/buffer"
	"logrec/internal/page"
	"logrec/internal/wal"
)

// applyOp re-executes a data operation on its page (REDOOPERATION in
// Algorithms 1, 2 and 5). The caller has already decided redo is needed
// via the pLSN test; replay determinism guarantees the page has room
// (the page is in the exact state it had when the operation first ran),
// so structural errors here indicate recovery bugs, not recoverable
// conditions.
func applyOp(pool *buffer.Pool, f *buffer.Frame, op wal.DataOp, lsn wal.LSN) error {
	var err error
	switch t := op.(type) {
	case *wal.UpdateRec:
		err = f.Page.Update(t.KeyVal, t.NewVal)
	case *wal.InsertRec:
		err = f.Page.Insert(t.KeyVal, t.Val)
	case *wal.DeleteRec:
		err = f.Page.Delete(t.KeyVal)
	case *wal.CLRRec:
		switch t.Kind {
		case wal.CLRUndoUpdate:
			err = f.Page.Update(t.KeyVal, t.RestoreVal)
		case wal.CLRUndoInsert:
			err = f.Page.Delete(t.KeyVal)
		case wal.CLRUndoDelete:
			err = f.Page.Insert(t.KeyVal, t.RestoreVal)
		default:
			err = fmt.Errorf("unknown CLR kind %d", t.Kind)
		}
	default:
		err = fmt.Errorf("unexpected record type %v", op.Type())
	}
	if err != nil {
		return fmt.Errorf("redo of %v at %v on page %d: %w", op.Type(), lsn, f.PID, err)
	}
	f.Page.SetLSN(uint64(lsn))
	pool.MarkDirty(f, lsn)
	return nil
}

// logicalRedo is the TC redo pass for Log0/Log1/Log2: the TC re-submits
// its logical operations in log order; the DC locates each record's
// page by key through the B-tree (no PIDs are consulted), screens with
// the DPT when available (Algorithm 5), falls back to basic logical
// redo (Algorithm 2) for the tail of the log, and applies the pLSN
// idempotence test before re-executing.
func (r *run) logicalRedo() error {
	pool := r.d.Pool()
	tree := r.d.Tree()

	var pf *pacer
	if r.m.UsesPrefetch() {
		if r.opt.IndexPreload {
			if err := r.preloadIndex(); err != nil {
				return fmt.Errorf("index preload: %w", err)
			}
		}
		list := r.pfList
		if r.opt.PrefetchStrategy == PrefetchDPTOrder {
			list = dptPrefetchList(r.table)
		}
		pf = newPacer(pool, r.table, list, r.opt.MaxOutstanding)
		pf.topUp()
	}

	sc := r.log.NewScanner(r.scanStart, r.clock, r.opt.ScanCost)
	for {
		rec, lsn, ok, err := sc.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		r.txns.note(rec, lsn)
		op, isOp := rec.(wal.DataOp)
		if !isOp {
			continue
		}
		r.met.RedoRecords++
		r.clock.Advance(r.opt.PerRecordCPU)
		if pf != nil {
			pf.topUp()
		}

		// Traverse the index to find the PID (Algorithm 2 line 8 /
		// Algorithm 5 line 4). Index page misses are charged here.
		missBefore := pool.Stats().Misses
		pid, err := tree.FindLeaf(op.Key())
		r.met.IndexPageFetches += pool.Stats().Misses - missBefore
		if err != nil {
			return fmt.Errorf("index search for key %d: %w", op.Key(), err)
		}

		if r.table != nil {
			if lsn < r.lastDeltaTCLSN {
				// Algorithm 5 lines 5-8: the optimised redo test.
				e := r.table.Find(pid)
				if e == nil {
					r.met.SkippedDPT++
					continue
				}
				if lsn < e.RLSN {
					r.met.SkippedRLSN++
					continue
				}
			} else {
				// Tail of the log: pages dirtied after the last ∆
				// record are unknown to the DPT; fall back to basic
				// logical redo (§4.3).
				r.met.TailRecords++
			}
		}

		missBefore = pool.Stats().Misses
		f, err := pool.Get(pid)
		r.met.DataPageFetches += pool.Stats().Misses - missBefore
		if err != nil {
			return fmt.Errorf("fetching page %d: %w", pid, err)
		}
		if uint64(lsn) <= f.Page.LSN() {
			r.met.SkippedPLSN++
			pool.Unpin(f)
			continue
		}
		err = applyOp(pool, f, op, lsn)
		pool.Unpin(f)
		if err != nil {
			return err
		}
		r.met.Applied++
	}
	r.met.LogPagesRead += sc.PagesRead()
	return nil
}

// physiologicalRedo is ARIES/SQL-Server redo (Algorithm 1) for
// SQL1/SQL2: log records name their page directly; the DPT and rLSN
// screen avoids fetching pages that cannot need redo; SMO records are
// replayed inline in LSN order (SQL Server's system-transaction redo).
func (r *run) physiologicalRedo() error {
	pool := r.d.Pool()

	sc := r.log.NewScanner(r.scanStart, r.clock, r.opt.ScanCost)
	var la *lookahead
	nextRec := sc.Next
	if r.m.UsesPrefetch() {
		la = newLookahead(sc, pool, r.table, r.opt.LookaheadRecords, r.opt.MaxOutstanding)
		nextRec = la.next
	}

	for {
		rec, lsn, ok, err := nextRec()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		r.txns.note(rec, lsn)
		switch t := rec.(type) {
		case *wal.SMORec:
			if err := r.redoSMOPhysiological(t, lsn); err != nil {
				return err
			}
		case wal.DataOp:
			r.met.RedoRecords++
			r.clock.Advance(r.opt.PerRecordCPU)
			// Algorithm 1 lines 4-8: DPT screen before any page fetch.
			e := r.table.Find(t.PID())
			if e == nil {
				r.met.SkippedDPT++
				continue
			}
			if lsn < e.RLSN {
				r.met.SkippedRLSN++
				continue
			}
			missBefore := pool.Stats().Misses
			f, err := pool.Get(t.PID())
			r.met.DataPageFetches += pool.Stats().Misses - missBefore
			if err != nil {
				return fmt.Errorf("fetching page %d: %w", t.PID(), err)
			}
			if uint64(lsn) <= f.Page.LSN() {
				r.met.SkippedPLSN++
				pool.Unpin(f)
				continue
			}
			err = applyOp(pool, f, t, lsn)
			pool.Unpin(f)
			if err != nil {
				return err
			}
			r.met.Applied++
		case *wal.DeltaRec:
			// Logical-family records; ignored by physiological redo.
		}
	}
	r.met.LogPagesRead += sc.PagesRead()
	return nil
}

// redoSMOPhysiological replays an SMO record inside the integrated redo
// pass, screening each page image with the DPT like any other update.
func (r *run) redoSMOPhysiological(t *wal.SMORec, lsn wal.LSN) error {
	tree := r.d.Tree()
	if t.Meta.NextPID >= tree.Meta().NextPID {
		tree.SetMeta(walMetaToTree(t.Meta))
	}
	pool := r.d.Pool()
	for _, img := range t.Images {
		if e := r.table.Find(img.PageID); e == nil || lsn < e.RLSN {
			continue
		}
		// Miss attribution is per-image, not a pool-counter diff: under
		// shard-scoped barriers, unaffected workers keep missing on
		// their own pages while this replays. The SMO's own pages are
		// quiesced (their shards are paused), so the cached check
		// cannot race.
		var f *buffer.Frame
		var err error
		switch {
		case pool.Contains(img.PageID):
			f, err = pool.Get(img.PageID)
		case r.d.Disk().Exists(img.PageID):
			f, err = pool.Get(img.PageID)
			r.met.SMOPageFetches++
		default:
			f, err = pool.NewPage(img.PageID, page.TypeInvalid)
		}
		if err != nil {
			return fmt.Errorf("SMO image for page %d: %w", img.PageID, err)
		}
		if f.Page.LSN() < uint64(lsn) {
			copy(f.Page.Bytes(), img.Data)
			pool.MarkDirty(f, lsn)
		}
		pool.Unpin(f)
	}
	return nil
}
