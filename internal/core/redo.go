package core

import (
	"fmt"

	"logrec/internal/buffer"
	"logrec/internal/page"
	"logrec/internal/wal"
)

// applyOp re-executes a data operation on its page (REDOOPERATION in
// Algorithms 1, 2 and 5). The caller has already decided redo is needed
// via the pLSN test; replay determinism guarantees the page has room
// (the page is in the exact state it had when the operation first ran),
// so structural errors here indicate recovery bugs, not recoverable
// conditions.
func applyOp(pool *buffer.Pool, f *buffer.Frame, op wal.DataOp, lsn wal.LSN) error {
	var err error
	switch t := op.(type) {
	case *wal.UpdateRec:
		err = f.Page.Update(t.KeyVal, t.NewVal)
	case *wal.InsertRec:
		err = f.Page.Insert(t.KeyVal, t.Val)
	case *wal.DeleteRec:
		err = f.Page.Delete(t.KeyVal)
	case *wal.CLRRec:
		switch t.Kind {
		case wal.CLRUndoUpdate:
			err = f.Page.Update(t.KeyVal, t.RestoreVal)
		case wal.CLRUndoInsert:
			err = f.Page.Delete(t.KeyVal)
		case wal.CLRUndoDelete:
			err = f.Page.Insert(t.KeyVal, t.RestoreVal)
		default:
			err = fmt.Errorf("unknown CLR kind %d", t.Kind)
		}
	default:
		err = fmt.Errorf("unexpected record type %v", op.Type())
	}
	if err != nil {
		return fmt.Errorf("redo of %v at %v on page %d: %w", op.Type(), lsn, f.PID, err)
	}
	f.Page.SetLSN(uint64(lsn))
	pool.MarkDirty(f, lsn)
	return nil
}

// logicalRedo is one shard's TC redo pass for Log0/Log1/Log2: the TC
// re-submits its logical operations in log order; the DC locates each
// record's page by key through its B-tree (no PIDs are consulted),
// screens with the DPT when available (Algorithm 5), falls back to
// basic logical redo (Algorithm 2) for the tail of the log, and applies
// the pLSN idempotence test before re-executing.
func (sr *shardRun) logicalRedo(src recordSource) error {
	pool := sr.d.Pool()
	tree := sr.d.Tree()
	opt := &sr.r.opt

	var pf *pacer
	if sr.r.m.UsesPrefetch() {
		if opt.IndexPreload {
			if err := sr.preloadIndex(); err != nil {
				return fmt.Errorf("index preload: %w", err)
			}
		}
		list := sr.pfList
		if opt.PrefetchStrategy == PrefetchDPTOrder {
			list = dptPrefetchList(sr.table)
		}
		pf = newPacer(pool, sr.table, list, opt.MaxOutstanding)
		pf.topUp()
	}

	for {
		rec, lsn, ok, err := src.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		op, isOp := rec.(wal.DataOp)
		if !isOp {
			continue
		}
		sr.met.RedoRecords++
		sr.r.clock.Advance(opt.PerRecordCPU)
		if pf != nil {
			pf.topUp()
		}

		// Traverse the index to find the PID (Algorithm 2 line 8 /
		// Algorithm 5 line 4). Index page misses are charged here.
		missBefore := pool.Stats().Misses
		pid, err := tree.FindLeaf(op.Key())
		sr.met.IndexPageFetches += pool.Stats().Misses - missBefore
		if err != nil {
			return fmt.Errorf("index search for key %d: %w", op.Key(), err)
		}

		if sr.table != nil {
			if lsn < sr.lastDeltaTCLSN {
				// Algorithm 5 lines 5-8: the optimised redo test.
				e := sr.table.Find(pid)
				if e == nil {
					sr.met.SkippedDPT++
					continue
				}
				if lsn < e.RLSN {
					sr.met.SkippedRLSN++
					continue
				}
			} else {
				// Tail of the log: pages dirtied after the last ∆
				// record are unknown to the DPT; fall back to basic
				// logical redo (§4.3).
				sr.met.TailRecords++
			}
		}

		missBefore = pool.Stats().Misses
		f, err := pool.Get(pid)
		sr.met.DataPageFetches += pool.Stats().Misses - missBefore
		if err != nil {
			return fmt.Errorf("fetching page %d: %w", pid, err)
		}
		if uint64(lsn) <= f.Page.LSN() {
			sr.met.SkippedPLSN++
			pool.Unpin(f)
			continue
		}
		err = applyOp(pool, f, op, lsn)
		pool.Unpin(f)
		if err != nil {
			return err
		}
		sr.met.Applied++
	}
	sr.met.LogPagesRead += src.pagesRead()
	return nil
}

// physiologicalRedo is one shard's ARIES/SQL-Server redo (Algorithm 1)
// for SQL1/SQL2: log records name their page directly; the DPT and rLSN
// screen avoids fetching pages that cannot need redo; SMO records are
// replayed inline in LSN order (SQL Server's system-transaction redo).
func (sr *shardRun) physiologicalRedo(src recordSource) error {
	pool := sr.d.Pool()
	opt := &sr.r.opt

	nextRec := src.next
	if sr.r.m.UsesPrefetch() {
		la := newLookahead(src, pool, sr.table, opt.LookaheadRecords, opt.MaxOutstanding)
		nextRec = la.next
	}

	for {
		rec, lsn, ok, err := nextRec()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		switch t := rec.(type) {
		case *wal.SMORec:
			if err := sr.redoSMOPhysiological(t, lsn); err != nil {
				return err
			}
		case wal.DataOp:
			sr.met.RedoRecords++
			sr.r.clock.Advance(opt.PerRecordCPU)
			// Algorithm 1 lines 4-8: DPT screen before any page fetch.
			e := sr.table.Find(t.PID())
			if e == nil {
				sr.met.SkippedDPT++
				continue
			}
			if lsn < e.RLSN {
				sr.met.SkippedRLSN++
				continue
			}
			missBefore := pool.Stats().Misses
			f, err := pool.Get(t.PID())
			sr.met.DataPageFetches += pool.Stats().Misses - missBefore
			if err != nil {
				return fmt.Errorf("fetching page %d: %w", t.PID(), err)
			}
			if uint64(lsn) <= f.Page.LSN() {
				sr.met.SkippedPLSN++
				pool.Unpin(f)
				continue
			}
			err = applyOp(pool, f, t, lsn)
			pool.Unpin(f)
			if err != nil {
				return err
			}
			sr.met.Applied++
		case *wal.DeltaRec:
			// Logical-family records; ignored by physiological redo.
		}
	}
	sr.met.LogPagesRead += src.pagesRead()
	return nil
}

// redoSMOPhysiological replays an SMO record inside the integrated redo
// pass, screening each page image with the DPT like any other update.
func (sr *shardRun) redoSMOPhysiological(t *wal.SMORec, lsn wal.LSN) error {
	tree := sr.d.Tree()
	if t.Meta.NextPID >= tree.Meta().NextPID {
		tree.SetMeta(walMetaToTree(t.Meta))
	}
	pool := sr.d.Pool()
	for _, img := range t.Images {
		if e := sr.table.Find(img.PageID); e == nil || lsn < e.RLSN {
			continue
		}
		// Miss attribution is per-image, not a pool-counter diff: under
		// shard-scoped barriers, unaffected workers keep missing on
		// their own pages while this replays. The SMO's own pages are
		// quiesced (their shards are paused), so the cached check
		// cannot race.
		var f *buffer.Frame
		var err error
		switch {
		case pool.Contains(img.PageID):
			f, err = pool.Get(img.PageID)
		case sr.d.Disk().Exists(img.PageID):
			f, err = pool.Get(img.PageID)
			sr.met.SMOPageFetches++
		default:
			f, err = pool.NewPage(img.PageID, page.TypeInvalid)
		}
		if err != nil {
			return fmt.Errorf("SMO image for page %d: %w", img.PageID, err)
		}
		if f.Page.LSN() < uint64(lsn) {
			copy(f.Page.Bytes(), img.Data)
			pool.MarkDirty(f, lsn)
		}
		pool.Unpin(f)
	}
	return nil
}
