package core

import (
	"fmt"
	"sync"

	"logrec/internal/buffer"
	"logrec/internal/storage"
	"logrec/internal/wal"
)

// Parallel page-partitioned redo.
//
// The serial redo passes replay the log one record at a time; on a cold
// cache nearly every record stalls on its page fetch, so redo time is
// dominated by serialized IO (§1.3, Appendix B). This file shards that
// work: a dispatcher scans the log once and routes each data operation
// to one of N workers keyed by the operation's page, so
//
//   - all records for one page land on the same worker and are applied
//     in log order (per-page ordering, which is all redo requires —
//     pages are independent between structure modifications);
//   - different pages replay concurrently, overlapping their IO.
//
// Structure modifications are the one cross-page dependency: an SMO
// moves keys between pages, so records before and after it may name the
// same key under different PIDs. The two families resolve it
// differently:
//
//   - Logical family: dcPass has already replayed every SMO in the
//     window (§4.2 — the tree must be well-formed before logical redo),
//     so the pages carry their end-of-window structure before redo
//     begins and the dispatcher skips SMO records, exactly like the
//     serial logical pass. Routing by the record's physiological PID
//     hint stays sound: an operation whose key later moved pages is
//     subsumed by that SMO's after-image, and the pLSN test on the
//     hinted page (stamped at or past the SMO's LSN) screens it out.
//   - SQL family: SMOs replay inline at their log position (SQL
//     Server's system-transaction redo), so the dispatcher runs an SMO
//     barrier: all workers drain and pause, the SMO replays serially,
//     and the workers resume.
//
// Each worker owns a pacer prefetcher over its shard of the PF-list
// (Log2) or the DPT in rLSN order (SQL2), so prefetch stays
// page-partitioned along with the redo work.

// redoTask is one unit routed to a worker: either a data operation or a
// barrier token.
type redoTask struct {
	op      wal.DataOp
	lsn     wal.LSN
	barrier *redoBarrier
}

// redoBarrier synchronizes every worker around an SMO: each worker
// signals arrival and then blocks until the dispatcher has replayed the
// SMO and closed resume.
type redoBarrier struct {
	arrived *sync.WaitGroup
	resume  chan struct{}
}

// redoWorker replays the records of its page shard in arrival (= log)
// order. Metrics are worker-private and merged by the dispatcher after
// the workers exit.
type redoWorker struct {
	r     *run
	tasks chan redoTask
	pf    *pacer
	met   Metrics
	err   error
}

func (w *redoWorker) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	pool := w.r.d.Pool()
	for t := range w.tasks {
		if t.barrier != nil {
			t.barrier.arrived.Done()
			<-t.barrier.resume
			continue
		}
		if w.err != nil {
			continue // drain remaining tasks so the dispatcher never blocks
		}
		if w.pf != nil {
			w.pf.topUp()
		}
		if err := w.apply(pool, t); err != nil {
			w.err = err
		}
	}
}

// apply fetches the task's page and re-executes the operation behind the
// pLSN idempotence test, exactly like the serial passes.
func (w *redoWorker) apply(pool *buffer.Pool, t redoTask) error {
	pid := t.op.PID()
	cached := pool.Contains(pid)
	f, err := pool.Get(pid)
	if err != nil {
		return fmt.Errorf("fetching page %d: %w", pid, err)
	}
	if !cached {
		// Only this worker fetches this page, so the miss attribution
		// is exact even though the counter check is done in two steps.
		w.met.DataPageFetches++
	}
	if uint64(t.lsn) <= f.Page.LSN() {
		w.met.SkippedPLSN++
		pool.Unpin(f)
		return nil
	}
	err = applyOp(pool, f, t.op, t.lsn)
	pool.Unpin(f)
	if err != nil {
		return err
	}
	w.met.Applied++
	return nil
}

// shardPIDs splits a prefetch list so that shard i holds exactly the
// pages worker i will replay (same modulo routing as the dispatcher).
func shardPIDs(src []storage.PageID, n int) [][]storage.PageID {
	out := make([][]storage.PageID, n)
	for _, pid := range src {
		i := int(uint32(pid) % uint32(n))
		out[i] = append(out[i], pid)
	}
	return out
}

// parallelRedo is the page-partitioned parallel redo pass. It serves
// both families: the DPT screen (when present) runs in the dispatcher,
// application and the pLSN test run in the workers. Index preloading is
// skipped — parallel redo locates pages by PID hint, not by index
// traversal, so the index pages are not on its critical path.
func (r *run) parallelRedo(workers int) error {
	pool := r.d.Pool()

	var lists [][]storage.PageID
	if r.m.UsesPrefetch() && r.table != nil {
		src := r.pfList
		if !r.m.IsLogical() || r.opt.PrefetchStrategy == PrefetchDPTOrder {
			// SQL2's serial prefetch is log-driven lookahead; the
			// parallel equivalent is the DPT in rLSN order, which
			// approximates first-use order without a second log scan.
			src = dptPrefetchList(r.table)
		}
		lists = shardPIDs(src, workers)
	}

	ws := make([]*redoWorker, workers)
	var wg sync.WaitGroup
	for i := range ws {
		w := &redoWorker{r: r, tasks: make(chan redoTask, 128)}
		if lists != nil {
			w.pf = newPacer(pool, r.table, lists[i], r.opt.MaxOutstanding)
			w.pf.topUp()
		}
		ws[i] = w
		wg.Add(1)
		go w.loop(&wg)
	}
	finish := func() error {
		for _, w := range ws {
			close(w.tasks)
		}
		wg.Wait()
		var err error
		for _, w := range ws {
			if err == nil && w.err != nil {
				err = w.err
			}
			r.met.Applied += w.met.Applied
			r.met.SkippedPLSN += w.met.SkippedPLSN
			r.met.DataPageFetches += w.met.DataPageFetches
		}
		return err
	}

	sc := r.log.NewScanner(r.scanStart, r.clock, r.opt.ScanCost)
	for {
		rec, lsn, ok, err := sc.Next()
		if err != nil {
			finish()
			return err
		}
		if !ok {
			break
		}
		r.txns.note(rec, lsn)
		switch t := rec.(type) {
		case *wal.SMORec:
			if r.m.IsLogical() {
				// Already replayed by dcPass; redo ignores it, like
				// the serial logical pass.
				continue
			}
			// Barrier: drain every worker, replay the SMO serially
			// while they are paused, then release them.
			b := &redoBarrier{arrived: new(sync.WaitGroup), resume: make(chan struct{})}
			b.arrived.Add(workers)
			for _, w := range ws {
				w.tasks <- redoTask{barrier: b}
			}
			b.arrived.Wait()
			err = r.redoSMOPhysiological(t, lsn)
			close(b.resume)
			if err != nil {
				finish()
				return err
			}
		case wal.DataOp:
			r.met.RedoRecords++
			r.clock.Advance(r.opt.PerRecordCPU)
			pid := t.PID()
			if r.table != nil {
				if r.m.IsLogical() && lsn >= r.lastDeltaTCLSN {
					// Tail of the log: pages dirtied after the last ∆
					// record are unknown to the DPT (§4.3); replay
					// unscreened, as serial basic mode does.
					r.met.TailRecords++
				} else {
					e := r.table.Find(pid)
					if e == nil {
						r.met.SkippedDPT++
						continue
					}
					if lsn < e.RLSN {
						r.met.SkippedRLSN++
						continue
					}
				}
			}
			ws[int(uint32(pid)%uint32(workers))].tasks <- redoTask{op: t, lsn: lsn}
		}
	}
	r.met.LogPagesRead += sc.PagesRead()
	return finish()
}
