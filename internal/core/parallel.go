package core

import (
	"fmt"
	"sync"

	"logrec/internal/storage"
	"logrec/internal/wal"
)

// Parallel page-partitioned replay.
//
// The serial redo passes replay the log one record at a time; on a cold
// cache nearly every record stalls on its page fetch, so redo time is
// dominated by serialized IO (§1.3, Appendix B). This file shards that
// work: a dispatcher routes each page operation to one of N workers
// keyed by the operation's page, so
//
//   - all records for one page land on the same worker and are applied
//     in dispatch (= log) order (per-page ordering, which is all redo
//     requires — pages are independent between structure modifications);
//   - different pages replay concurrently, overlapping their IO.
//
// The replay pipeline has three stages:
//
//	record source ──► bounded ring ──► dispatcher ──► shard workers
//	(decode, DPT screen,              (route, SMO     (fetch, pLSN test,
//	 off-thread)                       barriers)       apply)
//
// The scan stage decodes log records and runs the DPT/rLSN screen on
// its own goroutine, feeding survivors into a bounded ring
// (Options.ScanAheadRecords), so at high worker counts dispatch is a
// channel send, not a decode loop. On a multi-shard engine each data
// shard runs its own instance of this pipeline concurrently, fed by the
// log demultiplexer; SMO barriers are then naturally local to the one
// shard whose tree the SMO changed.
//
// Structure modifications are the one cross-page dependency: an SMO
// moves keys between pages, so records before and after it may name the
// same key under different PIDs. The two families resolve it
// differently:
//
//   - Logical family: dcPass has already replayed every SMO in the
//     window (§4.2 — the tree must be well-formed before logical redo),
//     so the pages carry their end-of-window structure before redo
//     begins and the scan stage skips SMO records, exactly like the
//     serial logical pass. Routing by the record's physiological PID
//     hint stays sound: an operation whose key later moved pages is
//     subsumed by that SMO's after-image, and the pLSN test on the
//     hinted page (stamped at or past the SMO's LSN) screens it out.
//   - SQL family: SMOs replay inline at their log position (SQL
//     Server's system-transaction redo), under a barrier scoped to the
//     workers owning the SMO's pages (SMORec.AffectedPIDs): those
//     workers drain and pause, the SMO replays, and they resume.
//     Workers owning none of the SMO's pages run ahead — their queued
//     tasks touch disjoint pages, so no ordering is lost (FIFO
//     channels are the fence; the pool's barrier-epoch counter tracks
//     how many fences have been raised).
//
// Parallel undo (undo_parallel.go) reuses the same worker pool across
// every data shard at once: CLRs are planned and appended serially, and
// their page applications are sharded by (data shard, page), with
// structure-changing undo operations latching only the affected leaf's
// worker (the page-latch protocol described there).

// redoTask is one unit routed to a worker: a page operation on one data
// shard, or a barrier token. FIFO channel order is the fence: a task
// routed before a barrier is applied before it, one routed after waits
// behind it.
type redoTask struct {
	sr      *shardRun
	op      wal.DataOp
	lsn     wal.LSN
	barrier *poolBarrier
}

// poolBarrier synchronizes a set of workers around a structure
// modification: each affected worker signals arrival and then blocks
// until the dispatcher has applied the modification and closed resume.
type poolBarrier struct {
	arrived *sync.WaitGroup
	resume  chan struct{}
}

// shardWorker replays the page operations of its partition in arrival
// (= dispatch) order. Metrics are worker-private and merged by
// shardedPool.finish after the workers exit.
type shardWorker struct {
	tasks chan redoTask
	pf    *pacer
	met   Metrics
	err   error
}

func (w *shardWorker) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for t := range w.tasks {
		if t.barrier != nil {
			t.barrier.arrived.Done()
			<-t.barrier.resume
			continue
		}
		if w.err != nil {
			continue // drain remaining tasks so the dispatcher never blocks
		}
		if w.pf != nil {
			w.pf.topUp()
		}
		if err := w.apply(t); err != nil {
			w.err = err
		}
	}
}

// apply fetches the task's page from its data shard's pool and
// re-executes the operation behind the pLSN idempotence test, exactly
// like the serial passes.
func (w *shardWorker) apply(t redoTask) error {
	pool := t.sr.d.Pool()
	pid := t.op.PID()
	cached := pool.Contains(pid)
	f, err := pool.Get(pid)
	if err != nil {
		return fmt.Errorf("fetching page %d: %w", pid, err)
	}
	if !cached {
		// Only this worker fetches this page, so the miss attribution
		// is exact even though the counter check is done in two steps.
		w.met.DataPageFetches++
	}
	if uint64(t.lsn) <= f.Page.LSN() {
		w.met.SkippedPLSN++
		pool.Unpin(f)
		return nil
	}
	err = applyOp(pool, f, t.op, t.lsn)
	pool.Unpin(f)
	if err != nil {
		return err
	}
	w.met.Applied++
	return nil
}

// shardedPool is the page-partitioned worker pool shared by parallel
// redo and parallel undo: route sends a page operation to the worker
// owning its (data shard, page), pause drains a subset of workers for a
// structure modification, finish joins the pool and merges worker
// metrics.
type shardedPool struct {
	workers []*shardWorker
	wg      sync.WaitGroup
	// epoch counts barriers begun (dispatcher-owned observability).
	epoch uint64
}

// newShardedPool starts n workers.
func newShardedPool(n int) *shardedPool {
	p := &shardedPool{workers: make([]*shardWorker, n)}
	for i := range p.workers {
		w := &shardWorker{tasks: make(chan redoTask, 128)}
		p.workers[i] = w
		p.wg.Add(1)
		go w.loop(&p.wg)
	}
	return p
}

// workerIndex maps a (data shard, page) pair to its owning worker. For
// shard 0 — every single-shard engine — it reduces to pid mod n, the
// PR 2 partition; other shards are offset by a Fibonacci-hash stride so
// a cross-shard undo pool spreads shards over all workers.
func workerIndex(id wal.ShardID, pid storage.PageID, n int) int {
	return int((uint64(uint32(pid)) + uint64(id)*2654435761) % uint64(n))
}

// widx maps a task's coordinates to its worker.
func (p *shardedPool) widx(sr *shardRun, pid storage.PageID) int {
	return workerIndex(sr.id, pid, len(p.workers))
}

// route sends op to the worker owning its page, blocking when that
// worker's queue is full (natural backpressure).
func (p *shardedPool) route(sr *shardRun, op wal.DataOp, lsn wal.LSN) {
	p.workers[p.widx(sr, op.PID())].tasks <- redoTask{sr: sr, op: op, lsn: lsn}
}

// pause drains and parks the workers owning pids on data shard sr — or
// every worker when pids is nil (a global barrier; sr is then ignored)
// — and returns a release function plus the number of workers paused.
// The dispatcher may touch the paused partitions' pages until it calls
// release; unaffected workers keep running.
func (p *shardedPool) pause(sr *shardRun, pids []storage.PageID) (release func(), paused int) {
	p.epoch++
	var affected []int
	if pids == nil {
		affected = make([]int, len(p.workers))
		for i := range affected {
			affected[i] = i
		}
	} else {
		seen := make(map[int]bool, len(pids))
		for _, pid := range pids {
			i := p.widx(sr, pid)
			if !seen[i] {
				seen[i] = true
				affected = append(affected, i)
			}
		}
	}
	b := &poolBarrier{arrived: new(sync.WaitGroup), resume: make(chan struct{})}
	b.arrived.Add(len(affected))
	for _, i := range affected {
		p.workers[i].tasks <- redoTask{barrier: b}
	}
	b.arrived.Wait()
	return func() { close(b.resume) }, len(affected)
}

// finish closes the pool, waits for the workers to drain, and returns
// their merged worker-side metrics plus the first worker error.
func (p *shardedPool) finish() (Metrics, error) {
	for _, w := range p.workers {
		close(w.tasks)
	}
	p.wg.Wait()
	var met Metrics
	var err error
	for _, w := range p.workers {
		if err == nil && w.err != nil {
			err = w.err
		}
		met.Applied += w.met.Applied
		met.SkippedPLSN += w.met.SkippedPLSN
		met.DataPageFetches += w.met.DataPageFetches
	}
	return met, err
}

// shardPIDs splits a prefetch list so that list i holds exactly the
// pages worker i will replay (same routing as the dispatcher).
func shardPIDs(id wal.ShardID, src []storage.PageID, n int) [][]storage.PageID {
	out := make([][]storage.PageID, n)
	for _, pid := range src {
		i := workerIndex(id, pid, n)
		out[i] = append(out[i], pid)
	}
	return out
}

// scanItem is one ring entry produced by the scan stage: a screened
// data operation, or an SMO the dispatcher must barrier for.
type scanItem struct {
	op  wal.DataOp
	lsn wal.LSN
	smo *wal.SMORec
}

// parallelRedo is one shard's pipelined page-partitioned redo pass. It
// serves both families: decode and the DPT screen (when present) run in
// the scan stage, application and the pLSN test run in the workers.
// Index preloading is skipped — parallel redo locates pages by PID
// hint, not by index traversal, so the index pages are not on its
// critical path.
func (sr *shardRun) parallelRedo(workers int, src recordSource) error {
	r := sr.r
	pool := newShardedPool(workers)
	if r.m.UsesPrefetch() && sr.table != nil {
		list := sr.pfList
		if !r.m.IsLogical() || r.opt.PrefetchStrategy == PrefetchDPTOrder {
			// SQL2's serial prefetch is log-driven lookahead; the
			// parallel equivalent is the DPT in rLSN order, which
			// approximates first-use order without a second log scan.
			list = dptPrefetchList(sr.table)
		}
		lists := shardPIDs(sr.id, list, workers)
		dpool := sr.d.Pool()
		for i, w := range pool.workers {
			w.pf = newPacer(dpool, sr.table, lists[i], r.opt.MaxOutstanding)
			w.pf.topUp()
		}
	}

	// Scan stage: decode and the DPT/rLSN screen run off the dispatch
	// goroutine, feeding the bounded ring. scanMet and scanErr are
	// published by the ring close (happens-before the dispatcher's
	// range loop ending).
	ring := make(chan scanItem, r.opt.ScanAheadRecords)
	var scanMet Metrics
	var scanErr error
	go func() {
		defer close(ring)
		defer func() { scanMet.LogPagesRead = src.pagesRead() }()
		for {
			rec, lsn, ok, err := src.next()
			if err != nil {
				scanErr = err
				return
			}
			if !ok {
				return
			}
			switch t := rec.(type) {
			case *wal.SMORec:
				if r.m.IsLogical() {
					// Already replayed by dcPass; redo ignores it, like
					// the serial logical pass.
					continue
				}
				ring <- scanItem{smo: t, lsn: lsn}
			case wal.DataOp:
				scanMet.RedoRecords++
				r.clock.Advance(r.opt.PerRecordCPU)
				if sr.table != nil {
					if r.m.IsLogical() && lsn >= sr.lastDeltaTCLSN {
						// Tail of the log: pages dirtied after the last ∆
						// record are unknown to the DPT (§4.3); replay
						// unscreened, as serial basic mode does.
						scanMet.TailRecords++
					} else {
						e := sr.table.Find(t.PID())
						if e == nil {
							scanMet.SkippedDPT++
							continue
						}
						if lsn < e.RLSN {
							scanMet.SkippedRLSN++
							continue
						}
					}
				}
				ring <- scanItem{op: t, lsn: lsn}
			}
		}
	}()

	// Dispatch stage: route survivors to their partition workers;
	// barrier only the workers an SMO touches.
	var dispatchErr error
	for it := range ring {
		if it.smo == nil {
			pool.route(sr, it.op, it.lsn)
			continue
		}
		release, paused := pool.pause(sr, it.smo.AffectedPIDs())
		err := sr.redoSMOPhysiological(it.smo, it.lsn)
		release()
		sr.met.SMOBarriers++
		sr.met.BarrierWorkersPaused += int64(paused)
		if err != nil {
			dispatchErr = err
			break
		}
	}
	if dispatchErr != nil {
		// Unblock the scan stage (it may be parked on a full ring) and
		// drain so the workers can be joined.
		for range ring {
		}
	}
	wmet, werr := pool.finish()

	sr.met.RedoRecords += scanMet.RedoRecords
	sr.met.TailRecords += scanMet.TailRecords
	sr.met.SkippedDPT += scanMet.SkippedDPT
	sr.met.SkippedRLSN += scanMet.SkippedRLSN
	sr.met.LogPagesRead += scanMet.LogPagesRead
	sr.met.Applied += wmet.Applied
	sr.met.SkippedPLSN += wmet.SkippedPLSN
	sr.met.DataPageFetches += wmet.DataPageFetches

	switch {
	case dispatchErr != nil:
		return dispatchErr
	case scanErr != nil:
		return scanErr
	default:
		return werr
	}
}
