package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"logrec/internal/engine"
	"logrec/internal/shard"
	"logrec/internal/storage"
	"logrec/internal/tc"
	"logrec/internal/wal"
)

// ReplayMode selects how a standby applies the shipped record stream.
type ReplayMode int

// Replay modes.
const (
	// ReplaySameGeometry runs the recovery redo machinery continuously:
	// SMO records install the primary's page images, data operations are
	// screened with the pLSN test, and the standby converges to a
	// page-identical copy. It requires the standby to mirror the
	// primary's shard count and page geometry.
	ReplaySameGeometry ReplayMode = iota
	// ReplayLogical re-executes only the logical operations through the
	// standby's own B-trees, routed by key through the standby's own
	// routing table. Physical records (SMO images, ∆/BW, RSSP) are
	// skipped, so the standby may use a different page size or shard
	// count and still converge to the same rows — the paper's §1.1
	// point that the logical log, carrying no PIDs, is the replication
	// contract.
	ReplayLogical
)

func (m ReplayMode) String() string {
	if m == ReplayLogical {
		return "logical"
	}
	return "same-geometry"
}

// ReplayStats is a point-in-time snapshot of a Replayer's progress.
type ReplayStats struct {
	// Records is how many log records the replayer has consumed.
	Records int64
	// Ops is how many of them were data operations.
	Ops int64
	// Applied counts operations that actually modified a page; the
	// remainder were screened out by the pLSN idempotence test.
	Applied int64
	// SMOs counts structure-modification records replayed
	// (same-geometry mode only).
	SMOs int64
	// AppliedLSN is the stable-log position the replayer has fully
	// applied through — the standby's redo-scan start point if it had
	// to restart.
	AppliedLSN wal.LSN
}

// Replayer runs the recovery redo pipeline continuously against a
// standby engine: the incremental counterpart of the one-shot Recover.
// Shipped records land in the standby's log (wal.AppendStable); each
// CatchUp call scans the newly stable suffix, demultiplexes it to
// per-shard apply workers — the same routing Recover's multi-shard
// phase uses — and barriers so that, on return, everything stable is
// applied. Promote turns the standby into a primary: the merged
// backward undo sweep rolls back in-flight losers exactly as crash
// recovery would, then the engine reopens for sessions.
//
// CatchUp, Checkpoint and Promote must be called from one applier
// goroutine; the apply workers they coordinate are internal. Stats may
// be read from anywhere.
type Replayer struct {
	eng  *engine.Engine
	mode ReplayMode
	r    *run

	nextLSN wal.LSN
	chans   []chan replayItem
	workers sync.WaitGroup

	// router mirrors the primary's routing table: committed migrations
	// from the stream are applied as they commit, so Promote can
	// install the routes the primary died with. pendingRoutes holds
	// each in-flight migration's ShardMapRecs until its commit decides
	// them. Same-geometry mode only.
	router        *shard.Router
	pendingRoutes map[wal.TxnID][]*wal.ShardMapRec
	lastEndCkpt   wal.LSN

	records    atomic.Int64
	ops        atomic.Int64
	applied    atomic.Int64
	smos       atomic.Int64
	appliedLSN atomic.Uint64

	mu   sync.Mutex // guards err (set by workers, read by the applier)
	err  error
	done bool
}

// NewReplayer wires a replayer to a standby engine. The engine must be
// in standby mode (engine.Config.Standby): bulk-loaded with the same
// rows as the primary but never opened for sessions, its log fed only
// by shipment. Same-geometry mode additionally requires the standby to
// mirror the primary's shard layout — a record naming a shard the
// standby does not have fails the replay.
func NewReplayer(eng *engine.Engine, mode ReplayMode) (*Replayer, error) {
	n := eng.Cfg.NumShards()
	met := &Metrics{Shards: n, RedoWorkers: 1, UndoWorkers: 1}
	r := &run{
		opt:   DefaultOptions(eng.Cfg),
		clock: eng.Clock,
		log:   eng.Log,
		met:   met,
		txns:  newTxnTable(),
	}
	r.shards = make([]*shardRun, n)
	for i, d := range eng.DCs {
		r.shards[i] = &shardRun{r: r, id: wal.ShardID(i), d: d}
	}
	router, err := shard.NewRouter(shard.DefaultRoutes(n, eng.Cfg.KeySpan))
	if err != nil {
		return nil, fmt.Errorf("core: standby routing table: %w", err)
	}
	rp := &Replayer{
		eng:           eng,
		mode:          mode,
		r:             r,
		nextLSN:       wal.FirstLSN(),
		router:        router,
		pendingRoutes: make(map[wal.TxnID][]*wal.ShardMapRec),
	}
	rp.appliedLSN.Store(uint64(rp.nextLSN))
	if mode == ReplayLogical {
		// Undo compensations route by key through the standby's own
		// table, not the primary's shard stamps.
		r.routeByKey = func(key uint64) (*shardRun, error) {
			return r.shards[eng.Set.Locate(key)], nil
		}
	}
	rp.chans = make([]chan replayItem, n)
	for i := range rp.chans {
		ch := make(chan replayItem, r.opt.ScanAheadRecords)
		rp.chans[i] = ch
		rp.workers.Add(1)
		go rp.applyLoop(r.shards[i], ch)
	}
	return rp, nil
}

// replayItem is one routed record, or a barrier the worker acknowledges
// once every earlier item on its channel has been applied.
type replayItem struct {
	rec     wal.Record
	lsn     wal.LSN
	barrier *sync.WaitGroup
}

// applyLoop is one shard's apply worker. After an error it keeps
// draining (and acknowledging barriers) so CatchUp never deadlocks; the
// sticky error surfaces on the next CatchUp or Promote.
func (rp *Replayer) applyLoop(sr *shardRun, ch <-chan replayItem) {
	defer rp.workers.Done()
	for it := range ch {
		if it.barrier != nil {
			it.barrier.Done()
			continue
		}
		if rp.failed() {
			continue
		}
		if err := rp.applyOne(sr, it.rec, it.lsn); err != nil {
			rp.fail(fmt.Errorf("core: replay at %v on shard %d: %w", it.lsn, sr.id, err))
		}
	}
}

func (rp *Replayer) fail(err error) {
	rp.mu.Lock()
	if rp.err == nil {
		rp.err = err
	}
	rp.mu.Unlock()
}

func (rp *Replayer) failed() bool {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.err != nil
}

func (rp *Replayer) stickyErr() error {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.err
}

// applyOne replays a single shard-routed record in the configured mode.
func (rp *Replayer) applyOne(sr *shardRun, rec wal.Record, lsn wal.LSN) error {
	switch t := rec.(type) {
	case *wal.SMORec:
		if rp.mode != ReplaySameGeometry {
			return nil // physical page images mean nothing off-geometry
		}
		rp.smos.Add(1)
		return sr.replaySMO(t, lsn)
	case wal.DataOp:
		rp.ops.Add(1)
		if rp.mode == ReplayLogical {
			return rp.applyLogical(sr, t, lsn)
		}
		return rp.redoOne(sr, t, lsn)
	default:
		// ∆, BW and RSSP records serve crash recovery of the primary;
		// a continuously-applying standby needs none of them.
		return nil
	}
}

// redoOne is basic logical redo (Algorithm 2) applied continuously: the
// standby re-traverses its B-tree — identical to the primary's in this
// mode — and the pLSN test keeps the apply idempotent, so records
// re-delivered after a standby restart are screened out.
func (rp *Replayer) redoOne(sr *shardRun, op wal.DataOp, lsn wal.LSN) error {
	pool := sr.d.Pool()
	pid, err := sr.d.Tree().FindLeaf(op.Key())
	if err != nil {
		return fmt.Errorf("index search for key %d: %w", op.Key(), err)
	}
	f, err := pool.Get(pid)
	if err != nil {
		return fmt.Errorf("fetching page %d: %w", pid, err)
	}
	if uint64(lsn) <= f.Page.LSN() {
		pool.Unpin(f)
		return nil
	}
	err = applyOp(pool, f, op, lsn)
	pool.Unpin(f)
	if err != nil {
		return err
	}
	rp.applied.Add(1)
	return nil
}

// applyLogical re-executes one logical operation through the standby's
// own tree, stamping the shipped LSN. State-based upsert semantics make
// the apply idempotent without pLSN screening — off-geometry pages
// carry their own LSNs, so a re-delivered operation is absorbed by the
// row state it would recreate, not detected by a page stamp.
func (rp *Replayer) applyLogical(sr *shardRun, op wal.DataOp, lsn wal.LSN) error {
	d := sr.d
	stamp := func(storage.PageID) wal.LSN { return lsn }
	upsert := func(table wal.TableID, key uint64, val []byte) error {
		_, ok, err := d.Read(table, key)
		if err != nil {
			return err
		}
		if ok {
			return d.Update(table, key, val, stamp)
		}
		return d.Insert(table, key, val, stamp)
	}
	remove := func(table wal.TableID, key uint64) error {
		_, ok, err := d.Read(table, key)
		if err != nil || !ok {
			return err
		}
		return d.Delete(table, key, stamp)
	}
	var err error
	switch t := op.(type) {
	case *wal.UpdateRec:
		err = upsert(t.TableID, t.KeyVal, t.NewVal)
	case *wal.InsertRec:
		err = upsert(t.TableID, t.KeyVal, t.Val)
	case *wal.DeleteRec:
		err = remove(t.TableID, t.KeyVal)
	case *wal.CLRRec:
		switch t.Kind {
		case wal.CLRUndoUpdate, wal.CLRUndoDelete:
			err = upsert(t.TableID, t.KeyVal, t.RestoreVal)
		case wal.CLRUndoInsert:
			err = remove(t.TableID, t.KeyVal)
		default:
			err = fmt.Errorf("unknown CLR kind %d", t.Kind)
		}
	default:
		err = fmt.Errorf("unexpected record type %v", op.Type())
	}
	if err != nil {
		return fmt.Errorf("logical replay of %v: %w", op.Type(), err)
	}
	rp.applied.Add(1)
	return nil
}

// CatchUp applies everything stable in the standby log and barriers: on
// return the standby reflects every shipped, validated record. It first
// broadcasts the stable boundary as the EOSL so standby page flushes
// (cleaner pressure, checkpoints) never try to force the shipped log.
func (rp *Replayer) CatchUp() error {
	if err := rp.stickyErr(); err != nil {
		return err
	}
	if rp.done {
		return fmt.Errorf("core: replayer already promoted")
	}
	stable := rp.r.log.FlushedLSN()
	if stable <= rp.nextLSN {
		return nil
	}
	rp.eng.Set.EOSL(stable)

	sc := rp.r.log.NewScanner(rp.nextLSN, rp.r.clock, rp.r.opt.ScanCost)
	for {
		rec, lsn, ok, err := sc.Next()
		if err != nil {
			return fmt.Errorf("core: scanning shipped log at %v: %w", lsn, err)
		}
		if !ok {
			break
		}
		rp.records.Add(1)
		rp.note(rec, lsn)
		sh, sharded := shardOf(rec)
		if !sharded {
			continue
		}
		if rp.mode == ReplayLogical {
			op, isOp := rec.(wal.DataOp)
			if !isOp {
				continue // physical shard records are skipped off-geometry
			}
			sh = rp.eng.Set.Locate(op.Key())
		}
		if int(sh) >= len(rp.chans) {
			return fmt.Errorf("core: record at %v names shard %d, standby has %d", lsn, sh, len(rp.chans))
		}
		rp.chans[sh] <- replayItem{rec: rec, lsn: lsn}
	}
	rp.barrier()
	rp.nextLSN = stable
	rp.appliedLSN.Store(uint64(stable))
	return rp.stickyErr()
}

// barrier blocks until every worker has drained its channel.
func (rp *Replayer) barrier() {
	var wg sync.WaitGroup
	wg.Add(len(rp.chans))
	for _, ch := range rp.chans {
		ch <- replayItem{barrier: &wg}
	}
	wg.Wait()
}

// note is the stream-order bookkeeping: the transaction table feeding
// Promote's undo, route-change tracking, and the master-record shadow.
// Terminated transactions are pruned so a long-lived standby's table
// stays bounded by the in-flight set, not the stream length.
func (rp *Replayer) note(rec wal.Record, lsn wal.LSN) {
	rp.r.txns.note(rec, lsn)
	switch t := rec.(type) {
	case *wal.ShardMapRec:
		rp.pendingRoutes[t.TxnID] = append(rp.pendingRoutes[t.TxnID], t)
	case *wal.CommitRec:
		for _, sm := range rp.pendingRoutes[t.TxnID] {
			rp.applyRoute(sm)
		}
		delete(rp.pendingRoutes, t.TxnID)
		rp.r.txns.prune(t.TxnID)
	case *wal.AbortRec:
		delete(rp.pendingRoutes, t.TxnID)
		rp.r.txns.prune(t.TxnID)
	case *wal.EndCkptRec:
		rp.lastEndCkpt = lsn
	}
}

// applyRoute replays one committed migration's routing change — the
// incremental form of finalRoutes.
func (rp *Replayer) applyRoute(sm *wal.ShardMapRec) {
	start, _, owner := rp.router.RangeOf(sm.SplitAt)
	if start == sm.SplitAt && owner == sm.NewShard {
		return
	}
	rp.router.Split(sm.SplitAt)
	if sm.End != ^uint64(0) {
		rp.router.Split(sm.End + 1)
	}
	if err := rp.router.Reassign(sm.SplitAt, sm.NewShard); err != nil {
		rp.fail(fmt.Errorf("core: replaying route change at %d: %w", sm.SplitAt, err))
		return
	}
	rp.r.appliedRouteChanges++
}

// Checkpoint takes a standby checkpoint: every applied page is flushed
// and each shard's boot page records the applied LSN as its redo-scan
// start point, bounding what a standby restart would have to re-ship.
// Nothing is appended to the log — the standby log must remain a byte
// prefix of the primary's. Call only between CatchUps (workers idle).
func (rp *Replayer) Checkpoint() error {
	if err := rp.stickyErr(); err != nil {
		return err
	}
	for _, sr := range rp.r.shards {
		if err := sr.d.StandbyCheckpoint(rp.nextLSN); err != nil {
			return fmt.Errorf("core: standby checkpoint shard %d: %w", sr.id, err)
		}
	}
	return nil
}

// Promote turns the caught-up standby into a primary. The caller must
// have drained shipment and run a final CatchUp — everything stable on
// the standby log is the promoted state; in-flight losers (transactions
// with no commit in the stream) are rolled back by the same merged
// backward undo sweep crash recovery uses, appending their CLRs and
// aborts to the standby's log, which from here on is the new primary's.
// The engine then reopens for sessions: routing table as the primary
// last committed it, SMO logging and ∆/BW tracking on, a fresh TC
// continuing the transaction-ID space, and an initial checkpoint.
// Returns the run metrics (LosersUndone, CLRsWritten).
func (rp *Replayer) Promote() (*Metrics, error) {
	if rp.done {
		return nil, fmt.Errorf("core: replayer already promoted")
	}
	rp.done = true
	for _, ch := range rp.chans {
		close(ch)
	}
	rp.workers.Wait()
	if err := rp.stickyErr(); err != nil {
		return nil, err
	}
	if stable := rp.r.log.FlushedLSN(); stable != rp.nextLSN {
		return nil, fmt.Errorf("core: promote with unapplied stable log (%v applied, %v stable)", rp.nextLSN, stable)
	}

	if err := rp.r.undo(); err != nil {
		return nil, fmt.Errorf("core: promote undo: %w", err)
	}

	routes := rp.router.Routes()
	if rp.mode == ReplayLogical {
		// Off-geometry standbys keep their own partitioning; the
		// primary's routing history does not apply to them.
		routes = rp.eng.Set.Routes()
	}
	set, err := shard.NewSet(routes, rp.eng.DCs)
	if err != nil {
		return nil, fmt.Errorf("core: promote routing table: %w", err)
	}
	set.StartLogging()
	newTC := tc.New(rp.r.log, set)
	newTC.RestoreMaster(rp.lastEndCkpt)
	newTC.RestoreNextTxnID(rp.r.txns.maxID)
	newTC.SendEOSL()
	rp.eng.BecomePrimary(set, newTC)
	if err := newTC.Checkpoint(); err != nil {
		return nil, fmt.Errorf("core: promote checkpoint: %w", err)
	}
	return rp.r.met, nil
}

// Stats returns a snapshot of the replay counters. Safe to call from
// any goroutine.
func (rp *Replayer) Stats() ReplayStats {
	return ReplayStats{
		Records:    rp.records.Load(),
		Ops:        rp.ops.Load(),
		Applied:    rp.applied.Load(),
		SMOs:       rp.smos.Load(),
		AppliedLSN: wal.LSN(rp.appliedLSN.Load()),
	}
}
