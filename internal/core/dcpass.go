package core

import (
	"fmt"

	"logrec/internal/btree"
	"logrec/internal/dpt"
	"logrec/internal/wal"
)

// dcPass is one shard's DC recovery for the logical family (§4.2): it
// consumes the shard's records from the redo scan start point, replays
// SMO records so the B-tree is well-formed before any logical redo
// re-traverses it (§1.2), and — for the DPT-optimised methods —
// constructs the logical DPT from ∆-log records per Algorithm 4, plus
// the PF-list for Log2's prefetch (Appendix A.2). It takes the place
// of the SQL analysis pass (§5.1). The source delivers exactly this
// shard's SMO/∆/BW records (plus shard-blind traffic on the
// single-shard path, which the type switch ignores).
func (sr *shardRun) dcPass(src recordSource) error {
	if sr.r.m.UsesDPT() {
		sr.table = dpt.New()
	}
	prevDelta := sr.r.scanStart
	sr.lastDeltaTCLSN = sr.r.scanStart

	for {
		rec, lsn, ok, err := src.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		sr.r.clock.Advance(analysisRecordCPU)
		switch t := rec.(type) {
		case *wal.SMORec:
			if err := sr.replaySMO(t, lsn); err != nil {
				return err
			}
		case *wal.DeltaRec:
			sr.met.DeltaSeen++
			if sr.table != nil && t.TCLSN > sr.r.scanStart {
				sr.applyDelta(t, prevDelta)
				prevDelta = t.TCLSN
				sr.lastDeltaTCLSN = t.TCLSN
			}
		case *wal.BWRec:
			// BW records belong to the SQL family; the DC pass ignores
			// them (counted for Figure 2c).
			sr.met.BWSeen++
		}
	}
	sr.met.LogPagesRead += src.pagesRead()
	return nil
}

// applyDelta folds one ∆-log record into the DPT under construction
// (Algorithm 4's DC-DPT-UPDATE) and extends the PF-list.
//
// DirtySet entries before FirstDirty were dirtied before the interval's
// first page flush, so the previous ∆ record's TC-LSN bounds their
// first-dirtying operation from below; entries from FirstDirty onward
// were dirtied after that flush, so the interval's FW-LSN bounds them.
// The WrittenSet then prunes pages flushed after their last recorded
// update.
//
// The perfect variant (Appendix D.1) carries per-entry dirtying LSNs
// and uses them directly, producing the same DPT SQL Server builds. The
// reduced variant (D.2) is encoded by the tracker as FW-LSN = nil and
// FirstDirty = len(DirtySet): every entry takes the previous record's
// TC-LSN, and pruning can only trust flushes to cover updates before
// the previous record.
func (sr *shardRun) applyDelta(t *wal.DeltaRec, prevDelta wal.LSN) {
	perfect := len(t.DirtyLSNs) == len(t.DirtySet) && len(t.DirtySet) > 0
	for i, pid := range t.DirtySet {
		var rlsn wal.LSN
		switch {
		case perfect:
			rlsn = t.DirtyLSNs[i]
		case uint32(i) < t.FirstDirty:
			rlsn = prevDelta
		default:
			rlsn = t.FWLSN
		}
		if sr.table.Find(pid) == nil {
			sr.pfList = append(sr.pfList, pid)
		}
		sr.table.Add(pid, rlsn)
	}
	threshold := t.FWLSN
	if threshold == wal.NilLSN {
		threshold = prevDelta
	}
	// Perfect mode has real lastLSNs, so the inclusive (Algorithm 3)
	// comparison is sound; the standard/reduced sentinel lastLSNs need
	// the strict comparison of Algorithm 4 line 19.
	sr.table.PruneFlushed(t.WrittenSet, threshold, perfect)
}

// replaySMO re-applies one structure-modification record: install each
// page after-image whose target is older than the SMO, and advance the
// tree metadata. Idempotent via the pLSN test, like all redo (§2.2).
func (sr *shardRun) replaySMO(t *wal.SMORec, lsn wal.LSN) error {
	tree := sr.d.Tree()
	// Tree metadata advances monotonically with the allocator cursor;
	// SMOs replayed below a newer boot image must not regress it.
	if t.Meta.NextPID >= tree.Meta().NextPID {
		tree.SetMeta(walMetaToTree(t.Meta))
	}
	pool := sr.d.Pool()
	for _, img := range t.Images {
		missBefore := pool.Stats().Misses
		if pool.Contains(img.PageID) || sr.d.Disk().Exists(img.PageID) {
			f, err := pool.Get(img.PageID)
			if err != nil {
				return fmt.Errorf("SMO image for page %d: %w", img.PageID, err)
			}
			if f.Page.LSN() < uint64(lsn) {
				copy(f.Page.Bytes(), img.Data)
				pool.MarkDirty(f, lsn)
			}
			pool.Unpin(f)
		} else {
			// The page never reached stable storage: materialise it
			// from the image alone.
			f, err := pool.NewPage(img.PageID, 0)
			if err != nil {
				return fmt.Errorf("SMO image for page %d: %w", img.PageID, err)
			}
			copy(f.Page.Bytes(), img.Data)
			pool.MarkDirty(f, lsn)
			pool.Unpin(f)
		}
		sr.met.SMOPageFetches += pool.Stats().Misses - missBefore
	}
	return nil
}

func walMetaToTree(m wal.TreeMeta) btree.Meta {
	return btree.Meta{
		TableID: m.TableID,
		Root:    m.Root,
		Height:  m.Height,
		NextPID: m.NextPID,
	}
}
