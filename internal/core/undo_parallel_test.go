package core

import (
	"math/rand"
	"testing"

	"logrec/internal/engine"
	"logrec/internal/tc"
)

// loserSpec shapes each loser transaction's operations so undo
// exercises every path: same-size updates (routed, non-structural),
// inserts of fresh keys (undo = page delete, non-structural), deletes
// (undo re-inserts and may split — structural), and shrinking updates
// (undo restores a larger value — structural).
type loserSpec struct {
	updates int
	inserts int
	deletes int
	shrinks int
}

// buildCrashWithLosers builds a crash with nLosers long-running
// transactions that never commit. The losers' operations run in two
// rounds — before and midway through the committed traffic — so their
// backchains span checkpoints and the SMOs the committed inserts force
// (splits inside the undo window). Losers touch strided reserved keys
// the committed traffic avoids, mirroring the key-disjointness 2PL
// guarantees.
func buildCrashWithLosers(t *testing.T, cfg engine.Config, nRows, txns, opsPerTxn, nLosers int, spec loserSpec, seed int64) (*engine.CrashState, oracle) {
	t.Helper()
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	om := make(oracle, nRows)
	if err := eng.Load(nRows, func(k uint64) []byte {
		v := val(k, 0)
		om[k] = v
		return v
	}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))

	// Reserved keys: strided across the table so the losers' pages
	// spread (and later get evicted by redo traffic).
	perLoser := spec.updates + spec.deletes + spec.shrinks
	stride := uint64(nRows/(nLosers*perLoser+1)) + 1
	var nextReserved uint64
	reserved := make(map[uint64]bool)
	takeReserved := func() uint64 {
		if nextReserved >= uint64(nRows) {
			t.Fatalf("ran out of reserved keys (stride %d)", stride)
		}
		k := nextReserved
		nextReserved += stride
		reserved[k] = true
		return k
	}

	losers := make([]*tc.Txn, nLosers)
	for i := range losers {
		losers[i] = eng.TC.Begin()
	}
	// nextLoserInsert stays far above the committed inserts' key range.
	nextLoserInsert := uint64(1) << 32
	loserRound := func(updates, inserts, deletes, shrinks int) {
		for _, txn := range losers {
			for u := 0; u < updates; u++ {
				k := takeReserved()
				if err := eng.TC.Update(txn, cfg.TableID, k, val(k, 999)); err != nil {
					t.Fatalf("loser update key %d: %v", k, err)
				}
			}
			for u := 0; u < inserts; u++ {
				k := nextLoserInsert
				nextLoserInsert++
				if err := eng.TC.Insert(txn, cfg.TableID, k, val(k, 999)); err != nil {
					t.Fatalf("loser insert key %d: %v", k, err)
				}
			}
			for u := 0; u < deletes; u++ {
				k := takeReserved()
				if err := eng.TC.Delete(txn, cfg.TableID, k); err != nil {
					t.Fatalf("loser delete key %d: %v", k, err)
				}
			}
			for u := 0; u < shrinks; u++ {
				k := takeReserved()
				if err := eng.TC.Update(txn, cfg.TableID, k, []byte("tiny")); err != nil {
					t.Fatalf("loser shrink key %d: %v", k, err)
				}
			}
		}
	}
	committedRound := func(n int) {
		nextKey := uint64(nRows) + uint64(eng.TC.Stats().Inserts)
		for i := 0; i < n; i++ {
			txn := eng.TC.Begin()
			staged := make(map[uint64][]byte)
			for u := 0; u < opsPerTxn; u++ {
				if rng.Intn(3) == 0 {
					// Inserts at the right edge force leaf splits (SMO
					// records) inside the redo and undo windows.
					k := nextKey
					nextKey++
					v := val(k, i+1)
					if err := eng.TC.Insert(txn, cfg.TableID, k, v); err != nil {
						t.Fatalf("committed insert %d: %v", k, err)
					}
					staged[k] = v
					continue
				}
				k := uint64(rng.Intn(nRows))
				for reserved[k] {
					k = (k + 1) % uint64(nRows)
				}
				v := val(k, i+1)
				if err := eng.TC.Update(txn, cfg.TableID, k, v); err != nil {
					t.Fatalf("committed update %d: %v", k, err)
				}
				staged[k] = v
			}
			if err := eng.TC.Commit(txn); err != nil {
				t.Fatal(err)
			}
			for k, v := range staged {
				om[k] = v
			}
			if (i+1)%25 == 0 {
				if err := eng.TC.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// Round 1: half of each loser's work, then committed traffic (with
	// checkpoints, so the losers ride the active-transaction list), then
	// the rest of the losers' work, then more committed traffic.
	loserRound(spec.updates/2, spec.inserts/2, spec.deletes/2, spec.shrinks/2)
	committedRound(txns / 2)
	loserRound(spec.updates-spec.updates/2, spec.inserts-spec.inserts/2,
		spec.deletes-spec.deletes/2, spec.shrinks-spec.shrinks/2)
	committedRound(txns - txns/2)

	// Force the log so the losers' records survive; they never commit.
	eng.TC.SendEOSL()
	return eng.Crash(), om
}

// TestParallelUndoMatchesSerialOracle recovers the same multi-loser
// crash under every method with serial undo, then with parallel undo at
// several worker counts, and checks byte-identical outcomes: the
// committed state, the loser count, the CLR count, and the exact same
// log end (parallel undo plans CLRs in the serial sweep order, so the
// log sequence must not change).
func TestParallelUndoMatchesSerialOracle(t *testing.T) {
	cfg := testConfig(300)
	spec := loserSpec{updates: 6, inserts: 3, deletes: 2, shrinks: 1}
	cs, om := buildCrashWithLosers(t, cfg, 2000, 120, 8, 4, spec, 17)

	for _, m := range Methods() {
		opt := DefaultOptions(cfg)
		sEng, sMet, err := Recover(cs, m, opt)
		if err != nil {
			t.Fatalf("%v serial: %v", m, err)
		}
		verifyRecovered(t, m, sEng, om)
		if sMet.LosersUndone != 4 {
			t.Fatalf("%v serial: LosersUndone = %d, want 4", m, sMet.LosersUndone)
		}
		serialEnd := sEng.Log.EndLSN()

		for _, uw := range []int{1, 2, 4} {
			popt := opt
			popt.RedoWorkers = 2
			popt.UndoWorkers = uw
			eng, met, err := Recover(cs, m, popt)
			if err != nil {
				t.Fatalf("%v undo workers=%d: %v", m, uw, err)
			}
			verifyRecovered(t, m, eng, om)
			if met.UndoWorkers != uw {
				t.Errorf("%v: UndoWorkers = %d, want %d", m, met.UndoWorkers, uw)
			}
			if met.LosersUndone != sMet.LosersUndone {
				t.Errorf("%v workers=%d: LosersUndone = %d, serial %d",
					m, uw, met.LosersUndone, sMet.LosersUndone)
			}
			if met.CLRsWritten != sMet.CLRsWritten {
				t.Errorf("%v workers=%d: CLRsWritten = %d, serial %d",
					m, uw, met.CLRsWritten, sMet.CLRsWritten)
			}
			// Deletes and shrinking updates must have taken the
			// structural barrier path; everything else is routed and
			// applied by the shard workers.
			if met.UndoBarriers == 0 {
				t.Errorf("%v workers=%d: no structural undo barriers", m, uw)
			}
			if met.UndoApplied+met.UndoBarriers != met.CLRsWritten {
				t.Errorf("%v workers=%d: UndoApplied %d + UndoBarriers %d != CLRsWritten %d",
					m, uw, met.UndoApplied, met.UndoBarriers, met.CLRsWritten)
			}
			if end := eng.Log.EndLSN(); end != serialEnd {
				t.Errorf("%v workers=%d: log end %v, serial undo ended at %v",
					m, uw, end, serialEnd)
			}
		}
	}
}

// TestParallelUndoPageLatchStress hammers the structural-undo page
// latch (run under -race in CI): delete- and shrink-heavy losers force
// many structural compensations — re-inserts that split, growing
// restores — while the remaining workers keep streaming non-structural
// CLR applications concurrently. The latch must park exactly one
// worker per structural step (never the whole pool, which is what the
// old global drain barrier did) and still reproduce the serial
// outcome byte for byte.
func TestParallelUndoPageLatchStress(t *testing.T) {
	cfg := testConfig(300)
	spec := loserSpec{updates: 4, inserts: 2, deletes: 10, shrinks: 6}
	const nLosers = 6
	cs, om := buildCrashWithLosers(t, cfg, 3000, 80, 6, nLosers, spec, 41)

	opt := DefaultOptions(cfg)
	sEng, sMet, err := Recover(cs, Log1, opt)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	verifyRecovered(t, Log1, sEng, om)
	serialEnd := sEng.Log.EndLSN()

	structural := int64(nLosers * (spec.deletes + spec.shrinks))
	for _, uw := range []int{2, 4, 8} {
		popt := opt
		popt.RedoWorkers = 2
		popt.UndoWorkers = uw
		eng, met, err := Recover(cs, Log1, popt)
		if err != nil {
			t.Fatalf("undo workers=%d: %v", uw, err)
		}
		verifyRecovered(t, Log1, eng, om)
		if met.CLRsWritten != sMet.CLRsWritten {
			t.Errorf("workers=%d: CLRsWritten = %d, serial %d", uw, met.CLRsWritten, sMet.CLRsWritten)
		}
		if end := eng.Log.EndLSN(); end != serialEnd {
			t.Errorf("workers=%d: log end %v, serial %v", uw, end, serialEnd)
		}
		if met.UndoBarriers != structural {
			t.Errorf("workers=%d: UndoBarriers = %d, want %d (every delete and shrink undo is structural)",
				uw, met.UndoBarriers, structural)
		}
		// The page-latch contract: one affected leaf, one parked worker
		// per structural step — a global drain would park uw each time.
		if met.BarrierWorkersPaused != met.UndoBarriers {
			t.Errorf("workers=%d: %d workers parked across %d structural steps; the page latch must park exactly one each",
				uw, met.BarrierWorkersPaused, met.UndoBarriers)
		}
	}
}

// TestParallelUndoRealIO exercises parallel undo against wall-clock IO:
// the shard workers overlap their leaf fetches, and the recovered state
// must still match the oracle.
func TestParallelUndoRealIO(t *testing.T) {
	cfg := testConfig(200)
	spec := loserSpec{updates: 12, inserts: 2, deletes: 1}
	cs, om := buildCrashWithLosers(t, cfg, 1500, 60, 8, 4, spec, 23)
	opt := DefaultOptions(cfg)
	opt.RealIOScale = 4000 // 4ms seek → 1µs sleep: fast but real
	for _, uw := range []int{1, 4} {
		popt := opt
		popt.RedoWorkers = 4
		popt.UndoWorkers = uw
		eng, met, err := Recover(cs, Log1, popt)
		if err != nil {
			t.Fatalf("undo workers=%d: %v", uw, err)
		}
		verifyRecovered(t, Log1, eng, om)
		if met.WallUndoTime <= 0 {
			t.Errorf("undo workers=%d: WallUndoTime not measured", uw)
		}
	}
}
