// Package core implements the paper's contribution: crash recovery for
// a logically-logged (TC/DC) engine, optimised to be performance
// competitive with physiological ARIES/SQL-Server recovery, plus that
// physiological recovery itself for the side-by-side comparison — both
// driven by the same log (§5.1).
//
// Five methods reproduce §5.2's experimental matrix:
//
//	Log0 — basic logical redo (Algorithm 2): every redone operation
//	       re-traverses the B-tree and fetches its page.
//	Log1 — logical redo with the DPT built from ∆-log records
//	       (Algorithms 4 and 5), no prefetch.
//	Log2 — Log1 plus index preloading and PF-list page prefetch
//	       (§4.4, Appendix A).
//	SQL1 — physiological redo with the DPT built by the analysis pass
//	       from log-record PIDs and BW records (Algorithms 3 and 1).
//	SQL2 — SQL1 plus log-driven read-ahead prefetch (Appendix A.2).
//
// All methods share the same undo pass (logical, with CLRs), the same
// SMO recovery, and the same log — only redo differs, per §2.1.
//
// The engine may shard its data across N range-partitioned DCs behind
// the one TC (engine.Config.Shards). Recovery then demultiplexes the
// single log by each record's shard ID into per-shard pipelines that
// run concurrently — each shard an independent instance of the same
// prep/redo machinery over its own device, pool and B-tree, with SMO
// barriers naturally shard-local — while undo stays a single merged
// backward sweep whose compensations route to the owning shard. The
// single-DC engine is the N=1 case of this code: one shard, fed
// directly by the log scanner.
package core

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"logrec/internal/dc"
	"logrec/internal/dpt"
	"logrec/internal/engine"
	"logrec/internal/shard"
	"logrec/internal/sim"
	"logrec/internal/storage"
	"logrec/internal/tc"
	"logrec/internal/wal"
)

// Method selects a recovery algorithm.
type Method int

// Recovery methods (§5.2).
const (
	Log0 Method = iota
	Log1
	Log2
	SQL1
	SQL2
)

// Methods lists all five in the paper's presentation order.
func Methods() []Method { return []Method{Log0, Log1, SQL1, Log2, SQL2} }

func (m Method) String() string {
	switch m {
	case Log0:
		return "Log0"
	case Log1:
		return "Log1"
	case Log2:
		return "Log2"
	case SQL1:
		return "SQL1"
	case SQL2:
		return "SQL2"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// IsLogical reports whether m is a logical-recovery variant.
func (m Method) IsLogical() bool { return m == Log0 || m == Log1 || m == Log2 }

// UsesDPT reports whether m optimises its redo test with a DPT.
func (m Method) UsesDPT() bool { return m != Log0 }

// UsesPrefetch reports whether m prefetches data pages.
func (m Method) UsesPrefetch() bool { return m == Log2 || m == SQL2 }

// Options tunes a recovery run.
type Options struct {
	// ScanCost is the log-read IO model.
	ScanCost wal.ScanCost
	// PerRecordCPU is the fixed record-handling cost charged per log
	// record during redo (dispatch, bookkeeping), on top of traversal
	// and apply costs.
	PerRecordCPU sim.Duration
	// MaxOutstanding bounds pages with issued-but-unclaimed prefetch
	// IOs, pacing the prefetchers against the device queue.
	MaxOutstanding int
	// LookaheadRecords is SQL2's log read-ahead window (records).
	LookaheadRecords int
	// IndexPreload loads all internal index pages at the start of DC
	// recovery for Log2, per Appendix A.1.
	IndexPreload bool
	// DCConfig configures the reopened DCs (CPU costs; tracker settings
	// for post-recovery operation).
	DCConfig dc.Config
	// CachePages overrides the recovery buffer budget, divided evenly
	// across shards (0 = same as the crashed engine, the paper's
	// setting).
	CachePages int
	// PrefetchStrategy selects Log2's data-page prefetch source:
	// PF-list (paper's choice) or DPT-rLSN order (Appendix A.2's
	// alternative).
	PrefetchStrategy PrefetchStrategy
	// RedoWorkers ≥ 1 replays each shard's redo pass with that many
	// page-partitioned worker goroutines (see parallel.go); 1 runs the
	// parallel machinery single-shard, the apples-to-apples baseline
	// for worker sweeps. 0 keeps the paper's deterministic serial pass.
	//
	// Recovered *state* is correct in any mode, but virtual-time
	// durations are only meaningful serial: parallel workers interleave
	// their clock charges nondeterministically and model no IO overlap.
	// For timing parallel runs, set RealIOScale and read the Wall*
	// metrics instead. Multi-shard recovery (engine.Config.Shards > 1)
	// is wall-clock-measured for the same reason.
	RedoWorkers int
	// UndoWorkers ≥ 1 runs the undo pass with that many
	// page-partitioned worker goroutines (see undo_parallel.go),
	// sharing the redo pool's machinery; 1 is the single-shard
	// baseline. 0 keeps the serial undo pass. The CLR log sequence is
	// identical in every mode.
	UndoWorkers int
	// ScanAheadRecords bounds the parallel redo pipeline's decode ring
	// and the multi-shard demultiplexer's per-shard channels: how many
	// decoded, screened records the scan stage may run ahead of
	// dispatch (default 512). Serial single-shard passes ignore it.
	ScanAheadRecords int
	// DecodeWorkers is the multi-shard demultiplexer's parallel decode
	// width: the stable log is carved into offset-aligned segments,
	// decoded concurrently by this many wal workers, and re-stitched
	// into exact LSN order before fan-out (see wal.SegScanner). 0 picks
	// min(GOMAXPROCS, 8). The stitched stream — and therefore recovered
	// state, CLR sequence and log end — is byte-identical to the serial
	// scan at every width. Single-shard recovery keeps the inline serial
	// scanner.
	DecodeWorkers int
	// DecodeSegmentBytes overrides the decode segment size (0 = 256
	// KiB). Tests use small segments to force frame-boundary discovery;
	// production logs want the default.
	DecodeSegmentBytes int
	// RealIOScale > 0 runs recovery against wall-clock IO: the forked
	// disk sleeps its modelled latencies divided by this factor instead
	// of advancing the virtual clock, so parallel redo workers overlap
	// real waits and Metrics.WallRedoTime reports genuine speedups. 0
	// keeps the virtual-time simulation.
	RealIOScale int
}

// PrefetchStrategy selects Log2's prefetch source (Appendix A.2).
type PrefetchStrategy int

// Prefetch strategies.
const (
	// PrefetchPFList prefetches the PF-list (DirtySet concatenation in
	// first-update order) — the paper's choice.
	PrefetchPFList PrefetchStrategy = iota
	// PrefetchDPTOrder prefetches DPT entries in ascending rLSN order.
	PrefetchDPTOrder
)

func (s PrefetchStrategy) String() string {
	if s == PrefetchDPTOrder {
		return "dpt-rlsn"
	}
	return "pf-list"
}

// DefaultOptions derives recovery options from an engine config.
func DefaultOptions(cfg engine.Config) Options {
	return Options{
		ScanCost:         cfg.ScanCost,
		PerRecordCPU:     2 * sim.Microsecond,
		MaxOutstanding:   32,
		LookaheadRecords: 256,
		IndexPreload:     true,
		DCConfig:         cfg.DC,
	}
}

// AutoSizeWorkers picks the parallelism that fits a redo window into a
// recovery budget: the estimated serial replay time is windowBytes ÷
// bytesPerSec (the rate the previous recovery measured), and the
// worker count is that estimate divided by the budget, rounded up —
// assuming replay parallelizes roughly linearly at these widths, the
// shape the recovery-shards and recovery-slo benches gate. The result
// is clamped to [1, maxWorkers]; any non-positive input yields 1 (no
// basis to parallelize).
func AutoSizeWorkers(windowBytes int64, bytesPerSec float64, budget time.Duration, maxWorkers int) int {
	if windowBytes <= 0 || bytesPerSec <= 0 || budget <= 0 || maxWorkers < 1 {
		return 1
	}
	estSec := float64(windowBytes) / bytesPerSec
	n := int(math.Ceil(estSec / budget.Seconds()))
	if n < 1 {
		n = 1
	}
	if n > maxWorkers {
		n = maxWorkers
	}
	return n
}

// maxAutoWorkers bounds auto-sized parallelism the same way the decode
// front-end bounds its default width.
func maxAutoWorkers() int {
	if n := runtime.GOMAXPROCS(0); n < 8 {
		return n
	}
	return 8
}

// Metrics reports what a recovery run did and how long (in virtual
// time) each phase took. RedoTotal (prep + redo) is the quantity the
// paper's Figures 2(a) and 3 plot as "redo time"; analysis/DC-pass time
// is included since the paper reports it is under 2% of the total for
// both families (§2.1). Counters aggregate across shards.
type Metrics struct {
	Method Method
	// Shards is how many data components recovered (concurrently when
	// more than one).
	Shards int
	// RedoWorkers is the per-shard redo parallelism (1 = serial).
	RedoWorkers int
	// UndoWorkers is the parallelism the undo pass ran with (1 = serial).
	UndoWorkers int

	PrepTime  sim.Duration // DC recovery (logical) or analysis pass (SQL)
	RedoTime  sim.Duration
	UndoTime  sim.Duration
	RedoTotal sim.Duration // PrepTime + RedoTime ("redo time" in figures)
	TotalTime sim.Duration

	// WallRedoTime, WallUndoTime and WallTotalTime are wall-clock
	// measurements of the same phases — meaningful in real-IO mode
	// (Options.RealIOScale) and in file mode, where virtual durations
	// no longer accumulate, and the only meaningful timings for
	// multi-shard runs.
	WallRedoTime  time.Duration
	WallUndoTime  time.Duration
	WallTotalTime time.Duration

	DPTSize   int
	DeltaSeen int64 // ∆ records seen by the prep pass (Figure 2c)
	BWSeen    int64 // BW records seen by the prep pass (Figure 2c)

	RedoRecords int64 // data-op records in the redo window
	TailRecords int64 // records past the last ∆ record (basic-mode fallback)
	Applied     int64
	SkippedDPT  int64 // bypassed: page not in DPT
	SkippedRLSN int64 // bypassed: LSN below the entry's rLSN
	SkippedPLSN int64 // fetched but page already current

	DataPageFetches  int64
	IndexPageFetches int64
	SMOPageFetches   int64
	LogPagesRead     int64

	// RedoWindowBytes is the stable-log span replayed: log end minus
	// the redo scan start. With the Wall* timings it yields the replay
	// rate (bytes of log per second) that seeds replay-rate-driven
	// checkpointing (engine.Checkpointer).
	RedoWindowBytes int64

	// Decode-stage telemetry for the multi-shard demultiplexer's
	// segmented parallel front-end (zero on single-shard runs, which
	// scan inline). DecodeRecords and DecodeWallTime accumulate across
	// the prep and redo phases; DecodeStall is the stitcher's wait on
	// segment workers (decode starvation, as opposed to back-pressure
	// from slow shards); DecodeResyncs counts segments whose
	// speculative decode was discarded by the continuity check.
	// LogPagesRead stays attributed exactly once — the stitcher charges
	// it; segment workers and per-shard sources never do.
	DecodeWorkers  int
	DecodeSegments int
	DecodeResyncs  int64
	DecodeRecords  int64
	DecodeStall    time.Duration
	DecodeWallTime time.Duration

	Stalls        int64
	StallTime     sim.Duration
	PrefetchIOs   int64
	PrefetchPages int64
	PrefetchHits  int64

	LosersUndone int
	CLRsWritten  int64
	// UndoApplied counts CLR page applications performed by undo shard
	// workers (parallel undo only; structural steps are counted in
	// UndoBarriers instead).
	UndoApplied int64

	// SMOBarriers counts SMO records replayed under a shard-scoped
	// barrier during parallel redo; UndoBarriers counts structural undo
	// steps replayed under a page latch on the affected leaf.
	// BarrierWorkersPaused sums the workers parked across all barriers
	// and latches — page-latched structural undo parks exactly one
	// worker per step, versus the workers × steps a global drain would.
	SMOBarriers          int64
	UndoBarriers         int64
	BarrierWorkersPaused int64

	// RouteChanges counts committed range reassignments replayed into
	// the recovered routing table.
	RouteChanges int
}

// Recover replays the crash state under method m and returns a fully
// recovered, usable engine plus the run's metrics. Each call forks the
// crash state copy-on-write, so multiple methods can recover the same
// crash independently — the paper's controlled side-by-side comparison.
// All of the crashed engine's shards recover concurrently from the one
// log; the recovered routing table is rebuilt from the checkpoint's
// route snapshot plus any committed in-window reassignments.
func Recover(cs *engine.CrashState, m Method, opt Options) (*engine.Engine, *Metrics, error) {
	if opt.ScanCost.PageSize == 0 {
		opt.ScanCost = cs.Cfg.ScanCost
	}
	if opt.PerRecordCPU == 0 {
		opt.PerRecordCPU = 2 * sim.Microsecond
	}
	if opt.MaxOutstanding == 0 {
		opt.MaxOutstanding = 32
	}
	if opt.LookaheadRecords == 0 {
		opt.LookaheadRecords = 256
	}
	if opt.ScanAheadRecords <= 0 {
		opt.ScanAheadRecords = 512
	}
	cache := opt.CachePages
	if cache == 0 {
		cache = cs.Cfg.CachePages
	}

	workers := opt.RedoWorkers
	if workers < 0 {
		workers = 0
	}
	undoWorkers := opt.UndoWorkers
	if undoWorkers < 0 {
		undoWorkers = 0
	}

	clock, disks, log, err := cs.Fork(cache)
	if err != nil {
		return nil, nil, fmt.Errorf("core: forking crash state: %w", err)
	}
	nShards := len(disks)
	perShardCache := cache / nShards
	if perShardCache < 8 {
		perShardCache = 8
	}
	dcs := make([]*dc.DC, nShards)
	for i, disk := range disks {
		if opt.RealIOScale > 0 {
			// Scaled wall-clock sleeps are a simulated-disk feature; a
			// file device's IO is already wall-clock (RealTime reports
			// so).
			if sd, ok := disk.(*storage.Disk); ok {
				sd.SetRealIOScale(opt.RealIOScale)
			}
		}
		d, err := dc.Open(clock, disk, log, perShardCache, wal.ShardID(i), opt.DCConfig)
		if err != nil {
			return nil, nil, fmt.Errorf("core: reopening DC shard %d: %w", i, err)
		}
		dcs[i] = d
	}

	met := &Metrics{
		Method:      m,
		Shards:      nShards,
		RedoWorkers: max(workers, 1),
		UndoWorkers: max(undoWorkers, 1),
	}
	r := &run{
		cs:      cs,
		m:       m,
		opt:     opt,
		workers: workers,
		clock:   clock,
		log:     log,
		met:     met,
		txns:    newTxnTable(),
		routes:  shard.DefaultRoutes(nShards, cs.Cfg.KeySpan),
	}
	r.shards = make([]*shardRun, nShards)
	for i, d := range dcs {
		r.shards[i] = &shardRun{r: r, id: wal.ShardID(i), d: d}
	}

	if err := r.findScanStart(); err != nil {
		return nil, nil, err
	}
	met.RedoWindowBytes = int64(log.FlushedLSN() - r.scanStart)

	// Worker auto-sizing (the recovery-budget tail of budget-mode
	// checkpointing): when the caller left the parallelism unset and the
	// crashed engine carries both a recovery budget and a replay rate
	// measured by its previous recovery, widen redo and decode just
	// enough that the estimated serial replay of this window fits the
	// budget. Engines without a budget keep the deterministic serial
	// default untouched.
	if opt.RedoWorkers == 0 && cs.Cfg.RecoveryBudget > 0 && cs.ReplayRate > 0 {
		if n := AutoSizeWorkers(met.RedoWindowBytes, cs.ReplayRate, cs.Cfg.RecoveryBudget, maxAutoWorkers()); n > 1 {
			workers = n
			r.workers = n
			r.opt.RedoWorkers = n
			met.RedoWorkers = n
			if opt.DecodeWorkers == 0 && nShards > 1 {
				r.opt.DecodeWorkers = n
			}
		}
	}

	// Phase 1: prep — DC recovery (logical) or analysis (SQL), per
	// shard. Route changes replay from this full-window pass.
	w0 := time.Now()
	t0 := clock.Now()
	r.collectRoutes = true
	err = r.runPhase(func(sr *shardRun, src recordSource) error {
		if m.IsLogical() {
			return sr.dcPass(src)
		}
		return sr.sqlAnalysis(src)
	})
	r.collectRoutes = false
	if err != nil {
		return nil, nil, fmt.Errorf("core: %v prep: %w", m, err)
	}
	met.PrepTime = clock.Now().Sub(t0)
	for _, sr := range r.shards {
		if sr.table != nil {
			met.DPTSize += sr.table.Len()
		}
	}

	// Phase 2: redo — serial (the paper's virtual-time experiments) or
	// page-partitioned parallel (parallel.go), per shard.
	w1 := time.Now()
	t1 := clock.Now()
	err = r.runPhase(func(sr *shardRun, src recordSource) error {
		return sr.redo(src)
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: %v redo: %w", m, err)
	}
	met.RedoTime = clock.Now().Sub(t1)
	met.RedoTotal = met.PrepTime + met.RedoTime
	met.WallRedoTime = time.Since(w1)
	// Replay wall time — prep plus redo, the phases that rescan the
	// window a checkpoint would have trimmed — fixes the replay rate
	// that seeds budget-mode checkpointing on the recovered engine.
	replayWall := time.Since(w0)

	// Phase 3: undo of losers (logical in every method, §2.1) — serial,
	// or page-partitioned parallel (undo_parallel.go). One merged
	// backward sweep over all shards; compensations route by each
	// record's shard.
	w2 := time.Now()
	t2 := clock.Now()
	if undoWorkers >= 1 {
		err = r.parallelUndo(undoWorkers)
	} else {
		err = r.undo()
	}
	if err != nil {
		return nil, nil, fmt.Errorf("core: %v undo: %w", m, err)
	}
	met.UndoTime = clock.Now().Sub(t2)
	met.TotalTime = clock.Now().Sub(t0)
	met.WallUndoTime = time.Since(w2)
	met.WallTotalTime = time.Since(w0)

	r.mergeShardMetrics()
	r.captureIOStats()

	routes, err := r.finalRoutes()
	if err != nil {
		return nil, nil, err
	}
	met.RouteChanges = r.appliedRouteChanges

	// Reopen for normal operation: tracking on, SMOs logged, TC wired.
	set, err := shard.NewSet(routes, dcs)
	if err != nil {
		return nil, nil, fmt.Errorf("core: rebuilding routing table: %w", err)
	}
	set.StartLogging()
	newTC := tc.New(log, set)
	newTC.RestoreMaster(cs.LastEndCkpt)
	newTC.RestoreNextTxnID(r.txns.maxID)
	newTC.SendEOSL()

	eng := &engine.Engine{
		Clock: clock,
		Disk:  disks[0], Disks: disks,
		Log: log,
		DC:  dcs[0], DCs: dcs, Set: set,
		TC: newTC, Cfg: cs.Cfg,
	}
	lr := &engine.RecoveryStats{
		Method:        m.String(),
		WallTotal:     met.WallTotalTime,
		ReplayBytes:   met.RedoWindowBytes,
		DecodeRecords: met.DecodeRecords,
		DecodeStall:   met.DecodeStall,
		DecodeWorkers: met.DecodeWorkers,
	}
	if s := replayWall.Seconds(); s > 0 {
		lr.ReplayBytesPerSec = float64(met.RedoWindowBytes) / s
	}
	eng.LastRecovery = lr
	return eng, met, nil
}

// run carries one recovery invocation's cross-shard state.
type run struct {
	cs      *engine.CrashState
	m       Method
	opt     Options
	workers int
	clock   *sim.Clock
	log     *wal.Log
	met     *Metrics
	txns    *txnTable
	shards  []*shardRun

	// scanStart is the penultimate begin-checkpoint LSN — the redo
	// scan start point (§3.2).
	scanStart wal.LSN

	// routeByKey, when set, overrides undo's shard routing: instead of
	// the record's shard stamp, compensations route by key. A
	// logical-mode standby (core.Replayer) sets it — its shard layout
	// need not match the primary's stamps.
	routeByKey func(key uint64) (*shardRun, error)

	// routes is the routing table at the penultimate checkpoint;
	// routeChanges are the in-window ShardMapRecs (applied at the end
	// for committed migrations only). collectRoutes gates collection to
	// the prep pass so the redo pass does not double-collect.
	routes              []wal.RouteEntry
	routeChanges        []*wal.ShardMapRec
	collectRoutes       bool
	appliedRouteChanges int
}

// shardRun is one shard's recovery state: its reopened DC plus the
// per-shard DPT, prefetch list and metrics the prep and redo passes
// build. Each shard's passes run on their own goroutine when the
// engine has more than one shard.
type shardRun struct {
	r  *run
	id wal.ShardID
	d  *dc.DC

	// table is the shard's DPT (nil for Log0).
	table *dpt.Table
	// pfList is Log2's prefetch list: DPT-candidate PIDs in
	// first-update order (Appendix A.2).
	pfList []storage.PageID
	// lastDeltaTCLSN is the TC-LSN of the shard's last ∆ record; redo
	// records at or beyond it are the "tail of the log" handled in
	// basic mode (§4.3).
	lastDeltaTCLSN wal.LSN

	// met is this shard's private counters, merged into the run metrics
	// after the phases complete.
	met Metrics
}

// redo runs the shard's redo pass in the configured mode.
func (sr *shardRun) redo(src recordSource) error {
	switch {
	case sr.r.workers >= 1:
		return sr.parallelRedo(sr.r.workers, src)
	case sr.r.m.IsLogical():
		return sr.logicalRedo(src)
	default:
		return sr.physiologicalRedo(src)
	}
}

// recordSource feeds one shard's pass with its log records. The N=1
// engine reads the log scanner directly; multi-shard recovery consumes
// a per-shard channel fed by the demultiplexer.
type recordSource interface {
	next() (wal.Record, wal.LSN, bool, error)
	pagesRead() int64
}

// scanSource is the direct single-shard source: the log scanner, with
// global bookkeeping (transaction table, route changes) done inline.
type scanSource struct {
	r  *run
	sc *wal.Scanner
}

func (s *scanSource) next() (wal.Record, wal.LSN, bool, error) {
	rec, lsn, ok, err := s.sc.Next()
	if ok {
		s.r.noteGlobal(rec, lsn)
	}
	return rec, lsn, ok, err
}

func (s *scanSource) pagesRead() int64 { return s.sc.PagesRead() }

// demuxItem is one routed record.
type demuxItem struct {
	rec wal.Record
	lsn wal.LSN
}

// chanSource consumes a demultiplexer channel of record batches.
// Log-page accounting is done once by the demultiplexer's stitcher,
// not per shard.
type chanSource struct {
	ch    <-chan []demuxItem
	batch []demuxItem
	i     int
}

func (s *chanSource) next() (wal.Record, wal.LSN, bool, error) {
	for s.i >= len(s.batch) {
		b, ok := <-s.ch
		if !ok {
			return nil, wal.NilLSN, false, nil
		}
		s.batch, s.i = b, 0
	}
	it := s.batch[s.i]
	s.i++
	return it.rec, it.lsn, true, nil
}

func (s *chanSource) pagesRead() int64 { return 0 }

// demuxBatch is the fan-out granularity: routed records travel to the
// per-shard channels in slices of this size, so channel handoff costs
// are paid per batch, not per record.
const demuxBatch = 64

// runPhase executes one recovery phase on every shard. A single-shard
// engine runs the phase inline over the log scanner — execution is
// byte-for-byte the serial path. With N shards the stable log is
// decoded by the segmented parallel front-end (wal.SegScanner); the
// stitcher goroutine performs the global bookkeeping (noteGlobal — so
// txn-table semantics are unchanged from the serial demultiplexer) and
// fans records out to the per-shard bounded channels in batched sends.
// The shards consume concurrently: the demultiplexed per-shard
// pipelines of the scale-out design, no longer bottlenecked on one
// goroutine's decode.
func (r *run) runPhase(phase func(sr *shardRun, src recordSource) error) error {
	if len(r.shards) == 1 {
		// Inline over the log scanner: execution is the serial path,
		// byte for byte (the passes account src.pagesRead themselves).
		sr := r.shards[0]
		src := &scanSource{r: r, sc: r.log.NewScanner(r.scanStart, r.clock, r.opt.ScanCost)}
		return phase(sr, src)
	}

	batchCap := r.opt.ScanAheadRecords / demuxBatch
	if batchCap < 1 {
		batchCap = 1
	}
	chans := make([]chan []demuxItem, len(r.shards))
	results := make(chan error, len(r.shards))
	for i, sr := range r.shards {
		ch := make(chan []demuxItem, batchCap)
		chans[i] = ch
		go func(sr *shardRun, ch chan []demuxItem) {
			err := phase(sr, &chanSource{ch: ch})
			// A shard that stops early (error) must keep draining so the
			// demultiplexer never blocks on its channel.
			for range ch {
			}
			results <- err
		}(sr, ch)
	}

	w0 := time.Now()
	sc := r.log.NewSegScanner(r.scanStart, r.clock, r.opt.ScanCost, wal.SegConfig{
		Workers:      r.opt.DecodeWorkers,
		SegmentBytes: r.opt.DecodeSegmentBytes,
	})
	defer sc.Close()
	pending := make([][]demuxItem, len(r.shards))
	flush := func(sh int) {
		if len(pending[sh]) == 0 {
			return
		}
		chans[sh] <- pending[sh]
		pending[sh] = nil
	}
	var scanErr error
	for {
		rec, lsn, ok, err := sc.Next()
		if err != nil {
			scanErr = err
			break
		}
		if !ok {
			break
		}
		r.noteGlobal(rec, lsn)
		sh, sharded := shardOf(rec)
		if !sharded {
			continue
		}
		if int(sh) >= len(chans) {
			scanErr = fmt.Errorf("core: record at %v names shard %d, engine has %d", lsn, sh, len(chans))
			break
		}
		if pending[sh] == nil {
			pending[sh] = make([]demuxItem, 0, demuxBatch)
		}
		pending[sh] = append(pending[sh], demuxItem{rec: rec, lsn: lsn})
		if len(pending[sh]) >= demuxBatch {
			flush(int(sh))
		}
	}
	for i := range chans {
		// Partial batches routed before a scan error still flush: the
		// serial path would have delivered them before surfacing it.
		flush(i)
		close(chans[i])
	}
	st := sc.Stats()
	r.met.LogPagesRead += sc.PagesRead()
	r.met.DecodeWorkers = st.Workers
	r.met.DecodeSegments += st.Segments
	r.met.DecodeResyncs += int64(st.Resyncs)
	r.met.DecodeRecords += st.Records
	r.met.DecodeStall += st.Stall
	r.met.DecodeWallTime += time.Since(w0)
	var first error
	for range chans {
		if err := <-results; err != nil && first == nil {
			first = err
		}
	}
	if first == nil {
		first = scanErr
	}
	return first
}

// shardOf extracts a record's owning shard, if it has one.
func shardOf(rec wal.Record) (wal.ShardID, bool) {
	if s, ok := rec.(wal.Sharded); ok {
		return s.Shard(), true
	}
	return 0, false
}

// noteGlobal performs the per-record bookkeeping that belongs to the
// whole recovery, not one shard: transaction-table maintenance and
// route-change collection. Called from exactly one goroutine per phase
// (the single-shard consumer, or the demultiplexer).
func (r *run) noteGlobal(rec wal.Record, lsn wal.LSN) {
	r.txns.note(rec, lsn)
	if r.collectRoutes {
		if sm, ok := rec.(*wal.ShardMapRec); ok {
			r.routeChanges = append(r.routeChanges, sm)
		}
	}
}

// findScanStart resolves the master record to the redo scan start and
// seeds the transaction table and routing snapshot from the
// end-checkpoint record.
func (r *run) findScanStart() error {
	if r.cs.LastEndCkpt == wal.NilLSN {
		// Never checkpointed: scan the whole log.
		r.scanStart = wal.FirstLSN()
		return nil
	}
	rec, err := r.log.Get(r.cs.LastEndCkpt)
	if err != nil {
		return fmt.Errorf("core: reading master checkpoint record: %w", err)
	}
	end, ok := rec.(*wal.EndCkptRec)
	if !ok {
		return fmt.Errorf("core: master record points at %v, want end-ckpt", rec.Type())
	}
	r.scanStart = end.BeginLSN
	r.txns.seed(end.Active)
	if len(end.Routes) > 0 {
		r.routes = end.Routes
	}
	return nil
}

// finalRoutes rebuilds the routing table the crash had: the checkpoint
// snapshot plus every in-window reassignment whose migration
// transaction committed (a loser migration's rows were undone back, so
// its routing change must not survive).
func (r *run) finalRoutes() ([]wal.RouteEntry, error) {
	router, err := shard.NewRouter(r.routes)
	if err != nil {
		return nil, fmt.Errorf("core: checkpointed routing table: %w", err)
	}
	for _, sm := range r.routeChanges {
		if !r.txns.committed(sm.TxnID) {
			continue
		}
		// A change already reflected in the checkpoint's route snapshot
		// (migration committed before the end-checkpoint record) is a
		// no-op here and is not counted as replayed.
		start, _, owner := router.RangeOf(sm.SplitAt)
		if start == sm.SplitAt && owner == sm.NewShard {
			continue
		}
		// Reassign exactly [SplitAt, End] — the rows the migration moved.
		// The live range's end boundary may have come from an unlogged
		// boundary-only split, so it is cut here rather than inferred
		// from the boundaries recovery happens to know about.
		router.Split(sm.SplitAt)
		if sm.End != ^uint64(0) {
			router.Split(sm.End + 1)
		}
		if err := router.Reassign(sm.SplitAt, sm.NewShard); err != nil {
			return nil, fmt.Errorf("core: replaying route change at %d: %w", sm.SplitAt, err)
		}
		r.appliedRouteChanges++
	}
	return router.Routes(), nil
}

// mergeShardMetrics folds the per-shard counters into the run metrics.
func (r *run) mergeShardMetrics() {
	for _, sr := range r.shards {
		m := &sr.met
		r.met.DeltaSeen += m.DeltaSeen
		r.met.BWSeen += m.BWSeen
		r.met.RedoRecords += m.RedoRecords
		r.met.TailRecords += m.TailRecords
		r.met.Applied += m.Applied
		r.met.SkippedDPT += m.SkippedDPT
		r.met.SkippedRLSN += m.SkippedRLSN
		r.met.SkippedPLSN += m.SkippedPLSN
		r.met.DataPageFetches += m.DataPageFetches
		r.met.IndexPageFetches += m.IndexPageFetches
		r.met.SMOPageFetches += m.SMOPageFetches
		r.met.LogPagesRead += m.LogPagesRead
		r.met.SMOBarriers += m.SMOBarriers
		r.met.BarrierWorkersPaused += m.BarrierWorkersPaused
	}
}

// captureIOStats folds every shard device's counters into the metrics.
func (r *run) captureIOStats() {
	for _, sr := range r.shards {
		ds := sr.d.Disk().Stats()
		r.met.Stalls += ds.Stalls
		r.met.StallTime += ds.StallTime
		r.met.PrefetchIOs += ds.PrefetchIOs
		r.met.PrefetchPages += ds.PrefetchPages
		r.met.PrefetchHits += ds.PrefetchHits
	}
}
