// Package core implements the paper's contribution: crash recovery for
// a logically-logged (TC/DC) engine, optimised to be performance
// competitive with physiological ARIES/SQL-Server recovery, plus that
// physiological recovery itself for the side-by-side comparison — both
// driven by the same log (§5.1).
//
// Five methods reproduce §5.2's experimental matrix:
//
//	Log0 — basic logical redo (Algorithm 2): every redone operation
//	       re-traverses the B-tree and fetches its page.
//	Log1 — logical redo with the DPT built from ∆-log records
//	       (Algorithms 4 and 5), no prefetch.
//	Log2 — Log1 plus index preloading and PF-list page prefetch
//	       (§4.4, Appendix A).
//	SQL1 — physiological redo with the DPT built by the analysis pass
//	       from log-record PIDs and BW records (Algorithms 3 and 1).
//	SQL2 — SQL1 plus log-driven read-ahead prefetch (Appendix A.2).
//
// All methods share the same undo pass (logical, with CLRs), the same
// SMO recovery, and the same log — only redo differs, per §2.1.
package core

import (
	"fmt"
	"time"

	"logrec/internal/dc"
	"logrec/internal/dpt"
	"logrec/internal/engine"
	"logrec/internal/sim"
	"logrec/internal/storage"
	"logrec/internal/tc"
	"logrec/internal/wal"
)

// Method selects a recovery algorithm.
type Method int

// Recovery methods (§5.2).
const (
	Log0 Method = iota
	Log1
	Log2
	SQL1
	SQL2
)

// Methods lists all five in the paper's presentation order.
func Methods() []Method { return []Method{Log0, Log1, SQL1, Log2, SQL2} }

func (m Method) String() string {
	switch m {
	case Log0:
		return "Log0"
	case Log1:
		return "Log1"
	case Log2:
		return "Log2"
	case SQL1:
		return "SQL1"
	case SQL2:
		return "SQL2"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// IsLogical reports whether m is a logical-recovery variant.
func (m Method) IsLogical() bool { return m == Log0 || m == Log1 || m == Log2 }

// UsesDPT reports whether m optimises its redo test with a DPT.
func (m Method) UsesDPT() bool { return m != Log0 }

// UsesPrefetch reports whether m prefetches data pages.
func (m Method) UsesPrefetch() bool { return m == Log2 || m == SQL2 }

// Options tunes a recovery run.
type Options struct {
	// ScanCost is the log-read IO model.
	ScanCost wal.ScanCost
	// PerRecordCPU is the fixed record-handling cost charged per log
	// record during redo (dispatch, bookkeeping), on top of traversal
	// and apply costs.
	PerRecordCPU sim.Duration
	// MaxOutstanding bounds pages with issued-but-unclaimed prefetch
	// IOs, pacing the prefetchers against the device queue.
	MaxOutstanding int
	// LookaheadRecords is SQL2's log read-ahead window (records).
	LookaheadRecords int
	// IndexPreload loads all internal index pages at the start of DC
	// recovery for Log2, per Appendix A.1.
	IndexPreload bool
	// DCConfig configures the reopened DC (CPU costs; tracker settings
	// for post-recovery operation).
	DCConfig dc.Config
	// CachePages overrides the recovery buffer pool capacity
	// (0 = same as the crashed engine, the paper's setting).
	CachePages int
	// PrefetchStrategy selects Log2's data-page prefetch source:
	// PF-list (paper's choice) or DPT-rLSN order (Appendix A.2's
	// alternative).
	PrefetchStrategy PrefetchStrategy
	// RedoWorkers ≥ 1 replays the redo pass with that many
	// page-partitioned worker goroutines (see parallel.go); 1 runs the
	// parallel machinery single-shard, the apples-to-apples baseline
	// for worker sweeps. 0 keeps the paper's deterministic serial pass.
	//
	// Recovered *state* is correct in any mode, but virtual-time
	// durations are only meaningful serial: parallel workers interleave
	// their clock charges nondeterministically and model no IO overlap.
	// For timing parallel runs, set RealIOScale and read the Wall*
	// metrics instead.
	RedoWorkers int
	// UndoWorkers ≥ 1 runs the undo pass with that many
	// page-partitioned worker goroutines (see undo_parallel.go),
	// sharing the redo pool's machinery; 1 is the single-shard
	// baseline. 0 keeps the serial undo pass. The CLR log sequence is
	// identical in every mode.
	UndoWorkers int
	// ScanAheadRecords bounds the parallel redo pipeline's decode ring:
	// how many decoded, DPT-screened records the scan stage may run
	// ahead of dispatch (default 512). Serial passes ignore it.
	ScanAheadRecords int
	// RealIOScale > 0 runs recovery against wall-clock IO: the forked
	// disk sleeps its modelled latencies divided by this factor instead
	// of advancing the virtual clock, so parallel redo workers overlap
	// real waits and Metrics.WallRedoTime reports genuine speedups. 0
	// keeps the virtual-time simulation.
	RealIOScale int
}

// PrefetchStrategy selects Log2's prefetch source (Appendix A.2).
type PrefetchStrategy int

// Prefetch strategies.
const (
	// PrefetchPFList prefetches the PF-list (DirtySet concatenation in
	// first-update order) — the paper's choice.
	PrefetchPFList PrefetchStrategy = iota
	// PrefetchDPTOrder prefetches DPT entries in ascending rLSN order.
	PrefetchDPTOrder
)

func (s PrefetchStrategy) String() string {
	if s == PrefetchDPTOrder {
		return "dpt-rlsn"
	}
	return "pf-list"
}

// DefaultOptions derives recovery options from an engine config.
func DefaultOptions(cfg engine.Config) Options {
	return Options{
		ScanCost:         cfg.ScanCost,
		PerRecordCPU:     2 * sim.Microsecond,
		MaxOutstanding:   32,
		LookaheadRecords: 256,
		IndexPreload:     true,
		DCConfig:         cfg.DC,
	}
}

// Metrics reports what a recovery run did and how long (in virtual
// time) each phase took. RedoTotal (prep + redo) is the quantity the
// paper's Figures 2(a) and 3 plot as "redo time"; analysis/DC-pass time
// is included since the paper reports it is under 2% of the total for
// both families (§2.1).
type Metrics struct {
	Method Method
	// RedoWorkers is the parallelism the redo pass ran with (1 = serial).
	RedoWorkers int
	// UndoWorkers is the parallelism the undo pass ran with (1 = serial).
	UndoWorkers int

	PrepTime  sim.Duration // DC recovery (logical) or analysis pass (SQL)
	RedoTime  sim.Duration
	UndoTime  sim.Duration
	RedoTotal sim.Duration // PrepTime + RedoTime ("redo time" in figures)
	TotalTime sim.Duration

	// WallRedoTime, WallUndoTime and WallTotalTime are wall-clock
	// measurements of the same phases — meaningful in real-IO mode
	// (Options.RealIOScale), where virtual durations no longer
	// accumulate.
	WallRedoTime  time.Duration
	WallUndoTime  time.Duration
	WallTotalTime time.Duration

	DPTSize   int
	DeltaSeen int64 // ∆ records seen by the prep pass (Figure 2c)
	BWSeen    int64 // BW records seen by the prep pass (Figure 2c)

	RedoRecords int64 // data-op records in the redo window
	TailRecords int64 // records past the last ∆ record (basic-mode fallback)
	Applied     int64
	SkippedDPT  int64 // bypassed: page not in DPT
	SkippedRLSN int64 // bypassed: LSN below the entry's rLSN
	SkippedPLSN int64 // fetched but page already current

	DataPageFetches  int64
	IndexPageFetches int64
	SMOPageFetches   int64
	LogPagesRead     int64

	Stalls        int64
	StallTime     sim.Duration
	PrefetchIOs   int64
	PrefetchPages int64
	PrefetchHits  int64

	LosersUndone int
	CLRsWritten  int64
	// UndoApplied counts CLR page applications performed by undo shard
	// workers (parallel undo only; structural steps are counted in
	// UndoBarriers instead).
	UndoApplied int64

	// SMOBarriers counts SMO records replayed under a shard-scoped
	// barrier during parallel redo; UndoBarriers counts structural undo
	// steps replayed under a global barrier. BarrierWorkersPaused sums
	// the workers parked across all barriers — with shard scoping it
	// stays below barriers × workers, the global-pause worst case.
	SMOBarriers          int64
	UndoBarriers         int64
	BarrierWorkersPaused int64
}

// Recover replays the crash state under method m and returns a fully
// recovered, usable engine plus the run's metrics. Each call forks the
// crash state copy-on-write, so multiple methods can recover the same
// crash independently — the paper's controlled side-by-side comparison.
func Recover(cs *engine.CrashState, m Method, opt Options) (*engine.Engine, *Metrics, error) {
	if opt.ScanCost.PageSize == 0 {
		opt.ScanCost = cs.Cfg.ScanCost
	}
	if opt.PerRecordCPU == 0 {
		opt.PerRecordCPU = 2 * sim.Microsecond
	}
	if opt.MaxOutstanding == 0 {
		opt.MaxOutstanding = 32
	}
	if opt.LookaheadRecords == 0 {
		opt.LookaheadRecords = 256
	}
	if opt.ScanAheadRecords <= 0 {
		opt.ScanAheadRecords = 512
	}
	cache := opt.CachePages
	if cache == 0 {
		cache = cs.Cfg.CachePages
	}

	workers := opt.RedoWorkers
	if workers < 0 {
		workers = 0
	}
	undoWorkers := opt.UndoWorkers
	if undoWorkers < 0 {
		undoWorkers = 0
	}

	clock, disk, log, err := cs.Fork(cache)
	if err != nil {
		return nil, nil, fmt.Errorf("core: forking crash state: %w", err)
	}
	if opt.RealIOScale > 0 {
		// Scaled wall-clock sleeps are a simulated-disk feature; a file
		// device's IO is already wall-clock (RealTime reports so).
		if sd, ok := disk.(*storage.Disk); ok {
			sd.SetRealIOScale(opt.RealIOScale)
		}
	}
	d, err := dc.Open(clock, disk, log, cache, opt.DCConfig)
	if err != nil {
		return nil, nil, fmt.Errorf("core: reopening DC: %w", err)
	}

	met := &Metrics{Method: m, RedoWorkers: max(workers, 1), UndoWorkers: max(undoWorkers, 1)}
	r := &run{cs: cs, m: m, opt: opt, clock: clock, d: d, log: log, met: met, txns: newTxnTable()}

	if err := r.findScanStart(); err != nil {
		return nil, nil, err
	}

	// Phase 1: prep — DC recovery (logical) or analysis (SQL).
	w0 := time.Now()
	t0 := clock.Now()
	if m.IsLogical() {
		if err := r.dcPass(); err != nil {
			return nil, nil, fmt.Errorf("core: %v DC recovery: %w", m, err)
		}
	} else {
		if err := r.sqlAnalysis(); err != nil {
			return nil, nil, fmt.Errorf("core: %v analysis: %w", m, err)
		}
	}
	met.PrepTime = clock.Now().Sub(t0)
	if r.table != nil {
		met.DPTSize = r.table.Len()
	}

	// Phase 2: redo — serial (the paper's virtual-time experiments) or
	// page-partitioned parallel (parallel.go).
	w1 := time.Now()
	t1 := clock.Now()
	switch {
	case workers >= 1:
		err = r.parallelRedo(workers)
	case m.IsLogical():
		err = r.logicalRedo()
	default:
		err = r.physiologicalRedo()
	}
	if err != nil {
		return nil, nil, fmt.Errorf("core: %v redo: %w", m, err)
	}
	met.RedoTime = clock.Now().Sub(t1)
	met.RedoTotal = met.PrepTime + met.RedoTime
	met.WallRedoTime = time.Since(w1)

	// Phase 3: undo of losers (logical in every method, §2.1) — serial,
	// or page-partitioned parallel (undo_parallel.go).
	w2 := time.Now()
	t2 := clock.Now()
	if undoWorkers >= 1 {
		err = r.parallelUndo(undoWorkers)
	} else {
		err = r.undo()
	}
	if err != nil {
		return nil, nil, fmt.Errorf("core: %v undo: %w", m, err)
	}
	met.UndoTime = clock.Now().Sub(t2)
	met.TotalTime = clock.Now().Sub(t0)
	met.WallUndoTime = time.Since(w2)
	met.WallTotalTime = time.Since(w0)

	r.captureIOStats()

	// Reopen for normal operation: tracking on, SMOs logged, TC wired.
	d.StartLogging()
	newTC := tc.New(log, d)
	newTC.RestoreMaster(cs.LastEndCkpt)
	newTC.RestoreNextTxnID(r.txns.maxID)
	newTC.SendEOSL()

	eng := &engine.Engine{Clock: clock, Disk: disk, Log: log, DC: d, TC: newTC, Cfg: cs.Cfg}
	return eng, met, nil
}

// run carries one recovery invocation's state across phases.
type run struct {
	cs    *engine.CrashState
	m     Method
	opt   Options
	clock *sim.Clock
	d     *dc.DC
	log   *wal.Log
	met   *Metrics
	txns  *txnTable

	// scanStart is the penultimate begin-checkpoint LSN — the redo
	// scan start point (§3.2).
	scanStart wal.LSN
	// table is the DPT (nil for Log0).
	table *dpt.Table
	// pfList is Log2's prefetch list: DPT-candidate PIDs in
	// first-update order (Appendix A.2).
	pfList []storage.PageID
	// lastDeltaTCLSN is the TC-LSN of the last ∆ record; redo records
	// at or beyond it are the "tail of the log" handled in basic mode
	// (§4.3).
	lastDeltaTCLSN wal.LSN
}

// findScanStart resolves the master record to the redo scan start.
func (r *run) findScanStart() error {
	if r.cs.LastEndCkpt == wal.NilLSN {
		// Never checkpointed: scan the whole log.
		r.scanStart = wal.FirstLSN()
		return nil
	}
	rec, err := r.log.Get(r.cs.LastEndCkpt)
	if err != nil {
		return fmt.Errorf("core: reading master checkpoint record: %w", err)
	}
	end, ok := rec.(*wal.EndCkptRec)
	if !ok {
		return fmt.Errorf("core: master record points at %v, want end-ckpt", rec.Type())
	}
	r.scanStart = end.BeginLSN
	r.txns.seed(end.Active)
	return nil
}

// captureIOStats folds disk/pool counters into the metrics.
func (r *run) captureIOStats() {
	ds := r.d.Disk().Stats()
	r.met.Stalls = ds.Stalls
	r.met.StallTime = ds.StallTime
	r.met.PrefetchIOs = ds.PrefetchIOs
	r.met.PrefetchPages = ds.PrefetchPages
	r.met.PrefetchHits = ds.PrefetchHits
}
