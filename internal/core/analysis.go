package core

import (
	"logrec/internal/dpt"
	"logrec/internal/sim"
	"logrec/internal/wal"
)

// analysisRecordCPU is the per-record bookkeeping cost of an analysis
// scan — pure in-memory work, tiny next to IO (the paper measures the
// analysis pass at under 2% of recovery time, §2.1).
const analysisRecordCPU = 300 * sim.Nanosecond

// sqlAnalysis is one shard's SQL Server analysis pass (Algorithm 3):
// starting at the penultimate begin-checkpoint, it builds the shard's
// DPT from the PIDs in its update log records (every data operation and
// SMO page image) and prunes it with its BW records. No data pages are
// read; transaction-table reconstruction is global and handled by the
// record source / demultiplexer.
func (sr *shardRun) sqlAnalysis(src recordSource) error {
	sr.table = dpt.New()
	for {
		rec, lsn, ok, err := src.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		sr.r.clock.Advance(analysisRecordCPU)
		switch t := rec.(type) {
		case wal.DataOp:
			// First mention fixes rLSN; later mentions advance lastLSN
			// (Algorithm 3 lines 5-10).
			sr.table.Add(t.PID(), lsn)
		case *wal.SMORec:
			// SQL Server logs SMOs as system-transaction page updates;
			// their pages enter the DPT like any update (§2.1).
			for _, img := range t.Images {
				sr.table.Add(img.PageID, lsn)
			}
		case *wal.BWRec:
			sr.met.BWSeen++
			// Algorithm 3 lines 11-18: remove entries whose last
			// update preceded the flush (lastLSN ≤ FW-LSN), raise the
			// rLSN of survivors.
			sr.table.PruneFlushed(t.WrittenSet, t.FWLSN, true)
		case *wal.DeltaRec:
			// Present on the shared log for the logical family; the
			// SQL analysis pass ignores them (counted for Figure 2c).
			sr.met.DeltaSeen++
		}
	}
	sr.met.LogPagesRead += src.pagesRead()
	return nil
}
