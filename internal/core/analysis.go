package core

import (
	"logrec/internal/dpt"
	"logrec/internal/sim"
	"logrec/internal/wal"
)

// analysisRecordCPU is the per-record bookkeeping cost of an analysis
// scan — pure in-memory work, tiny next to IO (the paper measures the
// analysis pass at under 2% of recovery time, §2.1).
const analysisRecordCPU = 300 * sim.Nanosecond

// sqlAnalysis is SQL Server's analysis pass (Algorithm 3): starting at
// the penultimate begin-checkpoint, it builds the DPT from the PIDs in
// update log records (every data operation and SMO page image) and
// prunes it with BW records, while reconstructing the transaction
// table. No data pages are read.
func (r *run) sqlAnalysis() error {
	r.table = dpt.New()
	sc := r.log.NewScanner(r.scanStart, r.clock, r.opt.ScanCost)
	for {
		rec, lsn, ok, err := sc.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		r.clock.Advance(analysisRecordCPU)
		r.txns.note(rec, lsn)
		switch t := rec.(type) {
		case wal.DataOp:
			// First mention fixes rLSN; later mentions advance lastLSN
			// (Algorithm 3 lines 5-10).
			r.table.Add(t.PID(), lsn)
		case *wal.SMORec:
			// SQL Server logs SMOs as system-transaction page updates;
			// their pages enter the DPT like any update (§2.1).
			for _, img := range t.Images {
				r.table.Add(img.PageID, lsn)
			}
		case *wal.BWRec:
			r.met.BWSeen++
			// Algorithm 3 lines 11-18: remove entries whose last
			// update preceded the flush (lastLSN ≤ FW-LSN), raise the
			// rLSN of survivors.
			r.table.PruneFlushed(t.WrittenSet, t.FWLSN, true)
		case *wal.DeltaRec:
			// Present on the shared log for the logical family; the
			// SQL analysis pass ignores them (counted for Figure 2c).
			r.met.DeltaSeen++
		}
	}
	r.met.LogPagesRead += sc.PagesRead()
	return nil
}
