package core

import (
	"logrec/internal/buffer"
	"logrec/internal/dpt"
	"logrec/internal/storage"
	"logrec/internal/wal"
)

// pacer drives Log2's data-page prefetch (§4.4, Appendix A.2): it walks
// a precomputed PID list (the PF-list, or the DPT in rLSN order for the
// ablation) and keeps a bounded number of read IOs outstanding, issuing
// more as redo consumes pages. Pacing against both the pool's free
// frames (inside Pool.Prefetch) and the device's in-flight count avoids
// the paper's two failure modes: prefetching too fast flushes pages
// before redo reaches them; too slow leaves redo stalling.
type pacer struct {
	pool   *buffer.Pool
	table  *dpt.Table
	list   []storage.PageID
	idx    int
	maxOut int
	issued map[storage.PageID]struct{}
}

func newPacer(pool *buffer.Pool, table *dpt.Table, list []storage.PageID, maxOut int) *pacer {
	return &pacer{
		pool:   pool,
		table:  table,
		maxOut: maxOut,
		list:   list,
		issued: make(map[storage.PageID]struct{}, len(list)),
	}
}

// topUp issues prefetch until the device has maxOut pages in flight,
// the pool is out of room, or the list is exhausted. Entries are
// screened the way the redo test will screen their records: pages
// pruned from the final DPT are never requested by redo, so issuing
// them would be wasted IO. A page dirtied-flushed-redirtied appears in
// several DirtySets and hence several times in the PF-list; the issued
// set dedupes it.
func (p *pacer) topUp() {
	for p.idx < len(p.list) {
		pid := p.list[p.idx]
		if _, dup := p.issued[pid]; dup ||
			(p.table != nil && p.table.Find(pid) == nil) {
			p.idx++
			continue
		}
		if p.pool.Disk().InflightCount() >= p.maxOut {
			return
		}
		// consumed == 0 is genuine back-pressure (no free frame);
		// consumed == 1 with issued == 0 means the page is already
		// cached — progress without IO, keep walking the list.
		if consumed, _ := p.pool.Prefetch([]storage.PageID{pid}); consumed == 0 {
			return // pool out of free frames
		}
		p.issued[pid] = struct{}{}
		p.idx++
	}
}

// dptPrefetchList materialises the DPT in ascending-rLSN order for the
// PrefetchDPTOrder ablation (Appendix A.2's alternative strategy).
func dptPrefetchList(table *dpt.Table) []storage.PageID {
	entries := table.EntriesByRLSN()
	out := make([]storage.PageID, len(entries))
	for i, e := range entries {
		out[i] = e.PID
	}
	return out
}

// lookahead implements SQL2's log-driven read-ahead (Appendix A.2): it
// decodes records ahead of the redo cursor, and for each upcoming
// record whose PID passes the DPT screen (present, and the record's LSN
// is not below the entry's rLSN) issues a prefetch. Log pages for the
// read-ahead are charged when read, just as SQL Server's read-ahead
// reads log pages early.
type lookahead struct {
	src    recordSource
	pool   *buffer.Pool
	table  *dpt.Table
	window int
	maxOut int

	buf []laEntry
	// pending holds DPT-screened candidate PIDs awaiting issue.
	pending []storage.PageID
	eof     bool
}

type laEntry struct {
	rec wal.Record
	lsn wal.LSN
}

func newLookahead(src recordSource, pool *buffer.Pool, table *dpt.Table, window, maxOut int) *lookahead {
	return &lookahead{src: src, pool: pool, table: table, window: window, maxOut: maxOut}
}

// next returns the next record, keeping the read-ahead window full and
// the prefetch queue topped up.
func (la *lookahead) next() (wal.Record, wal.LSN, bool, error) {
	if err := la.fill(); err != nil {
		return nil, wal.NilLSN, false, err
	}
	if len(la.buf) == 0 {
		return nil, wal.NilLSN, false, nil
	}
	e := la.buf[0]
	la.buf = la.buf[1:]
	la.issue()
	return e.rec, e.lsn, true, nil
}

func (la *lookahead) fill() error {
	for !la.eof && len(la.buf) < la.window {
		rec, lsn, ok, err := la.src.next()
		if err != nil {
			return err
		}
		if !ok {
			la.eof = true
			break
		}
		la.buf = append(la.buf, laEntry{rec, lsn})
		// Screen candidates exactly as the redo test will (log-driven
		// prefetch, Appendix A.2): in the DPT and not below its rLSN.
		if op, isOp := rec.(wal.DataOp); isOp {
			if e := la.table.Find(op.PID()); e != nil && lsn >= e.RLSN {
				la.pending = append(la.pending, op.PID())
			}
		}
	}
	la.issue()
	return nil
}

func (la *lookahead) issue() {
	for len(la.pending) > 0 {
		inFlight := la.pool.Disk().InflightCount()
		if inFlight >= la.maxOut {
			return
		}
		chunk := la.maxOut - inFlight
		if chunk > len(la.pending) {
			chunk = len(la.pending)
		}
		consumed, _ := la.pool.Prefetch(la.pending[:chunk])
		la.pending = la.pending[consumed:]
		if consumed < chunk {
			return
		}
	}
}

// preloadIndex loads every internal index page of one shard's tree
// into its cache at the start of DC recovery (Appendix A.1): logical
// redo needs them for every operation, so paying for them up front —
// level by level, with each level prefetched as a batch — removes
// per-operation index stalls.
func (sr *shardRun) preloadIndex() error {
	tree := sr.d.Tree()
	pool := sr.d.Pool()
	if tree.Meta().Height <= 1 {
		return nil
	}
	missBefore := pool.Stats().Misses
	frontier := []storage.PageID{tree.Meta().Root}
	for level := tree.Meta().Height; level > 1; level-- {
		pool.Prefetch(frontier)
		var next []storage.PageID
		for _, pid := range frontier {
			f, err := pool.Get(pid)
			if err != nil {
				return err
			}
			if level > 2 {
				next = append(next, storage.PageID(f.Page.Extra()))
				for i := 0; i < f.Page.NumSlots(); i++ {
					next = append(next, pidFromCell(f.Page.ValueAt(i)))
				}
			}
			pool.Unpin(f)
		}
		frontier = next
	}
	sr.met.IndexPageFetches += pool.Stats().Misses - missBefore
	return nil
}

func pidFromCell(val []byte) storage.PageID {
	return storage.PageID(uint32(val[0])<<24 | uint32(val[1])<<16 | uint32(val[2])<<8 | uint32(val[3]))
}
