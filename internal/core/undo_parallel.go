package core

import (
	"fmt"

	"logrec/internal/storage"
	"logrec/internal/wal"
)

// Parallel undo.
//
// Losers are key-disjoint — two-phase locking means an uncommitted
// transaction still holds exclusive locks on every key it touched at
// the crash — so their compensations commute logically and only
// page-level coordination is needed. Parallel undo therefore splits
// each undo step into a serial *plan* and a sharded *apply*, reusing
// the redo worker pool (one pool spanning every data shard, tasks
// partitioned by (shard, page)):
//
//   - the dispatcher runs the same merged backward sweep as serial undo
//     (highest LSN first), appending each CLR itself — the log sequence
//     and every per-transaction backchain are byte-identical to a
//     serial run;
//
//   - for each CLR it resolves the key's current page through the
//     owning shard's index (internal pages only; that tree's structure
//     is frozen between barriers) and routes the page application to
//     the worker owning that (shard, page), exactly like a redo task —
//     workers fetch their leaf pages concurrently, which is where
//     undo's IO parallelism comes from;
//
//   - an undo operation that can change a tree's structure (restoring
//     a deleted row, or restoring a value larger than the one it
//     replaces, either of which can split a full leaf) runs under a
//     page latch scoped to the affected page set — the one leaf the
//     key lives on. Only the worker owning that (shard, leaf) drains
//     and pauses; every other worker keeps streaming compensations, so
//     delete-heavy loser workloads stay pipelined. The FIFO task
//     channels double as the ordering fence: everything routed to the
//     latched leaf before the latch is applied before keys move, and
//     everything planned after it is resolved against the new
//     structure.
//
//     Why latching one leaf suffices for an operation that can split:
//     workers only ever apply to leaf pages by routed PID and never
//     traverse the tree, while the dispatcher — which runs the
//     structural operation itself — is the only goroutine that reads
//     or writes internal pages. A split of leaf L therefore races only
//     with tasks already queued for L (drained by the latch), moves
//     keys only from L to a freshly allocated sibling (which can have
//     no queued tasks), and rewires parents nobody else touches. A
//     later compensation for a key that moved re-resolves through the
//     post-split index on the dispatcher and routes to the sibling's
//     worker with every prior task for that key already applied.
func (r *run) parallelUndo(workers int) error {
	losers := r.buildLosers()
	r.met.LosersUndone = len(losers)

	pool := newShardedPool(workers)
	loopErr := r.parallelUndoSweep(pool, losers)
	wmet, werr := pool.finish()
	r.met.UndoApplied += wmet.Applied
	r.met.DataPageFetches += wmet.DataPageFetches
	if loopErr == nil {
		loopErr = werr
	}
	if loopErr != nil {
		return loopErr
	}

	// Make the undo work durable and release the WAL constraint for
	// post-recovery flushing.
	r.eoslAll()
	return nil
}

// parallelUndoSweep is the dispatcher side: the serial merged backward
// sweep with the page applications farmed out.
func (r *run) parallelUndoSweep(pool *shardedPool, losers map[wal.TxnID]*undoState) error {
	for len(losers) > 0 {
		pick := nextLoser(losers)
		st := losers[pick]
		if st.next == wal.NilLSN {
			// Fully undone: close the transaction with an abort record.
			r.log.MustAppend(&wal.AbortRec{TxnID: pick, PrevLSN: st.last})
			delete(losers, pick)
			continue
		}
		rec, err := r.log.Get(st.next)
		if err != nil {
			return fmt.Errorf("undo of txn %d at %v: %w", pick, st.next, err)
		}
		next, err := r.undoOneParallel(pool, pick, st, rec)
		if err != nil {
			return fmt.Errorf("undo of txn %d at %v: %w", pick, st.next, err)
		}
		st.next = next
	}
	return nil
}

// undoOneParallel compensates one record: non-structural inverses are
// planned and routed to the owning (shard, page) worker; structural
// ones run serially under a latch on the affected leaf.
func (r *run) undoOneParallel(pool *shardedPool, txn wal.TxnID, st *undoState, rec wal.Record) (wal.LSN, error) {
	switch t := rec.(type) {
	case *wal.UpdateRec:
		if len(t.OldVal) > len(t.NewVal) {
			// Restoring a larger value can overflow the leaf and force
			// a split.
			return r.undoStructural(pool, txn, st, rec, t.ShardID, t.KeyVal)
		}
		return t.PrevLSN, r.routeUndoCLR(pool, txn, st, t.ShardID, wal.CLRUndoUpdate, t.TableID, t.KeyVal, t.OldVal, t.PrevLSN)
	case *wal.InsertRec:
		// The inverse is a page delete; leaves never merge, so this
		// cannot change the tree's structure.
		return t.PrevLSN, r.routeUndoCLR(pool, txn, st, t.ShardID, wal.CLRUndoInsert, t.TableID, t.KeyVal, nil, t.PrevLSN)
	case *wal.DeleteRec:
		// The inverse re-inserts the row, which can split a full leaf.
		return r.undoStructural(pool, txn, st, rec, t.ShardID, t.KeyVal)
	case *wal.CLRRec:
		// Redo-only: skip over already-compensated work.
		return t.UndoNextLSN, nil
	case *wal.ShardMapRec:
		// A loser migration's routing change never took effect.
		return t.PrevLSN, nil
	default:
		return wal.NilLSN, fmt.Errorf("unexpected %v record in backchain", rec.Type())
	}
}

// routeUndoCLR plans one non-structural undo operation: the CLR is
// appended here, on the dispatch goroutine (keeping the log sequence
// identical to serial undo and the per-transaction backchain intact),
// the key's current leaf is resolved through the owning shard's index,
// and the page application is routed to the owning worker. WAL ordering
// holds: the CLR is on the (volatile) log before any worker can dirty
// the page, and each pool's log-force hook covers eviction flushes.
func (r *run) routeUndoCLR(pool *shardedPool, txn wal.TxnID, st *undoState, sh wal.ShardID, kind wal.CLRKind, table wal.TableID, key uint64, restore []byte, undoNext wal.LSN) error {
	sr, err := r.shardFor(sh)
	if err != nil {
		return err
	}
	pid, err := sr.d.Tree().FindLeaf(key)
	if err != nil {
		return fmt.Errorf("index search for key %d: %w", key, err)
	}
	clr := &wal.CLRRec{
		TxnID: txn, TableID: table, KeyVal: key,
		Kind: kind, RestoreVal: restore, PageID: pid, ShardID: sh,
		UndoNextLSN: undoNext, PrevLSN: st.last,
	}
	lsn := r.log.MustAppend(clr)
	r.met.CLRsWritten++
	st.last = lsn
	pool.route(sr, clr, lsn)
	return nil
}

// undoStructural runs one undo step that may modify a tree's
// structure, under a page latch scoped to the affected page set: the
// key's current leaf, resolved through the owning shard's index (safe
// off-latch — only the dispatcher ever changes structure, and workers
// never touch internal pages). The owning worker drains and pauses,
// the record is compensated through the full logical path — exactly
// the serial undo step, CLR included — and the worker resumes; all
// other workers keep streaming. A split inside the compensation
// touches only the latched leaf, a fresh sibling and internal pages,
// none of which any running worker can hold (see the file comment for
// the full argument).
func (r *run) undoStructural(pool *shardedPool, txn wal.TxnID, st *undoState, rec wal.Record, sh wal.ShardID, key uint64) (wal.LSN, error) {
	sr, err := r.resolveShard(sh, key)
	if err != nil {
		return wal.NilLSN, err
	}
	pid, err := sr.d.Tree().FindLeaf(key)
	if err != nil {
		return wal.NilLSN, fmt.Errorf("index search for key %d: %w", key, err)
	}
	release, paused := pool.pause(sr, []storage.PageID{pid})
	defer release()
	r.met.UndoBarriers++
	r.met.BarrierWorkersPaused += int64(paused)
	return r.undoRecord(txn, st.last, rec, func(lsn wal.LSN) { st.last = lsn })
}
