package core

import (
	"fmt"

	"logrec/internal/btree"
	"logrec/internal/wal"
)

// Parallel undo.
//
// Losers are key-disjoint — two-phase locking means an uncommitted
// transaction still holds exclusive locks on every key it touched at
// the crash — so their compensations commute logically and only
// page-level coordination is needed. Parallel undo therefore splits
// each undo step into a serial *plan* and a sharded *apply*, reusing
// the redo worker pool:
//
//   - the dispatcher runs the same merged backward sweep as serial undo
//     (highest LSN first), appending each CLR itself — the log sequence
//     and every per-transaction backchain are byte-identical to a
//     serial run;
//   - for each CLR it resolves the key's current page through the index
//     (internal pages only; the tree's structure is frozen between
//     barriers) and routes the page application to the worker owning
//     that page, exactly like a redo task — workers fetch their leaf
//     pages concurrently, which is where undo's IO parallelism comes
//     from;
//   - an undo operation that can change the tree's structure (restoring
//     a deleted row, or restoring a value larger than the one it
//     replaces, either of which can split a full leaf) runs under a
//     global barrier: every shard drains, the operation goes through
//     the full logical path of serial undo, and the shards resume.
//     The FIFO task channels double as the ordering fence: everything
//     routed before the barrier is applied before the structure moves,
//     and everything planned after it is resolved against the new
//     structure.
func (r *run) parallelUndo(workers int) error {
	losers := r.buildLosers()
	r.met.LosersUndone = len(losers)

	pool := newShardedPool(r, workers, nil)
	loopErr := r.parallelUndoSweep(pool, losers)
	wmet, werr := pool.finish()
	r.met.UndoApplied += wmet.Applied
	r.met.DataPageFetches += wmet.DataPageFetches
	if loopErr == nil {
		loopErr = werr
	}
	if loopErr != nil {
		return loopErr
	}

	// Make the undo work durable and release the WAL constraint for
	// post-recovery flushing.
	r.d.EOSL(r.log.Flush())
	return nil
}

// parallelUndoSweep is the dispatcher side: the serial merged backward
// sweep with the page applications farmed out.
func (r *run) parallelUndoSweep(pool *shardedPool, losers map[wal.TxnID]*undoState) error {
	tree := r.d.Tree()
	for len(losers) > 0 {
		pick := nextLoser(losers)
		st := losers[pick]
		if st.next == wal.NilLSN {
			// Fully undone: close the transaction with an abort record.
			r.log.MustAppend(&wal.AbortRec{TxnID: pick, PrevLSN: st.last})
			delete(losers, pick)
			continue
		}
		rec, err := r.log.Get(st.next)
		if err != nil {
			return fmt.Errorf("undo of txn %d at %v: %w", pick, st.next, err)
		}
		next, err := r.undoOneParallel(pool, tree, pick, st, rec)
		if err != nil {
			return fmt.Errorf("undo of txn %d at %v: %w", pick, st.next, err)
		}
		st.next = next
	}
	return nil
}

// undoOneParallel compensates one record: non-structural inverses are
// planned and routed to the page's shard worker; structural ones run
// serially under a global barrier.
func (r *run) undoOneParallel(pool *shardedPool, tree *btree.Tree, txn wal.TxnID, st *undoState, rec wal.Record) (wal.LSN, error) {
	switch t := rec.(type) {
	case *wal.UpdateRec:
		if len(t.OldVal) > len(t.NewVal) {
			// Restoring a larger value can overflow the leaf and force
			// a split.
			return r.undoStructural(pool, txn, st, rec)
		}
		return t.PrevLSN, r.routeUndoCLR(pool, tree, txn, st, wal.CLRUndoUpdate, t.TableID, t.KeyVal, t.OldVal, t.PrevLSN)
	case *wal.InsertRec:
		// The inverse is a page delete; leaves never merge, so this
		// cannot change the tree's structure.
		return t.PrevLSN, r.routeUndoCLR(pool, tree, txn, st, wal.CLRUndoInsert, t.TableID, t.KeyVal, nil, t.PrevLSN)
	case *wal.DeleteRec:
		// The inverse re-inserts the row, which can split a full leaf.
		return r.undoStructural(pool, txn, st, rec)
	case *wal.CLRRec:
		// Redo-only: skip over already-compensated work.
		return t.UndoNextLSN, nil
	default:
		return wal.NilLSN, fmt.Errorf("unexpected %v record in backchain", rec.Type())
	}
}

// routeUndoCLR plans one non-structural undo operation: the CLR is
// appended here, on the dispatch goroutine (keeping the log sequence
// identical to serial undo and the per-transaction backchain intact),
// the key's current leaf is resolved through the index, and the page
// application is routed to the owning shard worker. WAL ordering holds:
// the CLR is on the (volatile) log before any worker can dirty the
// page, and the pool's log-force hook covers eviction flushes.
func (r *run) routeUndoCLR(pool *shardedPool, tree *btree.Tree, txn wal.TxnID, st *undoState, kind wal.CLRKind, table wal.TableID, key uint64, restore []byte, undoNext wal.LSN) error {
	pid, err := tree.FindLeaf(key)
	if err != nil {
		return fmt.Errorf("index search for key %d: %w", key, err)
	}
	clr := &wal.CLRRec{
		TxnID: txn, TableID: table, KeyVal: key,
		Kind: kind, RestoreVal: restore, PageID: pid,
		UndoNextLSN: undoNext, PrevLSN: st.last,
	}
	lsn := r.log.MustAppend(clr)
	r.met.CLRsWritten++
	st.last = lsn
	pool.route(clr, lsn)
	return nil
}

// undoStructural runs one undo step that may modify the tree's
// structure. Every shard drains and pauses (a split can touch any
// page: the leaf, its new sibling, parents up to the root), the record
// is compensated through the full logical path — exactly the serial
// undo step, CLR included — and the shards resume.
func (r *run) undoStructural(pool *shardedPool, txn wal.TxnID, st *undoState, rec wal.Record) (wal.LSN, error) {
	release, paused := pool.pause(nil)
	defer release()
	r.met.UndoBarriers++
	r.met.BarrierWorkersPaused += int64(paused)
	return r.undoRecord(txn, st.last, rec, func(lsn wal.LSN) { st.last = lsn })
}
