package core

import (
	"logrec/internal/wal"
)

// txnTable reconstructs the transaction table during recovery scans:
// which transactions have records in the redo window, their most recent
// LSN, and whether they terminated. Transactions still open at the end
// of the scan are the losers the undo pass rolls back. The table is
// seeded from the end-checkpoint record's active-transaction list so
// losers whose records all precede the redo scan start are still found.
type txnTable struct {
	last  map[wal.TxnID]wal.LSN
	ended map[wal.TxnID]bool
	// won marks transactions that ended with a commit record —
	// route-change replay applies only committed migrations.
	won   map[wal.TxnID]bool
	maxID wal.TxnID
}

func newTxnTable() *txnTable {
	return &txnTable{
		last:  make(map[wal.TxnID]wal.LSN),
		ended: make(map[wal.TxnID]bool),
		won:   make(map[wal.TxnID]bool),
	}
}

// committed reports whether id's commit record is in the scanned log.
func (t *txnTable) committed(id wal.TxnID) bool { return t.won[id] }

// seed installs the active-transaction table from an end-checkpoint
// record.
func (t *txnTable) seed(active []wal.ActiveTxn) {
	for _, a := range active {
		if a.LastLSN > t.last[a.TxnID] {
			t.last[a.TxnID] = a.LastLSN
		}
		if a.TxnID > t.maxID {
			t.maxID = a.TxnID
		}
	}
}

// note observes one log record during a forward scan.
func (t *txnTable) note(rec wal.Record, lsn wal.LSN) {
	tr, ok := rec.(wal.Transactional)
	if !ok {
		return
	}
	id := tr.Txn()
	if id == 0 {
		return // system records
	}
	if id > t.maxID {
		t.maxID = id
	}
	if lsn > t.last[id] {
		t.last[id] = lsn
	}
	switch rec.Type() {
	case wal.TypeCommit:
		t.ended[id] = true
		t.won[id] = true
	case wal.TypeAbort:
		t.ended[id] = true
	}
}

// prune drops a terminated transaction's entries. A continuous
// replayer calls it as commits and aborts stream past so the table
// stays bounded by the in-flight transaction set; maxID is kept, so
// RestoreNextTxnID after a promotion still continues the ID space.
// One-shot recovery never prunes — finalRoutes needs the full won set.
func (t *txnTable) prune(id wal.TxnID) {
	delete(t.last, id)
	delete(t.ended, id)
	delete(t.won, id)
}

// losers returns the transactions requiring undo: seen but not ended,
// keyed to their most recent LSN.
func (t *txnTable) losers() map[wal.TxnID]wal.LSN {
	out := make(map[wal.TxnID]wal.LSN)
	for id, lsn := range t.last {
		if !t.ended[id] {
			out[id] = lsn
		}
	}
	return out
}
