package core

import "testing"

// TestSMOAppendWindowRegression pins a seed whose workload trips the
// ∆ tracker's MaxDirty capacity emit while a B-tree SMO is being
// stamped. The SMO path reserves its LSN before appending; a tracker
// record logged from the onDirty hook inside that window used to steal
// the reserved LSN ("SMO logger returned LSN x, reserved y"). The
// notifications are now deferred until after the SMO append.
func TestSMOAppendWindowRegression(t *testing.T) {
	if !quickRecoveryOne(t, 550454061297512668) {
		t.Fatal("seed 550454061297512668 fails")
	}
}
