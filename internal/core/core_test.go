package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"logrec/internal/dc"
	"logrec/internal/engine"
	"logrec/internal/sim"
	"logrec/internal/storage"
	"logrec/internal/tracker"
	"logrec/internal/wal"
)

// testConfig builds a small, fast engine configuration.
func testConfig(cachePages int) engine.Config {
	cfg := engine.DefaultConfig()
	cfg.CachePages = cachePages
	cfg.DC.Tracker.FlushBatch = 16
	cfg.DC.Tracker.MaxDirty = 64
	return cfg
}

func val(k uint64, ver int) []byte {
	return []byte(fmt.Sprintf("v%03d-%08d-padpadpadpad", ver%1000, k))
}

// oracle tracks committed state alongside the engine.
type oracle map[uint64][]byte

// buildCrash loads nRows, runs committed update transactions with
// periodic checkpoints, optionally leaves an uncommitted transaction at
// the crash, and returns the crash state plus the committed-state
// oracle.
func buildCrash(t *testing.T, cfg engine.Config, nRows, txns, updatesPerTxn, ckptEvery int, seed int64, leaveOpen bool) (*engine.CrashState, oracle) {
	t.Helper()
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	om := make(oracle, nRows)
	if err := eng.Load(nRows, func(k uint64) []byte {
		v := val(k, 0)
		om[k] = v
		return v
	}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < txns; i++ {
		txn := eng.TC.Begin()
		staged := make(map[uint64][]byte)
		for u := 0; u < updatesPerTxn; u++ {
			k := uint64(rng.Intn(nRows))
			v := val(k, i+1)
			if err := eng.TC.Update(txn, cfg.TableID, k, v); err != nil {
				t.Fatalf("txn %d update: %v", i, err)
			}
			staged[k] = v
		}
		if err := eng.TC.Commit(txn); err != nil {
			t.Fatal(err)
		}
		for k, v := range staged {
			om[k] = v
		}
		if (i+1)%ckptEvery == 0 {
			if err := eng.TC.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if leaveOpen {
		// An in-flight transaction at the crash: its updates must be
		// undone by recovery and must NOT appear in the oracle.
		txn := eng.TC.Begin()
		for u := 0; u < updatesPerTxn; u++ {
			k := uint64(rng.Intn(nRows))
			if err := eng.TC.Update(txn, cfg.TableID, k, []byte("UNCOMMITTED-GARBAGE-value")); err != nil {
				t.Fatal(err)
			}
		}
		// Flush the log so the loser's records survive the crash and
		// undo has real work (commit never happens).
		eng.TC.SendEOSL()
	}
	return eng.Crash(), om
}

// verifyRecovered checks the recovered engine's table equals the oracle.
func verifyRecovered(t *testing.T, m Method, eng *engine.Engine, om oracle) {
	t.Helper()
	got := make(map[uint64][]byte)
	err := eng.DC.Tree().Scan(func(k uint64, v []byte) error {
		got[k] = append([]byte(nil), v...)
		return nil
	})
	if err != nil {
		t.Fatalf("%v: scan: %v", m, err)
	}
	if len(got) != len(om) {
		t.Fatalf("%v: recovered %d rows, oracle has %d", m, len(got), len(om))
	}
	for k, want := range om {
		if !bytes.Equal(got[k], want) {
			t.Fatalf("%v: key %d: got %q want %q", m, k, got[k], want)
		}
	}
	if err := eng.DC.Tree().CheckInvariants(); err != nil {
		t.Fatalf("%v: tree invariants after recovery: %v", m, err)
	}
}

func TestRecoverAllMethodsMatchOracle(t *testing.T) {
	cfg := testConfig(300)
	cs, om := buildCrash(t, cfg, 2000, 120, 10, 30, 42, true)
	opt := DefaultOptions(cfg)
	for _, m := range Methods() {
		eng, met, err := Recover(cs, m, opt)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		verifyRecovered(t, m, eng, om)
		if met.RedoRecords == 0 {
			t.Fatalf("%v: redo saw no records", m)
		}
		if met.LosersUndone != 1 {
			t.Fatalf("%v: LosersUndone = %d, want 1", m, met.LosersUndone)
		}
		if met.CLRsWritten == 0 {
			t.Fatalf("%v: no CLRs written for the loser", m)
		}
	}
}

// TestRecoverFillsLastRecovery pins the recovery→engine handoff the
// budget-mode checkpointer depends on: Recover must leave a recovery
// summary on the engine with the replayed window and a measured replay
// rate, so StartCheckpointer can seed its estimates without any manual
// plumbing.
func TestRecoverFillsLastRecovery(t *testing.T) {
	cfg := testConfig(300)
	cs, om := buildCrash(t, cfg, 2000, 120, 10, 30, 42, true)
	opt := DefaultOptions(cfg)
	eng, met, err := Recover(cs, Log1, opt)
	if err != nil {
		t.Fatal(err)
	}
	verifyRecovered(t, Log1, eng, om)
	lr := eng.LastRecovery
	if lr == nil {
		t.Fatal("Recover left LastRecovery nil")
	}
	if lr.Method != "Log1" {
		t.Errorf("Method = %q, want Log1", lr.Method)
	}
	if lr.ReplayBytes != met.RedoWindowBytes || lr.ReplayBytes <= 0 {
		t.Errorf("ReplayBytes = %d, want the positive redo window %d", lr.ReplayBytes, met.RedoWindowBytes)
	}
	if lr.ReplayBytesPerSec <= 0 {
		t.Errorf("ReplayBytesPerSec = %v, want > 0 (wall-clock prep+redo always takes real time)", lr.ReplayBytesPerSec)
	}
	if lr.WallTotal != met.WallTotalTime {
		t.Errorf("WallTotal = %v, metrics say %v", lr.WallTotal, met.WallTotalTime)
	}
}

func TestRecoverNoLoser(t *testing.T) {
	cfg := testConfig(300)
	cs, om := buildCrash(t, cfg, 1500, 80, 10, 25, 7, false)
	opt := DefaultOptions(cfg)
	for _, m := range Methods() {
		eng, met, err := Recover(cs, m, opt)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		verifyRecovered(t, m, eng, om)
		if met.LosersUndone != 0 {
			t.Fatalf("%v: LosersUndone = %d, want 0", m, met.LosersUndone)
		}
	}
}

// TestRecoverWithInsertsAndDeletes exercises SMO replay during recovery:
// inserts grow the tree past the checkpoint, so recovery must replay
// splits before logical redo can traverse correctly.
func TestRecoverWithInsertsAndDeletes(t *testing.T) {
	cfg := testConfig(400)
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	om := make(oracle)
	if err := eng.Load(1000, func(k uint64) []byte {
		v := val(k, 0)
		om[k] = v
		return v
	}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	nextKey := uint64(1000)
	for i := 0; i < 150; i++ {
		txn := eng.TC.Begin()
		staged := make(map[uint64][]byte)
		var deleted []uint64
		for u := 0; u < 8; u++ {
			switch rng.Intn(3) {
			case 0: // insert a fresh key
				k := nextKey
				nextKey++
				v := val(k, i+1)
				if err := eng.TC.Insert(txn, cfg.TableID, k, v); err != nil {
					t.Fatal(err)
				}
				staged[k] = v
			case 1: // update an original key
				k := uint64(rng.Intn(1000))
				if _, gone := om[k]; !gone {
					continue
				}
				v := val(k, i+1)
				if err := eng.TC.Update(txn, cfg.TableID, k, v); err != nil {
					t.Fatal(err)
				}
				staged[k] = v
			case 2: // delete an original key if still present
				k := uint64(rng.Intn(1000))
				if _, ok := om[k]; !ok {
					continue
				}
				if _, ok := staged[k]; ok {
					continue
				}
				already := false
				for _, dk := range deleted {
					if dk == k {
						already = true
					}
				}
				if already {
					continue
				}
				if err := eng.TC.Delete(txn, cfg.TableID, k); err != nil {
					t.Fatal(err)
				}
				deleted = append(deleted, k)
			}
		}
		if err := eng.TC.Commit(txn); err != nil {
			t.Fatal(err)
		}
		for k, v := range staged {
			om[k] = v
		}
		for _, k := range deleted {
			delete(om, k)
		}
		if (i+1)%40 == 0 {
			if err := eng.TC.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	cs := eng.Crash()
	opt := DefaultOptions(cfg)
	for _, m := range Methods() {
		recovered, _, err := Recover(cs, m, opt)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		verifyRecovered(t, m, recovered, om)
	}
}

// TestRecoveredEngineUsable continues running transactions and another
// crash/recovery cycle on a recovered engine.
func TestRecoveredEngineUsable(t *testing.T) {
	cfg := testConfig(300)
	cs, om := buildCrash(t, cfg, 1000, 60, 10, 20, 5, false)
	eng, _, err := Recover(cs, Log2, DefaultOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	// New transactions on the recovered engine.
	for i := 0; i < 40; i++ {
		txn := eng.TC.Begin()
		k := uint64(i * 7 % 1000)
		v := []byte(fmt.Sprintf("post-recovery-%d-padding", i))
		if err := eng.TC.Update(txn, cfg.TableID, k, v); err != nil {
			t.Fatal(err)
		}
		if err := eng.TC.Commit(txn); err != nil {
			t.Fatal(err)
		}
		om[k] = v
	}
	if err := eng.TC.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Crash again and recover with a different method.
	cs2 := eng.Crash()
	eng2, _, err := Recover(cs2, SQL1, DefaultOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	verifyRecovered(t, SQL1, eng2, om)
}

// TestRedoIdempotence recovers, crashes immediately without further
// work, recovers again: the second recovery must apply nothing beyond
// what pLSN tests allow and produce identical state.
func TestRedoIdempotence(t *testing.T) {
	cfg := testConfig(300)
	cs, om := buildCrash(t, cfg, 1000, 60, 10, 20, 11, false)
	eng, _, err := Recover(cs, Log1, DefaultOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	verifyRecovered(t, Log1, eng, om)
	// Crash the recovered engine without flushing anything new.
	cs2 := eng.Crash()
	eng2, _, err := Recover(cs2, Log1, DefaultOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	verifyRecovered(t, Log1, eng2, om)
}

// TestDPTSafety verifies §3's safety property on a real crash: every
// page dirty in the cache at the crash appears in the constructed DPT,
// or is covered by the tail of the log.
func TestDPTSafety(t *testing.T) {
	cfg := testConfig(300)
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(1500, func(k uint64) []byte { return val(k, 0) }); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 100; i++ {
		txn := eng.TC.Begin()
		for u := 0; u < 10; u++ {
			k := uint64(rng.Intn(1500))
			if err := eng.TC.Update(txn, cfg.TableID, k, val(k, i+1)); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.TC.Commit(txn); err != nil {
			t.Fatal(err)
		}
		if (i+1)%30 == 0 {
			if err := eng.TC.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Dirty pages at the crash, from the live pool (the oracle).
	dirty := eng.DC.Pool().DirtyPIDs()
	cs := eng.Crash()

	// Build the logical DPT exactly as Log1 recovery would.
	opt := DefaultOptions(cfg)
	clock, _, log, err := cs.Fork(0)
	if err != nil {
		t.Fatal(err)
	}
	_ = clock
	rec, err := log.Get(cs.LastEndCkpt)
	if err != nil {
		t.Fatal(err)
	}
	scanStart := rec.(*wal.EndCkptRec).BeginLSN

	// Reuse the recovery machinery via a full run, then cross-check.
	_, met, err := Recover(cs, Log1, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute the DPT standalone for the membership check.
	r2 := &run{cs: cs, m: Log1, opt: opt, clock: &sim.Clock{}, log: cs.Log, met: &Metrics{}, txns: newTxnTable(), scanStart: scanStart}
	// dcPass needs a DC; fork one.
	clock3, disks3, log3, err3 := cs.Fork(0)
	if err3 != nil {
		t.Fatal(err3)
	}
	d3, err := dc.Open(clock3, disks3[0], log3, cfg.CachePages, 0, cfg.DC)
	if err != nil {
		t.Fatal(err)
	}
	r2.log = log3
	r2.clock = clock3
	sr2 := &shardRun{r: r2, id: 0, d: d3}
	r2.shards = []*shardRun{sr2}
	src := &scanSource{r: r2, sc: log3.NewScanner(scanStart, clock3, opt.ScanCost)}
	if err := sr2.dcPass(src); err != nil {
		t.Fatal(err)
	}
	if sr2.table.Len() != met.DPTSize {
		t.Fatalf("standalone DPT size %d != recovery's %d", sr2.table.Len(), met.DPTSize)
	}
	// Safety: every dirty page is in the DPT, or dirtied only by tail
	// operations (whose redo never consults the DPT).
	for _, pid := range dirty {
		if sr2.table.Find(pid) == nil {
			if !coveredByTail(t, cs.Log, sr2.lastDeltaTCLSN, pid) {
				t.Fatalf("dirty page %d missing from DPT and not covered by the log tail", pid)
			}
		}
	}
}

// coveredByTail reports whether pid is updated by a record at or past
// the last ∆ record's TC-LSN (basic-mode redo re-fetches those pages
// unconditionally).
func coveredByTail(t *testing.T, log *wal.Log, lastDelta wal.LSN, pid storage.PageID) bool {
	t.Helper()
	sc := log.NewScanner(lastDelta, nil, wal.ScanCost{})
	for {
		rec, lsn, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return false
		}
		if lsn < lastDelta {
			continue
		}
		if op, isOp := rec.(wal.DataOp); isOp && op.PID() == pid {
			return true
		}
	}
}

// TestLog1MatchesSQL1DataFetchesWithPerfectDelta checks §5.3's claim
// ("Log1 issues exactly the same data page requests as SQL1") in the
// regime where it holds exactly: the perfect-∆ variant (Appendix D.1)
// and an empty log tail.
func TestLog1MatchesSQL1DataFetchesWithPerfectDelta(t *testing.T) {
	cfg := testConfig(300)
	cfg.DC.Tracker.Variant = tracker.DeltaPerfect
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(1500, func(k uint64) []byte { return val(k, 0) }); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		txn := eng.TC.Begin()
		for u := 0; u < 10; u++ {
			k := uint64(rng.Intn(1500))
			if err := eng.TC.Update(txn, cfg.TableID, k, val(k, i+1)); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.TC.Commit(txn); err != nil {
			t.Fatal(err)
		}
		if (i+1)%25 == 0 {
			if err := eng.TC.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Close the ∆/BW interval so the tail is empty and both DPTs see
	// the same flush information.
	eng.DC.Recorder().ForceEmit()
	eng.TC.SendEOSL()
	cs := eng.Crash()
	opt := DefaultOptions(cfg)
	_, metLog, err := Recover(cs, Log1, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, metSQL, err := Recover(cs, SQL1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if metLog.TailRecords != 0 {
		t.Fatalf("tail not empty: %d records", metLog.TailRecords)
	}
	if metLog.DataPageFetches != metSQL.DataPageFetches {
		t.Fatalf("data fetches differ: Log1 %d, SQL1 %d (DPT %d vs %d)",
			metLog.DataPageFetches, metSQL.DataPageFetches, metLog.DPTSize, metSQL.DPTSize)
	}
}
