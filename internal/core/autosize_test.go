package core

import (
	"testing"
	"time"
)

// TestAutoSizeWorkersRule pins the sizing rule: workers =
// ceil(windowBytes ÷ bytesPerSec ÷ budget), clamped to [1, maxWorkers],
// with 1 for any degenerate input.
func TestAutoSizeWorkersRule(t *testing.T) {
	cases := []struct {
		name   string
		window int64
		rate   float64
		budget time.Duration
		maxW   int
		want   int
	}{
		{"fits-serial", 1 << 20, 4 << 20, time.Second, 8, 1},
		{"exact-budget", 4 << 20, 1 << 20, 4 * time.Second, 8, 1},
		{"needs-four", 4 << 20, 1 << 20, time.Second, 8, 4},
		{"rounds-up", 5 << 20, 1 << 20, 2 * time.Second, 8, 3},
		{"clamped-at-max", 1 << 30, 1 << 10, time.Millisecond, 8, 8},
		{"zero-window", 0, 1 << 20, time.Second, 8, 1},
		{"zero-rate", 1 << 20, 0, time.Second, 8, 1},
		{"zero-budget", 1 << 20, 1 << 20, 0, 8, 1},
		{"max-below-one", 1 << 20, 1, time.Second, 0, 1},
	}
	for _, c := range cases {
		if got := AutoSizeWorkers(c.window, c.rate, c.budget, c.maxW); got != c.want {
			t.Errorf("%s: AutoSizeWorkers(%d, %v, %v, %d) = %d, want %d",
				c.name, c.window, c.rate, c.budget, c.maxW, got, c.want)
		}
	}
}

// TestRecoverAutoSizesWorkers drives the rule end to end: a crash state
// carrying a recovery budget and a measured replay rate widens an unset
// RedoWorkers; an explicit setting or a missing budget leaves the
// deterministic serial default untouched. Recovered state must match
// the oracle in every mode.
func TestRecoverAutoSizesWorkers(t *testing.T) {
	cfg := testConfig(300)
	cfg.RecoveryBudget = time.Millisecond
	cs, om := buildCrash(t, cfg, 800, 40, 8, 20, 7, false)

	// Rate so low the estimate always exceeds the budget: sizing clamps
	// at maxAutoWorkers regardless of the exact window size.
	cs.ReplayRate = 1

	eng, met, err := Recover(cs, Log1, DefaultOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if want := maxAutoWorkers(); met.RedoWorkers != want {
		t.Fatalf("auto-sized RedoWorkers = %d, want %d", met.RedoWorkers, want)
	}
	verifyRecovered(t, Log1, eng, om)

	// Explicit width wins over auto-sizing.
	opt := DefaultOptions(cfg)
	opt.RedoWorkers = 2
	eng, met, err = Recover(cs, Log1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if met.RedoWorkers != 2 {
		t.Fatalf("explicit RedoWorkers overridden: got %d, want 2", met.RedoWorkers)
	}
	verifyRecovered(t, Log1, eng, om)

	// No measured rate → serial stays serial.
	cs.ReplayRate = 0
	eng, met, err = Recover(cs, Log1, DefaultOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if met.RedoWorkers != 1 {
		t.Fatalf("RedoWorkers without a rate = %d, want 1 (serial)", met.RedoWorkers)
	}
	verifyRecovered(t, Log1, eng, om)
}
