package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"logrec/internal/engine"
	"logrec/internal/wal"
)

// TestRecoverFromLiveCheckpointedWAL is the checkpointing round-trip:
// concurrent sessions commit while the background checkpointer emits
// BeginCkpt/EndCkpt/RSSP records into the live WAL, the engine crashes
// with pages partially flushed (some dirtied after the last checkpoint
// flip, some flushed by it and re-dirtied), and every recovery method
// must reproduce the committed state from a scan that starts at the
// checkpoint — not the cold head of the log.
func TestRecoverFromLiveCheckpointedWAL(t *testing.T) {
	cfg := engine.DefaultConfig()
	cfg.CachePages = 400
	cfg.DC.Tracker.FlushBatch = 16
	cfg.DC.Tracker.MaxDirty = 64
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 3000
	om := make(oracle, rows)
	if err := eng.Load(rows, func(k uint64) []byte {
		v := val(k, 0)
		om[k] = v
		return v
	}); err != nil {
		t.Fatal(err)
	}
	mgr := eng.NewSessionManager(0)
	ckpt := eng.StartCheckpointer(mgr, engine.CheckpointerConfig{
		Interval:   time.Millisecond,
		MinRecords: 32,
	})

	// Concurrent committed traffic on disjoint key ranges, so the
	// combined per-client write sets form an exact oracle.
	const clients, txns, ops = 4, 120, 4
	perClient := rows / clients
	finals := make([]map[uint64][]byte, clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mine := make(map[uint64][]byte)
			finals[c] = mine
			sess := mgr.NewSession()
			base := uint64(c * perClient)
			for i := 0; i < txns; i++ {
				if err := sess.Begin(); err != nil {
					errs <- err
					return
				}
				for u := 0; u < ops; u++ {
					k := base + uint64((i*ops+u)%perClient)
					v := []byte(fmt.Sprintf("c%02d-t%05d-u%d-final", c, i, u))
					if err := sess.Update(cfg.TableID, k, v); err != nil {
						errs <- err
						return
					}
					mine[k] = v
				}
				if err := sess.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// One more checkpoint, then a burst of updates *after* it so the
	// crash finds pages dirtied past the checkpoint (partially flushed
	// state) and the redo scan has real work from the scan start.
	if err := ckpt.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	ckpt.Stop()
	sess := mgr.NewSession()
	for i := 0; i < 40; i++ {
		if err := sess.Begin(); err != nil {
			t.Fatal(err)
		}
		k := uint64(i * 7 % perClient)
		v := []byte(fmt.Sprintf("post-ckpt-%05d", i))
		if err := sess.Update(cfg.TableID, k, v); err != nil {
			t.Fatal(err)
		}
		if err := sess.Commit(); err != nil {
			t.Fatal(err)
		}
		finals[0][k] = v
	}

	for _, mine := range finals {
		for k, v := range mine {
			om[k] = v
		}
	}

	if eng.Log.AppendCount(wal.TypeRSSP) < 2 {
		t.Fatalf("expected live RSSP records, got %d", eng.Log.AppendCount(wal.TypeRSSP))
	}
	cs := eng.Crash()
	if cs.LastEndCkpt == wal.NilLSN {
		t.Fatal("crash state has no master checkpoint record")
	}

	totalOps := eng.Log.AppendCount(wal.TypeUpdate) +
		eng.Log.AppendCount(wal.TypeInsert) +
		eng.Log.AppendCount(wal.TypeDelete) +
		eng.Log.AppendCount(wal.TypeCLR)

	opt := DefaultOptions(cfg)
	for _, m := range Methods() {
		for _, workers := range []int{1, 4} {
			ropt := opt
			ropt.RedoWorkers = workers
			reng, met, err := Recover(cs, m, ropt)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", m, workers, err)
			}
			verifyRecovered(t, m, reng, om)
			// The checkpoint must bound the redo scan: the window holds
			// strictly fewer data ops than the whole log.
			if met.RedoRecords >= totalOps {
				t.Errorf("%v workers=%d: redo window %d records ≥ whole log's %d — scan start never advanced",
					m, workers, met.RedoRecords, totalOps)
			}
		}
	}
}
