package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"logrec/internal/engine"
	"logrec/internal/tracker"
)

// TestQuickRecoveryEquivalence is the repository's central property
// test: for random mixed workloads (updates, inserts, deletes, aborts),
// random checkpoint placement, a random crash point and a random
// ∆-record variant, all five recovery methods must produce
// byte-identical post-recovery tables equal to the committed-state
// oracle, and the B-tree must satisfy every structural invariant.
func TestQuickRecoveryEquivalence(t *testing.T) {
	f := func(seed int64) bool { return quickRecoveryOne(t, seed) }
	cfgQ := &quick.Config{MaxCount: 15}
	if testing.Short() {
		cfgQ.MaxCount = 4
	}
	if err := quick.Check(f, cfgQ); err != nil {
		t.Fatal(err)
	}
}

// quickRecoveryOne runs one seeded iteration of the recovery
// equivalence property; named so a failing seed can be replayed
// directly.
func quickRecoveryOne(t *testing.T, seed int64) bool {
	{
		rng := rand.New(rand.NewSource(seed))

		cfg := testConfig(64 + rng.Intn(512))
		cfg.DC.Tracker.Variant = tracker.Variant(rng.Intn(3))
		cfg.DC.Tracker.FlushBatch = 4 + rng.Intn(60)
		cfg.DC.Tracker.MaxDirty = 16 + rng.Intn(200)

		eng, err := engine.New(cfg)
		if err != nil {
			t.Log(err)
			return false
		}
		nRows := 300 + rng.Intn(1500)
		om := make(oracle, nRows)
		if err := eng.Load(nRows, func(k uint64) []byte {
			v := val(k, 0)
			om[k] = v
			return v
		}); err != nil {
			t.Log(err)
			return false
		}

		nextKey := uint64(nRows)
		txns := 30 + rng.Intn(120)
		for i := 0; i < txns; i++ {
			txn := eng.TC.Begin()
			type change struct {
				key uint64
				val []byte // nil means deleted
			}
			var staged []change
			touched := make(map[uint64]bool)
			nOps := 1 + rng.Intn(12)
			for u := 0; u < nOps; u++ {
				switch rng.Intn(10) {
				case 0, 1: // insert
					k := nextKey
					nextKey++
					v := val(k, i+1)
					if err := eng.TC.Insert(txn, cfg.TableID, k, v); err != nil {
						t.Logf("seed %d insert: %v", seed, err)
						return false
					}
					staged = append(staged, change{k, v})
					touched[k] = true
				case 2: // delete
					k := uint64(rng.Intn(nRows))
					if touched[k] {
						continue
					}
					if _, exists := om[k]; !exists {
						continue
					}
					if err := eng.TC.Delete(txn, cfg.TableID, k); err != nil {
						t.Logf("seed %d delete %d: %v", seed, k, err)
						return false
					}
					staged = append(staged, change{k, nil})
					touched[k] = true
				default: // update
					k := uint64(rng.Intn(nRows))
					if touched[k] {
						continue
					}
					if _, exists := om[k]; !exists {
						continue
					}
					v := val(k, i+1)
					if err := eng.TC.Update(txn, cfg.TableID, k, v); err != nil {
						t.Logf("seed %d update %d: %v", seed, k, err)
						return false
					}
					staged = append(staged, change{k, v})
					touched[k] = true
				}
			}
			if rng.Intn(8) == 0 {
				// Explicit abort: nothing lands in the oracle.
				if err := eng.TC.Abort(txn); err != nil {
					t.Logf("seed %d abort: %v", seed, err)
					return false
				}
			} else {
				if err := eng.TC.Commit(txn); err != nil {
					t.Logf("seed %d commit: %v", seed, err)
					return false
				}
				for _, c := range staged {
					if c.val == nil {
						delete(om, c.key)
					} else {
						om[c.key] = c.val
					}
				}
			}
			if rng.Intn(15) == 0 {
				if err := eng.TC.Checkpoint(); err != nil {
					t.Logf("seed %d checkpoint: %v", seed, err)
					return false
				}
			}
		}

		// Possibly leave 0-2 open transactions at the crash.
		for j := 0; j < rng.Intn(3); j++ {
			open := eng.TC.Begin()
			for u := 0; u < rng.Intn(5)+1; u++ {
				k := uint64(rng.Intn(nRows))
				if _, exists := om[k]; !exists {
					continue
				}
				// May conflict with the other open txn: acceptable.
				_ = eng.TC.Update(open, cfg.TableID, k, []byte("OPEN-TXN-GARBAGE-xxxx"))
			}
			eng.TC.SendEOSL()
		}

		cs := eng.Crash()
		opt := DefaultOptions(cfg)

		var first map[uint64][]byte
		for _, m := range Methods() {
			rec, _, err := Recover(cs, m, opt)
			if err != nil {
				t.Logf("seed %d %v: %v", seed, m, err)
				return false
			}
			got := make(map[uint64][]byte)
			if err := rec.DC.Tree().Scan(func(k uint64, v []byte) error {
				got[k] = append([]byte(nil), v...)
				return nil
			}); err != nil {
				t.Logf("seed %d %v scan: %v", seed, m, err)
				return false
			}
			if err := rec.DC.Tree().CheckInvariants(); err != nil {
				t.Logf("seed %d %v invariants: %v", seed, m, err)
				return false
			}
			// Equal to the oracle.
			if len(got) != len(om) {
				t.Logf("seed %d %v: %d rows, oracle %d", seed, m, len(got), len(om))
				return false
			}
			for k, v := range om {
				if !bytes.Equal(got[k], v) {
					t.Logf("seed %d %v: key %d = %q, want %q", seed, m, k, got[k], v)
					return false
				}
			}
			// Identical across methods.
			if first == nil {
				first = got
			} else if fmt.Sprint(len(first)) != fmt.Sprint(len(got)) {
				t.Logf("seed %d %v: diverged from first method", seed, m)
				return false
			}
		}
		return true
	}
}

// TestQuickDoubleCrash stresses crash-during-recovery semantics: after
// recovering, crash again immediately (CLRs from undo now live in the
// log) and recover with a different method; state must be stable.
func TestQuickDoubleCrash(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := testConfig(128 + rng.Intn(256))
		cs, om := buildCrash(t, cfg, 500+rng.Intn(1000), 40+rng.Intn(60), 8, 17, seed, true)
		mA := Methods()[rng.Intn(5)]
		mB := Methods()[rng.Intn(5)]
		engA, _, err := Recover(cs, mA, DefaultOptions(cfg))
		if err != nil {
			t.Logf("seed %d %v: %v", seed, mA, err)
			return false
		}
		csB := engA.Crash()
		engB, _, err := Recover(csB, mB, DefaultOptions(cfg))
		if err != nil {
			t.Logf("seed %d %v then %v: %v", seed, mA, mB, err)
			return false
		}
		got := make(map[uint64][]byte)
		if err := engB.DC.Tree().Scan(func(k uint64, v []byte) error {
			got[k] = append([]byte(nil), v...)
			return nil
		}); err != nil {
			t.Log(err)
			return false
		}
		if len(got) != len(om) {
			t.Logf("seed %d: %d rows after double crash, want %d", seed, len(got), len(om))
			return false
		}
		for k, v := range om {
			if !bytes.Equal(got[k], v) {
				t.Logf("seed %d: key %d mismatch after double crash", seed, k)
				return false
			}
		}
		return true
	}
	cfgQ := &quick.Config{MaxCount: 10}
	if testing.Short() {
		cfgQ.MaxCount = 3
	}
	if err := quick.Check(f, cfgQ); err != nil {
		t.Fatal(err)
	}
}
