package core

import (
	"fmt"

	"logrec/internal/storage"
	"logrec/internal/wal"
)

// undoState tracks one loser transaction through the merged backward
// sweep.
type undoState struct {
	next wal.LSN // next record of this txn to undo
	last wal.LSN // txn's current backchain head (CLR PrevLSN)
}

// buildLosers seeds the undo sweep from the recovered transaction
// table.
func (r *run) buildLosers() map[wal.TxnID]*undoState {
	losers := make(map[wal.TxnID]*undoState)
	for id, lsn := range r.txns.losers() {
		losers[id] = &undoState{next: lsn, last: lsn}
	}
	return losers
}

// nextLoser picks the loser with the highest next-undo LSN — the merged
// backward sweep order both the serial and parallel passes follow.
func nextLoser(losers map[wal.TxnID]*undoState) wal.TxnID {
	var pick wal.TxnID
	var maxLSN wal.LSN
	for id, st := range losers {
		if st.next >= maxLSN {
			maxLSN = st.next
			pick = id
		}
	}
	return pick
}

// shardFor resolves the data shard a record ran on. Undo routes by the
// record, not the routing table: mid-migration the table may already
// (or no longer) point elsewhere.
func (r *run) shardFor(sh wal.ShardID) (*shardRun, error) {
	if int(sh) >= len(r.shards) {
		return nil, fmt.Errorf("record names shard %d, engine has %d", sh, len(r.shards))
	}
	return r.shards[sh], nil
}

// resolveShard routes one undo compensation: by the record's shard
// stamp for recovery, or by key when routeByKey is set (a logical-mode
// standby whose partitioning differs from the primary's stamps).
func (r *run) resolveShard(sh wal.ShardID, key uint64) (*shardRun, error) {
	if r.routeByKey != nil {
		return r.routeByKey(key)
	}
	return r.shardFor(sh)
}

// eoslAll forces the log and broadcasts the new end of stable log to
// every shard, releasing the WAL constraint for post-recovery flushing.
func (r *run) eoslAll() {
	eLSN := r.log.Flush()
	for _, sr := range r.shards {
		sr.d.EOSL(eLSN)
	}
}

// undo rolls back every loser transaction — logical undo, the final
// pass in every recovery method (§2.1). Losers' update records are
// compensated in a single merged backward sweep over the log, highest
// LSN first, exactly as ARIES does, with each compensation routed to
// the data shard the record ran on; CLRs already on the log skip
// directly to their UndoNextLSN so undo work lost in a crash-during-
// recovery is never repeated.
func (r *run) undo() error {
	losers := r.buildLosers()
	r.met.LosersUndone = len(losers)

	for len(losers) > 0 {
		pick := nextLoser(losers)
		st := losers[pick]
		if st.next == wal.NilLSN {
			// Fully undone: close the transaction with an abort record.
			r.log.MustAppend(&wal.AbortRec{TxnID: pick, PrevLSN: st.last})
			delete(losers, pick)
			continue
		}
		rec, err := r.log.Get(st.next)
		if err != nil {
			return fmt.Errorf("undo of txn %d at %v: %w", pick, st.next, err)
		}
		next, err := r.undoRecord(pick, st.last, rec, func(lsn wal.LSN) { st.last = lsn })
		if err != nil {
			return fmt.Errorf("undo of txn %d at %v: %w", pick, st.next, err)
		}
		st.next = next
	}

	// Make the undo work durable and release the WAL constraint for
	// post-recovery flushing.
	r.eoslAll()
	return nil
}

// undoRecord compensates one record on its owning shard, returning the
// next LSN in the transaction's backchain to undo. onCLR reports the
// appended CLR's LSN so the caller can maintain the backchain head.
func (r *run) undoRecord(txn wal.TxnID, prev wal.LSN, rec wal.Record, onCLR func(wal.LSN)) (wal.LSN, error) {
	clrLog := func(sh wal.ShardID, kind wal.CLRKind, table wal.TableID, key uint64, restore []byte, undoNext wal.LSN) func(pid storage.PageID) wal.LSN {
		return func(pid storage.PageID) wal.LSN {
			lsn := r.log.MustAppend(&wal.CLRRec{
				TxnID: txn, TableID: table, KeyVal: key,
				Kind: kind, RestoreVal: restore, PageID: pid, ShardID: sh,
				UndoNextLSN: undoNext, PrevLSN: prev,
			})
			r.met.CLRsWritten++
			onCLR(lsn)
			return lsn
		}
	}
	switch t := rec.(type) {
	case *wal.UpdateRec:
		sr, err := r.resolveShard(t.ShardID, t.KeyVal)
		if err != nil {
			return wal.NilLSN, err
		}
		err = sr.d.Update(t.TableID, t.KeyVal, t.OldVal,
			clrLog(sr.id, wal.CLRUndoUpdate, t.TableID, t.KeyVal, t.OldVal, t.PrevLSN))
		return t.PrevLSN, err
	case *wal.InsertRec:
		sr, err := r.resolveShard(t.ShardID, t.KeyVal)
		if err != nil {
			return wal.NilLSN, err
		}
		err = sr.d.Delete(t.TableID, t.KeyVal,
			clrLog(sr.id, wal.CLRUndoInsert, t.TableID, t.KeyVal, nil, t.PrevLSN))
		return t.PrevLSN, err
	case *wal.DeleteRec:
		sr, err := r.resolveShard(t.ShardID, t.KeyVal)
		if err != nil {
			return wal.NilLSN, err
		}
		err = sr.d.Insert(t.TableID, t.KeyVal, t.OldVal,
			clrLog(sr.id, wal.CLRUndoDelete, t.TableID, t.KeyVal, t.OldVal, t.PrevLSN))
		return t.PrevLSN, err
	case *wal.CLRRec:
		// Redo-only: skip over already-compensated work.
		return t.UndoNextLSN, nil
	case *wal.ShardMapRec:
		// The routing change of a loser migration never takes effect;
		// nothing to compensate.
		return t.PrevLSN, nil
	default:
		return wal.NilLSN, fmt.Errorf("unexpected %v record in backchain", rec.Type())
	}
}
