package core

import (
	"testing"

	"logrec/internal/engine"
	"logrec/internal/tracker"
	"logrec/internal/wal"
)

func TestMethodPredicates(t *testing.T) {
	cases := []struct {
		m                              Method
		logical, usesDPT, usesPrefetch bool
	}{
		{Log0, true, false, false},
		{Log1, true, true, false},
		{Log2, true, true, true},
		{SQL1, false, true, false},
		{SQL2, false, true, true},
	}
	for _, c := range cases {
		if c.m.IsLogical() != c.logical || c.m.UsesDPT() != c.usesDPT || c.m.UsesPrefetch() != c.usesPrefetch {
			t.Fatalf("%v predicates wrong", c.m)
		}
		if c.m.String() == "" {
			t.Fatalf("%v has no name", c.m)
		}
	}
	if len(Methods()) != 5 {
		t.Fatal("Methods() incomplete")
	}
}

func TestTxnTableLosers(t *testing.T) {
	tt := newTxnTable()
	tt.seed([]wal.ActiveTxn{{TxnID: 1, LastLSN: 100}, {TxnID: 2, LastLSN: 110}})
	// Txn 1 commits during the scan; txn 3 appears and stays open.
	tt.note(&wal.UpdateRec{TxnID: 3, PrevLSN: 0}, 200)
	tt.note(&wal.CommitRec{TxnID: 1, PrevLSN: 100}, 210)
	tt.note(&wal.UpdateRec{TxnID: 3, PrevLSN: 200}, 220)
	losers := tt.losers()
	if len(losers) != 2 {
		t.Fatalf("losers = %v", losers)
	}
	if losers[2] != 110 {
		t.Fatalf("seeded loser lastLSN = %v, want 110", losers[2])
	}
	if losers[3] != 220 {
		t.Fatalf("scanned loser lastLSN = %v, want 220", losers[3])
	}
	if tt.maxID != 3 {
		t.Fatalf("maxID = %d", tt.maxID)
	}
	// System records (txn 0) are ignored.
	tt.note(&wal.UpdateRec{TxnID: 0}, 300)
	if _, ok := tt.losers()[0]; ok {
		t.Fatal("system txn tracked as loser")
	}
}

// TestPrefetchStrategiesEquivalentResults: both Log2 prefetch sources
// must recover identical state; only timing differs.
func TestPrefetchStrategiesEquivalentResults(t *testing.T) {
	cfg := testConfig(300)
	cs, om := buildCrash(t, cfg, 2000, 100, 10, 30, 13, false)
	for _, s := range []PrefetchStrategy{PrefetchPFList, PrefetchDPTOrder} {
		opt := DefaultOptions(cfg)
		opt.PrefetchStrategy = s
		eng, met, err := Recover(cs, Log2, opt)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		verifyRecovered(t, Log2, eng, om)
		if met.PrefetchPages == 0 {
			t.Fatalf("%v issued no prefetch", s)
		}
	}
	if PrefetchPFList.String() == PrefetchDPTOrder.String() {
		t.Fatal("strategy names collide")
	}
}

// TestIndexPreloadToggle: disabling preload must still recover
// correctly, loading index pages on demand instead.
func TestIndexPreloadToggle(t *testing.T) {
	cfg := testConfig(300)
	cs, om := buildCrash(t, cfg, 2000, 100, 10, 30, 17, false)
	opt := DefaultOptions(cfg)
	opt.IndexPreload = false
	eng, met, err := Recover(cs, Log2, opt)
	if err != nil {
		t.Fatal(err)
	}
	verifyRecovered(t, Log2, eng, om)
	if met.IndexPageFetches == 0 {
		t.Fatal("no index fetches recorded")
	}
}

// TestRecoverOptionsDefaulting: zero-valued options are filled from the
// crash config.
func TestRecoverOptionsDefaulting(t *testing.T) {
	cfg := testConfig(300)
	cs, om := buildCrash(t, cfg, 1000, 50, 10, 20, 19, false)
	eng, _, err := Recover(cs, Log1, Options{DCConfig: cfg.DC})
	if err != nil {
		t.Fatal(err)
	}
	verifyRecovered(t, Log1, eng, om)
}

// TestRecoverSmallerCacheThanCrash: recovery may run with a different
// buffer pool size (a replica box with less memory).
func TestRecoverSmallerCacheThanCrash(t *testing.T) {
	cfg := testConfig(400)
	cs, om := buildCrash(t, cfg, 2000, 100, 10, 30, 23, false)
	opt := DefaultOptions(cfg)
	opt.CachePages = 64
	for _, m := range Methods() {
		eng, _, err := Recover(cs, m, opt)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		verifyRecovered(t, m, eng, om)
	}
}

// TestTailFallback verifies §4.3: records past the last ∆ record run in
// basic mode and are counted as tail; killing the tail (ForceEmit
// before crash) zeroes the count.
func TestTailFallback(t *testing.T) {
	cfg := testConfig(300)
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	om := make(oracle)
	if err := eng.Load(1500, func(k uint64) []byte {
		v := val(k, 0)
		om[k] = v
		return v
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		txn := eng.TC.Begin()
		staged := map[uint64][]byte{}
		for u := 0; u < 10; u++ {
			k := uint64((i*31 + u*7) % 1500)
			v := val(k, i+1)
			if err := eng.TC.Update(txn, cfg.TableID, k, v); err != nil {
				t.Fatal(err)
			}
			staged[k] = v
		}
		if err := eng.TC.Commit(txn); err != nil {
			t.Fatal(err)
		}
		for k, v := range staged {
			om[k] = v
		}
		if i == 20 {
			if err := eng.TC.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Updates since the last ∆ record form the tail.
	cs := eng.Crash()
	_, metWithTail, err := Recover(cs, Log1, DefaultOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if metWithTail.TailRecords == 0 {
		t.Fatal("expected a non-empty tail")
	}

	// Same workload, but close the interval right before the crash.
	eng2, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Load(1500, func(k uint64) []byte { return val(k, 0) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		txn := eng2.TC.Begin()
		for u := 0; u < 10; u++ {
			k := uint64((i*31 + u*7) % 1500)
			if err := eng2.TC.Update(txn, cfg.TableID, k, val(k, i+1)); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng2.TC.Commit(txn); err != nil {
			t.Fatal(err)
		}
		if i == 20 {
			if err := eng2.TC.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng2.DC.Recorder().ForceEmit()
	eng2.TC.SendEOSL()
	cs2 := eng2.Crash()
	_, metNoTail, err := Recover(cs2, Log1, DefaultOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if metNoTail.TailRecords != 0 {
		t.Fatalf("tail = %d after ForceEmit, want 0", metNoTail.TailRecords)
	}
}

// TestPerfectVariantScreensAtLeastAsWell: the Appendix D.1 perfect DPT
// must never admit more fetches than the standard one on the same
// workload randomness.
func TestPerfectVariantScreensAtLeastAsWell(t *testing.T) {
	run := func(v tracker.Variant) *Metrics {
		cfg := testConfig(300)
		cfg.DC.Tracker.Variant = v
		cs, _ := buildCrash(t, cfg, 2000, 120, 10, 30, 31, false)
		opt := DefaultOptions(cfg)
		_, met, err := Recover(cs, Log1, opt)
		if err != nil {
			t.Fatal(err)
		}
		return met
	}
	std := run(tracker.DeltaStandard)
	per := run(tracker.DeltaPerfect)
	if per.DataPageFetches > std.DataPageFetches {
		t.Fatalf("perfect fetched %d > standard %d", per.DataPageFetches, std.DataPageFetches)
	}
}

// TestRecoverUncheckpointedEngine: a crash before any checkpoint scans
// from the log start.
func TestRecoverUncheckpointedEngine(t *testing.T) {
	cfg := testConfig(300)
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	om := make(oracle)
	// Load takes the initial checkpoint; to simulate "no checkpoint",
	// use the raw DC path: load, enable logging, no Checkpoint call.
	if err := eng.DC.BulkLoad(500, func(k uint64) []byte {
		v := val(k, 0)
		om[k] = v
		return v
	}); err != nil {
		t.Fatal(err)
	}
	eng.DC.StartLogging()
	txn := eng.TC.Begin()
	if err := eng.TC.Update(txn, cfg.TableID, 5, []byte("no-ckpt-update-value")); err != nil {
		t.Fatal(err)
	}
	if err := eng.TC.Commit(txn); err != nil {
		t.Fatal(err)
	}
	om[5] = []byte("no-ckpt-update-value")
	cs := eng.Crash()
	if cs.LastEndCkpt != wal.NilLSN {
		t.Fatal("unexpected master record")
	}
	for _, m := range Methods() {
		rec, _, err := Recover(cs, m, DefaultOptions(cfg))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		verifyRecovered(t, m, rec, om)
	}
}
