package core

import (
	"math/rand"
	"testing"

	"logrec/internal/engine"
	"logrec/internal/storage"
)

// buildCrashWithSplits drives a mixed update+insert workload so the
// redo window contains SMO records: parallel redo must barrier on them
// and still reproduce the committed state exactly.
func buildCrashWithSplits(t *testing.T, cfg engine.Config, nRows, txns, opsPerTxn, ckptEvery int, seed int64) (*engine.CrashState, oracle) {
	t.Helper()
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	om := make(oracle, nRows)
	if err := eng.Load(nRows, func(k uint64) []byte {
		v := val(k, 0)
		om[k] = v
		return v
	}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	nextKey := uint64(nRows)
	for i := 0; i < txns; i++ {
		txn := eng.TC.Begin()
		staged := make(map[uint64][]byte)
		for u := 0; u < opsPerTxn; u++ {
			if rng.Intn(3) == 0 {
				// Insert a fresh key: sequential inserts at the right
				// edge force leaf splits (SMO records) mid-window.
				k := nextKey
				nextKey++
				v := val(k, i+1)
				if err := eng.TC.Insert(txn, cfg.TableID, k, v); err != nil {
					t.Fatalf("txn %d insert: %v", i, err)
				}
				staged[k] = v
				continue
			}
			k := uint64(rng.Intn(nRows))
			v := val(k, i+1)
			if err := eng.TC.Update(txn, cfg.TableID, k, v); err != nil {
				t.Fatalf("txn %d update: %v", i, err)
			}
			staged[k] = v
		}
		if err := eng.TC.Commit(txn); err != nil {
			t.Fatal(err)
		}
		for k, v := range staged {
			om[k] = v
		}
		if ckptEvery > 0 && (i+1)%ckptEvery == 0 {
			if err := eng.TC.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A loser transaction so parallel runs also feed the undo pass.
	txn := eng.TC.Begin()
	for u := 0; u < opsPerTxn; u++ {
		k := uint64(rng.Intn(nRows))
		if err := eng.TC.Update(txn, cfg.TableID, k, []byte("UNCOMMITTED-GARBAGE-value")); err != nil {
			t.Fatal(err)
		}
	}
	eng.TC.SendEOSL()
	return eng.Crash(), om
}

// TestParallelRedoMatchesOracle recovers the same crash under every
// method at several worker counts and checks each run reproduces the
// serial result: the committed state, a well-formed tree, and the same
// redo-window record count.
func TestParallelRedoMatchesOracle(t *testing.T) {
	cfg := testConfig(300)
	cs, om := buildCrashWithSplits(t, cfg, 2000, 150, 8, 40, 7)
	opt := DefaultOptions(cfg)

	for _, m := range Methods() {
		serialOpt := opt
		eng, serialMet, err := Recover(cs, m, serialOpt)
		if err != nil {
			t.Fatalf("%v serial: %v", m, err)
		}
		verifyRecovered(t, m, eng, om)

		for _, workers := range []int{2, 4} {
			popt := opt
			popt.RedoWorkers = workers
			eng, met, err := Recover(cs, m, popt)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", m, workers, err)
			}
			verifyRecovered(t, m, eng, om)
			if met.RedoWorkers != workers {
				t.Errorf("%v: RedoWorkers = %d, want %d", m, met.RedoWorkers, workers)
			}
			if met.RedoRecords != serialMet.RedoRecords {
				t.Errorf("%v workers=%d: RedoRecords = %d, serial saw %d",
					m, workers, met.RedoRecords, serialMet.RedoRecords)
			}
			if met.Applied == 0 {
				t.Errorf("%v workers=%d: no records applied", m, workers)
			}
			if m.IsLogical() {
				// dcPass replays SMOs before redo starts; the pipeline
				// never barriers.
				if met.SMOBarriers != 0 {
					t.Errorf("%v workers=%d: %d SMO barriers in logical redo",
						m, workers, met.SMOBarriers)
				}
				continue
			}
			// SQL family: the split-heavy window must have replayed SMOs
			// under barriers, each pausing at most the shards owning the
			// SMO's pages (TestBarrierShardScope checks the scoping
			// precisely).
			if met.SMOBarriers == 0 {
				t.Errorf("%v workers=%d: no SMO barriers in a split-heavy window", m, workers)
			}
			if met.BarrierWorkersPaused <= 0 || met.BarrierWorkersPaused > met.SMOBarriers*int64(workers) {
				t.Errorf("%v workers=%d: %d worker pauses over %d barriers out of range",
					m, workers, met.BarrierWorkersPaused, met.SMOBarriers)
			}
		}
	}
}

// TestBarrierShardScope drives the worker pool's pause primitive
// directly: a barrier names only the shards that own its pages, an
// epoch increments per barrier, and a nil page set means a global
// pause.
func TestBarrierShardScope(t *testing.T) {
	eng, err := engine.New(testConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(100, func(k uint64) []byte { return val(k, 0) }); err != nil {
		t.Fatal(err)
	}
	sr := &shardRun{r: &run{}, id: 0, d: eng.DC}
	pool := newShardedPool(4)

	// On shard 0, pages 8 and 12 both map to worker 0; 5 maps to worker 1.
	release, paused := pool.pause(sr, []storage.PageID{8, 12})
	release()
	if paused != 1 {
		t.Errorf("pause({8,12}): paused %d workers, want 1 (one worker)", paused)
	}
	release, paused = pool.pause(sr, []storage.PageID{8, 5})
	release()
	if paused != 2 {
		t.Errorf("pause({8,5}): paused %d workers, want 2", paused)
	}
	release, paused = pool.pause(nil, nil)
	release()
	if paused != 4 {
		t.Errorf("pause(nil): paused %d workers, want 4 (global)", paused)
	}
	if pool.epoch != 3 {
		t.Errorf("epoch = %d after 3 barriers, want 3", pool.epoch)
	}
	if _, err := pool.finish(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelRedoRealIO exercises the wall-clock IO path: the forked
// disk sleeps scaled latencies, workers overlap them, and the recovered
// state must still match the oracle.
func TestParallelRedoRealIO(t *testing.T) {
	cfg := testConfig(300)
	cs, om := buildCrashWithSplits(t, cfg, 1500, 80, 8, 30, 11)
	opt := DefaultOptions(cfg)
	opt.RealIOScale = 4000 // 4ms seek → 1µs sleep: fast but real
	for _, m := range []Method{Log0, Log2, SQL1} {
		for _, workers := range []int{1, 4} {
			popt := opt
			popt.RedoWorkers = workers
			eng, met, err := Recover(cs, m, popt)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", m, workers, err)
			}
			verifyRecovered(t, m, eng, om)
			if met.WallRedoTime <= 0 {
				t.Errorf("%v workers=%d: WallRedoTime not measured", m, workers)
			}
		}
	}
}
