package page

import (
	"math/rand"
	"testing"
)

func BenchmarkInsert(b *testing.B) {
	data := make([]byte, 4096)
	p := Format(data, TypeLeaf)
	val := make([]byte, 92)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.FreeSpace() < CellSize(len(val)) {
			p = Format(data, TypeLeaf)
		}
		if err := p.Insert(uint64(i), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	p := Format(make([]byte, 4096), TypeLeaf)
	val := make([]byte, 92)
	var keys []uint64
	for k := uint64(0); ; k++ {
		if err := p.Insert(k*3, val); err != nil {
			break
		}
		keys = append(keys, k*3)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[rng.Intn(len(keys))]
		if _, found := p.Search(k); !found {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkUpdateInPlace(b *testing.B) {
	p := Format(make([]byte, 4096), TypeLeaf)
	val := make([]byte, 92)
	for k := uint64(0); k < 30; k++ {
		if err := p.Insert(k, val); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Update(uint64(i%30), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompact(b *testing.B) {
	template := Format(make([]byte, 4096), TypeLeaf)
	val := make([]byte, 40)
	for k := uint64(0); k < 60; k++ {
		if err := template.Insert(k, val); err != nil {
			break
		}
	}
	for k := uint64(0); k < 60; k += 2 {
		_ = template.Delete(k)
	}
	scratch := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, template.Bytes())
		Wrap(scratch).Compact()
	}
}

func BenchmarkSplitInto(b *testing.B) {
	template := Format(make([]byte, 4096), TypeLeaf)
	val := make([]byte, 92)
	for k := uint64(0); ; k++ {
		if err := template.Insert(k, val); err != nil {
			break
		}
	}
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(src, template.Bytes())
		if _, err := Wrap(src).SplitInto(Format(dst, TypeLeaf)); err != nil {
			b.Fatal(err)
		}
	}
}
