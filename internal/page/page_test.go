package page

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

const testPageSize = 1024

func newLeaf(t *testing.T) *Page {
	t.Helper()
	return Format(make([]byte, testPageSize), TypeLeaf)
}

func TestFormatEmpty(t *testing.T) {
	p := newLeaf(t)
	if p.NumSlots() != 0 {
		t.Fatalf("new page has %d slots, want 0", p.NumSlots())
	}
	if p.Type() != TypeLeaf {
		t.Fatalf("type = %v, want leaf", p.Type())
	}
	if p.LSN() != 0 {
		t.Fatalf("pLSN = %d, want 0", p.LSN())
	}
	if err := p.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	want := testPageSize - headerSize - slotSize
	if got := p.FreeSpace(); got != want {
		t.Fatalf("FreeSpace = %d, want %d", got, want)
	}
}

func TestInsertSearch(t *testing.T) {
	p := newLeaf(t)
	keys := []uint64{50, 10, 30, 20, 40}
	for _, k := range keys {
		if err := p.Insert(k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if p.NumSlots() != len(keys) {
		t.Fatalf("NumSlots = %d, want %d", p.NumSlots(), len(keys))
	}
	// Slots must be in sorted key order.
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i, k := range keys {
		if got := p.KeyAt(i); got != k {
			t.Fatalf("KeyAt(%d) = %d, want %d", i, got, k)
		}
		idx, found := p.Search(k)
		if !found || idx != i {
			t.Fatalf("Search(%d) = (%d,%v), want (%d,true)", k, idx, found, i)
		}
		if got := string(p.ValueAt(i)); got != fmt.Sprintf("v%d", k) {
			t.Fatalf("ValueAt(%d) = %q", i, got)
		}
	}
	if err := p.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestInsertDuplicate(t *testing.T) {
	p := newLeaf(t)
	if err := p.Insert(7, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert(7, []byte("b")); !errors.Is(err, ErrKeyExists) {
		t.Fatalf("duplicate insert: err = %v, want ErrKeyExists", err)
	}
}

func TestSearchMissing(t *testing.T) {
	p := newLeaf(t)
	for _, k := range []uint64{10, 20, 30} {
		if err := p.Insert(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	idx, found := p.Search(25)
	if found || idx != 2 {
		t.Fatalf("Search(25) = (%d,%v), want (2,false)", idx, found)
	}
	idx, found = p.Search(5)
	if found || idx != 0 {
		t.Fatalf("Search(5) = (%d,%v), want (0,false)", idx, found)
	}
	idx, found = p.Search(99)
	if found || idx != 3 {
		t.Fatalf("Search(99) = (%d,%v), want (3,false)", idx, found)
	}
}

func TestUpdateSameSize(t *testing.T) {
	p := newLeaf(t)
	if err := p.Insert(1, []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := p.Update(1, []byte("bbbb")); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if got := string(p.ValueAt(0)); got != "bbbb" {
		t.Fatalf("value = %q, want bbbb", got)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateResize(t *testing.T) {
	p := newLeaf(t)
	if err := p.Insert(1, []byte("short")); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert(2, []byte("other")); err != nil {
		t.Fatal(err)
	}
	long := bytes.Repeat([]byte("x"), 100)
	if err := p.Update(1, long); err != nil {
		t.Fatalf("grow update: %v", err)
	}
	if !bytes.Equal(p.ValueAt(0), long) {
		t.Fatal("grown value mismatch")
	}
	if err := p.Update(1, []byte("y")); err != nil {
		t.Fatalf("shrink update: %v", err)
	}
	if got := string(p.ValueAt(0)); got != "y" {
		t.Fatalf("shrunk value = %q", got)
	}
	if got := string(p.ValueAt(1)); got != "other" {
		t.Fatalf("neighbour disturbed: %q", got)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateMissing(t *testing.T) {
	p := newLeaf(t)
	if err := p.Update(42, []byte("v")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestDelete(t *testing.T) {
	p := newLeaf(t)
	for k := uint64(0); k < 10; k++ {
		if err := p.Insert(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Delete(5); err != nil {
		t.Fatal(err)
	}
	if _, found := p.Search(5); found {
		t.Fatal("key 5 still present after delete")
	}
	if p.NumSlots() != 9 {
		t.Fatalf("NumSlots = %d, want 9", p.NumSlots())
	}
	if err := p.Delete(5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v, want ErrNotFound", err)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPageFull(t *testing.T) {
	p := newLeaf(t)
	val := bytes.Repeat([]byte("v"), 100)
	var n uint64
	for {
		if err := p.Insert(n, val); err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		n++
	}
	if n == 0 {
		t.Fatal("no inserts fit")
	}
	// Page must still be intact.
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	if uint64(p.NumSlots()) != n {
		t.Fatalf("NumSlots = %d, want %d", p.NumSlots(), n)
	}
}

func TestCompactionReclaimsFragmentedSpace(t *testing.T) {
	p := newLeaf(t)
	val := bytes.Repeat([]byte("v"), 60)
	var keys []uint64
	for k := uint64(0); ; k++ {
		if err := p.Insert(k, val); err != nil {
			break
		}
		keys = append(keys, k)
	}
	// Delete every other key to fragment the heap.
	for i := 0; i < len(keys); i += 2 {
		if err := p.Delete(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	// A large insert now only fits via compaction.
	big := bytes.Repeat([]byte("w"), 200)
	if err := p.Insert(1_000_000, big); err != nil {
		t.Fatalf("insert after fragmentation: %v", err)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	idx, found := p.Search(1_000_000)
	if !found || !bytes.Equal(p.ValueAt(idx), big) {
		t.Fatal("compacted insert lost data")
	}
	// Survivors unaffected.
	for i := 1; i < len(keys); i += 2 {
		idx, found := p.Search(keys[i])
		if !found || !bytes.Equal(p.ValueAt(idx), val) {
			t.Fatalf("survivor %d corrupted", keys[i])
		}
	}
}

func TestUpdateGrowTooLargeLeavesPageIntact(t *testing.T) {
	p := newLeaf(t)
	val := bytes.Repeat([]byte("v"), 100)
	var n uint64
	for {
		if err := p.Insert(n, val); err != nil {
			break
		}
		n++
	}
	huge := bytes.Repeat([]byte("h"), testPageSize)
	if err := p.Update(0, huge); !errors.Is(err, ErrPageFull) {
		t.Fatalf("err = %v, want ErrPageFull", err)
	}
	// Original value restored.
	idx, found := p.Search(0)
	if !found || !bytes.Equal(p.ValueAt(idx), val) {
		t.Fatal("failed grow-update lost the original value")
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitInto(t *testing.T) {
	p := newLeaf(t)
	val := bytes.Repeat([]byte("v"), 40)
	var keys []uint64
	for k := uint64(0); ; k += 2 {
		if err := p.Insert(k, val); err != nil {
			break
		}
		keys = append(keys, k)
	}
	dst := newLeaf(t)
	sep, err := p.SplitInto(dst)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSlots()+dst.NumSlots() != len(keys) {
		t.Fatalf("cells lost: %d + %d != %d", p.NumSlots(), dst.NumSlots(), len(keys))
	}
	if got := dst.KeyAt(0); got != sep {
		t.Fatalf("separator %d != first right key %d", sep, got)
	}
	if p.KeyAt(p.NumSlots()-1) >= sep {
		t.Fatal("left page has keys >= separator")
	}
	for _, pg := range []*Page{p, dst} {
		if err := pg.Check(); err != nil {
			t.Fatal(err)
		}
	}
	// All keys present in exactly one half.
	for _, k := range keys {
		_, inL := p.Search(k)
		_, inR := dst.Search(k)
		if inL == inR {
			t.Fatalf("key %d: inLeft=%v inRight=%v", k, inL, inR)
		}
	}
}

func TestLSNRoundTrip(t *testing.T) {
	p := newLeaf(t)
	p.SetLSN(0xDEADBEEF12345678)
	if got := p.LSN(); got != 0xDEADBEEF12345678 {
		t.Fatalf("LSN = %#x", got)
	}
	// LSN must survive re-wrapping (persistence round trip).
	q := Wrap(p.Bytes())
	if got := q.LSN(); got != 0xDEADBEEF12345678 {
		t.Fatalf("wrapped LSN = %#x", got)
	}
}

func TestExtraRoundTrip(t *testing.T) {
	p := newLeaf(t)
	p.SetExtra(424242)
	if got := p.Extra(); got != 424242 {
		t.Fatalf("Extra = %d", got)
	}
}

// TestQuickRandomOps drives a page with random insert/update/delete
// against a map model and verifies contents and invariants throughout.
func TestQuickRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Format(make([]byte, testPageSize), TypeLeaf)
		model := make(map[uint64][]byte)
		for op := 0; op < 300; op++ {
			k := uint64(rng.Intn(40))
			switch rng.Intn(3) {
			case 0: // insert
				v := make([]byte, rng.Intn(30)+1)
				rng.Read(v)
				err := p.Insert(k, v)
				_, exists := model[k]
				switch {
				case exists && !errors.Is(err, ErrKeyExists):
					t.Logf("insert existing %d: err=%v", k, err)
					return false
				case !exists && err == nil:
					model[k] = v
				case !exists && errors.Is(err, ErrPageFull):
					// acceptable
				case !exists && err != nil:
					t.Logf("insert %d: %v", k, err)
					return false
				}
			case 1: // update
				v := make([]byte, rng.Intn(30)+1)
				rng.Read(v)
				err := p.Update(k, v)
				_, exists := model[k]
				switch {
				case !exists && !errors.Is(err, ErrNotFound):
					t.Logf("update missing %d: err=%v", k, err)
					return false
				case exists && err == nil:
					model[k] = v
				case exists && errors.Is(err, ErrPageFull):
					// value keeps old content
				case exists && err != nil:
					t.Logf("update %d: %v", k, err)
					return false
				}
			case 2: // delete
				err := p.Delete(k)
				_, exists := model[k]
				if exists != (err == nil) {
					t.Logf("delete %d: exists=%v err=%v", k, exists, err)
					return false
				}
				delete(model, k)
			}
			if err := p.Check(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		// Final content equivalence.
		if p.NumSlots() != len(model) {
			t.Logf("slot count %d != model %d", p.NumSlots(), len(model))
			return false
		}
		for k, v := range model {
			idx, found := p.Search(k)
			if !found || !bytes.Equal(p.ValueAt(idx), v) {
				t.Logf("content mismatch at key %d", k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCellSize(t *testing.T) {
	if CellSize(0) != 8 || CellSize(100) != 108 {
		t.Fatalf("CellSize wrong: %d %d", CellSize(0), CellSize(100))
	}
}
