// Package page implements the slotted page format shared by B-tree leaf
// and internal pages and the database metadata page.
//
// Layout (all integers big-endian):
//
//	offset  size  field
//	0       8     pLSN — LSN of the last operation applied to the page
//	8       1     page type (leaf / internal / meta)
//	9       1     flags (unused)
//	10      2     nslots
//	12      2     heapOff — offset of the lowest heap byte in use
//	14      2     freeBytes — reclaimable fragmented bytes in the heap
//	16      4     extra — leaf: right-sibling PID; internal: leftmost child PID
//	20      4     reserved
//	24      4*n   slot array: per slot {cellOff u16, cellLen u16}
//	...           free space
//	heapOff ...   heap cells, each [key u64][value bytes], growing downward
//
// Slots are kept sorted by key, so lookups are binary searches and
// in-order iteration is a slot-array walk. The page never moves cells on
// delete; it tracks reclaimable bytes and compacts lazily when an insert
// needs contiguous space that exists only fragmented.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Type discriminates page roles.
type Type uint8

// Page types.
const (
	TypeInvalid  Type = 0
	TypeLeaf     Type = 1
	TypeInternal Type = 2
	TypeMeta     Type = 3
)

func (t Type) String() string {
	switch t {
	case TypeLeaf:
		return "leaf"
	case TypeInternal:
		return "internal"
	case TypeMeta:
		return "meta"
	default:
		return fmt.Sprintf("page-type(%d)", uint8(t))
	}
}

const (
	headerSize = 24
	slotSize   = 4
	cellKeyLen = 8
)

// Errors returned by page operations.
var (
	// ErrPageFull indicates the page lacks space for the cell even
	// after compaction.
	ErrPageFull = errors.New("page: full")
	// ErrKeyExists indicates an insert of a key already present.
	ErrKeyExists = errors.New("page: key exists")
	// ErrNotFound indicates the key is not on the page.
	ErrNotFound = errors.New("page: key not found")
	// ErrCorrupt indicates the page failed a structural check.
	ErrCorrupt = errors.New("page: corrupt")
)

// Page is a view over a fixed-size byte slice. It never allocates page
// memory itself; the buffer pool owns frame storage.
type Page struct {
	data []byte
}

// Format initialises data in place as an empty page of type t and
// returns the view.
func Format(data []byte, t Type) *Page {
	for i := range data {
		data[i] = 0
	}
	p := &Page{data: data}
	p.data[8] = byte(t)
	p.setNSlots(0)
	p.setHeapOff(uint16(len(data)))
	p.setFreeBytes(0)
	return p
}

// Wrap views existing bytes as a page without validation. Use Check for
// structural validation.
func Wrap(data []byte) *Page { return &Page{data: data} }

// Bytes returns the underlying storage of the page.
func (p *Page) Bytes() []byte { return p.data }

// Size returns the page size in bytes.
func (p *Page) Size() int { return len(p.data) }

// LSN returns the page LSN (pLSN) — the LSN of the latest operation
// that updated the page (§2.2).
func (p *Page) LSN() uint64 { return binary.BigEndian.Uint64(p.data[0:]) }

// SetLSN records the LSN of an operation just applied.
func (p *Page) SetLSN(lsn uint64) { binary.BigEndian.PutUint64(p.data[0:], lsn) }

// Type returns the page type tag.
func (p *Page) Type() Type { return Type(p.data[8]) }

// NumSlots returns the number of cells on the page.
func (p *Page) NumSlots() int { return int(binary.BigEndian.Uint16(p.data[10:])) }

func (p *Page) setNSlots(n uint16) { binary.BigEndian.PutUint16(p.data[10:], n) }

func (p *Page) heapOff() uint16     { return binary.BigEndian.Uint16(p.data[12:]) }
func (p *Page) setHeapOff(v uint16) { binary.BigEndian.PutUint16(p.data[12:], v) }

func (p *Page) freeBytes() uint16     { return binary.BigEndian.Uint16(p.data[14:]) }
func (p *Page) setFreeBytes(v uint16) { binary.BigEndian.PutUint16(p.data[14:], v) }

// Extra returns the role-specific header word: the right-sibling PID for
// leaves, the leftmost-child PID for internal pages.
func (p *Page) Extra() uint32 { return binary.BigEndian.Uint32(p.data[16:]) }

// SetExtra stores the role-specific header word.
func (p *Page) SetExtra(v uint32) { binary.BigEndian.PutUint32(p.data[16:], v) }

func (p *Page) slot(i int) (off, length int) {
	base := headerSize + i*slotSize
	return int(binary.BigEndian.Uint16(p.data[base:])),
		int(binary.BigEndian.Uint16(p.data[base+2:]))
}

func (p *Page) setSlot(i, off, length int) {
	base := headerSize + i*slotSize
	binary.BigEndian.PutUint16(p.data[base:], uint16(off))
	binary.BigEndian.PutUint16(p.data[base+2:], uint16(length))
}

// KeyAt returns the key of slot i. It panics on out-of-range i, which is
// always a caller bug.
func (p *Page) KeyAt(i int) uint64 {
	off, _ := p.slot(i)
	return binary.BigEndian.Uint64(p.data[off:])
}

// ValueAt returns the value bytes of slot i. The returned slice aliases
// page memory; callers must copy before retaining.
func (p *Page) ValueAt(i int) []byte {
	off, length := p.slot(i)
	return p.data[off+cellKeyLen : off+length]
}

// Search locates key: it returns the slot index where key is or would
// be inserted, and whether it was found.
func (p *Page) Search(key uint64) (int, bool) {
	n := p.NumSlots()
	i := sort.Search(n, func(j int) bool { return p.KeyAt(j) >= key })
	return i, i < n && p.KeyAt(i) == key
}

// contiguousFree is the gap between the slot array end and heap start.
func (p *Page) contiguousFree() int {
	return int(p.heapOff()) - (headerSize + p.NumSlots()*slotSize)
}

// FreeSpace returns the bytes available for one new cell of any size,
// counting fragmented heap bytes (reachable via compaction) but
// reserving the new cell's slot entry.
func (p *Page) FreeSpace() int {
	free := p.contiguousFree() + int(p.freeBytes()) - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// CellSize returns the heap bytes a value of length n occupies.
func CellSize(n int) int { return cellKeyLen + n }

// Insert adds (key, val). It returns ErrKeyExists if key is present and
// ErrPageFull if the cell cannot fit even after compaction.
func (p *Page) Insert(key uint64, val []byte) error {
	idx, found := p.Search(key)
	if found {
		return fmt.Errorf("%w: %d", ErrKeyExists, key)
	}
	return p.insertAt(idx, key, val)
}

func (p *Page) insertAt(idx int, key uint64, val []byte) error {
	cell := CellSize(len(val))
	if cell+slotSize > p.contiguousFree() {
		if cell+slotSize > p.contiguousFree()+int(p.freeBytes()) {
			return fmt.Errorf("%w: need %d bytes, have %d", ErrPageFull,
				cell+slotSize, p.contiguousFree()+int(p.freeBytes()))
		}
		p.Compact()
	}
	// Carve the cell from the heap.
	newHeap := int(p.heapOff()) - cell
	off := newHeap
	binary.BigEndian.PutUint64(p.data[off:], key)
	copy(p.data[off+cellKeyLen:], val)
	p.setHeapOff(uint16(newHeap))
	// Shift slots [idx, n) right by one.
	n := p.NumSlots()
	base := headerSize + idx*slotSize
	end := headerSize + n*slotSize
	copy(p.data[base+slotSize:end+slotSize], p.data[base:end])
	p.setSlot(idx, off, cell)
	p.setNSlots(uint16(n + 1))
	return nil
}

// Update replaces the value of key. If the new value has the same
// length, it overwrites in place; otherwise the cell is reallocated.
// It returns ErrNotFound if key is absent, ErrPageFull if a larger
// value cannot fit.
func (p *Page) Update(key uint64, val []byte) error {
	idx, found := p.Search(key)
	if !found {
		return fmt.Errorf("%w: %d", ErrNotFound, key)
	}
	off, length := p.slot(idx)
	if CellSize(len(val)) == length {
		copy(p.data[off+cellKeyLen:off+length], val)
		return nil
	}
	// Reallocate: delete then insert at the same position. If the
	// re-insert fails, restore the old cell so the page is unchanged.
	old := make([]byte, length-cellKeyLen)
	copy(old, p.data[off+cellKeyLen:off+length])
	p.deleteAt(idx)
	if err := p.insertAt(idx, key, val); err != nil {
		if rerr := p.insertAt(idx, key, old); rerr != nil {
			// Space for the original cell was just released, so
			// reinsertion cannot fail; treat failure as corruption.
			panic(fmt.Sprintf("page: lost cell during failed update: %v", rerr))
		}
		return err
	}
	return nil
}

// Delete removes key. It returns ErrNotFound if absent.
func (p *Page) Delete(key uint64) error {
	idx, found := p.Search(key)
	if !found {
		return fmt.Errorf("%w: %d", ErrNotFound, key)
	}
	p.deleteAt(idx)
	return nil
}

func (p *Page) deleteAt(idx int) {
	n := p.NumSlots()
	off, length := p.slot(idx)
	if off == int(p.heapOff()) {
		// Cell sits at the heap frontier: release it directly.
		p.setHeapOff(uint16(off + length))
	} else {
		p.setFreeBytes(p.freeBytes() + uint16(length))
	}
	base := headerSize + idx*slotSize
	end := headerSize + n*slotSize
	copy(p.data[base:], p.data[base+slotSize:end])
	p.setNSlots(uint16(n - 1))
}

// Compact rewrites the heap to be contiguous, reclaiming fragmented
// bytes. Slot order and page contents are unchanged.
func (p *Page) Compact() {
	n := p.NumSlots()
	type cell struct {
		idx, off, length int
	}
	cells := make([]cell, 0, n)
	for i := 0; i < n; i++ {
		off, length := p.slot(i)
		cells = append(cells, cell{i, off, length})
	}
	// Rewrite cells from the page end downward in descending offset
	// order so moves never overwrite unread data (cells only move up).
	sort.Slice(cells, func(i, j int) bool { return cells[i].off > cells[j].off })
	heap := len(p.data)
	for _, c := range cells {
		heap -= c.length
		copy(p.data[heap:heap+c.length], p.data[c.off:c.off+c.length])
		p.setSlot(c.idx, heap, c.length)
	}
	p.setHeapOff(uint16(heap))
	p.setFreeBytes(0)
}

// SplitInto moves the upper half of p's cells into dst (an empty,
// formatted page of the same type) and returns the first key of dst —
// the separator to install in the parent. The paper's SMO logging wraps
// this operation (§4).
func (p *Page) SplitInto(dst *Page) (uint64, error) {
	n := p.NumSlots()
	if n < 2 {
		return 0, fmt.Errorf("%w: split of page with %d cells", ErrCorrupt, n)
	}
	mid := n / 2
	sep := p.KeyAt(mid)
	for i := mid; i < n; i++ {
		if err := dst.Insert(p.KeyAt(i), p.ValueAt(i)); err != nil {
			return 0, fmt.Errorf("split move: %w", err)
		}
	}
	// Remove moved cells from p, highest first so indices stay valid.
	for i := n - 1; i >= mid; i-- {
		p.deleteAt(i)
	}
	p.Compact()
	return sep, nil
}

// Check validates structural invariants: sorted unique keys, cells
// within the heap, and a consistent free-byte account. It returns nil
// for a healthy page.
func (p *Page) Check() error {
	if len(p.data) < headerSize {
		return fmt.Errorf("%w: page smaller than header", ErrCorrupt)
	}
	n := p.NumSlots()
	if headerSize+n*slotSize > int(p.heapOff()) {
		return fmt.Errorf("%w: slot array overlaps heap", ErrCorrupt)
	}
	used := 0
	var prev uint64
	for i := 0; i < n; i++ {
		off, length := p.slot(i)
		if off < int(p.heapOff()) || off+length > len(p.data) || length < cellKeyLen {
			return fmt.Errorf("%w: slot %d cell out of bounds", ErrCorrupt, i)
		}
		used += length
		k := p.KeyAt(i)
		if i > 0 && k <= prev {
			return fmt.Errorf("%w: keys out of order at slot %d (%d after %d)", ErrCorrupt, i, k, prev)
		}
		prev = k
	}
	heapBytes := len(p.data) - int(p.heapOff())
	if used+int(p.freeBytes()) != heapBytes {
		return fmt.Errorf("%w: heap accounting: used %d + free %d != heap %d",
			ErrCorrupt, used, p.freeBytes(), heapBytes)
	}
	return nil
}
