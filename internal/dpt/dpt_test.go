package dpt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"logrec/internal/storage"
	"logrec/internal/wal"
)

func TestAddFirstMentionFixesRLSN(t *testing.T) {
	tab := New()
	tab.Add(7, 100)
	tab.Add(7, 200)
	tab.Add(7, 300)
	e := tab.Find(7)
	if e == nil {
		t.Fatal("entry missing")
	}
	if e.RLSN != 100 {
		t.Fatalf("rLSN = %v, want 100 (first mention)", e.RLSN)
	}
	if e.LastLSN != 300 {
		t.Fatalf("lastLSN = %v, want 300 (latest mention)", e.LastLSN)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestAddIgnoresStaleLastLSN(t *testing.T) {
	tab := New()
	tab.Add(7, 300)
	tab.Add(7, 100) // out-of-order mention must not regress lastLSN
	e := tab.Find(7)
	if e.LastLSN != 300 {
		t.Fatalf("lastLSN = %v, want 300", e.LastLSN)
	}
}

func TestFindMissing(t *testing.T) {
	tab := New()
	if tab.Find(9) != nil {
		t.Fatal("found entry in empty table")
	}
}

func TestRemove(t *testing.T) {
	tab := New()
	tab.Add(1, 10)
	tab.Remove(1)
	if tab.Find(1) != nil || tab.Len() != 0 {
		t.Fatal("entry survived Remove")
	}
	tab.Remove(1) // idempotent
}

func TestPIDsSorted(t *testing.T) {
	tab := New()
	for _, pid := range []storage.PageID{9, 3, 7, 1} {
		tab.Add(pid, 5)
	}
	pids := tab.PIDs()
	want := []storage.PageID{1, 3, 7, 9}
	for i, pid := range pids {
		if pid != want[i] {
			t.Fatalf("PIDs = %v, want %v", pids, want)
		}
	}
}

func TestEntriesByRLSN(t *testing.T) {
	tab := New()
	tab.Add(1, 300)
	tab.Add(2, 100)
	tab.Add(3, 200)
	es := tab.EntriesByRLSN()
	if es[0].PID != 2 || es[1].PID != 3 || es[2].PID != 1 {
		t.Fatalf("order = %d,%d,%d", es[0].PID, es[1].PID, es[2].PID)
	}
}

// TestPruneInclusiveVsStrict checks the Algorithm 3 / Algorithm 4
// comparison difference: the inclusive prune (SQL, real LSNs) removes
// lastLSN == FW-LSN entries; the strict prune (∆ analysis, sentinel
// LSNs) keeps them.
func TestPruneInclusiveVsStrict(t *testing.T) {
	build := func() *Table {
		tab := New()
		tab.Add(1, 50)  // lastLSN 50  < FW → removed by both
		tab.Add(2, 100) // lastLSN 100 = FW → removed only by inclusive
		tab.Add(3, 50)  // rLSN 50 ...
		tab.Add(3, 150) // ... lastLSN 150 > FW → kept; rLSN raised to FW
		return tab
	}
	written := []storage.PageID{1, 2, 3}

	inc := build()
	inc.PruneFlushed(written, 100, true)
	if inc.Find(1) != nil || inc.Find(2) != nil {
		t.Fatal("inclusive prune kept flushed entries")
	}
	if e := inc.Find(3); e == nil || e.RLSN != 100 {
		t.Fatalf("survivor rLSN = %+v, want raised to 100", inc.Find(3))
	}

	strict := build()
	strict.PruneFlushed(written, 100, false)
	if strict.Find(1) != nil {
		t.Fatal("strict prune kept entry below FW-LSN")
	}
	if strict.Find(2) == nil {
		t.Fatal("strict prune removed the lastLSN == FW-LSN sentinel entry (would lose a dirty page)")
	}
	if e := strict.Find(2); e.RLSN != 100 {
		t.Fatalf("sentinel entry rLSN = %v, want raised to 100", e.RLSN)
	}
}

func TestPruneIgnoresUnknownPIDs(t *testing.T) {
	tab := New()
	tab.Add(1, 10)
	tab.PruneFlushed([]storage.PageID{99}, 1000, true)
	if tab.Len() != 1 {
		t.Fatal("prune of unknown PID changed the table")
	}
}

// TestQuickRLSNNeverExceedsFirstMention is the DPT safety half the
// table itself can guarantee: however Adds and Prunes interleave, an
// entry's rLSN never exceeds any LSN later used to re-Add it... i.e. the
// rLSN only moves via first-mention or a flush that covered the page.
func TestQuickRLSNNeverExceedsFirstMention(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := New()
		// firstAfterClean[pid] = LSN of the first Add after the page
		// was last removed (i.e. flushed clean) — the true rLSN bound.
		firstAfterClean := make(map[storage.PageID]wal.LSN)
		lsn := wal.LSN(100)
		for op := 0; op < 400; op++ {
			pid := storage.PageID(rng.Intn(20))
			lsn += wal.LSN(rng.Intn(10) + 1)
			if rng.Intn(4) != 0 {
				tab.Add(pid, lsn)
				if _, ok := firstAfterClean[pid]; !ok {
					firstAfterClean[pid] = lsn
				}
			} else {
				// A flush report covering everything up to now: pages
				// flushed at this instant are clean.
				tab.PruneFlushed([]storage.PageID{pid}, lsn, true)
				if e := tab.Find(pid); e == nil {
					delete(firstAfterClean, pid)
				}
			}
			// Invariant: rLSN ≤ first-dirtying LSN is the DPT safety
			// direction rLSN must respect *downward*; here we verify
			// the table never pushes rLSN above lastLSN.
			for _, e := range tab.EntriesByRLSN() {
				if e.RLSN > e.LastLSN {
					t.Logf("seed %d: rLSN %v > lastLSN %v", seed, e.RLSN, e.LastLSN)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
