// Package dpt implements the dirty page table of §3 of the paper: a
// conservative approximation of the dirty part of the buffer pool at
// the time of a crash, used to optimise the redo test.
//
// A DPT entry is (PID, rLSN, lastLSN): rLSN approximates (from below,
// never above) the LSN of the first operation that dirtied the page;
// lastLSN is the LSN of the last operation observed for the page and is
// used only while constructing the table.
//
// Safety (§3): every page actually dirty at the crash must appear in
// the table, and each entry's rLSN must not exceed the LSN of the first
// operation that dirtied that page. Extra entries and low rLSNs cost
// time (unnecessary fetches / failed tests) but never correctness — the
// pLSN test backstops them.
package dpt

import (
	"sort"

	"logrec/internal/storage"
	"logrec/internal/wal"
)

// Entry is one dirty page table row.
type Entry struct {
	PID     storage.PageID
	RLSN    wal.LSN
	LastLSN wal.LSN
}

// Table is a dirty page table under construction or in use by redo.
type Table struct {
	entries map[storage.PageID]*Entry
}

// New returns an empty table.
func New() *Table {
	return &Table{entries: make(map[storage.PageID]*Entry)}
}

// Add registers pid with the given LSN: a new entry gets rLSN = lastLSN
// = lsn; an existing entry only advances lastLSN (the first mention
// fixes rLSN, per Algorithm 3 / Algorithm 4).
func (t *Table) Add(pid storage.PageID, lsn wal.LSN) {
	if e, ok := t.entries[pid]; ok {
		if lsn > e.LastLSN {
			e.LastLSN = lsn
		}
		return
	}
	t.entries[pid] = &Entry{PID: pid, RLSN: lsn, LastLSN: lsn}
}

// Find returns the entry for pid, or nil.
func (t *Table) Find(pid storage.PageID) *Entry {
	return t.entries[pid]
}

// Remove deletes pid's entry if present.
func (t *Table) Remove(pid storage.PageID) {
	delete(t.entries, pid)
}

// Len returns the number of entries — the "DPT size" the paper's cost
// model (Appendix B) uses.
func (t *Table) Len() int { return len(t.entries) }

// PIDs returns all entries' PIDs in ascending order (prefetchers group
// contiguous runs).
func (t *Table) PIDs() []storage.PageID {
	out := make([]storage.PageID, 0, len(t.entries))
	for pid := range t.entries {
		out = append(out, pid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EntriesByRLSN returns the entries sorted by ascending rLSN — the
// order DPT-driven prefetching would issue them (Appendix A.2).
func (t *Table) EntriesByRLSN() []*Entry {
	out := make([]*Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RLSN != out[j].RLSN {
			return out[i].RLSN < out[j].RLSN
		}
		return out[i].PID < out[j].PID
	})
	return out
}

// PruneFlushed applies a flush report to the table under construction:
// for each flushed PID present in the table, the entry is removed when
// its lastLSN shows every update it covers preceded the report's FW-LSN
// (the flush captured them all); otherwise the entry's rLSN is raised
// to FW-LSN, since the flush made everything earlier stable.
//
// The removal comparison differs between the two construction
// algorithms: SQL-style analysis over real update LSNs removes on
// lastLSN ≤ FW-LSN (Algorithm 3 line 15, inclusive=true), while the
// DC's ∆-record analysis uses lastLSN = FW-LSN as a sentinel for "page
// dirtied after the first write", whose updates may postdate FW-LSN, so
// it removes only on lastLSN < FW-LSN (Algorithm 4 line 19,
// inclusive=false).
func (t *Table) PruneFlushed(written []storage.PageID, fwLSN wal.LSN, inclusive bool) {
	for _, pid := range written {
		e, ok := t.entries[pid]
		if !ok {
			continue
		}
		remove := e.LastLSN < fwLSN || (inclusive && e.LastLSN == fwLSN)
		if remove {
			delete(t.entries, pid)
		} else if e.RLSN < fwLSN {
			e.RLSN = fwLSN
		}
	}
}
