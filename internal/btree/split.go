package btree

import (
	"errors"
	"fmt"

	"logrec/internal/buffer"
	"logrec/internal/page"
	"logrec/internal/storage"
	"logrec/internal/wal"
)

// smoBuild accumulates the pages modified by one structure modification
// so they can be stamped with the SMO record's LSN and logged as a
// single atomic SMO record (§4: the DC logs B-tree SMOs so the tree can
// be made well-formed before TC redo resubmits logical operations).
type smoBuild struct {
	tree   *Tree
	frames map[storage.PageID]*buffer.Frame
	order  []storage.PageID
}

func (t *Tree) newSMOBuild() *smoBuild {
	return &smoBuild{tree: t, frames: make(map[storage.PageID]*buffer.Frame)}
}

// touch registers a pinned frame as modified by the SMO. The build
// takes over the pin.
func (b *smoBuild) touch(f *buffer.Frame) {
	if _, ok := b.frames[f.PID]; ok {
		// Already held; drop the extra pin.
		b.tree.pool.Unpin(f)
		return
	}
	b.frames[f.PID] = f
	b.order = append(b.order, f.PID)
}

// finish stamps every touched page with the SMO record's LSN, marks
// them dirty, logs the SMO record with after-images and the new tree
// metadata, and releases the pins. Nothing may append to the log
// between the LSN reservation and the SMO append: the lazywriter is
// suspended for the duration (a background flush would let the flush
// tracker log its own record), and the onDirty notifications are
// deferred until after the append (the ∆ tracker emits a capacity
// record synchronously when NoteUpdate fills its dirty set).
func (b *smoBuild) finish() error {
	b.tree.pool.SuspendCleaner()
	defer func() {
		for _, pid := range b.order {
			b.tree.pool.Unpin(b.frames[pid])
		}
		b.tree.pool.ResumeCleaner()
	}()
	t := b.tree
	if t.smo == nil {
		// Unlogged bulk load: just mark pages dirty with a nil LSN.
		for _, pid := range b.order {
			t.pool.MarkDirty(b.frames[pid], wal.NilLSN)
		}
		return nil
	}
	lsn := t.smo.NextLSN()
	rec := &wal.SMORec{
		Meta: wal.TreeMeta{
			TableID: t.meta.TableID,
			Root:    t.meta.Root,
			Height:  t.meta.Height,
			NextPID: t.meta.NextPID,
		},
	}
	for _, pid := range b.order {
		f := b.frames[pid]
		f.Page.SetLSN(uint64(lsn))
		t.pool.MarkDirty(f, lsn)
		img := make([]byte, len(f.Page.Bytes()))
		copy(img, f.Page.Bytes())
		rec.Images = append(rec.Images, wal.PageImage{PageID: pid, Data: img})
	}
	got := t.smo.AppendSMO(rec)
	if got != lsn {
		return fmt.Errorf("btree: SMO logger returned LSN %v, reserved %v", got, lsn)
	}
	if t.onDirty != nil {
		for _, pid := range b.order {
			t.onDirty(pid, lsn)
		}
	}
	return nil
}

// allocPID hands out the next page ID.
func (t *Tree) allocPID() storage.PageID {
	pid := t.meta.NextPID
	t.meta.NextPID++
	return pid
}

// splitLeaf splits the full leaf and installs the separator in its
// parent chain, splitting parents (and growing the root) as needed. The
// whole modification is logged as one SMO record.
//
// key is the pending insert that triggered the split. When the leaf is
// the rightmost and key appends past its largest key — the sequential
// load pattern — the split leaves the old leaf untouched and chains an
// empty right leaf (an append split), yielding ~100% fill instead of
// 50%, as production engines do for ascending inserts.
func (t *Tree) splitLeaf(leafPID storage.PageID, path []pathEntry, key uint64) error {
	b := t.newSMOBuild()

	leaf, err := t.pool.Get(leafPID)
	if err != nil {
		return err
	}
	b.touch(leaf)
	if got := leaf.Page.Type(); got != page.TypeLeaf {
		return fmt.Errorf("btree: splitLeaf on %v page %d", got, leafPID)
	}

	newPID := t.allocPID()
	right, err := t.pool.NewPage(newPID, page.TypeLeaf)
	if err != nil {
		return err
	}
	b.touch(right)

	var sep uint64
	n := leaf.Page.NumSlots()
	rightmost := storage.PageID(leaf.Page.Extra()) == storage.InvalidPageID
	if rightmost && n > 0 && key > leaf.Page.KeyAt(n-1) {
		// Append split: the new right leaf starts empty; the pending
		// key becomes the separator and will land there on retry.
		sep = key
	} else {
		sep, err = leaf.Page.SplitInto(right.Page)
		if err != nil {
			return err
		}
	}
	// Chain leaf siblings: left -> right -> left's old sibling.
	right.Page.SetExtra(leaf.Page.Extra())
	leaf.Page.SetExtra(uint32(newPID))

	if err := t.insertIntoParent(b, path, len(path)-1, leafPID, sep, newPID); err != nil {
		return err
	}
	return b.finish()
}

// insertIntoParent installs (sep, newPID) in the internal page at
// path[level]; level == -1 grows a new root above leftPID.
func (t *Tree) insertIntoParent(b *smoBuild, path []pathEntry, level int, leftPID storage.PageID, sep uint64, newPID storage.PageID) error {
	if level < 0 {
		rootPID := t.allocPID()
		root, err := t.pool.NewPage(rootPID, page.TypeInternal)
		if err != nil {
			return err
		}
		b.touch(root)
		root.Page.SetExtra(uint32(leftPID))
		if err := root.Page.Insert(sep, encodePID(newPID)); err != nil {
			return fmt.Errorf("btree: seeding new root: %w", err)
		}
		t.meta.Root = rootPID
		t.meta.Height++
		return nil
	}

	parentPID := path[level].pid
	parent, err := t.pool.Get(parentPID)
	if err != nil {
		return err
	}
	b.touch(parent)

	err = parent.Page.Insert(sep, encodePID(newPID))
	if err == nil {
		return nil
	}
	if !errors.Is(err, page.ErrPageFull) {
		return err
	}

	// Append split for internal pages: when the new separator sorts
	// past every key in the full parent (sequential load), promote sep
	// itself and hang newPID as the leftmost child of an empty new
	// right page — the parent keeps 100% fill.
	if n := parent.Page.NumSlots(); n > 0 && sep > parent.Page.KeyAt(n-1) {
		rightPID := t.allocPID()
		right, err := t.pool.NewPage(rightPID, page.TypeInternal)
		if err != nil {
			return err
		}
		b.touch(right)
		right.Page.SetExtra(uint32(newPID))
		return t.insertIntoParent(b, path, level-1, parentPID, sep, rightPID)
	}

	// Parent is full: split it, promote its middle separator, then
	// place (sep, newPID) in whichever half now owns sep.
	promoted, rightPID, err := t.splitInternal(b, parent)
	if err != nil {
		return err
	}
	if err := t.insertIntoParent(b, path, level-1, parentPID, promoted, rightPID); err != nil {
		return err
	}
	target := parent
	if sep >= promoted {
		target = b.frames[rightPID]
	}
	if err := target.Page.Insert(sep, encodePID(newPID)); err != nil {
		return fmt.Errorf("btree: separator insert after parent split: %w", err)
	}
	return nil
}

// splitInternal splits a full internal page, returning the promoted
// separator and the new right page's PID. The promoted key moves up: it
// is removed from both halves, and its child becomes the right half's
// leftmost child.
func (t *Tree) splitInternal(b *smoBuild, f *buffer.Frame) (uint64, storage.PageID, error) {
	p := f.Page
	n := p.NumSlots()
	if n < 3 {
		return 0, storage.InvalidPageID, fmt.Errorf("btree: internal split with only %d separators", n)
	}
	mid := n / 2
	promoted := p.KeyAt(mid)
	promotedChild := childPID(p.ValueAt(mid))

	rightPID := t.allocPID()
	right, err := t.pool.NewPage(rightPID, page.TypeInternal)
	if err != nil {
		return 0, storage.InvalidPageID, err
	}
	b.touch(right)
	right.Page.SetExtra(uint32(promotedChild))
	for i := mid + 1; i < n; i++ {
		if err := right.Page.Insert(p.KeyAt(i), p.ValueAt(i)); err != nil {
			return 0, storage.InvalidPageID, fmt.Errorf("btree: moving separators: %w", err)
		}
	}
	for i := n - 1; i >= mid; i-- {
		if err := p.Delete(p.KeyAt(i)); err != nil {
			return 0, storage.InvalidPageID, fmt.Errorf("btree: trimming split page: %w", err)
		}
	}
	p.Compact()
	return promoted, rightPID, nil
}
