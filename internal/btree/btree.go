// Package btree implements the DC's clustered index: a B+tree keyed by
// uint64 with rows stored in the leaves, built on the buffer pool.
//
// Structure modifications (page splits, root growth) are logged as
// physiological SMO records carrying after-images of every page the SMO
// touched plus the resulting tree metadata. DC recovery replays SMO
// records before any transactional redo so the tree is well-formed when
// logical redo re-traverses it (§1.2, §4 of the paper).
//
// The tree is single-writer by design: Deuteronomy's TC provides
// concurrency control above the DC (lock manager, §1.1), so the DC's
// storage structures run serially in this reproduction.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"logrec/internal/buffer"
	"logrec/internal/page"
	"logrec/internal/sim"
	"logrec/internal/storage"
	"logrec/internal/wal"
)

// Errors returned by tree operations.
var (
	// ErrKeyNotFound indicates the key is absent from the tree.
	ErrKeyNotFound = errors.New("btree: key not found")
	// ErrKeyExists indicates an insert of an existing key.
	ErrKeyExists = errors.New("btree: key exists")
	// ErrValueTooLarge indicates a value that cannot fit a page even
	// after splitting.
	ErrValueTooLarge = errors.New("btree: value too large for page")
)

// Meta is the recoverable tree metadata, persisted in the DB metadata
// page at checkpoints and carried by every SMO record.
type Meta struct {
	TableID wal.TableID
	Root    storage.PageID
	// Height is the number of levels; 1 means the root is a leaf.
	Height uint32
	// NextPID is the page allocator cursor: the PID the next allocated
	// page will receive. Allocation is bump-pointer; pages are never
	// reclaimed (deletes do not merge, as in many production engines).
	NextPID storage.PageID
}

// SMOLogger appends SMO records to the shared log. NextLSN must return
// the LSN the following append will be assigned, so page images can
// embed their own record's LSN as pLSN before encoding.
type SMOLogger interface {
	NextLSN() wal.LSN
	AppendSMO(*wal.SMORec) wal.LSN
}

// CPUCosts charges the virtual clock for tree computation. Both are
// per-page-visited / per-cell-applied and are small next to IO, as the
// paper's Appendix B assumes.
type CPUCosts struct {
	PerPageVisit sim.Duration
	PerApply     sim.Duration
}

// DefaultCPUCosts matches the experiment defaults.
func DefaultCPUCosts() CPUCosts {
	return CPUCosts{PerPageVisit: 2 * sim.Microsecond, PerApply: 3 * sim.Microsecond}
}

// Tree is a B+tree over a buffer pool.
type Tree struct {
	pool  *buffer.Pool
	meta  Meta
	clock *sim.Clock
	costs CPUCosts

	// smo logs structure modifications; nil during unlogged bulk load.
	smo SMOLogger

	// onDirty is invoked for every page the tree dirties (data apply or
	// SMO), after pool.MarkDirty; the DC wires the ∆-tracker here.
	onDirty func(pid storage.PageID, lsn wal.LSN)
}

// Create initialises a new empty tree whose root leaf is allocated at
// meta.NextPID.
func Create(pool *buffer.Pool, clock *sim.Clock, tableID wal.TableID, firstPID storage.PageID, costs CPUCosts) (*Tree, error) {
	t := &Tree{
		pool:  pool,
		clock: clock,
		costs: costs,
		meta: Meta{
			TableID: tableID,
			Root:    firstPID,
			Height:  1,
			NextPID: firstPID + 1,
		},
	}
	f, err := pool.NewPage(firstPID, page.TypeLeaf)
	if err != nil {
		return nil, err
	}
	// Mark the empty root dirty so it reaches stable storage even if
	// the table is never written.
	pool.MarkDirty(f, wal.NilLSN)
	pool.Unpin(f)
	return t, nil
}

// Open attaches to an existing tree described by meta (read from the
// metadata page during DC recovery or restart).
func Open(pool *buffer.Pool, clock *sim.Clock, meta Meta, costs CPUCosts) *Tree {
	return &Tree{pool: pool, clock: clock, costs: costs, meta: meta}
}

// Meta returns the current tree metadata.
func (t *Tree) Meta() Meta { return t.meta }

// SetMeta replaces the tree metadata (DC SMO redo installs the
// metadata carried by each SMO record).
func (t *Tree) SetMeta(m Meta) { t.meta = m }

// SetSMOLogger installs the SMO logger (nil disables logging, used only
// for the initial unlogged bulk load).
func (t *Tree) SetSMOLogger(l SMOLogger) { t.smo = l }

// SetDirtyHook installs the per-page dirty callback.
func (t *Tree) SetDirtyHook(fn func(pid storage.PageID, lsn wal.LSN)) { t.onDirty = fn }

// Pool returns the tree's buffer pool.
func (t *Tree) Pool() *buffer.Pool { return t.pool }

func (t *Tree) visit() {
	if t.clock != nil {
		t.clock.Advance(t.costs.PerPageVisit)
	}
}

func (t *Tree) applyCost() {
	if t.clock != nil {
		t.clock.Advance(t.costs.PerApply)
	}
}

// childPID decodes the child pointer stored in an internal cell.
func childPID(val []byte) storage.PageID {
	return storage.PageID(binary.BigEndian.Uint32(val))
}

func encodePID(pid storage.PageID) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(pid))
	return b[:]
}

// route returns the child an internal page directs key to: the child of
// the rightmost separator ≤ key, or the leftmost child if key precedes
// every separator.
func route(p *page.Page, key uint64) storage.PageID {
	idx, found := p.Search(key)
	if found {
		return childPID(p.ValueAt(idx))
	}
	if idx == 0 {
		return storage.PageID(p.Extra())
	}
	return childPID(p.ValueAt(idx - 1))
}

// FindLeaf traverses internal pages only and returns the PID of the
// leaf that owns key. The leaf itself is NOT fetched — this is the
// B-tree search of the logical redo algorithms (Algorithm 2 line 8,
// Algorithm 5 line 4), which must learn the PID before deciding whether
// to fetch the page.
func (t *Tree) FindLeaf(key uint64) (storage.PageID, error) {
	pid := t.meta.Root
	for level := t.meta.Height; level > 1; level-- {
		f, err := t.pool.Get(pid)
		if err != nil {
			return storage.InvalidPageID, fmt.Errorf("btree: fetching internal page %d: %w", pid, err)
		}
		t.visit()
		if got := f.Page.Type(); got != page.TypeInternal {
			t.pool.Unpin(f)
			return storage.InvalidPageID, fmt.Errorf("btree: page %d has type %v, want internal", pid, got)
		}
		next := route(f.Page, key)
		t.pool.Unpin(f)
		pid = next
	}
	return pid, nil
}

// Search returns a copy of the value stored under key.
func (t *Tree) Search(key uint64) ([]byte, bool, error) {
	pid, err := t.FindLeaf(key)
	if err != nil {
		return nil, false, err
	}
	f, err := t.pool.Get(pid)
	if err != nil {
		return nil, false, err
	}
	defer t.pool.Unpin(f)
	t.visit()
	idx, found := f.Page.Search(key)
	if !found {
		return nil, false, nil
	}
	out := make([]byte, len(f.Page.ValueAt(idx)))
	copy(out, f.Page.ValueAt(idx))
	return out, true, nil
}

// pathEntry records one internal page on the root-to-leaf path.
type pathEntry struct {
	pid storage.PageID
}

// findLeafPath is FindLeaf but also returns the internal-page path from
// root (inclusive) to the leaf's parent, for split propagation.
func (t *Tree) findLeafPath(key uint64) (storage.PageID, []pathEntry, error) {
	var path []pathEntry
	pid := t.meta.Root
	for level := t.meta.Height; level > 1; level-- {
		f, err := t.pool.Get(pid)
		if err != nil {
			return storage.InvalidPageID, nil, err
		}
		t.visit()
		path = append(path, pathEntry{pid: pid})
		next := route(f.Page, key)
		t.pool.Unpin(f)
		pid = next
	}
	return pid, path, nil
}

// LogFunc appends the operation's log record once the owning leaf is
// known (after any splits) and returns the record's LSN, which becomes
// the page's pLSN. Normal operation appends a real update record here;
// redo passes a function returning the replayed record's LSN.
type LogFunc func(pid storage.PageID) wal.LSN

// fixedLSN adapts a pre-assigned LSN to a LogFunc.
func fixedLSN(lsn wal.LSN) LogFunc {
	return func(storage.PageID) wal.LSN { return lsn }
}

// Insert adds (key, val) at lsn. The leaf's pLSN becomes lsn and the
// leaf is marked dirty. Splits triggered by the insert are logged as
// SMO records before the insert itself is applied.
func (t *Tree) Insert(key uint64, val []byte, lsn wal.LSN) error {
	return t.InsertLogged(key, val, fixedLSN(lsn))
}

// InsertLogged adds (key, val), calling logFn with the owning leaf's
// PID to obtain the operation's LSN.
func (t *Tree) InsertLogged(key uint64, val []byte, logFn LogFunc) error {
	return t.modify(key, logFn, func(p *page.Page) error {
		return p.Insert(key, val)
	})
}

// Update replaces the value under key at lsn.
func (t *Tree) Update(key uint64, val []byte, lsn wal.LSN) error {
	return t.UpdateLogged(key, val, fixedLSN(lsn))
}

// UpdateLogged replaces the value under key, calling logFn with the
// owning leaf's PID to obtain the operation's LSN.
func (t *Tree) UpdateLogged(key uint64, val []byte, logFn LogFunc) error {
	return t.modify(key, logFn, func(p *page.Page) error {
		return p.Update(key, val)
	})
}

// Delete removes key at lsn. Leaves are never merged; like many
// production engines, space from deletes is reused by later inserts.
func (t *Tree) Delete(key uint64, lsn wal.LSN) error {
	return t.DeleteLogged(key, fixedLSN(lsn))
}

// DeleteLogged removes key, calling logFn with the owning leaf's PID to
// obtain the operation's LSN.
func (t *Tree) DeleteLogged(key uint64, logFn LogFunc) error {
	return t.modify(key, logFn, func(p *page.Page) error {
		return p.Delete(key)
	})
}

// modify runs op against the owning leaf, splitting first if the leaf
// is full. op must be retryable after a split (it is re-run against the
// new owning leaf). On success, logFn supplies the operation's LSN; the
// page is stamped and marked dirty under it. The apply and the stamp
// are a single uninterruptible step in virtual time (no flush can
// intervene), so WAL ordering is preserved.
func (t *Tree) modify(key uint64, logFn LogFunc, op func(*page.Page) error) error {
	for attempt := 0; ; attempt++ {
		leafPID, path, err := t.findLeafPath(key)
		if err != nil {
			return err
		}
		f, err := t.pool.Get(leafPID)
		if err != nil {
			return err
		}
		t.visit()
		err = op(f.Page)
		switch {
		case err == nil:
			t.applyCost()
			lsn := logFn(leafPID)
			f.Page.SetLSN(uint64(lsn))
			t.pool.MarkDirty(f, lsn)
			if t.onDirty != nil {
				t.onDirty(leafPID, lsn)
			}
			t.pool.Unpin(f)
			return nil
		case errors.Is(err, page.ErrPageFull):
			t.pool.Unpin(f)
			if attempt >= 8 {
				return fmt.Errorf("%w: key %d still does not fit after %d splits",
					ErrValueTooLarge, key, attempt)
			}
			if serr := t.splitLeaf(leafPID, path, key); serr != nil {
				return serr
			}
			continue
		default:
			t.pool.Unpin(f)
			return mapPageErr(err)
		}
	}
}

func mapPageErr(err error) error {
	switch {
	case errors.Is(err, page.ErrKeyExists):
		return fmt.Errorf("%w: %v", ErrKeyExists, err)
	case errors.Is(err, page.ErrNotFound):
		return fmt.Errorf("%w: %v", ErrKeyNotFound, err)
	default:
		return err
	}
}
