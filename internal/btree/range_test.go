package btree

import (
	"fmt"
	"testing"
)

func TestScanRange(t *testing.T) {
	e := newEnv(t, 512)
	for k := uint64(0); k < 3000; k += 3 {
		if err := e.tree.Insert(k, val(k), e.lsn()); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	err := e.tree.ScanRange(100, 200, func(k uint64, v []byte) error {
		got = append(got, k)
		if string(v) != string(val(k)) {
			return fmt.Errorf("value mismatch at %d", k)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Keys 102..198 step 3: 33 keys.
	if len(got) != 33 {
		t.Fatalf("range returned %d keys: %v", len(got), got)
	}
	if got[0] != 102 || got[len(got)-1] != 198 {
		t.Fatalf("bounds wrong: %d..%d", got[0], got[len(got)-1])
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("range out of order")
		}
	}
}

func TestScanRangeEdges(t *testing.T) {
	e := newEnv(t, 256)
	for k := uint64(10); k <= 20; k++ {
		if err := e.tree.Insert(k, val(k), e.lsn()); err != nil {
			t.Fatal(err)
		}
	}
	count := func(lo, hi uint64) int {
		n := 0
		if err := e.tree.ScanRange(lo, hi, func(uint64, []byte) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if count(10, 20) != 11 {
		t.Fatalf("full range = %d", count(10, 20))
	}
	if count(15, 15) != 1 {
		t.Fatal("single-key range wrong")
	}
	if count(21, 30) != 0 {
		t.Fatal("past-end range non-empty")
	}
	if count(0, 9) != 0 {
		t.Fatal("before-start range non-empty")
	}
	if count(20, 10) != 0 {
		t.Fatal("inverted range non-empty")
	}
}

func TestScanRangeCrossesLeaves(t *testing.T) {
	e := newEnv(t, 512)
	const n = 5000
	v := make([]byte, 92)
	for k := uint64(0); k < n; k++ {
		if err := e.tree.Insert(k, v, e.lsn()); err != nil {
			t.Fatal(err)
		}
	}
	if e.tree.Meta().Height < 2 {
		t.Fatal("tree too small to cross leaves")
	}
	got := 0
	if err := e.tree.ScanRange(1000, 3999, func(uint64, []byte) error { got++; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != 3000 {
		t.Fatalf("range saw %d keys, want 3000", got)
	}
}
