package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"logrec/internal/buffer"
	"logrec/internal/sim"
	"logrec/internal/storage"
	"logrec/internal/wal"
)

// testEnv bundles a tree over a fresh pool and disk.
type testEnv struct {
	clock *sim.Clock
	disk  *storage.Disk
	pool  *buffer.Pool
	tree  *Tree
	log   *wal.Log
}

// walSMOLogger adapts a wal.Log to the SMOLogger interface.
type walSMOLogger struct{ log *wal.Log }

func (l walSMOLogger) NextLSN() wal.LSN                { return l.log.EndLSN() }
func (l walSMOLogger) AppendSMO(r *wal.SMORec) wal.LSN { return l.log.MustAppend(r) }

func newEnv(t *testing.T, poolPages int) *testEnv {
	t.Helper()
	clock := &sim.Clock{}
	cfg := storage.DefaultConfig()
	disk, err := storage.New(clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := buffer.New(disk, poolPages)
	if err != nil {
		t.Fatal(err)
	}
	log := wal.NewLog()
	// Keep WAL protocol satisfied in unit tests: force-flush on demand.
	pool.SetLogForce(func() wal.LSN { return log.Flush() })
	tree, err := Create(pool, clock, 1, storage.MetaPageID+1, DefaultCPUCosts())
	if err != nil {
		t.Fatal(err)
	}
	tree.SetSMOLogger(walSMOLogger{log})
	return &testEnv{clock: clock, disk: disk, pool: pool, tree: tree, log: log}
}

func (e *testEnv) lsn() wal.LSN {
	// Fabricate monotonically increasing LSNs by appending commit
	// markers; unit tests don't need real update records.
	return e.log.MustAppend(&wal.CommitRec{TxnID: 1})
}

func val(k uint64) []byte { return []byte(fmt.Sprintf("value-%06d", k)) }

func TestInsertSearchSingle(t *testing.T) {
	e := newEnv(t, 64)
	if err := e.tree.Insert(42, val(42), e.lsn()); err != nil {
		t.Fatal(err)
	}
	got, found, err := e.tree.Search(42)
	if err != nil || !found {
		t.Fatalf("Search: found=%v err=%v", found, err)
	}
	if !bytes.Equal(got, val(42)) {
		t.Fatalf("value = %q", got)
	}
	_, found, err = e.tree.Search(43)
	if err != nil || found {
		t.Fatalf("Search(43): found=%v err=%v", found, err)
	}
}

func TestInsertDuplicateKey(t *testing.T) {
	e := newEnv(t, 64)
	if err := e.tree.Insert(1, val(1), e.lsn()); err != nil {
		t.Fatal(err)
	}
	if err := e.tree.Insert(1, val(1), e.lsn()); !errors.Is(err, ErrKeyExists) {
		t.Fatalf("err = %v, want ErrKeyExists", err)
	}
}

func TestUpdateMissingKey(t *testing.T) {
	e := newEnv(t, 64)
	if err := e.tree.Update(9, val(9), e.lsn()); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("err = %v, want ErrKeyNotFound", err)
	}
}

func TestManyInsertsSplit(t *testing.T) {
	e := newEnv(t, 256)
	const n = 2000
	for k := uint64(0); k < n; k++ {
		if err := e.tree.Insert(k, val(k), e.lsn()); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if e.tree.Meta().Height < 2 {
		t.Fatalf("height = %d, expected splits to raise it", e.tree.Meta().Height)
	}
	if err := e.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	cnt, err := e.tree.Count()
	if err != nil || cnt != n {
		t.Fatalf("Count = %d (%v), want %d", cnt, err, n)
	}
	for k := uint64(0); k < n; k += 37 {
		got, found, err := e.tree.Search(k)
		if err != nil || !found || !bytes.Equal(got, val(k)) {
			t.Fatalf("Search(%d): found=%v err=%v", k, found, err)
		}
	}
	// SMO records must have been logged.
	if e.log.AppendCount(wal.TypeSMO) == 0 {
		t.Fatal("no SMO records logged despite splits")
	}
}

func TestRandomOrderInserts(t *testing.T) {
	e := newEnv(t, 256)
	rng := rand.New(rand.NewSource(7))
	keys := rng.Perm(1500)
	for _, k := range keys {
		if err := e.tree.Insert(uint64(k), val(uint64(k)), e.lsn()); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if err := e.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Scan must be sorted and complete.
	var prev uint64
	first := true
	n := 0
	err := e.tree.Scan(func(k uint64, v []byte) error {
		if !first && k <= prev {
			return fmt.Errorf("scan out of order: %d after %d", k, prev)
		}
		prev, first = k, false
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(keys) {
		t.Fatalf("scan saw %d keys, want %d", n, len(keys))
	}
}

func TestUpdateAfterSplits(t *testing.T) {
	e := newEnv(t, 256)
	const n = 1000
	for k := uint64(0); k < n; k++ {
		if err := e.tree.Insert(k, val(k), e.lsn()); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < n; k += 3 {
		nv := []byte(fmt.Sprintf("updated-%05d", k))
		if err := e.tree.Update(k, nv, e.lsn()); err != nil {
			t.Fatalf("Update(%d): %v", k, err)
		}
	}
	for k := uint64(0); k < n; k++ {
		got, found, err := e.tree.Search(k)
		if err != nil || !found {
			t.Fatalf("Search(%d): %v %v", k, found, err)
		}
		want := val(k)
		if k%3 == 0 {
			want = []byte(fmt.Sprintf("updated-%05d", k))
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("key %d: got %q want %q", k, got, want)
		}
	}
}

func TestDeleteKeys(t *testing.T) {
	e := newEnv(t, 256)
	const n = 800
	for k := uint64(0); k < n; k++ {
		if err := e.tree.Insert(k, val(k), e.lsn()); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < n; k += 2 {
		if err := e.tree.Delete(k, e.lsn()); err != nil {
			t.Fatalf("Delete(%d): %v", k, err)
		}
	}
	cnt, err := e.tree.Count()
	if err != nil || cnt != n/2 {
		t.Fatalf("Count = %d (%v), want %d", cnt, err, n/2)
	}
	if err := e.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := e.tree.Delete(0, e.lsn()); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("re-delete err = %v, want ErrKeyNotFound", err)
	}
}

func TestFindLeafDoesNotFetchLeaf(t *testing.T) {
	e := newEnv(t, 512)
	const n = 2000
	for k := uint64(0); k < n; k++ {
		if err := e.tree.Insert(k, val(k), e.lsn()); err != nil {
			t.Fatal(err)
		}
	}
	// Flush and drop everything, then re-open with a cold cache big
	// enough for the index only.
	if err := e.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	meta := e.tree.Meta()
	clock := &sim.Clock{}
	cold := e.disk.Fork(clock)
	pool2, err := buffer.New(cold, 64)
	if err != nil {
		t.Fatal(err)
	}
	tree2 := Open(pool2, clock, meta, DefaultCPUCosts())
	pid, err := tree2.FindLeaf(1234)
	if err != nil {
		t.Fatal(err)
	}
	if pid == storage.InvalidPageID {
		t.Fatal("FindLeaf returned invalid PID")
	}
	// The leaf itself must NOT be cached: only internal pages were read.
	if pool2.Contains(pid) {
		t.Fatal("FindLeaf fetched the leaf page")
	}
}

func TestTraversalChargesClock(t *testing.T) {
	e := newEnv(t, 512)
	const n = 2000
	for k := uint64(0); k < n; k++ {
		if err := e.tree.Insert(k, val(k), e.lsn()); err != nil {
			t.Fatal(err)
		}
	}
	before := e.clock.Now()
	if _, _, err := e.tree.Search(999); err != nil {
		t.Fatal(err)
	}
	if e.clock.Now() == before {
		t.Fatal("search did not charge the clock")
	}
}

func TestIndexPIDs(t *testing.T) {
	e := newEnv(t, 512)
	const n = 3000
	for k := uint64(0); k < n; k++ {
		if err := e.tree.Insert(k, val(k), e.lsn()); err != nil {
			t.Fatal(err)
		}
	}
	pids, err := e.tree.IndexPIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(pids) == 0 {
		t.Fatal("no index pages for a multi-level tree")
	}
	if pids[0] != e.tree.Meta().Root {
		t.Fatalf("first index PID %d != root %d", pids[0], e.tree.Meta().Root)
	}
	// Index pages must be a small fraction of total pages, as in the
	// paper (fanout makes the index <1-2% of the data).
	total := int(e.tree.Meta().NextPID - storage.MetaPageID - 1)
	if len(pids)*5 > total {
		t.Fatalf("index unexpectedly large: %d of %d pages", len(pids), total)
	}
}

// TestQuickTreeMatchesModel drives random operations against a map
// model and checks full equivalence plus invariants.
func TestQuickTreeMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := newEnv(t, 512)
		model := make(map[uint64][]byte)
		for op := 0; op < 1200; op++ {
			k := uint64(rng.Intn(400))
			switch rng.Intn(4) {
			case 0, 1: // insert
				v := make([]byte, rng.Intn(40)+1)
				rng.Read(v)
				err := e.tree.Insert(k, v, e.lsn())
				if _, exists := model[k]; exists {
					if !errors.Is(err, ErrKeyExists) {
						t.Logf("seed %d: insert dup %d: %v", seed, k, err)
						return false
					}
				} else if err != nil {
					t.Logf("seed %d: insert %d: %v", seed, k, err)
					return false
				} else {
					model[k] = v
				}
			case 2: // update
				v := make([]byte, rng.Intn(40)+1)
				rng.Read(v)
				err := e.tree.Update(k, v, e.lsn())
				if _, exists := model[k]; exists {
					if err != nil {
						t.Logf("seed %d: update %d: %v", seed, k, err)
						return false
					}
					model[k] = v
				} else if !errors.Is(err, ErrKeyNotFound) {
					t.Logf("seed %d: update missing %d: %v", seed, k, err)
					return false
				}
			case 3: // delete
				err := e.tree.Delete(k, e.lsn())
				if _, exists := model[k]; exists {
					if err != nil {
						t.Logf("seed %d: delete %d: %v", seed, k, err)
						return false
					}
					delete(model, k)
				} else if !errors.Is(err, ErrKeyNotFound) {
					t.Logf("seed %d: delete missing %d: %v", seed, k, err)
					return false
				}
			}
		}
		if err := e.tree.CheckInvariants(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		got := make(map[uint64][]byte)
		if err := e.tree.Scan(func(k uint64, v []byte) error {
			got[k] = append([]byte(nil), v...)
			return nil
		}); err != nil {
			t.Logf("seed %d: scan: %v", seed, err)
			return false
		}
		if len(got) != len(model) {
			t.Logf("seed %d: size %d != model %d", seed, len(got), len(model))
			return false
		}
		for k, v := range model {
			if !bytes.Equal(got[k], v) {
				t.Logf("seed %d: mismatch at key %d", seed, k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestSplitSMORecordImagesMatchCache verifies SMO record after-images
// reflect the page state at SMO completion, so replaying them restores
// the structure.
func TestSplitSMORecordImagesMatchCache(t *testing.T) {
	e := newEnv(t, 256)
	for k := uint64(0); k < 600; k++ {
		if err := e.tree.Insert(k, val(k), e.lsn()); err != nil {
			t.Fatal(err)
		}
	}
	e.log.Flush()
	sc := e.log.NewScanner(wal.FirstLSN(), nil, wal.ScanCost{})
	smoSeen := 0
	for {
		rec, lsn, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		smo, isSMO := rec.(*wal.SMORec)
		if !isSMO {
			continue
		}
		smoSeen++
		for _, img := range smo.Images {
			if len(img.Data) != e.disk.Config().PageSize {
				t.Fatalf("SMO image for page %d has %d bytes", img.PageID, len(img.Data))
			}
		}
		_ = lsn
	}
	if smoSeen == 0 {
		t.Fatal("no SMO records found")
	}
}
