package btree

import (
	"errors"
	"fmt"

	"logrec/internal/page"
	"logrec/internal/storage"
)

// Scan walks every row in key order, invoking fn(key, value). The value
// slice is only valid during the call. Scanning fetches leaves through
// the pool (charging IO on misses); verification oracles reset stats or
// use a fresh clock around it.
func (t *Tree) Scan(fn func(key uint64, val []byte) error) error {
	pid, err := t.leftmostLeaf()
	if err != nil {
		return err
	}
	return t.scanFrom(pid, 0, ^uint64(0), nil, fn)
}

// ScanRange walks rows with lo ≤ key ≤ hi in key order. It locates the
// leaf owning lo through the index and follows sibling links, the
// access path Deuteronomy's key-range operations use [13].
func (t *Tree) ScanRange(lo, hi uint64, fn func(key uint64, val []byte) error) error {
	return t.ScanRangeFiltered(lo, hi, nil, fn)
}

// ScanRangeFiltered is ScanRange with a predicate evaluated against the
// page-resident row before fn sees it: rows failing pred are dropped
// inside the iterator, so a pushed-down filter costs no row copy and no
// decode above this layer. A nil pred accepts every row. Like fn's, the
// value slice pred receives is only valid during the call.
func (t *Tree) ScanRangeFiltered(lo, hi uint64, pred func(key uint64, val []byte) bool, fn func(key uint64, val []byte) error) error {
	if hi < lo {
		return nil
	}
	pid, err := t.FindLeaf(lo)
	if err != nil {
		return err
	}
	return t.scanFrom(pid, lo, hi, pred, fn)
}

// errStopScan terminates a scan early once keys exceed the bound.
var errStopScan = errors.New("btree: stop scan")

func (t *Tree) scanFrom(pid storage.PageID, lo, hi uint64, pred func(uint64, []byte) bool, fn func(uint64, []byte) error) error {
	for pid != storage.InvalidPageID {
		f, err := t.pool.Get(pid)
		if err != nil {
			return err
		}
		t.visit()
		p := f.Page
		if got := p.Type(); got != page.TypeLeaf {
			t.pool.Unpin(f)
			return fmt.Errorf("btree: scan reached %v page %d", got, pid)
		}
		start, _ := p.Search(lo)
		for i := start; i < p.NumSlots(); i++ {
			k := p.KeyAt(i)
			if k > hi {
				t.pool.Unpin(f)
				return nil
			}
			if pred != nil && !pred(k, p.ValueAt(i)) {
				continue
			}
			if err := fn(k, p.ValueAt(i)); err != nil {
				t.pool.Unpin(f)
				if errors.Is(err, errStopScan) {
					return nil
				}
				return err
			}
		}
		next := storage.PageID(p.Extra())
		t.pool.Unpin(f)
		pid = next
	}
	return nil
}

func (t *Tree) leftmostLeaf() (storage.PageID, error) {
	pid := t.meta.Root
	for level := t.meta.Height; level > 1; level-- {
		f, err := t.pool.Get(pid)
		if err != nil {
			return storage.InvalidPageID, err
		}
		next := storage.PageID(f.Page.Extra())
		t.pool.Unpin(f)
		pid = next
	}
	return pid, nil
}

// Count returns the number of rows in the tree.
func (t *Tree) Count() (int, error) {
	n := 0
	err := t.Scan(func(uint64, []byte) error { n++; return nil })
	return n, err
}

// IndexPIDs returns the PIDs of every internal (index) page, root
// included, in breadth-first order. The DC's index-preload prefetch
// (Appendix A.1) loads exactly these pages at the start of recovery.
func (t *Tree) IndexPIDs() ([]storage.PageID, error) {
	if t.meta.Height <= 1 {
		return nil, nil
	}
	var out []storage.PageID
	frontier := []storage.PageID{t.meta.Root}
	for level := t.meta.Height; level > 1; level-- {
		var next []storage.PageID
		for _, pid := range frontier {
			out = append(out, pid)
			f, err := t.pool.Get(pid)
			if err != nil {
				return nil, err
			}
			p := f.Page
			if level > 2 {
				next = append(next, storage.PageID(p.Extra()))
				for i := 0; i < p.NumSlots(); i++ {
					next = append(next, childPID(p.ValueAt(i)))
				}
			}
			t.pool.Unpin(f)
		}
		frontier = next
	}
	return out, nil
}

// CheckInvariants validates the whole tree: page-level structure, key
// ordering across leaves, separator correctness (every key in a child
// subtree falls within the parent's routing bounds) and uniform leaf
// depth. Used by unit and property tests.
func (t *Tree) CheckInvariants() error {
	var prev uint64
	first := true
	depth, err := t.checkNode(t.meta.Root, int(t.meta.Height), 0, ^uint64(0), true, &prev, &first)
	if err != nil {
		return err
	}
	if depth != int(t.meta.Height) {
		return fmt.Errorf("btree: measured depth %d != meta height %d", depth, t.meta.Height)
	}
	return nil
}

// checkNode validates the subtree at pid, whose keys must lie in
// [lo, hi). It returns the subtree depth.
func (t *Tree) checkNode(pid storage.PageID, level int, lo, hi uint64, hiOpen bool, prev *uint64, first *bool) (int, error) {
	f, err := t.pool.Get(pid)
	if err != nil {
		return 0, err
	}
	defer t.pool.Unpin(f)
	p := f.Page
	if err := p.Check(); err != nil {
		return 0, fmt.Errorf("page %d: %w", pid, err)
	}
	if level == 1 {
		if got := p.Type(); got != page.TypeLeaf {
			return 0, fmt.Errorf("btree: page %d at leaf level has type %v", pid, got)
		}
		for i := 0; i < p.NumSlots(); i++ {
			k := p.KeyAt(i)
			if k < lo || (!hiOpen && k >= hi) {
				return 0, fmt.Errorf("btree: leaf %d key %d outside routing bounds [%d,%d)", pid, k, lo, hi)
			}
			if !*first && k <= *prev {
				return 0, fmt.Errorf("btree: global key order violated at leaf %d key %d (prev %d)", pid, k, *prev)
			}
			*prev, *first = k, false
		}
		return 1, nil
	}
	if got := p.Type(); got != page.TypeInternal {
		return 0, fmt.Errorf("btree: page %d at level %d has type %v", pid, level, got)
	}
	n := p.NumSlots()
	// n == 0 is legal: an append split leaves a fresh internal page
	// with only its leftmost child until the next separator arrives.
	// Child subtree bounds: leftmost child covers [lo, key0); child of
	// separator i covers [key_i, key_{i+1}).
	childLo := lo
	childHi := hi
	childOpen := hiOpen
	if n > 0 {
		childHi = p.KeyAt(0)
		childOpen = false
	}
	depth0, err := t.checkNode(storage.PageID(p.Extra()), level-1, childLo, childHi, childOpen, prev, first)
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		k := p.KeyAt(i)
		if k < lo || (!hiOpen && k >= hi) {
			return 0, fmt.Errorf("btree: internal %d separator %d outside bounds [%d,%d)", pid, k, lo, hi)
		}
		cLo := k
		cHi := hi
		cOpen := hiOpen
		if i+1 < n {
			cHi = p.KeyAt(i + 1)
			cOpen = false
		}
		d, err := t.checkNode(childPID(p.ValueAt(i)), level-1, cLo, cHi, cOpen, prev, first)
		if err != nil {
			return 0, err
		}
		if d != depth0 {
			return 0, fmt.Errorf("btree: uneven leaf depth under internal %d", pid)
		}
	}
	return depth0 + 1, nil
}
