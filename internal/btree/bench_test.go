package btree

import (
	"math/rand"
	"testing"

	"logrec/internal/buffer"
	"logrec/internal/sim"
	"logrec/internal/storage"
	"logrec/internal/wal"
)

func benchTree(b *testing.B, rows int) *Tree {
	b.Helper()
	clock := &sim.Clock{}
	disk, err := storage.New(clock, storage.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	pool, err := buffer.New(disk, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	log := wal.NewLog()
	pool.SetLogForce(func() wal.LSN { return log.Flush() })
	tree, err := Create(pool, clock, 1, storage.MetaPageID+1, DefaultCPUCosts())
	if err != nil {
		b.Fatal(err)
	}
	tree.SetSMOLogger(walSMOLogger{log})
	v := make([]byte, 92)
	for k := uint64(0); k < uint64(rows); k++ {
		if err := tree.Insert(k, v, wal.LSN(k+100)); err != nil {
			b.Fatal(err)
		}
	}
	return tree
}

func BenchmarkInsertSequential(b *testing.B) {
	tree := benchTree(b, 0)
	v := make([]byte, 92)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(uint64(i), v, wal.LSN(i+100)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	tree := benchTree(b, 0)
	v := make([]byte, 92)
	rng := rand.New(rand.NewSource(1))
	keys := rng.Perm(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(uint64(keys[i]), v, wal.LSN(i+100)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchHot(b *testing.B) {
	tree := benchTree(b, 100_000)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, found, err := tree.Search(uint64(rng.Intn(100_000))); err != nil || !found {
			b.Fatalf("found=%v err=%v", found, err)
		}
	}
}

func BenchmarkUpdateHot(b *testing.B) {
	tree := benchTree(b, 100_000)
	rng := rand.New(rand.NewSource(3))
	v := make([]byte, 92)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Update(uint64(rng.Intn(100_000)), v, wal.LSN(i+1<<30)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindLeaf(b *testing.B) {
	tree := benchTree(b, 100_000)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.FindLeaf(uint64(rng.Intn(100_000))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan(b *testing.B) {
	tree := benchTree(b, 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := tree.Scan(func(uint64, []byte) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != 50_000 {
			b.Fatalf("scan saw %d", n)
		}
	}
}
