package btree

import (
	"testing"
)

// TestSequentialLoadFillFactor verifies the append-split optimisation:
// ascending inserts must leave leaves nearly full, so the index stays a
// small fraction of the data (the paper's index is <1% of table size).
func TestSequentialLoadFillFactor(t *testing.T) {
	e := newEnv(t, 4096)
	const n = 20000
	v := make([]byte, 92)
	for k := uint64(0); k < n; k++ {
		if err := e.tree.Insert(k, v, e.lsn()); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if err := e.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	cnt, err := e.tree.Count()
	if err != nil || cnt != n {
		t.Fatalf("Count = %d (%v)", cnt, err)
	}
	// Page capacity: (1024-24)/(8+92+4) ≈ 9 rows. Near-full leaves
	// means ≈ n/9 leaves; mid-splits would give ≈ n/4.5.
	totalPages := int(e.tree.Meta().NextPID) - 2
	maxRows := (1024 - 24) / (8 + 92 + 4)
	perfect := n / maxRows
	if totalPages > perfect+perfect/5 {
		t.Fatalf("sequential load used %d pages; near-full packing needs ~%d", totalPages, perfect)
	}
	// Index must be a small fraction of all pages.
	idx, err := e.tree.IndexPIDs()
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(len(idx)) / float64(totalPages); frac > 0.03 {
		t.Fatalf("index fraction %.3f > 3%% (index %d of %d pages)", frac, len(idx), totalPages)
	}
}

// TestAppendSplitThenRandomInserts makes sure trees built by append
// splits keep working under later random-order mutations.
func TestAppendSplitThenRandomInserts(t *testing.T) {
	e := newEnv(t, 2048)
	v := make([]byte, 92)
	const n = 5000
	for k := uint64(0); k < n; k += 2 {
		if err := e.tree.Insert(k, v, e.lsn()); err != nil {
			t.Fatal(err)
		}
	}
	// Now fill odd keys in descending order (mid splits).
	for k := uint64(4001); k >= 1 && k <= 4001; k -= 2 {
		if err := e.tree.Insert(k, v, e.lsn()); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if err := e.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	cnt, err := e.tree.Count()
	if err != nil || cnt != n/2+2001 {
		t.Fatalf("Count = %d (%v), want %d", cnt, err, n/2+2001)
	}
}
