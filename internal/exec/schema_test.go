package exec

import (
	"bytes"
	"errors"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "id", Type: TUint64},
		Column{Name: "name", Type: TString},
		Column{Name: "balance", Type: TInt64},
		Column{Name: "score", Type: TFloat64},
		Column{Name: "active", Type: TBool},
		Column{Name: "blob", Type: TBytes},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaRoundTrip(t *testing.T) {
	s := testSchema(t)
	vals := []any{uint64(42), "alice", int64(-7), 3.5, true, []byte{0xDE, 0xAD}}
	buf, err := s.Encode(vals...)
	if err != nil {
		t.Fatal(err)
	}
	if buf[0] != rowVersion {
		t.Fatalf("header byte = %#x, want %#x", buf[0], rowVersion)
	}
	got, err := s.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("decoded %d cols, want %d", len(got), len(vals))
	}
	if got[0] != uint64(42) || got[1] != "alice" || got[2] != int64(-7) ||
		got[3] != 3.5 || got[4] != true || !bytes.Equal(got[5].([]byte), []byte{0xDE, 0xAD}) {
		t.Fatalf("round trip mismatch: %v", got)
	}
}

func TestSchemaIntLiterals(t *testing.T) {
	s := MustSchema(Column{Name: "a", Type: TUint64}, Column{Name: "b", Type: TInt64})
	buf, err := s.Encode(7, -3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != uint64(7) || got[1] != int64(-3) {
		t.Fatalf("got %v", got)
	}
	if _, err := s.Encode(-1, 0); !errors.Is(err, ErrSchema) {
		t.Fatalf("negative literal into uint64 column: err = %v, want ErrSchema", err)
	}
}

func TestSchemaDecodeCol(t *testing.T) {
	s := testSchema(t)
	buf, err := s.Encode(uint64(9), "bob", int64(100), 1.25, false, []byte("xyz"))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []any{uint64(9), "bob", int64(100), 1.25, false} {
		got, err := s.DecodeCol(buf, i)
		if err != nil {
			t.Fatalf("col %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("col %d = %v, want %v", i, got, want)
		}
	}
	got, err := s.DecodeCol(buf, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.([]byte), []byte("xyz")) {
		t.Fatalf("col 5 = %v", got)
	}
	if _, err := s.DecodeCol(buf, 6); !errors.Is(err, ErrSchema) {
		t.Fatalf("out-of-range column: err = %v", err)
	}
}

func TestSchemaErrors(t *testing.T) {
	s := testSchema(t)
	if _, err := s.Encode(uint64(1)); !errors.Is(err, ErrSchema) {
		t.Fatalf("arity: err = %v", err)
	}
	if _, err := s.Encode("no", "b", int64(0), 0.0, true, []byte{}); !errors.Is(err, ErrSchema) {
		t.Fatalf("type: err = %v", err)
	}
	if _, err := s.Decode([]byte{0x7F, 0, 0}); !errors.Is(err, ErrSchema) {
		t.Fatalf("bad version: err = %v", err)
	}
	good, err := s.Encode(uint64(1), "x", int64(2), 0.0, true, []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Decode(good[:len(good)-1]); !errors.Is(err, ErrSchema) {
		t.Fatalf("truncated: err = %v", err)
	}
	if _, err := NewSchema(); err == nil {
		t.Fatal("empty schema accepted")
	}
	if _, err := NewSchema(Column{Name: "a", Type: TUint64}, Column{Name: "a", Type: TBool}); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestSchemaVarLenOrdering(t *testing.T) {
	// Var-len column declared first: fixed cols still decode at static
	// offsets, var-len cols walk in encoded order.
	s := MustSchema(
		Column{Name: "tag", Type: TString},
		Column{Name: "n", Type: TUint64},
		Column{Name: "body", Type: TBytes},
	)
	buf, err := s.Encode("hello", uint64(5), []byte("world"))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := s.DecodeCol(buf, 1); err != nil || v != uint64(5) {
		t.Fatalf("fixed col after var-len decl: %v %v", v, err)
	}
	if v, err := s.DecodeCol(buf, 2); err != nil || !bytes.Equal(v.([]byte), []byte("world")) {
		t.Fatalf("second var col: %v %v", v, err)
	}
	got, err := s.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != "hello" || got[1] != uint64(5) || !bytes.Equal(got[2].([]byte), []byte("world")) {
		t.Fatalf("got %v", got)
	}
}
