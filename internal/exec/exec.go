// Package exec is the typed executor: an algebra layer over the
// session plane that replaces raw point ops on opaque byte slices with
// schemas, typed rows, query operators and batched transactions.
//
// The layering is strict — exec never touches pages or the log; it
// compiles typed operations down to the same session-plane calls the
// raw API exposes:
//
//	Query operator tree (Scan · Where · Filter · Project · Limit)
//	        │ pushdown: key range + compiled predicate
//	        ▼
//	Session.ScanRange / ApplyBatch   (per-shard planes, logical locks)
//	        │
//	        ▼
//	B-tree iterator (pred runs on page-resident bytes, pre-copy)
//
// Where predicates compile to a partial-decode closure (Schema.
// DecodeCol) that the B-tree iterator evaluates before a row is
// copied, locked or decoded — the executor's decode counter therefore
// only ticks for surviving rows, which is the measurable win of
// pushdown over post-filtering. The raw Session API remains the
// documented low-level plane; exec is the client surface.
package exec

import (
	"errors"
	"fmt"

	"logrec/internal/tc"
	"logrec/internal/wal"
)

// Executor-layer error sentinels. Session-layer errors (lock
// conflicts, busy sessions, missing keys) pass through wrapped, so
// errors.Is against the tc sentinels keeps working on every exec
// return.
var (
	// ErrSchema indicates a value that does not fit the schema: wrong
	// arity, wrong column type, oversized payload, or an encoded row
	// whose header or layout the schema rejects.
	ErrSchema = errors.New("exec: schema mismatch")

	// ErrNoColumn indicates a reference to a column name the schema
	// does not define.
	ErrNoColumn = errors.New("exec: no such column")
)

// Executor runs typed operations against one table through a session.
// One goroutine drives an executor, like the session it wraps;
// independent executors over independent sessions run concurrently.
type Executor struct {
	sess   *tc.Session
	table  wal.TableID
	schema *Schema

	// decoded counts full-row decodes — the work pushdown avoids.
	decoded int64
}

// New returns an executor over sess for table rows shaped by schema.
func New(sess *tc.Session, table wal.TableID, schema *Schema) *Executor {
	return &Executor{sess: sess, table: table, schema: schema}
}

// Schema returns the executor's row schema.
func (ex *Executor) Schema() *Schema { return ex.schema }

// Session returns the underlying session (escape hatch to the raw
// low-level plane).
func (ex *Executor) Session() *tc.Session { return ex.sess }

// DecodedRows returns how many full-row decodes this executor has
// performed. Pushdown scans decode only surviving rows; post-filter
// scans decode everything — the difference is this counter.
func (ex *Executor) DecodedRows() int64 { return ex.decoded }

// decode is the counted full-row decode.
func (ex *Executor) decode(buf []byte) ([]any, error) {
	ex.decoded++
	return ex.schema.Decode(buf)
}

// inTxn reports whether the session has an active transaction.
func (ex *Executor) inTxn() bool { return ex.sess.Txn() != nil }

// autoTxn runs fn inside the session's current transaction when one is
// active, and otherwise wraps fn in its own Begin/Commit (Abort on
// error). Single typed ops are therefore transactions of their own
// unless composed under Txn.
func (ex *Executor) autoTxn(fn func() error) error {
	if ex.inTxn() {
		return fn()
	}
	return ex.Txn(fn)
}

// Txn runs fn as one transaction: Begin, fn, Commit — or Abort when fn
// fails, in which case fn's error is returned. Typed ops and queries
// issued inside fn share the transaction and its locks.
func (ex *Executor) Txn(fn func() error) error {
	if err := ex.sess.Begin(); err != nil {
		return fmt.Errorf("exec: begin: %w", err)
	}
	if err := fn(); err != nil {
		if aerr := ex.sess.Abort(); aerr != nil {
			return fmt.Errorf("exec: abort after %v: %w", err, aerr)
		}
		return err
	}
	if err := ex.sess.Commit(); err != nil {
		return fmt.Errorf("exec: commit: %w", err)
	}
	return nil
}

// Get reads the row at key, decoded into one value per column. ok is
// false when the key is absent.
func (ex *Executor) Get(key uint64) (vals []any, ok bool, err error) {
	err = ex.autoTxn(func() error {
		raw, found, rerr := ex.sess.Read(ex.table, key)
		if rerr != nil {
			return fmt.Errorf("exec: get %d: %w", key, rerr)
		}
		if !found {
			return nil
		}
		v, derr := ex.decode(raw)
		if derr != nil {
			return derr
		}
		vals, ok = v, true
		return nil
	})
	return vals, ok, err
}

// GetCol reads one named column of the row at key via partial decode.
func (ex *Executor) GetCol(key uint64, col string) (val any, ok bool, err error) {
	i, found := ex.schema.ColIndex(col)
	if !found {
		return nil, false, fmt.Errorf("%w: %q", ErrNoColumn, col)
	}
	err = ex.autoTxn(func() error {
		raw, have, rerr := ex.sess.Read(ex.table, key)
		if rerr != nil {
			return fmt.Errorf("exec: get %d: %w", key, rerr)
		}
		if !have {
			return nil
		}
		v, derr := ex.schema.DecodeCol(raw, i)
		if derr != nil {
			return derr
		}
		val, ok = v, true
		return nil
	})
	return val, ok, err
}

// Insert adds a new row at key with one value per column.
func (ex *Executor) Insert(key uint64, vals ...any) error {
	buf, err := ex.schema.Encode(vals...)
	if err != nil {
		return err
	}
	return ex.autoTxn(func() error {
		if err := ex.sess.Insert(ex.table, key, buf); err != nil {
			return fmt.Errorf("exec: insert %d: %w", key, err)
		}
		return nil
	})
}

// Update replaces the row at key with one value per column.
func (ex *Executor) Update(key uint64, vals ...any) error {
	buf, err := ex.schema.Encode(vals...)
	if err != nil {
		return err
	}
	return ex.autoTxn(func() error {
		if err := ex.sess.Update(ex.table, key, buf); err != nil {
			return fmt.Errorf("exec: update %d: %w", key, err)
		}
		return nil
	})
}

// UpdateCol rewrites one named column of the row at key, leaving the
// other columns as they are (read-modify-write under the row's
// exclusive lock).
func (ex *Executor) UpdateCol(key uint64, col string, val any) error {
	i, found := ex.schema.ColIndex(col)
	if !found {
		return fmt.Errorf("%w: %q", ErrNoColumn, col)
	}
	return ex.autoTxn(func() error {
		raw, have, err := ex.sess.Read(ex.table, key)
		if err != nil {
			return fmt.Errorf("exec: update %d: %w", key, err)
		}
		if !have {
			return fmt.Errorf("exec: update %d: %w", key, tc.ErrKeyNotFound)
		}
		vals, err := ex.decode(raw)
		if err != nil {
			return err
		}
		vals[i] = val
		buf, err := ex.schema.Encode(vals...)
		if err != nil {
			return err
		}
		if err := ex.sess.Update(ex.table, key, buf); err != nil {
			return fmt.Errorf("exec: update %d: %w", key, err)
		}
		return nil
	})
}

// Delete removes the row at key.
func (ex *Executor) Delete(key uint64) error {
	return ex.autoTxn(func() error {
		if err := ex.sess.Delete(ex.table, key); err != nil {
			return fmt.Errorf("exec: delete %d: %w", key, err)
		}
		return nil
	})
}
