package exec

import (
	"bytes"
	"errors"
	"fmt"
)

// CmpOp is a Where comparison operator.
type CmpOp int

// Comparison operators. Ordering operators apply to numeric and
// string columns; Bytes columns compare lexicographically.
const (
	// Eq matches column == literal.
	Eq CmpOp = iota
	// Ne matches column != literal.
	Ne
	// Lt matches column < literal.
	Lt
	// Le matches column <= literal.
	Le
	// Gt matches column > literal.
	Gt
	// Ge matches column >= literal.
	Ge
)

func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "=="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

// Row is one query result: the row's key plus its output columns —
// the full schema row, or the Project subset in projection order.
type Row struct {
	// Key is the row's key.
	Key uint64
	// Cols holds the output column values.
	Cols []any
}

// wherePred is one compiled pushdown predicate: column index, operator
// and normalized literal.
type wherePred struct {
	col int
	op  CmpOp
	lit any
}

// Query is a lazily-built operator tree over one executor's table:
// Scan supplies the key range, Where adds pushdown predicates, Filter
// adds post-decode predicates, Project narrows the output columns and
// Limit caps the row count. Nothing runs until Rows, Each or Count.
// Builder methods record the first error and return the query, so
// calls chain without per-step checks.
type Query struct {
	ex     *Executor
	lo, hi uint64
	wheres []wherePred
	posts  []func(key uint64, vals []any) bool
	proj   []int
	limit  int
	noPush bool
	err    error
}

// Scan starts a query over the keys lo ≤ key ≤ hi.
func (ex *Executor) Scan(lo, hi uint64) *Query {
	return &Query{ex: ex, lo: lo, hi: hi, limit: -1}
}

// ScanAll starts a query over the whole key space.
func (ex *Executor) ScanAll() *Query {
	return ex.Scan(0, ^uint64(0))
}

// Where adds the predicate "col op lit". Where predicates are pushed
// down into the B-tree iterator and evaluated by partial decode
// against page-resident bytes, so rows failing them are never copied,
// locked or fully decoded.
func (q *Query) Where(col string, op CmpOp, lit any) *Query {
	if q.err != nil {
		return q
	}
	i, ok := q.ex.schema.ColIndex(col)
	if !ok {
		q.err = fmt.Errorf("%w: %q", ErrNoColumn, col)
		return q
	}
	norm, err := normalize(lit, q.ex.schema.cols[i].Type)
	if err != nil {
		q.err = fmt.Errorf("%w: where %q: %v", ErrSchema, col, err)
		return q
	}
	if op < Eq || op > Ge {
		q.err = fmt.Errorf("exec: invalid comparison operator %d", op)
		return q
	}
	q.wheres = append(q.wheres, wherePred{col: i, op: op, lit: norm})
	return q
}

// Filter adds an arbitrary post-decode predicate over the full typed
// row. Unlike Where it cannot be pushed down — rows reach it already
// decoded — so prefer Where when the condition is a column comparison.
func (q *Query) Filter(pred func(key uint64, vals []any) bool) *Query {
	q.posts = append(q.posts, pred)
	return q
}

// Project narrows the output to the named columns, in the given order.
func (q *Query) Project(cols ...string) *Query {
	if q.err != nil {
		return q
	}
	idx := make([]int, len(cols))
	for j, name := range cols {
		i, ok := q.ex.schema.ColIndex(name)
		if !ok {
			q.err = fmt.Errorf("%w: %q", ErrNoColumn, name)
			return q
		}
		idx[j] = i
	}
	q.proj = idx
	return q
}

// Limit caps the number of rows produced; the scan stops early once n
// rows have been emitted.
func (q *Query) Limit(n int) *Query {
	q.limit = n
	return q
}

// NoPushdown disables predicate pushdown: Where predicates run after
// the full-row decode, like Filter. Every scanned row is copied,
// locked and decoded. This exists for the benchmark comparison and as
// a debugging aid; production queries should leave pushdown on.
func (q *Query) NoPushdown() *Query {
	q.noPush = true
	return q
}

// errLimit stops the underlying scan once Limit rows have been
// emitted; it never escapes to callers.
var errLimit = errors.New("exec: limit reached")

// compileWheres builds the raw pushdown predicate from the Where
// clauses, or nil when there is nothing to push.
func (q *Query) compileWheres() func(key uint64, val []byte) bool {
	if len(q.wheres) == 0 || q.noPush {
		return nil
	}
	schema := q.ex.schema
	wheres := q.wheres
	return func(_ uint64, val []byte) bool {
		for _, w := range wheres {
			v, err := schema.DecodeCol(val, w.col)
			if err != nil {
				// Undecodable rows survive pushdown so the full
				// decode surfaces the error to the caller.
				return true
			}
			if !compare(v, w.op, w.lit) {
				return false
			}
		}
		return true
	}
}

// Each runs the query, streaming each result row through fn in key
// order. The Row passed to fn is freshly allocated per call.
func (q *Query) Each(fn func(Row) error) error {
	if q.err != nil {
		return q.err
	}
	if q.limit == 0 {
		return nil
	}
	pred := q.compileWheres()
	emitted := 0
	scan := func() error {
		return q.ex.sess.ScanRange(q.ex.table, q.lo, q.hi, pred, func(key uint64, raw []byte) error {
			vals, err := q.ex.decode(raw)
			if err != nil {
				return err
			}
			if q.noPush {
				for _, w := range q.wheres {
					if !compare(vals[w.col], w.op, w.lit) {
						return nil
					}
				}
			}
			for _, post := range q.posts {
				if !post(key, vals) {
					return nil
				}
			}
			out := vals
			if q.proj != nil {
				out = make([]any, len(q.proj))
				for j, i := range q.proj {
					out[j] = vals[i]
				}
			}
			if err := fn(Row{Key: key, Cols: out}); err != nil {
				return err
			}
			emitted++
			if q.limit >= 0 && emitted >= q.limit {
				return errLimit
			}
			return nil
		})
	}
	err := q.ex.autoTxn(func() error {
		if serr := scan(); serr != nil && !errors.Is(serr, errLimit) {
			return fmt.Errorf("exec: scan [%d,%d]: %w", q.lo, q.hi, serr)
		}
		return nil
	})
	return err
}

// Rows runs the query and returns every result row in key order.
func (q *Query) Rows() ([]Row, error) {
	var out []Row
	err := q.Each(func(r Row) error {
		out = append(out, r)
		return nil
	})
	return out, err
}

// Count runs the query and returns the number of result rows.
func (q *Query) Count() (int, error) {
	n := 0
	err := q.Each(func(Row) error {
		n++
		return nil
	})
	return n, err
}

// compare evaluates "v op lit" for two values normalized to the same
// column type.
func compare(v any, op CmpOp, lit any) bool {
	c, ok := cmpValues(v, lit)
	if !ok {
		return false
	}
	switch op {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	}
	return false
}

// cmpValues three-way-compares two same-typed column values; ok is
// false when the types differ or are not comparable.
func cmpValues(a, b any) (int, bool) {
	switch x := a.(type) {
	case uint64:
		y, ok := b.(uint64)
		return cmpOrdered(x, y), ok
	case int64:
		y, ok := b.(int64)
		return cmpOrdered(x, y), ok
	case float64:
		y, ok := b.(float64)
		return cmpOrdered(x, y), ok
	case string:
		y, ok := b.(string)
		return cmpOrdered(x, y), ok
	case bool:
		y, ok := b.(bool)
		c := 0
		if x != y {
			if x {
				c = 1
			} else {
				c = -1
			}
		}
		return c, ok
	case []byte:
		y, ok := b.([]byte)
		if !ok {
			return 0, false
		}
		return bytes.Compare(x, y), true
	}
	return 0, false
}

// cmpOrdered three-way-compares two ordered values.
func cmpOrdered[T interface {
	~uint64 | ~int64 | ~float64 | ~string
}](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
