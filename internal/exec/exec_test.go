// End-to-end tests for the typed executor: operators against a
// sharded engine, pushdown decode accounting, batches, error
// passthrough, and a crash/recover typed round trip.
package exec_test

import (
	"errors"
	"fmt"
	"testing"

	"logrec/internal/core"
	"logrec/internal/engine"
	"logrec/internal/exec"
	"logrec/internal/tc"
)

var rowSchema = exec.MustSchema(
	exec.Column{Name: "n", Type: exec.TUint64},
	exec.Column{Name: "name", Type: exec.TString},
	exec.Column{Name: "even", Type: exec.TBool},
)

func encodeRow(t testing.TB, k uint64) []byte {
	t.Helper()
	buf, err := rowSchema.Encode(k, fmt.Sprintf("row-%04d", k), k%2 == 0)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// newExecEngine builds a 4-shard engine preloaded with rows typed rows
// and returns it with an executor over a fresh session.
func newExecEngine(t testing.TB, rows int) (*engine.Engine, *exec.Executor) {
	t.Helper()
	cfg := engine.DefaultConfig()
	cfg.Shards = 4
	cfg.CachePages = 512
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(rows, func(k uint64) []byte { return encodeRow(t, k) }); err != nil {
		t.Fatal(err)
	}
	mgr := eng.NewSessionManager(0)
	return eng, exec.New(mgr.NewSession(), cfg.TableID, rowSchema)
}

func TestExecutorPointOps(t *testing.T) {
	_, ex := newExecEngine(t, 64)

	vals, ok, err := ex.Get(10)
	if err != nil || !ok {
		t.Fatalf("Get(10): %v ok=%v", err, ok)
	}
	if vals[0] != uint64(10) || vals[1] != "row-0010" || vals[2] != true {
		t.Fatalf("Get(10) = %v", vals)
	}

	if err := ex.Insert(1000, uint64(1000), "fresh", false); err != nil {
		t.Fatal(err)
	}
	if err := ex.UpdateCol(1000, "name", "renamed"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := ex.GetCol(1000, "name")
	if err != nil || !ok || v != "renamed" {
		t.Fatalf("GetCol = %v ok=%v err=%v", v, ok, err)
	}
	if err := ex.Delete(1000); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := ex.Get(1000); ok {
		t.Fatal("row survived Delete")
	}

	// Session-layer sentinels pass through exec wrapping.
	if err := ex.UpdateCol(9999, "name", "x"); !errors.Is(err, tc.ErrKeyNotFound) {
		t.Fatalf("update of missing key: err = %v, want ErrKeyNotFound", err)
	}
	if _, _, err := ex.GetCol(1, "nope"); !errors.Is(err, exec.ErrNoColumn) {
		t.Fatalf("bad column: err = %v", err)
	}
	if err := ex.Insert(2000, "wrong", "types", 3); !errors.Is(err, exec.ErrSchema) {
		t.Fatalf("bad insert types: err = %v", err)
	}
}

func TestExecutorTxnComposesAndAborts(t *testing.T) {
	_, ex := newExecEngine(t, 64)
	err := ex.Txn(func() error {
		if err := ex.Update(1, uint64(1), "inside", false); err != nil {
			return err
		}
		return errors.New("boom")
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("Txn err = %v", err)
	}
	v, _, err := ex.GetCol(1, "name")
	if err != nil {
		t.Fatal(err)
	}
	if v != "row-0001" {
		t.Fatalf("aborted write visible: name = %v", v)
	}
}

func TestQueryOperatorsAndPushdown(t *testing.T) {
	_, ex := newExecEngine(t, 200)

	// Where pushdown: only matching rows are fully decoded.
	before := ex.DecodedRows()
	rows, err := ex.Scan(0, 99).Where("even", exec.Eq, true).Project("n", "name").Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatalf("got %d rows, want 50", len(rows))
	}
	if got := ex.DecodedRows() - before; got != 50 {
		t.Fatalf("pushdown decoded %d rows, want 50", got)
	}
	if len(rows[0].Cols) != 2 || rows[0].Cols[0] != uint64(0) || rows[0].Cols[1] != "row-0000" {
		t.Fatalf("projected row = %+v", rows[0])
	}

	// Same query without pushdown decodes every scanned row.
	before = ex.DecodedRows()
	rows2, err := ex.Scan(0, 99).Where("even", exec.Eq, true).NoPushdown().Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 50 {
		t.Fatalf("got %d rows, want 50", len(rows2))
	}
	if got := ex.DecodedRows() - before; got != 100 {
		t.Fatalf("post-filter decoded %d rows, want 100", got)
	}

	// Limit stops the scan early.
	before = ex.DecodedRows()
	few, err := ex.ScanAll().Limit(3).Rows()
	if err != nil || len(few) != 3 {
		t.Fatalf("limit: %d rows err=%v", len(few), err)
	}
	if got := ex.DecodedRows() - before; got != 3 {
		t.Fatalf("limited scan decoded %d rows, want 3", got)
	}

	// Filter is post-decode; Count composes.
	n, err := ex.Scan(0, 199).
		Where("n", exec.Ge, 100).
		Filter(func(_ uint64, vals []any) bool { return vals[2].(bool) }).
		Count()
	if err != nil || n != 50 {
		t.Fatalf("count = %d err=%v, want 50", n, err)
	}

	// Builder errors surface at run time.
	if _, err := ex.ScanAll().Where("nope", exec.Eq, 1).Rows(); !errors.Is(err, exec.ErrNoColumn) {
		t.Fatalf("bad where column: err = %v", err)
	}
}

func TestBatchRun(t *testing.T) {
	_, ex := newExecEngine(t, 64)

	res, err := ex.NewBatch().
		Read(5).
		Update(6, uint64(6), "batched", true).
		Insert(500, uint64(500), "new", false).
		Delete(7).
		Read(63).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d read results, want 2", len(res))
	}
	if !res[0].Found || res[0].Key != 5 || res[0].Cols[1] != "row-0005" {
		t.Fatalf("read slot 0 = %+v", res[0])
	}
	if !res[1].Found || res[1].Key != 63 {
		t.Fatalf("read slot 1 = %+v", res[1])
	}
	if v, _, _ := ex.GetCol(6, "name"); v != "batched" {
		t.Fatalf("batched update lost: %v", v)
	}
	if _, ok, _ := ex.Get(500); !ok {
		t.Fatal("batched insert lost")
	}
	if _, ok, _ := ex.Get(7); ok {
		t.Fatal("batched delete lost")
	}

	// A failing op aborts the enclosing auto-transaction: nothing
	// commits.
	_, err = ex.NewBatch().
		Update(8, uint64(8), "doomed", false).
		Update(9999, uint64(0), "missing", false).
		Run()
	if !errors.Is(err, tc.ErrKeyNotFound) {
		t.Fatalf("batch with missing key: err = %v", err)
	}
	if v, _, _ := ex.GetCol(8, "name"); v != "row-0008" {
		t.Fatalf("failed batch leaked a write: %v", v)
	}
}

func TestExecutorCrashRecoveryTypedRoundTrip(t *testing.T) {
	eng, ex := newExecEngine(t, 128)

	if err := ex.Txn(func() error {
		for k := uint64(0); k < 10; k++ {
			if err := ex.Update(k, k, fmt.Sprintf("committed-%d", k), false); err != nil {
				return err
			}
		}
		return ex.Insert(300, uint64(300), "fresh-row", true)
	}); err != nil {
		t.Fatal(err)
	}

	// A transaction left uncommitted at the crash must vanish.
	sess := ex.Session()
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	loser := exec.New(sess, 1, rowSchema)
	if err := loser.Update(20, uint64(20), "UNCOMMITTED", false); err != nil {
		t.Fatal(err)
	}

	eng.TC.SendEOSL()
	crash := eng.Crash()
	rec, _, err := core.Recover(crash, core.Log2, core.DefaultOptions(eng.Cfg))
	if err != nil {
		t.Fatal(err)
	}

	rmgr := rec.NewSessionManager(0)
	rex := exec.New(rmgr.NewSession(), rec.Cfg.TableID, rowSchema)
	rows, err := rex.ScanAll().Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 129 {
		t.Fatalf("recovered %d rows, want 129", len(rows))
	}
	byKey := map[uint64][]any{}
	for _, r := range rows {
		byKey[r.Key] = r.Cols
	}
	for k := uint64(0); k < 10; k++ {
		if byKey[k][1] != fmt.Sprintf("committed-%d", k) {
			t.Fatalf("key %d: committed write lost: %v", k, byKey[k])
		}
	}
	if byKey[300] == nil || byKey[300][1] != "fresh-row" {
		t.Fatalf("committed insert lost: %v", byKey[300])
	}
	if byKey[20][1] != "row-0020" {
		t.Fatalf("uncommitted write survived: %v", byKey[20])
	}
}
