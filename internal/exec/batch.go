package exec

import (
	"fmt"

	"logrec/internal/tc"
)

// Batch accumulates typed operations and runs them as one transaction
// through a single session-plane round-trip: all logical locks are
// acquired up front and the deduplicated owning shard planes exactly
// once, instead of a route/lock/release cycle per op. Build with
// Executor.NewBatch, add ops, then Run.
type Batch struct {
	ex  *Executor
	ops []tc.BatchOp
	// reads maps batch-result slots back to Read call order.
	reads []int
	err   error
}

// BatchResult is one Read op's outcome, in Read call order.
type BatchResult struct {
	// Key is the key the Read targeted.
	Key uint64
	// Found reports whether the row exists.
	Found bool
	// Cols holds the decoded row when Found.
	Cols []any
}

// NewBatch returns an empty batch over the executor's table.
func (ex *Executor) NewBatch() *Batch {
	return &Batch{ex: ex}
}

// Len returns the number of ops queued.
func (b *Batch) Len() int { return len(b.ops) }

// Read queues a typed read of key; its decoded row comes back in the
// Run result, in Read call order.
func (b *Batch) Read(key uint64) *Batch {
	b.reads = append(b.reads, len(b.ops))
	b.ops = append(b.ops, tc.BatchOp{Kind: tc.BatchRead, Table: b.ex.table, Key: key})
	return b
}

// Insert queues a typed insert of key with one value per column.
// Encoding errors surface from Run.
func (b *Batch) Insert(key uint64, vals ...any) *Batch {
	return b.write(tc.BatchInsert, key, vals)
}

// Update queues a typed update of key with one value per column.
func (b *Batch) Update(key uint64, vals ...any) *Batch {
	return b.write(tc.BatchUpdate, key, vals)
}

// Delete queues a delete of key.
func (b *Batch) Delete(key uint64) *Batch {
	b.ops = append(b.ops, tc.BatchOp{Kind: tc.BatchDelete, Table: b.ex.table, Key: key})
	return b
}

// write encodes and queues one write op, recording the first error.
func (b *Batch) write(kind tc.BatchKind, key uint64, vals []any) *Batch {
	if b.err != nil {
		return b
	}
	buf, err := b.ex.schema.Encode(vals...)
	if err != nil {
		b.err = fmt.Errorf("exec: batch %v %d: %w", kind, key, err)
		return b
	}
	b.ops = append(b.ops, tc.BatchOp{Kind: kind, Table: b.ex.table, Key: key, Val: buf})
	return b
}

// Run executes the batch as one transaction — one Begin, one grouped
// lock-and-plane acquisition, one Commit — and returns the Read
// results in Read call order. Inside an enclosing Executor.Txn the ops
// join that transaction instead. On error nothing of the batch
// commits (the wrapping transaction aborts).
func (b *Batch) Run() ([]BatchResult, error) {
	if b.err != nil {
		return nil, b.err
	}
	var out []BatchResult
	err := b.ex.autoTxn(func() error {
		raw, err := b.ex.sess.ApplyBatch(b.ops)
		if err != nil {
			return fmt.Errorf("exec: batch: %w", err)
		}
		out = make([]BatchResult, len(b.reads))
		for j, slot := range b.reads {
			res := BatchResult{Key: b.ops[slot].Key}
			if raw[slot] != nil {
				vals, derr := b.ex.decode(raw[slot])
				if derr != nil {
					return derr
				}
				res.Found, res.Cols = true, vals
			}
			out[j] = res
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
