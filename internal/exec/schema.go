package exec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// rowVersion is the codec version stamped into every encoded row's
// header byte. Decoders reject other versions, so the layout can
// evolve without silently misreading old rows.
const rowVersion = 0x01

// ColType is a column's value type.
type ColType uint8

// Column value types. The first four are fixed-width and live at
// static offsets in the encoded row; String and Bytes are
// variable-length with a 16-bit length prefix.
const (
	// TUint64 is an unsigned 64-bit integer column.
	TUint64 ColType = iota + 1
	// TInt64 is a signed 64-bit integer column.
	TInt64
	// TFloat64 is an IEEE-754 double column.
	TFloat64
	// TBool is a boolean column.
	TBool
	// TString is a UTF-8 string column (max 65535 bytes encoded).
	TString
	// TBytes is a raw byte-slice column (max 65535 bytes).
	TBytes
)

func (t ColType) String() string {
	switch t {
	case TUint64:
		return "uint64"
	case TInt64:
		return "int64"
	case TFloat64:
		return "float64"
	case TBool:
		return "bool"
	case TString:
		return "string"
	case TBytes:
		return "bytes"
	}
	return "invalid"
}

// fixedSize returns the encoded width of a fixed-width type, or 0 for
// variable-length types.
func (t ColType) fixedSize() int {
	switch t {
	case TUint64, TInt64, TFloat64:
		return 8
	case TBool:
		return 1
	}
	return 0
}

// Column is one named, typed column in a schema.
type Column struct {
	// Name is the column's name, unique within its schema.
	Name string
	// Type is the column's value type.
	Type ColType
}

// Schema is an ordered list of typed columns plus the codec turning a
// row of Go values into the engine's opaque []byte value and back.
// Fixed-width columns are encoded before variable-length ones
// (regardless of declaration order), so every fixed column sits at a
// static offset and DecodeCol can read it without touching the rest of
// the row — that partial decode is what predicate pushdown evaluates
// inside the B-tree iterator. A Schema is immutable after NewSchema
// and safe for concurrent use.
type Schema struct {
	cols   []Column
	byName map[string]int
	// offset[i] is the static byte offset of fixed column i (after the
	// header); -1 for variable-length columns, which are walked.
	offset []int
	// varOrder lists the indices of variable-length columns in their
	// encoded order.
	varOrder []int
	// fixedEnd is the offset where the variable-length region starts.
	fixedEnd int
}

// NewSchema builds a schema from cols. Column names must be non-empty
// and unique; at least one column is required.
func NewSchema(cols ...Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("exec: schema needs at least one column")
	}
	s := &Schema{
		cols:   append([]Column(nil), cols...),
		byName: make(map[string]int, len(cols)),
		offset: make([]int, len(cols)),
	}
	off := 0
	for i, c := range s.cols {
		if c.Name == "" {
			return nil, fmt.Errorf("exec: column %d has empty name", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("exec: duplicate column %q", c.Name)
		}
		if c.Type.fixedSize() == 0 && c.Type != TString && c.Type != TBytes {
			return nil, fmt.Errorf("exec: column %q has invalid type %d", c.Name, c.Type)
		}
		s.byName[c.Name] = i
		if w := c.Type.fixedSize(); w > 0 {
			s.offset[i] = off
			off += w
		} else {
			s.offset[i] = -1
			s.varOrder = append(s.varOrder, i)
		}
	}
	s.fixedEnd = off
	return s, nil
}

// MustSchema is NewSchema that panics on error (package-level schema
// literals in examples and tests).
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Cols returns the schema's columns in declaration order.
func (s *Schema) Cols() []Column { return append([]Column(nil), s.cols...) }

// NumCols returns the number of columns.
func (s *Schema) NumCols() int { return len(s.cols) }

// ColIndex returns the declaration index of the named column.
func (s *Schema) ColIndex(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// normalize coerces v to the canonical Go type for t, accepting the
// untyped-constant-friendly int for the numeric columns.
func normalize(v any, t ColType) (any, error) {
	switch t {
	case TUint64:
		switch x := v.(type) {
		case uint64:
			return x, nil
		case int:
			if x < 0 {
				return nil, fmt.Errorf("exec: negative value %d for uint64 column", x)
			}
			return uint64(x), nil
		}
	case TInt64:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		}
	case TFloat64:
		if x, ok := v.(float64); ok {
			return x, nil
		}
	case TBool:
		if x, ok := v.(bool); ok {
			return x, nil
		}
	case TString:
		if x, ok := v.(string); ok {
			return x, nil
		}
	case TBytes:
		if x, ok := v.([]byte); ok {
			return x, nil
		}
	}
	return nil, fmt.Errorf("exec: value %T does not fit %v column", v, t)
}

// Encode packs vals (one per column, declaration order) into the
// engine's opaque row bytes. Numeric columns accept int literals;
// everything else requires the column's exact Go type.
func (s *Schema) Encode(vals ...any) ([]byte, error) {
	if len(vals) != len(s.cols) {
		return nil, fmt.Errorf("%w: got %d values for %d columns", ErrSchema, len(vals), len(s.cols))
	}
	buf := make([]byte, 1+s.fixedEnd, 1+s.fixedEnd+16*len(s.varOrder))
	buf[0] = rowVersion
	for i, c := range s.cols {
		v, err := normalize(vals[i], c.Type)
		if err != nil {
			return nil, fmt.Errorf("%w: column %q: %v", ErrSchema, c.Name, err)
		}
		if off := s.offset[i]; off >= 0 {
			putFixed(buf[1+off:], c.Type, v)
		}
		vals[i] = v
	}
	for _, i := range s.varOrder {
		var b []byte
		switch x := vals[i].(type) {
		case string:
			b = []byte(x)
		case []byte:
			b = x
		}
		if len(b) > math.MaxUint16 {
			return nil, fmt.Errorf("%w: column %q: %d bytes exceeds max %d", ErrSchema, s.cols[i].Name, len(b), math.MaxUint16)
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(b)))
		buf = append(buf, b...)
	}
	return buf, nil
}

// putFixed writes a normalized fixed-width value at dst[0:].
func putFixed(dst []byte, t ColType, v any) {
	switch t {
	case TUint64:
		binary.LittleEndian.PutUint64(dst, v.(uint64))
	case TInt64:
		binary.LittleEndian.PutUint64(dst, uint64(v.(int64)))
	case TFloat64:
		binary.LittleEndian.PutUint64(dst, math.Float64bits(v.(float64)))
	case TBool:
		if v.(bool) {
			dst[0] = 1
		} else {
			dst[0] = 0
		}
	}
}

// getFixed reads a fixed-width value from src[0:].
func getFixed(src []byte, t ColType) any {
	switch t {
	case TUint64:
		return binary.LittleEndian.Uint64(src)
	case TInt64:
		return int64(binary.LittleEndian.Uint64(src))
	case TFloat64:
		return math.Float64frombits(binary.LittleEndian.Uint64(src))
	case TBool:
		return src[0] != 0
	}
	return nil
}

// check validates the header and fixed region of an encoded row.
func (s *Schema) check(buf []byte) error {
	if len(buf) < 1 || buf[0] != rowVersion {
		return fmt.Errorf("%w: bad row header (len %d)", ErrSchema, len(buf))
	}
	if len(buf) < 1+s.fixedEnd {
		return fmt.Errorf("%w: row truncated: %d bytes, fixed region needs %d", ErrSchema, len(buf), 1+s.fixedEnd)
	}
	return nil
}

// Decode unpacks an encoded row into one value per column, in
// declaration order. String and Bytes values are copied out of buf, so
// the result outlives the page the row was read from.
func (s *Schema) Decode(buf []byte) ([]any, error) {
	if err := s.check(buf); err != nil {
		return nil, err
	}
	out := make([]any, len(s.cols))
	for i, c := range s.cols {
		if off := s.offset[i]; off >= 0 {
			out[i] = getFixed(buf[1+off:], c.Type)
		}
	}
	pos := 1 + s.fixedEnd
	for _, i := range s.varOrder {
		b, next, err := s.varAt(buf, pos, i)
		if err != nil {
			return nil, err
		}
		if s.cols[i].Type == TString {
			out[i] = string(b)
		} else {
			out[i] = append([]byte(nil), b...)
		}
		pos = next
	}
	return out, nil
}

// varAt reads the length-prefixed payload starting at pos for column i
// and returns it (aliasing buf) with the offset past it.
func (s *Schema) varAt(buf []byte, pos, i int) ([]byte, int, error) {
	if pos+2 > len(buf) {
		return nil, 0, fmt.Errorf("%w: row truncated at column %q length", ErrSchema, s.cols[i].Name)
	}
	n := int(binary.LittleEndian.Uint16(buf[pos:]))
	pos += 2
	if pos+n > len(buf) {
		return nil, 0, fmt.Errorf("%w: row truncated in column %q payload", ErrSchema, s.cols[i].Name)
	}
	return buf[pos : pos+n], pos + n, nil
}

// DecodeCol extracts a single column from an encoded row without
// decoding the rest: fixed-width columns read directly at their static
// offset, variable-length ones walk only the preceding length
// prefixes. This is the partial decode predicate pushdown runs against
// page-resident bytes inside the B-tree iterator. String and Bytes
// results are copies.
func (s *Schema) DecodeCol(buf []byte, i int) (any, error) {
	if i < 0 || i >= len(s.cols) {
		return nil, fmt.Errorf("%w: column index %d out of range", ErrSchema, i)
	}
	if err := s.check(buf); err != nil {
		return nil, err
	}
	if off := s.offset[i]; off >= 0 {
		return getFixed(buf[1+off:], s.cols[i].Type), nil
	}
	pos := 1 + s.fixedEnd
	for _, vi := range s.varOrder {
		b, next, err := s.varAt(buf, pos, vi)
		if err != nil {
			return nil, err
		}
		if vi == i {
			if s.cols[i].Type == TString {
				return string(b), nil
			}
			return append([]byte(nil), b...), nil
		}
		pos = next
	}
	return nil, fmt.Errorf("%w: column %d not found", ErrSchema, i)
}
