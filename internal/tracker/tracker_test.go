package tracker

import (
	"testing"

	"logrec/internal/storage"
	"logrec/internal/wal"
)

func newRecorder(t *testing.T, cfg Config) (*Recorder, *wal.Log) {
	t.Helper()
	log := wal.NewLog()
	r, err := New(log, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, log
}

// lastDelta scans the log and returns the most recent ∆ record.
func lastDelta(t *testing.T, log *wal.Log) *wal.DeltaRec {
	t.Helper()
	log.Flush()
	sc := log.NewScanner(wal.FirstLSN(), nil, wal.ScanCost{})
	var out *wal.DeltaRec
	for {
		rec, _, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		if d, isD := rec.(*wal.DeltaRec); isD {
			out = d
		}
	}
}

func TestConfigValidation(t *testing.T) {
	log := wal.NewLog()
	if _, err := New(log, 0, Config{FlushBatch: 0, MaxDirty: 1}); err == nil {
		t.Fatal("accepted zero FlushBatch")
	}
	if _, err := New(log, 0, Config{FlushBatch: 1, MaxDirty: 0}); err == nil {
		t.Fatal("accepted zero MaxDirty")
	}
}

func TestDeltaBeforeBWAtFlushBatch(t *testing.T) {
	r, log := newRecorder(t, Config{FlushBatch: 2, MaxDirty: 100})
	r.NoteEOSL(500)
	r.NoteUpdate(10, 600)
	r.NoteUpdate(11, 610)
	r.NoteFlush(10)
	r.NoteFlush(11) // batch hit: ∆ then BW
	log.Flush()

	sc := log.NewScanner(wal.FirstLSN(), nil, wal.ScanCost{})
	var types []wal.Type
	for {
		rec, _, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		types = append(types, rec.Type())
	}
	if len(types) != 2 || types[0] != wal.TypeDelta || types[1] != wal.TypeBW {
		t.Fatalf("record order = %v, want [delta bw] (∆ written exactly before BW, §5.2)", types)
	}
}

func TestDeltaFieldsStandard(t *testing.T) {
	r, log := newRecorder(t, Config{FlushBatch: 100, MaxDirty: 100})
	r.NoteEOSL(1000)
	r.NoteUpdate(1, 1100) // dirtied before first write
	r.NoteUpdate(2, 1150)
	r.NoteEOSL(1200)
	r.NoteFlush(1) // first write: FW-LSN = 1200, FirstDirty = 2
	r.NoteUpdate(3, 1300)
	r.ForceEmit()

	d := lastDelta(t, log)
	if d == nil {
		t.Fatal("no ∆ record")
	}
	if len(d.DirtySet) != 3 {
		t.Fatalf("DirtySet = %v", d.DirtySet)
	}
	if d.FWLSN != 1200 {
		t.Fatalf("FW-LSN = %v, want 1200 (eLSN at first flush)", d.FWLSN)
	}
	if d.FirstDirty != 2 {
		t.Fatalf("FirstDirty = %d, want 2 (index of first dirty after first write)", d.FirstDirty)
	}
	if d.TCLSN != 1200 {
		t.Fatalf("TC-LSN = %v, want 1200 (latest EOSL)", d.TCLSN)
	}
	if len(d.WrittenSet) != 1 || d.WrittenSet[0] != 1 {
		t.Fatalf("WrittenSet = %v", d.WrittenSet)
	}
	if len(d.DirtyLSNs) != 0 {
		t.Fatal("standard variant logged DirtyLSNs")
	}
}

func TestDeltaNoFlushInterval(t *testing.T) {
	// Without any flush there is no FW-LSN; every entry counts as
	// "before the first write" so analysis assigns prev-∆ TC-LSN.
	r, log := newRecorder(t, Config{FlushBatch: 100, MaxDirty: 100})
	r.NoteEOSL(700)
	r.NoteUpdate(1, 710)
	r.NoteUpdate(2, 720)
	r.ForceEmit()
	d := lastDelta(t, log)
	if d.FWLSN != wal.NilLSN {
		t.Fatalf("FW-LSN = %v, want nil", d.FWLSN)
	}
	if int(d.FirstDirty) != len(d.DirtySet) {
		t.Fatalf("FirstDirty = %d, want %d (everything before first write)", d.FirstDirty, len(d.DirtySet))
	}
}

func TestSegmentDedupe(t *testing.T) {
	// A page updated repeatedly within one segment is captured once;
	// re-dirtying after the first write captures it again so analysis
	// advances its effective lastLSN to FW-LSN (§4.2).
	r, log := newRecorder(t, Config{FlushBatch: 100, MaxDirty: 100})
	r.NoteEOSL(100)
	r.NoteUpdate(5, 110)
	r.NoteUpdate(5, 120)
	r.NoteUpdate(5, 130)
	r.NoteFlush(5)       // first write
	r.NoteUpdate(5, 140) // re-dirtied after its flush: second capture
	r.NoteUpdate(5, 150) // deduped within segment 2
	r.ForceEmit()
	d := lastDelta(t, log)
	if len(d.DirtySet) != 2 {
		t.Fatalf("DirtySet = %v, want exactly 2 captures of page 5", d.DirtySet)
	}
	if d.FirstDirty != 1 {
		t.Fatalf("FirstDirty = %d, want 1", d.FirstDirty)
	}
}

func TestCapacityForcesDelta(t *testing.T) {
	r, log := newRecorder(t, Config{FlushBatch: 1000, MaxDirty: 3})
	r.NoteEOSL(50)
	for pid := storage.PageID(1); pid <= 7; pid++ {
		r.NoteUpdate(pid, wal.LSN(100+pid))
	}
	log.Flush()
	if got := log.AppendCount(wal.TypeDelta); got != 2 {
		t.Fatalf("∆ records = %d, want 2 (capacity 3, 7 distinct pages)", got)
	}
	if got := r.Stats().CapacityDeltas; got != 2 {
		t.Fatalf("CapacityDeltas = %d", got)
	}
	// Correctness requirement (§4.1): every dirtied page captured.
	sc := log.NewScanner(wal.FirstLSN(), nil, wal.ScanCost{})
	seen := make(map[storage.PageID]bool)
	for {
		rec, _, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if d, isD := rec.(*wal.DeltaRec); isD {
			for _, pid := range d.DirtySet {
				seen[pid] = true
			}
		}
	}
	r.ForceEmit()
	log.Flush()
	sc2 := log.NewScanner(wal.FirstLSN(), nil, wal.ScanCost{})
	for {
		rec, _, ok, err := sc2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if d, isD := rec.(*wal.DeltaRec); isD {
			for _, pid := range d.DirtySet {
				seen[pid] = true
			}
		}
	}
	for pid := storage.PageID(1); pid <= 7; pid++ {
		if !seen[pid] {
			t.Fatalf("page %d dirtied but never captured in a ∆ record", pid)
		}
	}
}

func TestPerfectVariantLogsDirtyLSNs(t *testing.T) {
	r, log := newRecorder(t, Config{Variant: DeltaPerfect, FlushBatch: 100, MaxDirty: 100})
	r.NoteEOSL(10)
	r.NoteUpdate(1, 11)
	r.NoteUpdate(2, 22)
	r.ForceEmit()
	d := lastDelta(t, log)
	if len(d.DirtyLSNs) != 2 || d.DirtyLSNs[0] != 11 || d.DirtyLSNs[1] != 22 {
		t.Fatalf("DirtyLSNs = %v", d.DirtyLSNs)
	}
}

func TestReducedVariantOmitsFWAndFirstDirty(t *testing.T) {
	r, log := newRecorder(t, Config{Variant: DeltaReduced, FlushBatch: 100, MaxDirty: 100})
	r.NoteEOSL(10)
	r.NoteUpdate(1, 11)
	r.NoteFlush(1)
	r.NoteUpdate(2, 22)
	r.ForceEmit()
	d := lastDelta(t, log)
	if d.FWLSN != wal.NilLSN {
		t.Fatalf("reduced variant logged FW-LSN %v", d.FWLSN)
	}
	if int(d.FirstDirty) != len(d.DirtySet) {
		t.Fatalf("reduced FirstDirty = %d, want %d", d.FirstDirty, len(d.DirtySet))
	}
}

func TestDisabledRecorderCapturesNothing(t *testing.T) {
	r, log := newRecorder(t, Config{FlushBatch: 1, MaxDirty: 1})
	r.SetEnabled(false)
	r.NoteUpdate(1, 10)
	r.NoteFlush(1)
	r.ForceEmit()
	log.Flush()
	if log.AppendCount(wal.TypeDelta)+log.AppendCount(wal.TypeBW) != 0 {
		t.Fatal("disabled recorder logged records")
	}
}

func TestEOSLMonotone(t *testing.T) {
	r, log := newRecorder(t, Config{FlushBatch: 100, MaxDirty: 100})
	r.NoteEOSL(500)
	r.NoteEOSL(300) // stale: ignored
	r.NoteUpdate(1, 501)
	r.ForceEmit()
	if d := lastDelta(t, log); d.TCLSN != 500 {
		t.Fatalf("TC-LSN = %v, want 500", d.TCLSN)
	}
}

func TestBWFWLSNIsELSNAtFirstFlush(t *testing.T) {
	r, log := newRecorder(t, Config{FlushBatch: 2, MaxDirty: 100})
	r.NoteEOSL(100)
	r.NoteFlush(1) // first flush of BW interval: FW = 100
	r.NoteEOSL(200)
	r.NoteFlush(2) // batch complete
	log.Flush()
	sc := log.NewScanner(wal.FirstLSN(), nil, wal.ScanCost{})
	for {
		rec, _, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if bw, isBW := rec.(*wal.BWRec); isBW {
			if bw.FWLSN != 100 {
				t.Fatalf("BW FW-LSN = %v, want 100", bw.FWLSN)
			}
			if len(bw.WrittenSet) != 2 {
				t.Fatalf("BW WrittenSet = %v", bw.WrittenSet)
			}
			return
		}
	}
	t.Fatal("no BW record found")
}

func TestVariantStrings(t *testing.T) {
	for v, want := range map[Variant]string{
		DeltaStandard: "standard",
		DeltaPerfect:  "perfect",
		DeltaReduced:  "reduced",
	} {
		if v.String() != want {
			t.Fatalf("String(%d) = %q", v, v.String())
		}
	}
}
