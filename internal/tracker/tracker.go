// Package tracker implements the normal-operation monitoring that
// prepares for optimised recovery:
//
//   - the DC's ∆-log records (§4.1): DirtySet, WrittenSet, FW-LSN,
//     FirstDirty and TC-LSN, with the Appendix D variants ("perfect"
//     per-update DirtyLSNs, and "reduced" without FW-LSN/FirstDirty);
//   - SQL Server's BW-log records (§3.3): WrittenSet and FW-LSN.
//
// Both trackers run simultaneously during normal execution, as in the
// paper's prototype (§5.1), so one log can drive both recovery
// families. ∆ records are written exactly before BW records (§5.2),
// plus extra ∆ records whenever DirtySet reaches capacity — correctness
// requires every dirtied page to be captured (§4.1).
package tracker

import (
	"fmt"
	"sync"

	"logrec/internal/storage"
	"logrec/internal/wal"
)

// Variant selects the ∆-record fidelity (Appendix D).
type Variant int

// ∆-record variants.
const (
	// DeltaStandard is the paper's main design: FW-LSN + FirstDirty.
	DeltaStandard Variant = iota
	// DeltaPerfect additionally logs the dirtying LSN of every DirtySet
	// entry (D.1), allowing a DPT identical to SQL Server's.
	DeltaPerfect
	// DeltaReduced omits FW-LSN and FirstDirty (D.2): all dirty pages
	// take the previous record's TC-LSN as rLSN.
	DeltaReduced
)

func (v Variant) String() string {
	switch v {
	case DeltaStandard:
		return "standard"
	case DeltaPerfect:
		return "perfect"
	case DeltaReduced:
		return "reduced"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Config parameterises the recorder.
type Config struct {
	// Variant selects ∆-record fidelity.
	Variant Variant
	// FlushBatch is how many flush completions accumulate before a
	// BW record (and the ∆ record preceding it) is written.
	FlushBatch int
	// MaxDirty caps DirtySet; reaching it forces an extra ∆ record.
	MaxDirty int
}

// DefaultConfig matches the experiment defaults: a BW/∆ record pair
// roughly every 32 flush completions yields the same ~25-60 records per
// analysis window the paper's Figure 2(c) reports.
func DefaultConfig() Config {
	return Config{Variant: DeltaStandard, FlushBatch: 32, MaxDirty: 256}
}

// Stats counts tracker activity.
type Stats struct {
	DeltaRecords   int64
	BWRecords      int64
	DirtyCaptured  int64
	FlushCaptured  int64
	CapacityDeltas int64 // ∆ records forced by a full DirtySet
}

// Recorder owns both trackers and their shared cadence. It is wired to
// the DC: NoteUpdate on every page dirtying, NoteFlush from the buffer
// pool's flush hook, NoteEOSL from the TC's EOSL control operation.
// A mutex makes the recorder safe for concurrent use: under concurrent
// sessions, EOSL arrives from the group-commit flusher's goroutine
// while updates and flushes arrive from sessions holding the engine
// mutex.
type Recorder struct {
	mu  sync.Mutex
	log *wal.Log
	cfg Config

	// shard stamps every emitted ∆/BW record with the owning DC, so
	// recovery can demultiplex the shared log into per-shard pipelines.
	shard wal.ShardID

	// eLSN is the TC's end of stable log per the latest EOSL; it
	// becomes the ∆ record's TC-LSN (§4.1).
	eLSN wal.LSN

	// ---- ∆ state (reset after each ∆ record) ----
	dirtySet  []storage.PageID
	dirtyLSNs []wal.LSN // perfect variant only
	// seg marks which interval segment a PID was already captured in:
	// 1 = before the first write, 2 = after. A PID is appended at most
	// once per segment; segment 2 re-appends advance the page's
	// effective lastLSN to FW-LSN during DPT construction (§4.2).
	seg            map[storage.PageID]uint8
	deltaWritten   []storage.PageID
	deltaFW        wal.LSN
	deltaFirst     int
	haveFirstWrite bool

	// ---- BW state (reset after each BW record) ----
	bwWritten []storage.PageID
	bwFW      wal.LSN

	// enabled gates capture; recovery disables the recorder so redo's
	// own flush activity is not logged.
	enabled bool

	stats Stats
}

// New creates a recorder appending to log on behalf of shard sh.
func New(log *wal.Log, sh wal.ShardID, cfg Config) (*Recorder, error) {
	if cfg.FlushBatch < 1 {
		return nil, fmt.Errorf("tracker: FlushBatch must be ≥ 1, got %d", cfg.FlushBatch)
	}
	if cfg.MaxDirty < 1 {
		return nil, fmt.Errorf("tracker: MaxDirty must be ≥ 1, got %d", cfg.MaxDirty)
	}
	return &Recorder{
		log:     log,
		cfg:     cfg,
		shard:   sh,
		seg:     make(map[storage.PageID]uint8),
		enabled: true,
	}, nil
}

// SetEnabled turns capture on or off (off during recovery).
func (r *Recorder) SetEnabled(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.enabled = on
}

// Stats returns a copy of the counters.
func (r *Recorder) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Config returns the recorder configuration.
func (r *Recorder) Config() Config { return r.cfg }

// NoteEOSL records a new TC end-of-stable-log (the EOSL control
// operation, §4.1).
func (r *Recorder) NoteEOSL(eLSN wal.LSN) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if eLSN > r.eLSN {
		r.eLSN = eLSN
	}
}

// NoteUpdate captures a page dirtying by the operation at lsn. Appends
// are deduplicated per interval segment; every clean→dirty transition
// lands in some ∆ record, which §4.1 requires for correctness.
func (r *Recorder) NoteUpdate(pid storage.PageID, lsn wal.LSN) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.enabled {
		return
	}
	want := uint8(1)
	if r.haveFirstWrite {
		want = 2
	}
	if r.seg[pid] >= want {
		return
	}
	r.seg[pid] = want
	r.dirtySet = append(r.dirtySet, pid)
	if r.cfg.Variant == DeltaPerfect {
		r.dirtyLSNs = append(r.dirtyLSNs, lsn)
	}
	r.stats.DirtyCaptured++
	if len(r.dirtySet) >= r.cfg.MaxDirty {
		r.stats.CapacityDeltas++
		r.emitDelta()
	}
}

// NoteFlush captures a completed page flush. The first flush of each
// interval snapshots FW-LSN (the TC end of stable log "at the time of
// the first write") and FirstDirty (the DirtySet index of the next
// dirty capture), per §4.1.
func (r *Recorder) NoteFlush(pid storage.PageID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.enabled {
		return
	}
	if !r.haveFirstWrite {
		r.haveFirstWrite = true
		r.deltaFW = r.eLSN
		r.deltaFirst = len(r.dirtySet)
	}
	r.deltaWritten = append(r.deltaWritten, pid)
	if len(r.bwWritten) == 0 {
		r.bwFW = r.eLSN
	}
	r.bwWritten = append(r.bwWritten, pid)
	r.stats.FlushCaptured++
	if len(r.bwWritten) >= r.cfg.FlushBatch {
		// ∆ exactly before BW (§5.2) so both recovery families see
		// equivalent information at the same log position.
		r.emitDelta()
		r.emitBW()
	}
}

// ForceEmit writes out any buffered state (used at checkpoints so the
// interval aligns with the redo scan start, and by tests).
func (r *Recorder) ForceEmit() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.emitDelta()
	r.emitBW()
}

func (r *Recorder) emitDelta() {
	if len(r.dirtySet) == 0 && len(r.deltaWritten) == 0 {
		return
	}
	rec := &wal.DeltaRec{
		DirtySet:   r.dirtySet,
		WrittenSet: r.deltaWritten,
		TCLSN:      r.eLSN,
		ShardID:    r.shard,
	}
	// With no flush in the interval there is no FW-LSN: every entry
	// was dirtied "before the first write", so FirstDirty covers the
	// whole DirtySet and analysis assigns the previous record's TC-LSN.
	first := r.deltaFirst
	if !r.haveFirstWrite {
		first = len(r.dirtySet)
	}
	switch r.cfg.Variant {
	case DeltaStandard:
		rec.FWLSN = r.deltaFW
		rec.FirstDirty = uint32(first)
	case DeltaPerfect:
		rec.FWLSN = r.deltaFW
		rec.FirstDirty = uint32(first)
		rec.DirtyLSNs = r.dirtyLSNs
	case DeltaReduced:
		// D.2: no FW-LSN, no FirstDirty. FirstDirty = len(DirtySet)
		// encodes "treat every entry as dirtied before the first
		// write"; FW-LSN stays nil.
		rec.FWLSN = wal.NilLSN
		rec.FirstDirty = uint32(len(r.dirtySet))
	}
	r.log.MustAppend(rec)
	r.stats.DeltaRecords++
	// Reset the ∆ interval.
	r.dirtySet = nil
	r.dirtyLSNs = nil
	r.deltaWritten = nil
	r.deltaFW = wal.NilLSN
	r.deltaFirst = 0
	r.haveFirstWrite = false
	clear(r.seg)
}

func (r *Recorder) emitBW() {
	if len(r.bwWritten) == 0 {
		return
	}
	r.log.MustAppend(&wal.BWRec{WrittenSet: r.bwWritten, FWLSN: r.bwFW, ShardID: r.shard})
	r.stats.BWRecords++
	r.bwWritten = nil
	r.bwFW = wal.NilLSN
}
