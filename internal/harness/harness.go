// Package harness runs the paper's controlled crash-recovery
// experiments (§5.2): drive an update workload to cache equilibrium
// with periodic checkpoints, crash at the paper's crash condition
// (k checkpoints taken, N updates since the last checkpoint, ~100
// records in the log tail past the last ∆/BW record), then replay the
// identical crash under each recovery method, verifying that every
// method reproduces the committed state exactly.
package harness

import (
	"fmt"

	"logrec/internal/core"
	"logrec/internal/engine"
	"logrec/internal/wal"
	"logrec/internal/workload"
)

// Config parameterises one crash build.
type Config struct {
	// Engine configures the engine under test (disk model, cache, DC).
	Engine engine.Config
	// Workload configures the committed update traffic.
	Workload workload.Config

	// CheckpointEveryUpdates is the checkpoint interval in update
	// operations (the paper's SQL Server default interval, swept ×5
	// and ×10 in Appendix C).
	CheckpointEveryUpdates int
	// CrashAfterCheckpoints is how many checkpoints complete before
	// the crash window opens (the paper uses 10).
	CrashAfterCheckpoints int
	// UpdatesAfterLastCkpt is how many updates must accumulate after
	// the final checkpoint before the crash (the redone log length;
	// the paper uses ~40000 at full scale).
	UpdatesAfterLastCkpt int
	// TailTargetUpdates is how many updates must follow the last
	// ∆/BW record pair at the crash (the paper uses ~100).
	TailTargetUpdates int
	// LeaveOpenTxn leaves one uncommitted transaction in flight at the
	// crash so undo has work to do.
	LeaveOpenTxn bool
	// OpenTxns leaves this many uncommitted transactions in flight at
	// the crash (0 falls back to LeaveOpenTxn's single loser). Each
	// loser updates keys strided across the table so their pages
	// spread.
	OpenTxns int
	// OpenTxnUpdates is how many updates each loser makes (0 uses
	// Workload.UpdatesPerTxn).
	OpenTxnUpdates int
	// EarlyLosers runs the losers' updates before the committed
	// traffic instead of at the crash: long-running transactions whose
	// pages the later redo traffic evicts, so the undo pass has real
	// IO to do — the undo worker sweep's workload. The committed
	// workload steers around the losers' keys (they stay X-locked).
	EarlyLosers bool
	// TornTailBytes, when positive, tears the crashed WAL with that
	// many bytes of a partial record frame — the crash interrupted a
	// log force mid-frame. Recovery must trim the torn tail via the
	// codec's ErrTruncated path (wal.OpenLogFile on the file device,
	// Log.CloneTrimmed on the simulated one). 0 leaves the WAL ending
	// on a record boundary.
	TornTailBytes int
	// OnLoaded, when set, runs after the engine is loaded and has taken
	// its initial checkpoint, before any traffic. The failover harness
	// uses it to attach a warm standby to the live primary so shipping
	// runs concurrently with the workload.
	OnLoaded func(*engine.Engine) error
}

// DefaultConfig returns the paper-proportional experiment at the
// repository's default scale (see DESIGN.md §1 for the scaling table):
// a ~10,000-page table (400k rows on 4 KB pages, index ≈0.4% of data as
// in the paper), checkpoint every 1,000 updates, crash after 10
// checkpoints + 1,000 updates with a ~25-record tail. Every ratio the
// paper's results depend on — updates-per-interval/DB-pages,
// distinct-dirtied/cache across the sweep, index/data size — matches
// the paper's setup.
func DefaultConfig() Config {
	e := engine.DefaultConfig()
	w := workload.DefaultConfig()
	return Config{
		Engine:                 e,
		Workload:               w,
		CheckpointEveryUpdates: 1000,
		CrashAfterCheckpoints:  10,
		UpdatesAfterLastCkpt:   1000,
		TailTargetUpdates:      25,
		LeaveOpenTxn:           true,
	}
}

// Scaled shrinks the experiment by factor k (rows, checkpoint interval
// and cache scale together so every ratio the paper depends on is
// preserved). Use for quick tests and CI.
func (c Config) Scaled(k int) Config {
	if k <= 1 {
		return c
	}
	out := c
	out.Workload.Rows = c.Workload.Rows / k
	out.CheckpointEveryUpdates = c.CheckpointEveryUpdates / k
	out.UpdatesAfterLastCkpt = c.UpdatesAfterLastCkpt / k
	out.Engine.CachePages = c.Engine.CachePages / k
	if out.TailTargetUpdates > out.UpdatesAfterLastCkpt/4 {
		out.TailTargetUpdates = out.UpdatesAfterLastCkpt / 4
	}
	return out
}

// WithCacheFraction sets the buffer pool to frac of the table's data
// pages (the x-axis of Figure 2).
func (c Config) WithCacheFraction(frac float64) Config {
	out := c
	out.Engine.CachePages = int(frac * float64(c.DataPages()))
	if out.Engine.CachePages < 64 {
		out.Engine.CachePages = 64
	}
	return out
}

// DataPages estimates the table's leaf page count at load fill.
func (c Config) DataPages() int {
	perPage := (c.Engine.Disk.PageSize - 24) / (8 + c.Workload.ValueSize + 4)
	if perPage < 1 {
		perPage = 1
	}
	return (c.Workload.Rows + perPage - 1) / perPage
}

// CrashResult is a built crash plus everything needed to verify and
// characterise recovery runs against it.
type CrashResult struct {
	Crash  *engine.CrashState
	Oracle map[uint64][]byte

	// Characterisation at the instant of the crash.
	DirtyAtCrash   int
	CachePages     int
	DataPages      int
	UpdatesRun     int64
	TxnsCommitted  int64
	DeltasWritten  int64
	BWsWritten     int64
	CheckpointsRun int64
	LogBytes       int64
	LosersAtCrash  int
}

// DirtyPct is the dirty fraction of the cache at the crash — Figure
// 2(b)'s y-axis.
func (r *CrashResult) DirtyPct() float64 {
	if r.CachePages == 0 {
		return 0
	}
	return 100 * float64(r.DirtyAtCrash) / float64(r.CachePages)
}

// BuildCrash runs the workload to the crash condition and freezes the
// crash state.
func BuildCrash(cfg Config) (*CrashResult, error) {
	gen, err := workload.NewGenerator(cfg.Workload)
	if err != nil {
		return nil, err
	}
	if cfg.Engine.NumShards() > 1 && cfg.Engine.KeySpan == 0 {
		// Balance the initial ranges over the loaded table.
		cfg.Engine.KeySpan = uint64(cfg.Workload.Rows)
	}
	eng, err := engine.New(cfg.Engine)
	if err != nil {
		return nil, err
	}
	oracle := make(map[uint64][]byte, cfg.Workload.Rows)
	if err := eng.Load(cfg.Workload.Rows, func(k uint64) []byte {
		v := gen.InitialValue(k)
		oracle[k] = v
		return v
	}); err != nil {
		return nil, fmt.Errorf("harness: load: %w", err)
	}
	if cfg.OnLoaded != nil {
		if err := cfg.OnLoaded(eng); err != nil {
			return nil, fmt.Errorf("harness: OnLoaded: %w", err)
		}
	}

	openTxns := cfg.OpenTxns
	if openTxns == 0 && cfg.LeaveOpenTxn {
		openTxns = 1
	}
	perLoser := cfg.OpenTxnUpdates
	if perLoser == 0 {
		perLoser = cfg.Workload.UpdatesPerTxn
	}
	// Losers take keys strided across the table; the committed traffic
	// steers around them (they stay exclusively locked until the crash).
	stride := uint64(cfg.Workload.Rows/(openTxns*perLoser+1)) + 1
	nextLoserKey := uint64(0)
	reserved := make(map[uint64]bool, openTxns*perLoser)
	runLoser := func() error {
		txn := eng.TC.Begin()
		for u := 0; u < perLoser; u++ {
			if nextLoserKey >= uint64(cfg.Workload.Rows) {
				return fmt.Errorf("harness: %d losers × %d updates do not fit %d rows",
					openTxns, perLoser, cfg.Workload.Rows)
			}
			k := nextLoserKey
			nextLoserKey += stride
			reserved[k] = true
			if err := eng.TC.Update(txn, cfg.Engine.TableID, k, []byte(makeGarbage(cfg.Workload.ValueSize))); err != nil {
				return fmt.Errorf("harness: loser update key %d: %w", k, err)
			}
		}
		// The transaction stays open: recovery must undo it.
		return nil
	}
	if cfg.EarlyLosers {
		for i := 0; i < openTxns; i++ {
			if err := runLoser(); err != nil {
				return nil, err
			}
		}
	}

	var (
		updates          int64
		updatesSinceCkpt int
		ckpts            int
		updatesSinceTail int
		lastDeltaCount   = eng.Log.AppendCount(wal.TypeDelta)
		// crashWindow counts updates spent waiting for the tail
		// condition once the checkpoint conditions hold; if ∆ records
		// come faster than the tail target, we crash anyway after one
		// extra interval rather than spinning forever.
		crashWindow int
	)

	// Run committed transactions until the crash condition is met:
	// enough checkpoints, enough updates since the last one, and a
	// fresh-enough ∆ record that the tail is near the target length.
	for {
		txn := eng.TC.Begin()
		staged := make(map[uint64][]byte, cfg.Workload.UpdatesPerTxn)
		for u := 0; u < cfg.Workload.UpdatesPerTxn; u++ {
			op := gen.NextOp()
			// Steer off keys the early losers hold exclusively locked.
			key := op.Key
			for reserved[key] {
				key = (key + 1) % uint64(cfg.Workload.Rows)
			}
			if op.Kind == workload.OpRead {
				if _, _, err := eng.TC.Read(txn, cfg.Engine.TableID, key); err != nil {
					return nil, fmt.Errorf("harness: read: %w", err)
				}
				continue
			}
			v := gen.UpdateValue(key)
			if err := eng.TC.Update(txn, cfg.Engine.TableID, key, v); err != nil {
				return nil, fmt.Errorf("harness: update key %d: %w", key, err)
			}
			staged[key] = v
			updates++
			updatesSinceCkpt++
			updatesSinceTail++
		}
		if err := eng.TC.Commit(txn); err != nil {
			return nil, fmt.Errorf("harness: commit: %w", err)
		}
		for k, v := range staged {
			oracle[k] = v
		}

		// Track ∆-record recency for the tail condition.
		if dc := eng.Log.AppendCount(wal.TypeDelta); dc != lastDeltaCount {
			lastDeltaCount = dc
			updatesSinceTail = 0
		}

		if updatesSinceCkpt >= cfg.CheckpointEveryUpdates && ckpts < cfg.CrashAfterCheckpoints {
			if err := eng.TC.Checkpoint(); err != nil {
				return nil, fmt.Errorf("harness: checkpoint: %w", err)
			}
			ckpts++
			updatesSinceCkpt = 0
		}

		if ckpts >= cfg.CrashAfterCheckpoints && updatesSinceCkpt >= cfg.UpdatesAfterLastCkpt {
			crashWindow += cfg.Workload.UpdatesPerTxn
			if updatesSinceTail >= cfg.TailTargetUpdates || crashWindow > cfg.UpdatesAfterLastCkpt {
				break
			}
		}
	}

	if !cfg.EarlyLosers {
		for i := 0; i < openTxns; i++ {
			if err := runLoser(); err != nil {
				return nil, err
			}
		}
	}
	if openTxns > 0 {
		// Force the log so the losers' records survive; the txns never
		// commit.
		eng.TC.SendEOSL()
	}

	res := &CrashResult{
		Oracle:         oracle,
		DirtyAtCrash:   eng.Set.DirtyCount(),
		CachePages:     cfg.Engine.CachePages,
		DataPages:      cfg.DataPages(),
		UpdatesRun:     updates,
		TxnsCommitted:  eng.Stats().TC.Committed,
		DeltasWritten:  eng.Log.AppendCount(wal.TypeDelta),
		BWsWritten:     eng.Log.AppendCount(wal.TypeBW),
		CheckpointsRun: int64(ckpts),
		LogBytes:       int64(eng.Log.EndLSN()),
		LosersAtCrash:  openTxns,
	}
	res.Crash = eng.Crash()
	if cfg.TornTailBytes > 0 {
		if err := res.Crash.TearTail(cfg.TornTailBytes); err != nil {
			return nil, fmt.Errorf("harness: tearing WAL tail: %w", err)
		}
	}
	return res, nil
}

func makeGarbage(size int) string {
	b := make([]byte, size)
	for i := range b {
		b[i] = 'Z'
	}
	return string(b)
}

// RunRecovery recovers the crash under method m and verifies the
// result against the oracle before returning the metrics.
func RunRecovery(res *CrashResult, m core.Method, opt core.Options) (*core.Metrics, error) {
	eng, met, err := core.Recover(res.Crash, m, opt)
	if err != nil {
		return nil, err
	}
	if err := Verify(eng, res.Oracle); err != nil {
		return nil, fmt.Errorf("harness: %v produced wrong state: %w", m, err)
	}
	return met, nil
}

// Verify checks that the engine's table contents — across every shard,
// in global key order — equal the oracle.
func Verify(eng *engine.Engine, oracle map[uint64][]byte) error {
	count := 0
	err := eng.Set.ScanAll(func(k uint64, v []byte) error {
		want, ok := oracle[k]
		if !ok {
			return fmt.Errorf("unexpected key %d", k)
		}
		if string(v) != string(want) {
			return fmt.Errorf("key %d: got %q, want %q", k, v, want)
		}
		count++
		return nil
	})
	if err != nil {
		return err
	}
	if count != len(oracle) {
		return fmt.Errorf("recovered %d rows, oracle has %d", count, len(oracle))
	}
	return nil
}

// RunAll recovers the same crash under every method.
func RunAll(res *CrashResult, opt core.Options) (map[core.Method]*core.Metrics, error) {
	out := make(map[core.Method]*core.Metrics, 5)
	for _, m := range core.Methods() {
		met, err := RunRecovery(res, m, opt)
		if err != nil {
			return nil, err
		}
		out[m] = met
	}
	return out, nil
}
