package harness

import (
	"fmt"
	"testing"

	"logrec/internal/core"
	"logrec/internal/engine"
)

// fileConfig is a small file-mode experiment: real page file, real WAL
// with fsync forces, real master record, all under dir.
func fileConfig(dir string) Config {
	cfg := DefaultConfig().Scaled(40)
	cfg.Engine.Device = engine.DeviceFile
	cfg.Engine.Dir = dir
	return cfg
}

// TestFileCrashRecoverRoundTrip drives the workload against real files,
// crashes process-kill-style (handles closed, nothing flushed), and
// recovers from what the files hold — serial and with parallel redo and
// undo workers, under every method family. Run with -race this also
// exercises FileDisk's concurrent miss reads.
func TestFileCrashRecoverRoundTrip(t *testing.T) {
	cfg := fileConfig(t.TempDir())
	cfg.OpenTxns = 2
	cfg.OpenTxnUpdates = 4
	res, err := BuildCrash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LosersAtCrash != 2 {
		t.Fatalf("losers at crash = %d, want 2", res.LosersAtCrash)
	}
	for _, m := range []core.Method{core.Log1, core.SQL1} {
		for _, workers := range []int{0, 4} {
			t.Run(fmt.Sprintf("%v/workers=%d", m, workers), func(t *testing.T) {
				opt := core.DefaultOptions(cfg.Engine)
				opt.RedoWorkers = workers
				opt.UndoWorkers = workers
				met, err := RunRecovery(res, m, opt)
				if err != nil {
					t.Fatal(err)
				}
				if met.Applied == 0 {
					t.Fatal("recovery applied nothing; the crash had a redo window")
				}
				if met.LosersUndone != 2 {
					t.Fatalf("losers undone = %d, want 2", met.LosersUndone)
				}
				if met.CLRsWritten == 0 {
					t.Fatal("undo wrote no CLRs")
				}
			})
		}
	}
}

// TestFileTornTailRecovery tears the crashed WAL mid-frame (inside the
// frame header, and inside the body) and checks recovery trims the torn
// tail and still reproduces the committed state exactly.
func TestFileTornTailRecovery(t *testing.T) {
	for _, tear := range []int{3, 17} {
		t.Run(fmt.Sprintf("tear%d", tear), func(t *testing.T) {
			cfg := fileConfig(t.TempDir())
			cfg.TornTailBytes = tear
			res, err := BuildCrash(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// The fork must come up trimmed back to the stable end the
			// crashed engine had forced (LogBytes: everything was
			// flushed by the final EOSL, so stable end = log end).
			_, _, log, err := res.Crash.Fork(0)
			if err != nil {
				t.Fatal(err)
			}
			if int64(log.EndLSN()) != res.LogBytes {
				t.Fatalf("forked log ends at %v, want torn tail trimmed back to %d", log.EndLSN(), res.LogBytes)
			}
			log.CloseBackend()
			if _, err := RunRecovery(res, core.Log1, core.DefaultOptions(cfg.Engine)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSimVsFileRecoveryEquality is the cross-device oracle: the same
// deterministic workload crashed on the simulated disk and on real
// files must recover to identical table states.
func TestSimVsFileRecoveryEquality(t *testing.T) {
	simCfg := DefaultConfig().Scaled(40)
	fileCfg := fileConfig(t.TempDir())

	simRes, err := BuildCrash(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	fileRes, err := BuildCrash(fileCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same logical sequence: the committed oracles must be
	// identical before recovery even starts.
	if len(simRes.Oracle) != len(fileRes.Oracle) {
		t.Fatalf("oracle divergence: sim %d rows, file %d rows", len(simRes.Oracle), len(fileRes.Oracle))
	}
	for k, v := range simRes.Oracle {
		if string(fileRes.Oracle[k]) != string(v) {
			t.Fatalf("oracle divergence at key %d", k)
		}
	}

	simEng, _, err := core.Recover(simRes.Crash, core.Log1, core.DefaultOptions(simCfg.Engine))
	if err != nil {
		t.Fatal(err)
	}
	fileEng, _, err := core.Recover(fileRes.Crash, core.Log1, core.DefaultOptions(fileCfg.Engine))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(simEng, simRes.Oracle); err != nil {
		t.Fatalf("sim recovery wrong: %v", err)
	}
	if err := Verify(fileEng, fileRes.Oracle); err != nil {
		t.Fatalf("file recovery wrong: %v", err)
	}

	// Row-by-row state equality between the two recovered engines.
	fileRows := make(map[uint64]string)
	if err := fileEng.DC.Tree().Scan(func(k uint64, v []byte) error {
		fileRows[k] = string(v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := simEng.DC.Tree().Scan(func(k uint64, v []byte) error {
		if fileRows[k] != string(v) {
			return fmt.Errorf("key %d: sim %q vs file %q", k, v, fileRows[k])
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != len(fileRows) {
		t.Fatalf("sim recovered %d rows, file %d", count, len(fileRows))
	}
}
