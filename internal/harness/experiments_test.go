package harness

import (
	"strings"
	"testing"

	"logrec/internal/core"
	"logrec/internal/tracker"
)

func TestRunFigure3Shapes(t *testing.T) {
	cfg := DefaultConfig().Scaled(20)
	rows, err := RunFigure3(cfg, []int{1, 5}, 0.16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// Log0 must grow roughly linearly with the interval; Log1 must
	// grow strictly less.
	g0 := rows[1].RedoMS[core.Log0] / rows[0].RedoMS[core.Log0]
	g1 := rows[1].RedoMS[core.Log1] / rows[0].RedoMS[core.Log1]
	if g0 < 2 {
		t.Fatalf("Log0 growth %.2f at 5× interval, want ≥2", g0)
	}
	if g1 >= g0 {
		t.Fatalf("Log1 growth %.2f not below Log0 growth %.2f", g1, g0)
	}
	// The redone log must actually be ~5× longer.
	if rows[1].RedoRecs < 3*rows[0].RedoRecs {
		t.Fatalf("redo records %d vs %d — interval sweep ineffective",
			rows[1].RedoRecs, rows[0].RedoRecs)
	}
	var sb strings.Builder
	PrintFigure3(&sb, rows)
	if !strings.Contains(sb.String(), "×5") {
		t.Fatal("PrintFigure3 output missing interval row")
	}
}

func TestRunAppendixBModelHolds(t *testing.T) {
	// Scale 8 keeps the redone log long enough that flushing prunes a
	// real fraction of the DPT; at tinier scales Log0 and Log1
	// degenerate to the same fetch set.
	cfg := DefaultConfig().Scaled(8)
	rows, err := RunAppendixB(cfg, 0.16)
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[core.Method]CostModelRow{}
	for _, r := range rows {
		byMethod[r.Method] = r
	}
	// Eq.2: SQL1 data fetches == DPT size exactly (every DPT entry that
	// survives screening is fetched once; cold cache).
	sql1 := byMethod[core.SQL1]
	if sql1.MeasuredData != sql1.Predicted {
		t.Fatalf("SQL1 fetches %d != DPT %d", sql1.MeasuredData, sql1.Predicted)
	}
	// Eq.3: Log1 within a small tolerance (tail records may hit cached
	// pages).
	log1 := byMethod[core.Log1]
	if diff := log1.MeasuredData - log1.Predicted; diff > 2 || diff < -20 {
		t.Fatalf("Log1 fetches %d vs model %d", log1.MeasuredData, log1.Predicted)
	}
	// Eq.1: Log0 bounded above by the record count and well above the
	// DPT-screened methods.
	log0 := byMethod[core.Log0]
	if log0.MeasuredData > log0.Predicted {
		t.Fatalf("Log0 fetched %d > one per record %d", log0.MeasuredData, log0.Predicted)
	}
	if log0.MeasuredData <= log1.MeasuredData {
		t.Fatalf("Log0 (%d) did not exceed Log1 (%d)", log0.MeasuredData, log1.MeasuredData)
	}
	// Only logical methods read index pages.
	if sql1.MeasuredIndex != 0 || log1.MeasuredIndex == 0 {
		t.Fatalf("index fetches: SQL1 %d, Log1 %d", sql1.MeasuredIndex, log1.MeasuredIndex)
	}
	var sb strings.Builder
	PrintAppendixB(&sb, rows)
	if !strings.Contains(sb.String(), "Eq.2") {
		t.Fatal("PrintAppendixB output incomplete")
	}
}

func TestRunAppendixDVariants(t *testing.T) {
	cfg := DefaultConfig().Scaled(20)
	rows, err := RunAppendixD(cfg, 0.16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d variants", len(rows))
	}
	byVariant := map[tracker.Variant]VariantRow{}
	for _, r := range rows {
		byVariant[r.Variant] = r
	}
	// D.1: the perfect variant logs strictly more bytes (DirtyLSNs).
	if byVariant[tracker.DeltaPerfect].LogBytes <= byVariant[tracker.DeltaStandard].LogBytes {
		t.Fatalf("perfect logged %d bytes ≤ standard %d",
			byVariant[tracker.DeltaPerfect].LogBytes, byVariant[tracker.DeltaStandard].LogBytes)
	}
	// D.2: reduced never shrinks the DPT below standard's.
	if byVariant[tracker.DeltaReduced].DPTSize < byVariant[tracker.DeltaStandard].DPTSize {
		t.Fatalf("reduced DPT %d < standard %d",
			byVariant[tracker.DeltaReduced].DPTSize, byVariant[tracker.DeltaStandard].DPTSize)
	}
	var sb strings.Builder
	PrintAppendixD(&sb, rows)
	if !strings.Contains(sb.String(), "perfect") {
		t.Fatal("PrintAppendixD output incomplete")
	}
}

// TestZipfShrinksDPT checks Appendix B's locality remark: a skewed
// workload dirties fewer distinct pages than uniform, shrinking the
// DPT and redo time.
func TestZipfShrinksDPT(t *testing.T) {
	base := DefaultConfig().Scaled(20)

	uni := base.WithCacheFraction(0.16)
	resU, err := BuildCrash(uni)
	if err != nil {
		t.Fatal(err)
	}
	metU, err := RunRecovery(resU, core.Log1, core.DefaultOptions(uni.Engine))
	if err != nil {
		t.Fatal(err)
	}

	zip := base.WithCacheFraction(0.16)
	zip.Workload.Dist = 1 // workload.Zipf
	zip.Workload.ZipfS = 1.4
	resZ, err := BuildCrash(zip)
	if err != nil {
		t.Fatal(err)
	}
	metZ, err := RunRecovery(resZ, core.Log1, core.DefaultOptions(zip.Engine))
	if err != nil {
		t.Fatal(err)
	}

	if metZ.DPTSize >= metU.DPTSize {
		t.Fatalf("zipf DPT %d not smaller than uniform %d", metZ.DPTSize, metU.DPTSize)
	}
	if metZ.RedoTotal >= metU.RedoTotal {
		t.Fatalf("zipf redo %v not faster than uniform %v", metZ.RedoTotal, metU.RedoTotal)
	}
}

// TestReadsDiluteDirtyDensity checks Appendix B's other remark: mixing
// reads into the workload lowers the dirty fraction of the cache. The
// lazywriter is disabled so the workload alone sets the density (with
// the ceiling cleaner on, both workloads sit at the ceiling).
func TestReadsDiluteDirtyDensity(t *testing.T) {
	base := DefaultConfig().Scaled(20)
	base.Engine.DC.CleanerTarget = 0

	pure := base.WithCacheFraction(0.16)
	resPure, err := BuildCrash(pure)
	if err != nil {
		t.Fatal(err)
	}

	mixed := base.WithCacheFraction(0.16)
	mixed.Workload.ReadFraction = 0.6
	resMixed, err := BuildCrash(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if resMixed.DirtyPct() >= resPure.DirtyPct() {
		t.Fatalf("reads did not dilute dirty density: %.1f%% vs %.1f%%",
			resMixed.DirtyPct(), resPure.DirtyPct())
	}
}
