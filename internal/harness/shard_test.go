package harness

import (
	"fmt"
	"testing"

	"logrec/internal/core"
	"logrec/internal/engine"
)

// shardedConfig is a small experiment with n range-partitioned DCs.
func shardedConfig(n int) Config {
	cfg := DefaultConfig().Scaled(40)
	cfg.Engine.Shards = n
	return cfg
}

// TestShardedVsSingleRecoveredStateEquality is the sharded-state
// oracle: the same deterministic workload crashed on a 1-shard and a
// 4-shard engine must recover to identical table states under every
// method family, serial and with per-shard parallel workers. Under
// -race this also exercises the demultiplexer and the concurrent
// per-shard pipelines.
func TestShardedVsSingleRecoveredStateEquality(t *testing.T) {
	single, err := BuildCrash(shardedConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := BuildCrash(shardedConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same logical sequence: the committed oracles must be
	// identical before recovery even starts.
	if len(single.Oracle) != len(sharded.Oracle) {
		t.Fatalf("oracle divergence: single %d rows, sharded %d rows", len(single.Oracle), len(sharded.Oracle))
	}
	for k, v := range single.Oracle {
		if string(sharded.Oracle[k]) != string(v) {
			t.Fatalf("oracle divergence at key %d", k)
		}
	}

	for _, m := range []core.Method{core.Log1, core.SQL1} {
		for _, workers := range []int{0, 4} {
			t.Run(fmt.Sprintf("%v/workers=%d", m, workers), func(t *testing.T) {
				opt := core.DefaultOptions(shardedConfig(1).Engine)
				opt.RedoWorkers = workers
				opt.UndoWorkers = workers

				engSingle, _, err := core.Recover(single.Crash, m, opt)
				if err != nil {
					t.Fatalf("single recovery: %v", err)
				}
				engSharded, met, err := core.Recover(sharded.Crash, m, opt)
				if err != nil {
					t.Fatalf("sharded recovery: %v", err)
				}
				if met.Shards != 4 {
					t.Fatalf("metrics report %d shards, want 4", met.Shards)
				}
				if err := Verify(engSingle, single.Oracle); err != nil {
					t.Fatalf("single recovery wrong: %v", err)
				}
				if err := Verify(engSharded, sharded.Oracle); err != nil {
					t.Fatalf("sharded recovery wrong: %v", err)
				}

				// Row-by-row equality between the two recovered engines.
				rows := make(map[uint64]string)
				if err := engSingle.Set.ScanAll(func(k uint64, v []byte) error {
					rows[k] = string(v)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				count := 0
				if err := engSharded.Set.ScanAll(func(k uint64, v []byte) error {
					if rows[k] != string(v) {
						return fmt.Errorf("key %d: single %q vs sharded %q", k, rows[k], v)
					}
					count++
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if count != len(rows) {
					t.Fatalf("sharded recovered %d rows, single %d", count, len(rows))
				}
			})
		}
	}
}

// TestShardedFileCrashRecover is the acceptance path: a 4-shard engine
// on real files (per-shard pages.db under shard-N directories, one WAL,
// one master record) crashes process-kill-style and recovers all shards
// concurrently to a state equal to the 1-shard file engine recovered
// from the same workload.
func TestShardedFileCrashRecover(t *testing.T) {
	cfg := shardedConfig(4)
	cfg.Engine.Device = engine.DeviceFile
	cfg.Engine.Dir = t.TempDir()
	cfg.OpenTxns = 2
	cfg.OpenTxnUpdates = 4
	res, err := BuildCrash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	single := shardedConfig(1)
	single.Engine.Device = engine.DeviceFile
	single.Engine.Dir = t.TempDir()
	single.OpenTxns = 2
	single.OpenTxnUpdates = 4
	singleRes, err := BuildCrash(single)
	if err != nil {
		t.Fatal(err)
	}
	singleEng, _, err := core.Recover(singleRes.Crash, core.Log1, core.DefaultOptions(single.Engine))
	if err != nil {
		t.Fatal(err)
	}
	singleRows := make(map[uint64]string)
	if err := singleEng.Set.ScanAll(func(k uint64, v []byte) error {
		singleRows[k] = string(v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	for _, m := range []core.Method{core.Log1, core.SQL1} {
		t.Run(m.String(), func(t *testing.T) {
			opt := core.DefaultOptions(cfg.Engine)
			eng, met, err := core.Recover(res.Crash, m, opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(eng, res.Oracle); err != nil {
				t.Fatalf("sharded recovery wrong: %v", err)
			}
			if met.Shards != 4 {
				t.Fatalf("recovered %d shards, want 4", met.Shards)
			}
			if met.Applied == 0 {
				t.Fatal("recovery applied nothing; the crash had a redo window")
			}
			if met.LosersUndone != 2 {
				t.Fatalf("losers undone = %d, want 2", met.LosersUndone)
			}
			// Row-for-row equality with the recovered 1-shard engine.
			count := 0
			if err := eng.Set.ScanAll(func(k uint64, v []byte) error {
				if singleRows[k] != string(v) {
					return fmt.Errorf("key %d: single %q vs 4-shard %q", k, singleRows[k], v)
				}
				count++
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if count != len(singleRows) {
				t.Fatalf("4-shard engine recovered %d rows, 1-shard %d", count, len(singleRows))
			}
		})
	}
}

// TestShardedDecodeWidthOracle pins the segmented decode front-end to
// the serial contract: the same 4-shard crash recovered at every
// decode-worker width and segment size — including segments small
// enough to force boundary discovery and straddling frames — must
// yield byte-identical recovered rows, the same CLR count, and the
// same log end as the effectively-serial decode (one worker, one
// segment).
func TestShardedDecodeWidthOracle(t *testing.T) {
	cfg := shardedConfig(4)
	cfg.OpenTxns = 3
	cfg.OpenTxnUpdates = 5
	res, err := BuildCrash(cfg)
	if err != nil {
		t.Fatal(err)
	}

	type recovered struct {
		rows   map[uint64]string
		clrs   int64
		logEnd int64
	}
	recoverAt := func(decodeWorkers, segBytes int) recovered {
		t.Helper()
		opt := core.DefaultOptions(cfg.Engine)
		opt.RedoWorkers = 2
		opt.UndoWorkers = 2
		opt.DecodeWorkers = decodeWorkers
		opt.DecodeSegmentBytes = segBytes
		eng, met, err := core.Recover(res.Crash, core.Log1, opt)
		if err != nil {
			t.Fatalf("decode=%d seg=%d: %v", decodeWorkers, segBytes, err)
		}
		if err := Verify(eng, res.Oracle); err != nil {
			t.Fatalf("decode=%d seg=%d: wrong state: %v", decodeWorkers, segBytes, err)
		}
		rows := make(map[uint64]string)
		if err := eng.Set.ScanAll(func(k uint64, v []byte) error {
			rows[k] = string(v)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return recovered{rows: rows, clrs: met.CLRsWritten, logEnd: int64(eng.Log.EndLSN())}
	}

	// One worker over one giant segment decodes serially in log order.
	base := recoverAt(1, 1<<30)
	if base.clrs == 0 {
		t.Fatal("baseline wrote no CLRs; the crash needs losers to make the oracle meaningful")
	}
	for _, w := range []int{1, 2, 8} {
		for _, seg := range []int{257, 4 << 10, 0} {
			got := recoverAt(w, seg)
			if got.clrs != base.clrs {
				t.Fatalf("decode=%d seg=%d: CLRs %d, serial %d", w, seg, got.clrs, base.clrs)
			}
			if got.logEnd != base.logEnd {
				t.Fatalf("decode=%d seg=%d: log end %d, serial %d", w, seg, got.logEnd, base.logEnd)
			}
			if len(got.rows) != len(base.rows) {
				t.Fatalf("decode=%d seg=%d: %d rows, serial %d", w, seg, len(got.rows), len(base.rows))
			}
			for k, v := range base.rows {
				if got.rows[k] != v {
					t.Fatalf("decode=%d seg=%d: key %d diverged", w, seg, k)
				}
			}
		}
	}
}

// TestSimTornTailRecovery injects byte-level tears into the simulated
// crash snapshot (mid-frame-header and mid-body, the same shapes the
// file tests tear) and checks recovery trims the torn tail via the
// codec's ErrTruncated path and still reproduces the committed state.
func TestSimTornTailRecovery(t *testing.T) {
	for _, tear := range []int{3, 17} {
		t.Run(fmt.Sprintf("tear%d", tear), func(t *testing.T) {
			cfg := DefaultConfig().Scaled(40)
			cfg.TornTailBytes = tear
			res, err := BuildCrash(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// The tear extended the snapshot past its stable end; the
			// fork must trim back to it (LogBytes: everything was
			// flushed by the final EOSL, so stable end = log end).
			if int64(res.Crash.Log.EndLSN()) != res.LogBytes+int64(tear) {
				t.Fatalf("snapshot ends at %v, want stable end %d + %d torn bytes",
					res.Crash.Log.EndLSN(), res.LogBytes, tear)
			}
			_, _, log, err := res.Crash.Fork(0)
			if err != nil {
				t.Fatal(err)
			}
			if int64(log.EndLSN()) != res.LogBytes {
				t.Fatalf("forked log ends at %v, want torn tail trimmed back to %d", log.EndLSN(), res.LogBytes)
			}
			if _, err := RunRecovery(res, core.Log1, core.DefaultOptions(cfg.Engine)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSimShardedTornTail runs the tear through the sharded path too:
// the single demultiplexed log trims once and every shard still
// recovers.
func TestSimShardedTornTail(t *testing.T) {
	cfg := shardedConfig(2)
	cfg.TornTailBytes = 9
	res, err := BuildCrash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunRecovery(res, core.Log1, core.DefaultOptions(cfg.Engine)); err != nil {
		t.Fatal(err)
	}
}
