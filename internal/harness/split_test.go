package harness

import (
	"fmt"
	"testing"

	"logrec/internal/core"
	"logrec/internal/engine"
)

// TestRangeSplitMigrationSurvivesCrash drives the TC's range-split
// migration on a live 2-shard engine, keeps updating across the moved
// boundary, crashes, and checks that recovery rebuilds both the rows
// and the routing table — with the split inside the redo window (its
// ShardMapRec replays) and behind a checkpoint (the route snapshot in
// the end-checkpoint record carries it).
func TestRangeSplitMigrationSurvivesCrash(t *testing.T) {
	for _, ckptAfterSplit := range []bool{false, true} {
		name := "in-window"
		if ckptAfterSplit {
			name = "checkpointed"
		}
		t.Run(name, func(t *testing.T) {
			const rows = 400
			cfg := engine.DefaultConfig()
			cfg.Shards = 2
			cfg.KeySpan = rows
			cfg.CachePages = 128
			eng, err := engine.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			oracle := make(map[uint64][]byte, rows)
			val := func(k uint64, gen int) []byte { return []byte(fmt.Sprintf("v%d-%06d", gen, k)) }
			if err := eng.Load(rows, func(k uint64) []byte {
				oracle[k] = val(k, 0)
				return val(k, 0)
			}); err != nil {
				t.Fatal(err)
			}

			update := func(keys ...uint64) {
				t.Helper()
				txn := eng.TC.Begin()
				for _, k := range keys {
					if err := eng.TC.Update(txn, cfg.TableID, k, val(k, 1)); err != nil {
						t.Fatal(err)
					}
					oracle[k] = val(k, 1)
				}
				if err := eng.TC.Commit(txn); err != nil {
					t.Fatal(err)
				}
			}
			update(5, 60, 150, 350)

			// Shard 0 owns [0, 200); split at 120 and hand [120, 200) to
			// shard 1.
			const at = 120
			if got := eng.Set.Locate(at); got != 0 {
				t.Fatalf("pre-split owner of %d = %d, want 0", at, got)
			}
			if err := eng.TC.SplitRange(cfg.TableID, at, 1); err != nil {
				t.Fatal(err)
			}
			if got := eng.Set.Locate(at); got != 1 {
				t.Fatalf("post-split owner of %d = %d, want 1", at, got)
			}
			if got := eng.Set.Locate(at - 1); got != 0 {
				t.Fatalf("post-split owner of %d = %d, want 0", at-1, got)
			}
			if eng.TC.Stats().RangeSplits != 1 {
				t.Fatalf("RangeSplits = %d, want 1", eng.TC.Stats().RangeSplits)
			}
			// Reads and updates keep working across the moved boundary.
			update(119, 120, 121, 180)
			if v, found, err := eng.TC.Read(eng.TC.Begin(), cfg.TableID, 150); err != nil || !found || string(v) != string(oracle[150]) {
				t.Fatalf("post-split read of 150: found=%v v=%q err=%v", found, v, err)
			}

			if ckptAfterSplit {
				if err := eng.TC.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
			update(121, 122, 190)

			cs := eng.Crash()
			rec, met, err := core.Recover(cs, core.Log1, core.DefaultOptions(cfg))
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(rec, oracle); err != nil {
				t.Fatalf("recovered state wrong: %v", err)
			}
			if got := rec.Set.Locate(at); got != 1 {
				t.Fatalf("recovered owner of %d = %d, want 1", at, got)
			}
			if got := rec.Set.Locate(at - 1); got != 0 {
				t.Fatalf("recovered owner of %d = %d, want 0", at-1, got)
			}
			if !ckptAfterSplit && met.RouteChanges != 1 {
				t.Fatalf("RouteChanges = %d, want 1 (split inside redo window)", met.RouteChanges)
			}
			// The moved rows physically live on shard 1.
			if _, found, _ := rec.Set.At(1).Read(cfg.TableID, 150); !found {
				t.Fatal("moved key 150 not on shard 1 after recovery")
			}
			if _, found, _ := rec.Set.At(0).Read(cfg.TableID, 150); found {
				t.Fatal("moved key 150 still on shard 0 after recovery")
			}
		})
	}
}
