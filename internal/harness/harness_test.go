package harness

import (
	"strings"
	"testing"

	"logrec/internal/core"
)

// smallConfig is the paper experiment scaled down 20× for fast tests.
func smallConfig() Config {
	return DefaultConfig().Scaled(20)
}

func TestBuildCrashMeetsCrashCondition(t *testing.T) {
	cfg := smallConfig().WithCacheFraction(0.08)
	res, err := BuildCrash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointsRun != int64(cfg.CrashAfterCheckpoints) {
		t.Fatalf("checkpoints = %d, want %d", res.CheckpointsRun, cfg.CrashAfterCheckpoints)
	}
	if res.DirtyAtCrash == 0 {
		t.Fatal("no dirty pages at crash")
	}
	if res.DeltasWritten == 0 || res.BWsWritten == 0 {
		t.Fatalf("tracker records missing: Δ=%d BW=%d", res.DeltasWritten, res.BWsWritten)
	}
	if res.DeltasWritten < res.BWsWritten {
		t.Fatalf("Δ records (%d) fewer than BW records (%d); ∆ is written before every BW plus capacity flushes",
			res.DeltasWritten, res.BWsWritten)
	}
	if res.UpdatesRun < int64(cfg.CrashAfterCheckpoints*cfg.CheckpointEveryUpdates) {
		t.Fatalf("only %d updates run", res.UpdatesRun)
	}
}

func TestRunAllMethodsVerify(t *testing.T) {
	cfg := smallConfig().WithCacheFraction(0.08)
	res, err := BuildCrash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mets, err := RunAll(res, core.DefaultOptions(cfg.Engine))
	if err != nil {
		t.Fatal(err)
	}
	if len(mets) != 5 {
		t.Fatalf("got %d methods", len(mets))
	}
	// Structural expectations from the paper:
	// Log0 fetches at least as many data pages as Log1 (no DPT screen).
	if mets[core.Log0].DataPageFetches < mets[core.Log1].DataPageFetches {
		t.Fatalf("Log0 fetched %d < Log1 %d", mets[core.Log0].DataPageFetches, mets[core.Log1].DataPageFetches)
	}
	// DPT methods must actually skip records.
	if mets[core.Log1].SkippedDPT+mets[core.Log1].SkippedRLSN == 0 {
		t.Fatal("Log1 DPT screened nothing")
	}
	if mets[core.SQL1].SkippedDPT+mets[core.SQL1].SkippedRLSN == 0 {
		t.Fatal("SQL1 DPT screened nothing")
	}
	// Redo ordering (paper Figure 2a): Log0 slowest of the logical
	// family; prefetch helps.
	if mets[core.Log0].RedoTotal < mets[core.Log1].RedoTotal {
		t.Fatalf("Log0 (%v) faster than Log1 (%v)", mets[core.Log0].RedoTotal, mets[core.Log1].RedoTotal)
	}
	if mets[core.Log2].RedoTotal > mets[core.Log1].RedoTotal {
		t.Fatalf("prefetch made Log2 (%v) slower than Log1 (%v)", mets[core.Log2].RedoTotal, mets[core.Log1].RedoTotal)
	}
	if mets[core.SQL2].RedoTotal > mets[core.SQL1].RedoTotal {
		t.Fatalf("prefetch made SQL2 (%v) slower than SQL1 (%v)", mets[core.SQL2].RedoTotal, mets[core.SQL1].RedoTotal)
	}
	// Only logical methods pay for index pages.
	if mets[core.SQL1].IndexPageFetches != 0 {
		t.Fatalf("SQL1 fetched %d index pages", mets[core.SQL1].IndexPageFetches)
	}
	if mets[core.Log1].IndexPageFetches == 0 {
		t.Fatal("Log1 fetched no index pages")
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	cfg := smallConfig().WithCacheFraction(0.08)
	res, err := BuildCrash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, _, err := core.Recover(res.Crash, core.Log1, core.DefaultOptions(cfg.Engine))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the oracle; Verify must notice.
	for k := range res.Oracle {
		res.Oracle[k] = []byte("WRONG")
		break
	}
	if err := Verify(eng, res.Oracle); err == nil {
		t.Fatal("Verify accepted corrupted state")
	}
}

func TestScaledPreservesRatios(t *testing.T) {
	base := DefaultConfig()
	s := base.Scaled(10)
	if got, want := s.Workload.Rows, base.Workload.Rows/10; got != want {
		t.Fatalf("rows %d, want %d", got, want)
	}
	// updates-per-interval / data-pages ratio preserved within rounding.
	r0 := float64(base.CheckpointEveryUpdates) / float64(base.DataPages())
	r1 := float64(s.CheckpointEveryUpdates) / float64(s.DataPages())
	if r1 < r0*0.8 || r1 > r0*1.2 {
		t.Fatalf("interval ratio drifted: %.4f vs %.4f", r1, r0)
	}
}

func TestPrintFigure2Smoke(t *testing.T) {
	cfg := DefaultConfig().Scaled(40)
	rows, err := RunFigure2(cfg, []float64{0.08, 0.32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	PrintFigure2(&sb, rows)
	out := sb.String()
	for _, want := range []string{"Figure 2(a)", "Figure 2(b)", "Figure 2(c)", "Log0", "SQL2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
