package harness

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"time"

	"logrec/internal/core"
	"logrec/internal/engine"
	"logrec/internal/replica"
	"logrec/internal/workload"
)

// FailoverConfig parameterises a kill-primary failover experiment: run
// the crash harness with a warm standby attached, promote the standby
// over the dead primary, and independently recover the same crash as
// the control.
type FailoverConfig struct {
	// Harness configures the primary's workload and crash condition
	// (OnLoaded is overwritten — the failover run owns it).
	Harness Config
	// Replica configures the shipping channel (segment size, lag bound,
	// fault injection via Mangle).
	Replica replica.Config
	// StandbyDir is the standby engine's directory when the harness
	// engine uses the file device (ignored for the simulated device).
	StandbyDir string
	// Method is the recovery algorithm for the control run over the
	// crashed primary (the paper's methods; Log2 is the flagship).
	Method core.Method
}

// FailoverResult is one completed failover experiment.
type FailoverResult struct {
	// Promoted is the standby after promotion, verified against the
	// oracle and serving.
	Promoted *engine.Engine
	// Recovered is the control: the crashed primary independently
	// recovered with FailoverConfig.Method, verified against the same
	// oracle.
	Recovered *engine.Engine
	// PromotedDigest and RecoveredDigest hash every row of each
	// engine's table; the experiment fails unless they are equal.
	PromotedDigest  uint64
	RecoveredDigest uint64
	// LagAtCrash is the standby's replay lag at the instant the primary
	// died.
	LagAtCrash replica.Lag
	// Ship snapshots the shipping counters after the final drain
	// (segments, heal events, applied records).
	Ship replica.Stats
	// LosersUndone is how many in-flight transactions the promotion
	// rolled back.
	LosersUndone int
	// PromoteWall is the wall-clock promotion time: final drain, undo
	// sweep and session open.
	PromoteWall time.Duration
	// Crash is the underlying crash build (oracle, characterisation).
	Crash *CrashResult
}

// StateDigest hashes every row of the engine's table in global key
// order: FNV-1a over big-endian key then value. Two engines with equal
// digests hold byte-identical logical state, whatever their page
// geometry.
func StateDigest(eng *engine.Engine) (uint64, error) {
	h := fnv.New64a()
	err := eng.Set.ScanAll(func(key uint64, val []byte) error {
		var kb [8]byte
		binary.BigEndian.PutUint64(kb[:], key)
		h.Write(kb[:])
		h.Write(val)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return h.Sum64(), nil
}

// RunFailover executes the kill-primary experiment: attach a warm
// standby to a freshly loaded primary, drive the crash-harness workload
// (traffic, checkpoints, in-flight losers, optional torn tail) until
// the primary dies process-kill-shaped, promote the standby, and verify
// the promoted engine's rows against the oracle. As the control, the
// crashed primary is also recovered independently with cfg.Method and
// the two states must produce the same digest — the paper's §1.1 claim
// that the logical log stream fully determines the database state,
// demonstrated across two different consumers of the same log.
func RunFailover(cfg FailoverConfig) (*FailoverResult, error) {
	gen, err := workload.NewGenerator(cfg.Harness.Workload)
	if err != nil {
		return nil, err
	}
	var standby *replica.Standby
	hcfg := cfg.Harness
	hcfg.OnLoaded = func(primary *engine.Engine) error {
		scfg := primary.Cfg
		scfg.Standby = true
		if scfg.Device == engine.DeviceFile {
			if cfg.StandbyDir == "" {
				return fmt.Errorf("file-device failover needs FailoverConfig.StandbyDir")
			}
			scfg.Dir = cfg.StandbyDir
		}
		standbyEng, err := engine.New(scfg)
		if err != nil {
			return err
		}
		if err := standbyEng.Load(cfg.Harness.Workload.Rows, gen.InitialValue); err != nil {
			return fmt.Errorf("standby load: %w", err)
		}
		standby, err = replica.New(primary.Log, standbyEng, cfg.Replica)
		if err != nil {
			return err
		}
		standby.Start()
		return nil
	}

	// Traffic, checkpoints, losers, crash — with shipping live underneath.
	res, err := BuildCrash(hcfg)
	if err != nil {
		return nil, err
	}
	out := &FailoverResult{Crash: res, LagAtCrash: standby.Lag()}

	// The primary is dead. Promote: drain the stable log it left behind,
	// roll back its in-flight losers, open for sessions.
	start := time.Now()
	promoted, met, err := standby.Promote()
	if err != nil {
		return nil, fmt.Errorf("harness: promote: %w", err)
	}
	out.PromoteWall = time.Since(start)
	out.Promoted = promoted
	out.Ship = standby.Stats()
	out.LosersUndone = met.LosersUndone
	if err := Verify(promoted, res.Oracle); err != nil {
		return nil, fmt.Errorf("harness: promoted standby has wrong state: %w", err)
	}

	// Control: recover the crashed primary independently and compare.
	recovered, _, err := core.Recover(res.Crash, cfg.Method, core.DefaultOptions(res.Crash.Cfg))
	if err != nil {
		return nil, fmt.Errorf("harness: control recovery: %w", err)
	}
	out.Recovered = recovered
	if err := Verify(recovered, res.Oracle); err != nil {
		return nil, fmt.Errorf("harness: %v control recovery has wrong state: %w", cfg.Method, err)
	}
	if out.PromotedDigest, err = StateDigest(promoted); err != nil {
		return nil, err
	}
	if out.RecoveredDigest, err = StateDigest(recovered); err != nil {
		return nil, err
	}
	if out.PromotedDigest != out.RecoveredDigest {
		return nil, fmt.Errorf("harness: promoted digest %016x != recovered digest %016x",
			out.PromotedDigest, out.RecoveredDigest)
	}
	return out, nil
}
