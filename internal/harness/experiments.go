package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"logrec/internal/core"
	"logrec/internal/tracker"
)

// DefaultCacheFractions is Figure 2's x-axis: the paper's 64 MB-2048 MB
// sweep expressed as fractions of the database (≈2%..60%, §5.2).
func DefaultCacheFractions() []float64 {
	return []float64{0.02, 0.04, 0.08, 0.16, 0.32, 0.60}
}

// Fig2Row is one cache-size point of Figure 2: redo times per method
// (2a), the dirty fraction of the cache (2b) and the ∆/BW record counts
// seen by the prep pass (2c).
type Fig2Row struct {
	CacheFrac  float64
	CachePages int
	DataPages  int
	RedoMS     map[core.Method]float64
	DPTSize    map[core.Method]int
	DirtyPct   float64
	DeltaSeen  int64
	BWSeen     int64
	Fetches    map[core.Method]*core.Metrics
}

// RunFigure2 reproduces Figure 2: for each cache fraction, drive the
// workload to the paper's crash condition and recover side by side with
// all five methods over the identical crash state.
func RunFigure2(base Config, fracs []float64, progress func(string)) ([]Fig2Row, error) {
	if len(fracs) == 0 {
		fracs = DefaultCacheFractions()
	}
	rows := make([]Fig2Row, 0, len(fracs))
	for _, frac := range fracs {
		cfg := base.WithCacheFraction(frac)
		if progress != nil {
			progress(fmt.Sprintf("figure2: cache %.0f%% (%d pages): running workload to crash...",
				frac*100, cfg.Engine.CachePages))
		}
		res, err := BuildCrash(cfg)
		if err != nil {
			return nil, fmt.Errorf("cache %.0f%%: %w", frac*100, err)
		}
		opt := core.DefaultOptions(cfg.Engine)
		row := Fig2Row{
			CacheFrac:  frac,
			CachePages: cfg.Engine.CachePages,
			DataPages:  cfg.DataPages(),
			RedoMS:     make(map[core.Method]float64, 5),
			DPTSize:    make(map[core.Method]int, 5),
			DirtyPct:   res.DirtyPct(),
			Fetches:    make(map[core.Method]*core.Metrics, 5),
		}
		for _, m := range core.Methods() {
			met, err := RunRecovery(res, m, opt)
			if err != nil {
				return nil, fmt.Errorf("cache %.0f%% method %v: %w", frac*100, m, err)
			}
			row.RedoMS[m] = met.RedoTotal.Milliseconds()
			row.DPTSize[m] = met.DPTSize
			row.Fetches[m] = met
			if m.IsLogical() && met.DeltaSeen > 0 {
				row.DeltaSeen = met.DeltaSeen
				row.BWSeen = met.BWSeen
			}
			if progress != nil {
				progress(fmt.Sprintf("figure2: cache %.0f%%: %-4v redo %.0f ms (DPT %d, data fetches %d)",
					frac*100, m, met.RedoTotal.Milliseconds(), met.DPTSize, met.DataPageFetches))
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFigure2 renders the three panels as aligned tables.
func PrintFigure2(w io.Writer, rows []Fig2Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 2(a): redo time (virtual msec) vs cache size")
	fmt.Fprintln(tw, "cache%\tpages\tLog0\tLog1\tSQL1\tLog2\tSQL2")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.0f%%\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
			r.CacheFrac*100, r.CachePages,
			r.RedoMS[core.Log0], r.RedoMS[core.Log1], r.RedoMS[core.SQL1],
			r.RedoMS[core.Log2], r.RedoMS[core.SQL2])
	}
	fmt.Fprintln(tw)
	fmt.Fprintln(tw, "Figure 2(b): dirty part of the cache (%)")
	fmt.Fprintln(tw, "cache%\tpages\tdirty%\tDPT(Log1)\tDPT(SQL1)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.0f%%\t%d\t%.1f\t%d\t%d\n",
			r.CacheFrac*100, r.CachePages, r.DirtyPct,
			r.DPTSize[core.Log1], r.DPTSize[core.SQL1])
	}
	fmt.Fprintln(tw)
	fmt.Fprintln(tw, "Figure 2(c): ∆- and BW-log records seen by the prep pass")
	fmt.Fprintln(tw, "cache%\tΔ records\tBW records\tΔ/BW")
	for _, r := range rows {
		ratio := 0.0
		if r.BWSeen > 0 {
			ratio = float64(r.DeltaSeen) / float64(r.BWSeen)
		}
		fmt.Fprintf(tw, "%.0f%%\t%d\t%d\t%.2f\n", r.CacheFrac*100, r.DeltaSeen, r.BWSeen, ratio)
	}
	tw.Flush()
}

// Fig3Row is one checkpoint-interval point of Appendix C's Figure 3.
type Fig3Row struct {
	Multiplier int
	RedoMS     map[core.Method]float64
	DPTSize    int
	RedoRecs   int64
}

// RunFigure3 reproduces Figure 3 (Appendix C): redo time as the
// checkpoint interval grows from the default (ci1) to 5× and 10×, at a
// fixed cache fraction.
func RunFigure3(base Config, multipliers []int, cacheFrac float64, progress func(string)) ([]Fig3Row, error) {
	if len(multipliers) == 0 {
		multipliers = []int{1, 5, 10}
	}
	rows := make([]Fig3Row, 0, len(multipliers))
	for _, mult := range multipliers {
		cfg := base.WithCacheFraction(cacheFrac)
		cfg.CheckpointEveryUpdates = base.CheckpointEveryUpdates * mult
		cfg.UpdatesAfterLastCkpt = base.UpdatesAfterLastCkpt * mult
		// Keep total checkpoints constant-ish in work, not count: fewer
		// checkpoints suffice to reach equilibrium for large intervals.
		if mult > 1 && cfg.CrashAfterCheckpoints > 3 {
			cfg.CrashAfterCheckpoints = 3
		}
		if progress != nil {
			progress(fmt.Sprintf("figure3: interval ×%d: running workload to crash...", mult))
		}
		res, err := BuildCrash(cfg)
		if err != nil {
			return nil, fmt.Errorf("interval ×%d: %w", mult, err)
		}
		opt := core.DefaultOptions(cfg.Engine)
		row := Fig3Row{Multiplier: mult, RedoMS: make(map[core.Method]float64, 5)}
		for _, m := range core.Methods() {
			met, err := RunRecovery(res, m, opt)
			if err != nil {
				return nil, fmt.Errorf("interval ×%d method %v: %w", mult, m, err)
			}
			row.RedoMS[m] = met.RedoTotal.Milliseconds()
			if m == core.Log1 {
				row.DPTSize = met.DPTSize
				row.RedoRecs = met.RedoRecords
			}
			if progress != nil {
				progress(fmt.Sprintf("figure3: interval ×%d: %-4v redo %.0f ms", mult, m, met.RedoTotal.Milliseconds()))
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFigure3 renders Figure 3 as a table.
func PrintFigure3(w io.Writer, rows []Fig3Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 3: redo time (virtual msec) vs checkpoint interval")
	fmt.Fprintln(tw, "interval\tLog0\tLog1\tSQL1\tLog2\tSQL2\tDPT\tredo recs")
	for _, r := range rows {
		fmt.Fprintf(tw, "×%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%d\t%d\n",
			r.Multiplier,
			r.RedoMS[core.Log0], r.RedoMS[core.Log1], r.RedoMS[core.SQL1],
			r.RedoMS[core.Log2], r.RedoMS[core.SQL2],
			r.DPTSize, r.RedoRecs)
	}
	tw.Flush()
}

// CostModelRow compares measured page fetches with Appendix B's
// closed-form costs (Equations 1-3).
type CostModelRow struct {
	Method        core.Method
	MeasuredData  int64
	MeasuredIndex int64
	MeasuredLog   int64
	Predicted     int64
	Note          string
}

// RunAppendixB validates the cost model at one cache fraction:
//
//	COST(Log0) ≈ redo log records           (+ log + index pages)
//	COST(SQL1) ≈ DPT size                   (+ log pages)
//	COST(Log1) ≈ DPT size + tail records    (+ log + index pages)
func RunAppendixB(base Config, cacheFrac float64) ([]CostModelRow, error) {
	cfg := base.WithCacheFraction(cacheFrac)
	res, err := BuildCrash(cfg)
	if err != nil {
		return nil, err
	}
	opt := core.DefaultOptions(cfg.Engine)
	out := make([]CostModelRow, 0, 3)
	for _, m := range []core.Method{core.Log0, core.Log1, core.SQL1} {
		met, err := RunRecovery(res, m, opt)
		if err != nil {
			return nil, err
		}
		row := CostModelRow{
			Method:        m,
			MeasuredData:  met.DataPageFetches,
			MeasuredIndex: met.IndexPageFetches,
			MeasuredLog:   met.LogPagesRead,
		}
		switch m {
		case core.Log0:
			row.Predicted = met.RedoRecords
			row.Note = "Eq.1: one fetch per redo log record (cache hits reduce it)"
		case core.SQL1:
			row.Predicted = int64(met.DPTSize)
			row.Note = "Eq.2: DPT size"
		case core.Log1:
			row.Predicted = int64(met.DPTSize) + met.TailRecords
			row.Note = "Eq.3: DPT size + tail records"
		}
		out = append(out, row)
	}
	return out, nil
}

// PrintAppendixB renders the cost-model comparison.
func PrintAppendixB(w io.Writer, rows []CostModelRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Appendix B: measured page fetches vs cost model (Equations 1-3)")
	fmt.Fprintln(tw, "method\tdata fetches\tpredicted\tindex fetches\tlog pages\tmodel")
	for _, r := range rows {
		fmt.Fprintf(tw, "%v\t%d\t%d\t%d\t%d\t%s\n",
			r.Method, r.MeasuredData, r.Predicted, r.MeasuredIndex, r.MeasuredLog, r.Note)
	}
	tw.Flush()
}

// VariantRow is one Appendix D ablation point.
type VariantRow struct {
	Variant   tracker.Variant
	RedoMS    float64
	DPTSize   int
	DeltaRecs int64
	LogBytes  int64
}

// RunAppendixD compares the three ∆-record fidelity variants at one
// cache fraction, each with its own workload run (the tracker's logging
// differs by variant) but identical workload randomness.
func RunAppendixD(base Config, cacheFrac float64) ([]VariantRow, error) {
	out := make([]VariantRow, 0, 3)
	for _, v := range []tracker.Variant{tracker.DeltaStandard, tracker.DeltaPerfect, tracker.DeltaReduced} {
		cfg := base.WithCacheFraction(cacheFrac)
		cfg.Engine.DC.Tracker.Variant = v
		res, err := BuildCrash(cfg)
		if err != nil {
			return nil, fmt.Errorf("variant %v: %w", v, err)
		}
		opt := core.DefaultOptions(cfg.Engine)
		met, err := RunRecovery(res, core.Log1, opt)
		if err != nil {
			return nil, fmt.Errorf("variant %v: %w", v, err)
		}
		out = append(out, VariantRow{
			Variant:   v,
			RedoMS:    met.RedoTotal.Milliseconds(),
			DPTSize:   met.DPTSize,
			DeltaRecs: res.DeltasWritten,
			LogBytes:  res.LogBytes,
		})
	}
	return out, nil
}

// PrintAppendixD renders the ∆-variant ablation.
func PrintAppendixD(w io.Writer, rows []VariantRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Appendix D: ∆-record fidelity ablation (Log1 redo)")
	fmt.Fprintln(tw, "variant\tredo ms\tDPT size\tΔ records written\tlog bytes")
	for _, r := range rows {
		fmt.Fprintf(tw, "%v\t%.0f\t%d\t%d\t%d\n", r.Variant, r.RedoMS, r.DPTSize, r.DeltaRecs, r.LogBytes)
	}
	tw.Flush()
}
