package harness

import (
	"testing"

	"logrec/internal/core"
	"logrec/internal/engine"
	"logrec/internal/replica"
	"logrec/internal/wal"
)

// failoverConfig is a small kill-primary experiment: the scaled crash
// harness with two shards and in-flight losers at the crash.
func failoverConfig() FailoverConfig {
	h := DefaultConfig().Scaled(40)
	h.Engine.Shards = 2
	h.Engine.KeySpan = uint64(h.Workload.Rows)
	h.OpenTxns = 2
	h.OpenTxnUpdates = 4
	return FailoverConfig{
		Harness: h,
		Replica: replica.Config{SegmentBytes: 8 << 10, CheckpointEveryRecords: 2000},
		Method:  core.Log2,
	}
}

// TestKillPrimaryFailover is the failover oracle: kill the primary
// mid-traffic with transactions in flight, promote the warm standby,
// and require its row state to be byte-equal (same digest) to the
// crashed primary recovered independently — two consumers of one
// logical log converging on one state.
func TestKillPrimaryFailover(t *testing.T) {
	res, err := RunFailover(failoverConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.PromotedDigest != res.RecoveredDigest {
		t.Fatalf("digest mismatch: promoted %016x, recovered %016x",
			res.PromotedDigest, res.RecoveredDigest)
	}
	if res.LosersUndone != 2 {
		t.Fatalf("promotion undid %d losers, want 2", res.LosersUndone)
	}
	if res.Ship.Replay.Records == 0 || res.Ship.Segments == 0 {
		t.Fatalf("standby shipped nothing: %+v", res.Ship)
	}
	if res.PromoteWall <= 0 {
		t.Fatalf("promote wall %v", res.PromoteWall)
	}

	// The promoted engine serves: commit a transaction against it.
	eng := res.Promoted
	txn := eng.TC.Begin()
	if err := eng.TC.Update(txn, eng.Cfg.TableID, 1, []byte("after-failover")); err != nil {
		t.Fatal(err)
	}
	if err := eng.TC.Commit(txn); err != nil {
		t.Fatal(err)
	}
}

// TestKillPrimaryFailoverHostileChannel reruns the kill-primary
// experiment with the shipping channel mangled the whole way: every
// fourth segment is duplicated and every fifth torn in half. The
// healing protocol must still deliver an exact failover.
func TestKillPrimaryFailoverHostileChannel(t *testing.T) {
	cfg := failoverConfig()
	var n int
	cfg.Replica.SegmentBytes = 2 << 10
	cfg.Replica.Mangle = func(seg wal.Segment) []wal.Segment {
		n++
		switch {
		case n%5 == 0 && len(seg.Data) > 1:
			return []wal.Segment{{From: seg.From, Data: seg.Data[:len(seg.Data)/2]}}
		case n%4 == 0:
			return []wal.Segment{seg, seg}
		default:
			return []wal.Segment{seg}
		}
	}
	res, err := RunFailover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ship.HealEvents == 0 {
		t.Fatal("hostile channel produced no heal events")
	}
	if res.PromotedDigest != res.RecoveredDigest {
		t.Fatalf("digest mismatch under faults: promoted %016x, recovered %016x",
			res.PromotedDigest, res.RecoveredDigest)
	}
}

// TestKillPrimaryFailoverFile is the file-device failover: real page
// files, real WALs on both sides, a process-kill-shaped crash (handles
// closed, nothing flushed), and a standby whose shipped log is persisted
// to its own wal.log as it arrives.
func TestKillPrimaryFailoverFile(t *testing.T) {
	cfg := failoverConfig()
	cfg.Harness.Engine.Device = engine.DeviceFile
	cfg.Harness.Engine.Dir = t.TempDir()
	cfg.StandbyDir = t.TempDir()
	cfg.Method = core.SQL1
	res, err := RunFailover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PromotedDigest != res.RecoveredDigest {
		t.Fatalf("file-device digest mismatch: promoted %016x, recovered %016x",
			res.PromotedDigest, res.RecoveredDigest)
	}
	if res.LosersUndone != 2 {
		t.Fatalf("promotion undid %d losers, want 2", res.LosersUndone)
	}
}
