// Package workload generates the paper's update workloads (§5.2,
// Appendix B): small transactions of ten single-row updates each,
// identified by equality search on the key. The uniform distribution is
// the paper's default — the worst case for redo, maximising distinct
// dirtied pages — with zipfian skew and read mixing available for the
// locality discussion of Appendix B.
package workload

import (
	"fmt"
	"math/rand"
)

// Distribution selects the key-access pattern.
type Distribution int

// Distributions.
const (
	// Uniform keys: the paper's worst-case default.
	Uniform Distribution = iota
	// Zipf skews access toward hot keys, improving page locality and
	// shrinking the DPT (Appendix B).
	Zipf
)

func (d Distribution) String() string {
	if d == Zipf {
		return "zipf"
	}
	return "uniform"
}

// Config parameterises a workload.
type Config struct {
	// Rows is the table size.
	Rows int
	// UpdatesPerTxn is the transaction size (the paper uses 10).
	UpdatesPerTxn int
	// ValueSize is the data attribute's size in bytes.
	ValueSize int
	// Dist is the key distribution.
	Dist Distribution
	// ZipfS is the zipfian skew (>1), used when Dist == Zipf.
	ZipfS float64
	// ReadFraction is the probability an operation is a read instead
	// of an update; reads dilute the cache's update density
	// (Appendix B).
	ReadFraction float64
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultConfig matches the paper's primary workload at the repo's
// default scale.
func DefaultConfig() Config {
	return Config{
		Rows:          400_000,
		UpdatesPerTxn: 10,
		ValueSize:     92,
		Dist:          Uniform,
		ZipfS:         1.1,
		Seed:          1,
	}
}

func (c Config) validate() error {
	if c.Rows <= 0 {
		return fmt.Errorf("workload: Rows must be positive, got %d", c.Rows)
	}
	if c.UpdatesPerTxn <= 0 {
		return fmt.Errorf("workload: UpdatesPerTxn must be positive, got %d", c.UpdatesPerTxn)
	}
	if c.ValueSize < 1 {
		return fmt.Errorf("workload: ValueSize must be at least 1, got %d", c.ValueSize)
	}
	if c.ReadFraction < 0 || c.ReadFraction >= 1 {
		return fmt.Errorf("workload: ReadFraction must be in [0,1), got %g", c.ReadFraction)
	}
	if c.Dist == Zipf && c.ZipfS <= 1 {
		return fmt.Errorf("workload: ZipfS must exceed 1, got %g", c.ZipfS)
	}
	return nil
}

// OpKind distinguishes generated operations.
type OpKind int

// Operation kinds.
const (
	OpUpdate OpKind = iota
	OpRead
)

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  uint64
}

// Generator produces a deterministic operation stream.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
	// version counts updates, versioning generated values.
	version uint64
}

// NewGenerator validates cfg and builds a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.Dist == Zipf {
		g.zipf = rand.NewZipf(g.rng, cfg.ZipfS, 1, uint64(cfg.Rows-1))
	}
	return g, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// NextKey draws a key from the configured distribution.
func (g *Generator) NextKey() uint64 {
	if g.zipf != nil {
		return g.zipf.Uint64()
	}
	return uint64(g.rng.Intn(g.cfg.Rows))
}

// NextOp draws the next operation.
func (g *Generator) NextOp() Op {
	if g.cfg.ReadFraction > 0 && g.rng.Float64() < g.cfg.ReadFraction {
		return Op{Kind: OpRead, Key: g.NextKey()}
	}
	return Op{Kind: OpUpdate, Key: g.NextKey()}
}

// InitialValue produces the bulk-load value for key.
func (g *Generator) InitialValue(key uint64) []byte {
	return makeValue(key, 0, g.cfg.ValueSize)
}

// UpdateValue produces a fresh, distinguishable value for key and
// advances the version counter.
func (g *Generator) UpdateValue(key uint64) []byte {
	g.version++
	return makeValue(key, g.version, g.cfg.ValueSize)
}

// makeValue renders a self-describing value of exactly size bytes so
// verification failures are diagnosable.
func makeValue(key, version uint64, size int) []byte {
	v := make([]byte, size)
	s := fmt.Sprintf("k%08x.v%08x.", key, version)
	copy(v, s)
	for i := len(s); i < size; i++ {
		v[i] = byte('a' + (int(key)+i)%26)
	}
	return v
}
