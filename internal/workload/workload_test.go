package workload

import (
	"testing"
)

func TestValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Rows = 0 },
		func(c *Config) { c.UpdatesPerTxn = 0 },
		func(c *Config) { c.ValueSize = 0 },
		func(c *Config) { c.ReadFraction = 1.0 },
		func(c *Config) { c.ReadFraction = -0.1 },
		func(c *Config) { c.Dist = Zipf; c.ZipfS = 1.0 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := NewGenerator(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rows = 1000
	g1, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		a, b := g1.NextOp(), g2.NextOp()
		if a != b {
			t.Fatalf("op %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

func TestUniformKeysInRange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rows = 100
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]int)
	for i := 0; i < 10_000; i++ {
		k := g.NextKey()
		if k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k]++
	}
	// Uniformity sanity: every key hit at least once in 10k draws of
	// 100 keys; no key takes more than 5% of draws.
	if len(seen) != 100 {
		t.Fatalf("only %d distinct keys", len(seen))
	}
	for k, n := range seen {
		if n > 500 {
			t.Fatalf("key %d drew %d times — not uniform", k, n)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rows = 10_000
	cfg.Dist = Zipf
	cfg.ZipfS = 1.5
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	top := 0
	for i := 0; i < 10_000; i++ {
		if g.NextKey() < 10 {
			top++
		}
	}
	// With s=1.5 the hottest 0.1% of keys should absorb far more than
	// their uniform share (which would be ~10 draws).
	if top < 1000 {
		t.Fatalf("top-10 keys drew only %d of 10000 — not skewed", top)
	}
}

func TestReadFraction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rows = 100
	cfg.ReadFraction = 0.5
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		if g.NextOp().Kind == OpRead {
			reads++
		}
	}
	if reads < n*4/10 || reads > n*6/10 {
		t.Fatalf("reads = %d of %d, want ≈50%%", reads, n)
	}
}

func TestValuesSizedAndDistinct(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rows = 100
	cfg.ValueSize = 92
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v0 := g.InitialValue(5)
	if len(v0) != 92 {
		t.Fatalf("initial value size %d", len(v0))
	}
	v1 := g.UpdateValue(5)
	v2 := g.UpdateValue(5)
	if len(v1) != 92 || len(v2) != 92 {
		t.Fatal("update value size wrong")
	}
	if string(v1) == string(v2) {
		t.Fatal("successive update values identical (versioning broken)")
	}
	if string(v1) == string(v0) {
		t.Fatal("update value equals initial value")
	}
}

func TestDistributionStrings(t *testing.T) {
	if Uniform.String() != "uniform" || Zipf.String() != "zipf" {
		t.Fatal("distribution String broken")
	}
}
