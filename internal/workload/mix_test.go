package workload

import (
	"math"
	"testing"
)

func TestPresetWeightsSumToOne(t *testing.T) {
	for _, name := range PresetNames() {
		m, ok := Preset(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		if s := m.sum(); math.Abs(s-1) > 1e-9 {
			t.Errorf("preset %q sums to %g", name, s)
		}
	}
	if _, ok := Preset("nope"); ok {
		t.Error("unknown preset accepted")
	}
}

func TestMixGeneratorFrequencies(t *testing.T) {
	cfg := DefaultMixConfig()
	cfg.Seed = 7
	g, err := NewMixGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200_000
	counts := map[OpKind]int{}
	for i := 0; i < n; i++ {
		op := g.Next()
		counts[op.Kind]++
		switch op.Kind {
		case OpScan:
			if op.ScanLen < 1 || op.ScanLen > cfg.MaxScanLen {
				t.Fatalf("scan length %d out of [1,%d]", op.ScanLen, cfg.MaxScanLen)
			}
		case OpInsert:
		default:
			if op.Key >= cfg.Keys {
				t.Fatalf("key %d outside loaded space %d", op.Key, cfg.Keys)
			}
		}
	}
	want := map[OpKind]float64{OpRead: 0.40, OpUpdate: 0.30, OpInsert: 0.10, OpScan: 0.20}
	for kind, frac := range want {
		got := float64(counts[kind]) / n
		if math.Abs(got-frac) > 0.01 {
			t.Errorf("%v frequency %.3f, want %.2f ± .01", kind, got, frac)
		}
	}
}

func TestMixInsertStriding(t *testing.T) {
	seen := map[uint64]int{}
	const clients = 4
	for c := 0; c < clients; c++ {
		cfg := DefaultMixConfig()
		cfg.Mix = Mix{Insert: 1}
		cfg.InsertBase = cfg.Keys + uint64(c)
		cfg.InsertStride = clients
		cfg.Seed = int64(c)
		g, err := NewMixGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			op := g.Next()
			if op.Kind != OpInsert {
				t.Fatalf("pure-insert mix produced %v", op.Kind)
			}
			if op.Key < cfg.Keys {
				t.Fatalf("insert key %d inside loaded space", op.Key)
			}
			seen[op.Key]++
		}
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("insert key %d drawn %d times across clients", k, n)
		}
	}
}

func TestMixGeneratorDeterminism(t *testing.T) {
	cfg := DefaultMixConfig()
	a, _ := NewMixGenerator(cfg)
	b, _ := NewMixGenerator(cfg)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestMixConfigValidation(t *testing.T) {
	bad := []func(*MixConfig){
		func(c *MixConfig) { c.Keys = 0 },
		func(c *MixConfig) { c.Mix = Mix{Read: 0.5} },
		func(c *MixConfig) { c.MaxScanLen = 0 },
		func(c *MixConfig) { c.InsertStride = 0 },
		func(c *MixConfig) { c.ZipfS = 0.9 },
	}
	for i, mutate := range bad {
		cfg := DefaultMixConfig()
		mutate(&cfg)
		if _, err := NewMixGenerator(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
