// Command recoverybench measures the production-shaped recovery path:
//
//  1. Redo worker sweep — the same crash is recovered at increasing
//     RedoWorkers counts against wall-clock IO (storage's real-IO
//     mode), so the pipelined page-partitioned redo's speedup is a real
//     elapsed-time measurement, not a simulation artefact. Every run is
//     verified against the committed-state oracle.
//  2. Undo worker sweep — a crash with many long-running loser
//     transactions (whose pages the redo traffic has evicted) is
//     recovered at increasing UndoWorkers counts, measuring parallel
//     undo's wall-clock speedup the same way.
//  3. Checkpoint comparison — the same workload volume is crashed twice,
//     once with live checkpoints and once cold, and recovered in the
//     virtual-time simulation: checkpointing must bound the redo scan
//     (fewer records replayed, less redo time).
//  4. Cross-shard sweep (-shards, replaces the other sweeps) — one
//     engine per shard count over the identical workload, recovered
//     with serial per-shard passes, so the wall-clock comparison
//     isolates the concurrency of the shards recovering in parallel;
//     at the widest count the same crash is recovered twice and the
//     record counts compared (the cross-shard determinism gate).
//  5. Recovery-SLO mode (-budget, replaces the other sweeps) — for
//     each budget and each device (sim and file): a probe crash
//     measures the device's replay rate, a live sharded engine then
//     runs committed session traffic under a budget-mode Checkpointer
//     seeded with that rate, is crashed with losers in flight, and is
//     recovered with production options. The report records whether
//     the replay-rate-driven checkpoints actually held replay to the
//     budget, plus a serial re-recovery of the same crash (CLR count
//     and log end must match exactly) and a decode-worker sweep over
//     the sim probe crash (the segmented front-end must emit identical
//     record counts at every width).
//
// The sweeps run against an NVMe-class device queue (-channels, default
// 16): the modeled SATA-era depth of 4 caps any replay parallelism at
// 4x regardless of worker count, which is the plateau PR 2 measured.
//
// With -device=file the whole pipeline runs against real files instead
// of the simulation: pages in a storage.FileDisk, the WAL a real file
// whose every group-commit force is an fsync, the crash a closed set of
// file handles, and each recovery run a copy of those files reopened —
// so the sweeps report end-to-end wall-clock recovery numbers
// (-realscale is ignored; there is nothing to scale, the IO is real).
//
// It emits BENCH_recovery.json (sim), BENCH_recovery_file.json (file),
// BENCH_recovery_shards.json (-shards) or BENCH_recovery_slo.json
// (-budget) for the CI bench-regression gate and artifact upload.
//
// Usage:
//
//	go run ./cmd/recoverybench                      # full settings
//	go run ./cmd/recoverybench -quick               # CI smoke settings
//	go run ./cmd/recoverybench -device=file -dir /dev/shm/rbench
//	go run ./cmd/recoverybench -shards 1,2,4,8      # cross-shard recovery sweep
//	go run ./cmd/recoverybench -budget 75ms         # recovery-SLO mode (sim + file)
//	go run ./cmd/recoverybench -workers 1,2,4,8,16 -out /tmp/BENCH_recovery.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"logrec/internal/core"
	"logrec/internal/engine"
	"logrec/internal/harness"
)

type workerResult struct {
	Workers     int     `json:"workers"`
	WallRedoMS  float64 `json:"wall_redo_ms"`
	WallTotalMS float64 `json:"wall_total_ms"`
	RedoRecords int64   `json:"redo_records"`
	Applied     int64   `json:"applied"`
	Speedup     float64 `json:"speedup_vs_1"`
}

type undoResult struct {
	Workers     int     `json:"workers"`
	WallUndoMS  float64 `json:"wall_undo_ms"`
	CLRsWritten int64   `json:"clrs_written"`
	Losers      int     `json:"losers"`
	Speedup     float64 `json:"speedup_vs_1"`
}

type shardResult struct {
	Shards      int     `json:"shards"`
	WallRedoMS  float64 `json:"wall_redo_ms"`
	WallTotalMS float64 `json:"wall_total_ms"`
	RedoRecords int64   `json:"redo_records"`
	Applied     int64   `json:"applied"`
	CLRsWritten int64   `json:"clrs_written"`
	Speedup     float64 `json:"speedup_vs_1"`
}

// shardDeterminism reports the double-recovery check at the widest
// shard count: the same crash recovered twice must replay and apply
// identical record counts (cross-shard concurrency must not change
// what recovery does, only how fast).
type shardDeterminism struct {
	Shards           int  `json:"shards"`
	Runs             int  `json:"runs"`
	RedoRecordsEqual bool `json:"redo_records_equal"`
	AppliedEqual     bool `json:"applied_equal"`
	CLRsEqual        bool `json:"clrs_equal"`
}

type ckptResult struct {
	ColdRedoRecords int64   `json:"cold_redo_records"`
	CkptRedoRecords int64   `json:"ckpt_redo_records"`
	ColdRedoMS      float64 `json:"cold_redo_ms"` // virtual time (sim) / wall redo time (file)
	CkptRedoMS      float64 `json:"ckpt_redo_ms"` // virtual time (sim) / wall redo time (file)
	RecordRatio     float64 `json:"record_ratio"` // ckpt/cold, lower is better
}

// sloResult is one budget × device run of the recovery-SLO mode: did
// replay-rate-driven checkpointing hold a crash's replay under the
// budget, and did the parallel recovery reproduce the serial one
// byte for byte.
type sloResult struct {
	Device              string  `json:"device"`
	BudgetMS            float64 `json:"budget_ms"`
	SeedRateBytesPerSec float64 `json:"seed_rate_bytes_per_sec"`
	TrafficBytes        int64   `json:"traffic_bytes"`
	CheckpointsTaken    int64   `json:"checkpoints_taken"`
	BudgetTriggers      int64   `json:"budget_triggers"`
	FinalWindowBytes    int64   `json:"final_window_bytes"`
	ReplayMS            float64 `json:"replay_ms"`
	TotalMS             float64 `json:"total_ms"`
	LosersUndone        int     `json:"losers_undone"`
	CLRsParallel        int64   `json:"clrs_parallel"`
	CLRsSerial          int64   `json:"clrs_serial"`
	LogEndEqual         bool    `json:"log_end_equal"`
}

// decodeResult is one width of the decode-worker sweep over the sim
// probe crash: the segmented front-end's telemetry plus the invariant
// that widening decode never changes what recovery replays.
type decodeResult struct {
	Workers        int     `json:"workers"`
	WallTotalMS    float64 `json:"wall_total_ms"`
	DecodeRecords  int64   `json:"decode_records"`
	DecodeSegments int     `json:"decode_segments"`
	DecodeResyncs  int64   `json:"decode_resyncs"`
	DecodeStallMS  float64 `json:"decode_stall_ms"`
	CLRsWritten    int64   `json:"clrs_written"`
}

type report struct {
	Benchmark   string            `json:"benchmark"`
	Device      string            `json:"device"`
	Method      string            `json:"method"`
	GoMaxProcs  int               `json:"go_max_procs"`
	Scale       int               `json:"scale"`
	RealIOScale int               `json:"real_io_scale"`
	Channels    int               `json:"channels"`
	Workers     []workerResult    `json:"workers"`
	UndoWorkers []undoResult      `json:"undo_workers"`
	Checkpoint  ckptResult        `json:"checkpoint"`
	Shards      []shardResult     `json:"shards,omitempty"`
	Determinism *shardDeterminism `json:"determinism,omitempty"`
	SLO         []sloResult       `json:"slo,omitempty"`
	Decode      []decodeResult    `json:"decode,omitempty"`
}

func main() {
	var (
		workersFlag = flag.String("workers", "1,2,4,8", "comma-separated redo worker counts to sweep")
		undoFlag    = flag.String("undoworkers", "1,2,4,8", "comma-separated undo worker counts to sweep")
		scale       = flag.Int("scale", 10, "shrink the workload by this factor (see harness.Config.Scaled)")
		realScale   = flag.Int("realscale", 50, "real-IO latency divisor (modelled latency / this = wall sleep)")
		channels    = flag.Int("channels", 16, "modeled device queue depth for the worker sweeps (NVMe-class)")
		losers      = flag.Int("losers", 8, "loser transactions left open for the undo sweep")
		loserOps    = flag.Int("loserops", 25, "updates per loser transaction in the undo sweep")
		methodFlag  = flag.String("method", "Log1", "recovery method for the worker sweeps (Log0..SQL2)")
		shardsFlag  = flag.String("shards", "", "comma-separated shard counts: run the cross-shard recovery sweep instead of the worker sweeps (one engine per count, same workload)")
		budgetFlag  = flag.String("budget", "", "comma-separated recovery budgets (e.g. 75ms,250ms): run the recovery-SLO mode instead of the sweeps, on both the sim and file devices")
		deviceFlag  = flag.String("device", "sim", "storage backend: sim (modelled latencies scaled to wall-clock) or file (real files; end-to-end wall clock)")
		dirFlag     = flag.String("dir", "", "working directory for -device=file (default: a fresh temp dir, removed on exit)")
		out         = flag.String("out", "BENCH_recovery.json", "output JSON path")
		quick       = flag.Bool("quick", false, "CI smoke settings (smaller workload)")
	)
	flag.Parse()
	fileMode := *deviceFlag == "file"
	if !fileMode && *deviceFlag != "sim" {
		log.Fatalf("unknown -device %q (want sim or file)", *deviceFlag)
	}
	var workDir string
	if fileMode {
		if *dirFlag != "" {
			// The caller owns an explicitly passed directory: create it
			// if needed but never delete it (it may hold other data).
			workDir = *dirFlag
			if err := os.MkdirAll(workDir, 0o755); err != nil {
				log.Fatal(err)
			}
		} else {
			tmp, err := os.MkdirTemp("", "recoverybench-*")
			if err != nil {
				log.Fatal(err)
			}
			workDir = tmp
			defer os.RemoveAll(tmp)
		}
	}
	// applyDevice points one crash build at its own file-mode directory
	// (sim mode leaves the config untouched).
	applyDevice := func(cfg *harness.Config, sub string) {
		if fileMode {
			cfg.Engine.Device = engine.DeviceFile
			cfg.Engine.Dir = filepath.Join(workDir, sub)
		}
	}
	if *quick {
		// Smoke settings, without clobbering explicitly passed flags.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["scale"] {
			*scale = 20
		}
		if !set["realscale"] {
			*realScale = 25
		}
	}

	parseSweep := func(name, s string) []int {
		var out []int
		haveOne := false
		for _, tok := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n < 1 {
				log.Fatalf("bad -%s entry %q", name, tok)
			}
			out = append(out, n)
			haveOne = haveOne || n == 1
		}
		if !haveOne {
			// speedup_vs_1 must mean what it says; always measure the
			// 1-worker baseline.
			fmt.Printf("recoverybench: adding %s=1 to the sweep (speedup baseline)\n", name)
			out = append([]int{1}, out...)
		}
		return out
	}
	workers := parseSweep("workers", *workersFlag)
	undoWorkers := parseSweep("undoworkers", *undoFlag)
	method, err := parseMethod(*methodFlag)
	if err != nil {
		log.Fatal(err)
	}

	rep := report{
		Benchmark:   "recovery",
		Device:      *deviceFlag,
		Method:      method.String(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Scale:       *scale,
		RealIOScale: *realScale,
		Channels:    *channels,
	}
	if fileMode {
		// File IO is real; nothing is scaled.
		rep.Benchmark = "recovery-file"
		rep.RealIOScale = 0
	}

	if *budgetFlag != "" {
		var budgets []time.Duration
		for _, tok := range strings.Split(*budgetFlag, ",") {
			d, err := time.ParseDuration(strings.TrimSpace(tok))
			if err != nil || d <= 0 {
				log.Fatalf("bad -budget entry %q", tok)
			}
			budgets = append(budgets, d)
		}
		// SLO mode always runs both devices; the file legs need a
		// directory even when -device was left at the default, and an
		// explicit -dir (e.g. tmpfs in CI) is honored either way.
		dir := workDir
		if dir == "" && *dirFlag != "" {
			dir = *dirFlag
			if err := os.MkdirAll(dir, 0o755); err != nil {
				log.Fatal(err)
			}
		}
		if dir == "" {
			tmp, err := os.MkdirTemp("", "recoverybench-slo-*")
			if err != nil {
				log.Fatal(err)
			}
			dir = tmp
			defer os.RemoveAll(tmp)
		}
		rep.Benchmark = "recovery-slo"
		rep.Device = "sim+file"
		rep.RealIOScale = *realScale
		runSLO(&rep, budgets, *scale, *channels, *realScale, method, dir)
		writeReport(&rep, *out)
		return
	}

	if *shardsFlag != "" {
		// Cross-shard mode: one engine per shard count, same workload,
		// serial per-shard passes — the measured parallelism is the
		// concurrent recovery of the shards themselves.
		counts := parseSweep("shards", *shardsFlag)
		rep.Benchmark = "recovery-shards"
		runShardSweep(&rep, counts, *scale, *channels, *realScale, fileMode, method, applyDevice)
		writeReport(&rep, *out)
		return
	}

	// Cold crash: only the initial (post-load) checkpoint, then a long
	// update run — the redo window is essentially the whole log, which
	// is what gives the worker sweep enough pages to shard.
	cold := harness.DefaultConfig().Scaled(*scale)
	cold.Engine.Disk.Channels = *channels
	cold.CrashAfterCheckpoints = 0
	cold.UpdatesAfterLastCkpt = 8 * cold.CheckpointEveryUpdates
	applyDevice(&cold, "cold")
	fmt.Printf("recoverybench: building cold crash (rows=%d, redo window ≈%d updates, queue depth %d)\n",
		cold.Workload.Rows, cold.UpdatesAfterLastCkpt, *channels)
	coldRes, err := harness.BuildCrash(cold)
	if err != nil {
		log.Fatalf("building cold crash: %v", err)
	}

	// Redo worker sweep against wall-clock IO. Speedups are computed
	// against the 1-worker run (always present in the sweep).
	maxRedoWorkers := 1
	for _, w := range workers {
		if w > maxRedoWorkers {
			maxRedoWorkers = w
		}
		opt := core.DefaultOptions(cold.Engine)
		opt.RedoWorkers = w
		if !fileMode {
			opt.RealIOScale = *realScale
		}
		met, err := harness.RunRecovery(coldRes, method, opt)
		if err != nil {
			log.Fatalf("workers=%d: %v", w, err)
		}
		rep.Workers = append(rep.Workers, workerResult{
			Workers:     w,
			WallRedoMS:  float64(met.WallRedoTime.Microseconds()) / 1000,
			WallTotalMS: float64(met.WallTotalTime.Microseconds()) / 1000,
			RedoRecords: met.RedoRecords,
			Applied:     met.Applied,
		})
	}
	var base float64
	for _, r := range rep.Workers {
		if r.Workers == 1 {
			base = r.WallRedoMS
			break
		}
	}
	fmt.Printf("%8s %14s %14s %12s %10s\n", "workers", "wall redo ms", "wall total ms", "redo recs", "speedup")
	for i := range rep.Workers {
		r := &rep.Workers[i]
		if r.WallRedoMS > 0 {
			r.Speedup = base / r.WallRedoMS
		}
		fmt.Printf("%8d %14.2f %14.2f %12d %9.2fx\n",
			r.Workers, r.WallRedoMS, r.WallTotalMS, r.RedoRecords, r.Speedup)
	}

	// Undo worker sweep: long-running losers whose strided pages the
	// redo traffic evicted, so undo's leaf fetches are real IO. Redo
	// runs at the widest swept width to keep the measured phase hot.
	undoCfg := harness.DefaultConfig().Scaled(*scale)
	undoCfg.Engine.Disk.Channels = *channels
	undoCfg.CrashAfterCheckpoints = 0
	undoCfg.UpdatesAfterLastCkpt = 8 * undoCfg.CheckpointEveryUpdates
	undoCfg.EarlyLosers = true
	undoCfg.OpenTxns = *losers
	undoCfg.OpenTxnUpdates = *loserOps
	applyDevice(&undoCfg, "undo")
	fmt.Printf("building undo crash (%d losers × %d updates)\n", *losers, *loserOps)
	undoRes, err := harness.BuildCrash(undoCfg)
	if err != nil {
		log.Fatalf("building undo crash: %v", err)
	}
	for _, w := range undoWorkers {
		opt := core.DefaultOptions(undoCfg.Engine)
		opt.RedoWorkers = maxRedoWorkers
		opt.UndoWorkers = w
		if !fileMode {
			opt.RealIOScale = *realScale
		}
		met, err := harness.RunRecovery(undoRes, method, opt)
		if err != nil {
			log.Fatalf("undo workers=%d: %v", w, err)
		}
		rep.UndoWorkers = append(rep.UndoWorkers, undoResult{
			Workers:     w,
			WallUndoMS:  float64(met.WallUndoTime.Microseconds()) / 1000,
			CLRsWritten: met.CLRsWritten,
			Losers:      met.LosersUndone,
		})
	}
	base = 0
	for _, r := range rep.UndoWorkers {
		if r.Workers == 1 {
			base = r.WallUndoMS
			break
		}
	}
	fmt.Printf("%8s %14s %12s %10s %10s\n", "workers", "wall undo ms", "CLRs", "losers", "speedup")
	for i := range rep.UndoWorkers {
		r := &rep.UndoWorkers[i]
		if r.WallUndoMS > 0 {
			r.Speedup = base / r.WallUndoMS
		}
		fmt.Printf("%8d %14.2f %12d %10d %9.2fx\n",
			r.Workers, r.WallUndoMS, r.CLRsWritten, r.Losers, r.Speedup)
	}

	// Checkpoint comparison: same update volume, with periodic
	// checkpoints vs cold, on the selected device — it measures the
	// scan bound (a record count, device-independent), not parallelism.
	// Times are virtual on the sim device; on the file device the
	// virtual clock never advances for IO, so wall redo time is
	// reported instead.
	ckpt := harness.DefaultConfig().Scaled(*scale)
	ckpt.CrashAfterCheckpoints = 8
	applyDevice(&ckpt, "ckpt")
	fmt.Printf("building checkpointed crash (ckpt every %d updates)\n", ckpt.CheckpointEveryUpdates)
	ckptRes, err := harness.BuildCrash(ckpt)
	if err != nil {
		log.Fatalf("building checkpointed crash: %v", err)
	}
	coldMet, err := harness.RunRecovery(coldRes, method, core.DefaultOptions(cold.Engine))
	if err != nil {
		log.Fatalf("cold serial recovery: %v", err)
	}
	ckptMet, err := harness.RunRecovery(ckptRes, method, core.DefaultOptions(ckpt.Engine))
	if err != nil {
		log.Fatalf("ckpt serial recovery: %v", err)
	}
	rep.Checkpoint = ckptResult{
		ColdRedoRecords: coldMet.RedoRecords,
		CkptRedoRecords: ckptMet.RedoRecords,
		ColdRedoMS:      coldMet.RedoTotal.Milliseconds(),
		CkptRedoMS:      ckptMet.RedoTotal.Milliseconds(),
	}
	timeLabel := "virtual"
	if fileMode {
		timeLabel = "wall"
		rep.Checkpoint.ColdRedoMS = float64(coldMet.WallRedoTime.Microseconds()) / 1000
		rep.Checkpoint.CkptRedoMS = float64(ckptMet.WallRedoTime.Microseconds()) / 1000
	}
	if coldMet.RedoRecords > 0 {
		rep.Checkpoint.RecordRatio = float64(ckptMet.RedoRecords) / float64(coldMet.RedoRecords)
	}
	fmt.Printf("checkpointing: redo records %d → %d (%.1f%%), redo time %.2fms → %.2fms (%s)\n",
		rep.Checkpoint.ColdRedoRecords, rep.Checkpoint.CkptRedoRecords,
		100*rep.Checkpoint.RecordRatio, rep.Checkpoint.ColdRedoMS, rep.Checkpoint.CkptRedoMS, timeLabel)

	writeReport(&rep, *out)
}

func writeReport(rep *report, out string) {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}

// runShardSweep builds one crash per shard count over the identical
// workload and recovers each with serial per-shard passes, so the
// wall-clock comparison isolates cross-shard recovery concurrency. At
// the widest count the same crash is recovered twice and the record
// counts compared — cross-shard scheduling must not change what
// recovery replays (the determinism gate).
func runShardSweep(rep *report, counts []int, scale, channels, realScale int, fileMode bool, method core.Method, applyDevice func(*harness.Config, string)) {
	recoverOnce := func(res *harness.CrashResult, cfg harness.Config) *core.Metrics {
		opt := core.DefaultOptions(cfg.Engine)
		if !fileMode {
			opt.RealIOScale = realScale
		}
		met, err := harness.RunRecovery(res, method, opt)
		if err != nil {
			log.Fatalf("shards=%d: %v", cfg.Engine.Shards, err)
		}
		return met
	}

	widest := 1
	for _, n := range counts {
		if n > widest {
			widest = n
		}
	}
	fmt.Printf("recoverybench: cross-shard sweep %v (serial per-shard passes, %s device)\n", counts, rep.Device)
	for _, n := range counts {
		cfg := harness.DefaultConfig().Scaled(scale)
		cfg.Engine.Disk.Channels = channels
		cfg.Engine.Shards = n
		cfg.CrashAfterCheckpoints = 0
		cfg.UpdatesAfterLastCkpt = 8 * cfg.CheckpointEveryUpdates
		applyDevice(&cfg, fmt.Sprintf("shards-%d", n))
		res, err := harness.BuildCrash(cfg)
		if err != nil {
			log.Fatalf("building shards=%d crash: %v", n, err)
		}
		met := recoverOnce(res, cfg)
		rep.Shards = append(rep.Shards, shardResult{
			Shards:      n,
			WallRedoMS:  float64(met.WallRedoTime.Microseconds()) / 1000,
			WallTotalMS: float64(met.WallTotalTime.Microseconds()) / 1000,
			RedoRecords: met.RedoRecords,
			Applied:     met.Applied,
			CLRsWritten: met.CLRsWritten,
		})
		if n == widest && widest > 1 {
			// Determinism: recover the identical crash again.
			met2 := recoverOnce(res, cfg)
			rep.Determinism = &shardDeterminism{
				Shards:           n,
				Runs:             2,
				RedoRecordsEqual: met.RedoRecords == met2.RedoRecords,
				AppliedEqual:     met.Applied == met2.Applied,
				CLRsEqual:        met.CLRsWritten == met2.CLRsWritten,
			}
		}
	}
	var base float64
	for _, r := range rep.Shards {
		if r.Shards == 1 {
			base = r.WallTotalMS
			break
		}
	}
	fmt.Printf("%8s %14s %14s %12s %10s\n", "shards", "wall redo ms", "wall total ms", "redo recs", "speedup")
	for i := range rep.Shards {
		r := &rep.Shards[i]
		if r.WallTotalMS > 0 {
			r.Speedup = base / r.WallTotalMS
		}
		fmt.Printf("%8d %14.2f %14.2f %12d %9.2fx\n",
			r.Shards, r.WallRedoMS, r.WallTotalMS, r.RedoRecords, r.Speedup)
	}
	if d := rep.Determinism; d != nil {
		fmt.Printf("determinism at %d shards over %d runs: redo=%v applied=%v clrs=%v\n",
			d.Shards, d.Runs, d.RedoRecordsEqual, d.AppliedEqual, d.CLRsEqual)
	}
}

// sloConfig builds the probe/live configuration for one SLO device
// leg: a 4-shard engine, so the segmented decode front-end and the
// concurrent per-shard replay are both on the recovery path being
// budgeted.
func sloConfig(scale, channels int, fileMode bool, dir, sub string) harness.Config {
	cfg := harness.DefaultConfig().Scaled(scale)
	cfg.Engine.Disk.Channels = channels
	cfg.Engine.Shards = 4
	cfg.CrashAfterCheckpoints = 0
	cfg.UpdatesAfterLastCkpt = 4 * cfg.CheckpointEveryUpdates
	cfg.OpenTxns = 2
	cfg.OpenTxnUpdates = 6
	if fileMode {
		cfg.Engine.Device = engine.DeviceFile
		cfg.Engine.Dir = filepath.Join(dir, sub)
	}
	return cfg
}

// sloOpts is the production-shaped recovery configuration the SLO mode
// measures: parallel redo and undo, default decode width, real-IO
// wall-clock on the sim device.
func sloOpts(cfg harness.Config, fileMode bool, realScale int) core.Options {
	opt := core.DefaultOptions(cfg.Engine)
	opt.RedoWorkers = 4
	opt.UndoWorkers = 2
	if !fileMode {
		opt.RealIOScale = realScale
	}
	return opt
}

// runSLO is the recovery-SLO mode: per device, measure the replay rate
// with a probe recovery, then for each budget run a live engine under a
// budget-mode Checkpointer, crash it, and check recovery actually came
// in near the budget — plus the serial-equality and decode-width
// invariants the parallel front-ends must preserve.
func runSLO(rep *report, budgets []time.Duration, scale, channels, realScale int, method core.Method, dir string) {
	for _, dev := range []string{"sim", "file"} {
		fileMode := dev == "file"
		probeCfg := sloConfig(scale, channels, fileMode, dir, "slo-probe")
		fmt.Printf("recoverybench: [%s] building SLO probe crash (rows=%d, 4 shards)\n", dev, probeCfg.Workload.Rows)
		probeRes, err := harness.BuildCrash(probeCfg)
		if err != nil {
			log.Fatalf("[%s] building SLO probe crash: %v", dev, err)
		}
		probeEng, probeMet, err := core.Recover(probeRes.Crash, method, sloOpts(probeCfg, fileMode, realScale))
		if err != nil {
			log.Fatalf("[%s] SLO probe recovery: %v", dev, err)
		}
		seed := probeEng.LastRecovery.ReplayBytesPerSec
		fmt.Printf("  probe replay rate: %.2f MB/s (%d bytes replayed)\n", seed/1e6, probeMet.RedoWindowBytes)
		for _, b := range budgets {
			rep.SLO = append(rep.SLO, runOneSLO(dev, b, seed, scale, channels, realScale, fileMode, method, dir))
		}
		if !fileMode {
			runDecodeSweep(rep, probeRes, probeCfg, realScale, method)
		}
	}
}

// runOneSLO runs one live engine under a budget-mode Checkpointer,
// crashes it with losers in flight, and recovers it twice (production
// parallel options, then effectively-serial decode/redo/undo) to report
// both the budget outcome and the byte-identical-recovery invariants.
func runOneSLO(dev string, budget time.Duration, seed float64, scale, channels, realScale int, fileMode bool, method core.Method, dir string) sloResult {
	cfg := sloConfig(scale, channels, fileMode, dir, fmt.Sprintf("slo-%dms", budget.Milliseconds()))
	ecfg := cfg.Engine
	eng, err := engine.New(ecfg)
	if err != nil {
		log.Fatalf("[%s] budget=%v: %v", dev, budget, err)
	}
	rows := cfg.Workload.Rows
	pad := strings.Repeat("x", 64)
	if err := eng.Load(rows, func(k uint64) []byte {
		return []byte(fmt.Sprintf("slo-initial-%08d-%s", k, pad))
	}); err != nil {
		log.Fatalf("[%s] budget=%v load: %v", dev, budget, err)
	}
	mgr := eng.NewSessionManager(0)
	// Poll well inside the budget so the estimate is evaluated many
	// times per window; clamped so tiny budgets don't spin.
	interval := budget / 25
	if interval < 500*time.Microsecond {
		interval = 500 * time.Microsecond
	}
	if interval > 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	ckpt := eng.StartCheckpointer(mgr, engine.CheckpointerConfig{
		Interval:          interval,
		MinRecords:        1,
		RecoveryBudget:    budget,
		ReplayBytesPerSec: seed,
	})

	// Traffic target: several budget-widths of log, so holding the SLO
	// forces multiple budget-triggered checkpoints; capped to bound the
	// bench's runtime when the device's replay rate is huge.
	target := int64(seed * budget.Seconds() * 6)
	if target < 1<<20 {
		target = 1 << 20
	}
	if target > 24<<20 {
		target = 24 << 20
	}
	start := eng.Log.EndLSN()
	const clients = 4
	// Each client owns a disjoint slice of [2000, rows): 2PL means
	// overlapping hot keys would abort the bench, not measure it.
	span := (rows - 2000) / clients
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := mgr.NewSession()
			base := uint64(2000 + c*span)
			val := []byte(fmt.Sprintf("slo-c%d-%s", c, strings.Repeat("y", 96)))
			for i := 0; int64(eng.Log.EndLSN()-start) < target; i++ {
				if err := sess.Begin(); err != nil {
					errCh <- err
					return
				}
				for u := 0; u < 3; u++ {
					k := base + uint64((i*31+u*7)%span)
					if err := sess.Update(ecfg.TableID, k, val); err != nil {
						errCh <- err
						return
					}
				}
				if err := sess.Commit(); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		log.Fatalf("[%s] budget=%v traffic: %v", dev, budget, err)
	}
	traffic := int64(eng.Log.EndLSN() - start)

	// Two losers left in flight (key-disjoint from each other and from
	// the committed traffic, which steered above key 2000), so the undo
	// pass has CLRs to plan — the serial-equality check needs them.
	for l := 0; l < 2; l++ {
		txn := eng.TC.Begin()
		for u := 0; u < 6; u++ {
			k := uint64(l*997 + u*83)
			if err := eng.TC.Update(txn, ecfg.TableID, k, []byte("slo-loser")); err != nil {
				log.Fatalf("[%s] budget=%v loser update: %v", dev, budget, err)
			}
		}
	}
	eng.TC.SendEOSL()
	ckpt.Stop()
	st := ckpt.Stats()
	if st.LastErr != nil {
		log.Fatalf("[%s] budget=%v checkpointer: %v", dev, budget, st.LastErr)
	}
	cs := eng.Crash()

	pMet, pEnd := sloRecover(cs, method, sloOpts(cfg, fileMode, realScale), dev, budget, "parallel")
	sopt := core.DefaultOptions(ecfg)
	sopt.DecodeWorkers = 1
	sopt.DecodeSegmentBytes = 1 << 30
	if !fileMode {
		sopt.RealIOScale = realScale
	}
	sMet, sEnd := sloRecover(cs, method, sopt, dev, budget, "serial")

	res := sloResult{
		Device:              dev,
		BudgetMS:            float64(budget.Microseconds()) / 1000,
		SeedRateBytesPerSec: seed,
		TrafficBytes:        traffic,
		CheckpointsTaken:    st.Taken,
		BudgetTriggers:      st.BudgetTriggers,
		FinalWindowBytes:    pMet.RedoWindowBytes,
		ReplayMS:            float64((pMet.WallTotalTime - pMet.WallUndoTime).Microseconds()) / 1000,
		TotalMS:             float64(pMet.WallTotalTime.Microseconds()) / 1000,
		LosersUndone:        pMet.LosersUndone,
		CLRsParallel:        pMet.CLRsWritten,
		CLRsSerial:          sMet.CLRsWritten,
		LogEndEqual:         pEnd == sEnd,
	}
	fmt.Printf("  [%s] budget %v: %d ckpts (%d budget-triggered), %s traffic, window %d bytes → replay %.2fms, CLRs %d/%d, log end equal %v\n",
		dev, budget, res.CheckpointsTaken, res.BudgetTriggers, fmtBytes(traffic),
		res.FinalWindowBytes, res.ReplayMS, res.CLRsParallel, res.CLRsSerial, res.LogEndEqual)
	return res
}

// sloRecover recovers one crash fork and returns the metrics plus the
// recovered log end (the serial-equality witness).
func sloRecover(cs *engine.CrashState, method core.Method, opt core.Options, dev string, budget time.Duration, label string) (*core.Metrics, int64) {
	eng, met, err := core.Recover(cs, method, opt)
	if err != nil {
		log.Fatalf("[%s] budget=%v %s recovery: %v", dev, budget, label, err)
	}
	return met, int64(eng.Log.EndLSN())
}

// runDecodeSweep recovers the sim probe crash at increasing decode
// widths: the segmented front-end must emit identical record counts
// (and identical CLRs) at every width — parallel decode changes how
// fast the log is read, never what recovery replays.
func runDecodeSweep(rep *report, res *harness.CrashResult, cfg harness.Config, realScale int, method core.Method) {
	fmt.Printf("  decode-worker sweep over the sim probe crash\n")
	fmt.Printf("  %8s %14s %12s %10s %10s %12s\n", "workers", "wall total ms", "decode recs", "segments", "resyncs", "stall ms")
	for _, w := range []int{1, 2, 4, 8} {
		opt := core.DefaultOptions(cfg.Engine)
		opt.RedoWorkers = 2
		opt.UndoWorkers = 2
		opt.RealIOScale = realScale
		opt.DecodeWorkers = w
		// Small segments: the probe window is under the 256 KiB
		// default, which would leave every width decoding one segment.
		opt.DecodeSegmentBytes = 16 << 10
		met, err := harness.RunRecovery(res, method, opt)
		if err != nil {
			log.Fatalf("decode workers=%d: %v", w, err)
		}
		d := decodeResult{
			Workers:        w,
			WallTotalMS:    float64(met.WallTotalTime.Microseconds()) / 1000,
			DecodeRecords:  met.DecodeRecords,
			DecodeSegments: met.DecodeSegments,
			DecodeResyncs:  met.DecodeResyncs,
			DecodeStallMS:  float64(met.DecodeStall.Microseconds()) / 1000,
			CLRsWritten:    met.CLRsWritten,
		}
		rep.Decode = append(rep.Decode, d)
		fmt.Printf("  %8d %14.2f %12d %10d %10d %12.2f\n",
			d.Workers, d.WallTotalMS, d.DecodeRecords, d.DecodeSegments, d.DecodeResyncs, d.DecodeStallMS)
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func parseMethod(s string) (core.Method, error) {
	for _, m := range core.Methods() {
		if strings.EqualFold(m.String(), s) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown method %q (want Log0, Log1, Log2, SQL1 or SQL2)", s)
}
