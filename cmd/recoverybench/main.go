// Command recoverybench measures the production-shaped recovery path:
//
//  1. Redo worker sweep — the same crash is recovered at increasing
//     RedoWorkers counts against wall-clock IO (storage's real-IO
//     mode), so the pipelined page-partitioned redo's speedup is a real
//     elapsed-time measurement, not a simulation artefact. Every run is
//     verified against the committed-state oracle.
//  2. Undo worker sweep — a crash with many long-running loser
//     transactions (whose pages the redo traffic has evicted) is
//     recovered at increasing UndoWorkers counts, measuring parallel
//     undo's wall-clock speedup the same way.
//  3. Checkpoint comparison — the same workload volume is crashed twice,
//     once with live checkpoints and once cold, and recovered in the
//     virtual-time simulation: checkpointing must bound the redo scan
//     (fewer records replayed, less redo time).
//  4. Cross-shard sweep (-shards, replaces the other sweeps) — one
//     engine per shard count over the identical workload, recovered
//     with serial per-shard passes, so the wall-clock comparison
//     isolates the concurrency of the shards recovering in parallel;
//     at the widest count the same crash is recovered twice and the
//     record counts compared (the cross-shard determinism gate).
//
// The sweeps run against an NVMe-class device queue (-channels, default
// 16): the modeled SATA-era depth of 4 caps any replay parallelism at
// 4x regardless of worker count, which is the plateau PR 2 measured.
//
// With -device=file the whole pipeline runs against real files instead
// of the simulation: pages in a storage.FileDisk, the WAL a real file
// whose every group-commit force is an fsync, the crash a closed set of
// file handles, and each recovery run a copy of those files reopened —
// so the sweeps report end-to-end wall-clock recovery numbers
// (-realscale is ignored; there is nothing to scale, the IO is real).
//
// It emits BENCH_recovery.json (sim), BENCH_recovery_file.json (file)
// or BENCH_recovery_shards.json (-shards) for the CI bench-regression
// gate and artifact upload.
//
// Usage:
//
//	go run ./cmd/recoverybench                      # full settings
//	go run ./cmd/recoverybench -quick               # CI smoke settings
//	go run ./cmd/recoverybench -device=file -dir /dev/shm/rbench
//	go run ./cmd/recoverybench -shards 1,2,4        # cross-shard recovery sweep
//	go run ./cmd/recoverybench -workers 1,2,4,8,16 -out /tmp/BENCH_recovery.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"logrec/internal/core"
	"logrec/internal/engine"
	"logrec/internal/harness"
)

type workerResult struct {
	Workers     int     `json:"workers"`
	WallRedoMS  float64 `json:"wall_redo_ms"`
	WallTotalMS float64 `json:"wall_total_ms"`
	RedoRecords int64   `json:"redo_records"`
	Applied     int64   `json:"applied"`
	Speedup     float64 `json:"speedup_vs_1"`
}

type undoResult struct {
	Workers     int     `json:"workers"`
	WallUndoMS  float64 `json:"wall_undo_ms"`
	CLRsWritten int64   `json:"clrs_written"`
	Losers      int     `json:"losers"`
	Speedup     float64 `json:"speedup_vs_1"`
}

type shardResult struct {
	Shards      int     `json:"shards"`
	WallRedoMS  float64 `json:"wall_redo_ms"`
	WallTotalMS float64 `json:"wall_total_ms"`
	RedoRecords int64   `json:"redo_records"`
	Applied     int64   `json:"applied"`
	CLRsWritten int64   `json:"clrs_written"`
	Speedup     float64 `json:"speedup_vs_1"`
}

// shardDeterminism reports the double-recovery check at the widest
// shard count: the same crash recovered twice must replay and apply
// identical record counts (cross-shard concurrency must not change
// what recovery does, only how fast).
type shardDeterminism struct {
	Shards           int  `json:"shards"`
	Runs             int  `json:"runs"`
	RedoRecordsEqual bool `json:"redo_records_equal"`
	AppliedEqual     bool `json:"applied_equal"`
	CLRsEqual        bool `json:"clrs_equal"`
}

type ckptResult struct {
	ColdRedoRecords int64   `json:"cold_redo_records"`
	CkptRedoRecords int64   `json:"ckpt_redo_records"`
	ColdRedoMS      float64 `json:"cold_redo_ms"` // virtual time (sim) / wall redo time (file)
	CkptRedoMS      float64 `json:"ckpt_redo_ms"` // virtual time (sim) / wall redo time (file)
	RecordRatio     float64 `json:"record_ratio"` // ckpt/cold, lower is better
}

type report struct {
	Benchmark   string            `json:"benchmark"`
	Device      string            `json:"device"`
	Method      string            `json:"method"`
	GoMaxProcs  int               `json:"go_max_procs"`
	Scale       int               `json:"scale"`
	RealIOScale int               `json:"real_io_scale"`
	Channels    int               `json:"channels"`
	Workers     []workerResult    `json:"workers"`
	UndoWorkers []undoResult      `json:"undo_workers"`
	Checkpoint  ckptResult        `json:"checkpoint"`
	Shards      []shardResult     `json:"shards,omitempty"`
	Determinism *shardDeterminism `json:"determinism,omitempty"`
}

func main() {
	var (
		workersFlag = flag.String("workers", "1,2,4,8", "comma-separated redo worker counts to sweep")
		undoFlag    = flag.String("undoworkers", "1,2,4,8", "comma-separated undo worker counts to sweep")
		scale       = flag.Int("scale", 10, "shrink the workload by this factor (see harness.Config.Scaled)")
		realScale   = flag.Int("realscale", 50, "real-IO latency divisor (modelled latency / this = wall sleep)")
		channels    = flag.Int("channels", 16, "modeled device queue depth for the worker sweeps (NVMe-class)")
		losers      = flag.Int("losers", 8, "loser transactions left open for the undo sweep")
		loserOps    = flag.Int("loserops", 25, "updates per loser transaction in the undo sweep")
		methodFlag  = flag.String("method", "Log1", "recovery method for the worker sweeps (Log0..SQL2)")
		shardsFlag  = flag.String("shards", "", "comma-separated shard counts: run the cross-shard recovery sweep instead of the worker sweeps (one engine per count, same workload)")
		deviceFlag  = flag.String("device", "sim", "storage backend: sim (modelled latencies scaled to wall-clock) or file (real files; end-to-end wall clock)")
		dirFlag     = flag.String("dir", "", "working directory for -device=file (default: a fresh temp dir, removed on exit)")
		out         = flag.String("out", "BENCH_recovery.json", "output JSON path")
		quick       = flag.Bool("quick", false, "CI smoke settings (smaller workload)")
	)
	flag.Parse()
	fileMode := *deviceFlag == "file"
	if !fileMode && *deviceFlag != "sim" {
		log.Fatalf("unknown -device %q (want sim or file)", *deviceFlag)
	}
	var workDir string
	if fileMode {
		if *dirFlag != "" {
			// The caller owns an explicitly passed directory: create it
			// if needed but never delete it (it may hold other data).
			workDir = *dirFlag
			if err := os.MkdirAll(workDir, 0o755); err != nil {
				log.Fatal(err)
			}
		} else {
			tmp, err := os.MkdirTemp("", "recoverybench-*")
			if err != nil {
				log.Fatal(err)
			}
			workDir = tmp
			defer os.RemoveAll(tmp)
		}
	}
	// applyDevice points one crash build at its own file-mode directory
	// (sim mode leaves the config untouched).
	applyDevice := func(cfg *harness.Config, sub string) {
		if fileMode {
			cfg.Engine.Device = engine.DeviceFile
			cfg.Engine.Dir = filepath.Join(workDir, sub)
		}
	}
	if *quick {
		// Smoke settings, without clobbering explicitly passed flags.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["scale"] {
			*scale = 20
		}
		if !set["realscale"] {
			*realScale = 25
		}
	}

	parseSweep := func(name, s string) []int {
		var out []int
		haveOne := false
		for _, tok := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n < 1 {
				log.Fatalf("bad -%s entry %q", name, tok)
			}
			out = append(out, n)
			haveOne = haveOne || n == 1
		}
		if !haveOne {
			// speedup_vs_1 must mean what it says; always measure the
			// 1-worker baseline.
			fmt.Printf("recoverybench: adding %s=1 to the sweep (speedup baseline)\n", name)
			out = append([]int{1}, out...)
		}
		return out
	}
	workers := parseSweep("workers", *workersFlag)
	undoWorkers := parseSweep("undoworkers", *undoFlag)
	method, err := parseMethod(*methodFlag)
	if err != nil {
		log.Fatal(err)
	}

	rep := report{
		Benchmark:   "recovery",
		Device:      *deviceFlag,
		Method:      method.String(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Scale:       *scale,
		RealIOScale: *realScale,
		Channels:    *channels,
	}
	if fileMode {
		// File IO is real; nothing is scaled.
		rep.Benchmark = "recovery-file"
		rep.RealIOScale = 0
	}

	if *shardsFlag != "" {
		// Cross-shard mode: one engine per shard count, same workload,
		// serial per-shard passes — the measured parallelism is the
		// concurrent recovery of the shards themselves.
		counts := parseSweep("shards", *shardsFlag)
		rep.Benchmark = "recovery-shards"
		runShardSweep(&rep, counts, *scale, *channels, *realScale, fileMode, method, applyDevice)
		writeReport(&rep, *out)
		return
	}

	// Cold crash: only the initial (post-load) checkpoint, then a long
	// update run — the redo window is essentially the whole log, which
	// is what gives the worker sweep enough pages to shard.
	cold := harness.DefaultConfig().Scaled(*scale)
	cold.Engine.Disk.Channels = *channels
	cold.CrashAfterCheckpoints = 0
	cold.UpdatesAfterLastCkpt = 8 * cold.CheckpointEveryUpdates
	applyDevice(&cold, "cold")
	fmt.Printf("recoverybench: building cold crash (rows=%d, redo window ≈%d updates, queue depth %d)\n",
		cold.Workload.Rows, cold.UpdatesAfterLastCkpt, *channels)
	coldRes, err := harness.BuildCrash(cold)
	if err != nil {
		log.Fatalf("building cold crash: %v", err)
	}

	// Redo worker sweep against wall-clock IO. Speedups are computed
	// against the 1-worker run (always present in the sweep).
	maxRedoWorkers := 1
	for _, w := range workers {
		if w > maxRedoWorkers {
			maxRedoWorkers = w
		}
		opt := core.DefaultOptions(cold.Engine)
		opt.RedoWorkers = w
		if !fileMode {
			opt.RealIOScale = *realScale
		}
		met, err := harness.RunRecovery(coldRes, method, opt)
		if err != nil {
			log.Fatalf("workers=%d: %v", w, err)
		}
		rep.Workers = append(rep.Workers, workerResult{
			Workers:     w,
			WallRedoMS:  float64(met.WallRedoTime.Microseconds()) / 1000,
			WallTotalMS: float64(met.WallTotalTime.Microseconds()) / 1000,
			RedoRecords: met.RedoRecords,
			Applied:     met.Applied,
		})
	}
	var base float64
	for _, r := range rep.Workers {
		if r.Workers == 1 {
			base = r.WallRedoMS
			break
		}
	}
	fmt.Printf("%8s %14s %14s %12s %10s\n", "workers", "wall redo ms", "wall total ms", "redo recs", "speedup")
	for i := range rep.Workers {
		r := &rep.Workers[i]
		if r.WallRedoMS > 0 {
			r.Speedup = base / r.WallRedoMS
		}
		fmt.Printf("%8d %14.2f %14.2f %12d %9.2fx\n",
			r.Workers, r.WallRedoMS, r.WallTotalMS, r.RedoRecords, r.Speedup)
	}

	// Undo worker sweep: long-running losers whose strided pages the
	// redo traffic evicted, so undo's leaf fetches are real IO. Redo
	// runs at the widest swept width to keep the measured phase hot.
	undoCfg := harness.DefaultConfig().Scaled(*scale)
	undoCfg.Engine.Disk.Channels = *channels
	undoCfg.CrashAfterCheckpoints = 0
	undoCfg.UpdatesAfterLastCkpt = 8 * undoCfg.CheckpointEveryUpdates
	undoCfg.EarlyLosers = true
	undoCfg.OpenTxns = *losers
	undoCfg.OpenTxnUpdates = *loserOps
	applyDevice(&undoCfg, "undo")
	fmt.Printf("building undo crash (%d losers × %d updates)\n", *losers, *loserOps)
	undoRes, err := harness.BuildCrash(undoCfg)
	if err != nil {
		log.Fatalf("building undo crash: %v", err)
	}
	for _, w := range undoWorkers {
		opt := core.DefaultOptions(undoCfg.Engine)
		opt.RedoWorkers = maxRedoWorkers
		opt.UndoWorkers = w
		if !fileMode {
			opt.RealIOScale = *realScale
		}
		met, err := harness.RunRecovery(undoRes, method, opt)
		if err != nil {
			log.Fatalf("undo workers=%d: %v", w, err)
		}
		rep.UndoWorkers = append(rep.UndoWorkers, undoResult{
			Workers:     w,
			WallUndoMS:  float64(met.WallUndoTime.Microseconds()) / 1000,
			CLRsWritten: met.CLRsWritten,
			Losers:      met.LosersUndone,
		})
	}
	base = 0
	for _, r := range rep.UndoWorkers {
		if r.Workers == 1 {
			base = r.WallUndoMS
			break
		}
	}
	fmt.Printf("%8s %14s %12s %10s %10s\n", "workers", "wall undo ms", "CLRs", "losers", "speedup")
	for i := range rep.UndoWorkers {
		r := &rep.UndoWorkers[i]
		if r.WallUndoMS > 0 {
			r.Speedup = base / r.WallUndoMS
		}
		fmt.Printf("%8d %14.2f %12d %10d %9.2fx\n",
			r.Workers, r.WallUndoMS, r.CLRsWritten, r.Losers, r.Speedup)
	}

	// Checkpoint comparison: same update volume, with periodic
	// checkpoints vs cold, on the selected device — it measures the
	// scan bound (a record count, device-independent), not parallelism.
	// Times are virtual on the sim device; on the file device the
	// virtual clock never advances for IO, so wall redo time is
	// reported instead.
	ckpt := harness.DefaultConfig().Scaled(*scale)
	ckpt.CrashAfterCheckpoints = 8
	applyDevice(&ckpt, "ckpt")
	fmt.Printf("building checkpointed crash (ckpt every %d updates)\n", ckpt.CheckpointEveryUpdates)
	ckptRes, err := harness.BuildCrash(ckpt)
	if err != nil {
		log.Fatalf("building checkpointed crash: %v", err)
	}
	coldMet, err := harness.RunRecovery(coldRes, method, core.DefaultOptions(cold.Engine))
	if err != nil {
		log.Fatalf("cold serial recovery: %v", err)
	}
	ckptMet, err := harness.RunRecovery(ckptRes, method, core.DefaultOptions(ckpt.Engine))
	if err != nil {
		log.Fatalf("ckpt serial recovery: %v", err)
	}
	rep.Checkpoint = ckptResult{
		ColdRedoRecords: coldMet.RedoRecords,
		CkptRedoRecords: ckptMet.RedoRecords,
		ColdRedoMS:      coldMet.RedoTotal.Milliseconds(),
		CkptRedoMS:      ckptMet.RedoTotal.Milliseconds(),
	}
	timeLabel := "virtual"
	if fileMode {
		timeLabel = "wall"
		rep.Checkpoint.ColdRedoMS = float64(coldMet.WallRedoTime.Microseconds()) / 1000
		rep.Checkpoint.CkptRedoMS = float64(ckptMet.WallRedoTime.Microseconds()) / 1000
	}
	if coldMet.RedoRecords > 0 {
		rep.Checkpoint.RecordRatio = float64(ckptMet.RedoRecords) / float64(coldMet.RedoRecords)
	}
	fmt.Printf("checkpointing: redo records %d → %d (%.1f%%), redo time %.2fms → %.2fms (%s)\n",
		rep.Checkpoint.ColdRedoRecords, rep.Checkpoint.CkptRedoRecords,
		100*rep.Checkpoint.RecordRatio, rep.Checkpoint.ColdRedoMS, rep.Checkpoint.CkptRedoMS, timeLabel)

	writeReport(&rep, *out)
}

func writeReport(rep *report, out string) {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}

// runShardSweep builds one crash per shard count over the identical
// workload and recovers each with serial per-shard passes, so the
// wall-clock comparison isolates cross-shard recovery concurrency. At
// the widest count the same crash is recovered twice and the record
// counts compared — cross-shard scheduling must not change what
// recovery replays (the determinism gate).
func runShardSweep(rep *report, counts []int, scale, channels, realScale int, fileMode bool, method core.Method, applyDevice func(*harness.Config, string)) {
	recoverOnce := func(res *harness.CrashResult, cfg harness.Config) *core.Metrics {
		opt := core.DefaultOptions(cfg.Engine)
		if !fileMode {
			opt.RealIOScale = realScale
		}
		met, err := harness.RunRecovery(res, method, opt)
		if err != nil {
			log.Fatalf("shards=%d: %v", cfg.Engine.Shards, err)
		}
		return met
	}

	widest := 1
	for _, n := range counts {
		if n > widest {
			widest = n
		}
	}
	fmt.Printf("recoverybench: cross-shard sweep %v (serial per-shard passes, %s device)\n", counts, rep.Device)
	for _, n := range counts {
		cfg := harness.DefaultConfig().Scaled(scale)
		cfg.Engine.Disk.Channels = channels
		cfg.Engine.Shards = n
		cfg.CrashAfterCheckpoints = 0
		cfg.UpdatesAfterLastCkpt = 8 * cfg.CheckpointEveryUpdates
		applyDevice(&cfg, fmt.Sprintf("shards-%d", n))
		res, err := harness.BuildCrash(cfg)
		if err != nil {
			log.Fatalf("building shards=%d crash: %v", n, err)
		}
		met := recoverOnce(res, cfg)
		rep.Shards = append(rep.Shards, shardResult{
			Shards:      n,
			WallRedoMS:  float64(met.WallRedoTime.Microseconds()) / 1000,
			WallTotalMS: float64(met.WallTotalTime.Microseconds()) / 1000,
			RedoRecords: met.RedoRecords,
			Applied:     met.Applied,
			CLRsWritten: met.CLRsWritten,
		})
		if n == widest && widest > 1 {
			// Determinism: recover the identical crash again.
			met2 := recoverOnce(res, cfg)
			rep.Determinism = &shardDeterminism{
				Shards:           n,
				Runs:             2,
				RedoRecordsEqual: met.RedoRecords == met2.RedoRecords,
				AppliedEqual:     met.Applied == met2.Applied,
				CLRsEqual:        met.CLRsWritten == met2.CLRsWritten,
			}
		}
	}
	var base float64
	for _, r := range rep.Shards {
		if r.Shards == 1 {
			base = r.WallTotalMS
			break
		}
	}
	fmt.Printf("%8s %14s %14s %12s %10s\n", "shards", "wall redo ms", "wall total ms", "redo recs", "speedup")
	for i := range rep.Shards {
		r := &rep.Shards[i]
		if r.WallTotalMS > 0 {
			r.Speedup = base / r.WallTotalMS
		}
		fmt.Printf("%8d %14.2f %14.2f %12d %9.2fx\n",
			r.Shards, r.WallRedoMS, r.WallTotalMS, r.RedoRecords, r.Speedup)
	}
	if d := rep.Determinism; d != nil {
		fmt.Printf("determinism at %d shards over %d runs: redo=%v applied=%v clrs=%v\n",
			d.Shards, d.Runs, d.RedoRecordsEqual, d.AppliedEqual, d.CLRsEqual)
	}
}

func parseMethod(s string) (core.Method, error) {
	for _, m := range core.Methods() {
		if strings.EqualFold(m.String(), s) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown method %q (want Log0, Log1, Log2, SQL1 or SQL2)", s)
}
