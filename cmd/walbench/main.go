// Command walbench measures the multi-client write path: commits/sec
// through tc.Session at increasing client counts, and how many log
// records each group-commit flush covers. It emits BENCH_wal.json for
// CI artifact upload and trend tracking.
//
// The group committer's flush delay emulates the stable-write latency
// of a real log device (default 100µs ≈ a fast NVMe log force). With
// one client every commit pays the full delay; with N clients the
// leader's linger coalesces concurrent commits into one force, so
// throughput rises and records-per-flush grows — the classic group
// commit curve (LogBase; §4 of the paper assumes the same batching for
// EOSL).
//
// With -device=file the engine runs on real files and every
// group-commit flush is a real fsync of the log file, so the curve is
// the fsync-amortization curve measured on a real log device: commits
// per force (= per fsync) versus client count, with the emulated flush
// delay replaced by the device's own (set -flushdelay 0 to let the
// fsync alone pace the batches).
//
// With -shards the tool switches to the shard-plane sweep: a fixed
// client count drives a zipfian workload whose hot keys all land on one
// shard's range, at increasing shard counts, with load-driven
// auto-split enabled. Alongside the real commit rate it reports a
// modeled rate — commits divided by the busiest plane's held time —
// which is what the shard-parallel write path buys on hardware with
// enough cores: the busiest plane is the serial bottleneck, so
// spreading plane time is raising the ceiling even when a small CI box
// cannot show it in wall-clock throughput.
//
// Usage:
//
//	go run ./cmd/walbench                         # default sweep 1,4,16
//	go run ./cmd/walbench -clients 1,2,4,8,16,32 -txns 4000
//	go run ./cmd/walbench -device=file -dir /dev/shm/walbench -flushdelay 0
//	go run ./cmd/walbench -shards 1,2,4,8         # shard-plane sweep
//	go run ./cmd/walbench -quick                  # CI smoke settings
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"logrec/internal/engine"
	"logrec/internal/tc"
	"logrec/internal/workload"
)

type result struct {
	Clients        int     `json:"clients"`
	Commits        int64   `json:"commits"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	CommitsPerSec  float64 `json:"commits_per_sec"`
	Flushes        int64   `json:"flushes"`
	RecordsPerFlus float64 `json:"records_per_flush"`
	CommitsPerFlus float64 `json:"commits_per_flush"`
	MaxBatch       int64   `json:"max_batch"`
}

type report struct {
	Benchmark     string   `json:"benchmark"`
	Device        string   `json:"device"`
	GoMaxProcs    int      `json:"go_max_procs"`
	FlushDelayUS  float64  `json:"flush_delay_us"`
	TxnsPerClient int      `json:"txns_per_client"`
	UpdatesPerTxn int      `json:"updates_per_txn"`
	Rows          int      `json:"rows"`
	Results       []result `json:"results"`
}

func main() {
	var (
		clientsFlag = flag.String("clients", "1,4,16", "comma-separated client counts to sweep")
		txns        = flag.Int("txns", 2000, "transactions per client")
		ops         = flag.Int("ops", 2, "updates per transaction")
		rows        = flag.Int("rows", 10_000, "rows bulk-loaded before the run")
		cache       = flag.Int("cache", 1024, "buffer pool capacity in pages")
		flushDelay  = flag.Duration("flushdelay", 100*time.Microsecond, "emulated log-device write latency (file mode: extra linger on top of the real fsync)")
		deviceFlag  = flag.String("device", "sim", "storage backend: sim (emulated flush latency) or file (real files; every flush is a real fsync)")
		dirFlag     = flag.String("dir", "", "working directory for -device=file (default: a fresh temp dir, removed on exit)")
		out         = flag.String("out", "BENCH_wal.json", "output JSON path")
		quick       = flag.Bool("quick", false, "CI smoke settings (fewer txns, fewer rows)")
		shardsFlag  = flag.String("shards", "", "run the shard-plane sweep instead: comma-separated shard counts (e.g. 1,2,4,8)")
		zipfS       = flag.Float64("zipf", 1.01, "zipfian skew of the shard-sweep workload")
		wkld        = flag.String("workload", "", "run the YCSB-style typed-executor workload instead: preset a|b|c|d|e|f|mixed")
		poolPolicy  = flag.String("poolpolicy", "", "buffer pool eviction policy for the -workload run: clock (default) or 2q")
		poolShards  = flag.Int("poolshards", 8, "buffer pool latch shards per DC for the -workload run (clamped to capacity/8)")
		wshards     = flag.Int("wshards", 4, "shard count for the -workload run")
		scanMax     = flag.Int("scanmax", 100, "max range-scan length for the -workload run")
		uniform     = flag.Bool("uniform", false, "use uniform keys in the -workload run instead of zipfian")
	)
	flag.Parse()
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *wkld != "" {
		if *deviceFlag == "file" {
			log.Fatal("-workload runs the simulated device only (drop -device=file)")
		}
		// Workload defaults: a key space in the millions (the typed
		// executor scans it whole for the pushdown probe and the
		// recovery digest), moderate per-client transaction counts,
		// commit pacing left to group commit alone.
		p := workloadParams{
			preset:     *wkld,
			clients:    8,
			txns:       500,
			ops:        8,
			keys:       1_500_000,
			shards:     *wshards,
			cache:      *cache,
			uniform:    *uniform,
			zipfS:      1.1,
			maxScanLen: *scanMax,
			flushDelay: 0,
			policy:     *poolPolicy,
			poolShards: *poolShards,
			out:        "BENCH_workload.json",
		}
		if set["clients"] {
			n, err := strconv.Atoi(strings.TrimSpace(*clientsFlag))
			if err != nil || n < 1 {
				log.Fatalf("-workload wants a single -clients count, got %q", *clientsFlag)
			}
			p.clients = n
		}
		if set["txns"] {
			p.txns = *txns
		}
		if set["ops"] {
			p.ops = *ops
		}
		if set["rows"] {
			p.keys = *rows
		}
		if set["zipf"] {
			p.zipfS = *zipfS
		}
		if set["flushdelay"] {
			p.flushDelay = *flushDelay
		}
		if set["out"] {
			p.out = *out
		}
		if *quick {
			p.clients = 4
			p.txns = 120
			p.keys = 150_000
		}
		runWorkload(p)
		return
	}
	if *shardsFlag != "" {
		// Shard-sweep defaults differ: a key space large enough that
		// range splits have room, and enough transactions that the
		// balancer sees several load windows.
		if !set["rows"] {
			*rows = 2_000_000
		}
		if !set["txns"] {
			*txns = 4000
		}
		if !set["clients"] {
			*clientsFlag = "16"
		}
		if !set["flushdelay"] {
			*flushDelay = 0
		}
		if !set["out"] {
			*out = "BENCH_wal_shards.json"
		}
		if *quick {
			*rows = 300_000
			*txns = 1500
		}
	} else if *quick {
		*txns = 300
		*rows = 4000
	}
	fileMode := *deviceFlag == "file"
	if !fileMode && *deviceFlag != "sim" {
		log.Fatalf("unknown -device %q (want sim or file)", *deviceFlag)
	}
	var workDir string
	if fileMode {
		if *dirFlag != "" {
			workDir = *dirFlag
			if err := os.MkdirAll(workDir, 0o755); err != nil {
				log.Fatal(err)
			}
		} else {
			tmp, err := os.MkdirTemp("", "walbench-*")
			if err != nil {
				log.Fatal(err)
			}
			workDir = tmp
			defer os.RemoveAll(tmp)
		}
	}

	var clients []int
	for _, s := range strings.Split(*clientsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			log.Fatalf("bad -clients entry %q", s)
		}
		clients = append(clients, n)
	}

	if *shardsFlag != "" {
		if fileMode {
			log.Fatal("-shards sweeps the simulated device only (drop -device=file)")
		}
		var counts []int
		for _, s := range strings.Split(*shardsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				log.Fatalf("bad -shards entry %q", s)
			}
			counts = append(counts, n)
		}
		runShardSweep(counts, clients[0], *txns, *ops, *rows, *cache, *zipfS, *flushDelay, *out)
		return
	}

	rep := report{
		Benchmark:     "wal_group_commit",
		Device:        *deviceFlag,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		FlushDelayUS:  float64(*flushDelay) / float64(time.Microsecond),
		TxnsPerClient: *txns,
		UpdatesPerTxn: *ops,
		Rows:          *rows,
	}

	fmt.Printf("walbench: %d rows, %d txns/client × %d updates, flush delay %v\n",
		*rows, *txns, *ops, *flushDelay)
	fmt.Printf("%8s %12s %14s %10s %14s %14s\n",
		"clients", "commits", "commits/sec", "flushes", "recs/flush", "commits/flush")

	for _, n := range clients {
		dir := ""
		if fileMode {
			dir = filepath.Join(workDir, fmt.Sprintf("c%d", n))
		}
		r, err := runOne(n, *txns, *ops, *rows, *cache, *flushDelay, dir)
		if err != nil {
			log.Fatalf("clients=%d: %v", n, err)
		}
		rep.Results = append(rep.Results, r)
		fmt.Printf("%8d %12d %14.0f %10d %14.2f %14.2f\n",
			r.Clients, r.Commits, r.CommitsPerSec, r.Flushes, r.RecordsPerFlus, r.CommitsPerFlus)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func runOne(clients, txns, ops, rows, cache int, flushDelay time.Duration, dir string) (result, error) {
	cfg := engine.DefaultConfig()
	cfg.CachePages = cache
	if dir != "" {
		cfg.Device = engine.DeviceFile
		cfg.Dir = dir
	}
	eng, err := engine.New(cfg)
	if err != nil {
		return result{}, err
	}
	if err := eng.Load(rows, func(k uint64) []byte {
		return []byte(fmt.Sprintf("initial-value-%06d", k))
	}); err != nil {
		return result{}, err
	}
	mgr := eng.NewSessionManager(flushDelay)

	// Disjoint key partitions: this measures the write path, not lock
	// contention (bench_test.go covers the contended case).
	perClient := rows / clients
	if perClient < 1 {
		return result{}, fmt.Errorf("need at least one row per client (rows=%d, clients=%d)", rows, clients)
	}
	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := mgr.NewSession()
			base := uint64(c * perClient)
			for i := 0; i < txns; i++ {
				if err := sess.Begin(); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				for u := 0; u < ops; u++ {
					k := base + uint64((i*ops+u)%perClient)
					v := []byte(fmt.Sprintf("c%03d-t%06d-u%02d", c, i, u))
					if err := sess.Update(cfg.TableID, k, v); err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
				}
				if err := sess.Commit(); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return result{}, firstErr
	}

	st := eng.Stats().WAL
	commits := int64(clients) * int64(txns)
	r := result{
		Clients:        clients,
		Commits:        commits,
		ElapsedMS:      float64(elapsed) / float64(time.Millisecond),
		CommitsPerSec:  float64(commits) / elapsed.Seconds(),
		Flushes:        st.Flushes,
		RecordsPerFlus: st.RecordsPerFlush(),
		MaxBatch:       st.MaxBatch,
	}
	if st.Flushes > 0 {
		r.CommitsPerFlus = float64(st.Commits) / float64(st.Flushes)
	}
	return r, nil
}

// shardResult is one shard count's row of the shard-plane sweep.
type shardResult struct {
	Shards         int     `json:"shards"`
	Commits        int64   `json:"commits"`
	Conflicts      int64   `json:"conflicts"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	CommitsPerSec  float64 `json:"commits_per_sec"`
	MaxPlaneBusyMS float64 `json:"max_plane_busy_ms"`
	// ModeledCommitsPerSec divides the commits by the busiest plane's
	// held time: the rate a core per shard would sustain, since the
	// busiest plane is the serial bottleneck of the data path.
	ModeledCommitsPerSec float64 `json:"modeled_commits_per_sec"`
	ModeledSpeedup       float64 `json:"modeled_speedup_vs_1"`
	Routes               int     `json:"routes"`
	BoundarySplits       int64   `json:"boundary_splits"`
	Migrations           int64   `json:"migrations"`
	FailedMigrations     int64   `json:"failed_migrations"`
	FirstHotShare        float64 `json:"first_hot_share"`
	LastHotShare         float64 `json:"last_hot_share"`
	PerShardOps          []int64 `json:"per_shard_ops"`
}

type shardReport struct {
	Benchmark     string        `json:"benchmark"`
	GoMaxProcs    int           `json:"go_max_procs"`
	Clients       int           `json:"clients"`
	TxnsPerClient int           `json:"txns_per_client"`
	UpdatesPerTxn int           `json:"updates_per_txn"`
	Rows          int           `json:"rows"`
	ZipfS         float64       `json:"zipf_s"`
	Results       []shardResult `json:"results"`
}

func runShardSweep(counts []int, clients, txns, ops, rows, cache int, zipfS float64, flushDelay time.Duration, out string) {
	rep := shardReport{
		Benchmark:     "wal_shard_planes",
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Clients:       clients,
		TxnsPerClient: txns,
		UpdatesPerTxn: ops,
		Rows:          rows,
		ZipfS:         zipfS,
	}
	fmt.Printf("walbench shard sweep: %d rows, %d clients × %d txns × %d updates, zipf s=%g\n",
		rows, clients, txns, ops, zipfS)
	fmt.Printf("%8s %12s %14s %12s %16s %10s %8s %8s\n",
		"shards", "commits", "commits/sec", "conflicts", "modeled c/s", "speedup", "splits", "moves")
	for _, n := range counts {
		r, err := runOneShards(n, clients, txns, ops, rows, cache, zipfS, flushDelay)
		if err != nil {
			log.Fatalf("shards=%d: %v", n, err)
		}
		if len(rep.Results) > 0 && rep.Results[0].Shards == 1 && r.MaxPlaneBusyMS > 0 {
			r.ModeledSpeedup = rep.Results[0].MaxPlaneBusyMS / r.MaxPlaneBusyMS
		}
		rep.Results = append(rep.Results, r)
		fmt.Printf("%8d %12d %14.0f %12d %16.0f %10.2f %8d %8d\n",
			r.Shards, r.Commits, r.CommitsPerSec, r.Conflicts,
			r.ModeledCommitsPerSec, r.ModeledSpeedup, r.BoundarySplits, r.Migrations)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}

// runOneShards drives the skewed workload at one shard count. Every
// client owns a workload generator whose zipf ranks are hashed into a
// narrow low slice (1/64) of the key space: a contiguous hot range — initially
// one shard's — with enough intra-range spread that boundary splits and
// migrations can actually divide the load. Every third transaction adds
// a uniformly drawn far key, so cross-shard commits exercise the
// multi-plane path throughout.
func runOneShards(shards, clients, txns, ops, rows, cache int, zipfS float64, flushDelay time.Duration) (shardResult, error) {
	cfg := engine.DefaultConfig()
	cfg.CachePages = cache
	cfg.Shards = shards
	cfg.KeySpan = uint64(rows)
	cfg.AutoSplit = true
	// Small windows and bounded moves: a migration physically rewrites
	// every row it moves, so oversized moves would cost more than the
	// workload being balanced.
	cfg.AutoSplitCfg = tc.AutoSplitConfig{Interval: 2 * time.Millisecond, MaxMoveSpan: 2048}
	eng, err := engine.New(cfg)
	if err != nil {
		return shardResult{}, err
	}
	if err := eng.Load(rows, func(k uint64) []byte {
		return []byte(fmt.Sprintf("initial-value-%06d", k))
	}); err != nil {
		return shardResult{}, err
	}
	mgr := eng.NewSessionManager(flushDelay)

	hotSpan := uint64(rows / 64)
	if hotSpan == 0 {
		hotSpan = uint64(rows)
	}
	// The first third of each client's transactions is warmup: it gives
	// the balancer load windows to split and migrate the hot range.
	// Measurement starts at the barrier after warmup, from a snapshot of
	// the plane counters, so the modeled rate reflects the rebalanced
	// steady state rather than the migrations that produced it.
	warm := txns / 3
	var (
		wg        sync.WaitGroup
		warmWG    sync.WaitGroup
		gate      = make(chan struct{})
		conflicts atomic.Int64
		firstErr  error
		errOnce   sync.Once
	)
	warmWG.Add(clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			warmed := false
			defer func() {
				if !warmed {
					warmWG.Done()
				}
			}()
			wcfg := workload.DefaultConfig()
			wcfg.Rows = rows
			wcfg.Dist = workload.Zipf
			wcfg.ZipfS = zipfS
			wcfg.Seed = int64(c + 1)
			gen, err := workload.NewGenerator(wcfg)
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			sess := mgr.NewSession()
			for i := 0; i < txns; i++ {
				if i == warm {
					warmed = true
					warmWG.Done()
					<-gate
				}
				keys := make([]uint64, 0, ops)
				for u := 0; u < ops; u++ {
					rank := gen.NextKey()
					if i%3 == 0 && u == ops-1 {
						// Far key: uniform over the whole domain.
						keys = append(keys, (rank*0x9E3779B97F4A7C15)%uint64(rows))
					} else {
						keys = append(keys, (rank*2654435761)%hotSpan)
					}
				}
				for attempt := 0; ; attempt++ {
					if attempt == 1000 {
						errOnce.Do(func() { firstErr = fmt.Errorf("client %d txn %d starved", c, i) })
						return
					}
					if err := sess.Begin(); err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
					failed := false
					for u, k := range keys {
						v := []byte(fmt.Sprintf("c%03d-t%06d-u%02d", c, i, u))
						if err := sess.Update(cfg.TableID, k, v); err != nil {
							failed = true
							break
						}
					}
					if failed {
						conflicts.Add(1)
						if err := sess.Abort(); err != nil {
							errOnce.Do(func() { firstErr = err })
							return
						}
						time.Sleep(time.Duration(attempt+1) * 10 * time.Microsecond)
						continue
					}
					if err := sess.Commit(); err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
					break
				}
			}
		}(c)
	}
	warmWG.Wait()
	snap := eng.Stats()
	conflicts.Store(0)
	start := time.Now()
	close(gate)
	wg.Wait()
	elapsed := time.Since(start)
	if b := eng.Balancer(); b != nil {
		b.Stop()
	}
	if firstErr != nil {
		return shardResult{}, firstErr
	}

	st := eng.Stats()
	commits := int64(clients) * int64(txns-warm)
	var maxBusy int64
	var perShard []int64
	for i, ss := range st.Shards {
		ops := ss.SessionOps - snap.Shards[i].SessionOps
		busy := ss.SessionBusyNS - snap.Shards[i].SessionBusyNS
		perShard = append(perShard, ops)
		if busy > maxBusy {
			maxBusy = busy
		}
	}
	r := shardResult{
		Shards:           shards,
		Commits:          commits,
		Conflicts:        conflicts.Load(),
		ElapsedMS:        float64(elapsed) / float64(time.Millisecond),
		CommitsPerSec:    float64(commits) / elapsed.Seconds(),
		MaxPlaneBusyMS:   float64(maxBusy) / float64(time.Millisecond),
		Routes:           len(st.Routes),
		BoundarySplits:   st.AutoSplit.BoundarySplits,
		Migrations:       st.AutoSplit.Migrations,
		FailedMigrations: st.AutoSplit.FailedMigrations,
		FirstHotShare:    st.AutoSplit.FirstHotShare,
		LastHotShare:     st.AutoSplit.LastHotShare,
		PerShardOps:      perShard,
	}
	if maxBusy > 0 {
		r.ModeledCommitsPerSec = float64(commits) / (float64(maxBusy) / float64(time.Second))
	}
	r.ModeledSpeedup = 1
	return r, nil
}
