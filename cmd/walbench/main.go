// Command walbench measures the multi-client write path: commits/sec
// through tc.Session at increasing client counts, and how many log
// records each group-commit flush covers. It emits BENCH_wal.json for
// CI artifact upload and trend tracking.
//
// The group committer's flush delay emulates the stable-write latency
// of a real log device (default 100µs ≈ a fast NVMe log force). With
// one client every commit pays the full delay; with N clients the
// leader's linger coalesces concurrent commits into one force, so
// throughput rises and records-per-flush grows — the classic group
// commit curve (LogBase; §4 of the paper assumes the same batching for
// EOSL).
//
// With -device=file the engine runs on real files and every
// group-commit flush is a real fsync of the log file, so the curve is
// the fsync-amortization curve measured on a real log device: commits
// per force (= per fsync) versus client count, with the emulated flush
// delay replaced by the device's own (set -flushdelay 0 to let the
// fsync alone pace the batches).
//
// Usage:
//
//	go run ./cmd/walbench                         # default sweep 1,4,16
//	go run ./cmd/walbench -clients 1,2,4,8,16,32 -txns 4000
//	go run ./cmd/walbench -device=file -dir /dev/shm/walbench -flushdelay 0
//	go run ./cmd/walbench -quick                  # CI smoke settings
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"logrec/internal/engine"
)

type result struct {
	Clients        int     `json:"clients"`
	Commits        int64   `json:"commits"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	CommitsPerSec  float64 `json:"commits_per_sec"`
	Flushes        int64   `json:"flushes"`
	RecordsPerFlus float64 `json:"records_per_flush"`
	CommitsPerFlus float64 `json:"commits_per_flush"`
	MaxBatch       int64   `json:"max_batch"`
}

type report struct {
	Benchmark     string   `json:"benchmark"`
	Device        string   `json:"device"`
	GoMaxProcs    int      `json:"go_max_procs"`
	FlushDelayUS  float64  `json:"flush_delay_us"`
	TxnsPerClient int      `json:"txns_per_client"`
	UpdatesPerTxn int      `json:"updates_per_txn"`
	Rows          int      `json:"rows"`
	Results       []result `json:"results"`
}

func main() {
	var (
		clientsFlag = flag.String("clients", "1,4,16", "comma-separated client counts to sweep")
		txns        = flag.Int("txns", 2000, "transactions per client")
		ops         = flag.Int("ops", 2, "updates per transaction")
		rows        = flag.Int("rows", 10_000, "rows bulk-loaded before the run")
		cache       = flag.Int("cache", 1024, "buffer pool capacity in pages")
		flushDelay  = flag.Duration("flushdelay", 100*time.Microsecond, "emulated log-device write latency (file mode: extra linger on top of the real fsync)")
		deviceFlag  = flag.String("device", "sim", "storage backend: sim (emulated flush latency) or file (real files; every flush is a real fsync)")
		dirFlag     = flag.String("dir", "", "working directory for -device=file (default: a fresh temp dir, removed on exit)")
		out         = flag.String("out", "BENCH_wal.json", "output JSON path")
		quick       = flag.Bool("quick", false, "CI smoke settings (fewer txns, fewer rows)")
	)
	flag.Parse()
	if *quick {
		*txns = 300
		*rows = 4000
	}
	fileMode := *deviceFlag == "file"
	if !fileMode && *deviceFlag != "sim" {
		log.Fatalf("unknown -device %q (want sim or file)", *deviceFlag)
	}
	var workDir string
	if fileMode {
		if *dirFlag != "" {
			workDir = *dirFlag
			if err := os.MkdirAll(workDir, 0o755); err != nil {
				log.Fatal(err)
			}
		} else {
			tmp, err := os.MkdirTemp("", "walbench-*")
			if err != nil {
				log.Fatal(err)
			}
			workDir = tmp
			defer os.RemoveAll(tmp)
		}
	}

	var clients []int
	for _, s := range strings.Split(*clientsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			log.Fatalf("bad -clients entry %q", s)
		}
		clients = append(clients, n)
	}

	rep := report{
		Benchmark:     "wal_group_commit",
		Device:        *deviceFlag,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		FlushDelayUS:  float64(*flushDelay) / float64(time.Microsecond),
		TxnsPerClient: *txns,
		UpdatesPerTxn: *ops,
		Rows:          *rows,
	}

	fmt.Printf("walbench: %d rows, %d txns/client × %d updates, flush delay %v\n",
		*rows, *txns, *ops, *flushDelay)
	fmt.Printf("%8s %12s %14s %10s %14s %14s\n",
		"clients", "commits", "commits/sec", "flushes", "recs/flush", "commits/flush")

	for _, n := range clients {
		dir := ""
		if fileMode {
			dir = filepath.Join(workDir, fmt.Sprintf("c%d", n))
		}
		r, err := runOne(n, *txns, *ops, *rows, *cache, *flushDelay, dir)
		if err != nil {
			log.Fatalf("clients=%d: %v", n, err)
		}
		rep.Results = append(rep.Results, r)
		fmt.Printf("%8d %12d %14.0f %10d %14.2f %14.2f\n",
			r.Clients, r.Commits, r.CommitsPerSec, r.Flushes, r.RecordsPerFlus, r.CommitsPerFlus)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func runOne(clients, txns, ops, rows, cache int, flushDelay time.Duration, dir string) (result, error) {
	cfg := engine.DefaultConfig()
	cfg.CachePages = cache
	if dir != "" {
		cfg.Device = engine.DeviceFile
		cfg.Dir = dir
	}
	eng, err := engine.New(cfg)
	if err != nil {
		return result{}, err
	}
	if err := eng.Load(rows, func(k uint64) []byte {
		return []byte(fmt.Sprintf("initial-value-%06d", k))
	}); err != nil {
		return result{}, err
	}
	mgr := eng.NewSessionManager(flushDelay)

	// Disjoint key partitions: this measures the write path, not lock
	// contention (bench_test.go covers the contended case).
	perClient := rows / clients
	if perClient < 1 {
		return result{}, fmt.Errorf("need at least one row per client (rows=%d, clients=%d)", rows, clients)
	}
	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := mgr.NewSession()
			base := uint64(c * perClient)
			for i := 0; i < txns; i++ {
				if err := sess.Begin(); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				for u := 0; u < ops; u++ {
					k := base + uint64((i*ops+u)%perClient)
					v := []byte(fmt.Sprintf("c%03d-t%06d-u%02d", c, i, u))
					if err := sess.Update(cfg.TableID, k, v); err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
				}
				if err := sess.Commit(); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return result{}, firstErr
	}

	st := mgr.GroupCommitter().Stats()
	commits := int64(clients) * int64(txns)
	r := result{
		Clients:        clients,
		Commits:        commits,
		ElapsedMS:      float64(elapsed) / float64(time.Millisecond),
		CommitsPerSec:  float64(commits) / elapsed.Seconds(),
		Flushes:        st.Flushes,
		RecordsPerFlus: st.RecordsPerFlush(),
		MaxBatch:       st.MaxBatch,
	}
	if st.Flushes > 0 {
		r.CommitsPerFlus = float64(st.Commits) / float64(st.Flushes)
	}
	return r, nil
}
