// The -workload mode: a YCSB-style benchmark driven entirely through
// the typed executor. N clients run weighted mixes of point reads,
// updates, inserts, short range scans and read-modify-writes (presets
// a–f plus the four-way "mixed" smoke preset) over a zipfian or
// uniform key space of millions of typed rows, against a sharded
// engine. Transactions whose ops are all point-shaped run through the
// executor's Batch (one grouped lock-and-plane round trip); scans and
// RMWs run per-op inside Executor.Txn.
//
// After the timed run the driver measures predicate pushdown — the
// same filtered scan once pushed into the B-tree iterator and once
// post-filtered, reporting full-row decode counts for both — and then
// crashes the engine and recovers it (Log2), comparing a typed digest
// of every executor-visible row before and after. The digest is the
// typed round-trip oracle: it re-encodes each decoded row, so any
// codec or recovery divergence changes it.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"logrec/internal/core"
	"logrec/internal/engine"
	"logrec/internal/exec"
	"logrec/internal/tc"
	"logrec/internal/wal"
	"logrec/internal/workload"
)

// benchSchema shapes the workload rows: the key mirrored into a typed
// column, a payload string, an update-version counter and a sparse
// flag (set on 1 in 16 rows) that the pushdown probe filters on.
var benchSchema = exec.MustSchema(
	exec.Column{Name: "k", Type: exec.TUint64},
	exec.Column{Name: "payload", Type: exec.TString},
	exec.Column{Name: "ver", Type: exec.TUint64},
	exec.Column{Name: "flag", Type: exec.TBool},
)

const flagEvery = 16 // rows with k%flagEvery == 0 have flag=true

func benchRow(k uint64) []any {
	return []any{k, fmt.Sprintf("payload-%08x-%032x", k, k*0x9E3779B97F4A7C15), uint64(0), k%flagEvery == 0}
}

type workloadResult struct {
	Commits       int64   `json:"commits"`
	Conflicts     int64   `json:"conflicts"`
	Reads         int64   `json:"reads"`
	Updates       int64   `json:"updates"`
	Inserts       int64   `json:"inserts"`
	Scans         int64   `json:"scans"`
	RMWs          int64   `json:"rmws"`
	ScanRows      int64   `json:"scan_rows"`
	BatchedTxns   int64   `json:"batched_txns"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	CommitsPerSec float64 `json:"commits_per_sec"`

	// Buffer pool behaviour during the timed run, aggregated across the
	// shards' pools (snapshotted before the crash leg).
	PoolPolicy      string  `json:"pool_policy"`
	PoolLatchShards int     `json:"pool_latch_shards"`
	PoolHits        int64   `json:"pool_hits"`
	PoolMisses      int64   `json:"pool_misses"`
	PoolEvictions   int64   `json:"pool_evictions"`
	PoolHitRatio    float64 `json:"pool_hit_ratio"`
	PoolDirtyFrac   float64 `json:"pool_dirty_fraction"`

	// Pushdown probe: the same filtered scan with the predicate pushed
	// into the B-tree iterator versus applied after the full decode.
	ProbeRows         int64   `json:"probe_rows"`
	PushdownDecoded   int64   `json:"pushdown_decoded_rows"`
	PostFilterDecoded int64   `json:"postfilter_decoded_rows"`
	PushdownMS        float64 `json:"pushdown_ms"`
	PostFilterMS      float64 `json:"postfilter_ms"`

	// Crash + Log2 recovery with the typed digest oracle.
	RowsBeforeCrash int64   `json:"rows_before_crash"`
	RowsRecovered   int64   `json:"rows_recovered"`
	RecoveryMS      float64 `json:"recovery_ms"`
	DigestMatch     bool    `json:"digest_match"`
}

type workloadReport struct {
	Benchmark     string         `json:"benchmark"`
	Preset        string         `json:"preset"`
	Mix           string         `json:"mix"`
	GoMaxProcs    int            `json:"go_max_procs"`
	Clients       int            `json:"clients"`
	TxnsPerClient int            `json:"txns_per_client"`
	OpsPerTxn     int            `json:"ops_per_txn"`
	Keys          int            `json:"keys"`
	Shards        int            `json:"shards"`
	Dist          string         `json:"dist"`
	ZipfS         float64        `json:"zipf_s"`
	MaxScanLen    int            `json:"max_scan_len"`
	Result        workloadResult `json:"result"`
}

// workloadParams bundles the run's knobs.
type workloadParams struct {
	preset     string
	clients    int
	txns       int
	ops        int
	keys       int
	shards     int
	cache      int
	uniform    bool
	zipfS      float64
	maxScanLen int
	flushDelay time.Duration
	policy     string
	poolShards int
	out        string
}

// clientCounts tallies one client's committed operations.
type clientCounts struct {
	reads, updates, inserts, scans, rmws, scanRows, conflicts, batched int64
}

func runWorkload(p workloadParams) {
	mix, ok := workload.Preset(p.preset)
	if !ok {
		log.Fatalf("unknown -workload preset %q (have %v)", p.preset, workload.PresetNames())
	}
	dist := workload.Zipf
	if p.uniform {
		dist = workload.Uniform
	}

	cfg := engine.DefaultConfig()
	cfg.CachePages = p.cache
	cfg.Shards = p.shards
	cfg.KeySpan = uint64(p.keys)
	cfg.PoolPolicy = p.policy
	cfg.PoolLatchShards = p.poolShards
	eng, err := engine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("walbench workload: preset %s (%v), %d keys × %d shards, %d clients × %d txns × %d ops, %s\n",
		p.preset, mix, p.keys, p.shards, p.clients, p.txns, p.ops, dist)
	if err := eng.Load(p.keys, func(k uint64) []byte {
		buf, err := benchSchema.Encode(benchRow(k)...)
		if err != nil {
			panic(err)
		}
		return buf
	}); err != nil {
		log.Fatal(err)
	}
	mgr := eng.NewSessionManager(p.flushDelay)

	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
		fail     = func(err error) { errOnce.Do(func() { firstErr = err }) }
		totals   = make([]clientCounts, p.clients)
	)
	start := time.Now()
	for c := 0; c < p.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen, err := workload.NewMixGenerator(workload.MixConfig{
				Keys:         uint64(p.keys),
				Mix:          mix,
				Dist:         dist,
				ZipfS:        p.zipfS,
				MaxScanLen:   p.maxScanLen,
				InsertBase:   uint64(p.keys + c),
				InsertStride: uint64(p.clients),
				Seed:         int64(c + 1),
			})
			if err != nil {
				fail(err)
				return
			}
			ex := exec.New(mgr.NewSession(), cfg.TableID, benchSchema)
			ct := &totals[c]
			for i := 0; i < p.txns; i++ {
				ops := make([]workload.MixOp, p.ops)
				pointOnly := true
				for j := range ops {
					ops[j] = gen.Next()
					if ops[j].Kind == workload.OpScan || ops[j].Kind == workload.OpRMW {
						pointOnly = false
					}
				}
				if err := runMixTxn(ex, ops, pointOnly, ct); err != nil {
					fail(fmt.Errorf("client %d txn %d: %w", c, i, err))
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		log.Fatal(firstErr)
	}

	var res workloadResult
	for i := range totals {
		ct := &totals[i]
		res.Reads += ct.reads
		res.Updates += ct.updates
		res.Inserts += ct.inserts
		res.Scans += ct.scans
		res.RMWs += ct.rmws
		res.ScanRows += ct.scanRows
		res.Conflicts += ct.conflicts
		res.BatchedTxns += ct.batched
	}
	res.Commits = int64(p.clients) * int64(p.txns)
	totalOps := res.Reads + res.Updates + res.Inserts + res.Scans + res.RMWs
	res.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	res.OpsPerSec = float64(totalOps) / elapsed.Seconds()
	res.CommitsPerSec = float64(res.Commits) / elapsed.Seconds()
	assertMixCovered(mix, &res)

	// Pushdown probe on a fresh executor so its decode counter starts
	// at zero for each leg.
	probe := func(push bool) (rows, decoded int64, ms float64) {
		ex := exec.New(mgr.NewSession(), cfg.TableID, benchSchema)
		q := ex.ScanAll().Where("flag", exec.Eq, true)
		if !push {
			q = q.NoPushdown()
		}
		t0 := time.Now()
		n, err := q.Count()
		if err != nil {
			log.Fatalf("pushdown probe: %v", err)
		}
		return int64(n), ex.DecodedRows(), float64(time.Since(t0)) / float64(time.Millisecond)
	}
	res.ProbeRows, res.PushdownDecoded, res.PushdownMS = probe(true)
	postRows, postDecoded, postMS := probe(false)
	res.PostFilterDecoded, res.PostFilterMS = postDecoded, postMS
	if postRows != res.ProbeRows {
		log.Fatalf("pushdown and post-filter probes disagree: %d vs %d rows", res.ProbeRows, postRows)
	}
	if res.PushdownDecoded >= res.PostFilterDecoded {
		log.Fatalf("pushdown decoded %d rows, post-filter %d: pushdown is not saving decodes",
			res.PushdownDecoded, res.PostFilterDecoded)
	}

	// Pool counters, aggregated across shards, before the crash leg
	// resets everything.
	var dirtyFracSum float64
	for _, ss := range eng.Stats().Shards {
		res.PoolPolicy = ss.PoolPolicy
		res.PoolLatchShards = ss.PoolLatchShards
		res.PoolHits += ss.Pool.Hits
		res.PoolMisses += ss.Pool.Misses
		res.PoolEvictions += ss.Pool.Evictions
		dirtyFracSum += ss.DirtyFraction
	}
	if total := res.PoolHits + res.PoolMisses; total > 0 {
		res.PoolHitRatio = float64(res.PoolHits) / float64(total)
	}
	if p.shards > 0 {
		res.PoolDirtyFrac = dirtyFracSum / float64(p.shards)
	}

	// Typed round-trip oracle across crash + Log2 recovery.
	beforeDigest, beforeRows := typedDigest(mgr, cfg.TableID)
	eng.TC.SendEOSL()
	crash := eng.Crash()
	t0 := time.Now()
	rec, _, err := core.Recover(crash, core.Log2, core.DefaultOptions(eng.Cfg))
	if err != nil {
		log.Fatalf("recover: %v", err)
	}
	res.RecoveryMS = float64(time.Since(t0)) / float64(time.Millisecond)
	afterDigest, afterRows := typedDigest(rec.NewSessionManager(0), rec.Cfg.TableID)
	res.RowsBeforeCrash, res.RowsRecovered = beforeRows, afterRows
	res.DigestMatch = beforeDigest == afterDigest && beforeRows == afterRows
	if !res.DigestMatch {
		log.Fatalf("typed digest mismatch across recovery: %x/%d rows before, %x/%d after",
			beforeDigest, beforeRows, afterDigest, afterRows)
	}

	rep := workloadReport{
		Benchmark:     "workload_ycsb",
		Preset:        p.preset,
		Mix:           mix.String(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Clients:       p.clients,
		TxnsPerClient: p.txns,
		OpsPerTxn:     p.ops,
		Keys:          p.keys,
		Shards:        p.shards,
		Dist:          dist.String(),
		ZipfS:         p.zipfS,
		MaxScanLen:    p.maxScanLen,
		Result:        res,
	}
	fmt.Printf("%10s %10s %10s %10s %10s %12s %12s %12s\n",
		"reads", "updates", "inserts", "scans", "rmws", "scan rows", "ops/sec", "conflicts")
	fmt.Printf("%10d %10d %10d %10d %10d %12d %12.0f %12d\n",
		res.Reads, res.Updates, res.Inserts, res.Scans, res.RMWs, res.ScanRows, res.OpsPerSec, res.Conflicts)
	fmt.Printf("pool: policy %s, %d latch shards; hit ratio %.3f (%d hits / %d misses), %d evictions, dirty %.1f%%\n",
		res.PoolPolicy, res.PoolLatchShards, res.PoolHitRatio,
		res.PoolHits, res.PoolMisses, res.PoolEvictions, res.PoolDirtyFrac*100)
	fmt.Printf("pushdown probe: %d rows; decoded %d (pushdown, %.1fms) vs %d (post-filter, %.1fms)\n",
		res.ProbeRows, res.PushdownDecoded, res.PushdownMS, res.PostFilterDecoded, res.PostFilterMS)
	fmt.Printf("recovery: %d rows in %.1fms, typed digest match\n", res.RowsRecovered, res.RecoveryMS)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(p.out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", p.out)
}

// runMixTxn commits one transaction of ops, retrying on lock conflicts
// with backoff. Point-only transactions go through the executor's
// Batch; transactions with scans or RMWs run per-op inside Txn.
func runMixTxn(ex *exec.Executor, ops []workload.MixOp, pointOnly bool, ct *clientCounts) error {
	for attempt := 0; ; attempt++ {
		if attempt == 1000 {
			return fmt.Errorf("starved after %d conflict retries", attempt)
		}
		var scanRows int64
		var err error
		if pointOnly {
			err = runBatchTxn(ex, ops)
		} else {
			err = ex.Txn(func() error {
				for _, op := range ops {
					if e := runMixOp(ex, op, &scanRows); e != nil {
						return e
					}
				}
				return nil
			})
		}
		if err != nil {
			if errors.Is(err, tc.ErrLockConflict) {
				ct.conflicts++
				time.Sleep(time.Duration(attempt+1) * 10 * time.Microsecond)
				continue
			}
			return err
		}
		for _, op := range ops {
			switch op.Kind {
			case workload.OpRead:
				ct.reads++
			case workload.OpUpdate:
				ct.updates++
			case workload.OpInsert:
				ct.inserts++
			case workload.OpScan:
				ct.scans++
			case workload.OpRMW:
				ct.rmws++
			}
		}
		ct.scanRows += scanRows
		if pointOnly {
			ct.batched++
		}
		return nil
	}
}

// runBatchTxn groups a point-only transaction into one Batch run.
func runBatchTxn(ex *exec.Executor, ops []workload.MixOp) error {
	b := ex.NewBatch()
	for _, op := range ops {
		switch op.Kind {
		case workload.OpRead:
			b.Read(op.Key)
		case workload.OpUpdate:
			b.Update(op.Key, benchRow(op.Key)...)
		case workload.OpInsert:
			b.Insert(op.Key, benchRow(op.Key)...)
		}
	}
	_, err := b.Run()
	return err
}

// runMixOp applies one op inside an open transaction.
func runMixOp(ex *exec.Executor, op workload.MixOp, scanRows *int64) error {
	switch op.Kind {
	case workload.OpRead:
		_, _, err := ex.Get(op.Key)
		return err
	case workload.OpUpdate:
		return ex.Update(op.Key, benchRow(op.Key)...)
	case workload.OpInsert:
		return ex.Insert(op.Key, benchRow(op.Key)...)
	case workload.OpScan:
		return ex.Scan(op.Key, op.Key+uint64(op.ScanLen)-1).Each(func(exec.Row) error {
			*scanRows++
			return nil
		})
	case workload.OpRMW:
		vals, found, err := ex.Get(op.Key)
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("rmw key %d missing", op.Key)
		}
		vals[2] = vals[2].(uint64) + 1
		return ex.Update(op.Key, vals...)
	}
	return fmt.Errorf("unknown op kind %v", op.Kind)
}

// assertMixCovered fails the run when an op kind the mix asks for
// never committed, or scans returned no rows — the workload-smoke
// correctness floor.
func assertMixCovered(mix workload.Mix, res *workloadResult) {
	check := func(frac float64, n int64, kind string) {
		if frac > 0.01 && n == 0 {
			log.Fatalf("mix asks for %.0f%% %s but none committed", frac*100, kind)
		}
	}
	check(mix.Read, res.Reads, "reads")
	check(mix.Update, res.Updates, "updates")
	check(mix.Insert, res.Inserts, "inserts")
	check(mix.Scan, res.Scans, "scans")
	check(mix.RMW, res.RMWs, "rmws")
	if mix.Scan > 0.01 && res.ScanRows == 0 {
		log.Fatal("scans committed but returned zero rows")
	}
}

// typedDigest full-scans the table through a typed executor, decoding
// and canonically re-encoding every row into an FNV-64a digest — the
// typed round-trip oracle recovery must preserve.
func typedDigest(mgr *tc.SessionManager, table wal.TableID) (uint64, int64) {
	ex := exec.New(mgr.NewSession(), table, benchSchema)
	h := fnv.New64a()
	var rows int64
	err := ex.ScanAll().Each(func(r exec.Row) error {
		rows++
		var kb [8]byte
		for i := 0; i < 8; i++ {
			kb[i] = byte(r.Key >> (8 * i))
		}
		h.Write(kb[:])
		buf, err := benchSchema.Encode(r.Cols...)
		if err != nil {
			return err
		}
		h.Write(buf)
		return nil
	})
	if err != nil {
		log.Fatalf("digest scan: %v", err)
	}
	return h.Sum64(), rows
}
