// Command poolbench is the buffer-pool microbenchmark: it drives the
// sharded pool directly (no engine above it) and sweeps the three
// axes the tentpole added — latch shards, eviction policy and the
// pool/keyspace ratio — under the access pattern the policies are
// designed to disagree on: zipfian point readers with a concurrent
// sequential scanner.
//
// Each run seeds a simulated disk with the keyspace, puts the disk in
// wall-clock mode with a scale large enough that every modelled IO
// wait rounds to zero (so the latch-released miss and flush paths run
// but the measurement is pure CPU + synchronisation), then hammers the
// pool with N client goroutines doing zipf-distributed Get/MarkDirty
// while one scanner goroutine sweeps the whole keyspace end to end in
// a loop. Reported per run: ops/sec (clients only), hit ratio,
// evictions, cumulative latch wait and scan coverage.
//
// The interesting comparisons, which `benchdiff -kind pool` gates:
//
//   - same shards + ratio, 2q vs clock: the scan-resistant policy must
//     hold a strictly better hit ratio (machine-independent — it is a
//     property of the replacement order, not the host).
//   - same policy + ratio, 8 latch shards vs 1: the sharded pool must
//     move more ops/sec under concurrent clients. Only meaningful with
//     real parallelism, so the gate skips it below 4 GOMAXPROCS (the
//     same reasoning the wal-shards gate documents for CI smoke cores).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"logrec/internal/buffer"
	"logrec/internal/page"
	"logrec/internal/sim"
	"logrec/internal/storage"
	"logrec/internal/wal"
)

// runResult is one cell of the sweep.
type runResult struct {
	LatchShards int     `json:"latch_shards"`
	Policy      string  `json:"policy"`
	Capacity    int     `json:"capacity"`
	Keyspace    int     `json:"keyspace"`
	Ratio       float64 `json:"pool_keyspace_ratio"`
	Ops         int64   `json:"ops"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	HitRatio    float64 `json:"hit_ratio"`
	// ClientHitRatio counts only the client goroutines' lookups —
	// the scanner's always-cold sweep is excluded, so the number is
	// comparable across runs regardless of how the scheduler
	// interleaved the scanner. This is the metric the policy gate uses.
	ClientHitRatio float64 `json:"client_hit_ratio"`
	Evictions      int64   `json:"evictions"`
	Flushes        int64   `json:"flushes"`
	LatchWaitMS    float64 `json:"latch_wait_ms"`
	ScanPages      int64   `json:"scan_pages"`
	ScanPasses     float64 `json:"scan_passes"`
}

type report struct {
	Benchmark  string      `json:"benchmark"`
	GoMaxProcs int         `json:"go_max_procs"`
	Clients    int         `json:"clients"`
	ZipfS      float64     `json:"zipf_s"`
	WriteFrac  float64     `json:"write_frac"`
	Runs       []runResult `json:"runs"`
}

func main() {
	var (
		clients = flag.Int("clients", 8, "concurrent client goroutines per run")
		keys    = flag.Int("keys", 8192, "keyspace in pages")
		ops     = flag.Int("ops", 60_000, "timed operations per client per run")
		zipfS   = flag.Float64("zipf", 1.2, "zipfian skew of the client key distribution")
		quick   = flag.Bool("quick", false, "CI smoke settings (fewer ops)")
		out     = flag.String("out", "BENCH_pool.json", "output JSON path")
	)
	flag.Parse()
	if *quick {
		*ops = 15_000
	}

	const writeFrac = 0.05
	rep := report{
		Benchmark:  "pool",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Clients:    *clients,
		ZipfS:      *zipfS,
		WriteFrac:  writeFrac,
	}
	fmt.Printf("poolbench: %d clients × %d ops, %d-page keyspace, zipf %.2f, %.0f%% writes, GOMAXPROCS %d\n",
		*clients, *ops, *keys, *zipfS, writeFrac*100, rep.GoMaxProcs)
	fmt.Printf("%7s %7s %9s %7s %12s %10s %10s %12s %10s\n",
		"shards", "policy", "capacity", "ratio", "ops/sec", "hit ratio", "evictions", "latch ms", "scan pass")

	for _, capacity := range []int{*keys / 16, *keys / 4} {
		for _, shards := range []int{1, 8} {
			for _, policy := range []string{buffer.PolicyClock, buffer.Policy2Q} {
				r := runOne(shards, policy, capacity, *keys, *clients, *ops, *zipfS, writeFrac)
				rep.Runs = append(rep.Runs, r)
				fmt.Printf("%7d %7s %9d %7.3f %12.0f %10.3f %10d %12.1f %10.1f\n",
					r.LatchShards, r.Policy, r.Capacity, r.Ratio,
					r.OpsPerSec, r.ClientHitRatio, r.Evictions, r.LatchWaitMS, r.ScanPasses)
			}
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func runOne(shards int, policy string, capacity, keys, clients, ops int, zipfS, writeFrac float64) runResult {
	clock := &sim.Clock{}
	cfg := storage.Config{
		PageSize:        256,
		SeekTime:        4 * sim.Millisecond,
		TransferPerPage: 100 * sim.Microsecond,
		WriteSeekTime:   2 * sim.Millisecond,
		MaxBlock:        8,
		Channels:        4,
	}
	disk, err := storage.New(clock, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for pid := storage.PageID(2); pid < storage.PageID(2+keys); pid++ {
		data := make([]byte, cfg.PageSize)
		page.Format(data, page.TypeLeaf)
		if _, err := disk.Write(pid, data); err != nil {
			log.Fatal(err)
		}
	}
	// Wall-clock mode, but with every modelled wait scaled to zero:
	// the pool takes its latch-released real-IO paths while the
	// measurement stays pure synchronisation cost.
	disk.SetRealIOScale(1 << 30)

	pool, err := buffer.NewWithConfig(disk, capacity, buffer.Config{LatchShards: shards, Policy: policy})
	if err != nil {
		log.Fatal(err)
	}
	pool.SetLatchTiming(true)
	// The bench measures cache behaviour, not the WAL: keep the
	// durable-LSN horizon ahead of every MarkDirty so no flush forces.
	pool.SetELSN(wal.LSN(1) << 40)
	pool.SetLogForce(func() wal.LSN { return wal.LSN(1) << 40 })

	var nextLSN atomic.Uint64
	write := int(writeFrac * 100)

	// Warm the pool with a zipf prefix per client, then reset counters
	// so the timed section starts from a steady state.
	warm := rand.New(rand.NewSource(7))
	wz := rand.NewZipf(warm, zipfS, 1, uint64(keys-1))
	for i := 0; i < capacity*2; i++ {
		f, err := pool.Get(storage.PageID(2 + wz.Uint64()))
		if err != nil {
			log.Fatal(err)
		}
		pool.Unpin(f)
	}
	pool.ResetStats()

	var (
		wg         sync.WaitGroup
		done       = make(chan struct{})
		scanPages  atomic.Int64
		clientOps  atomic.Int64
		clientHits atomic.Int64
		clientGets atomic.Int64
	)
	// Scanner: sequential sweeps over the whole keyspace — the access
	// pattern 2Q exists to survive. Scanner and clients pace each
	// other (one scanned page per scanPace client ops, in both
	// directions) so every run sees the same scan pressure no matter
	// how the scheduler interleaves the goroutines.
	const scanPace = 4
	go func() {
		pid := storage.PageID(2)
		for {
			select {
			case <-done:
				return
			default:
			}
			if scanPages.Load() >= clientOps.Load()/scanPace {
				runtime.Gosched()
				continue
			}
			f, err := pool.Get(pid)
			if err != nil {
				log.Fatal(err)
			}
			pool.Unpin(f)
			scanPages.Add(1)
			pid++
			if pid >= storage.PageID(2+keys) {
				pid = 2
			}
		}
	}()

	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			z := rand.NewZipf(rng, zipfS, 1, uint64(keys-1))
			var hits, gets int64
			for i := 0; i < ops; i++ {
				for clientOps.Load()/scanPace > scanPages.Load() {
					runtime.Gosched()
				}
				pid := storage.PageID(2 + z.Uint64())
				gets++
				f := pool.GetIfCached(pid)
				if f != nil {
					hits++
				} else {
					var err error
					f, err = pool.Get(pid)
					if err != nil {
						log.Fatal(err)
					}
				}
				if rng.Intn(100) < write {
					pool.MarkDirty(f, wal.LSN(nextLSN.Add(1)))
				}
				pool.Unpin(f)
				clientOps.Add(1)
			}
			clientHits.Add(hits)
			clientGets.Add(gets)
		}(int64(c + 1))
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(done)

	st := pool.Stats()
	res := runResult{
		LatchShards: pool.LatchShards(),
		Policy:      pool.Policy(),
		Capacity:    capacity,
		Keyspace:    keys,
		Ratio:       float64(capacity) / float64(keys),
		Ops:         int64(clients) * int64(ops),
		ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
		Hits:        st.Hits,
		Misses:      st.Misses,
		Evictions:   st.Evictions,
		Flushes:     st.Flushes,
		LatchWaitMS: float64(st.LatchWaitNS) / float64(time.Millisecond),
		ScanPages:   scanPages.Load(),
		ScanPasses:  float64(scanPages.Load()) / float64(keys),
	}
	res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	res.HitRatio = st.HitRatio()
	if g := clientGets.Load(); g > 0 {
		res.ClientHitRatio = float64(clientHits.Load()) / float64(g)
	}
	return res
}
