// Command replicabench measures the log-shipping standby under
// sustained committed traffic and gates the failover invariants:
//
//  1. Replay lag — a zipfian update workload runs against the primary
//     with a warm standby attached; the driver applies backpressure at
//     half the configured lag bound (the production shape: admission
//     control keyed off standby lag) and samples the lag every
//     transaction. The maximum observed sample must stay under the
//     bound.
//  2. Determinism — the identical seeded run is executed twice; the
//     standby must apply exactly the same number of records both times
//     (the logical log stream fully determines the standby's work).
//  3. Promotion — after end-of-stable-log the standby is promoted and
//     its row digest must equal the live primary's, and the promotion
//     wall time is reported for the floor gate.
//
// It emits BENCH_replica.json for the CI bench-regression gate.
//
// Usage:
//
//	go run ./cmd/replicabench              # full settings
//	go run ./cmd/replicabench -quick       # CI smoke settings
//	go run ./cmd/replicabench -out /tmp/BENCH_replica.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"logrec/internal/engine"
	"logrec/internal/harness"
	"logrec/internal/replica"
	"logrec/internal/workload"
)

type benchConfig struct {
	Rows         int   `json:"rows"`
	Txns         int   `json:"txns"`
	UpdatesPer   int   `json:"updates_per_txn"`
	Shards       int   `json:"shards"`
	SegmentBytes int   `json:"segment_bytes"`
	LagBound     int64 `json:"lag_bound_bytes"`
}

type benchResult struct {
	ShippedBytes       int64   `json:"shipped_bytes"`
	Segments           int64   `json:"segments"`
	AppliedRecords     int64   `json:"applied_records"`
	AppliedRecordsRun2 int64   `json:"applied_records_run2"`
	MaxLagBytes        int64   `json:"max_lag_bytes"`
	LagBoundBytes      int64   `json:"lag_bound_bytes"`
	LagSamples         int64   `json:"lag_samples"`
	PromoteMS          float64 `json:"promote_ms"`
	DigestMatch        bool    `json:"digest_match"`
	TxnsPerSec         float64 `json:"txns_per_sec"`
}

type report struct {
	Config benchConfig `json:"config"`
	Result benchResult `json:"result"`
}

// run drives one full bench pass and returns the result.
func run(cfg benchConfig) (benchResult, error) {
	var res benchResult
	ecfg := engine.DefaultConfig()
	ecfg.Shards = cfg.Shards
	ecfg.KeySpan = uint64(cfg.Rows)
	ecfg.CachePages = 512 * cfg.Shards

	wcfg := workload.DefaultConfig()
	wcfg.Rows = cfg.Rows
	wcfg.Dist = workload.Zipf
	wcfg.ReadFraction = 0
	wcfg.UpdatesPerTxn = cfg.UpdatesPer
	gen, err := workload.NewGenerator(wcfg)
	if err != nil {
		return res, err
	}

	primary, err := engine.New(ecfg)
	if err != nil {
		return res, err
	}
	if err := primary.Load(cfg.Rows, gen.InitialValue); err != nil {
		return res, err
	}
	scfg := ecfg
	scfg.Standby = true
	standbyEng, err := engine.New(scfg)
	if err != nil {
		return res, err
	}
	if err := standbyEng.Load(cfg.Rows, gen.InitialValue); err != nil {
		return res, err
	}
	s, err := replica.New(primary.Log, standbyEng, replica.Config{
		SegmentBytes: cfg.SegmentBytes,
		MaxLagBytes:  cfg.LagBound,
	})
	if err != nil {
		return res, err
	}
	s.Start()

	start := time.Now()
	for i := 0; i < cfg.Txns; i++ {
		if s.Lag().Bytes > cfg.LagBound/2 {
			if err := s.WaitLagBelow(cfg.LagBound/2, 30*time.Second); err != nil {
				return res, err
			}
		}
		txn := primary.TC.Begin()
		for j := 0; j < cfg.UpdatesPer; j++ {
			key := gen.NextKey()
			if err := primary.TC.Update(txn, ecfg.TableID, key, gen.UpdateValue(key)); err != nil {
				return res, err
			}
		}
		if err := primary.TC.Commit(txn); err != nil {
			return res, err
		}
		if lag := s.Lag().Bytes; lag > res.MaxLagBytes {
			res.MaxLagBytes = lag
		}
		res.LagSamples++
	}
	res.TxnsPerSec = float64(cfg.Txns) / time.Since(start).Seconds()

	primary.TC.SendEOSL()
	if err := s.WaitCaughtUp(30 * time.Second); err != nil {
		return res, err
	}
	primaryDigest, err := harness.StateDigest(primary)
	if err != nil {
		return res, err
	}
	pStart := time.Now()
	promoted, _, err := s.Promote()
	if err != nil {
		return res, err
	}
	res.PromoteMS = float64(time.Since(pStart).Microseconds()) / 1000
	promotedDigest, err := harness.StateDigest(promoted)
	if err != nil {
		return res, err
	}
	res.DigestMatch = promotedDigest == primaryDigest
	st := s.Stats()
	res.ShippedBytes = st.ShippedBytes
	res.Segments = st.Segments
	res.AppliedRecords = st.Replay.Records
	res.LagBoundBytes = cfg.LagBound
	return res, nil
}

func main() {
	var (
		txns  = flag.Int("txns", 4000, "committed transactions to drive")
		rows  = flag.Int("rows", 40000, "table rows")
		out   = flag.String("out", "BENCH_replica.json", "output JSON path")
		quick = flag.Bool("quick", false, "CI smoke settings (smaller workload)")
	)
	flag.Parse()

	cfg := benchConfig{
		Rows:         *rows,
		Txns:         *txns,
		UpdatesPer:   8,
		Shards:       2,
		SegmentBytes: 16 << 10,
		LagBound:     256 << 10,
	}
	if *quick {
		cfg.Rows = 8000
		cfg.Txns = 800
	}

	res, err := run(cfg)
	if err != nil {
		log.Fatalf("replicabench: %v", err)
	}
	// The determinism leg: the identical seeded run must apply exactly
	// the same number of records.
	res2, err := run(cfg)
	if err != nil {
		log.Fatalf("replicabench: second run: %v", err)
	}
	res.AppliedRecordsRun2 = res2.AppliedRecords

	rep := report{Config: cfg, Result: res}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replicabench: %d txns, %.0f txns/s, max lag %d/%d bytes, applied %d records (run2 %d), promote %.2fms, digest match %v → %s\n",
		cfg.Txns, res.TxnsPerSec, res.MaxLagBytes, res.LagBoundBytes,
		res.AppliedRecords, res.AppliedRecordsRun2, res.PromoteMS, res.DigestMatch, *out)
	if !res.DigestMatch {
		os.Exit(1)
	}
}
