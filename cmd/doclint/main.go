// Command doclint enforces the repository's documentation contract in
// CI: every package under the given roots must carry a godoc package
// comment, every exported type must have a doc comment (the typed
// executor and workload packages are client API surface, so exported
// types rot fastest), and every exported field of a tuning-knob struct
// (a type named Config or Options, e.g. core.Options and
// storage.Config) must have a doc comment — those fields are the
// operator surface README.md and ARCHITECTURE.md point at.
//
// Usage:
//
//	go run ./cmd/doclint            # lints ./internal
//	go run ./cmd/doclint dir ...    # lints the given roots
//
// Exits non-zero listing every violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"internal"}
	}
	var violations []string
	for _, root := range roots {
		dirs, err := packageDirs(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		for _, dir := range dirs {
			v, err := lintDir(dir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
				os.Exit(2)
			}
			violations = append(violations, v...)
		}
	}
	if len(violations) > 0 {
		fmt.Printf("doclint: %d violation(s)\n", len(violations))
		for _, v := range violations {
			fmt.Printf("  - %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("doclint: all packages, exported types and knob structs documented")
}

// packageDirs returns every directory under root containing .go files.
func packageDirs(root string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	return dirs, err
}

func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var violations []string
	for name, pkg := range pkgs {
		hasDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasDoc = true
				break
			}
		}
		if !hasDoc {
			violations = append(violations, fmt.Sprintf(
				"%s: package %s has no package comment (// Package %s ...)", dir, name, name))
		}
		for _, f := range pkg.Files {
			violations = append(violations, lintExportedTypes(fset, f)...)
			violations = append(violations, lintKnobs(fset, f)...)
		}
	}
	return violations, nil
}

// lintExportedTypes checks that every exported type declaration
// carries a doc comment, either on the TypeSpec itself or on its
// enclosing grouped declaration.
func lintExportedTypes(fset *token.FileSet, f *ast.File) []string {
	var violations []string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		groupDoc := gd.Doc != nil && strings.TrimSpace(gd.Doc.Text()) != ""
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || !ts.Name.IsExported() {
				continue
			}
			if groupDoc || (ts.Doc != nil && strings.TrimSpace(ts.Doc.Text()) != "") {
				continue
			}
			pos := fset.Position(ts.Pos())
			violations = append(violations, fmt.Sprintf(
				"%s:%d: exported type %s has no doc comment",
				pos.Filename, pos.Line, ts.Name.Name))
		}
	}
	return violations
}

// lintKnobs checks exported fields of Config/Options structs for doc
// comments.
func lintKnobs(fset *token.FileSet, f *ast.File) []string {
	var violations []string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || !ts.Name.IsExported() {
				continue
			}
			if ts.Name.Name != "Config" && ts.Name.Name != "Options" &&
				!strings.HasSuffix(ts.Name.Name, "Config") && !strings.HasSuffix(ts.Name.Name, "Options") {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, field := range st.Fields.List {
				if field.Doc != nil && strings.TrimSpace(field.Doc.Text()) != "" {
					continue
				}
				for _, name := range field.Names {
					if name.IsExported() {
						pos := fset.Position(field.Pos())
						violations = append(violations, fmt.Sprintf(
							"%s:%d: %s.%s has no doc comment (tuning knob)",
							pos.Filename, pos.Line, ts.Name.Name, name.Name))
					}
				}
			}
		}
	}
	return violations
}
